// Fleet simulation walkthrough: run the committed chaos scenarios
// against the real serving stack and show what the harness checks.
//
// The harness spins up a simulated fleet of monitored applications —
// each one a memory-leak ramp with the paper's TPC-W failure shape —
// against a live prediction service, injects seeded faults
// (crash-restarts, connection flaps, slow consumers, stale-model
// storms, leak bursts), and evaluates in-scenario assertions. Runs are
// deterministic: the same scenario and seed always produce the same
// event log, which this example demonstrates by running the smoke
// scenario twice and comparing fingerprints.
//
// Run with:
//
//	go run ./examples/fleetsim
//
// The same scenarios drive the standalone CLI:
//
//	go run ./cmd/fleetsim run -replay-check examples/fleetsim/scenarios/smoke.yaml
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/fleetsim"
)

func main() {
	dir := flag.String("scenarios", "", "directory holding the scenario files (default: auto-detect)")
	flag.Parse()

	// 1. The smoke scenario: a mixed-priority fleet on a linear arrival
	// ramp, every chaos kind fired once, a shed policy with a priority
	// floor, and the two acceptance invariants asserted at the end —
	// no windows lost by never-crashed sessions, and every shed window
	// attributed to a below-floor priority.
	smoke := load(*dir, "smoke.yaml")
	fmt.Println("== smoke: every chaos kind, shed floor, replay check ==")
	rep, err := fleetsim.Run(smoke)
	if err != nil {
		log.Fatal(err)
	}
	rep.WriteText(os.Stdout)

	// 2. Deterministic replay: a second run of the same scenario and
	// seed must produce a byte-identical event log and assertion
	// outcomes. The fingerprint excludes wall-clock content, so this
	// holds across machines and runs.
	rep2, err := fleetsim.Run(smoke)
	if err != nil {
		log.Fatal(err)
	}
	if rep.Fingerprint() != rep2.Fingerprint() {
		log.Fatal("replay diverged — determinism is broken")
	}
	fmt.Println("\nreplay check: second run produced an identical event log")
	fmt.Printf("fingerprint: %d log entries, %d assertions\n\n", len(rep.Log), len(rep.Assertions))

	// 3. The memory-leak ramp: the paper's failure shape at fleet
	// scale. Twelve clients leak toward swap exhaustion while the
	// serving tier predicts each one's remaining time to failure and
	// raises alerts below a 60 s threshold — the proactive-rejuvenation
	// signal. A mid-run leak burst steepens half the fleet's ramps and
	// the alert counter reacts.
	ramp := load(*dir, "leak-ramp.yaml")
	fmt.Println("== leak-ramp: RTTF alerting under a leak burst ==")
	rampRep, err := fleetsim.Run(ramp)
	if err != nil {
		log.Fatal(err)
	}
	rampRep.WriteText(os.Stdout)

	if !rep.Passed || !rampRep.Passed {
		os.Exit(1)
	}
}

// load reads and parses a committed scenario, looking in the -scenarios
// directory when given, else next to this example and from the repo
// root — so the walkthrough works from either working directory.
func load(dir, name string) *fleetsim.Scenario {
	candidates := []string{
		filepath.Join("examples", "fleetsim", "scenarios", name),
		filepath.Join("scenarios", name),
	}
	if dir != "" {
		candidates = []string{filepath.Join(dir, name)}
	}
	var lastErr error
	for _, path := range candidates {
		data, err := os.ReadFile(path)
		if err != nil {
			lastErr = err
			continue
		}
		sc, err := fleetsim.ParseScenario(data)
		if err != nil {
			log.Fatal(err)
		}
		return sc
	}
	log.Fatal(lastErr)
	return nil
}
