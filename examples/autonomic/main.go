// Autonomic operation: the closed MAPE loop on the public API. A
// Supervisor watches serving-side signals (feature drift, graded
// prediction error, queue depth, registry staleness), decides through
// pluggable policies, and acts through typed actuators — retrain,
// slide, publish, redeploy, reshard — logging every decision,
// including the suppressed ones, in a gap-free sequence.
//
// The supervisor owns no goroutines and no clock: this example drives
// it on a virtual clock with a scripted signal timeline, which is
// exactly how the fleetsim chaos harness replays it byte-for-byte
// (examples/fleetsim/scenarios/supervisor-loop.yaml closes the loop
// against a real PredictionService and a real pipeline; cmd/fms
// -supervise runs the overload arm against a live serving queue).
//
// The script below walks the three policy families through their
// signature behaviors:
//
//  1. overload: sustained queue depth tightens the shed policy
//     (reshard), the drained queue relaxes it — and a relax that lands
//     inside the cooldown is suppressed, rolled back inside the
//     policy, and retried until it executes.
//  2. prediction error: graded estimate-vs-observed failures fold into
//     an EWMA with hysteresis; crossing the trigger proposes retrain +
//     publish.
//  3. staleness: a publish proposed while the registry is stale is
//     deferred, and — past the RedeployAfter bound — executed as a
//     local redeploy instead, so the node serves the retrained model
//     even when the fleet cannot converge on it yet.
//
// Run with:
//
//	go run ./examples/autonomic
package main

import (
	"fmt"
	"time"

	f2pm "repro"
)

func main() {
	// The virtual clock: signals and ticks carry explicit timestamps.
	at := func(sec int) time.Time { return time.Unix(int64(sec), 0) }

	sup, err := f2pm.NewSupervisor(f2pm.SupervisorConfig{
		Policies: []f2pm.SupervisorPolicy{
			&f2pm.OverloadPolicy{
				HighDepth: 16, LowDepth: 4, Sustain: 2,
				TightDepth: 8, TightFloor: 2, RelaxDepth: 64, RelaxFloor: 0,
			},
			&f2pm.PredictionErrorPolicy{
				Trigger: 1.0, Clear: 0.3, MinSamples: 2, PublishAfter: true,
			},
		},
		Actuators: f2pm.SupervisorActuators{
			Retrain: func(reason string) error {
				fmt.Println("  [actuator] incremental retrain (would run Pipeline.Update)")
				return nil
			},
			Publish: func(reason string) error {
				fmt.Println("  [actuator] publish to the model registry")
				return nil
			},
			Redeploy: func(reason string) error {
				fmt.Println("  [actuator] deploy locally (registry still stale)")
				return nil
			},
			Reshard: func(depth, floor int, reason string) error {
				fmt.Printf("  [actuator] shed policy -> depth %d, priority floor %d\n", depth, floor)
				return nil
			},
		},
		DefaultCooldown: 30 * time.Second,
		RedeployAfter:   20 * time.Second,
		OnDecision: func(d f2pm.SupervisorDecision) {
			fmt.Printf("  decision %s\n", d)
		},
	})
	if err != nil {
		panic(err)
	}

	tick := func(sec int, sigs ...f2pm.SupervisorSignal) {
		for _, s := range sigs {
			sup.Signal(s)
		}
		fmt.Printf("t=%ds\n", sec)
		sup.Tick(at(sec))
	}
	depth := func(v float64) f2pm.SupervisorSignal {
		return f2pm.SupervisorSignal{Kind: f2pm.SignalQueueDepth, Value: v}
	}
	predErr := func(v float64) f2pm.SupervisorSignal {
		return f2pm.SupervisorSignal{Kind: f2pm.SignalPredictionError, Value: v}
	}
	staleness := func(v float64) f2pm.SupervisorSignal {
		return f2pm.SupervisorSignal{Kind: f2pm.SignalStaleness, Value: v}
	}

	fmt.Println("--- overload: tighten on sustained depth, relax after drain ---")
	tick(0, depth(20))
	tick(5, depth(22)) // second sustained observation: tighten executes
	tick(10, depth(0))
	tick(15, depth(0)) // relax proposed 10s after tighten -> cooldown, rolled back
	tick(40, depth(0))
	tick(45, depth(0)) // re-sustained past the cooldown: relax executes

	fmt.Println("--- prediction error: EWMA hysteresis fires retrain + publish ---")
	tick(60, predErr(0.2))
	tick(65, predErr(3.0)) // regime change: estimates off by 3x
	tick(70, predErr(3.2)) // EWMA crosses the trigger: retrain + publish

	fmt.Println("--- staleness: publish defers, then falls back to local redeploy ---")
	// The retrained model grades well again: the EWMA decays below
	// Clear and the latch releases.
	for sec := 90; sec <= 105; sec += 5 {
		tick(sec, predErr(0))
	}
	tick(110, staleness(5), predErr(0)) // registry goes stale
	tick(115, predErr(4.0))             // fires again: retrain runs, publish deferred
	tick(130, staleness(25))            // still stale, publish still parked
	tick(145, staleness(40))            // past RedeployAfter: local redeploy instead

	fmt.Printf("\n%d decisions; executed: retrain=%d publish=%d redeploy=%d reshard=%d\n",
		sup.Decisions(),
		sup.Executed(f2pm.ActionRetrain), sup.Executed(f2pm.ActionPublish),
		sup.Executed(f2pm.ActionRedeploy), sup.Executed(f2pm.ActionReshard))
}
