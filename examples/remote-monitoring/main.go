// Remote monitoring: the paper's FMC/FMS deployment (§III-E) over real
// TCP sockets. An FMS collects datapoints shipped by an FMC whose
// feature source is, here, a synthetic degrading system (swap in the
// /proc source to monitor a real Linux host — see cmd/fmc).
//
// Run with:
//
//	go run ./examples/remote-monitoring
package main

import (
	"context"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	f2pm "repro"
)

func main() {
	// Feature Monitor Server: in production this runs on the training
	// machine, away from the monitored host.
	srv, err := f2pm.NewMonitorServer("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("FMS listening on %s\n", srv.Addr())

	// Feature Monitor Client on the "monitored host". The source fakes a
	// machine leaking ~40 MB per sample; uptime restarts after a fail.
	cli, err := f2pm.DialMonitor(srv.Addr(), "demo-vm")
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	const totalMem = 2 * 1024 * 1024 // KB
	var tick atomic.Int64
	var bootTick atomic.Int64
	source := f2pm.FeatureSourceFunc(func() (f2pm.Datapoint, error) {
		t := tick.Add(1)
		up := t - bootTick.Load()
		var d f2pm.Datapoint
		d.Tgen = float64(up) * 1.5
		used := 300*1024 + float64(up)*40*1024
		if used > totalMem {
			used = totalMem
		}
		d.Features[f2pm.MemUsed] = used
		d.Features[f2pm.MemFree] = totalMem - used
		d.Features[f2pm.NumThreads] = 200 + float64(up)
		d.Features[f2pm.CPUUser] = 25
		d.Features[f2pm.CPUIdle] = 75
		return d, nil
	})

	failures := make(chan float64, 8)
	coll := &f2pm.Collector{
		Client:   cli,
		Source:   source,
		Interval: 3 * time.Millisecond, // sped-up stand-in for the paper's 1.5 s
		Condition: f2pm.ThresholdCondition(
			f2pm.MemFree, 0.02*totalMem, -1), // fail: free mem below 2%
		OnFail: func(d *f2pm.Datapoint) {
			failures <- d.Tgen
			bootTick.Store(tick.Load()) // "restart" the monitored system
		},
	}
	if err := coll.Start(context.Background()); err != nil {
		log.Fatal(err)
	}

	// Wait for three monitored failures, then stop collecting.
	for i := 0; i < 3; i++ {
		select {
		case tgen := <-failures:
			fmt.Printf("fail event %d shipped at uptime %.1fs\n", i+1, tgen)
		case <-time.After(30 * time.Second):
			log.Fatal("timed out waiting for fail events")
		}
	}
	coll.Stop()

	// Give the server a moment to drain the socket, then fetch the
	// assembled history — ready for the F2PM pipeline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		h, ok := srv.History("demo-vm")
		if ok && len(h.FailedRuns()) >= 3 {
			fmt.Printf("FMS assembled %d runs (%d failed), %d datapoints — ready for training\n",
				len(h.Runs), len(h.FailedRuns()), h.TotalDatapoints())
			return
		}
		if time.Now().After(deadline) {
			log.Fatal("server did not assemble the history in time")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
