// Quickstart: simulate a short anomaly campaign, build prediction models
// with the F2PM pipeline, and use the best one to predict the remaining
// time to failure from a live feature stream.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	f2pm "repro"
)

func main() {
	// 1. Collect a data history. Production deployments use the FMC/FMS
	// monitor on a real host; here we use the simulated test-bed so the
	// example is self-contained and finishes in about a second.
	tbCfg := f2pm.DefaultTestbedConfig(1)
	tbCfg.Machine.TotalMemKB = 512 * 1024 // small VM → fast failures
	tbCfg.Machine.TotalSwapKB = 256 * 1024
	tbCfg.Machine.BaseUsedKB = 128 * 1024
	tbCfg.NumBrowsers = 15
	tbCfg.Browser.ThinkMeanSec = 2
	tbCfg.RebootDelaySec = 30
	tb, err := f2pm.NewTestbed(tbCfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := tb.Run(20_000) // virtual seconds
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d runs (%d ended in failure), %d raw datapoints\n",
		len(res.History.Runs), len(res.History.FailedRuns()), res.History.TotalDatapoints())

	// 2. Build and validate models. The compact roster keeps the example
	// fast; drop the Models override to train all six paper methods.
	cfg := f2pm.DefaultConfig()
	cfg.Aggregation.WindowSec = 15
	cfg.SelectionLambda = 1e5
	cfg.Models = f2pm.DefaultModels(nil)[:3] // linear regression, M5P, REP-Tree
	pipe, err := f2pm.NewPipeline(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report, err := pipe.Run(&res.History)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-20s %-6s %10s %8s\n", "model", "feats", "S-MAE (s)", "RAE")
	for _, r := range report.Results {
		if r.Err != nil {
			continue
		}
		fmt.Printf("%-20s %-6s %10.1f %8.3f\n", r.Spec.DisplayName, r.Features, r.Report.SoftMAE, r.Report.RAE)
	}
	best := report.Best()
	fmt.Printf("\nbest model: %s (%s features)\n", best.Spec.DisplayName, best.Features)

	// 3. Predict live. Stream one failed run's datapoints through the
	// live aggregator and ask the best all-params model for the RTTF.
	model := report.ByName(best.Spec.Name, f2pm.AllParams)
	la, err := f2pm.NewLiveAggregator(cfg.Aggregation)
	if err != nil {
		log.Fatal(err)
	}
	run := res.History.FailedRuns()[0]
	fmt.Printf("\nlive prediction on a run that failed at t=%.0fs:\n", run.FailTime)
	for _, d := range run.Datapoints {
		if row, tgen, ok := la.Push(d); ok {
			predicted := model.Model.Predict(row)
			actual := run.FailTime - tgen
			fmt.Printf("  t=%6.0fs  predicted RTTF %7.0fs   actual %7.0fs\n", tgen, predicted, actual)
		}
	}
}
