// Serving: the paper's deployed end state (§I, §III-E) on the public
// API. A pipeline trains RTTF models offline, the best model is
// deployed into a PredictionService, a live monitor streams datapoints
// into per-client sessions (monitor → aggregate → predict → act in one
// process), and when further runs accumulate the pipeline's incremental
// Update produces a fresh model that goes live without dropping a
// single estimate.
//
// The deploy loop here is the *bounded* variant a weeks-long
// deployment needs: the pipeline retrains under a WindowPolicy (the
// oldest runs are evicted, so memory stays flat while the models track
// the recent workload), the service pulls each retrained model through
// a ModelSource ticker (WithRefreshInterval — no explicit Deploy
// call), and idle client sessions are reclaimed by the TTL sweep
// (WithSessionTTL), their last estimates surfacing through the evict
// hook.
//
// The service itself runs the fleet-scale shape: the dispatch hot path
// is sharded (WithServeShards — per-shard queues, dispatchers, and
// session-map slices, so the idle sweep and slow batches never stall
// the other shards), and a ShedPolicy bounds overload by dropping
// windows of low-priority sessions first — the monitored client is
// registered at the priority floor (WithSessionPriority), so its
// windows are never shed.
//
// The finale scales the same loop out: the retrained model is
// published to a remote model registry and two serving nodes pull it
// through conditional-GET polling (HTTPModelSource) — surviving a
// simulated registry outage by serving their last-good model
// (stale-while-revalidate, staleness surfaced in Stats and in the
// registry's fleet health view) and reconverging to the model
// published during the outage on the first poll after recovery.
//
// Run with:
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	f2pm "repro"
)

const (
	totalMem   = 2 * 1024 * 1024 // KB
	sampleSec  = 1.5             // simulated seconds between datapoints
	leakPerDP  = 40 * 1024       // KB leaked per datapoint
	baseUsedKB = 300 * 1024
)

// leakDatapoint fabricates the feature snapshot of a machine that has
// been leaking for `step` samples.
func leakDatapoint(step int) f2pm.Datapoint {
	return leakDatapointRate(step, leakPerDP)
}

// leakDatapointRate is leakDatapoint with the leak rate as a knob —
// the registry walkthrough drifts the workload to force a genuinely
// different retrained model.
func leakDatapointRate(step, rate int) f2pm.Datapoint {
	var d f2pm.Datapoint
	d.Tgen = float64(step) * sampleSec
	used := float64(baseUsedKB + step*rate)
	if used > totalMem {
		used = totalMem
	}
	d.Features[f2pm.MemUsed] = used
	d.Features[f2pm.MemFree] = totalMem - used
	d.Features[f2pm.NumThreads] = 200 + float64(step)
	d.Features[f2pm.CPUUser] = 25
	d.Features[f2pm.CPUIdle] = 75
	return d
}

// leakRun generates one completed leak-to-failure run at the given
// leak rate.
func leakRun(rate int) f2pm.Run {
	var run f2pm.Run
	for step := 0; ; step++ {
		d := leakDatapointRate(step, rate)
		run.Datapoints = append(run.Datapoints, d)
		if d.Features[f2pm.MemFree] <= 0.02*totalMem {
			run.Failed = true
			run.FailTime = d.Tgen
			break
		}
	}
	return run
}

// syntheticHistory builds n completed leak-to-failure runs.
func syntheticHistory(n int) *f2pm.History {
	h := &f2pm.History{}
	for r := 0; r < n; r++ {
		h.Runs = append(h.Runs, leakRun(leakPerDP))
	}
	return h
}

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// 1. Offline phase: train on collected failure runs and pick the
	// best model (skip the slow SVM family to keep the demo snappy).
	cfg := f2pm.DefaultConfig()
	cfg.Aggregation.WindowSec = 15
	cfg.SelectionLambda = 0 // all-params only, fast
	cfg.FeatureLambdas = nil
	cfg.Models = f2pm.DefaultModels(nil)[:3] // linear, M5P, REP-Tree
	// Bounded retraining: keep only the most recent 4 runs — every
	// Update both appends the new runs and evicts the oldest, so a
	// deployment retraining forever holds a flat-sized history. The
	// per-row split keeps both the train and validation sides populated
	// inside such a small window; a whole-run split (SplitByRun) works
	// too — when a slide strands every surviving run on one side, the
	// pipeline re-draws the stranded runs' assignment (stable, seeded;
	// Report.SplitRedrawn) instead of deferring the eviction.
	cfg.Window = f2pm.WindowPolicy{MaxRuns: 4}
	cfg.SplitMode = f2pm.SplitByRow
	pipe, err := f2pm.NewPipeline(cfg)
	if err != nil {
		log.Fatal(err)
	}
	history := syntheticHistory(6)
	report, err := pipe.RunContext(ctx, history)
	if err != nil {
		log.Fatal(err)
	}
	dep, err := f2pm.DeploymentFromReport(report)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d runs; deploying %s (S-MAE %.1f s)\n",
		len(history.Runs), dep.Name, report.Best().Report.SoftMAE)

	// 2. Serving phase: a prediction service fed directly by the FMS.
	// The model registry refreshes itself from `latest` (stocked by the
	// retrain loop below), and sessions idle past the TTL are evicted
	// with their final snapshot reported — both tiers stay bounded.
	var latest atomic.Pointer[f2pm.Deployment]
	latest.Store(dep)
	var estimates, alerts atomic.Int64
	svc, err := f2pm.NewPredictionService(ctx,
		f2pm.WithModelSource(f2pm.ModelSourceFunc(
			func(context.Context) (*f2pm.Deployment, error) { return latest.Load(), nil })),
		f2pm.WithRefreshInterval(50*time.Millisecond),
		f2pm.WithSessionTTL(1500*time.Millisecond),
		// Fleet-scale dispatch: 4 shards (sessions hash across them;
		// enqueue/predict/sweep contend per shard), shedding windows of
		// below-floor sessions once a shard queues 10k windows.
		f2pm.WithServeShards(4),
		f2pm.WithShedPolicy(f2pm.ShedPolicy{MaxQueueDepth: 10_000, MinPriority: 1}),
		f2pm.WithSessionEvictFunc(func(ev f2pm.EvictedSession) {
			fmt.Printf("  evicted idle session %s after %d estimates (last RTTF %.0fs)\n",
				ev.ID, ev.Estimates, ev.Last.RTTF)
		}),
		f2pm.WithMaxSessions(64),
		f2pm.WithEstimateFunc(func(e f2pm.Estimate) {
			if estimates.Add(1)%8 == 1 { // sample the stream for the demo
				fmt.Printf("  client=%s t=%.0fs predicted_rttf=%.0fs (model v%d)\n",
					e.SessionID, e.Tgen, e.RTTF, e.ModelVersion)
			}
		}),
		f2pm.WithAlertFunc(60, func(a f2pm.Alert) {
			alerts.Add(1)
			fmt.Printf("  ALERT client=%s RTTF %.0fs < %.0fs — rejuvenate now\n",
				a.SessionID, a.RTTF, a.Threshold)
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	// Register the monitored client at the priority floor before it
	// connects: sessions auto-created by the FMS stream default to
	// priority 0, which the shed policy above would drop first under
	// overload.
	if _, err := svc.StartSession("web-vm-1", f2pm.WithSessionPriority(1)); err != nil {
		log.Fatal(err)
	}

	srv, err := f2pm.NewMonitorServer("127.0.0.1:0",
		f2pm.WithMonitorStream(svc), f2pm.WithMonitorContext(ctx))
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("FMS listening on %s, feeding the prediction service\n", srv.Addr())

	// A monitored client ships two leak-to-failure runs over real TCP.
	cli, err := f2pm.DialMonitorContext(ctx, srv.Addr(), "web-vm-1")
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()
	streamRun := func() {
		for step := 0; ; step++ {
			d := leakDatapoint(step)
			if err := cli.SendDatapoint(&d); err != nil {
				log.Fatal(err)
			}
			if d.Features[f2pm.MemFree] <= 0.02*totalMem {
				if err := cli.SendFail(d.Tgen); err != nil {
					log.Fatal(err)
				}
				return
			}
		}
	}
	fmt.Println("streaming run 1 under model v1:")
	streamRun()
	waitFor(func() bool { h, ok := srv.History("web-vm-1"); return ok && len(h.FailedRuns()) >= 1 })

	// 3. The bounded deploy loop: each completed run joins the history,
	// Update slides the training window (appending the new run,
	// evicting past the policy), and the auto-refresh ticker pulls the
	// retrained model live — no Deploy call anywhere.
	for round := 2; round <= 3; round++ {
		served, _ := srv.History("web-vm-1")
		history.Runs = history.Runs[:0:0]
		history.Runs = append(history.Runs, syntheticHistory(6).Runs...)
		history.Runs = append(history.Runs, served.FailedRuns()...)
		prevVer := svc.ModelVersion()
		report, err = pipe.UpdateContext(ctx, history)
		if err != nil {
			log.Fatal(err)
		}
		dep, err = f2pm.DeploymentFromReport(report)
		if err != nil {
			log.Fatal(err)
		}
		latest.Store(dep)
		waitFor(func() bool { return svc.ModelVersion() > prevVer })
		fmt.Printf("retrained: window starts at run %d, %d train rows retained; auto-refreshed %s to v%d\n",
			report.WindowStart, report.TrainRows, dep.Name, svc.ModelVersion())

		fmt.Printf("streaming run %d under v%d:\n", round, svc.ModelVersion())
		streamRun()
		waitFor(func() bool { h, ok := srv.History("web-vm-1"); return ok && len(h.FailedRuns()) >= round })
	}

	// 4. The client goes quiet; the TTL sweep reclaims its session.
	waitFor(func() bool { return svc.Stats().EvictedSessions >= 1 })

	st := svc.Stats()
	fmt.Printf("served %d estimates (%d alerts) on %d shards, %d session(s) evicted, %d window(s) shed, queue depth %d, final model v%d\n",
		st.Predictions, st.Alerts, st.Shards, st.EvictedSessions, st.ShedWindows, st.QueueDepth, st.ModelVersion)
	svc.Close()

	// 5. Scale out: the same deployment distributed through a remote
	// model registry. Two serving nodes poll the registry with
	// conditional GETs (an unchanged model costs a 304 and the refresh
	// is a no-op), heartbeat their state into the fleet health view,
	// and — when the registry dies mid-flight — keep predicting from
	// their last-good model (stale-while-revalidate, surfaced in
	// Stats), reconverging to everything published during the outage on
	// the first poll after recovery.
	registryWalkthrough(ctx, pipe, history, dep)
}

// regNode is one registry-backed serving node in the walkthrough.
type regNode struct {
	name string
	src  *f2pm.HTTPModelSource
	svc  *f2pm.PredictionService
	sess *f2pm.ServeSession
	step int
}

// feed pushes n monitor samples into the node's session (the demo's
// stand-in for the FMS stream of part 2).
func (n *regNode) feed(count int) {
	for i := 0; i < count; i++ {
		d := leakDatapoint(n.step)
		n.step++
		if err := n.sess.Push(d); err != nil {
			log.Fatal(err)
		}
	}
}

func registryWalkthrough(ctx context.Context, pipe *f2pm.Pipeline, history *f2pm.History, dep *f2pm.Deployment) {
	// The registry itself — one process the whole fleet converges on
	// (in production: `fmr -listen :7071 -persist reg.model`). A kill
	// switch in front simulates the outage.
	reg := f2pm.NewModelRegistry()
	var regDown atomic.Bool
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	proxy := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if regDown.Load() {
			http.Error(w, "registry down (simulated outage)", http.StatusServiceUnavailable)
			return
		}
		reg.ServeHTTP(w, r)
	})}
	go proxy.Serve(ln)
	defer proxy.Close()
	regURL := "http://" + ln.Addr().String()

	pub, err := f2pm.PublishDeployment(ctx, regURL, dep)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registry up at %s; published %s as v%d (etag %.10s...)\n",
		regURL, dep.Name, pub.Version, pub.ETag)

	// Two serving nodes, each pulling through an HTTPModelSource: the
	// on-disk cache survives restarts, the breaker backoff stays below
	// the refresh interval so a healed registry reconverges on the very
	// next poll.
	cacheDir, err := os.MkdirTemp("", "f2pm-registry-demo")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(cacheDir)
	const refreshEvery = 25 * time.Millisecond
	var nodes []*regNode
	for _, name := range []string{"node-a", "node-b"} {
		src := f2pm.NewHTTPModelSource(regURL, f2pm.HTTPSourceConfig{
			CacheFile:        filepath.Join(cacheDir, name+".model"),
			Backoff:          f2pm.RetryBackoff{Base: 2 * time.Millisecond, Max: 10 * time.Millisecond},
			BreakerThreshold: 3,
			RNG:              f2pm.NewRandomSource(42),
		})
		svc, err := f2pm.NewPredictionService(ctx,
			f2pm.WithModelSource(src),
			f2pm.WithRefreshInterval(refreshEvery))
		if err != nil {
			log.Fatal(err)
		}
		defer svc.Close()
		sess, err := svc.StartSession("web-vm-" + name)
		if err != nil {
			log.Fatal(err)
		}
		nodes = append(nodes, &regNode{name: name, src: src, svc: svc, sess: sess})
		fmt.Printf("  %s booted from the registry (model v%d)\n", name, svc.ModelVersion())
	}

	// Steady state: both nodes predict, heartbeat, and show as alive
	// and current in the fleet health view.
	for _, n := range nodes {
		n.feed(40)
	}
	for _, n := range nodes {
		node := n
		waitFor(func() bool { return node.svc.Stats().Predictions > 0 })
	}
	reportFleet(ctx, regURL, nodes)

	// The registry dies; the trainer (co-located with it, unaffected by
	// the partition) retrains on a drifted workload — the leak got 2×
	// faster — and publishes the new model into the cut-off registry.
	regDown.Store(true)
	fmt.Println("  registry OUTAGE begins; retraining on the drifted workload meanwhile")
	for i := 0; i < 4; i++ {
		history.Runs = append(history.Runs, leakRun(2*leakPerDP))
	}
	report, err := pipe.UpdateContext(ctx, history)
	if err != nil {
		log.Fatal(err)
	}
	dep2, err := f2pm.DeploymentFromReport(report)
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f2pm.SaveDeployment(&buf, dep2); err != nil {
		log.Fatal(err)
	}
	pub2, err := reg.SetModel(buf.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  published v%d while the fleet is cut off (etag %.10s...)\n", pub2.Version, pub2.ETag)

	// Mid-outage: both nodes keep predicting from their last-good
	// model and say so out loud — staleness is surfaced, not swallowed.
	for _, n := range nodes {
		node := n
		waitFor(func() bool { return node.svc.Stats().RegistryStale })
		base := node.svc.Stats().Predictions
		node.feed(40)
		waitFor(func() bool { return node.svc.Stats().Predictions > base })
		st := node.svc.Stats()
		fmt.Printf("  %s serving STALE from last-good v%d (stale %.0fms, %d predictions; last error: %.40s...)\n",
			node.name, st.ModelVersion, st.RegistryStaleAge.Seconds()*1000, st.Predictions, st.RegistryLastError)
	}

	// Recovery: the next poll converges every node to the model
	// published during the outage.
	regDown.Store(false)
	for _, n := range nodes {
		node := n
		waitFor(func() bool {
			st := node.svc.Stats()
			return !st.RegistryStale && node.src.ETag() == pub2.ETag
		})
		fmt.Printf("  %s reconverged to the outage-time publish (model v%d)\n",
			node.name, node.svc.ModelVersion())
	}
	reportFleet(ctx, regURL, nodes)
}

// reportFleet heartbeats every node's state to the registry and prints
// the resulting /v1/health fleet view.
func reportFleet(ctx context.Context, regURL string, nodes []*regNode) {
	rc := f2pm.NewRegistryClient(regURL, nil)
	for _, n := range nodes {
		st := n.svc.Stats()
		if _, err := rc.SendHeartbeat(ctx, f2pm.RegistryHeartbeat{
			Node:         n.name,
			ETag:         n.src.ETag(),
			ModelVersion: st.ModelVersion,
			Sessions:     st.Sessions,
			Predictions:  st.Predictions,
			Stale:        st.RegistryStale,
			StaleAgeSec:  st.RegistryStaleAge.Seconds(),
			LastError:    st.RegistryLastError,
		}); err != nil {
			log.Fatal(err)
		}
	}
	h, err := rc.FetchHealth(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  fleet health: model v%d (%s), %d/%d nodes alive, %d stale\n",
		h.ModelVersion, h.ModelKind, h.AliveNodes, len(h.Nodes), h.StaleNodes)
	for _, nh := range h.Nodes {
		fmt.Printf("    %s: current=%v stale=%v predictions=%d\n",
			nh.Node, nh.Current, nh.Stale, nh.Predictions)
	}
}

// waitFor polls cond until it holds (the TCP stream is asynchronous).
func waitFor(cond func() bool) {
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatal("timed out waiting for the monitor stream to drain")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
