// Proactive rejuvenation: the paper's motivating use case (§I). Train an
// RTTF model on one campaign, then deploy it as a rejuvenation policy on
// a second campaign: when the predicted remaining time to failure drops
// below the action lead time, restart the application *before* it
// crashes. Compare crashes, downtime, and served requests against the
// reactive baseline that just waits for failures.
//
// Run with:
//
//	go run ./examples/rejuvenation
package main

import (
	"fmt"
	"log"

	f2pm "repro"
)

const (
	trainSeconds  = 25_000
	deploySeconds = 25_000
	// leadTime is how far ahead the operator wants to act: predictions
	// under this trigger a restart (the S-MAE threshold rationale).
	leadTime = 180.0
	// crashRebootSec vs rejuvenationSec: a clean restart is much faster
	// than recovering from an OOM-crashed VM.
	crashRebootSec  = 60.0
	rejuvenationSec = 15.0
)

func testbedConfig(seed uint64) f2pm.TestbedConfig {
	cfg := f2pm.DefaultTestbedConfig(seed)
	cfg.Machine.TotalMemKB = 768 * 1024
	cfg.Machine.TotalSwapKB = 384 * 1024
	cfg.Machine.BaseUsedKB = 160 * 1024
	cfg.NumBrowsers = 20
	cfg.Browser.ThinkMeanSec = 3
	cfg.RebootDelaySec = crashRebootSec
	return cfg
}

func main() {
	// Phase 1: collect training data (monitoring-only campaign).
	tb, err := f2pm.NewTestbed(testbedConfig(11))
	if err != nil {
		log.Fatal(err)
	}
	trainRes, err := tb.Run(trainSeconds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training campaign: %d failed runs\n", len(trainRes.History.FailedRuns()))

	// Phase 2: build the model (REP-Tree/M5P family; all parameters so
	// live rows can be fed directly).
	plCfg := f2pm.DefaultConfig()
	plCfg.Aggregation.WindowSec = 15
	plCfg.SelectionLambda = 0 // all-params model for direct live rows
	plCfg.FeatureLambdas = nil
	plCfg.Models = f2pm.DefaultModels(nil)[:3]
	pipe, err := f2pm.NewPipeline(plCfg)
	if err != nil {
		log.Fatal(err)
	}
	report, err := pipe.Run(&trainRes.History)
	if err != nil {
		log.Fatal(err)
	}
	best := report.Best()
	fmt.Printf("trained %s — S-MAE %.0fs (tolerance %.0fs)\n\n",
		best.Spec.DisplayName, best.Report.SoftMAE, report.SMAEThreshold)

	// Phase 3: deploy. Baseline first — same seed, no policy.
	baselineTB, err := f2pm.NewTestbed(testbedConfig(22))
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := baselineTB.Run(deploySeconds)
	if err != nil {
		log.Fatal(err)
	}

	// Proactive: identical campaign, with the model watching the live
	// feature stream through the same aggregation the training used.
	la, err := f2pm.NewLiveAggregator(plCfg.Aggregation)
	if err != nil {
		log.Fatal(err)
	}
	proactiveCfg := testbedConfig(22)
	proactiveCfg.RejuvenationDelaySec = rejuvenationSec
	warmup := true
	proactiveCfg.RejuvenationPolicy = func(d *f2pm.Datapoint) bool {
		if d.Tgen < plCfg.Aggregation.WindowSec { // fresh boot: reset stream
			if warmup {
				la.Reset()
				warmup = false
			}
		} else {
			warmup = true
		}
		row, _, ok := la.Push(*d)
		if !ok {
			return false
		}
		predicted := best.Model.Predict(row)
		return predicted >= 0 && predicted < leadTime
	}
	proactiveTB, err := f2pm.NewTestbed(proactiveCfg)
	if err != nil {
		log.Fatal(err)
	}
	proactive, err := proactiveTB.Run(deploySeconds)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-28s %12s %12s\n", "deployment metric", "reactive", "proactive")
	fmt.Printf("%-28s %12d %12d\n", "crashes", crashes(baseline), crashes(proactive))
	fmt.Printf("%-28s %12d %12d\n", "rejuvenations", rejuvenations(baseline), rejuvenations(proactive))
	fmt.Printf("%-28s %12.0f %12.0f\n", "downtime (s)", downtime(baseline), downtime(proactive))
	fmt.Printf("%-28s %12d %12d\n", "requests served", served(baseline), served(proactive))
	fmt.Printf("%-28s %12.0f %12.0f\n", "requests lost (aborts)", aborted(baseline), aborted(proactive))
}

func crashes(r *f2pm.TestbedResult) int { return len(r.History.FailedRuns()) }

func rejuvenations(r *f2pm.TestbedResult) int {
	n := 0
	for _, ri := range r.Runs {
		if ri.Rejuvenated {
			n++
		}
	}
	return n
}

func downtime(r *f2pm.TestbedResult) float64 {
	var d float64
	for _, ri := range r.Runs {
		if ri.Failed {
			d += crashRebootSec
		} else if ri.Rejuvenated {
			d += rejuvenationSec
		}
	}
	return d
}

func served(r *f2pm.TestbedResult) int {
	n := 0
	for _, ri := range r.Runs {
		n += ri.Stats.Completed
	}
	return n
}

func aborted(r *f2pm.TestbedResult) float64 {
	var n float64
	for _, ri := range r.Runs {
		n += float64(ri.Stats.Aborted + ri.Stats.Rejected)
	}
	return n
}
