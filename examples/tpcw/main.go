// TPC-W scenario: the paper's full evaluation workflow on the simulated
// e-commerce test-bed — a week-scale campaign, feature selection, all six
// learning methods on both feature families, and the model comparison
// the framework hands to the user.
//
// Run with (takes a minute or two):
//
//	go run ./examples/tpcw
package main

import (
	"fmt"
	"log"
	"runtime"
	"sort"
	"time"

	f2pm "repro"
)

func main() {
	// The paper ran TPC-W for one real week. A virtual half-week against
	// the default 2 GB VM produces a comparable number of failure runs.
	const virtualSeconds = 50_000

	t0 := time.Now()
	tb, err := f2pm.NewTestbed(f2pm.DefaultTestbedConfig(2015))
	if err != nil {
		log.Fatal(err)
	}
	res, err := tb.Run(virtualSeconds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %.1f virtual hours in %v\n", virtualSeconds/3600.0, time.Since(t0).Round(time.Millisecond))
	fmt.Printf("runs: %d total, %d failed; mean time-to-failure %.0fs\n",
		len(res.Runs), len(res.History.FailedRuns()), meanFailTime(res))

	cfg := f2pm.DefaultConfig()
	cfg.SelectionLambda = 1e5 // ≈ the paper's λ=10⁹ modulo eq. (2)'s 1/n factor
	cfg.Parallelism = runtime.NumCPU()
	pipe, err := f2pm.NewPipeline(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report, err := pipe.Run(&res.History)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nfeature selection at λ=%g kept %d of %d columns:\n",
		report.Selection.Lambda, report.Selection.NumSelected(), report.Columns)
	for _, w := range report.Selection.SortedWeights() {
		fmt.Printf("  %-26s %+.9f\n", w.Name, w.Beta)
	}

	// Model comparison: the paper's Table II view (S-MAE, both families).
	type key struct{ name string }
	rows := map[key]*[2]float64{}
	var order []key
	for i := range report.Results {
		r := &report.Results[i]
		if r.Err != nil {
			continue
		}
		k := key{name: r.Spec.DisplayName}
		if _, ok := rows[k]; !ok {
			rows[k] = &[2]float64{-1, -1}
			order = append(order, k)
		}
		if r.Features == f2pm.AllParams {
			rows[k][0] = r.Report.SoftMAE
		} else {
			rows[k][1] = r.Report.SoftMAE
		}
	}
	sort.Slice(order, func(i, j int) bool { return rows[order[i]][0] < rows[order[j]][0] })
	fmt.Printf("\nS-MAE comparison (tolerance %.0fs):\n", report.SMAEThreshold)
	fmt.Printf("  %-22s %14s %18s\n", "model", "all params (s)", "lasso-selected (s)")
	for _, k := range order {
		v := rows[k]
		fmt.Printf("  %-22s %14.1f %18s\n", k.name, v[0], maybe(v[1]))
	}

	best := report.Best()
	fmt.Printf("\nrecommended model: %s (%s features) — S-MAE %.1fs, trained in %v\n",
		best.Spec.DisplayName, best.Features, best.Report.SoftMAE, best.Report.TrainingTime.Round(time.Millisecond))
}

func meanFailTime(res *f2pm.TestbedResult) float64 {
	var sum float64
	n := 0
	for _, r := range res.History.FailedRuns() {
		sum += r.FailTime
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func maybe(v float64) string {
	if v < 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f", v)
}
