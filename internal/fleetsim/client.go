package fleetsim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/aggregate"
	"repro/internal/randx"
	"repro/internal/serve"
	"repro/internal/trace"
)

// client is one simulated monitored application: a machine-sized memory
// pool, a leak eating it (the paper's TPC-W memory-leak ramp), and the
// bookkeeping the runner needs for exact window accounting.
type client struct {
	id   string
	tmpl *Template
	rng  *randx.Source

	// leakRate is this client's drawn KB/s rate; burst multiplies it
	// while a leak_burst chaos condition is active.
	leakRate   float64
	burst      float64
	burstUntil int
	// rate is the template's virtual-time compression (Template.Rate,
	// guarded to 1 for programmatically built scenarios that leave it
	// zero): each runner tick advances this client's run by rate·tick
	// seconds, scaling Tgen, the leak, and the window rate together.
	rate float64

	// Lifecycle. A client arrives at startTick; crashes and flaps make
	// it dark until downTick (crashed restarts the app — Tgen resets —
	// while a flap only drops the connection, the app keeps running).
	startTick int
	active    bool
	crashed   bool
	flapped   bool
	downTick  int

	// Current-run state.
	runStart   int // tick of the run's Tgen zero
	baseUsedKB float64
	usedKB     float64
	swapKB     float64
	pendingRun []trace.Datapoint // datapoints of the run in progress
	restartAt  int               // tick the next run starts after a failure

	// mirror re-runs the serving side's aggregation on exactly the
	// datapoints this client pushed, making "how many windows did this
	// session hand the service" exact by construction.
	mirror *aggregate.LiveAggregator

	// Accounting.
	runs         int // completed (failed) runs
	crashes      int
	flaps        int
	pushed       int   // datapoints pushed
	attempted    int   // windows the aggregation completed
	shed         int   // windows dropped by the shed policy
	delivered    int   // estimates received
	pendingTicks []int // push tick of each accepted, not-yet-delivered window
	everCrashed  bool
	latencySum   int
	latencyMax   int

	// lastEst is the most recent estimate delivered to this client —
	// graded against the observed failure time when the client actually
	// fails, becoming the supervisor's prediction-error feedback.
	lastEst serve.Estimate
	hasEst  bool
}

// step advances the leak model by one tick and returns the datapoint
// the client's monitor samples, plus failed=true when this sample
// crosses the failure condition (free memory and swap both below the
// template's FailFrac — trace.MemoryExhaustion's shape).
func (c *client) step(tick int, tickSec float64) (d trace.Datapoint, failed bool) {
	t := c.tmpl
	leak := c.leakRate * c.burst * tickSec
	if t.NoiseFrac > 0 {
		leak *= 1 + t.NoiseFrac*(2*c.rng.Float64()-1)
	}
	if leak < 0 {
		leak = 0
	}
	c.usedKB += leak
	// Memory pressure spills into swap: the resident set cannot grow
	// past (1-FailFrac)·total, the OS pages the excess out.
	memCap := (1 - t.FailFrac) * t.MemTotalKB
	if c.usedKB > memCap {
		c.swapKB += c.usedKB - memCap
		c.usedKB = memCap
	}
	if c.swapKB > t.SwapTotalKB {
		c.swapKB = t.SwapTotalKB
	}

	d.Tgen = float64(tick-c.runStart) * tickSec
	pressure := c.swapKB / t.SwapTotalKB // 0 = healthy, 1 = exhausted
	noise := func(base, frac float64) float64 {
		if t.NoiseFrac <= 0 {
			return base
		}
		return base * (1 + frac*(2*c.rng.Float64()-1))
	}
	f := &d.Features
	f[trace.MemUsed] = c.usedKB
	f[trace.MemFree] = t.MemTotalKB - c.usedKB
	f[trace.MemShared] = noise(0.01*t.MemTotalKB, t.NoiseFrac)
	// The disk cache shrinks as the leak squeezes it out.
	f[trace.MemBuffers] = noise(0.02*t.MemTotalKB, t.NoiseFrac)
	f[trace.MemCached] = noise(math.Max(0.005, 0.25*(1-c.usedKB/t.MemTotalKB))*t.MemTotalKB, t.NoiseFrac)
	f[trace.SwapUsed] = c.swapKB
	f[trace.SwapFree] = t.SwapTotalKB - c.swapKB
	f[trace.NumThreads] = math.Round(noise(80+40*pressure, t.NoiseFrac))
	// Paging turns CPU time into I/O wait as the ramp progresses.
	iow := noise(2+70*pressure, t.NoiseFrac)
	usr := noise(25*(1-0.6*pressure), t.NoiseFrac)
	sys := noise(8+10*pressure, t.NoiseFrac)
	f[trace.CPUIOWait] = clampPct(iow)
	f[trace.CPUUser] = clampPct(usr)
	f[trace.CPUSystem] = clampPct(sys)
	f[trace.CPUNice] = 0
	f[trace.CPUSteal] = clampPct(noise(0.5, t.NoiseFrac))
	f[trace.CPUIdle] = clampPct(100 - f[trace.CPUUser] - f[trace.CPUSystem] - f[trace.CPUIOWait] - f[trace.CPUSteal])

	// The caps above pin the ramp exactly at the thresholds, so failure
	// is saturation of both: resident memory at its ceiling and swap
	// fully consumed (free-memory and free-swap both at or below the
	// FailFrac floor — the paper's memory-exhaustion condition).
	failed = c.usedKB >= memCap && c.swapKB >= t.SwapTotalKB
	return d, failed
}

func clampPct(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 100 {
		return 100
	}
	return v
}

// resetRun starts a fresh run at tick: memory state re-baselined with a
// drawn cold-start footprint, the in-progress run buffer cleared.
func (c *client) resetRun(tick int) {
	t := c.tmpl
	c.runStart = tick
	c.baseUsedKB = 0.2 * t.MemTotalKB * (1 + 0.1*(2*c.rng.Float64()-1))
	c.usedKB = c.baseUsedKB
	c.swapKB = 0
	c.pendingRun = c.pendingRun[:0]
	c.hasEst = false
}

// newFleet expands the scenario's templates into Count clients with
// deterministic ids, largest-remainder weight rounding, per-client leak
// rates, and arrival ticks (spike or linear ramp plus normal cold-start
// jitter). The returned slice is ordered by arrival tick, then id — the
// order the runner starts and steps them in.
func newFleet(sc *Scenario, rng *randx.Source) ([]*client, error) {
	counts, err := apportion(sc.Fleet.Templates, sc.Fleet.Count)
	if err != nil {
		return nil, err
	}
	tickSec := sc.Tick.Seconds()
	var fleet []*client
	for ti := range sc.Fleet.Templates {
		t := &sc.Fleet.Templates[ti]
		for i := 0; i < counts[ti]; i++ {
			id := fmt.Sprintf("%s-%02d", t.Name, i)
			c := &client{
				id:    id,
				tmpl:  t,
				rng:   rng.Fork(uint64(len(fleet)) + 1),
				burst: 1,
				rate:  t.Rate,
			}
			if c.rate <= 0 {
				c.rate = 1
			}
			c.leakRate = t.LeakKBPerSec
			if t.LeakJitter > 0 {
				c.leakRate *= 1 + t.LeakJitter*(2*c.rng.Float64()-1)
			}
			if c.leakRate <= 0 {
				c.leakRate = t.LeakKBPerSec
			}
			// Arrival: where on the ramp this client joins.
			var at float64
			if sc.Fleet.Arrival == "linear" && sc.Fleet.Count > 1 {
				at = float64(len(fleet)) / float64(sc.Fleet.Count-1) * sc.Fleet.ArrivalOver.Seconds()
			}
			if j := sc.Fleet.StartJitter.Seconds(); j > 0 {
				at += c.rng.Norm(0, j)
			}
			if at < 0 {
				at = 0
			}
			c.startTick = int(at / tickSec)
			agg, err := aggregate.NewLiveAggregator(aggConfig(sc))
			if err != nil {
				return nil, err
			}
			c.mirror = agg
			fleet = append(fleet, c)
		}
	}
	sort.SliceStable(fleet, func(i, j int) bool {
		if fleet[i].startTick != fleet[j].startTick {
			return fleet[i].startTick < fleet[j].startTick
		}
		return fleet[i].id < fleet[j].id
	})
	return fleet, nil
}

// apportion distributes count instances over the templates
// proportionally to weight, by largest remainder.
func apportion(templates []Template, count int) ([]int, error) {
	var total float64
	for _, t := range templates {
		total += t.Weight
	}
	if total <= 0 {
		return nil, fmt.Errorf("fleetsim: total template weight must be positive")
	}
	counts := make([]int, len(templates))
	rem := make([]float64, len(templates))
	assigned := 0
	for i, t := range templates {
		exact := float64(count) * t.Weight / total
		counts[i] = int(exact)
		rem[i] = exact - float64(counts[i])
		assigned += counts[i]
	}
	order := make([]int, len(templates))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return rem[order[a]] > rem[order[b]] })
	for k := 0; assigned < count; k++ {
		counts[order[k%len(order)]]++
		assigned++
	}
	return counts, nil
}

// aggConfig is the aggregation the serving side and the mirrors share.
func aggConfig(sc *Scenario) aggregate.Config {
	return aggregate.Config{
		WindowSec:       sc.Serve.WindowSec,
		IncludeSlopes:   sc.Serve.IncludeSlopes,
		IncludeIntergen: sc.Serve.IncludeIntergen,
	}
}
