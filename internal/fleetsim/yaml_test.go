package fleetsim

import (
	"reflect"
	"testing"
)

func TestParseYAMLDocument(t *testing.T) {
	doc := `
# scenario header
name: smoke          # inline comment
seed: 42
tick: 1s
ratio: 0.5
debug: true
empty:
nested:
  a: 1
  b:
    c: "x: y"        # colon inside quotes
scalars:
  - one
  - 2
  - 3.5
items:
  - name: 'first'
    weight: 2
    sub:
      deep: ok
  - name: second
    weight: 1
`
	got, err := parseYAML([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"name":  "smoke",
		"seed":  int64(42),
		"tick":  "1s",
		"ratio": 0.5,
		"debug": true,
		"empty": nil,
		"nested": map[string]any{
			"a": int64(1),
			"b": map[string]any{"c": "x: y"},
		},
		"scalars": []any{"one", int64(2), 3.5},
		"items": []any{
			map[string]any{"name": "first", "weight": int64(2),
				"sub": map[string]any{"deep": "ok"}},
			map[string]any{"name": "second", "weight": int64(1)},
		},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseYAML:\n got  %#v\n want %#v", got, want)
	}
}

func TestParseYAMLErrors(t *testing.T) {
	cases := map[string]string{
		"tab indent":    "a:\n\tb: 1",
		"no colon":      "just a scalar line",
		"duplicate key": "a: 1\na: 2",
		"bad indent":    "a: 1\n  b: 2",
	}
	for name, doc := range cases {
		if _, err := parseYAML([]byte(doc)); err == nil {
			t.Errorf("%s: parse succeeded, want error", name)
		}
	}
}

func TestParseYAMLScalars(t *testing.T) {
	cases := []struct {
		in   string
		want any
	}{
		{"null", nil}, {"~", nil}, {"true", true}, {"false", false},
		{"7", int64(7)}, {"-3", int64(-3)}, {"2.5", 2.5}, {"1e3", 1000.0},
		{"30s", "30s"}, {"'7'", "7"}, {`"a\nb"`, "a\nb"}, {"''", ""},
	}
	for _, c := range cases {
		if got := parseScalar(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseScalar(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
}
