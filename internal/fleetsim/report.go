package fleetsim

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// LogEntry is one line of the scenario's deterministic event log:
// everything that happened, in order, with no wall-clock content — two
// runs of the same scenario and seed produce byte-identical logs.
type LogEntry struct {
	Tick   int    `json:"tick"`
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

// CheckResult is one evaluated assertion.
type CheckResult struct {
	// At is "final" or the virtual time of the assert event ("t=90s").
	At     string `json:"at"`
	Check  string `json:"check"`
	Passed bool   `json:"passed"`
	Detail string `json:"detail"`
}

// SessionReport is the per-client accounting table: how many windows
// the client's aggregation completed, how many the shed policy dropped,
// and how many estimates came back. For a session that never crashed,
// Lost (= Windows − Shed − Delivered after the final drain) must be 0 —
// the harness's no-lost-windows invariant.
type SessionReport struct {
	ID        string `json:"id"`
	Template  string `json:"template"`
	Priority  int    `json:"priority"`
	Runs      int    `json:"runs"`
	Crashes   int    `json:"crashes"`
	Flaps     int    `json:"flaps"`
	Pushed    int    `json:"pushed"`
	Windows   int    `json:"windows"`
	Shed      int    `json:"shed"`
	Delivered int    `json:"delivered"`
	Lost      int    `json:"lost"`
}

// LatencyBucket is one row of the queue-latency histogram: how many
// windows waited exactly Ticks virtual ticks for their estimate.
type LatencyBucket struct {
	Ticks int `json:"ticks"`
	Count int `json:"count"`
}

// Report is the scenario outcome: counters, the per-session table, the
// assertion results, and the full event log. Everything except
// WallDuration is deterministic under a fixed scenario and seed.
type Report struct {
	Scenario        string `json:"scenario"`
	Seed            uint64 `json:"seed"`
	Ticks           int    `json:"ticks"`
	VirtualDuration string `json:"virtual_duration"`
	WallDuration    string `json:"wall_duration,omitempty"`

	Clients       int `json:"clients"`
	CompletedRuns int `json:"completed_runs"`
	Crashes       int `json:"crashes"`
	Flaps         int `json:"flaps"`

	Retrains          int      `json:"retrains"`
	Redraws           int      `json:"redraws"`
	ParityChecks      int      `json:"parity_checks"`
	ParityFailures    []string `json:"parity_failures,omitempty"`
	Deploys           int      `json:"deploys"`
	FinalModelVersion uint64   `json:"final_model_version"`

	Predictions     uint64         `json:"predictions"`
	Alerts          uint64         `json:"alerts"`
	ShedWindows     uint64         `json:"shed_windows"`
	ShedByPriority  map[int]uint64 `json:"shed_by_priority,omitempty"`
	EvictedSessions uint64         `json:"evicted_sessions"`
	MaxQueueDepth   int            `json:"max_queue_depth"`
	Batches         int            `json:"batches"`
	MaxBatchSize    int            `json:"max_batch_size"`
	// CoalescedBatches counts prediction batches that merged stolen
	// cross-shard windows (serve.CoalescePolicy), CoalescedWindows the
	// stolen windows themselves — the light-load regime's signature is
	// few, large, mostly-coalesced batches.
	CoalescedBatches uint64 `json:"coalesced_batches,omitempty"`
	CoalescedWindows uint64 `json:"coalesced_windows,omitempty"`

	// Queue latency distribution, in virtual ticks from window
	// completion to estimate delivery. The percentiles are
	// nearest-rank over LatencyHistogram, so scenarios can assert tail
	// latency (max_p99_latency), not just the mean.
	MeanLatencyTicks float64         `json:"mean_latency_ticks"`
	MaxLatencyTicks  int             `json:"max_latency_ticks"`
	LatencyP50Ticks  int             `json:"latency_p50_ticks"`
	LatencyP90Ticks  int             `json:"latency_p90_ticks"`
	LatencyP99Ticks  int             `json:"latency_p99_ticks"`
	LatencyHistogram []LatencyBucket `json:"latency_histogram,omitempty"`
	LostWindows      int             `json:"lost_windows"`

	// Registry mode (ServeConfig.Registry): how many retrains were
	// published to the simulated registry, and whether the model
	// source was still serving stale when the run ended.
	Publishes    int  `json:"publishes,omitempty"`
	FinallyStale bool `json:"finally_stale,omitempty"`

	// Supervisor mode (Scenario.Supervisor): how many decisions the
	// autonomic loop made (every one is also a "decision" log line)
	// and how many actions of each kind actually executed.
	Decisions       int            `json:"decisions,omitempty"`
	ActionsExecuted map[string]int `json:"actions_executed,omitempty"`

	// Placement mode (ServeConfig.Placement): how many sessions the
	// rebalance actuator migrated, and the max/mean per-shard window
	// skew over the windows enqueued since the last executed rebalance
	// (whole run when none executed; 0 when no window landed in the
	// measured interval).
	Migrations     uint64  `json:"migrations,omitempty"`
	FinalShardSkew float64 `json:"final_shard_skew,omitempty"`

	Sessions   []SessionReport `json:"sessions"`
	Assertions []CheckResult   `json:"assertions"`
	Errors     []string        `json:"errors,omitempty"`
	Log        []LogEntry      `json:"log"`

	// Passed is true when every assertion held and the run recorded no
	// internal errors.
	Passed bool `json:"passed"`
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Fingerprint is the canonical replay-comparison form: the event log
// and assertion outcomes, one per line, with the wall clock excluded.
// Two runs of the same scenario and seed must produce identical
// fingerprints — the deterministic-replay contract.
func (r *Report) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario=%s seed=%d ticks=%d\n", r.Scenario, r.Seed, r.Ticks)
	for _, e := range r.Log {
		fmt.Fprintf(&b, "%06d %s %s\n", e.Tick, e.Kind, e.Detail)
	}
	for _, c := range r.Assertions {
		fmt.Fprintf(&b, "assert %s %s passed=%v %s\n", c.At, c.Check, c.Passed, c.Detail)
	}
	fmt.Fprintf(&b, "predictions=%d shed=%d runs=%d lost=%d passed=%v\n",
		r.Predictions, r.ShedWindows, r.CompletedRuns, r.LostWindows, r.Passed)
	fmt.Fprintf(&b, "latency p50=%d p90=%d p99=%d max=%d publishes=%d decisions=%d\n",
		r.LatencyP50Ticks, r.LatencyP90Ticks, r.LatencyP99Ticks, r.MaxLatencyTicks, r.Publishes, r.Decisions)
	fmt.Fprintf(&b, "batches=%d maxbatch=%d coalesced=%d stolen=%d\n",
		r.Batches, r.MaxBatchSize, r.CoalescedBatches, r.CoalescedWindows)
	fmt.Fprintf(&b, "migrations=%d skew=%.6f\n", r.Migrations, r.FinalShardSkew)
	return b.String()
}

// WriteText renders the human-readable summary.
func (r *Report) WriteText(w io.Writer) {
	status := "PASSED"
	if !r.Passed {
		status = "FAILED"
	}
	fmt.Fprintf(w, "scenario %q (seed %d): %s\n", r.Scenario, r.Seed, status)
	fmt.Fprintf(w, "  simulated %s in %d ticks", r.VirtualDuration, r.Ticks)
	if r.WallDuration != "" {
		fmt.Fprintf(w, " (%s wall)", r.WallDuration)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  fleet: %d clients, %d completed runs, %d crashes, %d flaps\n",
		r.Clients, r.CompletedRuns, r.Crashes, r.Flaps)
	fmt.Fprintf(w, "  models: %d retrains, %d split redraws (%d parity checks, %d failures), %d deploys, final version %d\n",
		r.Retrains, r.Redraws, r.ParityChecks, len(r.ParityFailures), r.Deploys, r.FinalModelVersion)
	fmt.Fprintf(w, "  serving: %d predictions, %d alerts, %d batches (max %d), peak queue %d, %d evictions\n",
		r.Predictions, r.Alerts, r.Batches, r.MaxBatchSize, r.MaxQueueDepth, r.EvictedSessions)
	if r.CoalescedBatches > 0 {
		fmt.Fprintf(w, "  coalescing: %d merged batches, %d windows stolen cross-shard\n",
			r.CoalescedBatches, r.CoalescedWindows)
	}
	if r.Migrations > 0 || r.FinalShardSkew > 0 {
		fmt.Fprintf(w, "  placement: %d migrations, final shard skew %.3f\n",
			r.Migrations, r.FinalShardSkew)
	}
	fmt.Fprintf(w, "  latency: mean %.2f ticks, p50 %d, p90 %d, p99 %d, max %d ticks\n",
		r.MeanLatencyTicks, r.LatencyP50Ticks, r.LatencyP90Ticks, r.LatencyP99Ticks, r.MaxLatencyTicks)
	if r.Publishes > 0 || r.FinallyStale {
		fmt.Fprintf(w, "  registry: %d publishes, finally stale: %v\n", r.Publishes, r.FinallyStale)
	}
	if r.Decisions > 0 {
		kinds := make([]string, 0, len(r.ActionsExecuted))
		for k := range r.ActionsExecuted {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		fmt.Fprintf(w, "  supervisor: %d decisions, executed {", r.Decisions)
		for i, k := range kinds {
			if i > 0 {
				fmt.Fprint(w, ", ")
			}
			fmt.Fprintf(w, "%s: %d", k, r.ActionsExecuted[k])
		}
		fmt.Fprintln(w, "}")
	}
	if r.ShedWindows > 0 {
		prios := make([]int, 0, len(r.ShedByPriority))
		for p := range r.ShedByPriority {
			prios = append(prios, p)
		}
		sort.Ints(prios)
		fmt.Fprintf(w, "  shed: %d windows by priority {", r.ShedWindows)
		for i, p := range prios {
			if i > 0 {
				fmt.Fprint(w, ", ")
			}
			fmt.Fprintf(w, "%d: %d", p, r.ShedByPriority[p])
		}
		fmt.Fprintln(w, "}")
	}
	fmt.Fprintf(w, "  windows lost (never-crashed sessions): %d\n", r.LostWindows)
	if len(r.Errors) > 0 {
		fmt.Fprintf(w, "  internal errors:\n")
		for _, e := range r.Errors {
			fmt.Fprintf(w, "    - %s\n", e)
		}
	}
	fmt.Fprintf(w, "  assertions (%d):\n", len(r.Assertions))
	for _, c := range r.Assertions {
		mark := "ok  "
		if !c.Passed {
			mark = "FAIL"
		}
		fmt.Fprintf(w, "    %s %-8s %-22s %s\n", mark, c.At, c.Check, c.Detail)
	}
}
