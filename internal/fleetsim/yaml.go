// Package fleetsim is the fleet-scale chaos harness: it runs a
// simulated fleet of monitored applications against a real serving
// stack (serve.Service, optionally a real FMS/FMC pair over TCP) under
// a scenario script with seeded fault injection, deterministic replay,
// and in-scenario assertions. See the Scenario type for the script
// format and Run for the execution model.
package fleetsim

import (
	"fmt"
	"strconv"
	"strings"
)

// The scenario files are YAML, but the repo takes no dependencies, so
// this file implements the small block-style subset the scenarios use:
//
//   - nested maps via indentation ("key:" introducing a deeper block)
//   - inline scalars ("key: value")
//   - lists of scalars or maps ("- item", "- key: value" with
//     continuation lines indented to the item body)
//   - comments ("#" at line start or after whitespace), blank lines
//   - quoted strings ('single' and "double" with \\ \" \n \t escapes)
//   - scalars: null/~, true/false, integers, floats; everything else
//     stays a string (durations like "30s" are parsed by the decoder)
//
// Not supported (and rejected or misparsed by design — scenarios are
// authored, not interchanged): anchors/aliases, flow collections,
// multi-line scalars, tabs in indentation, multiple documents.

// yamlLine is one significant source line: its indentation depth in
// spaces and its trimmed content.
type yamlLine struct {
	indent int
	text   string
	num    int // 1-based source line, for errors
}

// parseYAML parses a scenario document into nested
// map[string]any / []any / scalar values.
func parseYAML(data []byte) (any, error) {
	lines, err := splitYAMLLines(string(data))
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return map[string]any{}, nil
	}
	p := &yamlParser{lines: lines}
	v, err := p.parseBlock(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("yaml: line %d: unexpected indentation", l.num)
	}
	return v, nil
}

// splitYAMLLines strips comments and blanks and computes indentation.
func splitYAMLLines(doc string) ([]yamlLine, error) {
	var out []yamlLine
	for i, raw := range strings.Split(doc, "\n") {
		line := stripComment(raw)
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		indent := 0
		for _, r := range line {
			if r == ' ' {
				indent++
				continue
			}
			if r == '\t' {
				return nil, fmt.Errorf("yaml: line %d: tab in indentation", i+1)
			}
			break
		}
		out = append(out, yamlLine{indent: indent, text: trimmed, num: i + 1})
	}
	return out, nil
}

// stripComment removes a trailing comment: "#" at line start or
// preceded by whitespace, outside quotes.
func stripComment(line string) string {
	var quote byte
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			} else if c == '\\' && quote == '"' {
				i++ // skip the escaped character
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '#' && (i == 0 || line[i-1] == ' ' || line[i-1] == '\t'):
			return line[:i]
		}
	}
	return line
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

// parseBlock parses the map or list starting at the current line, whose
// indentation must be exactly indent.
func (p *yamlParser) parseBlock(indent int) (any, error) {
	l := p.lines[p.pos]
	if l.text == "-" || strings.HasPrefix(l.text, "- ") {
		return p.parseList(indent)
	}
	return p.parseMap(indent)
}

func (p *yamlParser) parseMap(indent int) (map[string]any, error) {
	m := map[string]any{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent {
			if l.indent > indent {
				return nil, fmt.Errorf("yaml: line %d: unexpected indentation", l.num)
			}
			break
		}
		if l.text == "-" || strings.HasPrefix(l.text, "- ") {
			return nil, fmt.Errorf("yaml: line %d: list item inside a map block", l.num)
		}
		key, rest, err := splitKey(l)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("yaml: line %d: duplicate key %q", l.num, key)
		}
		p.pos++
		if rest != "" {
			m[key] = parseScalar(rest)
			continue
		}
		// "key:" with no inline value: a deeper block or null.
		if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			m[key] = v
			continue
		}
		m[key] = nil
	}
	return m, nil
}

func (p *yamlParser) parseList(indent int) ([]any, error) {
	var list []any
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent || (l.text != "-" && !strings.HasPrefix(l.text, "- ")) {
			if l.indent > indent {
				return nil, fmt.Errorf("yaml: line %d: unexpected indentation", l.num)
			}
			break
		}
		if l.text == "-" {
			// Bare dash: the item is the deeper block that follows.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				list = append(list, nil)
				continue
			}
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			list = append(list, v)
			continue
		}
		item := strings.TrimSpace(l.text[2:])
		if isMapEntry(item) {
			// "- key: value": rewrite as a map line indented to the item
			// body ("- " is two columns) and parse the map from here, so
			// continuation lines at that indent join the same item.
			p.lines[p.pos] = yamlLine{indent: indent + 2, text: item, num: l.num}
			v, err := p.parseMap(indent + 2)
			if err != nil {
				return nil, err
			}
			list = append(list, v)
			continue
		}
		p.pos++
		list = append(list, parseScalar(item))
	}
	return list, nil
}

// splitKey splits "key: value" / "key:", unquoting the key.
func splitKey(l yamlLine) (key, rest string, err error) {
	i := keyColon(l.text)
	if i < 0 {
		return "", "", fmt.Errorf("yaml: line %d: expected \"key:\", got %q", l.num, l.text)
	}
	key = strings.TrimSpace(l.text[:i])
	if s, ok := unquote(key); ok {
		key = s
	}
	if key == "" {
		return "", "", fmt.Errorf("yaml: line %d: empty key", l.num)
	}
	return key, strings.TrimSpace(l.text[i+1:]), nil
}

// keyColon finds the colon ending the key: the first ":" at end of
// text or followed by a space, outside quotes.
func keyColon(s string) int {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			} else if c == '\\' && quote == '"' {
				i++
			}
		case c == '\'' || c == '"':
			quote = c
		case c == ':' && (i == len(s)-1 || s[i+1] == ' '):
			return i
		}
	}
	return -1
}

// isMapEntry reports whether a list item's text starts a map ("key: v"
// or "key:") rather than being a plain scalar.
func isMapEntry(item string) bool {
	if _, ok := unquote(item); ok {
		return false // a fully quoted scalar, even if it contains ":"
	}
	return keyColon(item) >= 0
}

// parseScalar interprets an inline scalar.
func parseScalar(s string) any {
	if v, ok := unquote(s); ok {
		return v
	}
	switch s {
	case "", "null", "~":
		return nil
	case "true":
		return true
	case "false":
		return false
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}

// unquote strips matching single or double quotes, handling the basic
// double-quote escapes; ok reports whether s was quoted.
func unquote(s string) (string, bool) {
	if len(s) < 2 {
		return s, false
	}
	q := s[0]
	if (q != '\'' && q != '"') || s[len(s)-1] != q {
		return s, false
	}
	body := s[1 : len(s)-1]
	if q == '\'' {
		return strings.ReplaceAll(body, "''", "'"), true
	}
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' || i == len(body)-1 {
			b.WriteByte(c)
			continue
		}
		i++
		switch body[i] {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		default:
			b.WriteByte('\\')
			b.WriteByte(body[i])
		}
	}
	return b.String(), true
}
