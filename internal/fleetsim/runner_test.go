package fleetsim

import (
	"os"
	"reflect"
	"testing"
)

func loadScenario(t *testing.T, path string) *Scenario {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := ParseScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestSmokeScenarioDeterministicReplay pins the replay contract on the
// committed CI scenario: two runs of the same scenario and seed produce
// identical event logs and assertion outcomes, and the scenario passes.
func TestSmokeScenarioDeterministicReplay(t *testing.T) {
	sc := loadScenario(t, "../../examples/fleetsim/scenarios/smoke.yaml")
	rep1, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !rep1.Passed {
		rep1.WriteText(os.Stderr)
		t.Fatal("smoke scenario failed")
	}
	if rep1.Fingerprint() != rep2.Fingerprint() {
		t.Fatal("replay diverged: two runs of the same scenario+seed produced different event logs")
	}
	// The log must carry every chaos kind the scenario schedules.
	kinds := map[string]bool{}
	for _, e := range rep1.Log {
		kinds[e.Kind] = true
	}
	for _, k := range []string{"boot", "start", "fail", "restart", "retrain", "chaos", "assert", "end"} {
		if !kinds[k] {
			t.Errorf("event log has no %q entries", k)
		}
	}
	if rep1.Crashes == 0 || rep1.Flaps == 0 || rep1.ShedWindows == 0 {
		t.Errorf("chaos did not bite: crashes=%d flaps=%d shed=%d", rep1.Crashes, rep1.Flaps, rep1.ShedWindows)
	}
}

// TestDifferentSeedsDiverge guards against the seed being ignored: a
// different seed must change the schedule.
func TestDifferentSeedsDiverge(t *testing.T) {
	sc := loadScenario(t, "../../examples/fleetsim/scenarios/smoke.yaml")
	rep1, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	sc.Seed = 43
	rep2, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Fingerprint() == rep2.Fingerprint() {
		t.Fatal("seeds 42 and 43 produced identical event logs — the seed is not wired through")
	}
}

// TestRedrawChurnScenario is the committed SplitRedrawn-under-churn
// coverage: a tiny sliding window retrained after every completed run
// slides until the run-wise split starves and the redraw valve fires;
// every redraw is followed by a from-scratch refit parity check at
// 1e-8.
func TestRedrawChurnScenario(t *testing.T) {
	sc := loadScenario(t, "testdata/redraw-churn.yaml")
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		rep.WriteText(os.Stderr)
		t.Fatal("redraw-churn scenario failed")
	}
	if rep.Redraws == 0 {
		t.Fatal("no split redraw fired — the scenario no longer exercises the starvation valve")
	}
	if rep.ParityChecks < rep.Redraws {
		t.Fatalf("%d parity checks for %d redraws — verify_redraw did not run on every redraw", rep.ParityChecks, rep.Redraws)
	}
	if len(rep.ParityFailures) > 0 {
		t.Fatalf("redraw parity failures: %v", rep.ParityFailures)
	}
	if rep.LostWindows != 0 {
		t.Fatalf("%d windows lost without any crash chaos", rep.LostWindows)
	}
}

// crashShedScenario is the acceptance-criteria scenario: crash-restart
// chaos with a shed policy. It must end with zero lost windows for the
// surviving (never-crashed) sessions and every shed window attributed
// to a below-floor priority.
const crashShedScenario = `
name: crash-shed
seed: 99
duration: 200s
tick: 1s
serve:
  shards: 2
  window_sec: 10
  flush_every: 5
  shed:
    max_queue_depth: 3
    min_priority: 5
train:
  runs: 4
fleet:
  count: 6
  arrival: spike
  templates:
    - name: vip
      weight: 1
      priority: 5
      mem_total_kb: 131072
      swap_total_kb: 65536
      leak_kb_per_sec: 3000
    - name: low
      weight: 1
      priority: 2
      mem_total_kb: 131072
      swap_total_kb: 65536
      leak_kb_per_sec: 3500
events:
  - at: 50s
    action: crash_restart
    clients: 2
    down: 12s
  - at: 90s
    action: slow_consumer
    for: 25s
  - at: 140s
    action: crash_restart
    clients: 1
    down: 8s
assertions:
  - no_lost_windows
  - shed_only_below_floor
  - min_shed: 1
  - min_completed_runs: 4
`

func TestCrashAccountingAndShedAttribution(t *testing.T) {
	rep, err := RunData([]byte(crashShedScenario))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		rep.WriteText(os.Stderr)
		t.Fatal("crash-shed scenario failed")
	}
	if rep.Crashes != 3 {
		t.Fatalf("crashes = %d, want 3", rep.Crashes)
	}
	if rep.LostWindows != 0 {
		t.Fatalf("LostWindows = %d, want 0 for surviving sessions", rep.LostWindows)
	}
	if rep.ShedWindows == 0 {
		t.Fatal("shed policy never fired under the slow consumer")
	}
	var shedSum uint64
	for prio, n := range rep.ShedByPriority {
		if prio >= 5 {
			t.Fatalf("priority %d (at/above the floor) shed %d windows", prio, n)
		}
		shedSum += n
	}
	if shedSum != rep.ShedWindows {
		t.Fatalf("ShedByPriority sums to %d, ShedWindows is %d", shedSum, rep.ShedWindows)
	}
	// Per-session: survivors deliver everything they handed over; the
	// vip sessions at the floor never shed a window.
	for _, s := range rep.Sessions {
		if s.Crashes == 0 && s.Lost != 0 {
			t.Fatalf("never-crashed session %s lost %d windows", s.ID, s.Lost)
		}
		if s.Priority >= 5 && s.Shed != 0 {
			t.Fatalf("floor-priority session %s shed %d windows", s.ID, s.Shed)
		}
	}
}

func TestApportion(t *testing.T) {
	cases := []struct {
		weights []float64
		count   int
		want    []int
	}{
		{[]float64{3, 1}, 8, []int{6, 2}},
		{[]float64{1, 1, 1}, 4, []int{2, 1, 1}},
		{[]float64{2, 1}, 1, []int{1, 0}},
		{[]float64{1, 2}, 3, []int{1, 2}},
	}
	for _, c := range cases {
		templates := make([]Template, len(c.weights))
		for i, w := range c.weights {
			templates[i].Weight = w
		}
		got, err := apportion(templates, c.count)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("apportion(%v, %d) = %v, want %v", c.weights, c.count, got, c.want)
		}
	}
}

// TestRegistryOutageScenarioDeterministicReplay pins the committed
// registry-outage CI scenario: the stale-while-revalidate cycle
// (outage → stale-serving → recovery → one-poll reconvergence) must
// pass, replay byte-identically, and leave its transitions in the
// event log.
func TestRegistryOutageScenarioDeterministicReplay(t *testing.T) {
	sc := loadScenario(t, "../../examples/fleetsim/scenarios/registry-outage.yaml")
	rep1, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !rep1.Passed {
		rep1.WriteText(os.Stderr)
		t.Fatal("registry-outage scenario failed")
	}
	if rep1.Fingerprint() != rep2.Fingerprint() {
		t.Fatal("replay diverged: two runs of the same scenario+seed produced different event logs")
	}
	kinds := map[string]bool{}
	for _, e := range rep1.Log {
		kinds[e.Kind] = true
	}
	for _, k := range []string{"publish", "refresh", "stale", "fresh", "chaos"} {
		if !kinds[k] {
			t.Errorf("event log has no %q entries", k)
		}
	}
	if rep1.Publishes == 0 {
		t.Error("no retrain was published through the registry")
	}
	if rep1.FinallyStale {
		t.Error("model source still stale after the registry recovered")
	}
	if rep1.LatencyP99Ticks == 0 || len(rep1.LatencyHistogram) == 0 {
		t.Errorf("latency histogram not populated: p99=%d buckets=%d",
			rep1.LatencyP99Ticks, len(rep1.LatencyHistogram))
	}
	var total int
	for _, b := range rep1.LatencyHistogram {
		total += b.Count
	}
	if uint64(total) != rep1.Predictions {
		t.Errorf("histogram counts sum to %d, want %d (one sample per delivered window)",
			total, rep1.Predictions)
	}
}

// TestHotShardScenarioDeterministicReplay is the committed placement
// coverage: one rate-10 client concentrates window load on its shard,
// the supervisor's skew policy fires the rebalance actuator, the
// load-tracked placer migrates sessions off the hot shard, and the run
// replays byte-identically with exact window accounting across every
// migration.
func TestHotShardScenarioDeterministicReplay(t *testing.T) {
	sc := loadScenario(t, "../../examples/fleetsim/scenarios/hot-shard.yaml")
	rep1, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !rep1.Passed {
		rep1.WriteText(os.Stderr)
		t.Fatal("hot-shard scenario failed")
	}
	if rep1.Fingerprint() != rep2.Fingerprint() {
		t.Fatal("replay diverged: two runs of the same scenario+seed produced different event logs")
	}
	if rep1.Migrations < 2 {
		t.Fatalf("%d migrations, the autonomic loop should have moved sessions at least twice", rep1.Migrations)
	}
	if rep1.ActionsExecuted["rebalance"] < 1 {
		t.Fatalf("no rebalance action executed: %v", rep1.ActionsExecuted)
	}
	if rep1.FinalShardSkew <= 0 || rep1.FinalShardSkew > 1.4 {
		t.Fatalf("final shard skew %.3f, want in (0, 1.4] after rebalancing", rep1.FinalShardSkew)
	}
	if rep1.LostWindows != 0 {
		t.Fatalf("%d windows lost across migrations", rep1.LostWindows)
	}
	sawRebalance := false
	for _, e := range rep1.Log {
		if e.Kind == "rebalance" {
			sawRebalance = true
			break
		}
	}
	if !sawRebalance {
		t.Fatal("event log has no rebalance entries")
	}
}
