package fleetsim

import (
	"fmt"
	"math"

	"repro/internal/aggregate"
	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/ml/svm"
	"repro/internal/randx"
	"repro/internal/serve"
	"repro/internal/trace"
)

// trainer owns the model side of a simulation: the bootstrap training
// phase that produces the initial deployment, and the live
// Pipeline.Update loop fed by the fleet's completed failure runs.
type trainer struct {
	sc   *Scenario
	pipe *core.Pipeline
	hist trace.History

	sinceRetrain int
	retrains     int
	redraws      int
	parityChecks int
	parityFails  []string
}

// roster resolves the scenario's model names against the default
// roster, applying the scenario's ε-SVR solver overrides (parity
// assertions need a dual converged far past the serving default).
func roster(tc TrainConfig) ([]core.ModelSpec, error) {
	all := core.DefaultModels(nil)
	var specs []core.ModelSpec
	for _, name := range tc.Models {
		found := false
		for _, spec := range all {
			if spec.Name == name {
				if name == "svm" && (tc.SVMTol > 0 || tc.SVMMaxPasses > 0) {
					spec.New = func() (ml.Regressor, error) {
						opts := svm.DefaultOptions()
						if tc.SVMTol > 0 {
							opts.Tol = tc.SVMTol
						}
						if tc.SVMMaxPasses > 0 {
							opts.MaxPasses = tc.SVMMaxPasses
						}
						return svm.New(opts)
					}
				}
				specs = append(specs, spec)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("fleetsim: unknown model %q", name)
		}
	}
	return specs, nil
}

// newTrainer simulates the bootstrap training runs, fits the pipeline,
// and returns the trainer plus the initial deployment.
func newTrainer(sc *Scenario, rng *randx.Source) (*trainer, *serve.Deployment, error) {
	specs, err := roster(sc.Train)
	if err != nil {
		return nil, nil, err
	}
	pipe, err := core.New(core.Config{
		Aggregation:    aggConfig(sc),
		SplitMode:      aggregate.SplitByRun,
		ValidationFrac: 0.3,
		SplitSeed:      sc.Seed,
		SMAEFraction:   0.1,
		Window:         core.WindowPolicy{MaxRuns: sc.Train.MaxRuns},
		Models:         specs,
	})
	if err != nil {
		return nil, nil, err
	}
	tr := &trainer{sc: sc, pipe: pipe}

	tmpl := &sc.Fleet.Templates[0]
	if sc.Train.Template != "" {
		for i := range sc.Fleet.Templates {
			if sc.Fleet.Templates[i].Name == sc.Train.Template {
				tmpl = &sc.Fleet.Templates[i]
			}
		}
	}
	for i := 0; i < sc.Train.Runs; i++ {
		run, err := simulateRun(tmpl, rng.Fork(uint64(i)+1), sc.Tick.Seconds())
		if err != nil {
			return nil, nil, err
		}
		tr.hist.Runs = append(tr.hist.Runs, run)
	}
	rep, err := pipe.Run(&tr.hist)
	if err != nil {
		return nil, nil, fmt.Errorf("fleetsim: bootstrap training: %w", err)
	}
	dep, err := serve.FromReport(rep)
	if err != nil {
		return nil, nil, fmt.Errorf("fleetsim: bootstrap training: %w", err)
	}
	return tr, dep, nil
}

// simulateRun drives one offline client of the template until its
// failure condition fires, returning the completed failed run.
func simulateRun(tmpl *Template, rng *randx.Source, tickSec float64) (trace.Run, error) {
	c := &client{tmpl: tmpl, rng: rng, burst: 1, leakRate: tmpl.LeakKBPerSec}
	if tmpl.LeakJitter > 0 {
		c.leakRate *= 1 + tmpl.LeakJitter*(2*rng.Float64()-1)
	}
	c.resetRun(0)
	// The leak must exhaust memory+swap within a few multiples of the
	// no-noise fill time, or the template is misconfigured.
	fill := (tmpl.MemTotalKB + tmpl.SwapTotalKB) / c.leakRate / tickSec
	maxTicks := int(4*fill) + 64
	var run trace.Run
	for tick := 0; tick < maxTicks; tick++ {
		d, failed := c.step(tick, tickSec)
		run.Datapoints = append(run.Datapoints, d)
		if failed {
			run.Failed = true
			run.FailTime = d.Tgen
			return run, nil
		}
	}
	return run, fmt.Errorf("fleetsim: template %q never failed within %d ticks — leak rate too small for the scenario", tmpl.Name, maxTicks)
}

// completedRun records one fleet failure run. When the scenario's
// retrain cadence is due it runs Pipeline.Update, returning the new
// report (nil otherwise) for the runner to deploy and log.
func (tr *trainer) completedRun(run trace.Run) (*core.Report, error) {
	tr.hist.Runs = append(tr.hist.Runs, run)
	if tr.sc.Train.RetrainEvery <= 0 {
		return nil, nil
	}
	tr.sinceRetrain++
	if tr.sinceRetrain < tr.sc.Train.RetrainEvery {
		return nil, nil
	}
	tr.sinceRetrain = 0
	return tr.retrainNow()
}

// retrainNow runs one Pipeline.Update immediately, regardless of the
// scenario's retrain cadence — the supervisor's Retrain actuator. The
// post-update verification hooks (redraw parity, update parity) run
// here so both the cadence path and the autonomic path are covered.
func (tr *trainer) retrainNow() (*core.Report, error) {
	rep, err := tr.pipe.Update(&tr.hist)
	if err != nil {
		return nil, err
	}
	tr.retrains++
	if rep.SplitRedrawn {
		tr.redraws++
		if tr.sc.Train.VerifyRedraw {
			tr.verifyRedraw(rep)
		}
	}
	if tr.sc.Train.VerifyUpdate {
		tr.verifyUpdate(rep)
	}
	return rep, nil
}

// verifyUpdate fresh-fits every surviving model on the retained
// training window — with the incremental model's frozen preprocessing
// pinned, where the model supports pinning — and checks that its
// predictions over the training-window rows match the incrementally
// updated model to 1e-8. Training-window rows (not fresh probe points)
// are the parity contract: a near-singular kernel Gram leaves
// off-sample predictions genuinely underdetermined between equally
// optimal duals, while on-window predictions are determined to solver
// resolution.
func (tr *trainer) verifyUpdate(rep *core.Report) {
	for _, fs := range []core.FeatureSet{core.AllParams, core.LassoParams} {
		train, _, ok := tr.pipe.Datasets(fs)
		if !ok {
			continue
		}
		for i := range rep.Results {
			res := &rep.Results[i]
			if res.Features != fs || res.Err != nil || res.Model == nil {
				continue
			}
			tr.parityChecks++
			fresh, err := res.Spec.New()
			if err != nil {
				tr.parityFails = append(tr.parityFails, fmt.Sprintf("update %s/%s: construct: %v", res.Spec.Name, fs, err))
				continue
			}
			if pin, ok := fresh.(ml.PreprocessPinner); ok {
				if err := pin.PinPreprocessing(res.Model); err != nil {
					tr.parityFails = append(tr.parityFails, fmt.Sprintf("update %s/%s: pin: %v", res.Spec.Name, fs, err))
					continue
				}
			}
			if err := fresh.Fit(train.X, train.RTTF); err != nil {
				tr.parityFails = append(tr.parityFails, fmt.Sprintf("update %s/%s: fit: %v", res.Spec.Name, fs, err))
				continue
			}
			want := ml.PredictAll(fresh, train.X)
			got := ml.PredictAll(res.Model, train.X)
			for j := range want {
				tol := 1e-8 * (1 + math.Abs(want[j]))
				if math.Abs(want[j]-got[j]) > tol {
					tr.parityFails = append(tr.parityFails,
						fmt.Sprintf("update %s/%s: row %d: incremental %.12g vs fresh %.12g", res.Spec.Name, fs, j, got[j], want[j]))
					break
				}
			}
		}
	}
}

// verifyRedraw fresh-fits every surviving model on the pipeline's
// retained post-redraw window and checks that its validation
// predictions match the incremental result to 1e-8 — the "a redraw is
// just a refit" parity contract, asserted from outside the pipeline.
func (tr *trainer) verifyRedraw(rep *core.Report) {
	for _, fs := range []core.FeatureSet{core.AllParams, core.LassoParams} {
		train, val, ok := tr.pipe.Datasets(fs)
		if !ok {
			continue
		}
		for i := range rep.Results {
			res := &rep.Results[i]
			if res.Features != fs || res.Err != nil {
				continue
			}
			tr.parityChecks++
			fresh, err := res.Spec.New()
			if err != nil {
				tr.parityFails = append(tr.parityFails, fmt.Sprintf("%s/%s: construct: %v", res.Spec.Name, fs, err))
				continue
			}
			if err := fresh.Fit(train.X, train.RTTF); err != nil {
				tr.parityFails = append(tr.parityFails, fmt.Sprintf("%s/%s: fit: %v", res.Spec.Name, fs, err))
				continue
			}
			want := ml.PredictAll(fresh, val.X)
			if len(want) != len(res.Predicted) {
				tr.parityFails = append(tr.parityFails,
					fmt.Sprintf("%s/%s: %d predictions, fresh fit has %d", res.Spec.Name, fs, len(res.Predicted), len(want)))
				continue
			}
			for j := range want {
				tol := 1e-8 * (1 + math.Abs(want[j]))
				if math.Abs(want[j]-res.Predicted[j]) > tol {
					tr.parityFails = append(tr.parityFails,
						fmt.Sprintf("%s/%s: row %d: incremental %.12g vs fresh %.12g", res.Spec.Name, fs, j, res.Predicted[j], want[j]))
					break
				}
			}
		}
	}
}
