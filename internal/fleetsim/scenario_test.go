package fleetsim

import (
	"strings"
	"testing"
	"time"
)

const minimalScenario = `
name: minimal
seed: 5
duration: 60s
fleet:
  count: 2
  templates:
    - name: only
      leak_kb_per_sec: 3000
`

func TestParseScenarioDefaults(t *testing.T) {
	sc, err := ParseScenario([]byte(minimalScenario))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "minimal" || sc.Seed != 5 {
		t.Fatalf("header = %q/%d", sc.Name, sc.Seed)
	}
	if sc.Tick != time.Second {
		t.Errorf("default tick = %v, want 1s", sc.Tick)
	}
	if sc.Serve.Shards != 2 || sc.Serve.WindowSec != 10 || sc.Serve.FlushEvery != 5 {
		t.Errorf("serve defaults = %+v", sc.Serve)
	}
	if sc.Train.Runs != 4 || len(sc.Train.Models) != 1 || sc.Train.Models[0] != "linear" {
		t.Errorf("train defaults = %+v", sc.Train)
	}
	if sc.Fleet.Arrival != "spike" {
		t.Errorf("default arrival = %q, want spike", sc.Fleet.Arrival)
	}
	tmpl := sc.Fleet.Templates[0]
	if tmpl.MemTotalKB != 4<<20 || tmpl.SwapTotalKB != 2<<20 || tmpl.FailFrac != 0.02 {
		t.Errorf("template defaults = %+v", tmpl)
	}
}

func TestParseScenarioErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string // substring of the error
	}{
		{"no fleet", "name: x\nduration: 10s\n", "a fleet block is required"},
		{"no templates", "duration: 10s\nfleet:\n  count: 1\n", "at least one template is required"},
		{"no duration", "fleet:\n  count: 1\n  templates:\n    - leak_kb_per_sec: 100\n", "duration must be positive"},
		{
			"unknown key",
			minimalScenario + "sered:\n  shards: 9\n",
			`unknown key "sered"`,
		},
		{
			"unknown action",
			minimalScenario + "events:\n  - at: 5s\n    action: meteor_strike\n",
			`unknown action "meteor_strike"`,
		},
		{
			"unknown check",
			minimalScenario + "assertions:\n  - min_happiness: 3\n",
			`unknown check "min_happiness"`,
		},
		{
			"unknown model",
			minimalScenario + "train:\n  models:\n    - gpt\n",
			`unknown model "gpt"`,
		},
		{
			"assert without checks",
			minimalScenario + "events:\n  - at: 5s\n    action: assert\n",
			"assert event without checks",
		},
		{
			"event out of range",
			minimalScenario + "events:\n  - at: 120s\n    action: flap\n",
			"outside the scenario duration",
		},
		{
			"bad arrival",
			"duration: 10s\nfleet:\n  count: 1\n  arrival: teleport\n  templates:\n    - leak_kb_per_sec: 100\n",
			`must be "spike" or "linear"`,
		},
		{
			"linear without window",
			"duration: 10s\nfleet:\n  count: 1\n  arrival: linear\n  templates:\n    - leak_kb_per_sec: 100\n",
			"arrival_over must be positive",
		},
		{
			"no leak",
			"duration: 10s\nfleet:\n  count: 1\n  templates:\n    - name: idle\n",
			"leak_kb_per_sec must be positive",
		},
		{
			"train template missing",
			minimalScenario + "train:\n  template: nosuch\n",
			`"nosuch" names no fleet template`,
		},
		{
			"bad duration string",
			"duration: soon\nfleet:\n  count: 1\n  templates:\n    - leak_kb_per_sec: 100\n",
			`bad duration "soon"`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseScenario([]byte(c.doc))
			if err == nil {
				t.Fatalf("scenario accepted, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error = %v, want substring %q", err, c.want)
			}
		})
	}
}

// TestParseScenarioAccumulatesErrors pins the all-at-once error report.
func TestParseScenarioAccumulatesErrors(t *testing.T) {
	doc := "duration: -5s\nfleet:\n  count: 0\n  templates:\n    - name: t\n"
	_, err := ParseScenario([]byte(doc))
	if err == nil {
		t.Fatal("want error")
	}
	for _, want := range []string{"duration must be positive", "count must be at least 1", "leak_kb_per_sec"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing %q:\n%v", want, err)
		}
	}
}

func TestParseScenarioSortsEvents(t *testing.T) {
	doc := minimalScenario + `events:
  - at: 30s
    action: flap
  - at: 10s
    action: slow_consumer
    for: 5s
`
	sc, err := ParseScenario([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Events) != 2 || sc.Events[0].Action != "slow_consumer" || sc.Events[1].Action != "flap" {
		t.Fatalf("events not sorted by At: %+v", sc.Events)
	}
}
