package fleetsim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/autonomic"
	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/randx"
	"repro/internal/serve"
	"repro/internal/trace"
)

// runner executes one scenario. Everything happens on the calling
// goroutine in virtual time: the prediction service runs in manual
// dispatch under the runner's clock, clients are stepped in a fixed
// order, and every random draw comes from streams forked off the
// scenario seed — so the same scenario and seed replay to an identical
// event log, assertion outcomes, and report.
type runner struct {
	sc      *Scenario
	tickSec float64

	chaosRng *randx.Source
	fleet    []*client
	byID     map[string]*client
	sessions map[string]*serve.Session
	tr       *trainer
	svc      *serve.Service

	now  time.Time // virtual clock
	tick int

	// Chaos conditions in force.
	slowUntil  int
	stormUntil int
	stormFlip  bool
	prevDep    *serve.Deployment
	curDep     *serve.Deployment
	deploys    int

	// Simulated remote registry (Serve.Registry mode): retrains
	// publish to regDep, the service converges by polling through
	// regSrc on the virtual clock, and registry_outage makes the
	// origin fail so the stale-while-revalidate path runs under
	// deterministic replay.
	regSrc         *serve.FailoverSource
	regDep         *serve.Deployment
	regOutageUntil int
	publishes      int
	regStale       bool
	lastVersion    uint64

	// Autonomic supervisor (Scenario.Supervisor mode): ticked on the
	// virtual clock, fed the run's serving-side signals, executing
	// through actuators that drive the same pipeline, service, and
	// simulated registry — with every decision joining the event log.
	sup *autonomic.Supervisor
	// pendingDep is the most recent supervisor-retrained deployment,
	// awaiting its publish or redeploy action.
	pendingDep *serve.Deployment
	// shedFloor is the live shed-policy priority floor the
	// shed-below-floor invariant checks against; the Reshard actuator
	// moves it together with the policy (single runner goroutine, so a
	// plain field suffices).
	shedFloor    int
	lastShedSeen uint64
	lastRunsSeen int

	// Placement (Serve.Placement mode): prevShardWindows holds the
	// per-shard cumulative window counts at the previous supervisor
	// observation (the skew signal is computed over the deltas), and
	// skewBase the counts at the last executed rebalance — the
	// max_shard_skew check measures balance over the windows enqueued
	// AFTER the migrations, not the skewed history before them.
	prevShardWindows []uint64
	skewBase         []uint64
	rebalances       int

	// Counters.
	crashes       int
	flaps         int
	completedRuns int
	maxQueueDepth int
	batches       int
	maxBatch      int
	latencySum    int
	latencyCount  int
	latencyMax    int
	latencyHist   map[int]int // latency in ticks → window count
	shedFloorBad  []string    // shed events at/above the policy floor

	log    []LogEntry
	checks []CheckResult
	errs   []string
}

// Run executes the scenario and returns its report. The error return
// covers only harness failures (bad scenario, bootstrap training
// failure); assertion failures are reported in Report.Passed and
// Report.Assertions.
func Run(sc *Scenario) (*Report, error) {
	wall := time.Now()
	r := &runner{
		sc:          sc,
		tickSec:     sc.Tick.Seconds(),
		byID:        map[string]*client{},
		sessions:    map[string]*serve.Session{},
		latencyHist: map[int]int{},
		// The virtual epoch is arbitrary but fixed: nothing in a run may
		// read the wall clock.
		now: time.Unix(1_000_000, 0),
	}
	root := randx.New(sc.Seed)
	r.chaosRng = root.Fork(2)

	tr, dep, err := newTrainer(sc, root.Fork(1))
	if err != nil {
		return nil, err
	}
	r.tr = tr
	r.curDep = dep

	fleet, err := newFleet(sc, root.Fork(3))
	if err != nil {
		return nil, err
	}
	r.fleet = fleet
	for _, c := range fleet {
		r.byID[c.id] = c
	}

	if err := r.startService(dep); err != nil {
		return nil, err
	}
	if sc.Supervisor != nil {
		if err := r.startSupervisor(); err != nil {
			return nil, err
		}
	}
	if sc.Serve.Registry != nil {
		r.logf("boot", "trained %d runs, published %q to registry", sc.Train.Runs, dep.Name)
	} else {
		r.logf("boot", "trained %d runs, deployed %q", sc.Train.Runs, dep.Name)
	}

	ticks := int(sc.Duration / sc.Tick)
	events := sc.Events
	nextEvent := 0
	for r.tick = 0; r.tick < ticks; r.tick++ {
		t := r.tick
		r.now = time.Unix(1_000_000, 0).Add(time.Duration(t) * sc.Tick)

		for nextEvent < len(events) && r.atTick(events[nextEvent].At) <= t {
			r.fire(&events[nextEvent])
			nextEvent++
		}
		r.restoreClients(t)
		r.startArrivals(t)
		r.stepClients(t)
		if r.stormUntil > t {
			r.stormTick()
		}
		if rc := sc.Serve.Registry; rc != nil && t%rc.PollEvery == 0 {
			r.pollRegistry()
		}
		if t >= r.slowUntil && t%sc.Serve.FlushEvery == 0 {
			r.svc.Flush()
		}
		if sc.Serve.SessionTTL > 0 && sc.Serve.SweepEvery > 0 && t%sc.Serve.SweepEvery == 0 {
			r.svc.SweepIdleNow()
		}
		if r.sup != nil && t%sc.Supervisor.TickEvery == 0 {
			r.superTick()
		}
		if d := r.svc.Stats().QueueDepth; d > r.maxQueueDepth {
			r.maxQueueDepth = d
		}
	}

	// Final drain: flush, then close (Close predicts whatever is still
	// queued), so the accounting below sees every delivered window.
	r.tick = ticks
	r.svc.Flush()
	if err := r.svc.Close(); err != nil {
		r.errs = append(r.errs, fmt.Sprintf("service close: %v", err))
	}
	stats := r.svc.Stats()
	r.logf("end", "scenario complete: %d runs, %d crashes, %d flaps", r.completedRuns, r.crashes, r.flaps)

	// Assert events scheduled at (or clamped past) the end run against
	// the drained final state; other chaos there would be a no-op.
	for ; nextEvent < len(events); nextEvent++ {
		if events[nextEvent].Action == "assert" {
			r.fire(&events[nextEvent])
		}
	}
	for _, c := range sc.Final {
		r.checks = append(r.checks, r.evalCheck(c, "final"))
	}
	rep := r.report(stats, ticks)
	rep.WallDuration = time.Since(wall).Round(time.Millisecond).String()
	return rep, nil
}

func (r *runner) atTick(d time.Duration) int { return int(d / r.sc.Tick) }

func (r *runner) logf(kind, format string, args ...any) {
	r.log = append(r.log, LogEntry{Tick: r.tick, Kind: kind, Detail: fmt.Sprintf(format, args...)})
}

// startService builds the serve.Service under test: manual dispatch,
// the runner's virtual clock, and the fault-injection hooks wired to
// the runner's accounting.
func (r *runner) startService(dep *serve.Deployment) error {
	sc := r.sc
	opts := []serve.Option{
		serve.WithDeployment(dep),
		serve.WithManualDispatch(),
		serve.WithClock(func() time.Time { return r.now }),
		serve.WithShards(sc.Serve.Shards),
		serve.WithEstimateFunc(r.onEstimate),
		serve.WithBatchFailpoint(func(shard, size int) {
			r.batches++
			if size > r.maxBatch {
				r.maxBatch = size
			}
		}),
	}
	if sc.Serve.SessionTTL > 0 {
		opts = append(opts, serve.WithSessionTTL(sc.Serve.SessionTTL))
	}
	if sc.Serve.Shed != nil {
		// The floor lives on the runner, not in the closure: the
		// supervisor's Reshard actuator moves the policy and the
		// invariant together.
		r.shedFloor = sc.Serve.Shed.MinPriority
		opts = append(opts,
			serve.WithShedPolicy(serve.ShedPolicy{
				MaxQueueDepth: sc.Serve.Shed.MaxQueueDepth,
				MinPriority:   r.shedFloor,
			}),
			serve.WithShedFunc(func(s serve.Shed) {
				if s.Priority >= r.shedFloor {
					r.shedFloorBad = append(r.shedFloorBad,
						fmt.Sprintf("session %s priority %d shed at/above floor %d", s.SessionID, s.Priority, r.shedFloor))
				}
			}),
		)
	}
	if cc := sc.Serve.Coalesce; cc != nil {
		opts = append(opts, serve.WithCoalescePolicy(serve.CoalescePolicy{
			MinBatch: cc.MinBatch,
			MaxBatch: cc.MaxBatch,
		}))
	}
	if pc := sc.Serve.Placement; pc != nil && pc.Policy == "load" {
		opts = append(opts, serve.WithPlacement(serve.NewLoadPlacer(serve.LoadPlacerConfig{
			SkewWatermark: pc.SkewWatermark,
			MaxMoves:      pc.MaxMoves,
			MinWindows:    pc.MinWindows,
		})))
	}
	if sc.Serve.AlertThreshold > 0 {
		opts = append(opts, serve.WithAlertFunc(sc.Serve.AlertThreshold, func(serve.Alert) {}))
	}
	if rc := sc.Serve.Registry; rc != nil {
		// The simulated registry is a pointer the trainer swaps on
		// publish; registry_outage makes the origin fail. The real
		// FailoverSource runs on the virtual clock with no jitter, so
		// breaker cooldowns replay deterministically.
		r.regDep = dep
		origin := serve.ModelSourceFunc(func(context.Context) (*serve.Deployment, error) {
			if r.tick < r.regOutageUntil {
				return nil, fmt.Errorf("registry outage until tick %d", r.regOutageUntil)
			}
			return r.regDep, nil
		})
		r.regSrc = serve.NewFailoverSource(origin, serve.FailoverConfig{
			BreakerThreshold: rc.BreakerFailures,
			Backoff: monitor.Backoff{
				Base:   rc.CooldownBase,
				Max:    rc.CooldownMax,
				Jitter: -1, // deterministic: no jitter
			},
			Clock: func() time.Time { return r.now },
		})
		opts = append(opts, serve.WithModelSource(r.regSrc))
	}
	svc, err := serve.New(context.Background(), opts...)
	if err != nil {
		return err
	}
	r.svc = svc
	r.lastVersion = svc.Stats().ModelVersion
	return nil
}

// pollRegistry is one refresh tick in registry mode: pull through the
// failover source, log version convergence and staleness transitions —
// all in virtual time, so outage → stale → recovery → reconvergence is
// part of the deterministic fingerprint.
func (r *runner) pollRegistry() {
	ver, err := r.svc.Refresh(context.Background())
	if err != nil {
		// Only a true cold start reaches here (no last-good model);
		// under scenario chaos the source serves stale instead.
		r.errs = append(r.errs, fmt.Sprintf("registry poll: %v", err))
		return
	}
	if ver != r.lastVersion {
		r.deploys++
		r.lastVersion = ver
		r.logf("refresh", "poll converged to %q v%d", r.curDep.Name, ver)
	}
	st := r.regSrc.SourceStatus()
	if st.Stale != r.regStale {
		r.regStale = st.Stale
		if st.Stale {
			r.logf("stale", "registry unreachable, serving last-good model (failures %d)", st.Failures)
		} else {
			r.logf("fresh", "registry recovered, model source fresh again")
		}
	}
}

// startSupervisor builds the autonomic supervisor from the scenario's
// policy configuration, with actuators closing the loop onto the
// runner's pipeline, service, and simulated registry. Decisions are
// logged as they are made, so the MAPE loop's behavior is part of the
// deterministic fingerprint.
func (r *runner) startSupervisor() error {
	sp := r.sc.Supervisor
	var pols []autonomic.Policy
	if sp.ErrorTrigger > 0 {
		pols = append(pols, &autonomic.PredictionErrorPolicy{
			Trigger:      sp.ErrorTrigger,
			Clear:        sp.ErrorClear,
			MinSamples:   sp.ErrorMinSamples,
			PublishAfter: sp.PublishAfter,
		})
	}
	if sp.DriftThreshold > 0 {
		pols = append(pols, &autonomic.DriftPolicy{
			Threshold:    sp.DriftThreshold,
			SlideTo:      sp.SlideTo,
			PublishAfter: sp.PublishAfter,
		})
	}
	if sp.OverloadHigh > 0 {
		pols = append(pols, &autonomic.OverloadPolicy{
			HighDepth:  sp.OverloadHigh,
			LowDepth:   sp.OverloadLow,
			Rise:       sp.OverloadRise,
			Sustain:    sp.OverloadSustain,
			TightDepth: sp.TightDepth,
			TightFloor: sp.TightFloor,
			RelaxDepth: sp.RelaxDepth,
			RelaxFloor: sp.RelaxFloor,
		})
	}
	if sp.SkewTrigger > 0 {
		pols = append(pols, &autonomic.SkewPolicy{
			High:    sp.SkewTrigger,
			Sustain: sp.SkewSustain,
		})
	}
	sup, err := autonomic.New(autonomic.Config{
		Policies: pols,
		Actuators: autonomic.Actuators{
			Retrain:   r.actRetrain,
			Slide:     r.actSlide,
			Publish:   r.actPublish,
			Redeploy:  r.actRedeploy,
			Reshard:   r.actReshard,
			Rebalance: r.actRebalance,
		},
		DefaultCooldown: sp.Cooldown,
		RedeployAfter:   sp.RedeployAfter,
		OnDecision: func(d autonomic.Decision) {
			r.logf("decision", "%s", d.String())
		},
	})
	if err != nil {
		return err
	}
	r.sup = sup
	return nil
}

// superTick is one MAPE cycle: observe the serving stack into the
// signal bus, then let the supervisor analyze, plan, and execute.
// Prediction-error and drift signals are published at their sources
// (fail, actRetrain); this adds the per-cycle gauges.
func (r *runner) superTick() {
	st := r.svc.Stats()
	r.sup.Signal(autonomic.Signal{Kind: autonomic.SignalQueueDepth, At: r.now, Value: float64(st.QueueDepth)})
	if st.ShedWindows > r.lastShedSeen {
		r.sup.Signal(autonomic.Signal{Kind: autonomic.SignalShed, At: r.now, Value: float64(st.ShedWindows - r.lastShedSeen)})
		r.lastShedSeen = st.ShedWindows
	}
	if r.regSrc != nil {
		var age float64
		if st.RegistryStale {
			age = st.RegistryStaleAge.Seconds()
			if age <= 0 {
				age = r.tickSec
			}
		}
		r.sup.Signal(autonomic.Signal{Kind: autonomic.SignalStaleness, At: r.now, Value: age})
	}
	if r.completedRuns > r.lastRunsSeen {
		r.sup.Signal(autonomic.Signal{Kind: autonomic.SignalNewRuns, At: r.now, Value: float64(r.completedRuns - r.lastRunsSeen)})
		r.lastRunsSeen = r.completedRuns
	}
	if skew, ok := r.shardSkew(st.ShardLoads, r.prevShardWindows); ok {
		r.sup.Signal(autonomic.Signal{Kind: autonomic.SignalShardSkew, At: r.now, Value: skew})
	}
	r.prevShardWindows = shardWindows(st.ShardLoads)
	r.sup.Tick(r.now)
}

// shardWindows extracts the cumulative per-shard window counters.
func shardWindows(loads []serve.ShardLoad) []uint64 {
	out := make([]uint64, len(loads))
	for i, ld := range loads {
		out[i] = ld.Windows
	}
	return out
}

// shardSkew computes max/mean over the per-shard windows enqueued
// since the base snapshot (nil = since boot). ok is false when fewer
// than two shards exist or no window landed in the interval — there is
// no imbalance to speak of.
func (r *runner) shardSkew(loads []serve.ShardLoad, base []uint64) (float64, bool) {
	if len(loads) < 2 {
		return 0, false
	}
	var total, max float64
	for i, ld := range loads {
		d := float64(ld.Windows)
		if i < len(base) {
			d -= float64(base[i])
		}
		total += d
		if d > max {
			max = d
		}
	}
	if total <= 0 {
		return 0, false
	}
	return max / (total / float64(len(loads))), true
}

// actRetrain is the supervisor's Retrain arm: one incremental
// Pipeline.Update on the accumulated history, with the result parked
// for the publish/redeploy that follows. Drift the update reported
// feeds back as a signal — the Analyze input of the next cycle.
func (r *runner) actRetrain(reason string) error {
	rep, err := r.tr.retrainNow()
	if err != nil {
		return err
	}
	dep, err := serve.FromReport(rep)
	if err != nil {
		return fmt.Errorf("no deployable model: %w", err)
	}
	r.pendingDep = dep
	redraw := ""
	if rep.SplitRedrawn {
		redraw = " (split redrawn)"
	}
	r.logf("retrain", "autonomous retrain %d trained %q, window start %d%s",
		r.tr.retrains, dep.Name, rep.WindowStart, redraw)
	if r.sc.Train.VerifyUpdate || (rep.SplitRedrawn && r.sc.Train.VerifyRedraw) {
		r.logf("parity", "update parity: %d checks, %d failures", r.tr.parityChecks, len(r.tr.parityFails))
	}
	worst := 0.0
	for i := range rep.Results {
		if d := rep.Results[i].Update.DriftScore; d > worst {
			worst = d
		}
	}
	if worst > 0 {
		r.sup.Signal(autonomic.Signal{Kind: autonomic.SignalDrift, At: r.now, Value: worst, Detail: "retrain update"})
	}
	return nil
}

// actSlide tightens the pipeline's retention window; the next update
// evicts past the new bound.
func (r *runner) actSlide(maxRuns int, reason string) error {
	if err := r.tr.pipe.SetWindow(core.WindowPolicy{MaxRuns: maxRuns}); err != nil {
		return err
	}
	r.logf("slide", "training window tightened to max_runs=%d", maxRuns)
	return nil
}

// actPublish pushes the parked retrained deployment to the simulated
// registry (the fleet converges at its next poll), or deploys directly
// when the scenario runs without a registry.
func (r *runner) actPublish(reason string) error {
	if r.pendingDep == nil {
		return fmt.Errorf("no retrained deployment to publish")
	}
	dep := r.pendingDep
	if r.sc.Serve.Registry != nil {
		r.regDep = dep
		r.publishes++
		r.prevDep, r.curDep = r.curDep, dep
		r.logf("publish", "supervisor published %q (publish %d)", dep.Name, r.publishes)
		return nil
	}
	ver, err := r.svc.Deploy(dep)
	if err != nil {
		return err
	}
	r.deploys++
	r.prevDep, r.curDep = r.curDep, dep
	r.logf("deploy", "supervisor deployed %q as v%d", dep.Name, ver)
	return nil
}

// actRedeploy hot-swaps the parked deployment into the local service —
// the fallback when a publish has waited out RedeployAfter with the
// registry still stale.
func (r *runner) actRedeploy(reason string) error {
	dep := r.pendingDep
	if dep == nil {
		return fmt.Errorf("no retrained deployment to redeploy")
	}
	ver, err := r.svc.Deploy(dep)
	if err != nil {
		return err
	}
	r.deploys++
	r.logf("redeploy", "supervisor deployed %q locally as v%d (registry stale)", dep.Name, ver)
	return nil
}

// actRebalance is the supervisor's Rebalance arm: the service plans
// migrations through its placer and moves hot sessions onto cold
// shards under the coalescing exactness invariants. The skew baseline
// snapshots here so the max_shard_skew check measures the balance of
// the windows enqueued after the move, not the skewed history that
// triggered it.
func (r *runner) actRebalance(reason string) error {
	moved := r.svc.Rebalance()
	r.rebalances++
	r.skewBase = shardWindows(r.svc.Stats().ShardLoads)
	r.logf("rebalance", "supervisor rebalance %d migrated %d sessions", r.rebalances, moved)
	return nil
}

// actReshard swaps the live shed policy, moving the below-floor
// invariant's floor with it.
func (r *runner) actReshard(depth, floor int, reason string) error {
	if err := r.svc.SetShedPolicy(serve.ShedPolicy{MaxQueueDepth: depth, MinPriority: floor}); err != nil {
		return err
	}
	r.shedFloor = floor
	r.logf("reshard", "shed policy now depth=%d floor=%d", depth, floor)
	return nil
}

// onEstimate runs inside Flush/Close on the runner goroutine: it
// credits the window to its session and records queue latency in
// virtual ticks.
func (r *runner) onEstimate(est serve.Estimate) {
	c, ok := r.byID[est.SessionID]
	if !ok {
		return
	}
	c.delivered++
	c.lastEst, c.hasEst = est, true
	if len(c.pendingTicks) > 0 {
		lat := r.tick - c.pendingTicks[0]
		c.pendingTicks = c.pendingTicks[1:]
		r.latencySum += lat
		r.latencyCount++
		r.latencyHist[lat]++
		if lat > r.latencyMax {
			r.latencyMax = lat
		}
		if lat > c.latencyMax {
			c.latencyMax = lat
		}
		c.latencySum += lat
	}
}

// startArrivals brings newly arrived clients online.
func (r *runner) startArrivals(t int) {
	for _, c := range r.fleet {
		if c.active || c.startTick > t {
			continue
		}
		c.active = true
		c.resetRun(t)
		if err := r.register(c); err != nil {
			r.errs = append(r.errs, fmt.Sprintf("start session %s: %v", c.id, err))
			continue
		}
		r.logf("start", "client %s (prio %d) arrived", c.id, c.tmpl.Priority)
	}
}

// register (re-)creates the serving session of a client — at arrival,
// and again after an idle-TTL eviction.
func (r *runner) register(c *client) error {
	ss, err := r.svc.StartSession(c.id, serve.WithSessionPriority(c.tmpl.Priority))
	if err != nil {
		return err
	}
	r.sessions[c.id] = ss
	return nil
}

// restoreClients brings crash/flap victims back at their restore tick.
func (r *runner) restoreClients(t int) {
	for _, c := range r.fleet {
		if !c.active || (!c.crashed && !c.flapped) || c.downTick > t {
			continue
		}
		if c.crashed {
			c.crashed = false
			c.resetRun(t)
			r.logf("restore", "client %s back after crash (run restarted)", c.id)
		} else {
			c.flapped = false
			r.logf("restore", "client %s connection recovered", c.id)
		}
	}
}

// stepClients advances every live client one tick: sample, push,
// fail-handling, restart bookkeeping — in fleet order, so the schedule
// is deterministic.
func (r *runner) stepClients(t int) {
	for _, c := range r.fleet {
		if !c.active || c.crashed || t < c.restartAt {
			continue
		}
		if c.restartAt == t && len(c.pendingRun) == 0 && c.runs > 0 && c.runStart < t {
			// Back from a post-failure restart delay.
			c.resetRun(t)
			r.logf("restart", "client %s began run %d", c.id, c.runs+1)
		}
		if c.burstUntil > 0 && t >= c.burstUntil {
			c.burst = 1
			c.burstUntil = 0
		}
		d, failed := c.step(t, r.tickSec*c.rate)
		if c.flapped {
			continue // connection down: the sample is lost, no fail handling
		}
		c.pushed++
		c.pendingRun = append(c.pendingRun, d)
		r.push(c, d, false)
		if failed {
			r.fail(c, d.Tgen, t)
		}
	}
}

// push hands one datapoint (or, with endRun, the run-closing flush) to
// the client's session, mirroring the aggregation for exact accounting
// and classifying the outcome (accepted, shed, re-registered).
//
// The mirror must transition exactly like the session's aggregator, so
// it is advanced only after eviction handling: a re-registered session
// starts from an empty aggregator, and the mirror resets with it.
func (r *runner) push(c *client, d trace.Datapoint, endRun bool) {
	ss := r.sessions[c.id]
	var err error
	if endRun {
		err = ss.EndRun()
	} else {
		err = ss.Push(d)
	}
	if errors.Is(err, serve.ErrSessionClosed) {
		// Idle-TTL eviction while the client was dark: re-register, the
		// client resumes exactly like a real re-connecting monitor (the
		// window state accumulated before the outage is gone on both
		// sides).
		if rerr := r.register(c); rerr != nil {
			r.errs = append(r.errs, fmt.Sprintf("re-register %s: %v", c.id, rerr))
			return
		}
		r.logf("reregister", "client %s re-registered after eviction", c.id)
		c.mirror.Reset()
		ss = r.sessions[c.id]
		if endRun {
			err = ss.EndRun()
		} else {
			err = ss.Push(d)
		}
	}
	var emitted bool
	if endRun {
		_, _, emitted = c.mirror.Flush()
		c.mirror.Reset()
	} else {
		_, _, emitted = c.mirror.Push(d)
	}
	if emitted {
		c.attempted++
	}
	switch {
	case errors.Is(err, serve.ErrWindowShed):
		if !emitted {
			r.errs = append(r.errs, fmt.Sprintf("client %s: shed without a completed window", c.id))
		}
		c.shed++
	case err != nil:
		r.errs = append(r.errs, fmt.Sprintf("client %s push: %v", c.id, err))
	case emitted:
		c.pendingTicks = append(c.pendingTicks, r.tick)
	}
}

// fail handles a client crossing its failure condition: the run closes
// (EndRun — the final partial window is still predicted), the completed
// run feeds the trainer, and the retrain cadence may produce a new
// deployment.
func (r *runner) fail(c *client, tgen float64, t int) {
	// A real failure grades the last estimate this client received:
	// the remaining time to failure at prediction time is now known,
	// and the relative error is the supervisor's prediction-error
	// feedback signal.
	if r.sup != nil && c.hasEst {
		if actual := tgen - c.lastEst.Tgen; actual > 0 {
			relErr := math.Abs(c.lastEst.RTTF-actual) / math.Max(actual, 1)
			r.sup.Signal(autonomic.Signal{
				Kind: autonomic.SignalPredictionError, At: r.now,
				Value: relErr, Detail: c.id,
			})
		}
		c.hasEst = false
	}
	r.push(c, trace.Datapoint{}, true)
	run := trace.Run{
		Datapoints: append([]trace.Datapoint(nil), c.pendingRun...),
		Failed:     true,
		FailTime:   tgen,
	}
	c.runs++
	r.completedRuns++
	r.logf("fail", "client %s run %d failed at tgen %.1fs", c.id, c.runs, tgen)
	c.restartAt = t + 1 + r.atTick(c.tmpl.RestartDelay)
	c.pendingRun = c.pendingRun[:0]

	rep, err := r.tr.completedRun(run)
	if err != nil {
		r.logf("retrain_error", "%v", err)
		return
	}
	if rep == nil {
		return
	}
	dep, err := serve.FromReport(rep)
	if err != nil {
		r.logf("retrain_error", "no deployable model: %v", err)
		return
	}
	if r.sc.Serve.Registry != nil {
		// Registry mode: the trainer publishes; the service converges
		// at its next poll (the one-poll reconvergence the scenario
		// asserts), not here.
		r.regDep = dep
		r.publishes++
		r.prevDep, r.curDep = r.curDep, dep
		redraw := ""
		if rep.SplitRedrawn {
			redraw = " (split redrawn)"
		}
		r.logf("publish", "retrain %d published %q (publish %d), window start %d%s",
			r.tr.retrains, dep.Name, r.publishes, rep.WindowStart, redraw)
		if rep.SplitRedrawn && r.sc.Train.VerifyRedraw {
			r.logf("parity", "redraw parity: %d checks, %d failures", r.tr.parityChecks, len(r.tr.parityFails))
		}
		return
	}
	ver, err := r.svc.Deploy(dep)
	if err != nil {
		r.logf("retrain_error", "deploy: %v", err)
		return
	}
	r.deploys++
	r.prevDep, r.curDep = r.curDep, dep
	redraw := ""
	if rep.SplitRedrawn {
		redraw = " (split redrawn)"
	}
	r.logf("retrain", "retrain %d deployed %q as v%d, window start %d%s",
		r.tr.retrains, dep.Name, ver, rep.WindowStart, redraw)
	if rep.SplitRedrawn && r.sc.Train.VerifyRedraw {
		r.logf("parity", "redraw parity: %d checks, %d failures", r.tr.parityChecks, len(r.tr.parityFails))
	}
}

// fire applies one scenario event.
func (r *runner) fire(ev *ScenarioEvent) {
	t := r.tick
	switch ev.Action {
	case "crash_restart", "flap":
		victims := r.pickVictims(ev.Clients)
		down := r.atTick(ev.Down)
		if down < 1 {
			down = 1
		}
		for _, c := range victims {
			c.downTick = t + down
			if ev.Action == "crash_restart" {
				c.crashed = true
				c.everCrashed = true
				c.crashes++
				r.crashes++
				// The crash kills the monitored app mid-run: the
				// unfinished run is lost, exactly like a real FMC dying
				// without a fail event. The aggregator (session and
				// mirror alike) self-resets when the restarted run's
				// timestamps go backwards.
				c.pendingRun = c.pendingRun[:0]
				r.logf("chaos", "crash_restart client %s for %d ticks", c.id, down)
			} else {
				c.flapped = true
				c.flaps++
				r.flaps++
				r.logf("chaos", "flap client %s for %d ticks", c.id, down)
			}
		}
	case "slow_consumer":
		r.slowUntil = t + r.atTick(ev.For)
		r.logf("chaos", "slow_consumer: no flushes until tick %d", r.slowUntil)
	case "stale_model_storm":
		r.stormUntil = t + r.atTick(ev.For)
		r.logf("chaos", "stale_model_storm until tick %d", r.stormUntil)
	case "registry_outage":
		r.regOutageUntil = t + r.atTick(ev.For)
		r.logf("chaos", "registry_outage until tick %d", r.regOutageUntil)
	case "leak_burst":
		n := int(ev.Fraction*float64(len(r.fleet)) + 0.5)
		victims := r.pickVictims(n)
		until := t + r.atTick(ev.For)
		for _, c := range victims {
			c.burst = ev.Factor
			c.burstUntil = until
		}
		r.logf("chaos", "leak_burst x%g on %d clients until tick %d", ev.Factor, len(victims), until)
	case "assert":
		at := fmt.Sprintf("t=%s", ev.At)
		for _, c := range ev.Checks {
			res := r.evalCheck(c, at)
			r.checks = append(r.checks, res)
			r.logf("assert", "%s: passed=%v (%s)", c.Name, res.Passed, res.Detail)
		}
	}
}

// pickVictims draws n distinct live clients with the chaos stream.
func (r *runner) pickVictims(n int) []*client {
	var eligible []*client
	for _, c := range r.fleet {
		if c.active && !c.crashed && !c.flapped {
			eligible = append(eligible, c)
		}
	}
	if n > len(eligible) {
		n = len(eligible)
	}
	var out []*client
	for i := 0; i < n; i++ {
		k := r.chaosRng.Intn(len(eligible))
		out = append(out, eligible[k])
		eligible = append(eligible[:k], eligible[k+1:]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// stormTick flips the registry between the current and previous
// deployments — rapid version churn, the stale-model storm.
func (r *runner) stormTick() {
	dep := r.curDep
	if r.stormFlip && r.prevDep != nil {
		dep = r.prevDep
	}
	r.stormFlip = !r.stormFlip
	if _, err := r.svc.Deploy(dep); err != nil {
		r.errs = append(r.errs, fmt.Sprintf("storm deploy: %v", err))
		return
	}
	r.deploys++
}

// evalCheck evaluates one assertion against the current run state.
func (r *runner) evalCheck(c Check, at string) CheckResult {
	res := CheckResult{At: at, Check: c.Name}
	stats := r.svc.Stats()
	bound := func(def float64) float64 {
		if c.Has {
			return c.Value
		}
		return def
	}
	ge := func(got, min float64, what string) {
		res.Passed = got >= min
		res.Detail = fmt.Sprintf("%s %g, want >= %g", what, got, min)
	}
	le := func(got, max float64, what string) {
		res.Passed = got <= max
		res.Detail = fmt.Sprintf("%s %g, want <= %g", what, got, max)
	}
	switch c.Name {
	case "min_predictions":
		ge(float64(stats.Predictions), bound(1), "predictions")
	case "min_alerts":
		ge(float64(stats.Alerts), bound(1), "alerts")
	case "max_queue_depth":
		le(float64(stats.QueueDepth), bound(0), "queue depth")
	case "min_sessions":
		ge(float64(stats.Sessions), bound(1), "sessions")
	case "min_completed_runs":
		ge(float64(r.completedRuns), bound(1), "completed runs")
	case "min_retrains":
		ge(float64(r.tr.retrains), bound(1), "retrains")
	case "min_model_version":
		ge(float64(stats.ModelVersion), bound(2), "model version")
	case "min_shed":
		ge(float64(stats.ShedWindows), bound(1), "shed windows")
	case "max_shed":
		le(float64(stats.ShedWindows), bound(0), "shed windows")
	case "require_redraw":
		ge(float64(r.tr.redraws), bound(1), "split redraws")
	case "require_parity":
		res.Passed = len(r.tr.parityFails) == 0 && r.tr.parityChecks >= int(bound(1))
		res.Detail = fmt.Sprintf("%d parity checks, %d failures", r.tr.parityChecks, len(r.tr.parityFails))
	case "no_lost_windows":
		lost, survivors := 0, 0
		for _, cl := range r.fleet {
			if cl.everCrashed {
				continue
			}
			survivors++
			if l := cl.attempted - cl.shed - cl.delivered; l > 0 {
				lost += l
			}
		}
		res.Passed = lost == 0
		res.Detail = fmt.Sprintf("%d windows lost across %d never-crashed sessions", lost, survivors)
	case "registry_stale":
		res.Passed = r.regSrc != nil && stats.RegistryStale
		if r.regSrc == nil {
			res.Detail = "no registry configured"
		} else {
			res.Detail = fmt.Sprintf("stale=%v last_error=%q", stats.RegistryStale, stats.RegistryLastError)
		}
	case "registry_fresh":
		res.Passed = r.regSrc != nil && !stats.RegistryStale
		if r.regSrc == nil {
			res.Detail = "no registry configured"
		} else {
			res.Detail = fmt.Sprintf("stale=%v last_error=%q", stats.RegistryStale, stats.RegistryLastError)
		}
	case "min_publishes":
		ge(float64(r.publishes), bound(1), "registry publishes")
	case "min_coalesced":
		ge(float64(stats.CoalescedBatches), bound(1), "coalesced batches")
	case "max_batches":
		le(float64(r.batches), bound(0), "prediction batches")
	case "max_p99_latency":
		le(float64(r.latencyPercentile(99)), bound(0), "p99 latency ticks")
	case "min_decisions":
		if r.sup == nil {
			res.Detail = "no supervisor configured"
			break
		}
		ge(float64(r.sup.Decisions()), bound(1), "supervisor decisions")
	case "min_reshards":
		if r.sup == nil {
			res.Detail = "no supervisor configured"
			break
		}
		ge(float64(r.sup.Executed(autonomic.ActionReshard)), bound(1), "reshard actions")
	case "min_slides":
		if r.sup == nil {
			res.Detail = "no supervisor configured"
			break
		}
		ge(float64(r.sup.Executed(autonomic.ActionSlide)), bound(1), "slide actions")
	case "min_migrations":
		ge(float64(stats.Migrations), bound(1), "placement migrations")
	case "max_shard_skew":
		skew, ok := r.shardSkew(stats.ShardLoads, r.skewBase)
		if !ok {
			res.Passed = true
			res.Detail = "no windows in the measured interval"
			break
		}
		what := "shard window skew since boot"
		if r.skewBase != nil {
			what = "shard window skew since last rebalance"
		}
		le(skew, bound(1), what)
	case "no_errors":
		res.Passed = len(r.errs) == 0
		if res.Passed {
			res.Detail = "no internal errors"
		} else {
			res.Detail = fmt.Sprintf("%d internal errors, first: %s", len(r.errs), r.errs[0])
		}
	case "shed_only_below_floor":
		res.Passed = len(r.shedFloorBad) == 0
		if res.Passed {
			res.Detail = fmt.Sprintf("%d shed windows, all below the floor", stats.ShedWindows)
		} else {
			res.Detail = r.shedFloorBad[0]
		}
	default:
		res.Detail = fmt.Sprintf("unknown check %q", c.Name)
	}
	return res
}

// latencyPercentile computes the nearest-rank p-th percentile of the
// queue-latency distribution, in ticks (0 with no samples).
func (r *runner) latencyPercentile(p float64) int {
	if r.latencyCount == 0 {
		return 0
	}
	rank := int(p/100*float64(r.latencyCount) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	ticks := make([]int, 0, len(r.latencyHist))
	for t := range r.latencyHist {
		ticks = append(ticks, t)
	}
	sort.Ints(ticks)
	seen := 0
	for _, t := range ticks {
		seen += r.latencyHist[t]
		if seen >= rank {
			return t
		}
	}
	return ticks[len(ticks)-1]
}

// report assembles the final Report from the drained run state.
func (r *runner) report(stats serve.Stats, ticks int) *Report {
	rep := &Report{
		Scenario:        r.sc.Name,
		Seed:            r.sc.Seed,
		Ticks:           ticks,
		VirtualDuration: r.sc.Duration.String(),
		Clients:         len(r.fleet),
		CompletedRuns:   r.completedRuns,
		Crashes:         r.crashes,
		Flaps:           r.flaps,

		Retrains:          r.tr.retrains,
		Redraws:           r.tr.redraws,
		ParityChecks:      r.tr.parityChecks,
		ParityFailures:    r.tr.parityFails,
		Deploys:           r.deploys,
		FinalModelVersion: stats.ModelVersion,

		Predictions:      stats.Predictions,
		Alerts:           stats.Alerts,
		ShedWindows:      stats.ShedWindows,
		ShedByPriority:   stats.ShedByPriority,
		EvictedSessions:  stats.EvictedSessions,
		MaxQueueDepth:    r.maxQueueDepth,
		Batches:          r.batches,
		MaxBatchSize:     r.maxBatch,
		CoalescedBatches: stats.CoalescedBatches,
		CoalescedWindows: stats.CoalescedWindows,

		MaxLatencyTicks: r.latencyMax,
		Assertions:      r.checks,
		Errors:          append([]string(nil), r.errs...),
		Log:             r.log,

		Publishes:    r.publishes,
		FinallyStale: r.regStale,

		Migrations: stats.Migrations,
	}
	if skew, ok := r.shardSkew(stats.ShardLoads, r.skewBase); ok {
		rep.FinalShardSkew = skew
	}
	if r.sup != nil {
		rep.Decisions = r.sup.Decisions()
		rep.ActionsExecuted = map[string]int{}
		for _, k := range []autonomic.ActionKind{
			autonomic.ActionRetrain, autonomic.ActionSlide, autonomic.ActionPublish,
			autonomic.ActionRedeploy, autonomic.ActionReshard, autonomic.ActionRebalance,
		} {
			if n := r.sup.Executed(k); n > 0 {
				rep.ActionsExecuted[string(k)] = n
			}
		}
	}
	if r.latencyCount > 0 {
		rep.MeanLatencyTicks = float64(r.latencySum) / float64(r.latencyCount)
		rep.LatencyP50Ticks = r.latencyPercentile(50)
		rep.LatencyP90Ticks = r.latencyPercentile(90)
		rep.LatencyP99Ticks = r.latencyPercentile(99)
		ticks := make([]int, 0, len(r.latencyHist))
		for t := range r.latencyHist {
			ticks = append(ticks, t)
		}
		sort.Ints(ticks)
		for _, t := range ticks {
			rep.LatencyHistogram = append(rep.LatencyHistogram, LatencyBucket{Ticks: t, Count: r.latencyHist[t]})
		}
	}
	for _, c := range r.fleet {
		sr := SessionReport{
			ID:        c.id,
			Template:  c.tmpl.Name,
			Priority:  c.tmpl.Priority,
			Runs:      c.runs,
			Crashes:   c.crashes,
			Flaps:     c.flaps,
			Pushed:    c.pushed,
			Windows:   c.attempted,
			Shed:      c.shed,
			Delivered: c.delivered,
		}
		if !c.everCrashed {
			if l := c.attempted - c.shed - c.delivered; l > 0 {
				sr.Lost = l
				rep.LostWindows += l
			}
		}
		rep.Sessions = append(rep.Sessions, sr)
	}
	rep.Passed = len(r.errs) == 0
	for _, c := range r.checks {
		if !c.Passed {
			rep.Passed = false
		}
	}
	return rep
}

// RunData parses a scenario document and runs it — the one-call entry
// point used by cmd/fleetsim and the examples.
func RunData(data []byte) (*Report, error) {
	sc, err := ParseScenario(data)
	if err != nil {
		return nil, err
	}
	return Run(sc)
}
