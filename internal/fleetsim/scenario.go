package fleetsim

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Scenario is one fleet-simulation script: the fleet to generate, the
// serving stack to run it against, the chaos to inject, and the
// assertions to check. Scenarios are deterministic: the same scenario
// and seed always produce the same event log and assertion outcomes.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string
	// Seed is the root of every random stream the run uses (fleet
	// generation, chaos targeting, client noise, backoff jitter).
	Seed uint64
	// Duration is the simulated (virtual) time the scenario covers.
	Duration time.Duration
	// Tick is the virtual sampling interval — the paper's FMC samples
	// every ~1.5 s; scenarios default to 1 s.
	Tick time.Duration

	Serve ServeConfig
	Train TrainConfig
	Fleet FleetConfig
	// Supervisor, when present, runs the autonomic MAPE loop inside the
	// simulation: serving-side signals feed policies that retrain,
	// slide, publish, redeploy, and reshard with no manual triggers,
	// and every decision joins the deterministic event log.
	Supervisor *SupervisorConfig
	Events     []ScenarioEvent
	// Final are the end-of-run assertions, evaluated after the last
	// flush and drain.
	Final []Check
}

// ServeConfig shapes the serve.Service under test.
type ServeConfig struct {
	// Shards is the dispatch shard count (default 2).
	Shards int
	// WindowSec is the aggregation window (default 10 virtual seconds).
	WindowSec float64
	// IncludeSlopes/IncludeIntergen enable the derived feature columns.
	IncludeSlopes   bool
	IncludeIntergen bool
	// FlushEvery runs a dispatch flush every N ticks (default 5).
	FlushEvery int
	// SessionTTL enables the idle sweep (0 = off) …
	SessionTTL time.Duration
	// … run every SweepEvery ticks (default FlushEvery).
	SweepEvery int
	// Shed enables priority load shedding.
	Shed *ShedConfig
	// Coalesce enables adaptive cross-shard batch coalescing
	// (serve.CoalescePolicy): light per-shard load merges into fewer,
	// larger prediction batches.
	Coalesce *CoalesceConfig
	// Placement selects the session placer. Absent (or policy "hash")
	// keeps the default FNV hash routing; policy "load" installs the
	// load-tracked placer, whose Rebalance migrates hot sessions onto
	// cold shards — the execute arm of the supervisor's skew policy.
	Placement *PlacementConfig
	// AlertThreshold raises alerts when predicted RTTF crosses below
	// this many seconds (0 = no alerting).
	AlertThreshold float64
	// Registry, when present, routes model distribution through a
	// simulated remote registry: retrains publish to the registry
	// instead of deploying directly, and the service converges by
	// polling through a serve.FailoverSource on the virtual clock —
	// the stale-while-revalidate path under deterministic chaos
	// (registry_outage).
	Registry *RegistryConfig
}

// ShedConfig mirrors serve.ShedPolicy.
type ShedConfig struct {
	MaxQueueDepth int
	MinPriority   int
}

// CoalesceConfig mirrors serve.CoalescePolicy.
type CoalesceConfig struct {
	MinBatch int
	MaxBatch int
}

// PlacementConfig mirrors the serve placement layer: policy "hash"
// (the default FNV routing) or "load" (serve.LoadPlacer).
type PlacementConfig struct {
	Policy string
	// SkewWatermark/MaxMoves/MinWindows shape the load placer's
	// rebalance plans (serve.LoadPlacerConfig; zero keeps the serve
	// defaults).
	SkewWatermark float64
	MaxMoves      int
	MinWindows    uint64
}

// RegistryConfig shapes the simulated remote registry path.
type RegistryConfig struct {
	// PollEvery refreshes the service from the registry every N ticks
	// (default 5) — the scenario's poll interval.
	PollEvery int
	// BreakerFailures is the circuit-breaker threshold (default 3
	// consecutive failed polls).
	BreakerFailures int
	// CooldownBase/CooldownMax bound the breaker's capped-exponential
	// cooldown in virtual time (defaults 2s / 4s — below the poll
	// interval, so a healed registry reconverges on the next poll).
	CooldownBase time.Duration
	CooldownMax  time.Duration
}

// SupervisorConfig wires an autonomic.Supervisor into the run: it is
// ticked on the virtual clock, fed the harness's serving-side signals
// (prediction-error feedback when monitored clients actually fail,
// drift scores from incremental retrains, queue depth, shed counts,
// registry staleness), and its actuators drive the same pipeline,
// service, and simulated registry the scenario runs — the closed loop
// under deterministic chaos.
type SupervisorConfig struct {
	// TickEvery runs one supervisor MAPE cycle every N runner ticks
	// (default 5).
	TickEvery int
	// Cooldown is the per-action-kind minimum spacing in virtual time
	// (default 30s).
	Cooldown time.Duration
	// RedeployAfter turns a publish deferred past this (registry still
	// stale) into a local redeploy (0 = wait indefinitely).
	RedeployAfter time.Duration

	// ErrorTrigger enables the prediction-error hysteresis policy: when
	// the EWMA of relative prediction error (graded against observed
	// failures) reaches it, the supervisor retrains (0 = disabled).
	ErrorTrigger float64
	// ErrorClear re-arms the policy (default ErrorTrigger/2).
	ErrorClear float64
	// ErrorMinSamples is the observation floor before firing (default 3).
	ErrorMinSamples int

	// DriftThreshold enables the drift threshold policy over the drift
	// scores incremental retrains report (0 = disabled).
	DriftThreshold float64
	// SlideTo makes the drift policy tighten the pipeline window to
	// this many runs before its retrain (0 = no slide).
	SlideTo int

	// OverloadHigh enables the queue-depth rate-of-change policy
	// (0 = disabled); sustained depth >= OverloadHigh (or climbing by
	// OverloadRise per observation) installs the tight shed policy,
	// sustained depth <= OverloadLow restores the relaxed one.
	OverloadHigh    float64
	OverloadLow     float64
	OverloadRise    float64
	OverloadSustain int
	TightDepth      int
	TightFloor      int
	RelaxDepth      int
	RelaxFloor      int

	// SkewTrigger enables the shard-skew policy (0 = disabled): when
	// the observed max/mean per-shard window rate sits at or past it
	// for SkewSustain consecutive supervisor observations, the
	// supervisor fires the rebalance actuator (serve.Service.Rebalance)
	// and hot sessions migrate onto cold shards. Needs a serve.placement
	// block with policy "load".
	SkewTrigger float64
	// SkewSustain is the consecutive-observation floor (default 3).
	SkewSustain int

	// PublishAfter makes retrain-proposing policies also propose a
	// publish (registry mode) so the fleet converges, not just this
	// node.
	PublishAfter bool
}

// TrainConfig shapes the model side: the bootstrap training phase that
// produces the initial deployment, and the live retraining loop.
type TrainConfig struct {
	// Runs is the number of bootstrap training runs simulated before
	// the fleet starts (default 4).
	Runs int
	// Template names the client template that generates training runs
	// (default: the first template).
	Template string
	// Models is the roster subset to train ("linear", "m5p", "reptree",
	// "svm", "svm2"; default ["linear"] — the fast one).
	Models []string
	// MaxRuns bounds the pipeline's sliding window (0 = unbounded).
	MaxRuns int
	// RetrainEvery triggers a Pipeline.Update + Deploy after every N
	// newly completed failed runs from the fleet (0 = never retrain).
	RetrainEvery int
	// VerifyRedraw fresh-fits every model after an update that redrew
	// the train/validation split and checks prediction parity at 1e-8
	// — the SplitRedrawn correctness assertion.
	VerifyRedraw bool
	// VerifyUpdate fresh-fits every model after every update (with the
	// incremental model's frozen preprocessing pinned, where the model
	// supports it) and checks training-window prediction parity at 1e-8
	// — the warm-start correctness assertion.
	VerifyUpdate bool
	// SVMTol/SVMMaxPasses override the ε-SVR roster entry's solver
	// bounds (0 keeps the defaults). Parity assertions need a tightly
	// converged dual: the default serving tolerance leaves the solver
	// short of the unique optimum warm and cold starts share.
	SVMTol       float64
	SVMMaxPasses int
}

// FleetConfig generates the client fleet.
type FleetConfig struct {
	// Count is the fleet size.
	Count int
	// Arrival is "spike" (everyone at t=0) or "linear" (spread evenly
	// over ArrivalOver). Default "spike".
	Arrival     string
	ArrivalOver time.Duration
	// StartJitter adds seeded normal cold-start jitter (stddev) to each
	// client's arrival.
	StartJitter time.Duration
	// Templates are the client archetypes, expanded by Weight to Count
	// instances (largest-remainder rounding, at least one client for
	// every positive weight when Count allows).
	Templates []Template
}

// Template is one client archetype: a monitored application with the
// paper's TPC-W-style memory-leak ramp — leaked memory accumulates,
// spills into swap, and exhausts it, firing the failure condition.
type Template struct {
	Name   string
	Weight float64
	// Priority is the serving-session priority (load shedding floor).
	Priority int
	// MemTotalKB/SwapTotalKB size the simulated machine (defaults 4 GB
	// / 2 GB, in KB).
	MemTotalKB  float64
	SwapTotalKB float64
	// LeakKBPerSec is the mean leak rate; per-client rates are drawn
	// once with LeakJitter relative spread, per-tick amounts with
	// NoiseFrac relative noise.
	LeakKBPerSec float64
	LeakJitter   float64
	NoiseFrac    float64
	// FailFrac is the free-memory/free-swap fraction below which the
	// client fails (default 0.02, the paper's condition).
	FailFrac float64
	// RestartDelay is the virtual downtime between a failure and the
	// next run (default one tick).
	RestartDelay time.Duration
	// Rate compresses this template's virtual time (default 1): each
	// runner tick advances the client's run by Rate·tick seconds, so
	// Tgen, the leak, and the failure condition all move Rate× faster —
	// and the client completes aggregation windows (and thus produces
	// serving load) at Rate× the window rate of a rate-1 client. The
	// lever hot-shard scenarios use to concentrate load.
	Rate float64
}

// ScenarioEvent is one timed entry in the script: a chaos action or an
// in-scenario assertion.
type ScenarioEvent struct {
	// At is the virtual time the event fires.
	At time.Duration
	// Action is one of: crash_restart, flap, slow_consumer,
	// stale_model_storm, leak_burst, assert.
	Action string
	// Clients is how many running clients the action targets
	// (crash_restart, flap; seeded random choice).
	Clients int
	// Down is the outage length (crash_restart, flap).
	Down time.Duration
	// For is the condition length (slow_consumer, stale_model_storm,
	// leak_burst, registry_outage).
	For time.Duration
	// Factor multiplies the leak rate during a leak_burst (default 4).
	Factor float64
	// Fraction of the fleet a leak_burst hits (default 0.5).
	Fraction float64
	// Checks are the assertions an assert event evaluates.
	Checks []Check
}

// Check is one assertion: a named predicate over the run state, with
// an optional numeric bound. The catalog:
//
//	min_predictions: N      total estimates delivered ≥ N
//	min_alerts: N           alerts raised ≥ N
//	max_queue_depth: N      current queue depth ≤ N
//	min_sessions: N         active sessions ≥ N
//	min_completed_runs: N   fleet-wide failed runs ≥ N
//	min_retrains: N         live retrains ≥ N
//	min_model_version: N    registry version ≥ N
//	min_shed: N             shed windows ≥ N
//	max_shed: N             shed windows ≤ N
//	no_lost_windows         every never-crashed session has all its
//	                        accepted windows delivered (final only)
//	shed_only_below_floor   every shed window belongs to a priority
//	                        below the shed policy floor
//	require_redraw          at least one update redrew the split
//	require_parity          every redraw parity check passed
//	registry_stale          the model source is serving stale (registry
//	                        mode only)
//	registry_fresh          the model source is fresh — the node has a
//	                        live registry read
//	min_publishes: N        retrains published to the registry ≥ N
//	max_p99_latency: N      p99 queue latency ≤ N ticks
//	min_coalesced: N        coalesced (merged cross-shard) prediction
//	                        batches ≥ N — proves stealing happened
//	max_batches: N          total prediction batches dispatched ≤ N —
//	                        proves light load merged into few batches
//	min_decisions: N        supervisor decisions logged ≥ N (supervisor
//	                        mode only)
//	min_reshards: N         supervisor reshard actions executed ≥ N
//	min_slides: N           supervisor slide actions executed ≥ N
//	min_migrations: N       placement migrations executed ≥ N — proves
//	                        the rebalance actuator actually moved
//	                        sessions
//	max_shard_skew: X       max/mean per-shard window rate since the
//	                        last executed rebalance (whole run if none)
//	                        ≤ X — proves migration restored balance
//	no_errors               the run recorded no internal errors (every
//	                        push, deploy, and poll succeeded — e.g. no
//	                        ErrNoModel anywhere)
type Check struct {
	Name  string
	Value float64
	// Has reports whether a numeric bound was given.
	Has bool
}

// Actions and check names the decoder accepts.
var (
	knownActions = []string{"crash_restart", "flap", "slow_consumer", "stale_model_storm", "leak_burst", "registry_outage", "assert"}
	knownChecks  = []string{
		"min_predictions", "min_alerts", "max_queue_depth", "min_sessions",
		"min_completed_runs", "min_retrains", "min_model_version",
		"min_shed", "max_shed",
		"no_lost_windows", "shed_only_below_floor", "require_redraw", "require_parity",
		"registry_stale", "registry_fresh", "min_publishes", "max_p99_latency",
		"min_coalesced", "max_batches",
		"min_decisions", "min_reshards", "min_slides",
		"min_migrations", "max_shard_skew", "no_errors",
	}
	knownModels = []string{"linear", "m5p", "reptree", "svm", "svm2"}
)

// ParseScenario parses and validates a YAML scenario document.
func ParseScenario(data []byte) (*Scenario, error) {
	root, err := parseYAML(data)
	if err != nil {
		return nil, err
	}
	m, ok := root.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("fleetsim: scenario document must be a map")
	}
	d := &decoder{}
	sc := d.scenario(m)
	if len(d.errs) > 0 {
		return nil, fmt.Errorf("fleetsim: invalid scenario:\n  - %s", strings.Join(d.errs, "\n  - "))
	}
	return sc, nil
}

// decoder accumulates decode errors so a bad scenario reports
// everything wrong with it at once.
type decoder struct {
	errs []string
}

func (d *decoder) errf(format string, args ...any) {
	d.errs = append(d.errs, fmt.Sprintf(format, args...))
}

// known flags unknown keys — scenario typos fail loudly.
func (d *decoder) known(m map[string]any, path string, keys ...string) {
	var bad []string
	for k := range m {
		found := false
		for _, want := range keys {
			if k == want {
				found = true
				break
			}
		}
		if !found {
			bad = append(bad, k)
		}
	}
	sort.Strings(bad)
	for _, k := range bad {
		d.errf("%s: unknown key %q", path, k)
	}
}

func (d *decoder) str(m map[string]any, path, key, def string) string {
	v, ok := m[key]
	if !ok || v == nil {
		return def
	}
	s, ok := v.(string)
	if !ok {
		d.errf("%s.%s: want a string, got %v", path, key, v)
		return def
	}
	return s
}

func (d *decoder) f64(m map[string]any, path, key string, def float64) float64 {
	v, ok := m[key]
	if !ok || v == nil {
		return def
	}
	switch n := v.(type) {
	case int64:
		return float64(n)
	case float64:
		return n
	}
	d.errf("%s.%s: want a number, got %v", path, key, v)
	return def
}

func (d *decoder) integer(m map[string]any, path, key string, def int) int {
	v, ok := m[key]
	if !ok || v == nil {
		return def
	}
	n, ok := v.(int64)
	if !ok {
		d.errf("%s.%s: want an integer, got %v", path, key, v)
		return def
	}
	return int(n)
}

func (d *decoder) boolean(m map[string]any, path, key string, def bool) bool {
	v, ok := m[key]
	if !ok || v == nil {
		return def
	}
	b, ok := v.(bool)
	if !ok {
		d.errf("%s.%s: want true/false, got %v", path, key, v)
		return def
	}
	return b
}

// dur accepts a Go duration string ("90s", "2m") or a bare number of
// seconds.
func (d *decoder) dur(m map[string]any, path, key string, def time.Duration) time.Duration {
	v, ok := m[key]
	if !ok || v == nil {
		return def
	}
	switch n := v.(type) {
	case string:
		dur, err := time.ParseDuration(n)
		if err != nil {
			d.errf("%s.%s: bad duration %q", path, key, n)
			return def
		}
		return dur
	case int64:
		return time.Duration(n) * time.Second
	case float64:
		return time.Duration(n * float64(time.Second))
	}
	d.errf("%s.%s: want a duration, got %v", path, key, v)
	return def
}

func (d *decoder) child(m map[string]any, key string) (map[string]any, bool) {
	v, ok := m[key]
	if !ok || v == nil {
		return nil, false
	}
	c, ok := v.(map[string]any)
	if !ok {
		d.errf("%s: want a map", key)
		return nil, false
	}
	return c, true
}

func (d *decoder) scenario(m map[string]any) *Scenario {
	d.known(m, "scenario", "name", "seed", "duration", "tick",
		"serve", "train", "fleet", "supervisor", "events", "assertions")
	sc := &Scenario{
		Name:     d.str(m, "scenario", "name", "unnamed"),
		Seed:     uint64(d.integer(m, "scenario", "seed", 1)),
		Duration: d.dur(m, "scenario", "duration", 0),
		Tick:     d.dur(m, "scenario", "tick", time.Second),
	}
	if sm, ok := d.child(m, "serve"); ok {
		sc.Serve = d.serve(sm)
	} else {
		sc.Serve = d.serve(map[string]any{})
	}
	if tm, ok := d.child(m, "train"); ok {
		sc.Train = d.train(tm)
	} else {
		sc.Train = d.train(map[string]any{})
	}
	if fm, ok := d.child(m, "fleet"); ok {
		sc.Fleet = d.fleet(fm)
	} else {
		d.errf("scenario: a fleet block is required")
	}
	if sm, ok := d.child(m, "supervisor"); ok {
		sc.Supervisor = d.supervisor(sm)
	}
	if v, ok := m["events"]; ok && v != nil {
		list, ok := v.([]any)
		if !ok {
			d.errf("events: want a list")
		}
		for i, item := range list {
			em, ok := item.(map[string]any)
			if !ok {
				d.errf("events[%d]: want a map", i)
				continue
			}
			sc.Events = append(sc.Events, d.event(em, fmt.Sprintf("events[%d]", i)))
		}
	}
	if v, ok := m["assertions"]; ok && v != nil {
		sc.Final = d.checks(v, "assertions")
	}
	d.validate(sc)
	return sc
}

func (d *decoder) serve(m map[string]any) ServeConfig {
	d.known(m, "serve", "shards", "window_sec", "include_slopes", "include_intergen",
		"flush_every", "session_ttl", "sweep_every", "shed", "coalesce", "placement",
		"alert_threshold", "registry")
	cfg := ServeConfig{
		Shards:          d.integer(m, "serve", "shards", 2),
		WindowSec:       d.f64(m, "serve", "window_sec", 10),
		IncludeSlopes:   d.boolean(m, "serve", "include_slopes", false),
		IncludeIntergen: d.boolean(m, "serve", "include_intergen", false),
		FlushEvery:      d.integer(m, "serve", "flush_every", 5),
		SessionTTL:      d.dur(m, "serve", "session_ttl", 0),
		AlertThreshold:  d.f64(m, "serve", "alert_threshold", 0),
	}
	cfg.SweepEvery = d.integer(m, "serve", "sweep_every", cfg.FlushEvery)
	if sm, ok := d.child(m, "shed"); ok {
		d.known(sm, "serve.shed", "max_queue_depth", "min_priority")
		cfg.Shed = &ShedConfig{
			MaxQueueDepth: d.integer(sm, "serve.shed", "max_queue_depth", 64),
			MinPriority:   d.integer(sm, "serve.shed", "min_priority", 0),
		}
	}
	if cm, ok := d.child(m, "coalesce"); ok {
		d.known(cm, "serve.coalesce", "min_batch", "max_batch")
		cfg.Coalesce = &CoalesceConfig{
			MinBatch: d.integer(cm, "serve.coalesce", "min_batch", 16),
			MaxBatch: d.integer(cm, "serve.coalesce", "max_batch", 0),
		}
	}
	if pm, ok := d.child(m, "placement"); ok {
		d.known(pm, "serve.placement", "policy", "skew_watermark", "max_moves", "min_windows")
		cfg.Placement = &PlacementConfig{
			Policy:        d.str(pm, "serve.placement", "policy", "hash"),
			SkewWatermark: d.f64(pm, "serve.placement", "skew_watermark", 0),
			MaxMoves:      d.integer(pm, "serve.placement", "max_moves", 0),
			MinWindows:    uint64(d.integer(pm, "serve.placement", "min_windows", 0)),
		}
	}
	if rm, ok := d.child(m, "registry"); ok {
		d.known(rm, "serve.registry", "poll_every", "breaker_failures", "cooldown_base", "cooldown_max")
		cfg.Registry = &RegistryConfig{
			PollEvery:       d.integer(rm, "serve.registry", "poll_every", 5),
			BreakerFailures: d.integer(rm, "serve.registry", "breaker_failures", 3),
			CooldownBase:    d.dur(rm, "serve.registry", "cooldown_base", 2*time.Second),
			CooldownMax:     d.dur(rm, "serve.registry", "cooldown_max", 4*time.Second),
		}
	}
	return cfg
}

func (d *decoder) supervisor(m map[string]any) *SupervisorConfig {
	d.known(m, "supervisor", "tick_every", "cooldown", "redeploy_after",
		"error_trigger", "error_clear", "error_min_samples",
		"drift_threshold", "slide_to",
		"overload_high", "overload_low", "overload_rise", "overload_sustain",
		"tight_depth", "tight_floor", "relax_depth", "relax_floor",
		"skew_trigger", "skew_sustain",
		"publish_after")
	return &SupervisorConfig{
		TickEvery:       d.integer(m, "supervisor", "tick_every", 5),
		Cooldown:        d.dur(m, "supervisor", "cooldown", 30*time.Second),
		RedeployAfter:   d.dur(m, "supervisor", "redeploy_after", 0),
		ErrorTrigger:    d.f64(m, "supervisor", "error_trigger", 0),
		ErrorClear:      d.f64(m, "supervisor", "error_clear", 0),
		ErrorMinSamples: d.integer(m, "supervisor", "error_min_samples", 3),
		DriftThreshold:  d.f64(m, "supervisor", "drift_threshold", 0),
		SlideTo:         d.integer(m, "supervisor", "slide_to", 0),
		OverloadHigh:    d.f64(m, "supervisor", "overload_high", 0),
		OverloadLow:     d.f64(m, "supervisor", "overload_low", 0),
		OverloadRise:    d.f64(m, "supervisor", "overload_rise", 0),
		OverloadSustain: d.integer(m, "supervisor", "overload_sustain", 3),
		TightDepth:      d.integer(m, "supervisor", "tight_depth", 0),
		TightFloor:      d.integer(m, "supervisor", "tight_floor", 0),
		RelaxDepth:      d.integer(m, "supervisor", "relax_depth", 0),
		RelaxFloor:      d.integer(m, "supervisor", "relax_floor", 0),
		SkewTrigger:     d.f64(m, "supervisor", "skew_trigger", 0),
		SkewSustain:     d.integer(m, "supervisor", "skew_sustain", 3),
		PublishAfter:    d.boolean(m, "supervisor", "publish_after", false),
	}
}

func (d *decoder) train(m map[string]any) TrainConfig {
	d.known(m, "train", "runs", "template", "models", "max_runs",
		"retrain_every", "verify_redraw", "verify_update", "svm_tol", "svm_max_passes")
	cfg := TrainConfig{
		Runs:         d.integer(m, "train", "runs", 4),
		Template:     d.str(m, "train", "template", ""),
		MaxRuns:      d.integer(m, "train", "max_runs", 0),
		RetrainEvery: d.integer(m, "train", "retrain_every", 0),
		VerifyRedraw: d.boolean(m, "train", "verify_redraw", false),
		VerifyUpdate: d.boolean(m, "train", "verify_update", false),
		SVMTol:       d.f64(m, "train", "svm_tol", 0),
		SVMMaxPasses: d.integer(m, "train", "svm_max_passes", 0),
	}
	if v, ok := m["models"]; ok && v != nil {
		list, ok := v.([]any)
		if !ok {
			d.errf("train.models: want a list")
		}
		for _, item := range list {
			name, ok := item.(string)
			if !ok {
				d.errf("train.models: want model names, got %v", item)
				continue
			}
			cfg.Models = append(cfg.Models, name)
		}
	}
	if len(cfg.Models) == 0 {
		cfg.Models = []string{"linear"}
	}
	for _, name := range cfg.Models {
		found := false
		for _, k := range knownModels {
			if name == k {
				found = true
				break
			}
		}
		if !found {
			d.errf("train.models: unknown model %q (have %s)", name, strings.Join(knownModels, ", "))
		}
	}
	return cfg
}

func (d *decoder) fleet(m map[string]any) FleetConfig {
	d.known(m, "fleet", "count", "arrival", "arrival_over", "start_jitter", "templates")
	cfg := FleetConfig{
		Count:       d.integer(m, "fleet", "count", 0),
		Arrival:     d.str(m, "fleet", "arrival", "spike"),
		ArrivalOver: d.dur(m, "fleet", "arrival_over", 0),
		StartJitter: d.dur(m, "fleet", "start_jitter", 0),
	}
	v, ok := m["templates"]
	if !ok || v == nil {
		d.errf("fleet.templates: at least one template is required")
		return cfg
	}
	list, ok := v.([]any)
	if !ok {
		d.errf("fleet.templates: want a list")
		return cfg
	}
	for i, item := range list {
		tm, ok := item.(map[string]any)
		if !ok {
			d.errf("fleet.templates[%d]: want a map", i)
			continue
		}
		path := fmt.Sprintf("fleet.templates[%d]", i)
		d.known(tm, path, "name", "weight", "priority", "mem_total_kb", "swap_total_kb",
			"leak_kb_per_sec", "leak_jitter", "noise_frac", "fail_frac", "restart_delay", "rate")
		cfg.Templates = append(cfg.Templates, Template{
			Name:         d.str(tm, path, "name", fmt.Sprintf("template-%d", i)),
			Weight:       d.f64(tm, path, "weight", 1),
			Priority:     d.integer(tm, path, "priority", 0),
			MemTotalKB:   d.f64(tm, path, "mem_total_kb", 4<<20),
			SwapTotalKB:  d.f64(tm, path, "swap_total_kb", 2<<20),
			LeakKBPerSec: d.f64(tm, path, "leak_kb_per_sec", 0),
			LeakJitter:   d.f64(tm, path, "leak_jitter", 0.1),
			NoiseFrac:    d.f64(tm, path, "noise_frac", 0.05),
			FailFrac:     d.f64(tm, path, "fail_frac", 0.02),
			RestartDelay: d.dur(tm, path, "restart_delay", 0),
			Rate:         d.f64(tm, path, "rate", 1),
		})
	}
	return cfg
}

func (d *decoder) event(m map[string]any, path string) ScenarioEvent {
	d.known(m, path, "at", "action", "clients", "down", "for", "factor", "fraction", "checks")
	ev := ScenarioEvent{
		At:       d.dur(m, path, "at", 0),
		Action:   d.str(m, path, "action", ""),
		Clients:  d.integer(m, path, "clients", 1),
		Down:     d.dur(m, path, "down", 0),
		For:      d.dur(m, path, "for", 0),
		Factor:   d.f64(m, path, "factor", 4),
		Fraction: d.f64(m, path, "fraction", 0.5),
	}
	found := false
	for _, a := range knownActions {
		if ev.Action == a {
			found = true
			break
		}
	}
	if !found {
		d.errf("%s: unknown action %q (have %s)", path, ev.Action, strings.Join(knownActions, ", "))
	}
	if v, ok := m["checks"]; ok && v != nil {
		ev.Checks = d.checks(v, path+".checks")
	}
	if ev.Action == "assert" && len(ev.Checks) == 0 {
		d.errf("%s: assert event without checks", path)
	}
	return ev
}

// checks decodes a check list: items are either bare names
// ("no_lost_windows") or single-key maps ("min_predictions: 40").
func (d *decoder) checks(v any, path string) []Check {
	list, ok := v.([]any)
	if !ok {
		d.errf("%s: want a list", path)
		return nil
	}
	var out []Check
	for i, item := range list {
		var c Check
		switch t := item.(type) {
		case string:
			c = Check{Name: t}
		case map[string]any:
			if len(t) != 1 {
				d.errf("%s[%d]: want one \"name: bound\" pair", path, i)
				continue
			}
			for k, bv := range t {
				c = Check{Name: k}
				switch n := bv.(type) {
				case int64:
					c.Value, c.Has = float64(n), true
				case float64:
					c.Value, c.Has = n, true
				default:
					d.errf("%s[%d]: bound for %q must be a number", path, i, k)
				}
			}
		default:
			d.errf("%s[%d]: want a check name or \"name: bound\"", path, i)
			continue
		}
		known := false
		for _, k := range knownChecks {
			if c.Name == k {
				known = true
				break
			}
		}
		if !known {
			d.errf("%s[%d]: unknown check %q", path, i, c.Name)
			continue
		}
		out = append(out, c)
	}
	return out
}

// validate applies the cross-field rules.
func (d *decoder) validate(sc *Scenario) {
	if sc.Duration <= 0 {
		d.errf("scenario: duration must be positive")
	}
	if sc.Tick <= 0 {
		d.errf("scenario: tick must be positive")
	}
	if sc.Serve.WindowSec <= 0 {
		d.errf("serve.window_sec must be positive")
	}
	if sc.Serve.Shards < 1 {
		d.errf("serve.shards must be at least 1")
	}
	if sc.Serve.FlushEvery < 1 {
		d.errf("serve.flush_every must be at least 1")
	}
	if sc.Fleet.Count < 1 {
		d.errf("fleet.count must be at least 1")
	}
	if sc.Fleet.Arrival != "spike" && sc.Fleet.Arrival != "linear" {
		d.errf("fleet.arrival must be \"spike\" or \"linear\", got %q", sc.Fleet.Arrival)
	}
	if sc.Fleet.Arrival == "linear" && sc.Fleet.ArrivalOver <= 0 {
		d.errf("fleet.arrival_over must be positive for linear arrival")
	}
	var weight float64
	for i, t := range sc.Fleet.Templates {
		if t.Weight < 0 {
			d.errf("fleet.templates[%d]: negative weight", i)
		}
		weight += t.Weight
		if t.LeakKBPerSec <= 0 {
			d.errf("fleet.templates[%d] (%s): leak_kb_per_sec must be positive — every client must eventually fail", i, t.Name)
		}
		if t.MemTotalKB <= 0 || t.SwapTotalKB <= 0 {
			d.errf("fleet.templates[%d] (%s): memory and swap sizes must be positive", i, t.Name)
		}
		if t.FailFrac <= 0 || t.FailFrac >= 1 {
			d.errf("fleet.templates[%d] (%s): fail_frac must be in (0,1)", i, t.Name)
		}
		if t.Rate <= 0 {
			d.errf("fleet.templates[%d] (%s): rate must be positive", i, t.Name)
		}
	}
	if len(sc.Fleet.Templates) > 0 && weight <= 0 {
		d.errf("fleet.templates: total weight must be positive")
	}
	if sc.Train.Runs < 2 {
		d.errf("train.runs must be at least 2 (the pipeline needs a train/validation split)")
	}
	if tn := sc.Train.Template; tn != "" {
		found := false
		for _, t := range sc.Fleet.Templates {
			if t.Name == tn {
				found = true
				break
			}
		}
		if !found {
			d.errf("train.template %q names no fleet template", tn)
		}
	}
	if cc := sc.Serve.Coalesce; cc != nil {
		if cc.MinBatch < 1 {
			d.errf("serve.coalesce.min_batch must be at least 1")
		}
		if cc.MaxBatch < 0 || (cc.MaxBatch > 0 && cc.MaxBatch < cc.MinBatch) {
			d.errf("serve.coalesce.max_batch must be 0 (uncapped) or >= min_batch")
		}
	}
	if pc := sc.Serve.Placement; pc != nil {
		if pc.Policy != "hash" && pc.Policy != "load" {
			d.errf("serve.placement.policy must be \"hash\" or \"load\", got %q", pc.Policy)
		}
		if pc.SkewWatermark != 0 && pc.SkewWatermark <= 1 {
			d.errf("serve.placement.skew_watermark must be > 1 (1 = perfectly balanced)")
		}
		if pc.MaxMoves < 0 {
			d.errf("serve.placement.max_moves must be non-negative")
		}
	}
	if rc := sc.Serve.Registry; rc != nil {
		if rc.PollEvery < 1 {
			d.errf("serve.registry.poll_every must be at least 1")
		}
		if rc.BreakerFailures < 1 {
			d.errf("serve.registry.breaker_failures must be at least 1")
		}
		if rc.CooldownBase <= 0 || rc.CooldownMax < rc.CooldownBase {
			d.errf("serve.registry: cooldown_base must be positive and cooldown_max >= cooldown_base")
		}
	}
	if sp := sc.Supervisor; sp != nil {
		if sp.TickEvery < 1 {
			d.errf("supervisor.tick_every must be at least 1")
		}
		if sp.Cooldown < 0 || sp.RedeployAfter < 0 {
			d.errf("supervisor: cooldown and redeploy_after must be non-negative")
		}
		if sp.ErrorTrigger <= 0 && sp.DriftThreshold <= 0 && sp.OverloadHigh <= 0 && sp.SkewTrigger <= 0 {
			d.errf("supervisor: at least one policy must be enabled (error_trigger, drift_threshold, overload_high, or skew_trigger)")
		}
		if sp.OverloadHigh > 0 {
			if sc.Serve.Shed == nil {
				d.errf("supervisor: the overload policy needs a serve.shed block to reshard")
			}
			if sp.TightDepth < 1 {
				d.errf("supervisor.tight_depth must be at least 1 when overload_high is set")
			}
		}
		if sp.SkewTrigger > 0 {
			if sp.SkewTrigger <= 1 {
				d.errf("supervisor.skew_trigger must be > 1 (1 = perfectly balanced)")
			}
			if sc.Serve.Placement == nil || sc.Serve.Placement.Policy != "load" {
				d.errf("supervisor: the skew policy needs serve.placement with policy \"load\" — the hash placer never migrates")
			}
		}
		if sp.SlideTo < 0 {
			d.errf("supervisor.slide_to must be non-negative")
		}
		if sp.PublishAfter && sc.Serve.Registry == nil {
			d.errf("supervisor.publish_after needs a serve.registry block")
		}
	}
	for i, ev := range sc.Events {
		if ev.At < 0 || ev.At > sc.Duration {
			d.errf("events[%d]: at=%v outside the scenario duration", i, ev.At)
		}
		if ev.Action == "registry_outage" && sc.Serve.Registry == nil {
			d.errf("events[%d]: registry_outage needs a serve.registry block", i)
		}
	}
	// Events must be sorted by time; ties keep file order (stable).
	sort.SliceStable(sc.Events, func(i, j int) bool { return sc.Events[i].At < sc.Events[j].At })
}
