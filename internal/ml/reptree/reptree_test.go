package reptree

import (
	"math"
	"testing"

	"repro/internal/ml"
	"repro/internal/randx"
)

func stepData(src *randx.Source, n int, noise float64) (X [][]float64, y []float64) {
	for i := 0; i < n; i++ {
		x := src.Uniform(0, 10)
		X = append(X, []float64{x})
		base := 0.0
		switch {
		case x < 3:
			base = 10
		case x < 7:
			base = 50
		default:
			base = 90
		}
		y = append(y, base+src.Norm(0, noise))
	}
	return X, y
}

func mae(m ml.Regressor, X [][]float64, y []float64) float64 {
	var s float64
	for i := range X {
		s += math.Abs(y[i] - m.Predict(X[i]))
	}
	return s / float64(len(X))
}

func TestOptionsValidate(t *testing.T) {
	cases := []Options{
		{MinInstances: 0},
		{MinInstances: 2, MaxDepth: -1},
		{MinInstances: 2, Prune: true, PruneFraction: 0},
		{MinInstances: 2, Prune: true, PruneFraction: 1},
	}
	for i, o := range cases {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	def := DefaultOptions()
	if err := def.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStepFunctionFit(t *testing.T) {
	src := randx.New(1)
	X, y := stepData(src, 600, 1)
	m, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	tX, tY := stepData(src, 200, 0)
	if e := mae(m, tX, tY); e > 4 {
		t.Fatalf("test MAE = %v on step data", e)
	}
	if m.Leaves < 3 {
		t.Fatalf("tree has %d leaves, want >= 3 (one per plateau)", m.Leaves)
	}
}

func TestPredictionsWithinLabelRange(t *testing.T) {
	// A regression tree predicts means of training subsets, so its
	// output can never leave the training label range.
	src := randx.New(2)
	X, y := stepData(src, 300, 5)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range y {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	m, _ := New(DefaultOptions())
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		p := m.Predict([]float64{src.Uniform(-100, 100)})
		if p < lo-1e-9 || p > hi+1e-9 {
			t.Fatalf("prediction %v outside label range [%v, %v]", p, lo, hi)
		}
	}
}

func TestPruningReducesOverfit(t *testing.T) {
	src := randx.New(3)
	X, y := stepData(src, 400, 15) // heavy noise
	unprunedOpts := DefaultOptions()
	unprunedOpts.Prune = false
	unprunedOpts.Backfit = false
	up, _ := New(unprunedOpts)
	if err := up.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	pr, _ := New(DefaultOptions())
	if err := pr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if pr.Leaves >= up.Leaves {
		t.Fatalf("pruning did not shrink tree: %d vs %d", pr.Leaves, up.Leaves)
	}
	// Pruned tree should generalize at least comparably.
	tX, tY := stepData(src, 300, 0)
	ePruned, eUnpruned := mae(pr, tX, tY), mae(up, tX, tY)
	if ePruned > eUnpruned*1.5 {
		t.Fatalf("pruned tree much worse: %v vs %v", ePruned, eUnpruned)
	}
}

func TestBackfitUsesAllData(t *testing.T) {
	src := randx.New(4)
	X, y := stepData(src, 300, 2)
	with := DefaultOptions()
	with.Backfit = true
	without := DefaultOptions()
	without.Backfit = false
	mw, _ := New(with)
	mo, _ := New(without)
	if err := mw.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := mo.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// Backfitting must not hurt training error materially.
	if ew, eo := mae(mw, X, y), mae(mo, X, y); ew > eo*1.2 {
		t.Fatalf("backfit degraded train error: %v vs %v", ew, eo)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	src := randx.New(5)
	X, y := stepData(src, 200, 3)
	a, _ := New(DefaultOptions())
	b, _ := New(DefaultOptions())
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		x := []float64{src.Uniform(0, 10)}
		if a.Predict(x) != b.Predict(x) {
			t.Fatal("same-seed trees disagree")
		}
	}
}

func TestMaxDepth(t *testing.T) {
	src := randx.New(6)
	X, y := stepData(src, 300, 1)
	op := DefaultOptions()
	op.MaxDepth = 1
	op.Prune = false
	m, _ := New(op)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if m.Leaves > 2 {
		t.Fatalf("depth-1 tree has %d leaves", m.Leaves)
	}
}

func TestConstantTargetSingleLeaf(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}}
	y := []float64{7, 7, 7, 7, 7, 7}
	m, _ := New(DefaultOptions())
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if m.Leaves != 1 {
		t.Fatalf("constant target grew %d leaves", m.Leaves)
	}
	if m.Predict([]float64{99}) != 7 {
		t.Fatal("constant prediction wrong")
	}
}

func TestTinyDataset(t *testing.T) {
	m, _ := New(DefaultOptions())
	if err := m.Fit([][]float64{{1}}, []float64{3}); err != nil {
		t.Fatal(err)
	}
	if m.Predict([]float64{0}) != 3 {
		t.Fatal("single-row tree wrong")
	}
}

func TestUnfittedAndMismatch(t *testing.T) {
	m, _ := New(DefaultOptions())
	if !math.IsNaN(m.Predict([]float64{1})) {
		t.Fatal("unfitted Predict not NaN")
	}
	src := randx.New(7)
	X, y := stepData(src, 60, 1)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(m.Predict([]float64{1, 2})) {
		t.Fatal("dimension mismatch not NaN")
	}
	if m.Name() != "reptree" {
		t.Fatalf("Name = %q", m.Name())
	}
}

func TestFitDoesNotRetainInput(t *testing.T) {
	src := randx.New(8)
	X, y := stepData(src, 100, 1)
	m, _ := New(DefaultOptions())
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	probe := []float64{5}
	before := m.Predict(probe)
	for i := range X {
		X[i][0] = -1e9
		y[i] = 1e9
	}
	if m.Predict(probe) != before {
		t.Fatal("model reads caller-mutated training data")
	}
}

func BenchmarkFit1000x10(b *testing.B) {
	src := randx.New(9)
	n, d := 1000, 10
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for j := range row {
			row[j] = src.Uniform(0, 10)
		}
		X[i] = row
		y[i] = row[0]*5 + src.Norm(0, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := New(DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	src := randx.New(41)
	X, y := stepData(src, 300, 1)
	m, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	data, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if restored.Leaves != m.Leaves {
		t.Fatalf("leaf count drift: %d vs %d", restored.Leaves, m.Leaves)
	}
	for x := 0.0; x < 10; x += 0.3 {
		probe := []float64{x}
		if restored.Predict(probe) != m.Predict(probe) {
			t.Fatalf("prediction drift at %v", x)
		}
	}
}

func TestJSONErrors(t *testing.T) {
	m, _ := New(DefaultOptions())
	if _, err := m.MarshalJSON(); err == nil {
		t.Fatal("unfitted marshal accepted")
	}
	if err := m.UnmarshalJSON([]byte("{bad")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if err := m.UnmarshalJSON([]byte(`{"options":{},"dim":0,"root":{"leaf":true}}`)); err == nil {
		t.Fatal("zero dim accepted")
	}
	bad := `{"options":{},"dim":1,"root":{"leaf":false,"feature":7,"threshold":0,
		"left":{"leaf":true,"value":0,"n":1},"right":{"leaf":true,"value":1,"n":1},"value":0,"n":2}}`
	if err := m.UnmarshalJSON([]byte(bad)); err == nil {
		t.Fatal("out-of-range split feature accepted")
	}
}
