// Package reptree implements the fast regression-tree learner the paper
// calls REP-Tree (§III-D): a variance-reduction tree grown on a portion
// of the data, pruned by reduced-error pruning against a held-out pruning
// set, and backfitted so leaf values use all available data. It was the
// most accurate model in the paper's evaluation (Table II).
package reptree

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/ml"
	"repro/internal/ml/treeutil"
	"repro/internal/randx"
)

// Options tunes the learner.
type Options struct {
	// MinInstances is the minimum rows per leaf (WEKA default 2).
	MinInstances int
	// MaxDepth caps the tree (0 = unlimited, WEKA default -1).
	MaxDepth int
	// PruneFraction is the fraction of training rows held out as the
	// pruning set (WEKA uses numFolds=3 → 1/3).
	PruneFraction float64
	// Prune toggles reduced-error pruning.
	Prune bool
	// Backfit re-estimates leaf values on the full training set after
	// pruning (WEKA's backfitting).
	Backfit bool
	// Seed drives the grow/prune partition.
	Seed uint64
}

// DefaultOptions mirrors WEKA's REPTree defaults.
func DefaultOptions() Options {
	return Options{MinInstances: 2, PruneFraction: 1.0 / 3.0, Prune: true, Backfit: true, Seed: 1}
}

// Validate reports option errors.
func (o *Options) Validate() error {
	if o.MinInstances < 1 {
		return fmt.Errorf("reptree: MinInstances must be >= 1, got %d", o.MinInstances)
	}
	if o.MaxDepth < 0 {
		return fmt.Errorf("reptree: MaxDepth must be >= 0, got %d", o.MaxDepth)
	}
	if o.Prune && (o.PruneFraction <= 0 || o.PruneFraction >= 1) {
		return fmt.Errorf("reptree: PruneFraction must be in (0,1) when pruning, got %v", o.PruneFraction)
	}
	return nil
}

type node struct {
	feature   int
	threshold float64
	left      *node
	right     *node

	leaf  bool
	value float64 // prediction (grow-set mean, backfitted later)
	n     int     // grow-set support

	// backfit accumulators
	bfSum float64
	bfCnt int
}

// Model is a fitted REP-Tree.
type Model struct {
	opts   Options
	root   *node
	dim    int
	fitted bool
	// Leaves and Nodes report fitted tree size.
	Leaves int
	Nodes  int
}

// New returns an unfitted REP-Tree.
func New(opts Options) (*Model, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Model{opts: opts}, nil
}

// Name implements ml.Regressor.
func (m *Model) Name() string { return "reptree" }

// Fit grows the tree on the grow partition, prunes with the pruning
// partition, and backfits leaf values with all rows.
func (m *Model) Fit(X [][]float64, y []float64) error {
	dim, err := ml.CheckTrainingSet(X, y)
	if err != nil {
		return err
	}
	Xc := ml.CloneMatrix(X)
	yc := ml.CloneVector(y)

	all := make([]int, len(Xc))
	for i := range all {
		all[i] = i
	}

	growIdx, pruneIdx := all, []int(nil)
	if m.opts.Prune && len(all) >= 2*m.opts.MinInstances+1 {
		rng := randx.New(m.opts.Seed)
		perm := rng.Perm(len(all))
		nPrune := int(m.opts.PruneFraction * float64(len(all)))
		if nPrune < 1 {
			nPrune = 1
		}
		if nPrune >= len(all) {
			nPrune = len(all) - 1
		}
		pruneIdx = make([]int, 0, nPrune)
		growIdx = make([]int, 0, len(all)-nPrune)
		for k, pi := range perm {
			if k < nPrune {
				pruneIdx = append(pruneIdx, all[pi])
			} else {
				growIdx = append(growIdx, all[pi])
			}
		}
	}

	root := m.build(Xc, yc, growIdx, 0)
	if m.opts.Prune && len(pruneIdx) > 0 {
		m.reducedErrorPrune(root, Xc, yc, pruneIdx)
	}
	if m.opts.Backfit {
		backfit(root, Xc, yc, all)
	}
	m.root = root
	m.dim = dim
	m.fitted = true
	m.Leaves, m.Nodes = 0, 0
	m.count(root)
	return nil
}

func (m *Model) build(X [][]float64, y []float64, idx []int, depth int) *node {
	nd := &node{n: len(idx), value: treeutil.Mean(y, idx)}
	if len(idx) < 2*m.opts.MinInstances ||
		(m.opts.MaxDepth > 0 && depth >= m.opts.MaxDepth) ||
		treeutil.SD(y, idx) == 0 {
		nd.leaf = true
		return nd
	}
	split, ok := treeutil.BestSplit(X, y, idx, m.opts.MinInstances)
	if !ok || split.Reduction <= 0 {
		nd.leaf = true
		return nd
	}
	left, right := treeutil.Partition(X, idx, split)
	if len(left) < m.opts.MinInstances || len(right) < m.opts.MinInstances {
		nd.leaf = true
		return nd
	}
	nd.feature = split.Feature
	nd.threshold = split.Threshold
	nd.left = m.build(X, y, left, depth+1)
	nd.right = m.build(X, y, right, depth+1)
	return nd
}

// reducedErrorPrune returns the subtree's squared error on the pruning
// rows and collapses nodes whose leaf error would not exceed it.
func (m *Model) reducedErrorPrune(nd *node, X [][]float64, y []float64, idx []int) float64 {
	leafErr := 0.0
	for _, i := range idx {
		d := y[i] - nd.value
		leafErr += d * d
	}
	if nd.leaf {
		return leafErr
	}
	left, right := treeutil.Partition(X, idx, treeutil.Split{Feature: nd.feature, Threshold: nd.threshold})
	subErr := m.reducedErrorPrune(nd.left, X, y, left) +
		m.reducedErrorPrune(nd.right, X, y, right)
	if leafErr <= subErr {
		nd.leaf = true
		nd.left, nd.right = nil, nil
		return leafErr
	}
	return subErr
}

// backfit pushes every row down the pruned tree and replaces leaf values
// with the mean over all rows reaching them (keeping the grow-set value
// for leaves no row reaches).
func backfit(root *node, X [][]float64, y []float64, idx []int) {
	for _, i := range idx {
		nd := root
		for !nd.leaf {
			if X[i][nd.feature] <= nd.threshold {
				nd = nd.left
			} else {
				nd = nd.right
			}
		}
		nd.bfSum += y[i]
		nd.bfCnt++
	}
	applyBackfit(root)
}

func applyBackfit(nd *node) {
	if nd == nil {
		return
	}
	if nd.leaf {
		if nd.bfCnt > 0 {
			nd.value = nd.bfSum / float64(nd.bfCnt)
		}
		return
	}
	applyBackfit(nd.left)
	applyBackfit(nd.right)
}

func (m *Model) count(nd *node) {
	if nd == nil {
		return
	}
	m.Nodes++
	if nd.leaf {
		m.Leaves++
		return
	}
	m.count(nd.left)
	m.count(nd.right)
}

// Predict implements ml.Regressor.
func (m *Model) Predict(x []float64) float64 {
	if !m.fitted || len(x) != m.dim {
		return math.NaN()
	}
	nd := m.root
	for !nd.leaf {
		if x[nd.feature] <= nd.threshold {
			nd = nd.left
		} else {
			nd = nd.right
		}
	}
	return nd.value
}

var _ ml.Regressor = (*Model)(nil)

// nodeJSON is the serialized recursive tree node.
type nodeJSON struct {
	Feature   int       `json:"feature,omitempty"`
	Threshold float64   `json:"threshold,omitempty"`
	Leaf      bool      `json:"leaf"`
	Value     float64   `json:"value"`
	N         int       `json:"n"`
	Left      *nodeJSON `json:"left,omitempty"`
	Right     *nodeJSON `json:"right,omitempty"`
}

type repJSON struct {
	Options Options   `json:"options"`
	Dim     int       `json:"dim"`
	Root    *nodeJSON `json:"root"`
}

func nodeToJSON(nd *node) *nodeJSON {
	if nd == nil {
		return nil
	}
	out := &nodeJSON{
		Feature: nd.feature, Threshold: nd.threshold,
		Leaf: nd.leaf, Value: nd.value, N: nd.n,
	}
	if !nd.leaf {
		out.Left = nodeToJSON(nd.left)
		out.Right = nodeToJSON(nd.right)
	}
	return out
}

func nodeFromJSON(nj *nodeJSON, dim int) (*node, error) {
	if nj == nil {
		return nil, fmt.Errorf("reptree: missing node in serialized tree")
	}
	nd := &node{
		feature: nj.Feature, threshold: nj.Threshold,
		leaf: nj.Leaf, value: nj.Value, n: nj.N,
	}
	if !nd.leaf {
		if nj.Feature < 0 || nj.Feature >= dim {
			return nil, fmt.Errorf("reptree: split feature %d out of range [0,%d)", nj.Feature, dim)
		}
		var err error
		if nd.left, err = nodeFromJSON(nj.Left, dim); err != nil {
			return nil, err
		}
		if nd.right, err = nodeFromJSON(nj.Right, dim); err != nil {
			return nil, err
		}
	}
	return nd, nil
}

// MarshalJSON serializes a fitted tree.
func (m *Model) MarshalJSON() ([]byte, error) {
	if !m.fitted {
		return nil, ml.ErrNotFitted
	}
	return json.Marshal(repJSON{Options: m.opts, Dim: m.dim, Root: nodeToJSON(m.root)})
}

// UnmarshalJSON restores a tree serialized by MarshalJSON.
func (m *Model) UnmarshalJSON(data []byte) error {
	var s repJSON
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("reptree: decoding model: %w", err)
	}
	if s.Dim <= 0 {
		return fmt.Errorf("reptree: serialized model has dimension %d", s.Dim)
	}
	root, err := nodeFromJSON(s.Root, s.Dim)
	if err != nil {
		return err
	}
	m.opts = s.Options
	m.dim = s.Dim
	m.root = root
	m.fitted = true
	m.Leaves, m.Nodes = 0, 0
	m.count(root)
	return nil
}
