package linreg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ml"
	"repro/internal/randx"
)

func TestRecoverExactLinear(t *testing.T) {
	// y = 3 + 2x1 - x2, no noise.
	src := randx.New(1)
	var X [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		x1, x2 := src.Uniform(-5, 5), src.Uniform(-5, 5)
		X = append(X, []float64{x1, x2})
		y = append(y, 3+2*x1-x2)
	}
	m := New()
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Intercept-3) > 1e-8 || math.Abs(m.Coef[0]-2) > 1e-8 || math.Abs(m.Coef[1]+1) > 1e-8 {
		t.Fatalf("coefficients = %v intercept = %v", m.Coef, m.Intercept)
	}
	if p := m.Predict([]float64{1, 1}); math.Abs(p-4) > 1e-8 {
		t.Fatalf("Predict = %v, want 4", p)
	}
}

func TestUnfittedPredictNaN(t *testing.T) {
	m := New()
	if !math.IsNaN(m.Predict([]float64{1})) {
		t.Fatal("unfitted Predict not NaN")
	}
	if m.Name() != "linear" {
		t.Fatalf("Name = %q", m.Name())
	}
}

func TestDimensionMismatchPredict(t *testing.T) {
	m := New()
	if err := m.Fit([][]float64{{1}, {2}, {3}}, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(m.Predict([]float64{1, 2})) {
		t.Fatal("dimension mismatch not NaN")
	}
}

func TestFitErrors(t *testing.T) {
	m := New()
	if err := m.Fit(nil, nil); err == nil {
		t.Fatal("empty Fit accepted")
	}
	if err := m.Fit([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched Fit accepted")
	}
}

func TestCollinearColumnsHandled(t *testing.T) {
	// Second column duplicates the first; ridge fallback must fit.
	var X [][]float64
	var y []float64
	for i := 0; i < 20; i++ {
		v := float64(i)
		X = append(X, []float64{v, v})
		y = append(y, 5+3*v)
	}
	m := New()
	if err := m.Fit(X, y); err != nil {
		t.Fatalf("collinear fit failed: %v", err)
	}
	// Predictions must still be accurate even if individual coefficients
	// are not identifiable.
	if p := m.Predict([]float64{10, 10}); math.Abs(p-35) > 1e-3 {
		t.Fatalf("collinear prediction = %v, want 35", p)
	}
}

func TestNoiseRobust(t *testing.T) {
	src := randx.New(2)
	var X [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		x := src.Uniform(0, 10)
		X = append(X, []float64{x})
		y = append(y, 1+4*x+src.Norm(0, 0.5))
	}
	m := New()
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-4) > 0.1 || math.Abs(m.Intercept-1) > 0.3 {
		t.Fatalf("noisy fit: coef=%v intercept=%v", m.Coef, m.Intercept)
	}
}

// Property: fitted residuals are orthogonal to each feature column
// (normal equations hold).
func TestNormalEquationsProperty(t *testing.T) {
	src := randx.New(3)
	f := func(seed uint16) bool {
		local := src.Fork(uint64(seed))
		n, d := 30, 3
		X := make([][]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			row := make([]float64, d)
			for j := range row {
				row[j] = local.Uniform(-10, 10)
			}
			X[i] = row
			y[i] = local.Uniform(-10, 10)
		}
		m := New()
		if err := m.Fit(X, y); err != nil {
			return false
		}
		for j := 0; j < d; j++ {
			var dot float64
			for i := 0; i < n; i++ {
				resid := y[i] - m.Predict(X[i])
				dot += resid * X[i][j]
			}
			if math.Abs(dot) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFitDoesNotRetainInput(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []float64{2, 4, 6}
	m := New()
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	before := m.Predict([]float64{10})
	X[0][0] = 1e9
	y[0] = -1e9
	after := m.Predict([]float64{10})
	if before != after {
		t.Fatal("model depends on caller-mutated training data")
	}
}

var _ ml.Regressor = New()

func BenchmarkFit500x30(b *testing.B) {
	src := randx.New(4)
	n, d := 500, 30
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for j := range row {
			row[j] = src.Float64()
		}
		X[i] = row
		y[i] = src.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New()
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	m := New()
	if err := m.Fit([][]float64{{1}, {2}, {3}}, []float64{3, 5, 7}); err != nil {
		t.Fatal(err)
	}
	data, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var restored Model
	if err := restored.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if restored.Predict([]float64{10}) != m.Predict([]float64{10}) {
		t.Fatal("prediction drift after JSON round trip")
	}
}

func TestJSONErrors(t *testing.T) {
	if _, err := New().MarshalJSON(); err == nil {
		t.Fatal("unfitted marshal accepted")
	}
	var m Model
	if err := m.UnmarshalJSON([]byte("{bad")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if err := m.UnmarshalJSON([]byte(`{"coef":[],"intercept":1}`)); err == nil {
		t.Fatal("empty coefficients accepted")
	}
}
