// Package linreg implements ordinary least-squares linear regression with
// an intercept (paper §III-D, eq. 3): y = x·β + ε, solved by Householder
// QR with a ridge-regularized fallback for collinear designs, mirroring
// WEKA's LinearRegression behaviour that the paper used.
package linreg

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/ml"
)

// Model is a fitted linear regression. The zero value is unfitted.
type Model struct {
	// Coef holds the feature weights; Intercept the bias term.
	Coef      []float64
	Intercept float64
	fitted    bool
}

// New returns an unfitted linear regression model.
func New() *Model { return &Model{} }

// Name implements ml.Regressor.
func (m *Model) Name() string { return "linear" }

// Fit solves min ||y - (Xβ + b)||₂ by QR on the augmented design matrix.
func (m *Model) Fit(X [][]float64, y []float64) error {
	dim, err := ml.CheckTrainingSet(X, y)
	if err != nil {
		return err
	}
	// Design matrix with a leading 1-column for the intercept, filled
	// row-wise on the flat layout.
	a := mat.NewDense(len(X), dim+1)
	for i, row := range X {
		arow := a.Row(i)
		arow[0] = 1
		copy(arow[1:], row)
	}
	sol, err := mat.LeastSquares(a, y)
	if err != nil {
		return err
	}
	m.Intercept = sol[0]
	m.Coef = sol[1:]
	m.fitted = true
	return nil
}

// Predict implements ml.Regressor; it returns NaN when unfitted or on a
// dimension mismatch.
func (m *Model) Predict(x []float64) float64 {
	if !m.fitted || len(x) != len(m.Coef) {
		return math.NaN()
	}
	s := m.Intercept
	for i, v := range x {
		s += m.Coef[i] * v
	}
	return s
}

var _ ml.Regressor = (*Model)(nil)

// linregJSON is the serialized model state.
type linregJSON struct {
	Coef      []float64 `json:"coef"`
	Intercept float64   `json:"intercept"`
}

// MarshalJSON serializes a fitted model.
func (m *Model) MarshalJSON() ([]byte, error) {
	if !m.fitted {
		return nil, ml.ErrNotFitted
	}
	return json.Marshal(linregJSON{Coef: m.Coef, Intercept: m.Intercept})
}

// UnmarshalJSON restores a model serialized by MarshalJSON.
func (m *Model) UnmarshalJSON(data []byte) error {
	var s linregJSON
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("linreg: decoding model: %w", err)
	}
	if len(s.Coef) == 0 {
		return fmt.Errorf("linreg: serialized model has no coefficients")
	}
	m.Coef = s.Coef
	m.Intercept = s.Intercept
	m.fitted = true
	return nil
}
