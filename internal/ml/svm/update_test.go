package svm

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/ml"
	"repro/internal/randx"
)

// tightOptions returns solver settings strict enough that both the
// warm-started and the cold solve land within parity resolution of the
// (unique) dual optimum: the dual is strictly convex, so 1e-8 parity
// is a convergence question, not a modeling one.
func tightOptions() Options {
	opts := DefaultOptions()
	opts.C = 10
	opts.Tol = 1e-12
	// Active-set shrinking makes late sweeps nearly free, so a generous
	// budget costs milliseconds; a cold solve on an ill-conditioned
	// window can need ~50k sweeps to certify 1e-12.
	opts.MaxPasses = 500000
	return opts
}

// pinnedColdFit trains a fresh model from scratch on (X, y) with the
// feature standardizer pinned to ref's frozen statistics — the
// reference an incremental update must reproduce.
func pinnedColdFit(t *testing.T, ref *Model, X [][]float64, y []float64) *Model {
	t.Helper()
	cold, err := New(ref.opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.PinPreprocessing(ref); err != nil {
		t.Fatal(err)
	}
	if err := cold.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	return cold
}

// assertParity checks per-row prediction agreement over the training
// window at the repo's incremental-parity pin: 1e-8 relative. The
// window — not fresh probe points — is the contract: training-point
// predictions are what the dual optimum determines to solver
// resolution, while a near-singular RBF Gram (e.g. low-dimensional
// data) leaves off-sample predictions genuinely underdetermined
// between equally optimal duals.
func assertParity(t *testing.T, got, want ml.Regressor, X [][]float64, context string) {
	t.Helper()
	worst := 0.0
	for _, x := range X {
		g, w := got.Predict(x), want.Predict(x)
		tol := 1e-8 * (1 + math.Abs(w))
		if d := math.Abs(g - w); d > tol {
			t.Fatalf("%s: prediction %v vs %v (|Δ| = %v > %v)", context, g, w, d, tol)
		} else if d > worst {
			worst = d
		}
	}
	t.Logf("%s: worst |Δ| = %v", context, worst)
}

func TestUpdateParityWithColdFit(t *testing.T) {
	src := randx.New(11)
	X, y := sineData(src, 240, 2)
	initX, initY := X[:200], y[:200]
	newX, newY := X[200:], y[200:]

	m, err := New(tightOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(initX, initY); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(newX, newY); err != nil {
		t.Fatal(err)
	}
	info := m.LastUpdate()
	if !info.Incremental || info.DriftRefit || info.Evicted != 0 {
		t.Fatalf("LastUpdate = %+v, want incremental append", info)
	}

	cold := pinnedColdFit(t, m, X, y)
	assertParity(t, m, cold, X, "append update vs pinned cold fit")
}

func TestSlideWindowParityWithColdFit(t *testing.T) {
	src := randx.New(12)
	X, y := sineData(src, 260, 2)
	initX, initY := X[:200], y[:200]
	newX, newY := X[200:], y[200:]
	const evict = 70

	m, err := New(tightOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(initX, initY); err != nil {
		t.Fatal(err)
	}
	if err := m.UpdateWindow(newX, newY, initX[:evict], initY[:evict]); err != nil {
		t.Fatal(err)
	}
	info := m.LastUpdate()
	if !info.Incremental || info.Evicted != evict {
		t.Fatalf("LastUpdate = %+v, want incremental slide evicting %d", info, evict)
	}

	winX := append(append([][]float64{}, X[evict:200]...), newX...)
	winY := append(append([]float64{}, y[evict:200]...), newY...)
	cold := pinnedColdFit(t, m, winX, winY)
	assertParity(t, m, cold, winX, "window slide vs pinned cold fit")
}

func TestRepeatedSlidesKeepCapFlat(t *testing.T) {
	src := randx.New(13)
	X, y := sineData(src, 200, 2)
	m, err := New(tightOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// Warm up one slide so the store has absorbed its steady-state
	// shape, then assert capacity stays flat across many cycles.
	step := func() {
		nX, nY := sineData(src, 20, 2)
		if err := m.SlideWindow(nX, nY, 20); err != nil {
			t.Fatal(err)
		}
	}
	step()
	cap0 := m.RowCap()
	for i := 0; i < 10; i++ {
		step()
	}
	if m.RowCap() > cap0 {
		t.Fatalf("row capacity grew across steady-state slides: %d -> %d", cap0, m.RowCap())
	}
}

func TestUpdateDriftRefit(t *testing.T) {
	src := randx.New(14)
	X, y := sineData(src, 120, 2)
	opts := tightOptions()
	opts.DriftThreshold = 1.0
	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// A far-shifted batch: every feature sits many frozen σ from the
	// training mean, so the incremental path must hand off to a refit
	// with fresh statistics.
	var shiftX [][]float64
	var shiftY []float64
	for i := 0; i < 30; i++ {
		x := src.Uniform(100, 110)
		shiftX = append(shiftX, []float64{x})
		shiftY = append(shiftY, 100*math.Sin(x))
	}
	if err := m.Update(shiftX, shiftY); err != nil {
		t.Fatal(err)
	}
	info := m.LastUpdate()
	if !info.DriftRefit || info.Incremental {
		t.Fatalf("LastUpdate = %+v, want drift-triggered refit", info)
	}
	if info.DriftScore <= opts.DriftThreshold {
		t.Fatalf("drift score %v not above threshold %v", info.DriftScore, opts.DriftThreshold)
	}

	// The same batch against a pinned standardizer must stay on the
	// incremental path: a refit would reuse the pinned statistics and
	// reproduce the incremental result anyway.
	pinned, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := New(opts)
	if err := base.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := pinned.PinPreprocessing(base); err != nil {
		t.Fatal(err)
	}
	if err := pinned.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := pinned.Update(shiftX, shiftY); err != nil {
		t.Fatal(err)
	}
	if info := pinned.LastUpdate(); !info.Incremental || info.DriftRefit {
		t.Fatalf("pinned LastUpdate = %+v, want incremental", info)
	}
}

func TestRestoredModelUpdates(t *testing.T) {
	src := randx.New(15)
	X, y := sineData(src, 160, 2)
	m, err := New(tightOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X[:120], y[:120]); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	restored := &Model{}
	if err := json.Unmarshal(data, restored); err != nil {
		t.Fatal(err)
	}
	// The restored model rebuilds its Gram lazily and keeps updating.
	if err := restored.Update(X[120:], y[120:]); err != nil {
		t.Fatal(err)
	}
	cold := pinnedColdFit(t, m, X, y)
	assertParity(t, restored, cold, X, "restored-model update vs pinned cold fit")
}

func TestLegacyPayloadRequiresRefit(t *testing.T) {
	src := randx.New(16)
	X, y := sineData(src, 60, 2)
	m, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	// Strip the incremental state, simulating a payload written before
	// this version: the restored model must predict but refuse Update.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	delete(raw, "train_x")
	delete(raw, "train_y")
	delete(raw, "beta_full")
	legacy, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	restored := &Model{}
	if err := json.Unmarshal(legacy, restored); err != nil {
		t.Fatal(err)
	}
	if got, want := restored.Predict(X[0]), m.Predict(X[0]); math.Abs(got-want) > 1e-12 {
		t.Fatalf("legacy payload predicts %v, want %v", got, want)
	}
	if err := restored.Update(X[:5], y[:5]); err == nil {
		t.Fatal("Update on a legacy payload succeeded; want refit-required error")
	}
}

func TestUpdateArgumentErrors(t *testing.T) {
	src := randx.New(17)
	X, y := sineData(src, 40, 2)
	m, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Update(X, y); err == nil {
		t.Fatal("Update before Fit succeeded")
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := m.Update([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("dimension-mismatched Update succeeded")
	}
	if err := m.SlideWindow(nil, nil, 41); err == nil {
		t.Fatal("over-eviction succeeded")
	}
	if err := m.SlideWindow(nil, nil, 40); err == nil {
		t.Fatal("eviction of the whole window succeeded")
	}
	if err := m.UpdateWindow(nil, nil, X[:3], y[:2]); err == nil {
		t.Fatal("mismatched evict rows/targets succeeded")
	}
	// After every rejected call the model still predicts.
	if v := m.Predict(X[0]); math.IsNaN(v) {
		t.Fatal("model unusable after rejected updates")
	}
}

// benchData builds a paper-shaped training problem: n rows, 4 features.
func benchData(n int) ([][]float64, []float64) {
	src := randx.New(99)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		a := src.Uniform(0, 2*math.Pi)
		b := src.Uniform(-1, 1)
		X[i] = []float64{a, b, a * b, src.Uniform(0, 1)}
		y[i] = 100*math.Sin(a) + 20*b + src.Norm(0, 2)
	}
	return X, y
}

// BenchmarkSVMWarmStartUpdate measures appending 50 rows onto an
// n=1000 fit through the warm-started incremental path; the committed
// BENCH baseline diffs it against BenchmarkSVMColdRefit on the same
// combined set — the warm-vs-cold headline of the autonomic loop.
func BenchmarkSVMWarmStartUpdate(b *testing.B) {
	X, y := benchData(1050)
	base, err := New(DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	if err := base.Fit(X[:1000], y[:1000]); err != nil {
		b.Fatal(err)
	}
	payload, err := json.Marshal(base)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := &Model{}
		if err := json.Unmarshal(payload, m); err != nil {
			b.Fatal(err)
		}
		m.rebuildGram() // pre-warm the restored Gram; measured work is the update
		b.StartTimer()
		if err := m.Update(X[1000:], y[1000:]); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		// Return the Gram as a long-lived pipeline's next retrain would,
		// so the measured update draws its border-extended scratch from
		// the pool instead of allocating ~17 MB per iteration.
		pool.PutDense(m.gram)
		m.gram = nil
		b.StartTimer()
	}
}

// BenchmarkSVMColdRefit is the from-scratch baseline the warm path is
// compared against: a full Fit on the same 1050-row combined set.
func BenchmarkSVMColdRefit(b *testing.B) {
	X, y := benchData(1050)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := New(DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

// TestUpdateGramRecycled pins the warm-start allocation fix: every
// Gram the retrain cycle builds is pool-class-sized, so the buffer one
// update returns is the buffer a later same-class update draws —
// previously Fit's exact-capacity matrix was silently dropped by
// PutVec and each warm update allocated a fresh Gram-sized buffer.
func TestUpdateGramRecycled(t *testing.T) {
	X, y := benchData(76)
	m, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X[:64], y[:64]); err != nil {
		t.Fatal(err)
	}
	// Updates 1 and 2 cycle two class-13 buffers (68² and 72² both
	// round to 8192) through the pool; update 3 must draw the buffer
	// update 1 released.
	if err := m.Update(X[64:68], y[64:68]); err != nil {
		t.Fatal(err)
	}
	first := &m.gram.Row(0)[0]
	if err := m.Update(X[68:72], y[68:72]); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(X[72:76], y[72:76]); err != nil {
		t.Fatal(err)
	}
	if &m.gram.Row(0)[0] != first {
		t.Fatal("warm update did not recycle the pooled Gram buffer")
	}
}
