// Package svm implements ε-insensitive support-vector regression
// (Cortes & Vapnik 1995; paper §III-D "SVM") trained by dual coordinate
// descent on the β = α - α* formulation with the bias folded into the
// kernel (K' = K + 1), the standard simplification of SMO-style solvers:
//
//	minimize  W(β) = ½ βᵀK'β − yᵀβ + ε‖β‖₁   s.t.  |β_i| ≤ C
//
// Each coordinate has the closed-form update
// β_i ← clip( S(y_i − g_i, ε) / K'_ii, ±C ) with g_i the prediction
// excluding β_i and S the soft-threshold operator. Inputs and targets are
// standardized internally (as WEKA's SMOreg does), since the raw F2PM
// features span six orders of magnitude.
//
// The solver works directly on flat Gram rows from the kernel engine
// (no row copies; the +1 bias folds in place) and shrinks its active
// set: coordinates that stop moving are skipped until a final full
// sweep certifies optimality. Prediction batches all support vectors
// through kernel.EvalInto.
//
// The fitted model retains its standardized training rows, the
// bias-folded Gram and the full dual vector, so Update and UpdateWindow
// (update.go) extend the fit warm: the Gram grows by its kernel border
// only, the coordinate descent restarts from the previous β rescaled to
// the recomputed target standardization, and typically certifies
// optimality in a few sweeps instead of a cold solve — the incremental
// retraining contract behind core.Pipeline.Update, closing the one gap
// that still forced a from-scratch refit inside the autonomic loop.
package svm

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/ml"
	"repro/internal/ml/kernel"
)

// Options tunes the learner.
type Options struct {
	// C is the box constraint (regularization trade-off).
	C float64
	// Epsilon is the insensitive-tube half-width in standardized target
	// units.
	Epsilon float64
	// Kernel computes similarities on standardized inputs; nil selects
	// RBF with the 1/d heuristic gamma.
	Kernel kernel.Kernel
	// MaxPasses bounds full coordinate sweeps.
	MaxPasses int
	// Tol stops when the largest coordinate change in a sweep drops
	// below Tol·C.
	Tol float64
	// Standardizer optionally fixes the feature standardization
	// instead of fitting it from the training data. Incremental
	// updates always freeze the initial fit's standardizer (changing
	// it would invalidate every cached kernel value); pinning it here
	// additionally lets a from-scratch Fit reproduce an incrementally
	// updated model exactly, which is how the parity tests cross-check
	// Update.
	Standardizer *kernel.Standardizer
	// DriftThreshold enables standardizer drift detection in Update:
	// when the appended rows' per-feature statistics deviate from the
	// frozen standardizer by more than this much (see ml.DriftScore),
	// the incremental path is abandoned and the model refits from
	// scratch with freshly fitted statistics (unless Standardizer is
	// pinned, which wins). 0 disables detection; the outcome of each
	// Update is reported via LastUpdate.
	DriftThreshold float64
}

// DefaultOptions returns SMOreg-like settings.
func DefaultOptions() Options {
	return Options{C: 1, Epsilon: 0.08, MaxPasses: 60, Tol: 1e-4}
}

// Validate reports option errors.
func (o *Options) Validate() error {
	if o.C <= 0 {
		return fmt.Errorf("svm: C must be positive, got %v", o.C)
	}
	if o.Epsilon < 0 {
		return fmt.Errorf("svm: Epsilon must be non-negative, got %v", o.Epsilon)
	}
	if o.MaxPasses <= 0 {
		return fmt.Errorf("svm: MaxPasses must be positive, got %d", o.MaxPasses)
	}
	if o.Tol <= 0 {
		return fmt.Errorf("svm: Tol must be positive, got %v", o.Tol)
	}
	if o.DriftThreshold < 0 {
		return fmt.Errorf("svm: DriftThreshold must be non-negative, got %v", o.DriftThreshold)
	}
	return nil
}

// Model is a fitted ε-SVR.
type Model struct {
	opts Options
	kern kernel.Kernel
	std  *kernel.Standardizer

	// support set: training rows with non-zero beta. supportRows is
	// the flat layout used by the batched prediction path.
	supportX    [][]float64
	beta        []float64
	supportRows *kernel.Rows
	betaSum     float64

	yMean, yStd float64
	dim         int
	fitted      bool

	// Incremental-retraining state: the full standardized training set
	// in the flat layout, the bias-folded Gram over it (grown by its
	// border on Update; nil on a deserialized model and rebuilt lazily),
	// the full dual vector (zeros included — the warm-start seed), and
	// the raw targets, re-standardized over the surviving window on
	// every update.
	trainRows *kernel.Rows
	gram      *mat.Dense
	betaFull  []float64
	yRaw      []float64

	// lastUpdate reports what the latest Update call did (drift score
	// of the appended batch, incremental vs drift-triggered refit).
	lastUpdate ml.UpdateInfo

	// Passes reports the sweeps used by the last Fit or Update;
	// SupportVectors the retained expansion size.
	Passes         int
	SupportVectors int
}

// New returns an unfitted SVR.
func New(opts Options) (*Model, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Model{opts: opts}, nil
}

// Name implements ml.Regressor; the paper's tables call this model "SVM".
func (m *Model) Name() string { return "svm" }

// Fit trains by cyclic coordinate descent on the dual. The standardized
// rows, the bias-folded Gram and the full dual vector are retained, so
// a later Update restarts the solver warm at a cost scaling with the
// new rows.
func (m *Model) Fit(X [][]float64, y []float64) error {
	dim, err := ml.CheckTrainingSet(X, y)
	if err != nil {
		return err
	}
	n := len(X)

	std := m.opts.Standardizer
	if std == nil {
		std = kernel.FitStandardizer(X)
	} else if len(std.Mean) != dim || len(std.Std) != dim {
		return fmt.Errorf("svm: pinned standardizer has dimension %d, want %d", len(std.Mean), dim)
	}
	Xs := std.ApplyAll(X)

	yMean := ml.Mean(y)
	yStd := math.Sqrt(ml.Variance(y))
	if yStd == 0 {
		yStd = 1
	}
	ys := make([]float64, n)
	for i, v := range y {
		ys[i] = (v - yMean) / yStd
	}

	kern := m.opts.Kernel
	if kern == nil {
		kern = kernel.RBF{Gamma: 1 / float64(dim)}
	}

	// Gram matrix built on the flat engine, with the bias folded in
	// place: K' = K + 1. No row copies — the coordinate-descent loop
	// works directly on the flat Gram rows. Drawn from the pool so the
	// retrain cycle (Fit/Update put the previous Gram back) recycles
	// its largest buffer instead of reallocating n² floats per round.
	rows := kernel.NewRows(Xs)
	gram := kernel.MatrixRowsPooled(kern, rows, pool)
	foldBias(gram)

	beta, pass := solveDualFrom(gram, ys, nil, m.opts)

	// Commit only now: a failure above leaves a previously fitted
	// model fully usable.
	m.std = std
	m.kern = kern
	if m.gram != nil {
		pool.PutDense(m.gram)
	}
	m.trainRows = rows
	m.gram = gram
	m.betaFull = beta
	m.yRaw = ml.CloneVector(y)
	m.yMean, m.yStd = yMean, yStd
	m.dim = dim
	m.fitted = true
	m.Passes = pass
	m.lastUpdate = ml.UpdateInfo{} // a fresh fit resets the update report
	m.rebuildSupports()
	return nil
}

// foldBias folds the +1 bias into a freshly evaluated Gram: K' = K + 1.
func foldBias(g *mat.Dense) {
	for i := 0; i < g.Rows(); i++ {
		row := g.Row(i)
		for j := range row {
			row[j]++
		}
	}
}

// rebuildSupports re-derives the retained support set (training rows
// with non-zero dual coefficient) from the full incremental state. The
// rows are copied out of the flat store: a later Append may compact or
// reallocate its backing buffer, which would corrupt zero-copy views.
func (m *Model) rebuildSupports() {
	m.supportX = m.supportX[:0]
	m.beta = m.beta[:0]
	for i, b := range m.betaFull {
		if b != 0 {
			m.supportX = append(m.supportX, append([]float64(nil), m.trainRows.Row(i)...))
			m.beta = append(m.beta, b)
		}
	}
	m.SupportVectors = len(m.beta)
	m.initPredict()
}

// initPredict builds the flat support-vector layout used by the
// batched prediction path.
func (m *Model) initPredict() {
	m.supportRows = kernel.NewRows(m.supportX)
	m.betaSum = 0
	for _, b := range m.beta {
		m.betaSum += b
	}
}

// solveDualFrom minimizes W(β) = ½βᵀK'β − ysᵀβ + ε‖β‖₁ s.t. |β_i| ≤ C
// by cyclic coordinate descent with active-set shrinking: coordinates
// that stay put for two consecutive sweeps leave the active set, so
// late sweeps only touch the (few) moving coordinates. Before
// accepting convergence on a shrunk set, one full sweep over all
// eligible coordinates verifies global optimality and reactivates
// everything if any coordinate still moves. gram is the bias-folded
// kernel matrix K' = K + 1; beta0, when non-nil, warm-starts the solve
// (entries must already respect the box) — the dual is strictly convex
// for positive-definite K', so warm and cold starts converge to the
// same optimum and the seed only buys sweeps. Returns the dual
// coefficients and the sweeps used.
func solveDualFrom(gram *mat.Dense, ys, beta0 []float64, opts Options) (beta []float64, pass int) {
	n := len(ys)
	beta = make([]float64, n)
	f := make([]float64, n) // f_i = Σ_j K'_ij β_j
	if beta0 != nil {
		copy(beta, beta0)
		// Seeding costs one row pass per non-zero coefficient — the
		// support set, not the training set.
		for j, b := range beta {
			if b != 0 {
				mat.AddScaled(f, b, gram.Row(j))
			}
		}
	}
	C := opts.C
	eps := opts.Epsilon
	tol := opts.Tol * C

	eligible := make([]int, 0, n) // coordinates with a usable diagonal
	for i := 0; i < n; i++ {
		if gram.Row(i)[i] > 0 {
			eligible = append(eligible, i)
		}
	}
	active := append(make([]int, 0, len(eligible)), eligible...)
	strikes := make([]uint8, n)
	const maxStrikes = 2

	for pass = 0; pass < opts.MaxPasses; pass++ {
		fullSweep := len(active) == len(eligible)
		maxDelta := 0.0
		kept := active[:0]
		for _, i := range active {
			row := gram.Row(i)
			kii := row[i]
			g := f[i] - kii*beta[i] // prediction excluding i
			target := ys[i] - g
			nb := softThreshold(target, eps) / kii
			if nb > C {
				nb = C
			} else if nb < -C {
				nb = -C
			}
			if d := nb - beta[i]; d != 0 {
				mat.AddScaled(f, d, row)
				beta[i] = nb
				if ad := math.Abs(d); ad > maxDelta {
					maxDelta = ad
				}
				strikes[i] = 0
			} else {
				strikes[i]++
			}
			if strikes[i] < maxStrikes {
				kept = append(kept, i)
			}
		}
		active = kept
		if maxDelta < tol {
			if fullSweep {
				pass++
				break
			}
			// Shrunk convergence: verify with a full sweep.
			active = append(active[:0], eligible...)
			for _, i := range eligible {
				strikes[i] = 0
			}
		}
	}
	return beta, pass
}

func softThreshold(z, eps float64) float64 {
	switch {
	case z > eps:
		return z - eps
	case z < -eps:
		return z + eps
	default:
		return 0
	}
}

// pool recycles prediction scratch and Gram extensions across calls and
// models, so single-sample prediction — the live-monitoring hot path —
// is allocation-free after warm-up and incremental updates recycle
// their Gram-sized buffers.
var pool = &mat.Pool{}

// Predict implements ml.Regressor:
// f(x) = Σ_i β_i (k(x_i, x) + 1), de-standardized.
func (m *Model) Predict(x []float64) float64 {
	if !m.fitted || len(x) != m.dim {
		return math.NaN()
	}
	scratch := pool.GetVec(m.dim + len(m.beta))
	out := m.predictInto(x, scratch[:m.dim], scratch[m.dim:])
	pool.PutVec(scratch)
	return out
}

// predictTile is the query-block size of the batched prediction path:
// enough rows to amortize the support-vector panel traffic through the
// two-row register tile, small enough that the staged queries and the
// kernel-value block stay pool-friendly.
const predictTile = 32

// PredictBatch implements ml.BatchPredictor: queries are staged in
// blocks of predictTile and evaluated against all support vectors in
// one tiled kernel.EvalBatchFlat pass per block, so the support-vector
// panel is read once per query pair instead of once per query. Rows of
// the wrong dimension yield NaN without disturbing the block.
func (m *Model) PredictBatch(X [][]float64, out []float64) {
	if !m.fitted {
		for i := range X {
			out[i] = math.NaN()
		}
		return
	}
	nsv := m.supportRows.Len()
	if nsv == 0 {
		// Degenerate expansion: every valid row predicts the folded
		// bias alone.
		for i, x := range X {
			if len(x) != m.dim {
				out[i] = math.NaN()
				continue
			}
			out[i] = m.betaSum*m.yStd + m.yMean
		}
		return
	}
	stride := m.supportRows.Stride()
	scratch := pool.GetVec(predictTile*stride + predictTile + predictTile*nsv)
	qbuf := scratch[:predictTile*stride]
	qnorms := scratch[predictTile*stride : predictTile*stride+predictTile]
	kbuf := scratch[predictTile*stride+predictTile:]
	for base := 0; base < len(X); base += predictTile {
		cnt := min(predictTile, len(X)-base)
		// Stage the valid rows standardized and stride-padded; remember
		// which block slots were staged (wrong-dimension rows get NaN).
		var bad [predictTile]bool
		qn := 0
		for bi := 0; bi < cnt; bi++ {
			x := X[base+bi]
			if len(x) != m.dim {
				bad[bi] = true
				out[base+bi] = math.NaN()
				continue
			}
			dst := qbuf[qn*stride : (qn+1)*stride]
			m.std.ApplyInto(x, dst[:m.dim])
			clear(dst[m.dim:]) // pool scratch: the padding must be zero
			qnorms[qn] = mat.Dot(dst, dst)
			qn++
		}
		kernel.EvalBatchFlat(m.kern, m.supportRows, qbuf, qnorms, qn, kbuf)
		qi := 0
		for bi := 0; bi < cnt; bi++ {
			if bad[bi] {
				continue
			}
			s := m.betaSum + mat.Dot(m.beta, kbuf[qi*nsv:(qi+1)*nsv])
			out[base+bi] = s*m.yStd + m.yMean
			qi++
		}
	}
	pool.PutVec(scratch)
}

// predictInto evaluates one row using caller-provided scratch: xbuf
// holds the standardized input (dim), kbuf the kernel values (one per
// support vector).
func (m *Model) predictInto(x, xbuf, kbuf []float64) float64 {
	m.std.ApplyInto(x, xbuf)
	kernel.EvalInto(m.kern, m.supportRows, xbuf, kbuf)
	// betaSum is Σ β_i · 1 from the folded bias; the expansion itself
	// runs through the vectorized dot.
	s := m.betaSum + mat.Dot(m.beta, kbuf)
	return s*m.yStd + m.yMean
}

var (
	_ ml.Regressor      = (*Model)(nil)
	_ ml.BatchPredictor = (*Model)(nil)
)

// svmJSON is the serialized model state. TrainX/TrainY/BetaFull carry
// the full incremental state so a restored model can keep taking
// warm-started updates (absent in payloads from older versions, which
// then require a refit before Update).
type svmJSON struct {
	Options  Options         `json:"options"`
	Kernel   json.RawMessage `json:"kernel"`
	Mean     []float64       `json:"mean"`
	Std      []float64       `json:"std"`
	SupportX [][]float64     `json:"support_x"`
	Beta     []float64       `json:"beta"`
	TrainX   [][]float64     `json:"train_x,omitempty"`
	TrainY   []float64       `json:"train_y,omitempty"`
	BetaFull []float64       `json:"beta_full,omitempty"`
	YMean    float64         `json:"y_mean"`
	YStd     float64         `json:"y_std"`
	Dim      int             `json:"dim"`
}

// MarshalJSON serializes a fitted SVR (only built-in kernels round-trip).
func (m *Model) MarshalJSON() ([]byte, error) {
	if !m.fitted {
		return nil, ml.ErrNotFitted
	}
	kj, err := kernel.MarshalKernel(m.kern)
	if err != nil {
		return nil, err
	}
	opts := m.opts
	opts.Kernel = nil       // serialized separately
	opts.Standardizer = nil // carried by Mean/Std
	var trainX [][]float64
	if m.trainRows != nil {
		trainX = make([][]float64, m.trainRows.Len())
		for i := range trainX {
			trainX[i] = m.trainRows.Row(i)
		}
	}
	return json.Marshal(svmJSON{
		Options: opts, Kernel: kj,
		Mean: m.std.Mean, Std: m.std.Std,
		SupportX: m.supportX, Beta: m.beta,
		TrainX: trainX, TrainY: m.yRaw, BetaFull: m.betaFull,
		YMean: m.yMean, YStd: m.yStd, Dim: m.dim,
	})
}

// UnmarshalJSON restores an SVR serialized by MarshalJSON.
func (m *Model) UnmarshalJSON(data []byte) error {
	var s svmJSON
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("svm: decoding model: %w", err)
	}
	if s.Dim <= 0 || len(s.SupportX) != len(s.Beta) {
		return fmt.Errorf("svm: malformed serialized model (dim=%d, %d SVs, %d betas)",
			s.Dim, len(s.SupportX), len(s.Beta))
	}
	if len(s.Mean) != s.Dim || len(s.Std) != s.Dim {
		return fmt.Errorf("svm: standardizer dimension mismatch")
	}
	for i, sv := range s.SupportX {
		if len(sv) != s.Dim {
			return fmt.Errorf("svm: support vector %d has %d features, want %d", i, len(sv), s.Dim)
		}
	}
	if len(s.TrainX) != 0 {
		if len(s.TrainY) != len(s.TrainX) || len(s.BetaFull) != len(s.TrainX) {
			return fmt.Errorf("svm: malformed incremental state (%d rows, %d targets, %d betas)",
				len(s.TrainX), len(s.TrainY), len(s.BetaFull))
		}
		for i, tx := range s.TrainX {
			if len(tx) != s.Dim {
				return fmt.Errorf("svm: training row %d has %d features, want %d", i, len(tx), s.Dim)
			}
		}
	}
	kern, err := kernel.UnmarshalKernel(s.Kernel)
	if err != nil {
		return err
	}
	m.opts = s.Options
	m.kern = kern
	m.std = &kernel.Standardizer{Mean: s.Mean, Std: s.Std}
	m.supportX = s.SupportX
	m.beta = s.Beta
	if len(s.TrainX) != 0 {
		m.trainRows = kernel.NewRows(s.TrainX)
		m.yRaw = s.TrainY
		m.betaFull = s.BetaFull
	} else {
		m.trainRows, m.yRaw, m.betaFull = nil, nil, nil
	}
	m.gram = nil // rebuilt lazily by the first Update
	m.yMean = s.YMean
	m.yStd = s.YStd
	m.dim = s.Dim
	m.fitted = true
	m.lastUpdate = ml.UpdateInfo{}
	m.SupportVectors = len(s.Beta)
	m.initPredict()
	return nil
}
