// Package svm implements ε-insensitive support-vector regression
// (Cortes & Vapnik 1995; paper §III-D "SVM") trained by dual coordinate
// descent on the β = α - α* formulation with the bias folded into the
// kernel (K' = K + 1), the standard simplification of SMO-style solvers:
//
//	minimize  W(β) = ½ βᵀK'β − yᵀβ + ε‖β‖₁   s.t.  |β_i| ≤ C
//
// Each coordinate has the closed-form update
// β_i ← clip( S(y_i − g_i, ε) / K'_ii, ±C ) with g_i the prediction
// excluding β_i and S the soft-threshold operator. Inputs and targets are
// standardized internally (as WEKA's SMOreg does), since the raw F2PM
// features span six orders of magnitude.
package svm

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/ml"
	"repro/internal/ml/kernel"
)

// Options tunes the learner.
type Options struct {
	// C is the box constraint (regularization trade-off).
	C float64
	// Epsilon is the insensitive-tube half-width in standardized target
	// units.
	Epsilon float64
	// Kernel computes similarities on standardized inputs; nil selects
	// RBF with the 1/d heuristic gamma.
	Kernel kernel.Kernel
	// MaxPasses bounds full coordinate sweeps.
	MaxPasses int
	// Tol stops when the largest coordinate change in a sweep drops
	// below Tol·C.
	Tol float64
}

// DefaultOptions returns SMOreg-like settings.
func DefaultOptions() Options {
	return Options{C: 1, Epsilon: 0.08, MaxPasses: 60, Tol: 1e-4}
}

// Validate reports option errors.
func (o *Options) Validate() error {
	if o.C <= 0 {
		return fmt.Errorf("svm: C must be positive, got %v", o.C)
	}
	if o.Epsilon < 0 {
		return fmt.Errorf("svm: Epsilon must be non-negative, got %v", o.Epsilon)
	}
	if o.MaxPasses <= 0 {
		return fmt.Errorf("svm: MaxPasses must be positive, got %d", o.MaxPasses)
	}
	if o.Tol <= 0 {
		return fmt.Errorf("svm: Tol must be positive, got %v", o.Tol)
	}
	return nil
}

// Model is a fitted ε-SVR.
type Model struct {
	opts Options
	kern kernel.Kernel
	std  *kernel.Standardizer

	// support set: training rows with non-zero beta.
	supportX [][]float64
	beta     []float64

	yMean, yStd float64
	dim         int
	fitted      bool

	// Passes reports the sweeps used by the last Fit; SupportVectors the
	// retained expansion size.
	Passes         int
	SupportVectors int
}

// New returns an unfitted SVR.
func New(opts Options) (*Model, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Model{opts: opts}, nil
}

// Name implements ml.Regressor; the paper's tables call this model "SVM".
func (m *Model) Name() string { return "svm" }

// Fit trains by cyclic coordinate descent on the dual.
func (m *Model) Fit(X [][]float64, y []float64) error {
	dim, err := ml.CheckTrainingSet(X, y)
	if err != nil {
		return err
	}
	n := len(X)

	m.std = kernel.FitStandardizer(X)
	Xs := m.std.ApplyAll(X)

	m.yMean = ml.Mean(y)
	m.yStd = math.Sqrt(ml.Variance(y))
	if m.yStd == 0 {
		m.yStd = 1
	}
	ys := make([]float64, n)
	for i, v := range y {
		ys[i] = (v - m.yMean) / m.yStd
	}

	kern := m.opts.Kernel
	if kern == nil {
		kern = kernel.RBF{Gamma: 1 / float64(dim)}
	}
	m.kern = kern

	// Gram matrix with bias fold-in: K' = K + 1.
	gram := kernel.Matrix(kern, Xs)
	gn := gram.Rows()
	kp := make([][]float64, gn)
	for i := 0; i < gn; i++ {
		row := make([]float64, gn)
		copy(row, gram.Row(i))
		for j := range row {
			row[j]++
		}
		kp[i] = row
	}

	beta := make([]float64, n)
	f := make([]float64, n) // f_i = Σ_j K'_ij β_j
	C := m.opts.C
	eps := m.opts.Epsilon

	var pass int
	for pass = 0; pass < m.opts.MaxPasses; pass++ {
		maxDelta := 0.0
		for i := 0; i < n; i++ {
			kii := kp[i][i]
			if kii <= 0 {
				continue
			}
			g := f[i] - kii*beta[i] // prediction excluding i
			target := ys[i] - g
			nb := softThreshold(target, eps) / kii
			if nb > C {
				nb = C
			} else if nb < -C {
				nb = -C
			}
			if d := nb - beta[i]; d != 0 {
				row := kp[i]
				for j := 0; j < n; j++ {
					f[j] += d * row[j]
				}
				beta[i] = nb
				if ad := math.Abs(d); ad > maxDelta {
					maxDelta = ad
				}
			}
		}
		if maxDelta < m.opts.Tol*C {
			pass++
			break
		}
	}

	// Retain only support vectors.
	m.supportX = m.supportX[:0]
	m.beta = m.beta[:0]
	for i := 0; i < n; i++ {
		if beta[i] != 0 {
			m.supportX = append(m.supportX, Xs[i])
			m.beta = append(m.beta, beta[i])
		}
	}
	m.dim = dim
	m.fitted = true
	m.Passes = pass
	m.SupportVectors = len(m.beta)
	return nil
}

func softThreshold(z, eps float64) float64 {
	switch {
	case z > eps:
		return z - eps
	case z < -eps:
		return z + eps
	default:
		return 0
	}
}

// Predict implements ml.Regressor:
// f(x) = Σ_i β_i (k(x_i, x) + 1), de-standardized.
func (m *Model) Predict(x []float64) float64 {
	if !m.fitted || len(x) != m.dim {
		return math.NaN()
	}
	xs := m.std.Apply(x)
	var s float64
	for i, sv := range m.supportX {
		s += m.beta[i] * (m.kern.Eval(sv, xs) + 1)
	}
	return s*m.yStd + m.yMean
}

var _ ml.Regressor = (*Model)(nil)

// svmJSON is the serialized model state.
type svmJSON struct {
	Options  Options         `json:"options"`
	Kernel   json.RawMessage `json:"kernel"`
	Mean     []float64       `json:"mean"`
	Std      []float64       `json:"std"`
	SupportX [][]float64     `json:"support_x"`
	Beta     []float64       `json:"beta"`
	YMean    float64         `json:"y_mean"`
	YStd     float64         `json:"y_std"`
	Dim      int             `json:"dim"`
}

// MarshalJSON serializes a fitted SVR (only built-in kernels round-trip).
func (m *Model) MarshalJSON() ([]byte, error) {
	if !m.fitted {
		return nil, ml.ErrNotFitted
	}
	kj, err := kernel.MarshalKernel(m.kern)
	if err != nil {
		return nil, err
	}
	opts := m.opts
	opts.Kernel = nil // serialized separately
	return json.Marshal(svmJSON{
		Options: opts, Kernel: kj,
		Mean: m.std.Mean, Std: m.std.Std,
		SupportX: m.supportX, Beta: m.beta,
		YMean: m.yMean, YStd: m.yStd, Dim: m.dim,
	})
}

// UnmarshalJSON restores an SVR serialized by MarshalJSON.
func (m *Model) UnmarshalJSON(data []byte) error {
	var s svmJSON
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("svm: decoding model: %w", err)
	}
	if s.Dim <= 0 || len(s.SupportX) != len(s.Beta) {
		return fmt.Errorf("svm: malformed serialized model (dim=%d, %d SVs, %d betas)",
			s.Dim, len(s.SupportX), len(s.Beta))
	}
	if len(s.Mean) != s.Dim || len(s.Std) != s.Dim {
		return fmt.Errorf("svm: standardizer dimension mismatch")
	}
	for i, sv := range s.SupportX {
		if len(sv) != s.Dim {
			return fmt.Errorf("svm: support vector %d has %d features, want %d", i, len(sv), s.Dim)
		}
	}
	kern, err := kernel.UnmarshalKernel(s.Kernel)
	if err != nil {
		return err
	}
	m.opts = s.Options
	m.kern = kern
	m.std = &kernel.Standardizer{Mean: s.Mean, Std: s.Std}
	m.supportX = s.SupportX
	m.beta = s.Beta
	m.yMean = s.YMean
	m.yStd = s.YStd
	m.dim = s.Dim
	m.fitted = true
	m.SupportVectors = len(s.Beta)
	return nil
}
