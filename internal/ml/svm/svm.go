// Package svm implements ε-insensitive support-vector regression
// (Cortes & Vapnik 1995; paper §III-D "SVM") trained by dual coordinate
// descent on the β = α - α* formulation with the bias folded into the
// kernel (K' = K + 1), the standard simplification of SMO-style solvers:
//
//	minimize  W(β) = ½ βᵀK'β − yᵀβ + ε‖β‖₁   s.t.  |β_i| ≤ C
//
// Each coordinate has the closed-form update
// β_i ← clip( S(y_i − g_i, ε) / K'_ii, ±C ) with g_i the prediction
// excluding β_i and S the soft-threshold operator. Inputs and targets are
// standardized internally (as WEKA's SMOreg does), since the raw F2PM
// features span six orders of magnitude.
//
// The solver works directly on flat Gram rows from the kernel engine
// (no row copies; the +1 bias folds in place) and shrinks its active
// set: coordinates that stop moving are skipped until a final full
// sweep certifies optimality. Prediction batches all support vectors
// through kernel.EvalInto.
package svm

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/ml"
	"repro/internal/ml/kernel"
)

// Options tunes the learner.
type Options struct {
	// C is the box constraint (regularization trade-off).
	C float64
	// Epsilon is the insensitive-tube half-width in standardized target
	// units.
	Epsilon float64
	// Kernel computes similarities on standardized inputs; nil selects
	// RBF with the 1/d heuristic gamma.
	Kernel kernel.Kernel
	// MaxPasses bounds full coordinate sweeps.
	MaxPasses int
	// Tol stops when the largest coordinate change in a sweep drops
	// below Tol·C.
	Tol float64
}

// DefaultOptions returns SMOreg-like settings.
func DefaultOptions() Options {
	return Options{C: 1, Epsilon: 0.08, MaxPasses: 60, Tol: 1e-4}
}

// Validate reports option errors.
func (o *Options) Validate() error {
	if o.C <= 0 {
		return fmt.Errorf("svm: C must be positive, got %v", o.C)
	}
	if o.Epsilon < 0 {
		return fmt.Errorf("svm: Epsilon must be non-negative, got %v", o.Epsilon)
	}
	if o.MaxPasses <= 0 {
		return fmt.Errorf("svm: MaxPasses must be positive, got %d", o.MaxPasses)
	}
	if o.Tol <= 0 {
		return fmt.Errorf("svm: Tol must be positive, got %v", o.Tol)
	}
	return nil
}

// Model is a fitted ε-SVR.
type Model struct {
	opts Options
	kern kernel.Kernel
	std  *kernel.Standardizer

	// support set: training rows with non-zero beta. supportRows is
	// the flat layout used by the batched prediction path.
	supportX    [][]float64
	beta        []float64
	supportRows *kernel.Rows
	betaSum     float64

	yMean, yStd float64
	dim         int
	fitted      bool

	// Passes reports the sweeps used by the last Fit; SupportVectors the
	// retained expansion size.
	Passes         int
	SupportVectors int
}

// New returns an unfitted SVR.
func New(opts Options) (*Model, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Model{opts: opts}, nil
}

// Name implements ml.Regressor; the paper's tables call this model "SVM".
func (m *Model) Name() string { return "svm" }

// Fit trains by cyclic coordinate descent on the dual.
func (m *Model) Fit(X [][]float64, y []float64) error {
	dim, err := ml.CheckTrainingSet(X, y)
	if err != nil {
		return err
	}
	n := len(X)

	m.std = kernel.FitStandardizer(X)
	Xs := m.std.ApplyAll(X)

	m.yMean = ml.Mean(y)
	m.yStd = math.Sqrt(ml.Variance(y))
	if m.yStd == 0 {
		m.yStd = 1
	}
	ys := make([]float64, n)
	for i, v := range y {
		ys[i] = (v - m.yMean) / m.yStd
	}

	kern := m.opts.Kernel
	if kern == nil {
		kern = kernel.RBF{Gamma: 1 / float64(dim)}
	}
	m.kern = kern

	// Gram matrix built on the flat engine, with the bias folded in
	// place: K' = K + 1. No row copies — the coordinate-descent loop
	// works directly on the flat Gram rows.
	gram := kernel.MatrixRows(kern, kernel.NewRows(Xs))
	for i := 0; i < n; i++ {
		row := gram.Row(i)
		for j := range row {
			row[j]++
		}
	}

	beta, pass := solveDual(gram, ys, m.opts)

	// Retain only support vectors.
	m.supportX = m.supportX[:0]
	m.beta = m.beta[:0]
	for i := 0; i < n; i++ {
		if beta[i] != 0 {
			m.supportX = append(m.supportX, Xs[i])
			m.beta = append(m.beta, beta[i])
		}
	}
	m.dim = dim
	m.fitted = true
	m.Passes = pass
	m.SupportVectors = len(m.beta)
	m.initPredict()
	return nil
}

// initPredict builds the flat support-vector layout used by the
// batched prediction path.
func (m *Model) initPredict() {
	m.supportRows = kernel.NewRows(m.supportX)
	m.betaSum = 0
	for _, b := range m.beta {
		m.betaSum += b
	}
}

// solveDual minimizes W(β) = ½βᵀK'β − ysᵀβ + ε‖β‖₁ s.t. |β_i| ≤ C by
// cyclic coordinate descent with active-set shrinking: coordinates
// that stay put for two consecutive sweeps leave the active set, so
// late sweeps only touch the (few) moving coordinates. Before
// accepting convergence on a shrunk set, one full sweep over all
// eligible coordinates verifies global optimality and reactivates
// everything if any coordinate still moves. gram is the bias-folded
// kernel matrix K' = K + 1; it returns the dual coefficients and the
// sweeps used.
func solveDual(gram *mat.Dense, ys []float64, opts Options) (beta []float64, pass int) {
	n := len(ys)
	beta = make([]float64, n)
	f := make([]float64, n) // f_i = Σ_j K'_ij β_j
	C := opts.C
	eps := opts.Epsilon
	tol := opts.Tol * C

	eligible := make([]int, 0, n) // coordinates with a usable diagonal
	for i := 0; i < n; i++ {
		if gram.Row(i)[i] > 0 {
			eligible = append(eligible, i)
		}
	}
	active := append(make([]int, 0, len(eligible)), eligible...)
	strikes := make([]uint8, n)
	const maxStrikes = 2

	for pass = 0; pass < opts.MaxPasses; pass++ {
		fullSweep := len(active) == len(eligible)
		maxDelta := 0.0
		kept := active[:0]
		for _, i := range active {
			row := gram.Row(i)
			kii := row[i]
			g := f[i] - kii*beta[i] // prediction excluding i
			target := ys[i] - g
			nb := softThreshold(target, eps) / kii
			if nb > C {
				nb = C
			} else if nb < -C {
				nb = -C
			}
			if d := nb - beta[i]; d != 0 {
				mat.AddScaled(f, d, row)
				beta[i] = nb
				if ad := math.Abs(d); ad > maxDelta {
					maxDelta = ad
				}
				strikes[i] = 0
			} else {
				strikes[i]++
			}
			if strikes[i] < maxStrikes {
				kept = append(kept, i)
			}
		}
		active = kept
		if maxDelta < tol {
			if fullSweep {
				pass++
				break
			}
			// Shrunk convergence: verify with a full sweep.
			active = append(active[:0], eligible...)
			for _, i := range eligible {
				strikes[i] = 0
			}
		}
	}
	return beta, pass
}

func softThreshold(z, eps float64) float64 {
	switch {
	case z > eps:
		return z - eps
	case z < -eps:
		return z + eps
	default:
		return 0
	}
}

// pool recycles prediction scratch across calls and models, so
// single-sample prediction — the live-monitoring hot path — is
// allocation-free after warm-up.
var pool = &mat.Pool{}

// Predict implements ml.Regressor:
// f(x) = Σ_i β_i (k(x_i, x) + 1), de-standardized.
func (m *Model) Predict(x []float64) float64 {
	if !m.fitted || len(x) != m.dim {
		return math.NaN()
	}
	scratch := pool.GetVec(m.dim + len(m.beta))
	out := m.predictInto(x, scratch[:m.dim], scratch[m.dim:])
	pool.PutVec(scratch)
	return out
}

// PredictBatch implements ml.BatchPredictor, reusing one pooled
// scratch buffer across rows and evaluating every support vector
// through the batched kernel path.
func (m *Model) PredictBatch(X [][]float64, out []float64) {
	if !m.fitted {
		for i := range X {
			out[i] = math.NaN()
		}
		return
	}
	scratch := pool.GetVec(m.dim + len(m.beta))
	xbuf, kbuf := scratch[:m.dim], scratch[m.dim:]
	for i, x := range X {
		if len(x) != m.dim {
			out[i] = math.NaN()
			continue
		}
		out[i] = m.predictInto(x, xbuf, kbuf)
	}
	pool.PutVec(scratch)
}

// predictInto evaluates one row using caller-provided scratch: xbuf
// holds the standardized input (dim), kbuf the kernel values (one per
// support vector).
func (m *Model) predictInto(x, xbuf, kbuf []float64) float64 {
	m.std.ApplyInto(x, xbuf)
	kernel.EvalInto(m.kern, m.supportRows, xbuf, kbuf)
	s := m.betaSum // Σ β_i · 1 from the folded bias
	for i, b := range m.beta {
		s += b * kbuf[i]
	}
	return s*m.yStd + m.yMean
}

var (
	_ ml.Regressor      = (*Model)(nil)
	_ ml.BatchPredictor = (*Model)(nil)
)

// svmJSON is the serialized model state.
type svmJSON struct {
	Options  Options         `json:"options"`
	Kernel   json.RawMessage `json:"kernel"`
	Mean     []float64       `json:"mean"`
	Std      []float64       `json:"std"`
	SupportX [][]float64     `json:"support_x"`
	Beta     []float64       `json:"beta"`
	YMean    float64         `json:"y_mean"`
	YStd     float64         `json:"y_std"`
	Dim      int             `json:"dim"`
}

// MarshalJSON serializes a fitted SVR (only built-in kernels round-trip).
func (m *Model) MarshalJSON() ([]byte, error) {
	if !m.fitted {
		return nil, ml.ErrNotFitted
	}
	kj, err := kernel.MarshalKernel(m.kern)
	if err != nil {
		return nil, err
	}
	opts := m.opts
	opts.Kernel = nil // serialized separately
	return json.Marshal(svmJSON{
		Options: opts, Kernel: kj,
		Mean: m.std.Mean, Std: m.std.Std,
		SupportX: m.supportX, Beta: m.beta,
		YMean: m.yMean, YStd: m.yStd, Dim: m.dim,
	})
}

// UnmarshalJSON restores an SVR serialized by MarshalJSON.
func (m *Model) UnmarshalJSON(data []byte) error {
	var s svmJSON
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("svm: decoding model: %w", err)
	}
	if s.Dim <= 0 || len(s.SupportX) != len(s.Beta) {
		return fmt.Errorf("svm: malformed serialized model (dim=%d, %d SVs, %d betas)",
			s.Dim, len(s.SupportX), len(s.Beta))
	}
	if len(s.Mean) != s.Dim || len(s.Std) != s.Dim {
		return fmt.Errorf("svm: standardizer dimension mismatch")
	}
	for i, sv := range s.SupportX {
		if len(sv) != s.Dim {
			return fmt.Errorf("svm: support vector %d has %d features, want %d", i, len(sv), s.Dim)
		}
	}
	kern, err := kernel.UnmarshalKernel(s.Kernel)
	if err != nil {
		return err
	}
	m.opts = s.Options
	m.kern = kern
	m.std = &kernel.Standardizer{Mean: s.Mean, Std: s.Std}
	m.supportX = s.SupportX
	m.beta = s.Beta
	m.yMean = s.YMean
	m.yStd = s.YStd
	m.dim = s.Dim
	m.fitted = true
	m.SupportVectors = len(s.Beta)
	m.initPredict()
	return nil
}
