package svm

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/ml"
	"repro/internal/ml/kernel"
)

// Warm-started incremental retraining: Fit retains the standardized
// rows, the bias-folded Gram and the full dual vector, so extending the
// fit re-evaluates only the kernel border (new rows against the
// surviving window) and restarts the coordinate descent from the
// previous β rescaled to the recomputed target standardization. The
// dual is strictly convex for positive-definite K' = K + 1, so the warm
// solve converges to exactly the optimum a cold solve on the combined
// window reaches — the seed only buys sweeps — which is what pins the
// parity tests at 1e-8. Evictions reuse the trailing Gram block
// (kernel.GramEvictRows) without re-evaluating a single kernel value.

// Update implements ml.IncrementalRegressor: new training runs extend
// the fitted model in place. The feature standardizer and kernel are
// frozen at the initial Fit (a from-scratch Fit with
// Options.Standardizer pinned to the same statistics reproduces the
// updated model); the target standardization is recomputed exactly
// over the combined history. On error the model is unchanged and still
// usable.
func (m *Model) Update(Xnew [][]float64, ynew []float64) error {
	return m.SlideWindow(Xnew, ynew, 0)
}

// UpdateWindow implements ml.WindowedRegressor: the model retains its
// training window, so only the evicted-row count matters.
func (m *Model) UpdateWindow(Xnew [][]float64, ynew []float64, evictX [][]float64, evictY []float64) error {
	if len(evictX) != len(evictY) {
		return fmt.Errorf("%w: %d evicted rows vs %d targets", ml.ErrDimension, len(evictX), len(evictY))
	}
	return m.SlideWindow(Xnew, ynew, len(evictX))
}

// SlideWindow extends the fitted model with the new rows and evicts
// the evict oldest ones — the bounded-memory retraining step behind
// core.Pipeline's WindowPolicy. The result matches a from-scratch Fit
// on the surviving window with the same frozen standardizer, at a cost
// scaling with the rows moved rather than the history. At least one
// row must survive.
//
// Standardizer drift past Options.DriftThreshold (without a pinned
// standardizer) abandons the incremental path and refits from scratch
// on the surviving window with fresh statistics.
func (m *Model) SlideWindow(Xnew [][]float64, ynew []float64, evict int) error {
	if !m.fitted {
		return ml.ErrNotFitted
	}
	if m.trainRows == nil || m.trainRows.Len() != len(m.yRaw) || len(m.yRaw) == 0 {
		return fmt.Errorf("svm: restored model carries no training set; refit before Update")
	}
	oldN := m.trainRows.Len()
	if evict < 0 || evict > oldN {
		return fmt.Errorf("svm: evicting %d of %d training rows", evict, oldN)
	}
	mNew := len(Xnew)
	if mNew == 0 && len(ynew) != 0 {
		return fmt.Errorf("%w: 0 rows vs %d targets", ml.ErrDimension, len(ynew))
	}
	if mNew > 0 {
		dim, err := ml.CheckTrainingSet(Xnew, ynew)
		if err != nil {
			return err
		}
		if dim != m.dim {
			return fmt.Errorf("svm: appended rows have %d features, want %d", dim, m.dim)
		}
	}
	if oldN-evict+mNew < 1 {
		return fmt.Errorf("svm: window slide leaves no training rows")
	}
	if mNew == 0 && evict == 0 {
		return nil
	}
	if m.gram == nil {
		m.rebuildGram()
	}

	var drift float64
	var Xs [][]float64
	if mNew > 0 {
		Xs = m.std.ApplyAll(Xnew)
		drift = ml.DriftScore(Xs)
		if m.opts.DriftThreshold > 0 && drift > m.opts.DriftThreshold && m.opts.Standardizer == nil {
			if err := m.refitWindow(evict, Xnew, ynew); err != nil {
				return err
			}
			m.lastUpdate = ml.UpdateInfo{DriftScore: drift, DriftRefit: true, Evicted: evict}
			return nil
		}
		// Stage the new rows in the store; nothing below can fail, so
		// no rollback path is needed past this point.
		if err := m.trainRows.Append(Xs); err != nil {
			return err
		}
	}

	// Shrink-then-extend on the stored bias-folded Gram: the evicted
	// rows leave as a trailing-block copy (their folded +1 survives),
	// the border against the surviving window is evaluated raw and
	// folded below. Neither helper mutates its input, so the previous
	// Gram stays valid until the commit.
	old := m.gram
	next := old
	if evict > 0 {
		next = kernel.GramEvictRows(old, evict, pool)
	}
	if mNew > 0 {
		shrunk := next
		next = kernel.ExtendMatrixRows(m.kern, m.trainRows.Tail(evict), oldN-evict, shrunk, pool)
		if shrunk != old {
			pool.PutDense(shrunk)
		}
		foldBorderBias(next, oldN-evict)
	}

	n := oldN - evict + mNew
	newY := make([]float64, 0, n)
	newY = append(newY, m.yRaw[evict:]...)
	newY = append(newY, ynew...)
	yMean := ml.Mean(newY)
	yStd := math.Sqrt(ml.Variance(newY))
	if yStd == 0 {
		yStd = 1
	}
	ys := make([]float64, n)
	for i, v := range newY {
		ys[i] = (v - yMean) / yStd
	}

	beta0 := seedBeta(m.betaFull[evict:], m.yStd/yStd, m.opts.C, n)
	beta, pass := solveDualFrom(next, ys, beta0, m.opts)

	// Commit.
	if next != old {
		pool.PutDense(old)
		m.gram = next
	}
	m.trainRows.EvictFront(evict)
	m.yRaw = newY
	m.yMean, m.yStd = yMean, yStd
	m.betaFull = beta
	m.Passes = pass
	m.rebuildSupports()
	m.lastUpdate = ml.UpdateInfo{Incremental: true, DriftScore: drift, Evicted: evict}
	return nil
}

// LastUpdate implements ml.UpdateReporter.
func (m *Model) LastUpdate() ml.UpdateInfo { return m.lastUpdate }

// PinPreprocessing implements ml.PreprocessPinner: the receiver's next
// Fit reuses src's frozen feature standardizer, so a from-scratch fit
// on the combined window reproduces an incrementally updated model
// exactly — the cross-check behind the update parity tests.
func (m *Model) PinPreprocessing(src ml.Regressor) error {
	s, ok := src.(*Model)
	if !ok {
		return fmt.Errorf("svm: cannot pin preprocessing from %T", src)
	}
	if !s.fitted {
		return ml.ErrNotFitted
	}
	m.opts.Standardizer = &kernel.Standardizer{
		Mean: append([]float64(nil), s.std.Mean...),
		Std:  append([]float64(nil), s.std.Std...),
	}
	return nil
}

// seedBeta rescales the surviving dual coefficients to the recomputed
// target standardization (ys scales by oldStd/newStd; the mean shift
// moves only the folded bias, which the solver re-balances) and clips
// them back into the box — the warm-start seed. Entries past the
// survivors (the appended rows) start at zero.
func seedBeta(prev []float64, scale, C float64, n int) []float64 {
	beta0 := make([]float64, n)
	for i, b := range prev {
		v := b * scale
		if v > C {
			v = C
		} else if v < -C {
			v = -C
		}
		beta0[i] = v
	}
	return beta0
}

// foldBorderBias folds the +1 bias into the Gram entries
// ExtendMatrixRows evaluated raw: the full rows of the appended block
// and their mirrored columns in the surviving rows. The copied old
// block kept its fold.
func foldBorderBias(g *mat.Dense, oldN int) {
	n := g.Rows()
	for i := oldN; i < n; i++ {
		row := g.Row(i)
		for j := range row {
			row[j]++
		}
	}
	for i := 0; i < oldN; i++ {
		row := g.Row(i)
		for j := oldN; j < n; j++ {
			row[j]++
		}
	}
}

// rebuildGram re-evaluates the bias-folded Gram from the stored
// training rows — the one-time O(n²·d) cost a deserialized model pays
// before its first incremental update. Pool-backed like Fit's, so the
// later Update's PutDense actually retains it.
func (m *Model) rebuildGram() {
	g := kernel.MatrixRowsPooled(m.kern, m.trainRows, pool)
	foldBias(g)
	m.gram = g
}

// refitWindow retrains from scratch on the surviving window plus the
// new rows, with freshly fitted statistics — the drift-triggered refit
// path. The surviving rows are de-standardized back to raw feature
// space first; on error the previous fit stays intact.
func (m *Model) refitWindow(evict int, Xnew [][]float64, ynew []float64) error {
	n := m.trainRows.Len()
	X := make([][]float64, 0, n-evict+len(Xnew))
	for i := evict; i < n; i++ {
		xs := m.trainRows.Row(i)
		raw := make([]float64, m.dim)
		for j, v := range xs {
			raw[j] = v*m.std.Std[j] + m.std.Mean[j]
		}
		X = append(X, raw)
	}
	X = append(X, Xnew...)
	y := make([]float64, 0, n-evict+len(ynew))
	y = append(y, m.yRaw[evict:]...)
	y = append(y, ynew...)
	return m.Fit(X, y)
}

// RowCap returns the row capacity of the flat training-row store (0
// before Fit). Sliding-window tests assert it stays flat across
// evict+append cycles.
func (m *Model) RowCap() int {
	if m.trainRows == nil {
		return 0
	}
	return m.trainRows.Cap()
}

var (
	_ ml.IncrementalRegressor = (*Model)(nil)
	_ ml.WindowedRegressor    = (*Model)(nil)
	_ ml.UpdateReporter       = (*Model)(nil)
	_ ml.PreprocessPinner     = (*Model)(nil)
)
