package svm

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/ml"
	"repro/internal/ml/kernel"
	"repro/internal/randx"
)

func sineData(src *randx.Source, n int, noise float64) (X [][]float64, y []float64) {
	for i := 0; i < n; i++ {
		x := src.Uniform(0, 2*math.Pi)
		X = append(X, []float64{x})
		y = append(y, 100*math.Sin(x)+src.Norm(0, noise))
	}
	return X, y
}

func mae(m ml.Regressor, X [][]float64, y []float64) float64 {
	var s float64
	for i := range X {
		s += math.Abs(y[i] - m.Predict(X[i]))
	}
	return s / float64(len(X))
}

func TestOptionsValidate(t *testing.T) {
	cases := []Options{
		{C: 0, Epsilon: 0.1, MaxPasses: 10, Tol: 1e-4},
		{C: 1, Epsilon: -1, MaxPasses: 10, Tol: 1e-4},
		{C: 1, Epsilon: 0.1, MaxPasses: 0, Tol: 1e-4},
		{C: 1, Epsilon: 0.1, MaxPasses: 10, Tol: 0},
	}
	for i, o := range cases {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
		if _, err := New(o); err == nil {
			t.Errorf("case %d: New accepted", i)
		}
	}
}

func TestNonlinearFitRBF(t *testing.T) {
	src := randx.New(1)
	X, y := sineData(src, 300, 1)
	opts := DefaultOptions()
	opts.C = 10
	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	tX, tY := sineData(src, 100, 0)
	if e := mae(m, tX, tY); e > 15 {
		t.Fatalf("RBF SVR test MAE = %v on sine data (amplitude 100)", e)
	}
	if m.SupportVectors == 0 || m.SupportVectors > 300 {
		t.Fatalf("support vectors = %d", m.SupportVectors)
	}
}

func TestLinearKernelOnLinearData(t *testing.T) {
	src := randx.New(2)
	var X [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		a, b := src.Uniform(-5, 5), src.Uniform(-5, 5)
		X = append(X, []float64{a, b})
		y = append(y, 3*a-2*b+40)
	}
	opts := DefaultOptions()
	opts.Kernel = kernel.Linear{}
	opts.C = 100
	opts.Epsilon = 0.001
	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if e := mae(m, X, y); e > 1.0 {
		t.Fatalf("linear SVR MAE = %v on noiseless linear data", e)
	}
}

func TestEpsilonSparsity(t *testing.T) {
	// A wider tube leaves more residuals inside it, so fewer support
	// vectors survive.
	src := randx.New(3)
	X, y := sineData(src, 200, 2)
	count := func(eps float64) int {
		opts := DefaultOptions()
		opts.Epsilon = eps
		m, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		return m.SupportVectors
	}
	narrow, wide := count(0.01), count(0.5)
	if wide >= narrow {
		t.Fatalf("wider tube kept more SVs: %d vs %d", wide, narrow)
	}
}

func TestRawScaleInputsHandled(t *testing.T) {
	// Paper-scale features: memory ~1e6 KB. Without internal
	// standardization an RBF would collapse; with it, the fit works.
	src := randx.New(4)
	var X [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		mem := src.Uniform(1e5, 2e6)
		X = append(X, []float64{mem})
		y = append(y, mem/1000+src.Norm(0, 20))
	}
	opts := DefaultOptions()
	opts.C = 10
	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// RAE well below 1 (beats the mean predictor).
	mean := ml.Mean(y)
	var num, den float64
	for i := range X {
		num += math.Abs(y[i] - m.Predict(X[i]))
		den += math.Abs(y[i] - mean)
	}
	if num/den > 0.5 {
		t.Fatalf("raw-scale RAE = %v", num/den)
	}
}

func TestConstantTarget(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{5, 5, 5, 5}
	m, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if p := m.Predict([]float64{2.5}); math.Abs(p-5) > 1e-6 {
		t.Fatalf("constant target predicts %v", p)
	}
}

func TestUnfittedAndMismatch(t *testing.T) {
	m, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(m.Predict([]float64{1})) {
		t.Fatal("unfitted Predict not NaN")
	}
	src := randx.New(5)
	X, y := sineData(src, 50, 1)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(m.Predict([]float64{1, 2})) {
		t.Fatal("dimension mismatch not NaN")
	}
	if m.Name() != "svm" {
		t.Fatalf("Name = %q", m.Name())
	}
}

func TestBoxConstraintRespected(t *testing.T) {
	src := randx.New(6)
	X, y := sineData(src, 100, 5)
	opts := DefaultOptions()
	opts.C = 0.05
	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for _, b := range m.beta {
		if math.Abs(b) > opts.C+1e-12 {
			t.Fatalf("beta %v exceeds C %v", b, opts.C)
		}
	}
}

func TestDeterministic(t *testing.T) {
	src := randx.New(7)
	X, y := sineData(src, 150, 1)
	a, _ := New(DefaultOptions())
	b, _ := New(DefaultOptions())
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	probe := []float64{1.5}
	if a.Predict(probe) != b.Predict(probe) {
		t.Fatal("SVR not deterministic")
	}
}

func BenchmarkFit300(b *testing.B) {
	src := randx.New(8)
	X, y := sineData(src, 300, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := New(DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	src := randx.New(50)
	X, y := sineData(src, 150, 1)
	m, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	data, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if restored.SupportVectors != m.SupportVectors {
		t.Fatalf("SV count drift: %d vs %d", restored.SupportVectors, m.SupportVectors)
	}
	for x := 0.0; x < 6; x += 0.2 {
		probe := []float64{x}
		if restored.Predict(probe) != m.Predict(probe) {
			t.Fatalf("prediction drift at %v", x)
		}
	}
}

func TestJSONErrors(t *testing.T) {
	m, _ := New(DefaultOptions())
	if _, err := m.MarshalJSON(); err == nil {
		t.Fatal("unfitted marshal accepted")
	}
	if err := m.UnmarshalJSON([]byte("{bad")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if err := m.UnmarshalJSON([]byte(`{"options":{"C":1,"Epsilon":0.1,"MaxPasses":1,"Tol":1},
		"kernel":{"kind":"rbf","gamma":1},"mean":[0],"std":[1],
		"support_x":[[1],[2]],"beta":[0.5],"y_mean":0,"y_std":1,"dim":1}`)); err == nil {
		t.Fatal("SV/beta mismatch accepted")
	}
	if err := m.UnmarshalJSON([]byte(`{"options":{"C":1,"Epsilon":0.1,"MaxPasses":1,"Tol":1},
		"kernel":{"kind":"weird"},"mean":[0],"std":[1],
		"support_x":[[1]],"beta":[0.5],"y_mean":0,"y_std":1,"dim":1}`)); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestCustomKernelNotSerializable(t *testing.T) {
	opts := DefaultOptions()
	opts.Kernel = weirdKernel{}
	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	src := randx.New(51)
	X, y := sineData(src, 40, 1)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if _, err := m.MarshalJSON(); err == nil {
		t.Fatal("custom kernel serialized")
	}
}

type weirdKernel struct{}

func (weirdKernel) Eval(a, b []float64) float64 { return 1 }
func (weirdKernel) Name() string                { return "weird" }

func TestPredictBatchMatchesPredict(t *testing.T) {
	for _, k := range []kernel.Kernel{nil, kernel.Linear{}, kernel.Poly{Degree: 2, Scale: 1, Coef0: 1}} {
		opts := DefaultOptions()
		opts.Kernel = k
		m, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		src := randx.New(91)
		X, y := sineData(src, 60, 1)
		if err := m.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		queries, _ := sineData(src, 20, 1)
		queries = append(queries, []float64{1, 2}) // wrong dim -> NaN
		out := make([]float64, len(queries))
		m.PredictBatch(queries, out)
		for i, q := range queries {
			want := m.Predict(q)
			if math.IsNaN(want) != math.IsNaN(out[i]) || (!math.IsNaN(want) && math.Abs(out[i]-want) > 1e-9) {
				t.Fatalf("row %d: batch %v, single %v", i, out[i], want)
			}
		}
	}
	// Unfitted batch returns NaNs.
	m, _ := New(DefaultOptions())
	out := make([]float64, 2)
	m.PredictBatch([][]float64{{1}, {2}}, out)
	for _, v := range out {
		if !math.IsNaN(v) {
			t.Fatal("unfitted PredictBatch returned a number")
		}
	}
}

// exhaustiveDual is the pre-shrinking reference solver: plain cyclic
// coordinate descent sweeping every coordinate every pass on the same
// bias-folded Gram matrix solveDual works on.
func exhaustiveDual(gram *mat.Dense, ys []float64, opts Options) []float64 {
	n := len(ys)
	beta := make([]float64, n)
	f := make([]float64, n)
	for pass := 0; pass < opts.MaxPasses; pass++ {
		maxDelta := 0.0
		for i := 0; i < n; i++ {
			row := gram.Row(i)
			kii := row[i]
			if kii <= 0 {
				continue
			}
			target := ys[i] - (f[i] - kii*beta[i])
			nb := softThreshold(target, opts.Epsilon) / kii
			if nb > opts.C {
				nb = opts.C
			} else if nb < -opts.C {
				nb = -opts.C
			}
			if d := nb - beta[i]; d != 0 {
				for j := 0; j < n; j++ {
					f[j] += d * row[j]
				}
				beta[i] = nb
				if ad := math.Abs(d); ad > maxDelta {
					maxDelta = ad
				}
			}
		}
		if maxDelta < opts.Tol*opts.C {
			break
		}
	}
	return beta
}

// dualObjective evaluates W(β) = ½βᵀK'β − ysᵀβ + ε‖β‖₁.
func dualObjective(gram *mat.Dense, ys, beta []float64, eps float64) float64 {
	var quad, lin, l1 float64
	for i, bi := range beta {
		if bi == 0 {
			continue
		}
		row := gram.Row(i)
		var s float64
		for j, bj := range beta {
			if bj != 0 {
				s += bj * row[j]
			}
		}
		quad += bi * s
		lin += bi * ys[i]
		l1 += math.Abs(bi)
	}
	return 0.5*quad - lin + eps*l1
}

// TestShrinkingMatchesExhaustive pins the active-set solver to the
// exhaustive full-sweep reference on the same Gram matrix: coordinate
// descent decreases W(β) monotonically under any schedule, so the
// shrunk solve must reach (essentially) the same dual objective, and
// its predictions must stay within the ε-tube of the reference's.
func TestShrinkingMatchesExhaustive(t *testing.T) {
	src := randx.New(92)
	X, y := sineData(src, 80, 2)
	// Default tolerance, but a generous sweep budget: MaxPasses is a
	// time budget in production, and the comparison below is only
	// meaningful once both solvers actually reach their stopping rule.
	opts := DefaultOptions()
	opts.MaxPasses = 5000

	// Same standardization and Gram construction as Fit.
	std := kernel.FitStandardizer(X)
	Xs := std.ApplyAll(X)
	yMean, yStd := ml.Mean(y), math.Sqrt(ml.Variance(y))
	n := len(X)
	ys := make([]float64, n)
	for i, v := range y {
		ys[i] = (v - yMean) / yStd
	}
	kern := kernel.RBF{Gamma: 1 / float64(len(X[0]))}
	gram := kernel.Matrix(kern, Xs)
	for i := 0; i < n; i++ {
		row := gram.Row(i)
		for j := range row {
			row[j]++
		}
	}

	shrunk, pass := solveDualFrom(gram, ys, nil, opts)
	if pass >= opts.MaxPasses {
		t.Fatalf("shrinking solver did not converge in %d passes", opts.MaxPasses)
	}
	exh := exhaustiveDual(gram, ys, opts)

	wS := dualObjective(gram, ys, shrunk, opts.Epsilon)
	wE := dualObjective(gram, ys, exh, opts.Epsilon)
	// Both stop when no coordinate moves more than Tol·C; their dual
	// objectives must agree to well inside that resolution.
	if slack := 1e-4 * (1 + math.Abs(wE)); math.Abs(wS-wE) > slack {
		t.Fatalf("dual objective: shrunk %v vs exhaustive %v (slack %v)", wS, wE, slack)
	}
	// Near-optimal solutions may differ inside the ε-insensitive tube;
	// predictions (in standardized units) must not differ by more.
	var worst float64
	for j := 0; j < n; j++ {
		row := gram.Row(j)
		var ps, pe float64
		for i := 0; i < n; i++ {
			ps += shrunk[i] * row[i]
			pe += exh[i] * row[i]
		}
		if d := math.Abs(ps - pe); d > worst {
			worst = d
		}
	}
	if worst > 2*opts.Epsilon {
		t.Fatalf("standardized predictions differ by %v (> 2ε = %v)", worst, 2*opts.Epsilon)
	}
}

// degenerateKernel makes every folded diagonal K'_ii = Eval+1 = 0, so
// no coordinate is usable. Fit must still converge immediately instead
// of burning MaxPasses on full-sweep verification resets.
type degenerateKernel struct{}

func (degenerateKernel) Eval(a, b []float64) float64 { return -1 }
func (degenerateKernel) Name() string                { return "degenerate" }

func TestDegenerateDiagonalConverges(t *testing.T) {
	opts := DefaultOptions()
	opts.Kernel = degenerateKernel{}
	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	src := randx.New(95)
	X, y := sineData(src, 20, 1)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if m.Passes != 1 {
		t.Fatalf("Passes = %d, want immediate convergence (1)", m.Passes)
	}
	if m.SupportVectors != 0 {
		t.Fatalf("SupportVectors = %d, want 0", m.SupportVectors)
	}
	// With no usable coordinates the model predicts the target mean.
	if got := m.Predict(X[0]); math.Abs(got-ml.Mean(y)) > 1e-9 {
		t.Fatalf("Predict = %v, want mean %v", got, ml.Mean(y))
	}
}

// TestPredictAllocationFree pins the pooled scratch path: after
// warm-up, single-sample prediction must not allocate.
func TestPredictAllocationFree(t *testing.T) {
	src := randx.New(96)
	X, y := sineData(src, 80, 0.05)
	m, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	q := X[3]
	m.Predict(q) // warm the pool
	if allocs := testing.AllocsPerRun(50, func() { m.Predict(q) }); allocs > 0 {
		t.Fatalf("Predict allocates %v times per call", allocs)
	}
}
