package svm

import (
	"math"
	"testing"

	"repro/internal/ml"
	"repro/internal/ml/kernel"
	"repro/internal/randx"
)

func sineData(src *randx.Source, n int, noise float64) (X [][]float64, y []float64) {
	for i := 0; i < n; i++ {
		x := src.Uniform(0, 2*math.Pi)
		X = append(X, []float64{x})
		y = append(y, 100*math.Sin(x)+src.Norm(0, noise))
	}
	return X, y
}

func mae(m ml.Regressor, X [][]float64, y []float64) float64 {
	var s float64
	for i := range X {
		s += math.Abs(y[i] - m.Predict(X[i]))
	}
	return s / float64(len(X))
}

func TestOptionsValidate(t *testing.T) {
	cases := []Options{
		{C: 0, Epsilon: 0.1, MaxPasses: 10, Tol: 1e-4},
		{C: 1, Epsilon: -1, MaxPasses: 10, Tol: 1e-4},
		{C: 1, Epsilon: 0.1, MaxPasses: 0, Tol: 1e-4},
		{C: 1, Epsilon: 0.1, MaxPasses: 10, Tol: 0},
	}
	for i, o := range cases {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
		if _, err := New(o); err == nil {
			t.Errorf("case %d: New accepted", i)
		}
	}
}

func TestNonlinearFitRBF(t *testing.T) {
	src := randx.New(1)
	X, y := sineData(src, 300, 1)
	opts := DefaultOptions()
	opts.C = 10
	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	tX, tY := sineData(src, 100, 0)
	if e := mae(m, tX, tY); e > 15 {
		t.Fatalf("RBF SVR test MAE = %v on sine data (amplitude 100)", e)
	}
	if m.SupportVectors == 0 || m.SupportVectors > 300 {
		t.Fatalf("support vectors = %d", m.SupportVectors)
	}
}

func TestLinearKernelOnLinearData(t *testing.T) {
	src := randx.New(2)
	var X [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		a, b := src.Uniform(-5, 5), src.Uniform(-5, 5)
		X = append(X, []float64{a, b})
		y = append(y, 3*a-2*b+40)
	}
	opts := DefaultOptions()
	opts.Kernel = kernel.Linear{}
	opts.C = 100
	opts.Epsilon = 0.001
	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if e := mae(m, X, y); e > 1.0 {
		t.Fatalf("linear SVR MAE = %v on noiseless linear data", e)
	}
}

func TestEpsilonSparsity(t *testing.T) {
	// A wider tube leaves more residuals inside it, so fewer support
	// vectors survive.
	src := randx.New(3)
	X, y := sineData(src, 200, 2)
	count := func(eps float64) int {
		opts := DefaultOptions()
		opts.Epsilon = eps
		m, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		return m.SupportVectors
	}
	narrow, wide := count(0.01), count(0.5)
	if wide >= narrow {
		t.Fatalf("wider tube kept more SVs: %d vs %d", wide, narrow)
	}
}

func TestRawScaleInputsHandled(t *testing.T) {
	// Paper-scale features: memory ~1e6 KB. Without internal
	// standardization an RBF would collapse; with it, the fit works.
	src := randx.New(4)
	var X [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		mem := src.Uniform(1e5, 2e6)
		X = append(X, []float64{mem})
		y = append(y, mem/1000+src.Norm(0, 20))
	}
	opts := DefaultOptions()
	opts.C = 10
	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// RAE well below 1 (beats the mean predictor).
	mean := ml.Mean(y)
	var num, den float64
	for i := range X {
		num += math.Abs(y[i] - m.Predict(X[i]))
		den += math.Abs(y[i] - mean)
	}
	if num/den > 0.5 {
		t.Fatalf("raw-scale RAE = %v", num/den)
	}
}

func TestConstantTarget(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{5, 5, 5, 5}
	m, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if p := m.Predict([]float64{2.5}); math.Abs(p-5) > 1e-6 {
		t.Fatalf("constant target predicts %v", p)
	}
}

func TestUnfittedAndMismatch(t *testing.T) {
	m, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(m.Predict([]float64{1})) {
		t.Fatal("unfitted Predict not NaN")
	}
	src := randx.New(5)
	X, y := sineData(src, 50, 1)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(m.Predict([]float64{1, 2})) {
		t.Fatal("dimension mismatch not NaN")
	}
	if m.Name() != "svm" {
		t.Fatalf("Name = %q", m.Name())
	}
}

func TestBoxConstraintRespected(t *testing.T) {
	src := randx.New(6)
	X, y := sineData(src, 100, 5)
	opts := DefaultOptions()
	opts.C = 0.05
	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for _, b := range m.beta {
		if math.Abs(b) > opts.C+1e-12 {
			t.Fatalf("beta %v exceeds C %v", b, opts.C)
		}
	}
}

func TestDeterministic(t *testing.T) {
	src := randx.New(7)
	X, y := sineData(src, 150, 1)
	a, _ := New(DefaultOptions())
	b, _ := New(DefaultOptions())
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	probe := []float64{1.5}
	if a.Predict(probe) != b.Predict(probe) {
		t.Fatal("SVR not deterministic")
	}
}

func BenchmarkFit300(b *testing.B) {
	src := randx.New(8)
	X, y := sineData(src, 300, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := New(DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	src := randx.New(50)
	X, y := sineData(src, 150, 1)
	m, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	data, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if restored.SupportVectors != m.SupportVectors {
		t.Fatalf("SV count drift: %d vs %d", restored.SupportVectors, m.SupportVectors)
	}
	for x := 0.0; x < 6; x += 0.2 {
		probe := []float64{x}
		if restored.Predict(probe) != m.Predict(probe) {
			t.Fatalf("prediction drift at %v", x)
		}
	}
}

func TestJSONErrors(t *testing.T) {
	m, _ := New(DefaultOptions())
	if _, err := m.MarshalJSON(); err == nil {
		t.Fatal("unfitted marshal accepted")
	}
	if err := m.UnmarshalJSON([]byte("{bad")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if err := m.UnmarshalJSON([]byte(`{"options":{"C":1,"Epsilon":0.1,"MaxPasses":1,"Tol":1},
		"kernel":{"kind":"rbf","gamma":1},"mean":[0],"std":[1],
		"support_x":[[1],[2]],"beta":[0.5],"y_mean":0,"y_std":1,"dim":1}`)); err == nil {
		t.Fatal("SV/beta mismatch accepted")
	}
	if err := m.UnmarshalJSON([]byte(`{"options":{"C":1,"Epsilon":0.1,"MaxPasses":1,"Tol":1},
		"kernel":{"kind":"weird"},"mean":[0],"std":[1],
		"support_x":[[1]],"beta":[0.5],"y_mean":0,"y_std":1,"dim":1}`)); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestCustomKernelNotSerializable(t *testing.T) {
	opts := DefaultOptions()
	opts.Kernel = weirdKernel{}
	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	src := randx.New(51)
	X, y := sineData(src, 40, 1)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if _, err := m.MarshalJSON(); err == nil {
		t.Fatal("custom kernel serialized")
	}
}

type weirdKernel struct{}

func (weirdKernel) Eval(a, b []float64) float64 { return 1 }
func (weirdKernel) Name() string                { return "weird" }
