// Package m5p implements the M5P model tree (Wang & Witten 1997; paper
// §III-D): a regression tree whose splits minimize intra-subset variation
// (maximize standard-deviation reduction), pruned back into linear
// regression planes, with leaf predictions smoothed along the path to the
// root. The paper found M5P second-best after REP-Tree, ~10% higher
// error.
package m5p

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/ml"
	"repro/internal/ml/linreg"
	"repro/internal/ml/treeutil"
)

// Options tunes tree construction.
type Options struct {
	// MinInstances is the minimum number of rows per leaf (M5 default 4).
	MinInstances int
	// SDFraction stops splitting when the node's target standard
	// deviation falls below this fraction of the root's (M5 default 5%).
	SDFraction float64
	// SmoothingK is the smoothing constant k in
	// p' = (n·p + k·q)/(n + k) (M5 default 15). 0 disables smoothing.
	SmoothingK float64
	// Prune enables pruning subtrees into linear planes when the
	// complexity-corrected model error does not exceed the subtree error.
	Prune bool
	// MaxDepth caps tree depth (0 = unlimited).
	MaxDepth int
}

// DefaultOptions returns the classic M5 settings.
func DefaultOptions() Options {
	return Options{MinInstances: 4, SDFraction: 0.05, SmoothingK: 15, Prune: true}
}

// Validate reports option errors.
func (o *Options) Validate() error {
	if o.MinInstances < 1 {
		return fmt.Errorf("m5p: MinInstances must be >= 1, got %d", o.MinInstances)
	}
	if o.SDFraction < 0 || o.SDFraction >= 1 {
		return fmt.Errorf("m5p: SDFraction must be in [0,1), got %v", o.SDFraction)
	}
	if o.SmoothingK < 0 {
		return fmt.Errorf("m5p: SmoothingK must be >= 0, got %v", o.SmoothingK)
	}
	if o.MaxDepth < 0 {
		return fmt.Errorf("m5p: MaxDepth must be >= 0, got %d", o.MaxDepth)
	}
	return nil
}

type node struct {
	// split fields, meaningful when !leaf
	feature   int
	threshold float64
	left      *node
	right     *node

	leaf  bool
	n     int
	model *linreg.Model // linear plane at this node
	mean  float64       // fallback constant prediction

	// subtreeAbsErr is the training absolute error of the subtree,
	// computed during pruning.
	subtreeAbsErr float64
}

// Model is a fitted M5P model tree.
type Model struct {
	opts   Options
	root   *node
	dim    int
	fitted bool
	// Leaves and Nodes report fitted tree size.
	Leaves int
	Nodes  int
}

// New returns an unfitted M5P tree.
func New(opts Options) (*Model, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Model{opts: opts}, nil
}

// Name implements ml.Regressor.
func (m *Model) Name() string { return "m5p" }

// Fit grows, prunes, and finalizes the model tree.
func (m *Model) Fit(X [][]float64, y []float64) error {
	dim, err := ml.CheckTrainingSet(X, y)
	if err != nil {
		return err
	}
	Xc := ml.CloneMatrix(X)
	yc := ml.CloneVector(y)
	idx := make([]int, len(Xc))
	for i := range idx {
		idx[i] = i
	}
	rootSD := treeutil.SD(yc, idx)
	root := m.build(Xc, yc, idx, rootSD, 0)
	if m.opts.Prune {
		m.prune(root, Xc, yc, idx)
	}
	m.root = root
	m.dim = dim
	m.fitted = true
	m.Leaves, m.Nodes = 0, 0
	m.count(root)
	return nil
}

// build grows the unpruned tree. Every node gets a linear model: interior
// nodes need one for smoothing and as the pruning candidate.
func (m *Model) build(X [][]float64, y []float64, idx []int, rootSD float64, depth int) *node {
	nd := &node{n: len(idx), mean: treeutil.Mean(y, idx)}
	nd.model = fitNodeModel(X, y, idx)

	stop := len(idx) < 2*m.opts.MinInstances ||
		treeutil.SD(y, idx) < m.opts.SDFraction*rootSD ||
		(m.opts.MaxDepth > 0 && depth >= m.opts.MaxDepth)
	if !stop {
		if split, ok := treeutil.BestSplit(X, y, idx, m.opts.MinInstances); ok {
			left, right := treeutil.Partition(X, idx, split)
			if len(left) >= m.opts.MinInstances && len(right) >= m.opts.MinInstances {
				nd.feature = split.Feature
				nd.threshold = split.Threshold
				nd.left = m.build(X, y, left, rootSD, depth+1)
				nd.right = m.build(X, y, right, rootSD, depth+1)
				return nd
			}
		}
	}
	nd.leaf = true
	return nd
}

// fitNodeModel fits the node's linear plane; nil means "use the mean".
func fitNodeModel(X [][]float64, y []float64, idx []int) *linreg.Model {
	if len(idx) < 2 {
		return nil
	}
	subX := make([][]float64, len(idx))
	subY := make([]float64, len(idx))
	for k, i := range idx {
		subX[k] = X[i]
		subY[k] = y[i]
	}
	lm := linreg.New()
	if err := lm.Fit(subX, subY); err != nil {
		return nil
	}
	return lm
}

// nodePredict is the node's own (unsmoothed) prediction.
func (nd *node) nodePredict(x []float64) float64 {
	if nd.model != nil {
		if p := nd.model.Predict(x); !math.IsNaN(p) {
			return p
		}
	}
	return nd.mean
}

// prune walks bottom-up replacing subtrees by their node model when the
// complexity-corrected linear-model error is no worse than the subtree
// error (M5's pruning rule with the (n+v)/(n-v) correction factor).
func (m *Model) prune(nd *node, X [][]float64, y []float64, idx []int) {
	if nd.leaf {
		nd.subtreeAbsErr = rawAbsErr(nd, X, y, idx)
		return
	}
	left, right := treeutil.Partition(X, idx, treeutil.Split{Feature: nd.feature, Threshold: nd.threshold})
	m.prune(nd.left, X, y, left)
	m.prune(nd.right, X, y, right)
	nd.subtreeAbsErr = nd.left.subtreeAbsErr + nd.right.subtreeAbsErr

	n := float64(len(idx))
	v := 1.0
	if nd.model != nil {
		v = float64(len(nd.model.Coef)) + 1
	}
	penalty := 1.0
	if n > v {
		penalty = (n + v) / (n - v)
	} else {
		penalty = 10 // far fewer points than parameters: strongly distrust
	}
	// Tolerance keeps exactly-fitting planes (both errors ~0 up to
	// floating-point noise) from being rejected on noise alone.
	var yScale float64
	for _, i := range idx {
		yScale += math.Abs(y[i])
	}
	tol := 1e-9 * (yScale + n)
	modelErr := rawAbsErr(nd, X, y, idx) * penalty
	if modelErr <= nd.subtreeAbsErr+tol {
		nd.leaf = true
		nd.left, nd.right = nil, nil
		nd.subtreeAbsErr = rawAbsErr(nd, X, y, idx)
	}
}

// rawAbsErr sums |y - nodePredict| over idx.
func rawAbsErr(nd *node, X [][]float64, y []float64, idx []int) float64 {
	var s float64
	for _, i := range idx {
		s += math.Abs(y[i] - nd.nodePredict(X[i]))
	}
	return s
}

func (m *Model) count(nd *node) {
	if nd == nil {
		return
	}
	m.Nodes++
	if nd.leaf {
		m.Leaves++
		return
	}
	m.count(nd.left)
	m.count(nd.right)
}

// Predict implements ml.Regressor with M5 smoothing: the leaf value is
// combined with each ancestor's linear model on the way back to the root:
// p' = (n·p + k·q)/(n + k).
func (m *Model) Predict(x []float64) float64 {
	if !m.fitted || len(x) != m.dim {
		return math.NaN()
	}
	// Collect the root-to-leaf path.
	path := make([]*node, 0, 16)
	nd := m.root
	for {
		path = append(path, nd)
		if nd.leaf {
			break
		}
		if x[nd.feature] <= nd.threshold {
			nd = nd.left
		} else {
			nd = nd.right
		}
	}
	leaf := path[len(path)-1]
	p := leaf.nodePredict(x)
	if m.opts.SmoothingK == 0 {
		return p
	}
	k := m.opts.SmoothingK
	nChild := float64(leaf.n)
	for i := len(path) - 2; i >= 0; i-- {
		q := path[i].nodePredict(x)
		p = (nChild*p + k*q) / (nChild + k)
		nChild = float64(path[i].n)
	}
	return p
}

var _ ml.Regressor = (*Model)(nil)

// nodeJSON is the serialized recursive tree node.
type nodeJSON struct {
	Feature   int       `json:"feature,omitempty"`
	Threshold float64   `json:"threshold,omitempty"`
	Leaf      bool      `json:"leaf"`
	N         int       `json:"n"`
	Mean      float64   `json:"mean"`
	Coef      []float64 `json:"coef,omitempty"` // linear plane; empty = mean only
	Intercept float64   `json:"intercept,omitempty"`
	Left      *nodeJSON `json:"left,omitempty"`
	Right     *nodeJSON `json:"right,omitempty"`
}

type m5pJSON struct {
	Options Options   `json:"options"`
	Dim     int       `json:"dim"`
	Root    *nodeJSON `json:"root"`
}

func nodeToJSON(nd *node) *nodeJSON {
	if nd == nil {
		return nil
	}
	out := &nodeJSON{
		Feature: nd.feature, Threshold: nd.threshold,
		Leaf: nd.leaf, N: nd.n, Mean: nd.mean,
	}
	if nd.model != nil {
		out.Coef = nd.model.Coef
		out.Intercept = nd.model.Intercept
	}
	if !nd.leaf {
		out.Left = nodeToJSON(nd.left)
		out.Right = nodeToJSON(nd.right)
	}
	return out
}

func nodeFromJSON(nj *nodeJSON, dim int) (*node, error) {
	if nj == nil {
		return nil, fmt.Errorf("m5p: missing node in serialized tree")
	}
	nd := &node{
		feature: nj.Feature, threshold: nj.Threshold,
		leaf: nj.Leaf, n: nj.N, mean: nj.Mean,
	}
	if len(nj.Coef) > 0 {
		if len(nj.Coef) != dim {
			return nil, fmt.Errorf("m5p: node plane has %d coefficients, want %d", len(nj.Coef), dim)
		}
		lm := linreg.New()
		raw, err := json.Marshal(map[string]any{"coef": nj.Coef, "intercept": nj.Intercept})
		if err != nil {
			return nil, err
		}
		if err := lm.UnmarshalJSON(raw); err != nil {
			return nil, err
		}
		nd.model = lm
	}
	if !nd.leaf {
		if nj.Feature < 0 || nj.Feature >= dim {
			return nil, fmt.Errorf("m5p: split feature %d out of range [0,%d)", nj.Feature, dim)
		}
		var err error
		if nd.left, err = nodeFromJSON(nj.Left, dim); err != nil {
			return nil, err
		}
		if nd.right, err = nodeFromJSON(nj.Right, dim); err != nil {
			return nil, err
		}
	}
	return nd, nil
}

// MarshalJSON serializes a fitted model tree.
func (m *Model) MarshalJSON() ([]byte, error) {
	if !m.fitted {
		return nil, ml.ErrNotFitted
	}
	return json.Marshal(m5pJSON{Options: m.opts, Dim: m.dim, Root: nodeToJSON(m.root)})
}

// UnmarshalJSON restores a model tree serialized by MarshalJSON.
func (m *Model) UnmarshalJSON(data []byte) error {
	var s m5pJSON
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("m5p: decoding model: %w", err)
	}
	if s.Dim <= 0 {
		return fmt.Errorf("m5p: serialized model has dimension %d", s.Dim)
	}
	root, err := nodeFromJSON(s.Root, s.Dim)
	if err != nil {
		return err
	}
	m.opts = s.Options
	m.dim = s.Dim
	m.root = root
	m.fitted = true
	m.Leaves, m.Nodes = 0, 0
	m.count(root)
	return nil
}
