package m5p

import (
	"math"
	"testing"

	"repro/internal/ml"
	"repro/internal/randx"
)

// piecewiseLinear generates y = 2x+1 for x<0, y = -3x+10 for x>=0 — a
// problem a model tree should nail and a single linear model cannot.
func piecewiseLinear(src *randx.Source, n int, noise float64) (X [][]float64, y []float64) {
	for i := 0; i < n; i++ {
		x := src.Uniform(-10, 10)
		X = append(X, []float64{x})
		if x < 0 {
			y = append(y, 2*x+1+src.Norm(0, noise))
		} else {
			y = append(y, -3*x+10+src.Norm(0, noise))
		}
	}
	return X, y
}

func mae(m ml.Regressor, X [][]float64, y []float64) float64 {
	var s float64
	for i := range X {
		s += math.Abs(y[i] - m.Predict(X[i]))
	}
	return s / float64(len(X))
}

func TestOptionsValidate(t *testing.T) {
	cases := []Options{
		{MinInstances: 0, SDFraction: 0.05},
		{MinInstances: 4, SDFraction: -0.1},
		{MinInstances: 4, SDFraction: 1},
		{MinInstances: 4, SDFraction: 0.05, SmoothingK: -1},
		{MinInstances: 4, SDFraction: 0.05, MaxDepth: -1},
	}
	for i, o := range cases {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
		if _, err := New(o); err == nil {
			t.Errorf("case %d: New accepted", i)
		}
	}
	def := DefaultOptions()
	if err := def.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPiecewiseLinearFit(t *testing.T) {
	src := randx.New(1)
	X, y := piecewiseLinear(src, 400, 0.1)
	m, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	tX, tY := piecewiseLinear(src, 200, 0)
	if e := mae(m, tX, tY); e > 1.5 {
		t.Fatalf("test MAE = %v on piecewise-linear data", e)
	}
	if m.Leaves < 2 {
		t.Fatalf("tree did not split: %d leaves", m.Leaves)
	}
}

func TestBeatsGlobalMeanBaseline(t *testing.T) {
	src := randx.New(2)
	X, y := piecewiseLinear(src, 300, 0.5)
	m, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	mean := ml.Mean(y)
	var baseline float64
	for _, v := range y {
		baseline += math.Abs(v - mean)
	}
	baseline /= float64(len(y))
	if e := mae(m, X, y); e > baseline/3 {
		t.Fatalf("train MAE %v not well below mean baseline %v", e, baseline)
	}
}

func TestPureLinearPrunesToSinglePlane(t *testing.T) {
	// Exactly linear data: pruning should collapse the tree heavily.
	src := randx.New(3)
	var X [][]float64
	var y []float64
	for i := 0; i < 300; i++ {
		a, b := src.Uniform(-5, 5), src.Uniform(-5, 5)
		X = append(X, []float64{a, b})
		y = append(y, 3*a-2*b+7)
	}
	pruned, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := pruned.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if pruned.Leaves != 1 {
		t.Fatalf("linear data grew %d leaves despite pruning", pruned.Leaves)
	}
	if e := mae(pruned, X, y); e > 1e-6 {
		t.Fatalf("linear data MAE = %v", e)
	}
}

func TestPruningShrinksTree(t *testing.T) {
	src := randx.New(4)
	X, y := piecewiseLinear(src, 300, 2.0) // noisy
	op := DefaultOptions()
	op.Prune = false
	unpruned, _ := New(op)
	if err := unpruned.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	prunedOpts := DefaultOptions()
	prunedM, _ := New(prunedOpts)
	if err := prunedM.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if prunedM.Leaves > unpruned.Leaves {
		t.Fatalf("pruning grew the tree: %d > %d", prunedM.Leaves, unpruned.Leaves)
	}
}

func TestSmoothingContinuity(t *testing.T) {
	// Smoothing blends leaf predictions with ancestor models, so the
	// largest discontinuity over a fine scan must not grow.
	src := randx.New(5)
	X, y := piecewiseLinear(src, 400, 0.5)
	maxJump := func(k float64) float64 {
		op := DefaultOptions()
		op.SmoothingK = k
		m, err := New(op)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		const h = 0.005
		worst := 0.0
		prev := m.Predict([]float64{-2})
		for x := -2 + h; x <= 2; x += h {
			cur := m.Predict([]float64{x})
			if j := math.Abs(cur - prev); j > worst {
				worst = j
			}
			prev = cur
		}
		return worst
	}
	if js, ju := maxJump(15), maxJump(0); js > ju+1e-9 {
		t.Fatalf("smoothing increased the worst jump: %v > %v", js, ju)
	}
}

func TestMaxDepthRespected(t *testing.T) {
	src := randx.New(6)
	X, y := piecewiseLinear(src, 400, 0.1)
	op := DefaultOptions()
	op.MaxDepth = 1
	op.Prune = false
	m, _ := New(op)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if m.Leaves > 2 {
		t.Fatalf("depth-1 tree has %d leaves", m.Leaves)
	}
}

func TestConstantTarget(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}}
	y := []float64{5, 5, 5, 5, 5, 5, 5, 5}
	m, _ := New(DefaultOptions())
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if p := m.Predict([]float64{4.5}); math.Abs(p-5) > 1e-9 {
		t.Fatalf("constant target predicts %v", p)
	}
	if m.Leaves != 1 {
		t.Fatalf("constant target grew %d leaves", m.Leaves)
	}
}

func TestTinyDataset(t *testing.T) {
	m, _ := New(DefaultOptions())
	if err := m.Fit([][]float64{{1}, {2}}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(m.Predict([]float64{1.5})) {
		t.Fatal("tiny dataset predicts NaN")
	}
}

func TestUnfittedAndMismatch(t *testing.T) {
	m, _ := New(DefaultOptions())
	if !math.IsNaN(m.Predict([]float64{1})) {
		t.Fatal("unfitted Predict not NaN")
	}
	if err := m.Fit([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Fatal("bad Fit accepted")
	}
	src := randx.New(7)
	X, y := piecewiseLinear(src, 50, 0.1)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(m.Predict([]float64{1, 2, 3})) {
		t.Fatal("dimension mismatch not NaN")
	}
	if m.Name() != "m5p" {
		t.Fatalf("Name = %q", m.Name())
	}
}

func TestFitDoesNotRetainInput(t *testing.T) {
	src := randx.New(8)
	X, y := piecewiseLinear(src, 100, 0.1)
	m, _ := New(DefaultOptions())
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	probe := []float64{3}
	before := m.Predict(probe)
	for i := range X {
		X[i][0] = 1e9
		y[i] = -1e9
	}
	if after := m.Predict(probe); after != before {
		t.Fatal("model reads caller-mutated training data")
	}
}

func BenchmarkFit500x10(b *testing.B) {
	src := randx.New(9)
	n, d := 500, 10
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for j := range row {
			row[j] = src.Uniform(0, 10)
		}
		X[i] = row
		y[i] = row[0]*3 + row[1]*row[1] + src.Norm(0, 0.5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := New(DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	src := randx.New(40)
	X, y := piecewiseLinear(src, 300, 0.3)
	m, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	data, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if restored.Leaves != m.Leaves || restored.Nodes != m.Nodes {
		t.Fatalf("tree shape drift: %d/%d vs %d/%d", restored.Leaves, restored.Nodes, m.Leaves, m.Nodes)
	}
	for x := -9.5; x < 9.5; x += 0.7 {
		probe := []float64{x}
		if restored.Predict(probe) != m.Predict(probe) {
			t.Fatalf("prediction drift at %v", x)
		}
	}
}

func TestJSONErrors(t *testing.T) {
	m, _ := New(DefaultOptions())
	if _, err := m.MarshalJSON(); err == nil {
		t.Fatal("unfitted marshal accepted")
	}
	if err := m.UnmarshalJSON([]byte("{bad")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if err := m.UnmarshalJSON([]byte(`{"options":{},"dim":0,"root":{"leaf":true}}`)); err == nil {
		t.Fatal("zero dim accepted")
	}
	if err := m.UnmarshalJSON([]byte(`{"options":{},"dim":1,"root":null}`)); err == nil {
		t.Fatal("missing root accepted")
	}
	// Interior node with out-of-range feature.
	bad := `{"options":{},"dim":1,"root":{"leaf":false,"feature":5,"threshold":1,
		"left":{"leaf":true,"n":1,"mean":0},"right":{"leaf":true,"n":1,"mean":1},"n":2,"mean":0.5}}`
	if err := m.UnmarshalJSON([]byte(bad)); err == nil {
		t.Fatal("out-of-range split feature accepted")
	}
}
