package treeutil

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/randx"
)

func TestBestSplitObvious(t *testing.T) {
	// Perfect step: y = 0 for x < 5, y = 100 for x >= 5.
	var X [][]float64
	var y []float64
	for i := 0; i < 20; i++ {
		X = append(X, []float64{float64(i)})
		if i < 10 {
			y = append(y, 0)
		} else {
			y = append(y, 100)
		}
	}
	idx := seq(20)
	s, ok := BestSplit(X, y, idx, 1)
	if !ok {
		t.Fatal("no split found")
	}
	if s.Feature != 0 || s.Threshold != 9.5 {
		t.Fatalf("split = %+v, want feature 0 at 9.5", s)
	}
	if s.Reduction <= 0 {
		t.Fatalf("reduction = %v", s.Reduction)
	}
}

func TestBestSplitPicksInformativeFeature(t *testing.T) {
	src := randx.New(1)
	var X [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		noise := src.Uniform(0, 1)
		signal := src.Uniform(0, 1)
		X = append(X, []float64{noise, signal})
		if signal > 0.5 {
			y = append(y, 50+src.Norm(0, 1))
		} else {
			y = append(y, -50+src.Norm(0, 1))
		}
	}
	s, ok := BestSplit(X, y, seq(100), 2)
	if !ok || s.Feature != 1 {
		t.Fatalf("split = %+v, want feature 1", s)
	}
	if math.Abs(s.Threshold-0.5) > 0.1 {
		t.Fatalf("threshold = %v, want ~0.5", s.Threshold)
	}
}

func TestBestSplitRespectsMinLeaf(t *testing.T) {
	var X [][]float64
	y := []float64{0, 0, 0, 100}
	for i := 0; i < 4; i++ {
		X = append(X, []float64{float64(i)})
	}
	// minLeaf 2 forbids the natural 3/1 split; best allowed is 2/2.
	s, ok := BestSplit(X, y, seq(4), 2)
	if !ok {
		t.Fatal("no split")
	}
	if s.Threshold != 1.5 {
		t.Fatalf("threshold = %v, want 1.5", s.Threshold)
	}
}

func TestBestSplitDegenerate(t *testing.T) {
	// Constant feature: no split.
	X := [][]float64{{1}, {1}, {1}, {1}}
	y := []float64{1, 2, 3, 4}
	if _, ok := BestSplit(X, y, seq(4), 1); ok {
		t.Fatal("split found on constant feature")
	}
	// Too few rows.
	if _, ok := BestSplit(X, y, seq(4)[:1], 1); ok {
		t.Fatal("split found on 1 row")
	}
}

func TestBestSplitEqualValuesNotSeparated(t *testing.T) {
	// Feature values {1,1,2,2}: only legal threshold is 1.5.
	X := [][]float64{{1}, {1}, {2}, {2}}
	y := []float64{5, 6, 50, 60}
	s, ok := BestSplit(X, y, seq(4), 1)
	if !ok || s.Threshold != 1.5 {
		t.Fatalf("split = %+v ok=%v", s, ok)
	}
}

func TestPartition(t *testing.T) {
	X := [][]float64{{1}, {5}, {3}, {9}}
	l, r := Partition(X, seq(4), Split{Feature: 0, Threshold: 3})
	if len(l) != 2 || len(r) != 2 {
		t.Fatalf("partition sizes %d/%d", len(l), len(r))
	}
	if l[0] != 0 || l[1] != 2 || r[0] != 1 || r[1] != 3 {
		t.Fatalf("partition order: %v %v", l, r)
	}
}

func TestSDMean(t *testing.T) {
	y := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := SD(y, seq(8)); math.Abs(got-2) > 1e-12 {
		t.Fatalf("SD = %v, want 2", got)
	}
	if got := Mean(y, seq(8)); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if SD(y, nil) != 0 || Mean(y, nil) != 0 {
		t.Fatal("empty idx not 0")
	}
}

// Property: any returned split actually reduces the weighted SD, and both
// sides respect minLeaf.
func TestBestSplitInvariant(t *testing.T) {
	src := randx.New(2)
	f := func(seed uint16, minLeafRaw uint8) bool {
		local := src.Fork(uint64(seed))
		n := 30
		minLeaf := int(minLeafRaw%4) + 1
		X := make([][]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			X[i] = []float64{local.Uniform(0, 10), local.Uniform(0, 10)}
			y[i] = local.Uniform(0, 100)
		}
		idx := seq(n)
		s, ok := BestSplit(X, y, idx, minLeaf)
		if !ok {
			return true // may legitimately fail for tiny minLeaf budgets
		}
		l, r := Partition(X, idx, s)
		if len(l) < minLeaf || len(r) < minLeaf {
			return false
		}
		whole := SD(y, idx)
		weighted := float64(len(l))/float64(n)*SD(y, l) + float64(len(r))/float64(n)*SD(y, r)
		return s.Reduction >= -1e-9 && math.Abs((whole-weighted)-s.Reduction) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
