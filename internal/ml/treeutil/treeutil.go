// Package treeutil holds the split-search machinery shared by the two
// tree learners (M5P and REP-Tree): both grow regression trees by
// maximizing the reduction of target variance across a binary split on a
// numeric attribute, differing only in leaf models and pruning.
package treeutil

import (
	"math"
	"sort"
)

// Split describes a candidate binary split: rows with
// X[i][Feature] <= Threshold go left.
type Split struct {
	Feature   int
	Threshold float64
	// Reduction is the achieved standard-deviation reduction
	// SDR = sd(S) - Σ |S_i|/|S| * sd(S_i), the M5 split criterion
	// (equivalently ranked to variance reduction).
	Reduction float64
}

// BestSplit searches every feature for the split of idx (row indices into
// X/y) that maximizes the standard-deviation reduction, requiring at
// least minLeaf rows on each side. ok is false when no legal split
// exists (too few rows, or all feature values constant).
func BestSplit(X [][]float64, y []float64, idx []int, minLeaf int) (best Split, ok bool) {
	n := len(idx)
	if minLeaf < 1 {
		minLeaf = 1
	}
	if n < 2*minLeaf {
		return Split{}, false
	}
	dim := len(X[idx[0]])

	// Node-level statistics.
	var sum, sumSq float64
	for _, i := range idx {
		sum += y[i]
		sumSq += y[i] * y[i]
	}
	fn := float64(n)
	nodeSD := sdFromSums(sum, sumSq, fn)

	type pair struct{ v, y float64 }
	pairs := make([]pair, n)
	// Suffix sums give the right-side statistics by direct accumulation
	// instead of subtracting from the node totals, which suffers
	// catastrophic cancellation when one side dominates.
	sufSum := make([]float64, n+1)
	sufSq := make([]float64, n+1)

	best.Reduction = -1
	for f := 0; f < dim; f++ {
		for k, i := range idx {
			pairs[k] = pair{v: X[i][f], y: y[i]}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].v < pairs[b].v })
		if pairs[0].v == pairs[n-1].v {
			continue // constant feature
		}
		for k := n - 1; k >= 0; k-- {
			sufSum[k] = sufSum[k+1] + pairs[k].y
			sufSq[k] = sufSq[k+1] + pairs[k].y*pairs[k].y
		}
		var lSum, lSq float64
		for k := 0; k < n-1; k++ {
			lSum += pairs[k].y
			lSq += pairs[k].y * pairs[k].y
			nl := k + 1
			nr := n - nl
			if nl < minLeaf {
				continue
			}
			if nr < minLeaf {
				break
			}
			if pairs[k].v == pairs[k+1].v {
				continue // cannot split between equal values
			}
			rSum := sufSum[k+1]
			rSq := sufSq[k+1]
			sdr := nodeSD -
				float64(nl)/fn*sdFromSums(lSum, lSq, float64(nl)) -
				float64(nr)/fn*sdFromSums(rSum, rSq, float64(nr))
			if sdr > best.Reduction {
				best = Split{
					Feature:   f,
					Threshold: (pairs[k].v + pairs[k+1].v) / 2,
					Reduction: sdr,
				}
			}
		}
	}
	if best.Reduction < 0 {
		return Split{}, false
	}
	return best, true
}

// sdFromSums computes a population standard deviation from Σy, Σy², n,
// clamping tiny negative variance from floating-point cancellation.
func sdFromSums(sum, sumSq, n float64) float64 {
	mean := sum / n
	v := sumSq/n - mean*mean
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Partition splits idx in two by the given split, preserving order.
func Partition(X [][]float64, idx []int, s Split) (left, right []int) {
	for _, i := range idx {
		if X[i][s.Feature] <= s.Threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	return left, right
}

// SD returns the population standard deviation of y over idx.
func SD(y []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, i := range idx {
		sum += y[i]
		sumSq += y[i] * y[i]
	}
	return sdFromSums(sum, sumSq, float64(len(idx)))
}

// Mean returns the mean of y over idx (0 for empty idx).
func Mean(y []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	var s float64
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}
