// Package treeutil holds the split-search machinery shared by the two
// tree learners (M5P and REP-Tree): both grow regression trees by
// maximizing the reduction of target variance across a binary split on a
// numeric attribute, differing only in leaf models and pruning.
//
// Tree growth calls BestSplit and Partition once per node over
// thousands of nodes per pipeline run, so both are allocation-free on
// the steady state: sort/suffix scratch is recycled through a
// sync.Pool, the sort is a generics-based pdqsort (no reflect-Swapper
// allocation per feature), and Partition reorders the index slice in
// place instead of building new ones.
package treeutil

import (
	"math"
	"slices"
	"sync"
)

// pair is one (feature value, target) sample of a split scan.
type pair struct{ v, y float64 }

// splitScratch is the per-BestSplit working set, recycled across calls.
type splitScratch struct {
	pairs  []pair
	sufSum []float64
	sufSq  []float64
}

var splitPool = sync.Pool{New: func() any { return new(splitScratch) }}

// grab returns the scratch sized for n rows.
func (s *splitScratch) grab(n int) {
	if cap(s.pairs) < n {
		s.pairs = make([]pair, n)
		s.sufSum = make([]float64, n+1)
		s.sufSq = make([]float64, n+1)
	}
	s.pairs = s.pairs[:n]
	s.sufSum = s.sufSum[:n+1]
	s.sufSq = s.sufSq[:n+1]
}

// Split describes a candidate binary split: rows with
// X[i][Feature] <= Threshold go left.
type Split struct {
	Feature   int
	Threshold float64
	// Reduction is the achieved standard-deviation reduction
	// SDR = sd(S) - Σ |S_i|/|S| * sd(S_i), the M5 split criterion
	// (equivalently ranked to variance reduction).
	Reduction float64
}

// BestSplit searches every feature for the split of idx (row indices into
// X/y) that maximizes the standard-deviation reduction, requiring at
// least minLeaf rows on each side. ok is false when no legal split
// exists (too few rows, or all feature values constant).
func BestSplit(X [][]float64, y []float64, idx []int, minLeaf int) (best Split, ok bool) {
	n := len(idx)
	if minLeaf < 1 {
		minLeaf = 1
	}
	if n < 2*minLeaf {
		return Split{}, false
	}
	dim := len(X[idx[0]])

	// Node-level statistics.
	var sum, sumSq float64
	for _, i := range idx {
		sum += y[i]
		sumSq += y[i] * y[i]
	}
	fn := float64(n)
	nodeSD := sdFromSums(sum, sumSq, fn)

	sc := splitPool.Get().(*splitScratch)
	defer splitPool.Put(sc)
	sc.grab(n)
	pairs := sc.pairs
	// Suffix sums give the right-side statistics by direct accumulation
	// instead of subtracting from the node totals, which suffers
	// catastrophic cancellation when one side dominates.
	sufSum := sc.sufSum
	sufSq := sc.sufSq
	sufSum[n] = 0
	sufSq[n] = 0

	best.Reduction = -1
	for f := 0; f < dim; f++ {
		for k, i := range idx {
			pairs[k] = pair{v: X[i][f], y: y[i]}
		}
		slices.SortFunc(pairs, func(a, b pair) int {
			switch {
			case a.v < b.v:
				return -1
			case a.v > b.v:
				return 1
			}
			return 0
		})
		if pairs[0].v == pairs[n-1].v {
			continue // constant feature
		}
		for k := n - 1; k >= 0; k-- {
			sufSum[k] = sufSum[k+1] + pairs[k].y
			sufSq[k] = sufSq[k+1] + pairs[k].y*pairs[k].y
		}
		var lSum, lSq float64
		for k := 0; k < n-1; k++ {
			lSum += pairs[k].y
			lSq += pairs[k].y * pairs[k].y
			nl := k + 1
			nr := n - nl
			if nl < minLeaf {
				continue
			}
			if nr < minLeaf {
				break
			}
			if pairs[k].v == pairs[k+1].v {
				continue // cannot split between equal values
			}
			rSum := sufSum[k+1]
			rSq := sufSq[k+1]
			sdr := nodeSD -
				float64(nl)/fn*sdFromSums(lSum, lSq, float64(nl)) -
				float64(nr)/fn*sdFromSums(rSum, rSq, float64(nr))
			if sdr > best.Reduction {
				best = Split{
					Feature:   f,
					Threshold: (pairs[k].v + pairs[k+1].v) / 2,
					Reduction: sdr,
				}
			}
		}
	}
	if best.Reduction < 0 {
		return Split{}, false
	}
	return best, true
}

// sdFromSums computes a population standard deviation from Σy, Σy², n,
// clamping tiny negative variance from floating-point cancellation.
func sdFromSums(sum, sumSq, n float64) float64 {
	mean := sum / n
	v := sumSq/n - mean*mean
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// idxPool recycles the temporary buffer of the in-place Partition.
var idxPool = sync.Pool{New: func() any { return new([]int) }}

// Partition splits idx in two by the given split, in place and
// preserving relative order. The returned slices alias idx — callers
// own disjoint index ranges during tree recursion, so reordering
// within the range is free.
func Partition(X [][]float64, idx []int, s Split) (left, right []int) {
	bufp := idxPool.Get().(*[]int)
	if cap(*bufp) < len(idx) {
		*bufp = make([]int, len(idx))
	}
	buf := (*bufp)[:len(idx)]
	nl, nr := 0, 0
	for _, i := range idx {
		if X[i][s.Feature] <= s.Threshold {
			idx[nl] = i
			nl++
		} else {
			buf[nr] = i
			nr++
		}
	}
	copy(idx[nl:], buf[:nr])
	idxPool.Put(bufp)
	return idx[:nl], idx[nl:]
}

// SD returns the population standard deviation of y over idx.
func SD(y []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, i := range idx {
		sum += y[i]
		sumSq += y[i] * y[i]
	}
	return sdFromSums(sum, sumSq, float64(len(idx)))
}

// Mean returns the mean of y over idx (0 for empty idx).
func Mean(y []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	var s float64
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}
