package lssvm

import (
	"math"
	"testing"

	"repro/internal/randx"
)

// benchWide builds a paper-shaped prediction problem: n training rows
// with d standardized-looking features (the F2PM feature width), so the
// kernel evaluation cost — not the 1-dim toy problems above — dominates
// what PredictBatch amortizes.
func benchWide(seed uint64, n, d int) ([][]float64, []float64) {
	src := randx.New(seed)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			row[j] = src.Norm(0, 1)
		}
		X[i] = row
		y[i] = 50*math.Sin(row[0]) + 10*row[1] + src.Norm(0, 1)
	}
	return X, y
}

func benchFitted(b *testing.B, n, d int) *Model {
	b.Helper()
	X, y := benchWide(8, n, d)
	m, err := New(DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkPredictBatch1000 is the batched-prediction headline: 256
// queries against 1000 training points (every LS-SVM point is a
// support vector) through the tiled multi-query kernel path.
func BenchmarkPredictBatch1000(b *testing.B) {
	m := benchFitted(b, 1000, 24)
	queries, _ := benchWide(9, 256, 24)
	out := make([]float64, len(queries))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictBatch(queries, out)
	}
}

// BenchmarkPredictSingleLoop1000 is the per-query baseline the batch
// path is compared against: the same 256 predictions one at a time
// (what PredictBatch did before the tiled path — one full pass over
// the training panel per query).
func BenchmarkPredictSingleLoop1000(b *testing.B) {
	m := benchFitted(b, 1000, 24)
	queries, _ := benchWide(9, 256, 24)
	out := make([]float64, len(queries))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, q := range queries {
			out[j] = m.Predict(q)
		}
	}
}
