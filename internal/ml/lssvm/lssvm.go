// Package lssvm implements the Least-Squares Support-Vector Machine
// (Suykens & Vandewalle 1999; the paper's "SVM2"): the SVM variant whose
// inequality constraints become equalities, so training reduces to one
// symmetric linear system over the kernel matrix
//
//	[ 0   1ᵀ        ] [ b ]   [ 0 ]
//	[ 1   K + I/γ   ] [ α ] = [ y ]
//
// solved here by block elimination with two Cholesky solves:
// A·η = 1, A·ν = y, b = (1ᵀν)/(1ᵀη), α = ν − b·η. Every training point
// becomes a support vector, which is why LS-SVM training cost is cubic in
// n — the reason it sits near plain SVM in the paper's Table III.
package lssvm

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/ml"
	"repro/internal/ml/kernel"
)

// Options tunes the learner.
type Options struct {
	// Gamma is the regularization weight γ (larger = less smoothing).
	Gamma float64
	// Kernel computes similarities on standardized inputs; nil selects
	// RBF with the 1/d heuristic.
	Kernel kernel.Kernel
}

// DefaultOptions returns common LS-SVM settings.
func DefaultOptions() Options { return Options{Gamma: 10} }

// Validate reports option errors.
func (o *Options) Validate() error {
	if o.Gamma <= 0 {
		return fmt.Errorf("lssvm: Gamma must be positive, got %v", o.Gamma)
	}
	return nil
}

// Model is a fitted LS-SVM.
type Model struct {
	opts Options
	kern kernel.Kernel
	std  *kernel.Standardizer

	// trainRows is the flat layout shared by training (Gram), the
	// batched prediction path, and serialization — the only retained
	// copy of the standardized training set (every point is a support
	// vector, so this dominates model memory).
	trainRows *kernel.Rows
	alpha     []float64
	bias      float64

	yMean, yStd float64
	dim         int
	fitted      bool
}

// New returns an unfitted LS-SVM.
func New(opts Options) (*Model, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Model{opts: opts}, nil
}

// Name implements ml.Regressor; the paper's tables call this model "SVM2".
func (m *Model) Name() string { return "svm2" }

// Fit solves the LS-SVM linear system.
func (m *Model) Fit(X [][]float64, y []float64) error {
	dim, err := ml.CheckTrainingSet(X, y)
	if err != nil {
		return err
	}
	n := len(X)

	m.std = kernel.FitStandardizer(X)
	Xs := m.std.ApplyAll(X)

	m.yMean = ml.Mean(y)
	m.yStd = math.Sqrt(ml.Variance(y))
	if m.yStd == 0 {
		m.yStd = 1
	}
	ys := make([]float64, n)
	for i, v := range y {
		ys[i] = (v - m.yMean) / m.yStd
	}

	kern := m.opts.Kernel
	if kern == nil {
		kern = kernel.RBF{Gamma: 1 / float64(dim)}
	}
	m.kern = kern

	rows := kernel.NewRows(Xs)
	a := kernel.MatrixRows(kern, rows)
	ridge := 1 / m.opts.Gamma
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+ridge)
	}

	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	ch, err := mat.NewCholesky(a)
	var eta, nu []float64
	if err == nil {
		if eta, err = ch.Solve(ones); err == nil {
			nu, err = ch.Solve(ys)
		}
	}
	if err != nil {
		// Near-singular kernel matrix: fall back to the jittered solver.
		if eta, err = mat.SolveSPD(a, ones); err != nil {
			return fmt.Errorf("lssvm: solving kernel system: %w", err)
		}
		if nu, err = mat.SolveSPD(a, ys); err != nil {
			return fmt.Errorf("lssvm: solving kernel system: %w", err)
		}
	}
	sumEta := 0.0
	sumNu := 0.0
	for i := 0; i < n; i++ {
		sumEta += eta[i]
		sumNu += nu[i]
	}
	if sumEta == 0 {
		return fmt.Errorf("lssvm: degenerate system (1ᵀη = 0)")
	}
	b := sumNu / sumEta
	alpha := make([]float64, n)
	for i := 0; i < n; i++ {
		alpha[i] = nu[i] - b*eta[i]
	}

	m.trainRows = rows
	m.alpha = alpha
	m.bias = b
	m.dim = dim
	m.fitted = true
	return nil
}

// Predict implements ml.Regressor:
// f(x) = Σ_i α_i k(x_i, x) + b, de-standardized.
func (m *Model) Predict(x []float64) float64 {
	if !m.fitted || len(x) != m.dim {
		return math.NaN()
	}
	scratch := make([]float64, m.dim+len(m.alpha))
	return m.predictInto(x, scratch[:m.dim], scratch[m.dim:])
}

// PredictBatch implements ml.BatchPredictor, reusing one scratch
// buffer across rows and evaluating every training point through the
// batched kernel path.
func (m *Model) PredictBatch(X [][]float64, out []float64) {
	if !m.fitted {
		for i := range X {
			out[i] = math.NaN()
		}
		return
	}
	scratch := make([]float64, m.dim+len(m.alpha))
	xbuf, kbuf := scratch[:m.dim], scratch[m.dim:]
	for i, x := range X {
		if len(x) != m.dim {
			out[i] = math.NaN()
			continue
		}
		out[i] = m.predictInto(x, xbuf, kbuf)
	}
}

// predictInto evaluates one row using caller-provided scratch.
func (m *Model) predictInto(x, xbuf, kbuf []float64) float64 {
	m.std.ApplyInto(x, xbuf)
	kernel.EvalInto(m.kern, m.trainRows, xbuf, kbuf)
	s := m.bias
	for i, a := range m.alpha {
		s += a * kbuf[i]
	}
	return s*m.yStd + m.yMean
}

var (
	_ ml.Regressor      = (*Model)(nil)
	_ ml.BatchPredictor = (*Model)(nil)
)

// lssvmJSON is the serialized model state.
type lssvmJSON struct {
	Options Options         `json:"options"`
	Kernel  json.RawMessage `json:"kernel"`
	Mean    []float64       `json:"mean"`
	Std     []float64       `json:"std"`
	TrainX  [][]float64     `json:"train_x"`
	Alpha   []float64       `json:"alpha"`
	Bias    float64         `json:"bias"`
	YMean   float64         `json:"y_mean"`
	YStd    float64         `json:"y_std"`
	Dim     int             `json:"dim"`
}

// MarshalJSON serializes a fitted LS-SVM (only built-in kernels
// round-trip). Every training point is a support vector, so the payload
// scales with the training-set size.
func (m *Model) MarshalJSON() ([]byte, error) {
	if !m.fitted {
		return nil, ml.ErrNotFitted
	}
	kj, err := kernel.MarshalKernel(m.kern)
	if err != nil {
		return nil, err
	}
	opts := m.opts
	opts.Kernel = nil
	trainX := make([][]float64, m.trainRows.Len())
	for i := range trainX {
		trainX[i] = m.trainRows.Row(i)
	}
	return json.Marshal(lssvmJSON{
		Options: opts, Kernel: kj,
		Mean: m.std.Mean, Std: m.std.Std,
		TrainX: trainX, Alpha: m.alpha, Bias: m.bias,
		YMean: m.yMean, YStd: m.yStd, Dim: m.dim,
	})
}

// UnmarshalJSON restores an LS-SVM serialized by MarshalJSON.
func (m *Model) UnmarshalJSON(data []byte) error {
	var s lssvmJSON
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("lssvm: decoding model: %w", err)
	}
	if s.Dim <= 0 || len(s.TrainX) != len(s.Alpha) {
		return fmt.Errorf("lssvm: malformed serialized model (dim=%d, %d points, %d alphas)",
			s.Dim, len(s.TrainX), len(s.Alpha))
	}
	if len(s.Mean) != s.Dim || len(s.Std) != s.Dim {
		return fmt.Errorf("lssvm: standardizer dimension mismatch")
	}
	for i, tx := range s.TrainX {
		if len(tx) != s.Dim {
			return fmt.Errorf("lssvm: training point %d has %d features, want %d", i, len(tx), s.Dim)
		}
	}
	kern, err := kernel.UnmarshalKernel(s.Kernel)
	if err != nil {
		return err
	}
	m.opts = s.Options
	m.kern = kern
	m.std = &kernel.Standardizer{Mean: s.Mean, Std: s.Std}
	m.trainRows = kernel.NewRows(s.TrainX)
	m.alpha = s.Alpha
	m.bias = s.Bias
	m.yMean = s.YMean
	m.yStd = s.YStd
	m.dim = s.Dim
	m.fitted = true
	return nil
}
