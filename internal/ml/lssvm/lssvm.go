// Package lssvm implements the Least-Squares Support-Vector Machine
// (Suykens & Vandewalle 1999; the paper's "SVM2"): the SVM variant whose
// inequality constraints become equalities, so training reduces to one
// symmetric linear system over the kernel matrix
//
//	[ 0   1ᵀ        ] [ b ]   [ 0 ]
//	[ 1   K + I/γ   ] [ α ] = [ y ]
//
// solved here by block elimination with two Cholesky solves:
// A·η = 1, A·ν = y, b = (1ᵀν)/(1ᵀη), α = ν − b·η. Every training point
// becomes a support vector, which is why LS-SVM training cost is cubic in
// n — the reason it sits near plain SVM in the paper's Table III.
//
// The cubic cost is paid once: the factor is retained with growth
// headroom, and Update extends the fitted model with new training runs
// at O(n²·m) — the kernel border is evaluated against the flat row
// store, the factor grows in place via mat.Cholesky.Extend, and only
// the two O(n²) triangular solves re-run. This is the incremental
// retraining path behind core.Pipeline.Update.
package lssvm

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/ml"
	"repro/internal/ml/kernel"
)

// Options tunes the learner.
type Options struct {
	// Gamma is the regularization weight γ (larger = less smoothing).
	Gamma float64
	// Kernel computes similarities on standardized inputs; nil selects
	// RBF with the 1/d heuristic.
	Kernel kernel.Kernel
	// Standardizer optionally fixes the feature standardization
	// instead of fitting it from the training data. Incremental
	// updates always freeze the initial fit's standardizer (changing
	// it would invalidate every cached kernel value); pinning it here
	// additionally lets a from-scratch Fit reproduce an incrementally
	// updated model exactly, which is how the parity tests cross-check
	// Update.
	Standardizer *kernel.Standardizer
	// DriftThreshold enables standardizer drift detection in Update:
	// when the appended rows' per-feature statistics deviate from the
	// frozen standardizer by more than this much — mean shifted by more
	// than DriftThreshold frozen σ, or σ ratio off 1 by more than
	// DriftThreshold — the incremental path is abandoned and the model
	// refits from scratch on the combined history with freshly fitted
	// statistics (unless Standardizer is pinned, which wins). 0
	// disables detection; the outcome of each Update is reported via
	// LastUpdate. Batches smaller than ml.DriftSigmaMinBatch rows score
	// only the mean shift — their sample σ is too noisy to trust.
	DriftThreshold float64
}

// DefaultOptions returns common LS-SVM settings.
func DefaultOptions() Options { return Options{Gamma: 10} }

// Validate reports option errors.
func (o *Options) Validate() error {
	if o.Gamma <= 0 {
		return fmt.Errorf("lssvm: Gamma must be positive, got %v", o.Gamma)
	}
	if o.DriftThreshold < 0 {
		return fmt.Errorf("lssvm: DriftThreshold must be non-negative, got %v", o.DriftThreshold)
	}
	return nil
}

// Model is a fitted LS-SVM.
type Model struct {
	opts Options
	kern kernel.Kernel
	std  *kernel.Standardizer

	// trainRows is the flat layout shared by training (Gram), the
	// batched prediction path, and serialization — the only retained
	// copy of the standardized training set (every point is a support
	// vector, so this dominates model memory).
	trainRows *kernel.Rows
	alpha     []float64
	bias      float64

	yMean, yStd float64
	dim         int
	fitted      bool

	// Incremental-retraining state: the Cholesky factor of the
	// regularized kernel system (grown in place by Update), the total
	// diagonal shift it was factored with (ridge plus any jitter), and
	// the raw targets, re-standardized over the combined history on
	// every update. chol is nil on a deserialized model and rebuilt
	// lazily by the first Update.
	chol    *mat.Cholesky
	diagAdd float64
	yRaw    []float64

	// lastUpdate reports what the latest Update call did (drift score
	// of the appended batch, incremental vs drift-triggered refit).
	lastUpdate ml.UpdateInfo
}

// New returns an unfitted LS-SVM.
func New(opts Options) (*Model, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Model{opts: opts}, nil
}

// Name implements ml.Regressor; the paper's tables call this model "SVM2".
func (m *Model) Name() string { return "svm2" }

// pool recycles factor buffers, border blocks and prediction scratch
// across models: the training pipeline fits and retrains many LS-SVMs
// on same-sized data, so recycled buffers stay warm.
var pool = &mat.Pool{}

// growHeadroom returns the factor capacity Fit reserves for n training
// rows: ~12% spare so the typical incremental batches extend the
// factor fully in place.
func growHeadroom(n int) int { return n + n/8 + 32 }

// Fit solves the LS-SVM linear system. The Cholesky factor of the
// regularized kernel matrix is retained (with spare capacity), so a
// later Update extends it at a cost scaling with the new rows.
func (m *Model) Fit(X [][]float64, y []float64) error {
	dim, err := ml.CheckTrainingSet(X, y)
	if err != nil {
		return err
	}
	n := len(X)

	std := m.opts.Standardizer
	if std == nil {
		std = kernel.FitStandardizer(X)
	} else if len(std.Mean) != dim || len(std.Std) != dim {
		return fmt.Errorf("lssvm: pinned standardizer has dimension %d, want %d", len(std.Mean), dim)
	}
	Xs := std.ApplyAll(X)

	kern := m.opts.Kernel
	if kern == nil {
		kern = kernel.RBF{Gamma: 1 / float64(dim)}
	}

	// The Gram is factorization scratch here — the factor copies the
	// triangle out — so it is drawn from and returned to the pool.
	rows := kernel.NewRows(Xs)
	a := kernel.MatrixRowsPooled(kern, rows, pool)
	ridge := 1 / m.opts.Gamma
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+ridge)
	}
	ch, jitter, err := mat.NewCholeskyJittered(a, growHeadroom(n), pool)
	pool.PutDense(a)
	if err != nil {
		return fmt.Errorf("lssvm: solving kernel system: %w", err)
	}
	sol, err := solveSystem(ch, y)
	if err != nil {
		return err
	}

	// Commit only now: a failure above leaves a previously fitted
	// model fully usable.
	m.std = std
	m.kern = kern
	m.trainRows = rows
	m.dim = dim
	m.chol = ch
	m.diagAdd = ridge + jitter
	m.yRaw = ml.CloneVector(y)
	m.applySolution(sol)
	m.fitted = true
	m.lastUpdate = ml.UpdateInfo{} // a fresh fit resets the update report
	return nil
}

// solution is the model state derived from a factor and raw targets.
type solution struct {
	alpha       []float64
	bias        float64
	yMean, yStd float64
}

// solveSystem derives the bias and dual coefficients from a factor and
// the raw targets: the targets are standardized over the full history,
// then the block elimination runs its two triangular solves — O(n²),
// the cheap tail of both Fit and Update. It mutates nothing, so
// callers commit results only on success.
func solveSystem(ch *mat.Cholesky, yRaw []float64) (solution, error) {
	n := len(yRaw)
	sol := solution{yMean: ml.Mean(yRaw), yStd: math.Sqrt(ml.Variance(yRaw))}
	if sol.yStd == 0 {
		sol.yStd = 1
	}
	ys := make([]float64, n)
	ones := make([]float64, n)
	for i, v := range yRaw {
		ys[i] = (v - sol.yMean) / sol.yStd
		ones[i] = 1
	}
	// One combined pass for both right-hand sides: the factor's memory
	// traffic dominates large solves and is paid once.
	eta, nu, err := ch.Solve2(ones, ys)
	if err != nil {
		return sol, fmt.Errorf("lssvm: solving kernel system: %w", err)
	}
	sumEta := 0.0
	sumNu := 0.0
	for i := 0; i < n; i++ {
		sumEta += eta[i]
		sumNu += nu[i]
	}
	if sumEta == 0 {
		return sol, fmt.Errorf("lssvm: degenerate system (1ᵀη = 0)")
	}
	sol.bias = sumNu / sumEta
	sol.alpha = nu
	for i := 0; i < n; i++ {
		sol.alpha[i] = nu[i] - sol.bias*eta[i]
	}
	return sol, nil
}

// applySolution installs a solved coefficient set.
func (m *Model) applySolution(sol solution) {
	m.alpha = sol.alpha
	m.bias = sol.bias
	m.yMean = sol.yMean
	m.yStd = sol.yStd
}

// Update implements ml.IncrementalRegressor: new training runs extend
// the fitted model in place instead of triggering a from-scratch
// retrain. The flat row store grows by the standardized new rows, the
// kernel border (new×old and new×new blocks only) is evaluated, and
// the Cholesky factor of the regularized system is extended with a
// bordered factorization — O(n²·m) for m new rows against O(n³/3) for
// a rebuild. The feature standardizer and kernel are frozen at the
// initial Fit (a from-scratch Fit with Options.Standardizer pinned to
// the same statistics reproduces the updated model); the target
// standardization is recomputed exactly over the combined history.
//
// On error the model is unchanged and still usable; a caller that
// needs the new data anyway should fall back to Fit on the combined
// training set.
func (m *Model) Update(Xnew [][]float64, ynew []float64) error {
	if !m.fitted {
		return ml.ErrNotFitted
	}
	if len(Xnew) == 0 && len(ynew) == 0 {
		return nil
	}
	dim, err := ml.CheckTrainingSet(Xnew, ynew)
	if err != nil {
		return err
	}
	if dim != m.dim {
		return fmt.Errorf("lssvm: appended rows have %d features, want %d", dim, m.dim)
	}
	if m.chol == nil {
		// Deserialized model: rebuild the factor once, then extend.
		if err := m.rebuildFactor(); err != nil {
			return err
		}
	}
	oldN := m.trainRows.Len()
	mNew := len(Xnew)
	Xs := m.std.ApplyAll(Xnew)

	// Standardizer drift check (on the standardized batch, where the
	// frozen statistics predict mean 0 / σ 1 per feature): past the
	// threshold the incremental path would keep standardizing new data
	// with stale statistics, so refit from scratch instead.
	// Drift is still measured (and reported) with a pinned standardizer,
	// but never acted on: a refit would reuse the pinned statistics and
	// reproduce the incremental result at O(n³) — the pin wins.
	drift := driftScore(Xs)
	if m.opts.DriftThreshold > 0 && drift > m.opts.DriftThreshold && m.opts.Standardizer == nil {
		if err := m.refitCombined(Xnew, ynew); err != nil {
			return err
		}
		m.lastUpdate = ml.UpdateInfo{DriftScore: drift, DriftRefit: true}
		return nil
	}
	if err := m.trainRows.Append(Xs); err != nil {
		return err
	}
	if err := m.extendFactor(m.trainRows, oldN, mNew); err != nil {
		m.trainRows.Truncate(oldN)
		return err
	}
	combined := append(m.yRaw, ynew...)
	sol, err := solveSystem(m.chol, combined)
	if err != nil {
		// Roll the extension back; the model keeps its previous fit.
		m.trainRows.Truncate(oldN)
		m.chol.Truncate(oldN)
		return err
	}
	m.yRaw = combined
	m.applySolution(sol)
	m.lastUpdate = ml.UpdateInfo{Incremental: true, DriftScore: drift}
	return nil
}

// extendFactor evaluates the kernel border for the mNew rows of r
// after oldN and extends the Cholesky factor in place, escalating a
// diagonal jitter on the new block when the border breaks positive
// definiteness (the factored history keeps its original shift). All
// pooled border scratch is returned on every path. On error the factor
// is unchanged; the caller rolls back its row store.
func (m *Model) extendFactor(r *kernel.Rows, oldN, mNew int) error {
	a21 := pool.GetDense(mNew, oldN)
	a22 := pool.GetDense(mNew, mNew)
	kernel.GramBorder(m.kern, r, oldN, a21, a22)
	for i := 0; i < mNew; i++ {
		a22.Set(i, i, a22.At(i, i)+m.diagAdd)
	}
	err := m.chol.Extend(a21, a22, pool)
	jitter := 1e-10 * (m.diagAdd + 1)
	for attempt := 0; err == mat.ErrNotPositiveDefinite && attempt < 8; attempt++ {
		for i := 0; i < mNew; i++ {
			a22.Set(i, i, a22.At(i, i)+jitter)
		}
		err = m.chol.Extend(a21, a22, pool)
		jitter *= 100
	}
	pool.PutDense(a21)
	pool.PutDense(a22)
	if err != nil {
		return fmt.Errorf("lssvm: extending kernel system: %w", err)
	}
	return nil
}

// LastUpdate implements ml.UpdateReporter.
func (m *Model) LastUpdate() ml.UpdateInfo { return m.lastUpdate }

// PinPreprocessing implements ml.PreprocessPinner: the receiver's next
// Fit reuses src's frozen feature standardizer, so a from-scratch fit
// on the combined window reproduces an incrementally updated model
// exactly — the cross-check behind the update parity tests.
func (m *Model) PinPreprocessing(src ml.Regressor) error {
	s, ok := src.(*Model)
	if !ok {
		return fmt.Errorf("lssvm: cannot pin preprocessing from %T", src)
	}
	if !s.fitted {
		return ml.ErrNotFitted
	}
	m.opts.Standardizer = &kernel.Standardizer{
		Mean: append([]float64(nil), s.std.Mean...),
		Std:  append([]float64(nil), s.std.Std...),
	}
	return nil
}

// driftScore delegates to the shared ml.DriftScore (the logic moved
// there when the ε-SVR grew the same drift check).
func driftScore(Xs [][]float64) float64 { return ml.DriftScore(Xs) }

// refitCombined retrains from scratch on the retained history plus the
// new rows, with freshly fitted statistics (the drift-triggered refit
// path). The retained rows are de-standardized back to raw feature
// space first; on error the previous fit stays intact.
func (m *Model) refitCombined(Xnew [][]float64, ynew []float64) error {
	n := m.trainRows.Len()
	X := make([][]float64, 0, n+len(Xnew))
	for i := 0; i < n; i++ {
		xs := m.trainRows.Row(i)
		raw := make([]float64, m.dim)
		for j, v := range xs {
			raw[j] = v*m.std.Std[j] + m.std.Mean[j]
		}
		X = append(X, raw)
	}
	X = append(X, Xnew...)
	y := make([]float64, 0, n+len(ynew))
	y = append(y, m.yRaw...)
	y = append(y, ynew...)
	return m.Fit(X, y)
}

// rebuildFactor refactors the full regularized kernel system from the
// stored training rows — the one-time O(n³) cost a deserialized model
// pays before its first incremental update.
func (m *Model) rebuildFactor() error {
	if len(m.yRaw) != m.trainRows.Len() {
		return fmt.Errorf("lssvm: restored model carries no targets; refit before Update")
	}
	a := kernel.MatrixRowsPooled(m.kern, m.trainRows, pool)
	ridge := 1 / m.opts.Gamma
	for i := 0; i < a.Rows(); i++ {
		a.Set(i, i, a.At(i, i)+ridge)
	}
	ch, jitter, err := mat.NewCholeskyJittered(a, growHeadroom(a.Rows()), pool)
	pool.PutDense(a)
	if err != nil {
		return fmt.Errorf("lssvm: refactoring kernel system: %w", err)
	}
	m.chol = ch
	m.diagAdd = ridge + jitter
	return nil
}

// Predict implements ml.Regressor:
// f(x) = Σ_i α_i k(x_i, x) + b, de-standardized. Scratch comes from
// the shared pool, so single-sample prediction is allocation-free
// after warm-up — the live-monitoring hot path.
func (m *Model) Predict(x []float64) float64 {
	if !m.fitted || len(x) != m.dim {
		return math.NaN()
	}
	scratch := pool.GetVec(m.dim + len(m.alpha))
	out := m.predictInto(x, scratch[:m.dim], scratch[m.dim:])
	pool.PutVec(scratch)
	return out
}

// predictTile is the query-block size of the batched prediction path
// (matching svm's): enough rows to amortize the training-row panel
// traffic through the two-row register tile.
const predictTile = 32

// PredictBatch implements ml.BatchPredictor: queries are staged in
// blocks of predictTile and evaluated against every training point in
// one tiled kernel.EvalBatchFlat pass per block, so the training-row
// panel is read once per query pair instead of once per query. Rows of
// the wrong dimension yield NaN without disturbing the block.
func (m *Model) PredictBatch(X [][]float64, out []float64) {
	if !m.fitted {
		for i := range X {
			out[i] = math.NaN()
		}
		return
	}
	n := m.trainRows.Len()
	stride := m.trainRows.Stride()
	scratch := pool.GetVec(predictTile*stride + predictTile + predictTile*n)
	qbuf := scratch[:predictTile*stride]
	qnorms := scratch[predictTile*stride : predictTile*stride+predictTile]
	kbuf := scratch[predictTile*stride+predictTile:]
	for base := 0; base < len(X); base += predictTile {
		cnt := min(predictTile, len(X)-base)
		var bad [predictTile]bool
		qn := 0
		for bi := 0; bi < cnt; bi++ {
			x := X[base+bi]
			if len(x) != m.dim {
				bad[bi] = true
				out[base+bi] = math.NaN()
				continue
			}
			dst := qbuf[qn*stride : (qn+1)*stride]
			m.std.ApplyInto(x, dst[:m.dim])
			clear(dst[m.dim:]) // pool scratch: the padding must be zero
			qnorms[qn] = mat.Dot(dst, dst)
			qn++
		}
		kernel.EvalBatchFlat(m.kern, m.trainRows, qbuf, qnorms, qn, kbuf)
		qi := 0
		for bi := 0; bi < cnt; bi++ {
			if bad[bi] {
				continue
			}
			s := m.bias + mat.Dot(m.alpha, kbuf[qi*n:(qi+1)*n])
			out[base+bi] = s*m.yStd + m.yMean
			qi++
		}
	}
	pool.PutVec(scratch)
}

// predictInto evaluates one row using caller-provided scratch.
func (m *Model) predictInto(x, xbuf, kbuf []float64) float64 {
	m.std.ApplyInto(x, xbuf)
	kernel.EvalInto(m.kern, m.trainRows, xbuf, kbuf)
	s := m.bias + mat.Dot(m.alpha, kbuf)
	return s*m.yStd + m.yMean
}

var (
	_ ml.Regressor            = (*Model)(nil)
	_ ml.BatchPredictor       = (*Model)(nil)
	_ ml.IncrementalRegressor = (*Model)(nil)
	_ ml.UpdateReporter       = (*Model)(nil)
)

// lssvmJSON is the serialized model state. TrainY carries the raw
// targets so a restored model can keep taking incremental updates
// (absent in payloads from older versions, which then require a refit
// before Update).
type lssvmJSON struct {
	Options Options         `json:"options"`
	Kernel  json.RawMessage `json:"kernel"`
	Mean    []float64       `json:"mean"`
	Std     []float64       `json:"std"`
	TrainX  [][]float64     `json:"train_x"`
	TrainY  []float64       `json:"train_y,omitempty"`
	Alpha   []float64       `json:"alpha"`
	Bias    float64         `json:"bias"`
	YMean   float64         `json:"y_mean"`
	YStd    float64         `json:"y_std"`
	Dim     int             `json:"dim"`
}

// MarshalJSON serializes a fitted LS-SVM (only built-in kernels
// round-trip). Every training point is a support vector, so the payload
// scales with the training-set size.
func (m *Model) MarshalJSON() ([]byte, error) {
	if !m.fitted {
		return nil, ml.ErrNotFitted
	}
	kj, err := kernel.MarshalKernel(m.kern)
	if err != nil {
		return nil, err
	}
	opts := m.opts
	opts.Kernel = nil
	opts.Standardizer = nil // carried by Mean/Std
	trainX := make([][]float64, m.trainRows.Len())
	for i := range trainX {
		trainX[i] = m.trainRows.Row(i)
	}
	return json.Marshal(lssvmJSON{
		Options: opts, Kernel: kj,
		Mean: m.std.Mean, Std: m.std.Std,
		TrainX: trainX, TrainY: m.yRaw, Alpha: m.alpha, Bias: m.bias,
		YMean: m.yMean, YStd: m.yStd, Dim: m.dim,
	})
}

// UnmarshalJSON restores an LS-SVM serialized by MarshalJSON.
func (m *Model) UnmarshalJSON(data []byte) error {
	var s lssvmJSON
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("lssvm: decoding model: %w", err)
	}
	if s.Dim <= 0 || len(s.TrainX) != len(s.Alpha) {
		return fmt.Errorf("lssvm: malformed serialized model (dim=%d, %d points, %d alphas)",
			s.Dim, len(s.TrainX), len(s.Alpha))
	}
	if len(s.TrainY) != 0 && len(s.TrainY) != len(s.TrainX) {
		return fmt.Errorf("lssvm: %d targets for %d training points", len(s.TrainY), len(s.TrainX))
	}
	if len(s.Mean) != s.Dim || len(s.Std) != s.Dim {
		return fmt.Errorf("lssvm: standardizer dimension mismatch")
	}
	for i, tx := range s.TrainX {
		if len(tx) != s.Dim {
			return fmt.Errorf("lssvm: training point %d has %d features, want %d", i, len(tx), s.Dim)
		}
	}
	kern, err := kernel.UnmarshalKernel(s.Kernel)
	if err != nil {
		return err
	}
	m.opts = s.Options
	m.kern = kern
	m.std = &kernel.Standardizer{Mean: s.Mean, Std: s.Std}
	m.trainRows = kernel.NewRows(s.TrainX)
	m.alpha = s.Alpha
	m.bias = s.Bias
	m.yMean = s.YMean
	m.yStd = s.YStd
	m.dim = s.Dim
	m.yRaw = s.TrainY
	m.chol = nil // rebuilt lazily by the first Update
	m.diagAdd = 0
	m.fitted = true
	return nil
}
