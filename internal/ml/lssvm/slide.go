package lssvm

import (
	"fmt"

	"repro/internal/ml"
)

// Sliding-window retraining: the grow-only incremental path (Update)
// made retrain cost scale with the new rows; this file makes *memory*
// scale with the window. SlideWindow appends new training runs and
// evicts the oldest ones in one O(n²·moved) operation — the kernel
// border extends the factor in place (mat.Cholesky.Extend), the
// evicted rows leave it through the Householder downdating sweep
// (mat.Cholesky.Downdate), the flat row store advances its ring head
// (kernel.Rows.EvictFront), and only the two O(n²) triangular solves
// re-run. Steady-state slides run entirely inside the buffer headroom
// the initial Fit reserved: no growth in factor or row-store capacity,
// which is what lets a deployment retrain continuously for weeks.

// Downdate evicts the k oldest training rows from the fitted model:
// the factor shrinks via the downdating sweep, the row store advances
// its head, the target standardization is recomputed exactly over the
// surviving window, and the system re-solves. Equivalent to
// SlideWindow(nil, nil, k).
func (m *Model) Downdate(k int) error { return m.SlideWindow(nil, nil, k) }

// SlideWindow extends the fitted model with the new rows and evicts
// the evict oldest ones — the bounded-memory retraining step behind
// core.Pipeline's WindowPolicy. The result matches a from-scratch Fit
// on the surviving window (evicted prefix dropped, new rows appended)
// with the same frozen standardizer, at a cost scaling with the rows
// moved rather than the history. At least one row must survive.
//
// Standardizer drift is handled as in Update: past
// Options.DriftThreshold (and without a pinned standardizer) the
// incremental path is abandoned and the model refits from scratch on
// the surviving window with fresh statistics — the window, not the
// full history, so the refit is bounded too.
//
// On error the model is unchanged and still usable; at worst the
// cached factor is dropped and rebuilt lazily by the next successful
// update.
func (m *Model) SlideWindow(Xnew [][]float64, ynew []float64, evict int) error {
	if !m.fitted {
		return ml.ErrNotFitted
	}
	oldN := m.trainRows.Len()
	if evict < 0 || evict > oldN {
		return fmt.Errorf("lssvm: evicting %d of %d training rows", evict, oldN)
	}
	mNew := len(Xnew)
	if mNew == 0 && len(ynew) != 0 {
		return fmt.Errorf("%w: 0 rows vs %d targets", ml.ErrDimension, len(ynew))
	}
	if mNew > 0 {
		dim, err := ml.CheckTrainingSet(Xnew, ynew)
		if err != nil {
			return err
		}
		if dim != m.dim {
			return fmt.Errorf("lssvm: appended rows have %d features, want %d", dim, m.dim)
		}
	}
	if oldN-evict+mNew < 1 {
		return fmt.Errorf("lssvm: window slide leaves no training rows")
	}
	if mNew == 0 && evict == 0 {
		return nil
	}
	if m.chol == nil {
		if err := m.rebuildFactor(); err != nil {
			return err
		}
	}

	var drift float64
	var Xs [][]float64
	if mNew > 0 {
		Xs = m.std.ApplyAll(Xnew)
		drift = driftScore(Xs)
		if m.opts.DriftThreshold > 0 && drift > m.opts.DriftThreshold && m.opts.Standardizer == nil {
			if err := m.refitWindow(evict, Xnew, ynew); err != nil {
				return err
			}
			m.lastUpdate = ml.UpdateInfo{DriftScore: drift, DriftRefit: true, Evicted: evict}
			return nil
		}
		// Stage the new rows in the store first (rolled back by
		// Truncate on any failure below); the factor work happens on
		// the already-shrunk system, which is cheaper at both ends.
		if err := m.trainRows.Append(Xs); err != nil {
			return err
		}
	}
	oldDiagAdd := m.diagAdd
	if evict > 0 {
		shift, err := m.chol.Downdate(evict, pool)
		if err != nil {
			// The sweep mutates in place, so the factor is lost — but
			// the training data is not: roll the rows back and drop the
			// factor cache; the next update rebuilds it lazily.
			m.trainRows.Truncate(oldN)
			m.chol = nil
			return fmt.Errorf("lssvm: downdating kernel system: %w", err)
		}
		// A fallback re-factorization may have jittered the surviving
		// block; future borders must carry the same total shift. (The
		// shift is rolled back with the factor if a later step fails —
		// a lazily rebuilt factor recomputes its own.)
		m.diagAdd += shift
	}
	if mNew > 0 {
		// The kernel border is evaluated against the surviving window
		// only, through a zero-copy tail view of the row store (the
		// eviction itself commits last).
		if err := m.extendFactor(m.trainRows.Tail(evict), oldN-evict, mNew); err != nil {
			m.trainRows.Truncate(oldN)
			m.chol = nil // downdated but not extended: no longer matches the rows
			m.diagAdd = oldDiagAdd
			return err
		}
	}
	newY := make([]float64, 0, oldN-evict+mNew)
	newY = append(newY, m.yRaw[evict:]...)
	newY = append(newY, ynew...)
	sol, err := solveSystem(m.chol, newY)
	if err != nil {
		m.trainRows.Truncate(oldN)
		m.chol = nil
		m.diagAdd = oldDiagAdd
		return err
	}
	// Commit: the row store's head advances past the evicted prefix
	// (O(1); the space is reclaimed by a later append's compaction).
	m.trainRows.EvictFront(evict)
	m.yRaw = newY
	m.applySolution(sol)
	m.lastUpdate = ml.UpdateInfo{Incremental: true, DriftScore: drift, Evicted: evict}
	return nil
}

// UpdateWindow implements ml.WindowedRegressor: the model retains its
// training window, so only the evicted-row count matters.
func (m *Model) UpdateWindow(Xnew [][]float64, ynew []float64, evictX [][]float64, evictY []float64) error {
	if len(evictX) != len(evictY) {
		return fmt.Errorf("%w: %d evicted rows vs %d targets", ml.ErrDimension, len(evictX), len(evictY))
	}
	return m.SlideWindow(Xnew, ynew, len(evictX))
}

var _ ml.WindowedRegressor = (*Model)(nil)

// refitWindow retrains from scratch on the surviving window plus the
// new rows, with freshly fitted statistics — the drift-triggered refit
// of the sliding path. The surviving rows are de-standardized back to
// raw feature space first; on error the previous fit stays intact.
func (m *Model) refitWindow(evict int, Xnew [][]float64, ynew []float64) error {
	n := m.trainRows.Len()
	X := make([][]float64, 0, n-evict+len(Xnew))
	for i := evict; i < n; i++ {
		xs := m.trainRows.Row(i)
		raw := make([]float64, m.dim)
		for j, v := range xs {
			raw[j] = v*m.std.Std[j] + m.std.Mean[j]
		}
		X = append(X, raw)
	}
	X = append(X, Xnew...)
	y := make([]float64, 0, n-evict+len(ynew))
	y = append(y, m.yRaw[evict:]...)
	y = append(y, ynew...)
	return m.Fit(X, y)
}

// FactorCap returns the capacity dimension of the retained Cholesky
// factor and RowCap the row capacity of the flat training-row store
// (0 when the factor is not materialized). Sliding-window tests and
// benchmarks assert both stay flat across slide cycles.
func (m *Model) FactorCap() int {
	if m.chol == nil {
		return 0
	}
	return m.chol.Cap()
}

// RowCap returns the row capacity of the flat training-row store.
func (m *Model) RowCap() int {
	if m.trainRows == nil {
		return 0
	}
	return m.trainRows.Cap()
}
