package lssvm

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/ml"
	"repro/internal/ml/kernel"
	"repro/internal/randx"
)

// multiData builds a d-dimensional smooth regression problem.
func multiData(src *randx.Source, n, d int) (X [][]float64, y []float64) {
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		var s float64
		for j := range row {
			row[j] = src.Uniform(-2, 2)
			s += row[j] * math.Sin(float64(j+1)*row[j])
		}
		X = append(X, row)
		y = append(y, s+src.Norm(0, 0.05))
	}
	return X, y
}

// updateKernels is the roster the incremental retrain is pinned over.
func updateKernels(d int) []kernel.Kernel {
	return []kernel.Kernel{
		kernel.Linear{},
		kernel.RBF{Gamma: 1 / float64(d)},
		kernel.Poly{Degree: 2, Scale: 0.5, Coef0: 1},
	}
}

// TestUpdateMatchesPinnedFit pins the incremental Update to its
// from-scratch counterpart: a Fit over the combined data with the same
// (frozen) standardizer, for every built-in kernel, including repeated
// small appends.
func TestUpdateMatchesPinnedFit(t *testing.T) {
	src := randx.New(31)
	const d, base, total = 4, 120, 180
	X, y := multiData(src, total, d)
	Xq, _ := multiData(src, 40, d)
	std := kernel.FitStandardizer(X[:base])

	for _, k := range updateKernels(d) {
		opts := DefaultOptions()
		opts.Kernel = k
		opts.Standardizer = std

		inc, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := inc.Fit(X[:base], y[:base]); err != nil {
			t.Fatalf("%s: fit: %v", k.Name(), err)
		}
		// Three appends of uneven size, the streaming pattern.
		for _, cut := range [][2]int{{base, base + 7}, {base + 7, base + 40}, {base + 40, total}} {
			if err := inc.Update(X[cut[0]:cut[1]], y[cut[0]:cut[1]]); err != nil {
				t.Fatalf("%s: update [%d:%d]: %v", k.Name(), cut[0], cut[1], err)
			}
		}

		ref, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.Fit(X, y); err != nil {
			t.Fatalf("%s: combined fit: %v", k.Name(), err)
		}

		for i, q := range Xq {
			got, want := inc.Predict(q), ref.Predict(q)
			if d := math.Abs(got - want); d > 1e-8 {
				t.Fatalf("%s: query %d: incremental %g vs from-scratch %g (diff %g)",
					k.Name(), i, got, want, d)
			}
		}
		if inc.bias != inc.bias || math.Abs(inc.bias-ref.bias) > 1e-8 {
			t.Fatalf("%s: bias %g vs %g", k.Name(), inc.bias, ref.bias)
		}
		for i := range ref.alpha {
			if d := math.Abs(inc.alpha[i] - ref.alpha[i]); d > 1e-8 {
				t.Fatalf("%s: alpha[%d] diff %g", k.Name(), i, d)
			}
		}
	}
}

// TestUpdateDefaultStandardizer checks the documented frozen-
// standardizer semantics without pinning: Update keeps the initial
// fit's statistics and still tracks the target function.
func TestUpdateDefaultStandardizer(t *testing.T) {
	src := randx.New(32)
	X, y := multiData(src, 200, 3)
	m, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X[:150], y[:150]); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(X[150:], y[150:]); err != nil {
		t.Fatal(err)
	}
	Xq, yq := multiData(src, 60, 3)
	if e := mae(m, Xq, yq); e > 0.5 {
		t.Fatalf("updated model MAE %g", e)
	}
	// The raw history must cover every appended row.
	if len(m.yRaw) != 200 || m.trainRows.Len() != 200 {
		t.Fatalf("history %d rows / %d targets", m.trainRows.Len(), len(m.yRaw))
	}
}

// TestUpdateErrors covers the failure contract.
func TestUpdateErrors(t *testing.T) {
	src := randx.New(33)
	X, y := multiData(src, 60, 3)
	m, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Update(X[:2], y[:2]); err == nil {
		t.Fatal("expected error before Fit")
	}
	if err := m.Fit(X[:50], y[:50]); err != nil {
		t.Fatal(err)
	}
	if err := m.Update([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("expected dimension error")
	}
	if err := m.Update(nil, nil); err != nil {
		t.Fatalf("empty update: %v", err)
	}
	if m.trainRows.Len() != 50 {
		t.Fatalf("row count changed to %d", m.trainRows.Len())
	}
}

// TestUpdateAfterRoundTrip checks a deserialized model (factor
// discarded) rebuilds it and keeps accepting updates.
func TestUpdateAfterRoundTrip(t *testing.T) {
	src := randx.New(34)
	const d = 3
	X, y := multiData(src, 160, d)
	std := kernel.FitStandardizer(X[:100])
	opts := DefaultOptions()
	opts.Standardizer = std

	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X[:100], y[:100]); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Update(X[100:], y[100:]); err != nil {
		t.Fatalf("update after round-trip: %v", err)
	}
	ref, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	Xq, _ := multiData(src, 30, d)
	for i, q := range Xq {
		if diff := math.Abs(back.Predict(q) - ref.Predict(q)); diff > 1e-8 {
			t.Fatalf("query %d: diff %g", i, diff)
		}
	}
}

// TestPredictAllocationFree pins the pooled scratch path: after
// warm-up, single-sample prediction must not allocate.
func TestPredictAllocationFree(t *testing.T) {
	src := randx.New(35)
	X, y := multiData(src, 80, 5)
	m, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	q := X[3]
	m.Predict(q) // warm the pool
	if allocs := testing.AllocsPerRun(50, func() { m.Predict(q) }); allocs > 0 {
		t.Fatalf("Predict allocates %v times per call", allocs)
	}
}

// benchRetrainData is the shared n=1050 problem of the retrain
// benchmarks: a 1000-row history plus a 50-row append (5%).
func benchRetrainData() ([][]float64, []float64) {
	src := randx.New(77)
	return multiData(src, 1050, 30)
}

// BenchmarkRetrainAppend measures the incremental retrain: append 50
// rows (5%) to a fitted n=1000 history via Update. The from-scratch
// counterpart is BenchmarkRetrainScratch.
func BenchmarkRetrainAppend(b *testing.B) {
	X, y := benchRetrainData()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, err := New(DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Fit(X[:1000], y[:1000]); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := m.Update(X[1000:], y[1000:]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRetrainScratch is the from-scratch rebuild on the combined
// n=1050 data that BenchmarkRetrainAppend's Update replaces.
func BenchmarkRetrainScratch(b *testing.B) {
	X, y := benchRetrainData()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := New(DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

// TestUpdateDriftDetection covers the standardizer drift gate: an
// in-distribution append keeps the incremental path, a far-shifted
// append past DriftThreshold triggers a full refit with fresh
// statistics, and the refit model matches a from-scratch Fit on the
// combined data exactly.
func TestUpdateDriftDetection(t *testing.T) {
	src := randx.New(7)
	const d, base = 4, 100
	X, y := multiData(src, base, d)
	Xq, _ := multiData(src, 30, d)

	opts := DefaultOptions()
	opts.DriftThreshold = 2 // generous: in-distribution batches stay under
	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := m.LastUpdate(); got != (ml.UpdateInfo{}) {
		t.Fatalf("LastUpdate before any Update: %+v", got)
	}

	// In-distribution append: incremental, no refit.
	Xin, yin := multiData(src, 25, d)
	if err := m.Update(Xin, yin); err != nil {
		t.Fatal(err)
	}
	info := m.LastUpdate()
	if !info.Incremental || info.DriftRefit {
		t.Fatalf("in-distribution update: %+v", info)
	}
	if info.DriftScore <= 0 || info.DriftScore > opts.DriftThreshold {
		t.Fatalf("in-distribution drift score %v", info.DriftScore)
	}

	// Far-shifted append: every feature moved by ~10 raw units (≫2σ of
	// the Uniform(-2,2) training features) must trip the gate.
	Xfar, yfar := multiData(src, 25, d)
	for i := range Xfar {
		for j := range Xfar[i] {
			Xfar[i][j] += 10
		}
	}
	if err := m.Update(Xfar, yfar); err != nil {
		t.Fatal(err)
	}
	info = m.LastUpdate()
	if !info.DriftRefit || info.Incremental {
		t.Fatalf("shifted update did not trigger a drift refit: %+v", info)
	}
	if info.DriftScore <= opts.DriftThreshold {
		t.Fatalf("drift score %v not above threshold %v", info.DriftScore, opts.DriftThreshold)
	}

	// The refit model must equal a from-scratch Fit on the combined
	// history (fresh statistics on both sides).
	combinedX := append(append(append([][]float64{}, X...), Xin...), Xfar...)
	combinedY := append(append(append([]float64{}, y...), yin...), yfar...)
	ref, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Fit(combinedX, combinedY); err != nil {
		t.Fatal(err)
	}
	for i, q := range Xq {
		got, want := m.Predict(q), ref.Predict(q)
		if math.Abs(got-want) > 1e-8*(1+math.Abs(want)) {
			t.Fatalf("query %d: drift refit predicts %v, from-scratch %v", i, got, want)
		}
	}

	// A single-row in-distribution append must stay incremental even
	// under a tight threshold: tiny batches score only the mean shift
	// (their sample σ is always 0, which must not read as drift).
	mOne, err := New(Options{Gamma: 10, DriftThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := mOne.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	refits := 0
	for i := 0; i < len(Xin); i++ {
		if err := mOne.Update(Xin[i:i+1], yin[i:i+1]); err != nil {
			t.Fatal(err)
		}
		if mOne.LastUpdate().DriftRefit {
			refits++
		}
	}
	// Per-row z-scores occasionally exceed 1, so the odd refit is fine;
	// what must not happen is the σ-term degenerate case where every
	// single-row update refits.
	if refits == len(Xin) {
		t.Fatalf("every single-row append triggered a drift refit (%d/%d)", refits, len(Xin))
	}

	// Disabled detection (threshold 0) keeps the incremental path even
	// under the same shift.
	m2, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := m2.Update(Xfar, yfar); err != nil {
		t.Fatal(err)
	}
	if info := m2.LastUpdate(); !info.Incremental || info.DriftRefit {
		t.Fatalf("threshold 0 still refit: %+v", info)
	}
}

// TestDriftGateRespectsPinnedStandardizer pins that a pinned
// standardizer disables the drift *action*: a refit would reuse the
// pinned statistics and reproduce the incremental result at O(n³), so
// the incremental path must be kept (drift still reported).
func TestDriftGateRespectsPinnedStandardizer(t *testing.T) {
	src := randx.New(11)
	const d, base = 3, 80
	X, y := multiData(src, base, d)

	opts := DefaultOptions()
	opts.Standardizer = kernel.FitStandardizer(X)
	opts.DriftThreshold = 0.5
	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	Xfar, yfar := multiData(src, 20, d)
	for i := range Xfar {
		for j := range Xfar[i] {
			Xfar[i][j] += 10
		}
	}
	if err := m.Update(Xfar, yfar); err != nil {
		t.Fatal(err)
	}
	info := m.LastUpdate()
	if info.DriftRefit || !info.Incremental {
		t.Fatalf("pinned standardizer still acted on drift: %+v", info)
	}
	if info.DriftScore <= opts.DriftThreshold {
		t.Fatalf("drift score %v not reported past threshold", info.DriftScore)
	}
}
