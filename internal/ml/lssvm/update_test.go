package lssvm

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/ml/kernel"
	"repro/internal/randx"
)

// multiData builds a d-dimensional smooth regression problem.
func multiData(src *randx.Source, n, d int) (X [][]float64, y []float64) {
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		var s float64
		for j := range row {
			row[j] = src.Uniform(-2, 2)
			s += row[j] * math.Sin(float64(j+1)*row[j])
		}
		X = append(X, row)
		y = append(y, s+src.Norm(0, 0.05))
	}
	return X, y
}

// updateKernels is the roster the incremental retrain is pinned over.
func updateKernels(d int) []kernel.Kernel {
	return []kernel.Kernel{
		kernel.Linear{},
		kernel.RBF{Gamma: 1 / float64(d)},
		kernel.Poly{Degree: 2, Scale: 0.5, Coef0: 1},
	}
}

// TestUpdateMatchesPinnedFit pins the incremental Update to its
// from-scratch counterpart: a Fit over the combined data with the same
// (frozen) standardizer, for every built-in kernel, including repeated
// small appends.
func TestUpdateMatchesPinnedFit(t *testing.T) {
	src := randx.New(31)
	const d, base, total = 4, 120, 180
	X, y := multiData(src, total, d)
	Xq, _ := multiData(src, 40, d)
	std := kernel.FitStandardizer(X[:base])

	for _, k := range updateKernels(d) {
		opts := DefaultOptions()
		opts.Kernel = k
		opts.Standardizer = std

		inc, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := inc.Fit(X[:base], y[:base]); err != nil {
			t.Fatalf("%s: fit: %v", k.Name(), err)
		}
		// Three appends of uneven size, the streaming pattern.
		for _, cut := range [][2]int{{base, base + 7}, {base + 7, base + 40}, {base + 40, total}} {
			if err := inc.Update(X[cut[0]:cut[1]], y[cut[0]:cut[1]]); err != nil {
				t.Fatalf("%s: update [%d:%d]: %v", k.Name(), cut[0], cut[1], err)
			}
		}

		ref, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.Fit(X, y); err != nil {
			t.Fatalf("%s: combined fit: %v", k.Name(), err)
		}

		for i, q := range Xq {
			got, want := inc.Predict(q), ref.Predict(q)
			if d := math.Abs(got - want); d > 1e-8 {
				t.Fatalf("%s: query %d: incremental %g vs from-scratch %g (diff %g)",
					k.Name(), i, got, want, d)
			}
		}
		if inc.bias != inc.bias || math.Abs(inc.bias-ref.bias) > 1e-8 {
			t.Fatalf("%s: bias %g vs %g", k.Name(), inc.bias, ref.bias)
		}
		for i := range ref.alpha {
			if d := math.Abs(inc.alpha[i] - ref.alpha[i]); d > 1e-8 {
				t.Fatalf("%s: alpha[%d] diff %g", k.Name(), i, d)
			}
		}
	}
}

// TestUpdateDefaultStandardizer checks the documented frozen-
// standardizer semantics without pinning: Update keeps the initial
// fit's statistics and still tracks the target function.
func TestUpdateDefaultStandardizer(t *testing.T) {
	src := randx.New(32)
	X, y := multiData(src, 200, 3)
	m, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X[:150], y[:150]); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(X[150:], y[150:]); err != nil {
		t.Fatal(err)
	}
	Xq, yq := multiData(src, 60, 3)
	if e := mae(m, Xq, yq); e > 0.5 {
		t.Fatalf("updated model MAE %g", e)
	}
	// The raw history must cover every appended row.
	if len(m.yRaw) != 200 || m.trainRows.Len() != 200 {
		t.Fatalf("history %d rows / %d targets", m.trainRows.Len(), len(m.yRaw))
	}
}

// TestUpdateErrors covers the failure contract.
func TestUpdateErrors(t *testing.T) {
	src := randx.New(33)
	X, y := multiData(src, 60, 3)
	m, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Update(X[:2], y[:2]); err == nil {
		t.Fatal("expected error before Fit")
	}
	if err := m.Fit(X[:50], y[:50]); err != nil {
		t.Fatal(err)
	}
	if err := m.Update([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("expected dimension error")
	}
	if err := m.Update(nil, nil); err != nil {
		t.Fatalf("empty update: %v", err)
	}
	if m.trainRows.Len() != 50 {
		t.Fatalf("row count changed to %d", m.trainRows.Len())
	}
}

// TestUpdateAfterRoundTrip checks a deserialized model (factor
// discarded) rebuilds it and keeps accepting updates.
func TestUpdateAfterRoundTrip(t *testing.T) {
	src := randx.New(34)
	const d = 3
	X, y := multiData(src, 160, d)
	std := kernel.FitStandardizer(X[:100])
	opts := DefaultOptions()
	opts.Standardizer = std

	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X[:100], y[:100]); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Update(X[100:], y[100:]); err != nil {
		t.Fatalf("update after round-trip: %v", err)
	}
	ref, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	Xq, _ := multiData(src, 30, d)
	for i, q := range Xq {
		if diff := math.Abs(back.Predict(q) - ref.Predict(q)); diff > 1e-8 {
			t.Fatalf("query %d: diff %g", i, diff)
		}
	}
}

// TestPredictAllocationFree pins the pooled scratch path: after
// warm-up, single-sample prediction must not allocate.
func TestPredictAllocationFree(t *testing.T) {
	src := randx.New(35)
	X, y := multiData(src, 80, 5)
	m, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	q := X[3]
	m.Predict(q) // warm the pool
	if allocs := testing.AllocsPerRun(50, func() { m.Predict(q) }); allocs > 0 {
		t.Fatalf("Predict allocates %v times per call", allocs)
	}
}

// benchRetrainData is the shared n=1050 problem of the retrain
// benchmarks: a 1000-row history plus a 50-row append (5%).
func benchRetrainData() ([][]float64, []float64) {
	src := randx.New(77)
	return multiData(src, 1050, 30)
}

// BenchmarkRetrainAppend measures the incremental retrain: append 50
// rows (5%) to a fitted n=1000 history via Update. The from-scratch
// counterpart is BenchmarkRetrainScratch.
func BenchmarkRetrainAppend(b *testing.B) {
	X, y := benchRetrainData()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, err := New(DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Fit(X[:1000], y[:1000]); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := m.Update(X[1000:], y[1000:]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRetrainScratch is the from-scratch rebuild on the combined
// n=1050 data that BenchmarkRetrainAppend's Update replaces.
func BenchmarkRetrainScratch(b *testing.B) {
	X, y := benchRetrainData()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := New(DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}
