package lssvm

import (
	"math"
	"testing"

	"repro/internal/ml"
	"repro/internal/ml/kernel"
	"repro/internal/randx"
)

// TestSlideWindowMatchesPinnedFit pins the sliding-window retrain to
// its from-scratch counterpart — a Fit over the surviving window with
// the same (frozen) standardizer — for every built-in kernel, across
// repeated slide cycles of uneven sizes.
func TestSlideWindowMatchesPinnedFit(t *testing.T) {
	src := randx.New(81)
	const d, window, total = 4, 120, 320
	X, y := multiData(src, total, d)
	Xq, _ := multiData(src, 40, d)
	std := kernel.FitStandardizer(X[:window])

	// (evict, append) per cycle: uneven, including evict-only and
	// append-heavy slides.
	cycles := [][2]int{{20, 20}, {7, 31}, {0, 12}, {45, 17}, {30, 0}, {15, 15}}

	for _, k := range updateKernels(d) {
		opts := DefaultOptions()
		opts.Kernel = k
		opts.Standardizer = std

		inc, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := inc.Fit(X[:window], y[:window]); err != nil {
			t.Fatalf("%s: fit: %v", k.Name(), err)
		}
		lo, hi := 0, window
		for ci, c := range cycles {
			evict, app := c[0], c[1]
			if err := inc.SlideWindow(X[hi:hi+app], y[hi:hi+app], evict); err != nil {
				t.Fatalf("%s: cycle %d: %v", k.Name(), ci, err)
			}
			lo += evict
			hi += app
			info := inc.LastUpdate()
			if !info.Incremental || info.Evicted != evict {
				t.Fatalf("%s: cycle %d: update info %+v", k.Name(), ci, info)
			}
			if inc.trainRows.Len() != hi-lo || len(inc.yRaw) != hi-lo {
				t.Fatalf("%s: cycle %d: window %d rows / %d targets, want %d",
					k.Name(), ci, inc.trainRows.Len(), len(inc.yRaw), hi-lo)
			}
		}

		ref, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.Fit(X[lo:hi], y[lo:hi]); err != nil {
			t.Fatalf("%s: window fit: %v", k.Name(), err)
		}
		for i, q := range Xq {
			got, want := inc.Predict(q), ref.Predict(q)
			if diff := math.Abs(got - want); diff > 1e-8 {
				t.Fatalf("%s: query %d: slide %g vs from-scratch %g (diff %g)",
					k.Name(), i, got, want, diff)
			}
		}
		if math.Abs(inc.bias-ref.bias) > 1e-8 {
			t.Fatalf("%s: bias %g vs %g", k.Name(), inc.bias, ref.bias)
		}
		for i := range ref.alpha {
			if diff := math.Abs(inc.alpha[i] - ref.alpha[i]); diff > 1e-8 {
				t.Fatalf("%s: alpha[%d] diff %g", k.Name(), i, diff)
			}
		}
	}
}

// TestSlideWindowFlatMemory runs 24 steady-state slide cycles and
// asserts the factor and row-store capacities stop growing — the
// bounded-memory acceptance criterion.
func TestSlideWindowFlatMemory(t *testing.T) {
	src := randx.New(82)
	const d, window, slide, cycles = 5, 150, 15, 24
	X, y := multiData(src, window+slide*cycles, d)
	m, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X[:window], y[:window]); err != nil {
		t.Fatal(err)
	}
	var factorCap, rowCap int
	for c := 0; c < cycles; c++ {
		lo := window + c*slide
		if err := m.SlideWindow(X[lo:lo+slide], y[lo:lo+slide], slide); err != nil {
			t.Fatalf("cycle %d: %v", c, err)
		}
		if c == 2 {
			// Allow the first cycles to claim their steady-state
			// buffers, then require flatness.
			factorCap, rowCap = m.FactorCap(), m.RowCap()
		}
		if c > 2 && (m.FactorCap() != factorCap || m.RowCap() != rowCap) {
			t.Fatalf("cycle %d: capacity grew (factor %d -> %d, rows %d -> %d)",
				c, factorCap, m.FactorCap(), rowCap, m.RowCap())
		}
	}
	if m.trainRows.Len() != window {
		t.Fatalf("window drifted to %d rows", m.trainRows.Len())
	}
	// The slid fit must predict as well as a from-scratch fit on the
	// same window (frozen standardizer aside, they are the same model).
	Xq, yq := multiData(src, 50, d)
	lo := slide * cycles
	ref, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Fit(X[lo:lo+window], y[lo:lo+window]); err != nil {
		t.Fatal(err)
	}
	if e, er := mae(m, Xq, yq), mae(ref, Xq, yq); e > er*1.2+0.1 {
		t.Fatalf("slid model MAE %g vs from-scratch %g", e, er)
	}
}

// TestSlideWindowErrors covers the argument contract and the
// model-unchanged-on-error guarantee.
func TestSlideWindowErrors(t *testing.T) {
	src := randx.New(83)
	X, y := multiData(src, 80, 3)
	m, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SlideWindow(X[:5], y[:5], 0); err == nil {
		t.Fatal("SlideWindow before Fit accepted")
	}
	if err := m.Fit(X[:60], y[:60]); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []int{-1, 61} {
		if err := m.SlideWindow(nil, nil, bad); err == nil {
			t.Fatalf("evict %d accepted", bad)
		}
	}
	if err := m.SlideWindow(nil, nil, 60); err == nil {
		t.Fatal("empty surviving window accepted")
	}
	if err := m.SlideWindow([][]float64{{1, 2}}, []float64{1}, 5); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if err := m.SlideWindow(nil, nil, 0); err != nil {
		t.Fatalf("no-op slide: %v", err)
	}
	if m.trainRows.Len() != 60 || len(m.yRaw) != 60 {
		t.Fatalf("failed slides mutated the window: %d rows / %d targets",
			m.trainRows.Len(), len(m.yRaw))
	}
	// Downdate is the evict-only convenience; UpdateWindow adapts the
	// ml.WindowedRegressor shape.
	if err := m.Downdate(10); err != nil {
		t.Fatal(err)
	}
	if m.trainRows.Len() != 50 {
		t.Fatalf("Downdate left %d rows", m.trainRows.Len())
	}
	if err := m.UpdateWindow(X[60:70], y[60:70], X[10:15], y[10:15]); err != nil {
		t.Fatal(err)
	}
	if m.trainRows.Len() != 55 {
		t.Fatalf("UpdateWindow left %d rows", m.trainRows.Len())
	}
	if err := m.UpdateWindow(nil, nil, X[:3], y[:2]); err == nil {
		t.Fatal("mismatched evict rows/targets accepted")
	}
}

// TestSlideWindowAfterRoundTrip checks a deserialized model (factor
// discarded) rebuilds it lazily and slides correctly afterwards.
func TestSlideWindowAfterRoundTrip(t *testing.T) {
	src := randx.New(84)
	const d = 3
	X, y := multiData(src, 200, d)
	std := kernel.FitStandardizer(X[:120])
	opts := DefaultOptions()
	opts.Standardizer = std
	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X[:120], y[:120]); err != nil {
		t.Fatal(err)
	}
	data, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if err := back.SlideWindow(X[120:160], y[120:160], 40); err != nil {
		t.Fatalf("slide after round-trip: %v", err)
	}
	ref, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Fit(X[40:160], y[40:160]); err != nil {
		t.Fatal(err)
	}
	Xq, _ := multiData(src, 30, d)
	for i, q := range Xq {
		if diff := math.Abs(back.Predict(q) - ref.Predict(q)); diff > 1e-8 {
			t.Fatalf("query %d: diff %g", i, diff)
		}
	}
}

// TestSlideWindowDrift checks the drift gate on the sliding path: a
// far-shifted append refits from scratch on the *surviving window*
// with fresh statistics (bounded even under drift), matching a
// from-scratch Fit on the same window.
func TestSlideWindowDrift(t *testing.T) {
	src := randx.New(85)
	const d, base = 4, 100
	X, y := multiData(src, base, d)
	opts := DefaultOptions()
	opts.DriftThreshold = 2
	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	Xfar, yfar := multiData(src, 30, d)
	for i := range Xfar {
		for j := range Xfar[i] {
			Xfar[i][j] += 10
		}
	}
	if err := m.SlideWindow(Xfar, yfar, 40); err != nil {
		t.Fatal(err)
	}
	info := m.LastUpdate()
	if !info.DriftRefit || info.Incremental || info.Evicted != 40 {
		t.Fatalf("drift slide info %+v", info)
	}
	if m.trainRows.Len() != base-40+30 {
		t.Fatalf("drift refit window %d rows", m.trainRows.Len())
	}
	combinedX := append(append([][]float64{}, X[40:]...), Xfar...)
	combinedY := append(append([]float64{}, y[40:]...), yfar...)
	ref, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Fit(combinedX, combinedY); err != nil {
		t.Fatal(err)
	}
	Xq, _ := multiData(src, 30, d)
	for i, q := range Xq {
		got, want := m.Predict(q), ref.Predict(q)
		if math.Abs(got-want) > 1e-8*(1+math.Abs(want)) {
			t.Fatalf("query %d: drift slide %v vs from-scratch %v", i, got, want)
		}
	}
}

// TestSlideWindowIllConditioned drives repeated slides over
// near-duplicate rows — a kernel system that already needed jitter at
// Fit and whose borders keep breaking positive definiteness, so the
// extend-side jitter escalation and the downdating sweep's robustness
// are both exercised. The model must stay finite and usable throughout.
func TestSlideWindowIllConditioned(t *testing.T) {
	src := randx.New(86)
	const d, window, slide, cycles = 3, 60, 10, 12
	proto := make([]float64, d)
	for j := range proto {
		proto[j] = src.Uniform(-1, 1)
	}
	mkRow := func() []float64 {
		// Exact duplicates: the Gram is rank-1, so every border breaks
		// positive definiteness and the escalation paths must engage.
		r := make([]float64, d)
		copy(r, proto)
		return r
	}
	var X [][]float64
	var y []float64
	for i := 0; i < window+slide*cycles; i++ {
		X = append(X, mkRow())
		y = append(y, src.Uniform(0, 1))
	}
	opts := DefaultOptions()
	opts.Kernel = kernel.Linear{}
	// A huge γ makes the ridge 1/γ vanishing, so the rank-1 Gram
	// really is indefinite to working precision and the jitter
	// escalation must engage.
	opts.Gamma = 1e16
	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X[:window], y[:window]); err != nil {
		t.Fatalf("ill-conditioned fit: %v", err)
	}
	if m.diagAdd <= 1/m.opts.Gamma {
		t.Fatalf("fit did not need jitter (diagAdd %g)", m.diagAdd)
	}
	for c := 0; c < cycles; c++ {
		lo := window + c*slide
		if err := m.SlideWindow(X[lo:lo+slide], y[lo:lo+slide], slide); err != nil {
			t.Fatalf("cycle %d: %v", c, err)
		}
		if m.trainRows.Len() != window {
			t.Fatalf("cycle %d: window %d rows", c, m.trainRows.Len())
		}
		out := m.Predict(X[lo])
		if math.IsNaN(out) || math.IsInf(out, 0) {
			t.Fatalf("cycle %d: prediction %v", c, out)
		}
	}
}

// benchSlideData is the n=1000 window plus enough fresh rows for the
// slide benchmarks (50 out / 50 in, the acceptance-criterion shape).
func benchSlideData() ([][]float64, []float64) {
	src := randx.New(88)
	return multiData(src, 1050, 30)
}

// BenchmarkSlideWindow measures one full window slide on an n=1000
// LS-SVM: evict the 50 oldest rows, append 50 fresh ones, re-solve.
// The from-scratch counterpart is BenchmarkSlideScratch; the
// acceptance criterion is ≥3× over the rebuild.
func BenchmarkSlideWindow(b *testing.B) {
	X, y := benchSlideData()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, err := New(DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Fit(X[:1000], y[:1000]); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := m.SlideWindow(X[1000:], y[1000:], 50); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSlideScratch is the from-scratch rebuild on the slid
// n=1000 window that BenchmarkSlideWindow's SlideWindow replaces.
func BenchmarkSlideScratch(b *testing.B) {
	X, y := benchSlideData()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := New(DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Fit(X[50:], y[50:]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSlideWindowSteady measures the steady-state slide: the
// model is fitted once and then slides continuously (the deployment
// pattern), so per-op cost excludes any warm-up and buffer claiming.
func BenchmarkSlideWindowSteady(b *testing.B) {
	src := randx.New(89)
	const window, slide = 1000, 50
	X, y := multiData(src, window, 30)
	m, err := New(DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	fresh, fy := multiData(src, slide, 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.SlideWindow(fresh, fy, slide); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = ml.UpdateInfo{} // keep the import when build tags strip tests
