package lssvm

import (
	"math"
	"testing"

	"repro/internal/ml"
	"repro/internal/ml/kernel"
	"repro/internal/randx"
)

func sineData(src *randx.Source, n int, noise float64) (X [][]float64, y []float64) {
	for i := 0; i < n; i++ {
		x := src.Uniform(0, 2*math.Pi)
		X = append(X, []float64{x})
		y = append(y, 100*math.Sin(x)+src.Norm(0, noise))
	}
	return X, y
}

func mae(m ml.Regressor, X [][]float64, y []float64) float64 {
	var s float64
	for i := range X {
		s += math.Abs(y[i] - m.Predict(X[i]))
	}
	return s / float64(len(X))
}

func TestOptionsValidate(t *testing.T) {
	if err := (&Options{Gamma: 0}).Validate(); err == nil {
		t.Fatal("zero gamma accepted")
	}
	if _, err := New(Options{Gamma: -1}); err == nil {
		t.Fatal("New accepted negative gamma")
	}
}

func TestNonlinearFit(t *testing.T) {
	src := randx.New(1)
	X, y := sineData(src, 250, 1)
	m, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	tX, tY := sineData(src, 100, 0)
	if e := mae(m, tX, tY); e > 10 {
		t.Fatalf("LS-SVM test MAE = %v on sine data", e)
	}
}

func TestGammaControlsSmoothing(t *testing.T) {
	// Small gamma = strong regularization = smoother fit = higher train
	// error than a huge gamma.
	src := randx.New(2)
	X, y := sineData(src, 150, 3)
	trainErr := func(g float64) float64 {
		m, err := New(Options{Gamma: g})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		return mae(m, X, y)
	}
	if smooth, sharp := trainErr(0.01), trainErr(1e4); smooth <= sharp {
		t.Fatalf("regularization did not smooth: %v <= %v", smooth, sharp)
	}
}

func TestLinearKernel(t *testing.T) {
	src := randx.New(3)
	var X [][]float64
	var y []float64
	for i := 0; i < 150; i++ {
		a, b := src.Uniform(-5, 5), src.Uniform(-5, 5)
		X = append(X, []float64{a, b})
		y = append(y, 2*a+b-3)
	}
	m, err := New(Options{Gamma: 1e4, Kernel: kernel.Linear{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if e := mae(m, X, y); e > 0.1 {
		t.Fatalf("linear LS-SVM MAE = %v", e)
	}
}

func TestRawScaleInputs(t *testing.T) {
	src := randx.New(4)
	var X [][]float64
	var y []float64
	for i := 0; i < 150; i++ {
		mem := src.Uniform(1e5, 2e6)
		cpu := src.Uniform(0, 100)
		X = append(X, []float64{mem, cpu})
		y = append(y, mem/2000+3*cpu+src.Norm(0, 10))
	}
	m, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	mean := ml.Mean(y)
	var num, den float64
	for i := range X {
		num += math.Abs(y[i] - m.Predict(X[i]))
		den += math.Abs(y[i] - mean)
	}
	if num/den > 0.5 {
		t.Fatalf("raw-scale RAE = %v", num/den)
	}
}

func TestConstantTarget(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{7, 7, 7, 7}
	m, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if p := m.Predict([]float64{2.5}); math.Abs(p-7) > 1e-6 {
		t.Fatalf("constant target predicts %v", p)
	}
}

func TestDuplicateRowsHandled(t *testing.T) {
	// Duplicate rows make the kernel matrix singular; the ridge I/γ and
	// the jitter fallback must keep the solve alive.
	X := [][]float64{{1}, {1}, {2}, {2}, {3}, {3}}
	y := []float64{10, 10, 20, 20, 30, 30}
	m, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatalf("duplicate rows broke the solver: %v", err)
	}
	if p := m.Predict([]float64{2}); math.Abs(p-20) > 5 {
		t.Fatalf("prediction %v far from 20", p)
	}
}

func TestUnfittedAndMismatch(t *testing.T) {
	m, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(m.Predict([]float64{1})) {
		t.Fatal("unfitted Predict not NaN")
	}
	src := randx.New(5)
	X, y := sineData(src, 50, 1)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(m.Predict([]float64{1, 2})) {
		t.Fatal("dimension mismatch not NaN")
	}
	if m.Name() != "svm2" {
		t.Fatalf("Name = %q", m.Name())
	}
}

func BenchmarkFit300(b *testing.B) {
	src := randx.New(6)
	X, y := sineData(src, 300, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := New(DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	src := randx.New(60)
	X, y := sineData(src, 120, 1)
	m, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	data, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	for x := 0.0; x < 6; x += 0.2 {
		probe := []float64{x}
		if restored.Predict(probe) != m.Predict(probe) {
			t.Fatalf("prediction drift at %v", x)
		}
	}
}

func TestJSONErrors(t *testing.T) {
	m, _ := New(DefaultOptions())
	if _, err := m.MarshalJSON(); err == nil {
		t.Fatal("unfitted marshal accepted")
	}
	if err := m.UnmarshalJSON([]byte("{bad")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if err := m.UnmarshalJSON([]byte(`{"options":{"Gamma":1},"kernel":{"kind":"rbf","gamma":1},
		"mean":[0,0],"std":[1,1],"train_x":[[1]],"alpha":[0.5],"bias":0,"y_mean":0,"y_std":1,"dim":1}`)); err == nil {
		t.Fatal("standardizer dimension mismatch accepted")
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	for _, k := range []kernel.Kernel{nil, kernel.Linear{}} {
		opts := DefaultOptions()
		opts.Kernel = k
		m, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		src := randx.New(93)
		X, y := sineData(src, 50, 1)
		if err := m.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		queries, _ := sineData(src, 20, 1)
		queries = append(queries, []float64{1, 2}) // wrong dim -> NaN
		out := make([]float64, len(queries))
		m.PredictBatch(queries, out)
		for i, q := range queries {
			want := m.Predict(q)
			if math.IsNaN(want) != math.IsNaN(out[i]) || (!math.IsNaN(want) && math.Abs(out[i]-want) > 1e-9) {
				t.Fatalf("row %d: batch %v, single %v", i, out[i], want)
			}
		}
	}
	m, _ := New(DefaultOptions())
	out := make([]float64, 1)
	m.PredictBatch([][]float64{{1}}, out)
	if !math.IsNaN(out[0]) {
		t.Fatal("unfitted PredictBatch returned a number")
	}
}

// TestBatchAfterJSONRoundTrip ensures the flat prediction layout is
// rebuilt on deserialization.
func TestBatchAfterJSONRoundTrip(t *testing.T) {
	src := randx.New(94)
	X, y := sineData(src, 30, 1)
	m, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	data, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	out := make([]float64, len(X))
	back.PredictBatch(X, out)
	for i := range X {
		if math.Abs(out[i]-m.Predict(X[i])) > 1e-9 {
			t.Fatalf("row %d drifted after round trip", i)
		}
	}
}
