package ml

import (
	"errors"
	"math"
	"testing"
)

type stub struct{ v float64 }

func (s *stub) Name() string                         { return "stub" }
func (s *stub) Fit(X [][]float64, y []float64) error { return nil }
func (s *stub) Predict(x []float64) float64          { return s.v }

func TestCheckTrainingSet(t *testing.T) {
	X := [][]float64{{1, 2}, {3, 4}}
	y := []float64{1, 2}
	dim, err := CheckTrainingSet(X, y)
	if err != nil || dim != 2 {
		t.Fatalf("CheckTrainingSet = (%d, %v)", dim, err)
	}
	if _, err := CheckTrainingSet(nil, nil); !errors.Is(err, ErrNoData) {
		t.Fatalf("empty err = %v", err)
	}
	if _, err := CheckTrainingSet(X, []float64{1}); !errors.Is(err, ErrDimension) {
		t.Fatalf("length mismatch err = %v", err)
	}
	if _, err := CheckTrainingSet([][]float64{{1}, {1, 2}}, y); !errors.Is(err, ErrDimension) {
		t.Fatalf("ragged err = %v", err)
	}
	if _, err := CheckTrainingSet([][]float64{{}, {}}, y); !errors.Is(err, ErrDimension) {
		t.Fatalf("zero-width err = %v", err)
	}
	if _, err := CheckTrainingSet(X, []float64{1, math.NaN()}); err == nil {
		t.Fatal("NaN target accepted")
	}
	if _, err := CheckTrainingSet(X, []float64{1, math.Inf(1)}); err == nil {
		t.Fatal("Inf target accepted")
	}
}

func TestPredictAll(t *testing.T) {
	out := PredictAll(&stub{v: 7}, [][]float64{{1}, {2}, {3}})
	if len(out) != 3 || out[0] != 7 || out[2] != 7 {
		t.Fatalf("PredictAll = %v", out)
	}
}

func TestCloneMatrixDeep(t *testing.T) {
	X := [][]float64{{1, 2}}
	c := CloneMatrix(X)
	c[0][0] = 99
	if X[0][0] != 1 {
		t.Fatal("CloneMatrix shares storage")
	}
}

func TestCloneVector(t *testing.T) {
	y := []float64{1, 2}
	c := CloneVector(y)
	c[0] = 99
	if y[0] != 1 {
		t.Fatal("CloneVector shares storage")
	}
}

func TestMeanVariance(t *testing.T) {
	if Mean([]float64{2, 4}) != 3 {
		t.Fatal("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) wrong")
	}
	if Variance([]float64{2, 4}) != 1 {
		t.Fatal("Variance wrong")
	}
	if Variance(nil) != 0 {
		t.Fatal("Variance(nil) wrong")
	}
}

// batchStub records whether the batched path was taken.
type batchStub struct {
	stub
	batched bool
}

func (b *batchStub) PredictBatch(X [][]float64, out []float64) {
	b.batched = true
	for i := range X {
		out[i] = b.stub.Predict(X[i])
	}
}

func TestPredictAllUsesBatchPath(t *testing.T) {
	b := &batchStub{stub: stub{v: 3}}
	out := PredictAll(b, [][]float64{{1}, {2}})
	if !b.batched {
		t.Fatal("PredictAll ignored the BatchPredictor fast path")
	}
	if out[0] != 3 || out[1] != 3 {
		t.Fatalf("PredictAll = %v", out)
	}
}
