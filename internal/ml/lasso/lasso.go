// Package lasso implements the Lasso (Tibshirani 1994) by cyclic
// coordinate descent, minimizing the paper's objective (eq. 2):
//
//	(1/n) Σ_j (y_j - ⟨β, x_j⟩)²  +  λ ||β||₁
//
// with an unpenalized intercept. F2PM uses it twice: during the feature
// selection phase (package featsel), where the non-zero entries of β
// decide which features survive, and as "Lasso as a Predictor"
// (paper §III-D), where the closed-form ⟨β, x⟩ + b is the model itself.
//
// Coordinate descent runs on the raw, unstandardized features on
// purpose: the paper's λ grid (10⁰..10⁹) and Table I's weight magnitudes
// (~10⁻⁴) only make sense on raw scales, where memory features are ~10⁶ KB
// and CPU features ~10².
//
// The solver uses the covariance ("Gram") formulation: XᵀX, Xᵀy and
// the column sums are computed once on mat's flat engine, after which
// every coordinate update costs O(d) instead of O(n) — the same trick
// glmnet uses, and the reason the long warm-started regularization
// paths in package featsel stay cheap.
package lasso

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/ml"
)

// Options tunes the coordinate-descent solver.
type Options struct {
	// Lambda is the L1 penalty weight (paper's λ).
	Lambda float64
	// MaxIter bounds full coordinate sweeps.
	MaxIter int
	// Tol stops iteration when the largest relative coefficient change
	// in a sweep falls below it.
	Tol float64
	// FitIntercept controls the unpenalized bias term.
	FitIntercept bool
}

// DefaultOptions returns the solver settings used by the pipeline. The
// sweep budget is generous because the raw F2PM features are strongly
// correlated (used/free pairs), which slows coordinate descent at small λ.
func DefaultOptions(lambda float64) Options {
	return Options{Lambda: lambda, MaxIter: 1500, Tol: 1e-6, FitIntercept: true}
}

// Validate reports option errors.
func (o *Options) Validate() error {
	if o.Lambda < 0 || math.IsNaN(o.Lambda) {
		return fmt.Errorf("lasso: negative lambda %v", o.Lambda)
	}
	if o.MaxIter <= 0 {
		return fmt.Errorf("lasso: MaxIter must be positive, got %d", o.MaxIter)
	}
	if o.Tol <= 0 {
		return fmt.Errorf("lasso: Tol must be positive, got %v", o.Tol)
	}
	return nil
}

// Model is a fitted Lasso regression.
type Model struct {
	opts Options
	// Coef holds the (sparse) weights β; Intercept the unpenalized bias.
	Coef      []float64
	Intercept float64
	// Iterations is the number of sweeps the last Fit used.
	Iterations int
	fitted     bool
	// cov is the covariance state retained by Fit so Update can fold
	// new rows in with rank-1 updates instead of revisiting the
	// history. It is small (d×d) and not serialized; a restored model
	// cannot be updated until it is refitted.
	cov *Cov
}

// New returns an unfitted Lasso model.
func New(opts Options) (*Model, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Model{opts: opts}, nil
}

// Name implements ml.Regressor.
func (m *Model) Name() string { return fmt.Sprintf("lasso-lambda-%g", m.opts.Lambda) }

// Lambda returns the penalty the model was configured with.
func (m *Model) Lambda() float64 { return m.opts.Lambda }

// SetLambda changes the penalty without clearing the coefficients, so a
// subsequent Fit warm-starts from the current solution. Regularization
// paths (package featsel) chain fits along the λ grid this way.
func (m *Model) SetLambda(lambda float64) error {
	if lambda < 0 || math.IsNaN(lambda) {
		return fmt.Errorf("lasso: negative lambda %v", lambda)
	}
	m.opts.Lambda = lambda
	return nil
}

// Fit runs cyclic coordinate descent on the covariance (Gram)
// formulation — see Cov for the glmnet trick. A warm start is used
// when the model was previously fitted with the same dimensionality
// (regularization paths exploit this). The covariance state is
// retained, so a later Update extends the fit at the cost of the new
// rows only.
func (m *Model) Fit(X [][]float64, y []float64) error {
	cov, err := NewCov(X, y)
	if err != nil {
		return err
	}
	beta := make([]float64, cov.dim)
	if m.fitted && len(m.Coef) == cov.dim {
		copy(beta, m.Coef) // warm start
	}
	intercept := m.Intercept
	if !m.opts.FitIntercept {
		intercept = 0
	}
	iter := cov.solve(beta, &intercept, m.opts.Lambda, m.opts)

	m.Coef = beta
	m.Intercept = intercept
	m.Iterations = iter
	m.fitted = true
	m.cov = cov
	return nil
}

// Update implements ml.IncrementalRegressor: new training rows fold
// into the retained covariance state with rank-1 updates and the
// coordinates re-converge warm-started from the current solution, so
// the cost scales with the new rows (plus O(d²) sweeps), not the
// history. The result converges to the same optimum as refitting on
// the combined data.
func (m *Model) Update(Xnew [][]float64, ynew []float64) error {
	if !m.fitted || m.cov == nil {
		return fmt.Errorf("lasso: Update before Fit (restored models must be refitted): %w", ml.ErrNotFitted)
	}
	if err := m.cov.Append(Xnew, ynew); err != nil {
		return err
	}
	intercept := m.Intercept
	if !m.opts.FitIntercept {
		intercept = 0
	}
	m.Iterations = m.cov.solve(m.Coef, &intercept, m.opts.Lambda, m.opts)
	m.Intercept = intercept
	return nil
}

// UpdateWindow implements ml.WindowedRegressor: the sliding-window
// retrain. New rows fold into the retained covariance with rank-1
// updates, the evicted rows' contributions are subtracted with rank-1
// downdates (Cov.Evict — the state summarizes the history, so the
// caller supplies the departing rows), and the coordinates re-converge
// warm-started. The result converges to the optimum of a from-scratch
// Fit on the surviving window, at a cost scaling with the rows moved.
// On error the model is unchanged.
func (m *Model) UpdateWindow(Xnew [][]float64, ynew []float64, evictX [][]float64, evictY []float64) error {
	if !m.fitted || m.cov == nil {
		return fmt.Errorf("lasso: UpdateWindow before Fit (restored models must be refitted): %w", ml.ErrNotFitted)
	}
	// Evict first (its row-count bound is against the pre-append
	// window, the caller's view), then append; everything is validated
	// before mutating — including the empty-rows/non-empty-targets
	// shape Append would only reject after the eviction — so an error
	// leaves the model untouched.
	if len(Xnew) != len(ynew) {
		return fmt.Errorf("%w: %d appended rows vs %d targets", ml.ErrDimension, len(Xnew), len(ynew))
	}
	if len(Xnew) > 0 {
		if dim, err := ml.CheckTrainingSet(Xnew, ynew); err != nil {
			return err
		} else if dim != m.cov.Dim() {
			return fmt.Errorf("lasso: appended rows have %d features, want %d", dim, m.cov.Dim())
		}
	}
	if err := m.cov.Evict(evictX, evictY); err != nil {
		return err
	}
	if err := m.cov.Append(Xnew, ynew); err != nil {
		return err
	}
	intercept := m.Intercept
	if !m.opts.FitIntercept {
		intercept = 0
	}
	m.Iterations = m.cov.solve(m.Coef, &intercept, m.opts.Lambda, m.opts)
	m.Intercept = intercept
	return nil
}

// softThreshold is the Lasso shrinkage operator S(z, λ).
func softThreshold(z, lambda float64) float64 {
	switch {
	case z > lambda:
		return z - lambda
	case z < -lambda:
		return z + lambda
	default:
		return 0
	}
}

// Predict implements ml.Regressor.
func (m *Model) Predict(x []float64) float64 {
	if !m.fitted || len(x) != len(m.Coef) {
		return math.NaN()
	}
	s := m.Intercept
	for i, v := range x {
		if m.Coef[i] != 0 {
			s += m.Coef[i] * v
		}
	}
	return s
}

// NumSelected returns the count of non-zero coefficients.
func (m *Model) NumSelected() int {
	n := 0
	for _, b := range m.Coef {
		if b != 0 {
			n++
		}
	}
	return n
}

// Selected returns the indices of non-zero coefficients.
func (m *Model) Selected() []int {
	var out []int
	for i, b := range m.Coef {
		if b != 0 {
			out = append(out, i)
		}
	}
	return out
}

var (
	_ ml.Regressor            = (*Model)(nil)
	_ ml.IncrementalRegressor = (*Model)(nil)
	_ ml.WindowedRegressor    = (*Model)(nil)
)

// lassoJSON is the serialized model state.
type lassoJSON struct {
	Lambda    float64   `json:"lambda"`
	Coef      []float64 `json:"coef"`
	Intercept float64   `json:"intercept"`
}

// MarshalJSON serializes a fitted model.
func (m *Model) MarshalJSON() ([]byte, error) {
	if !m.fitted {
		return nil, ml.ErrNotFitted
	}
	return json.Marshal(lassoJSON{Lambda: m.opts.Lambda, Coef: m.Coef, Intercept: m.Intercept})
}

// UnmarshalJSON restores a model serialized by MarshalJSON.
func (m *Model) UnmarshalJSON(data []byte) error {
	var s lassoJSON
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("lasso: decoding model: %w", err)
	}
	if len(s.Coef) == 0 {
		return fmt.Errorf("lasso: serialized model has no coefficients")
	}
	m.opts = DefaultOptions(s.Lambda)
	m.Coef = s.Coef
	m.Intercept = s.Intercept
	m.fitted = true
	return nil
}
