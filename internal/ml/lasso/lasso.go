// Package lasso implements the Lasso (Tibshirani 1994) by cyclic
// coordinate descent, minimizing the paper's objective (eq. 2):
//
//	(1/n) Σ_j (y_j - ⟨β, x_j⟩)²  +  λ ||β||₁
//
// with an unpenalized intercept. F2PM uses it twice: during the feature
// selection phase (package featsel), where the non-zero entries of β
// decide which features survive, and as "Lasso as a Predictor"
// (paper §III-D), where the closed-form ⟨β, x⟩ + b is the model itself.
//
// Coordinate descent runs on the raw, unstandardized features on
// purpose: the paper's λ grid (10⁰..10⁹) and Table I's weight magnitudes
// (~10⁻⁴) only make sense on raw scales, where memory features are ~10⁶ KB
// and CPU features ~10².
//
// The solver uses the covariance ("Gram") formulation: XᵀX, Xᵀy and
// the column sums are computed once on mat's flat engine, after which
// every coordinate update costs O(d) instead of O(n) — the same trick
// glmnet uses, and the reason the long warm-started regularization
// paths in package featsel stay cheap.
package lasso

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/ml"
)

// Options tunes the coordinate-descent solver.
type Options struct {
	// Lambda is the L1 penalty weight (paper's λ).
	Lambda float64
	// MaxIter bounds full coordinate sweeps.
	MaxIter int
	// Tol stops iteration when the largest relative coefficient change
	// in a sweep falls below it.
	Tol float64
	// FitIntercept controls the unpenalized bias term.
	FitIntercept bool
}

// DefaultOptions returns the solver settings used by the pipeline. The
// sweep budget is generous because the raw F2PM features are strongly
// correlated (used/free pairs), which slows coordinate descent at small λ.
func DefaultOptions(lambda float64) Options {
	return Options{Lambda: lambda, MaxIter: 1500, Tol: 1e-6, FitIntercept: true}
}

// Validate reports option errors.
func (o *Options) Validate() error {
	if o.Lambda < 0 || math.IsNaN(o.Lambda) {
		return fmt.Errorf("lasso: negative lambda %v", o.Lambda)
	}
	if o.MaxIter <= 0 {
		return fmt.Errorf("lasso: MaxIter must be positive, got %d", o.MaxIter)
	}
	if o.Tol <= 0 {
		return fmt.Errorf("lasso: Tol must be positive, got %v", o.Tol)
	}
	return nil
}

// Model is a fitted Lasso regression.
type Model struct {
	opts Options
	// Coef holds the (sparse) weights β; Intercept the unpenalized bias.
	Coef      []float64
	Intercept float64
	// Iterations is the number of sweeps the last Fit used.
	Iterations int
	fitted     bool
}

// New returns an unfitted Lasso model.
func New(opts Options) (*Model, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Model{opts: opts}, nil
}

// Name implements ml.Regressor.
func (m *Model) Name() string { return fmt.Sprintf("lasso-lambda-%g", m.opts.Lambda) }

// Lambda returns the penalty the model was configured with.
func (m *Model) Lambda() float64 { return m.opts.Lambda }

// SetLambda changes the penalty without clearing the coefficients, so a
// subsequent Fit warm-starts from the current solution. Regularization
// paths (package featsel) chain fits along the λ grid this way.
func (m *Model) SetLambda(lambda float64) error {
	if lambda < 0 || math.IsNaN(lambda) {
		return fmt.Errorf("lasso: negative lambda %v", lambda)
	}
	m.opts.Lambda = lambda
	return nil
}

// Fit runs cyclic coordinate descent. A warm start is used when the
// model was previously fitted with the same dimensionality (regularization
// paths exploit this).
func (m *Model) Fit(X [][]float64, y []float64) error {
	dim, err := ml.CheckTrainingSet(X, y)
	if err != nil {
		return err
	}
	n := len(X)
	fn := float64(n)

	beta := make([]float64, dim)
	if m.fitted && len(m.Coef) == dim {
		copy(beta, m.Coef) // warm start
	}
	intercept := m.Intercept
	if !m.opts.FitIntercept {
		intercept = 0
	}

	// Covariance (Gram) formulation, the glmnet trick: precompute
	// G = XᵀX (d×d, via the flat SymRankK engine), q = Xᵀy and the
	// column sums s once, then each coordinate update costs O(d)
	// instead of O(n). The residual correlation needed by the update is
	//
	//	Σ_i x_ik r_i = q_k − b·s_k − (Gβ)_k
	//
	// with u = Gβ and v = sᵀβ maintained incrementally as β changes.
	xt := mat.NewDense(dim, n)
	for i, row := range X {
		for k, v := range row {
			xt.Row(k)[i] = v
		}
	}
	g := mat.SymRankK(xt)
	q, err := xt.MulVec(y)
	if err != nil {
		return err
	}
	colSum := make([]float64, dim)
	colSq := make([]float64, dim)
	for k := 0; k < dim; k++ {
		row := xt.Row(k)
		var sum float64
		for _, v := range row {
			sum += v
		}
		colSum[k] = sum
		colSq[k] = 2 * g.At(k, k) / fn
	}
	var ybar float64
	for _, v := range y {
		ybar += v
	}
	ybar /= fn

	// Warm-start state: u = G·β, v = sᵀβ.
	u := make([]float64, dim)
	var v float64
	for k, b := range beta {
		if b != 0 {
			mat.AddScaled(u, b, g.Row(k))
			v += b * colSum[k]
		}
	}

	lam := m.opts.Lambda
	var iter int
	for iter = 0; iter < m.opts.MaxIter; iter++ {
		maxDelta := 0.0
		scale := 0.0
		for k := 0; k < dim; k++ {
			if colSq[k] == 0 {
				beta[k] = 0 // constant zero column gets no weight
				continue
			}
			// c_k = (2/n)·Σ x_ik (r_i + x_ik β_k)
			dot := q[k] - intercept*colSum[k] - u[k]
			ck := 2*dot/fn + colSq[k]*beta[k]
			newBeta := softThreshold(ck, lam) / colSq[k]
			if d := newBeta - beta[k]; d != 0 {
				mat.AddScaled(u, d, g.Row(k))
				v += d * colSum[k]
				if ad := math.Abs(d); ad > maxDelta {
					maxDelta = ad
				}
			}
			if ab := math.Abs(beta[k]); ab > scale {
				scale = ab
			}
			beta[k] = newBeta
		}
		if m.opts.FitIntercept {
			// The optimal unpenalized intercept shift is the residual
			// mean ȳ − b − (sᵀβ)/n.
			mean := ybar - intercept - v/fn
			if mean != 0 {
				intercept += mean
			}
		}
		if maxDelta <= m.opts.Tol*(scale+1e-12) {
			iter++
			break
		}
	}

	m.Coef = beta
	m.Intercept = intercept
	m.Iterations = iter
	m.fitted = true
	return nil
}

// softThreshold is the Lasso shrinkage operator S(z, λ).
func softThreshold(z, lambda float64) float64 {
	switch {
	case z > lambda:
		return z - lambda
	case z < -lambda:
		return z + lambda
	default:
		return 0
	}
}

// Predict implements ml.Regressor.
func (m *Model) Predict(x []float64) float64 {
	if !m.fitted || len(x) != len(m.Coef) {
		return math.NaN()
	}
	s := m.Intercept
	for i, v := range x {
		if m.Coef[i] != 0 {
			s += m.Coef[i] * v
		}
	}
	return s
}

// NumSelected returns the count of non-zero coefficients.
func (m *Model) NumSelected() int {
	n := 0
	for _, b := range m.Coef {
		if b != 0 {
			n++
		}
	}
	return n
}

// Selected returns the indices of non-zero coefficients.
func (m *Model) Selected() []int {
	var out []int
	for i, b := range m.Coef {
		if b != 0 {
			out = append(out, i)
		}
	}
	return out
}

var _ ml.Regressor = (*Model)(nil)

// lassoJSON is the serialized model state.
type lassoJSON struct {
	Lambda    float64   `json:"lambda"`
	Coef      []float64 `json:"coef"`
	Intercept float64   `json:"intercept"`
}

// MarshalJSON serializes a fitted model.
func (m *Model) MarshalJSON() ([]byte, error) {
	if !m.fitted {
		return nil, ml.ErrNotFitted
	}
	return json.Marshal(lassoJSON{Lambda: m.opts.Lambda, Coef: m.Coef, Intercept: m.Intercept})
}

// UnmarshalJSON restores a model serialized by MarshalJSON.
func (m *Model) UnmarshalJSON(data []byte) error {
	var s lassoJSON
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("lasso: decoding model: %w", err)
	}
	if len(s.Coef) == 0 {
		return fmt.Errorf("lasso: serialized model has no coefficients")
	}
	m.opts = DefaultOptions(s.Lambda)
	m.Coef = s.Coef
	m.Intercept = s.Intercept
	m.fitted = true
	return nil
}
