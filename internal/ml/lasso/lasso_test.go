package lasso

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ml"
	"repro/internal/randx"
)

func makeSparseProblem(src *randx.Source, n int) (X [][]float64, y []float64) {
	// y = 5*x0 - 3*x2 + noise; x1, x3, x4 are irrelevant.
	for i := 0; i < n; i++ {
		row := make([]float64, 5)
		for j := range row {
			row[j] = src.Uniform(-2, 2)
		}
		X = append(X, row)
		y = append(y, 5*row[0]-3*row[2]+src.Norm(0, 0.05))
	}
	return X, y
}

func TestOptionsValidate(t *testing.T) {
	if err := (&Options{Lambda: -1, MaxIter: 10, Tol: 1e-6}).Validate(); err == nil {
		t.Fatal("negative lambda accepted")
	}
	if err := (&Options{Lambda: 1, MaxIter: 0, Tol: 1e-6}).Validate(); err == nil {
		t.Fatal("zero MaxIter accepted")
	}
	if err := (&Options{Lambda: 1, MaxIter: 10, Tol: 0}).Validate(); err == nil {
		t.Fatal("zero Tol accepted")
	}
	if _, err := New(Options{Lambda: -1, MaxIter: 10, Tol: 1e-6}); err == nil {
		t.Fatal("New accepted invalid options")
	}
}

func TestZeroLambdaMatchesOLS(t *testing.T) {
	src := randx.New(1)
	X, y := makeSparseProblem(src, 200)
	m, err := New(DefaultOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-5) > 0.05 || math.Abs(m.Coef[2]+3) > 0.05 {
		t.Fatalf("lambda=0 coefficients: %v", m.Coef)
	}
}

func TestSparsityRecovery(t *testing.T) {
	src := randx.New(2)
	X, y := makeSparseProblem(src, 300)
	m, err := New(DefaultOptions(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	sel := m.Selected()
	if len(sel) != 2 || sel[0] != 0 || sel[1] != 2 {
		t.Fatalf("selected = %v, want [0 2]; coefs %v", sel, m.Coef)
	}
	if m.NumSelected() != 2 {
		t.Fatalf("NumSelected = %d", m.NumSelected())
	}
}

func TestMonotoneSparsityInLambda(t *testing.T) {
	src := randx.New(3)
	X, y := makeSparseProblem(src, 300)
	prev := math.MaxInt
	// Count of selected features must be non-increasing along an
	// increasing lambda grid (allowing small CD wiggle of 1).
	for _, lam := range []float64{0.001, 0.01, 0.1, 1, 10, 100} {
		m, err := New(DefaultOptions(lam))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		if m.NumSelected() > prev {
			t.Fatalf("selection grew with lambda %v: %d > %d", lam, m.NumSelected(), prev)
		}
		prev = m.NumSelected()
	}
	if prev != 0 {
		t.Fatalf("huge lambda still selects %d features", prev)
	}
}

func TestHugeLambdaPredictsMean(t *testing.T) {
	src := randx.New(4)
	X, y := makeSparseProblem(src, 100)
	m, err := New(DefaultOptions(1e12))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if m.NumSelected() != 0 {
		t.Fatalf("lambda=1e12 selected %d", m.NumSelected())
	}
	mean := ml.Mean(y)
	if p := m.Predict(X[0]); math.Abs(p-mean) > 1e-6 {
		t.Fatalf("all-zero model predicts %v, want mean %v", p, mean)
	}
}

func TestConstantColumnGetsZeroWeight(t *testing.T) {
	src := randx.New(5)
	var X [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		x := src.Uniform(-1, 1)
		X = append(X, []float64{x, 0}) // second column identically zero
		y = append(y, 2*x)
	}
	m, err := New(DefaultOptions(0.001))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if m.Coef[1] != 0 {
		t.Fatalf("zero column got weight %v", m.Coef[1])
	}
}

func TestRawScaleFeatures(t *testing.T) {
	// Features on wildly different scales, like the paper's raw system
	// features (memory ~1e6 KB, CPU ~1e1 %). With a large lambda the
	// big-scale feature survives longest because its correlation term
	// dominates the threshold.
	src := randx.New(6)
	var X [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		mem := src.Uniform(1e6, 3e6)
		cpu := src.Uniform(0, 100)
		X = append(X, []float64{mem, cpu})
		y = append(y, 2e-4*mem+1.0*cpu+src.Norm(0, 10))
	}
	small, err := New(DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := small.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if small.NumSelected() != 2 {
		t.Fatalf("small lambda selected %d of 2", small.NumSelected())
	}
	big, err := New(DefaultOptions(1e5))
	if err != nil {
		t.Fatal(err)
	}
	if err := big.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if big.NumSelected() != 1 || big.Coef[0] == 0 {
		t.Fatalf("big lambda kept wrong set: %v", big.Coef)
	}
}

func TestWarmStartConsistency(t *testing.T) {
	src := randx.New(7)
	X, y := makeSparseProblem(src, 200)
	cold, _ := New(DefaultOptions(0.1))
	if err := cold.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	warm, _ := New(DefaultOptions(10))
	if err := warm.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	warm.opts.Lambda = 0.1
	if err := warm.Fit(X, y); err != nil { // warm start from lambda=10 solution
		t.Fatal(err)
	}
	for i := range cold.Coef {
		if math.Abs(cold.Coef[i]-warm.Coef[i]) > 1e-3 {
			t.Fatalf("warm start diverged: %v vs %v", cold.Coef, warm.Coef)
		}
	}
}

func TestNameEncodesLambda(t *testing.T) {
	m, _ := New(DefaultOptions(1e9))
	if m.Name() != "lasso-lambda-1e+09" {
		t.Fatalf("Name = %q", m.Name())
	}
}

func TestUnfittedPredict(t *testing.T) {
	m, _ := New(DefaultOptions(1))
	if !math.IsNaN(m.Predict([]float64{1})) {
		t.Fatal("unfitted Predict not NaN")
	}
}

// Property: the objective never increases when lambda decreases the
// penalty on an already-sparse solution — concretely, training loss
// (MSE part) is non-increasing as lambda shrinks.
func TestTrainingLossMonotoneInLambda(t *testing.T) {
	src := randx.New(8)
	X, y := makeSparseProblem(src, 150)
	mse := func(lam float64) float64 {
		m, err := New(DefaultOptions(lam))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		var s float64
		for i := range X {
			d := y[i] - m.Predict(X[i])
			s += d * d
		}
		return s / float64(len(X))
	}
	prev := math.Inf(1)
	for _, lam := range []float64{100, 10, 1, 0.1, 0.01} {
		cur := mse(lam)
		if cur > prev+1e-9 {
			t.Fatalf("training MSE rose as lambda fell: %v -> %v at %v", prev, cur, lam)
		}
		prev = cur
	}
}

// Property: soft-threshold shrinks toward zero and is odd.
func TestSoftThresholdProperty(t *testing.T) {
	f := func(zRaw int16, lamRaw uint8) bool {
		z := float64(zRaw) / 10
		lam := float64(lamRaw) / 10
		s := softThreshold(z, lam)
		if math.Abs(s) > math.Abs(z) {
			return false
		}
		if softThreshold(-z, lam) != -s {
			return false
		}
		if math.Abs(z) <= lam && s != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFit300x30(b *testing.B) {
	src := randx.New(9)
	n, d := 300, 30
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for j := range row {
			row[j] = src.Uniform(0, 100)
		}
		X[i] = row
		y[i] = src.Uniform(0, 100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := New(DefaultOptions(1))
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	src := randx.New(30)
	X, y := makeSparseProblem(src, 100)
	m, err := New(DefaultOptions(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	data, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var restored Model
	if err := restored.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if restored.Lambda() != 0.1 {
		t.Fatalf("lambda drift: %v", restored.Lambda())
	}
	probe := X[0]
	if restored.Predict(probe) != m.Predict(probe) {
		t.Fatal("prediction drift after JSON round trip")
	}
}

func TestJSONErrors(t *testing.T) {
	m, _ := New(DefaultOptions(1))
	if _, err := m.MarshalJSON(); err == nil {
		t.Fatal("unfitted marshal accepted")
	}
	var r Model
	if err := r.UnmarshalJSON([]byte("nope")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if err := r.UnmarshalJSON([]byte(`{"lambda":1,"coef":[],"intercept":0}`)); err == nil {
		t.Fatal("empty coefficients accepted")
	}
}
