package lasso

import (
	"math"
	"testing"

	"repro/internal/randx"
)

// TestCovEvictMatchesFresh pins Append+Evict cycles of the covariance
// state against a fresh build over the surviving window.
func TestCovEvictMatchesFresh(t *testing.T) {
	src := randx.New(71)
	const total, window, slide, cycles = 400, 150, 25, 10
	X, y := makeSparseProblem(src, total)

	cov, err := NewCov(X[:window], y[:window])
	if err != nil {
		t.Fatal(err)
	}
	lo := 0
	for c := 0; c < cycles; c++ {
		hi := window + c*slide
		if err := cov.Append(X[hi:hi+slide], y[hi:hi+slide]); err != nil {
			t.Fatalf("cycle %d: append: %v", c, err)
		}
		if err := cov.Evict(X[lo:lo+slide], y[lo:lo+slide]); err != nil {
			t.Fatalf("cycle %d: evict: %v", c, err)
		}
		lo += slide
		want, err := NewCov(X[lo:hi+slide], y[lo:hi+slide])
		if err != nil {
			t.Fatal(err)
		}
		if cov.N() != want.N() {
			t.Fatalf("cycle %d: N %d vs %d", c, cov.N(), want.N())
		}
		for k := 0; k < cov.Dim(); k++ {
			for j := 0; j < cov.Dim(); j++ {
				if d := math.Abs(cov.g.At(k, j) - want.g.At(k, j)); d > 1e-8 {
					t.Fatalf("cycle %d: G(%d,%d) diff %g", c, k, j, d)
				}
			}
			if d := math.Abs(cov.q[k] - want.q[k]); d > 1e-8 {
				t.Fatalf("cycle %d: q[%d] diff %g", c, k, d)
			}
			if d := math.Abs(cov.colSum[k] - want.colSum[k]); d > 1e-8 {
				t.Fatalf("cycle %d: colSum[%d] diff %g", c, k, d)
			}
		}
		if d := math.Abs(cov.ySum - want.ySum); d > 1e-8 {
			t.Fatalf("cycle %d: ySum diff %g", c, d)
		}
	}
}

// TestCovEvictErrors covers the validation contract: bad dimensions
// and over-eviction are rejected without mutating the state.
func TestCovEvictErrors(t *testing.T) {
	src := randx.New(72)
	X, y := makeSparseProblem(src, 40)
	cov, err := NewCov(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if err := cov.Evict(nil, nil); err != nil {
		t.Fatalf("empty evict: %v", err)
	}
	if err := cov.Evict([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	big, by := makeSparseProblem(src, 41)
	if err := cov.Evict(big, by); err == nil {
		t.Fatal("over-eviction accepted")
	}
	if cov.N() != 40 {
		t.Fatalf("failed evicts mutated N to %d", cov.N())
	}
}

// TestModelUpdateWindowMatchesFit pins the sliding-window lasso model
// against a from-scratch Fit on the surviving window, over repeated
// slides (the coordinate solver converges to the same optimum; the
// shared tolerance bounds the difference).
func TestModelUpdateWindowMatchesFit(t *testing.T) {
	src := randx.New(73)
	const total, window, slide, cycles = 500, 200, 30, 8
	X, y := makeSparseProblem(src, total)

	opts := DefaultOptions(0.5)
	opts.Tol = 1e-10 // tight, so both solvers land on the same optimum
	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X[:window], y[:window]); err != nil {
		t.Fatal(err)
	}
	lo := 0
	for c := 0; c < cycles; c++ {
		hi := window + c*slide
		if err := m.UpdateWindow(X[hi:hi+slide], y[hi:hi+slide], X[lo:lo+slide], y[lo:lo+slide]); err != nil {
			t.Fatalf("cycle %d: %v", c, err)
		}
		lo += slide
	}
	ref, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Fit(X[lo:window+(cycles-1)*slide+slide], y[lo:window+(cycles-1)*slide+slide]); err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(m.Intercept - ref.Intercept); d > 1e-6 {
		t.Fatalf("intercept diff %g", d)
	}
	for k := range ref.Coef {
		if d := math.Abs(m.Coef[k] - ref.Coef[k]); d > 1e-6 {
			t.Fatalf("coef[%d] diff %g (%g vs %g)", k, d, m.Coef[k], ref.Coef[k])
		}
	}
	// Evict-only and append-only degenerate calls keep working.
	if err := m.UpdateWindow(nil, nil, X[lo:lo+5], y[lo:lo+5]); err != nil {
		t.Fatalf("evict-only: %v", err)
	}
	if err := m.UpdateWindow(X[:5], y[:5], nil, nil); err != nil {
		t.Fatalf("append-only: %v", err)
	}
	// Errors leave the model unchanged.
	before := append([]float64(nil), m.Coef...)
	if err := m.UpdateWindow([][]float64{{1}}, []float64{1}, nil, nil); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	for k := range before {
		if m.Coef[k] != before[k] {
			t.Fatal("failed UpdateWindow mutated coefficients")
		}
	}
}

// TestModelUpdateWindowShapeGuard pins the validate-before-mutate
// contract on the shape Append would only reject after the eviction
// already mutated the state: zero rows with non-empty targets.
func TestModelUpdateWindowShapeGuard(t *testing.T) {
	src := randx.New(74)
	X, y := makeSparseProblem(src, 60)
	m, err := New(DefaultOptions(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := m.UpdateWindow(nil, []float64{5}, X[:3], y[:3]); err == nil {
		t.Fatal("rows/targets mismatch accepted")
	}
	if m.cov.N() != 60 {
		t.Fatalf("failed UpdateWindow mutated the covariance (N %d)", m.cov.N())
	}
}
