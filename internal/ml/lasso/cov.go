package lasso

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/ml"
)

// Cov is the covariance-formulation state of the glmnet trick shared
// by every Lasso fit on the same design: the Gram matrix G = XᵀX, the
// correlations q = Xᵀy, the column sums and the target sum. Building
// it costs one pass over the data; afterwards each coordinate update
// is O(d), a whole λ-grid path reuses it unchanged (FitPath), and
// appended training rows fold in with rank-1 updates (Append) so
// incremental retraining never revisits the history.
type Cov struct {
	dim    int
	n      int
	g      *mat.Dense // XᵀX
	q      []float64  // Xᵀy
	colSum []float64  // Σ_i x_ik
	ySum   float64    // Σ_i y_i
}

// NewCov computes the covariance state from a training set. It is
// exactly Append onto the empty state: a Cov built fresh over rows and
// one that accumulated the same rows incrementally perform identical
// arithmetic in identical order and hold bitwise-equal state, so the
// feature selections downstream (which hinge on soft-threshold
// boundaries) cannot diverge between the fresh and incremental paths
// no matter how the dense-kernel summation order evolves. The build is
// O(n·d²) through the same vectorized rank-1 updates Append uses; d is
// small here, and trading the tiled one-pass Gram for path-identity is
// the point.
func NewCov(X [][]float64, y []float64) (*Cov, error) {
	dim, err := ml.CheckTrainingSet(X, y)
	if err != nil {
		return nil, err
	}
	c := &Cov{
		dim:    dim,
		g:      mat.NewDense(dim, dim),
		q:      make([]float64, dim),
		colSum: make([]float64, dim),
	}
	if err := c.Append(X, y); err != nil {
		return nil, err
	}
	return c, nil
}

// N returns the number of accumulated training rows.
func (c *Cov) N() int { return c.n }

// Dim returns the feature dimension.
func (c *Cov) Dim() int { return c.dim }

// Append folds new training rows into the covariance state with one
// rank-1 update per row — O(m·d²) for m new rows, independent of how
// much history G already summarizes.
func (c *Cov) Append(Xnew [][]float64, ynew []float64) error {
	if len(Xnew) == 0 && len(ynew) == 0 {
		return nil
	}
	dim, err := ml.CheckTrainingSet(Xnew, ynew)
	if err != nil {
		return err
	}
	if dim != c.dim {
		return fmt.Errorf("lasso: appended rows have %d features, want %d", dim, c.dim)
	}
	for i, x := range Xnew {
		yi := ynew[i]
		for k, v := range x {
			if v != 0 {
				mat.AddScaled(c.g.Row(k), v, x)
			}
			c.q[k] += v * yi
			c.colSum[k] += v
		}
		c.ySum += yi
	}
	c.n += len(Xnew)
	return nil
}

// Evict subtracts the contribution of the oldest training rows from
// the covariance state with one rank-1 downdate per row — the mirror
// of Append, and the reason a sliding-window pipeline never rebuilds
// XᵀX from the surviving history. Callers pass the evicted rows
// themselves (the state is a summary; it cannot reconstruct them).
// The state is validated before any mutation, so a failed call leaves
// it untouched.
func (c *Cov) Evict(Xold [][]float64, yold []float64) error {
	if len(Xold) == 0 && len(yold) == 0 {
		return nil
	}
	dim, err := ml.CheckTrainingSet(Xold, yold)
	if err != nil {
		return err
	}
	if dim != c.dim {
		return fmt.Errorf("lasso: evicted rows have %d features, want %d", dim, c.dim)
	}
	if len(Xold) > c.n {
		return fmt.Errorf("lasso: evicting %d rows of %d accumulated", len(Xold), c.n)
	}
	for i, x := range Xold {
		yi := yold[i]
		for k, v := range x {
			if v != 0 {
				mat.AddScaled(c.g.Row(k), -v, x)
			}
			c.q[k] -= v * yi
			c.colSum[k] -= v
		}
		c.ySum -= yi
	}
	c.n -= len(Xold)
	return nil
}

// solve runs cyclic coordinate descent for one λ on the covariance
// state, warm-starting from beta/intercept (both updated in place;
// beta has length Dim). It returns the sweeps used. This is the one
// solver behind Model.Fit, Model.Update and FitPath, so every path —
// cold, warm, incremental — performs identical arithmetic.
func (c *Cov) solve(beta []float64, intercept *float64, lam float64, opts Options) int {
	dim := c.dim
	fn := float64(c.n)
	colSq := make([]float64, dim)
	for k := 0; k < dim; k++ {
		colSq[k] = 2 * c.g.At(k, k) / fn
	}
	ybar := c.ySum / fn
	b0 := *intercept
	if !opts.FitIntercept {
		b0 = 0
	}

	// Warm-start state: u = G·β, v = sᵀβ, maintained incrementally as
	// β changes.
	u := make([]float64, dim)
	var v float64
	for k, b := range beta {
		if b != 0 {
			mat.AddScaled(u, b, c.g.Row(k))
			v += b * c.colSum[k]
		}
	}

	var iter int
	for iter = 0; iter < opts.MaxIter; iter++ {
		maxDelta := 0.0
		scale := 0.0
		for k := 0; k < dim; k++ {
			if colSq[k] == 0 {
				beta[k] = 0 // constant zero column gets no weight
				continue
			}
			// c_k = (2/n)·Σ x_ik (r_i + x_ik β_k)
			dot := c.q[k] - b0*c.colSum[k] - u[k]
			ck := 2*dot/fn + colSq[k]*beta[k]
			newBeta := softThreshold(ck, lam) / colSq[k]
			if d := newBeta - beta[k]; d != 0 {
				mat.AddScaled(u, d, c.g.Row(k))
				v += d * c.colSum[k]
				if ad := math.Abs(d); ad > maxDelta {
					maxDelta = ad
				}
			}
			if ab := math.Abs(beta[k]); ab > scale {
				scale = ab
			}
			beta[k] = newBeta
		}
		if opts.FitIntercept {
			// The optimal unpenalized intercept shift is the residual
			// mean ȳ − b − (sᵀβ)/n.
			mean := ybar - b0 - v/fn
			if mean != 0 {
				b0 += mean
			}
		}
		if maxDelta <= opts.Tol*(scale+1e-12) {
			iter++
			break
		}
	}
	*intercept = b0
	return iter
}

// PathResult is the solution at one λ of a regularization path.
type PathResult struct {
	// Lambda is the penalty this solution was computed at.
	Lambda float64
	// Coef and Intercept are the fitted parameters.
	Coef      []float64
	Intercept float64
	// Iterations is the number of coordinate-descent sweeps used.
	Iterations int
}

// FitPath solves the Lasso at every λ in lambdas over one shared
// covariance build: XᵀX and Xᵀy are computed once and the
// coefficients warm-start from the previous grid point, exactly the
// arithmetic of chaining warm-started Fits but without the per-λ
// covariance rebuild (ascending λ order recommended). opts.Lambda is
// ignored; the grid supplies the penalties.
func FitPath(X [][]float64, y []float64, lambdas []float64, opts Options) ([]PathResult, error) {
	cov, err := NewCov(X, y)
	if err != nil {
		return nil, err
	}
	return FitPathCov(cov, lambdas, opts)
}

// FitPathCov is FitPath for callers that already hold (and possibly
// incrementally maintain) the covariance state.
func FitPathCov(cov *Cov, lambdas []float64, opts Options) ([]PathResult, error) {
	if len(lambdas) == 0 {
		return nil, fmt.Errorf("lasso: empty lambda grid")
	}
	for _, l := range lambdas {
		if l < 0 || math.IsNaN(l) {
			return nil, fmt.Errorf("lasso: negative lambda %v", l)
		}
	}
	opts.Lambda = lambdas[0]
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	beta := make([]float64, cov.dim)
	var intercept float64
	out := make([]PathResult, 0, len(lambdas))
	for _, lam := range lambdas {
		iters := cov.solve(beta, &intercept, lam, opts)
		out = append(out, PathResult{
			Lambda:     lam,
			Coef:       append([]float64(nil), beta...),
			Intercept:  intercept,
			Iterations: iters,
		})
	}
	return out, nil
}
