package lasso

import (
	"math"
	"testing"

	"repro/internal/randx"
)

// pathGrid is a λ grid matched to makeSparseProblem's scales.
func pathGrid() []float64 {
	return []float64{0.01, 0.1, 0.5, 1, 2, 5, 10, 20}
}

// TestFitPathMatchesWarmStartedFits pins FitPath against its
// from-scratch counterpart: the warm-started per-λ Fit loop featsel
// used before (one model reused across the grid, covariance rebuilt
// every λ). The arithmetic is identical, so the match is exact.
func TestFitPathMatchesWarmStartedFits(t *testing.T) {
	src := randx.New(21)
	X, y := makeSparseProblem(src, 300)
	grid := pathGrid()

	got, err := FitPath(X, y, grid, DefaultOptions(grid[0]))
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(DefaultOptions(grid[0]))
	if err != nil {
		t.Fatal(err)
	}
	for gi, lam := range grid {
		if err := m.SetLambda(lam); err != nil {
			t.Fatal(err)
		}
		if err := m.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		if got[gi].Lambda != lam {
			t.Fatalf("grid[%d]: lambda %g, want %g", gi, got[gi].Lambda, lam)
		}
		if d := math.Abs(got[gi].Intercept - m.Intercept); d > 1e-8 {
			t.Fatalf("lambda %g: intercept diff %g", lam, d)
		}
		for k := range m.Coef {
			if d := math.Abs(got[gi].Coef[k] - m.Coef[k]); d > 1e-8 {
				t.Fatalf("lambda %g: coef[%d] diff %g", lam, k, d)
			}
		}
		if got[gi].Iterations != m.Iterations {
			t.Fatalf("lambda %g: %d iterations, want %d", lam, got[gi].Iterations, m.Iterations)
		}
	}
}

// TestCovAppendMatchesFresh checks the rank-1 append path reproduces
// the covariance state a fresh build over the combined rows computes,
// including across repeated small appends.
func TestCovAppendMatchesFresh(t *testing.T) {
	src := randx.New(22)
	X, y := makeSparseProblem(src, 240)
	grown, err := NewCov(X[:100], y[:100])
	if err != nil {
		t.Fatal(err)
	}
	for at := 100; at < len(X); at += 35 {
		end := min(at+35, len(X))
		if err := grown.Append(X[at:end], y[at:end]); err != nil {
			t.Fatal(err)
		}
	}
	fresh, err := NewCov(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if grown.N() != fresh.N() || grown.Dim() != fresh.Dim() {
		t.Fatalf("state %d/%d, want %d/%d", grown.N(), grown.Dim(), fresh.N(), fresh.Dim())
	}
	for k := 0; k < fresh.Dim(); k++ {
		for j := 0; j < fresh.Dim(); j++ {
			if d := math.Abs(grown.g.At(k, j) - fresh.g.At(k, j)); d > 1e-8 {
				t.Fatalf("g[%d][%d] diff %g", k, j, d)
			}
		}
		if d := math.Abs(grown.q[k] - fresh.q[k]); d > 1e-8 {
			t.Fatalf("q[%d] diff %g", k, d)
		}
		if d := math.Abs(grown.colSum[k] - fresh.colSum[k]); d > 1e-8 {
			t.Fatalf("colSum[%d] diff %g", k, d)
		}
	}
	if d := math.Abs(grown.ySum - fresh.ySum); d > 1e-8 {
		t.Fatalf("ySum diff %g", d)
	}
	// Dimension mismatch is rejected.
	if err := grown.Append([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("expected dimension error")
	}
}

// TestModelUpdateMatchesCombinedFit checks the incremental Update
// reaches the same optimum a from-scratch fit on the combined data
// does (same convex objective, so both converge to it).
func TestModelUpdateMatchesCombinedFit(t *testing.T) {
	src := randx.New(23)
	X, y := makeSparseProblem(src, 260)
	for _, lam := range []float64{0.1, 2} {
		inc, err := New(DefaultOptions(lam))
		if err != nil {
			t.Fatal(err)
		}
		if err := inc.Fit(X[:200], y[:200]); err != nil {
			t.Fatal(err)
		}
		if err := inc.Update(X[200:230], y[200:230]); err != nil {
			t.Fatal(err)
		}
		if err := inc.Update(X[230:], y[230:]); err != nil {
			t.Fatal(err)
		}
		ref, err := New(DefaultOptions(lam))
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		for k := range ref.Coef {
			if d := math.Abs(inc.Coef[k] - ref.Coef[k]); d > 1e-4 {
				t.Fatalf("lambda %g: coef[%d] %g vs %g", lam, k, inc.Coef[k], ref.Coef[k])
			}
		}
		if d := math.Abs(inc.Intercept - ref.Intercept); d > 1e-4 {
			t.Fatalf("lambda %g: intercept %g vs %g", lam, inc.Intercept, ref.Intercept)
		}
	}
	// Update before Fit is an error.
	cold, _ := New(DefaultOptions(1))
	if err := cold.Update(X[:2], y[:2]); err == nil {
		t.Fatal("expected error for Update before Fit")
	}
}

// benchPathProblem builds a correlated design resembling the raw F2PM
// features (used/free pairs) at paper scale.
func benchPathProblem(n, d int) ([][]float64, []float64) {
	src := randx.New(99)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, d)
		base := src.Uniform(0, 1e6)
		for j := range row {
			if j%2 == 0 {
				row[j] = base + src.Norm(0, 1e3)
			} else {
				row[j] = src.Uniform(0, 100)
			}
		}
		X[i] = row
		y[i] = 1e-4*row[0] - 2e-4*row[2] + 0.5*row[1] + src.Norm(0, 10)
	}
	return X, y
}

// benchGrid24 is the 24-λ grid of BenchmarkLassoFitPath: the paper's
// decade grid 10⁰..10⁹ refined with intermediate points.
func benchGrid24() []float64 {
	out := make([]float64, 0, 24)
	for e := 0; e < 12; e++ {
		out = append(out, math.Pow(10, float64(e)*0.834), 3*math.Pow(10, float64(e)*0.834))
	}
	return out
}

// benchPathN is the training-set size of the path benchmarks — the
// paper-scale row count where the per-λ covariance rebuild (O(n·d²))
// dominates the sweeps (O(d²) each).
const benchPathN = 4000

// decadeGrid is the paper's default λ grid 10⁰..10⁹.
func decadeGrid() []float64 {
	out := make([]float64, 10)
	for e := range out {
		out[e] = math.Pow(10, float64(e))
	}
	return out
}

func benchFitPath(b *testing.B, grid []float64) {
	X, y := benchPathProblem(benchPathN, 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := FitPath(X, y, grid, DefaultOptions(grid[0]))
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != len(grid) {
			b.Fatal("short path")
		}
	}
}

// BenchmarkLassoFitPath measures the shared-covariance path solver
// over a 24-λ grid.
func BenchmarkLassoFitPath(b *testing.B) { benchFitPath(b, benchGrid24()) }

// BenchmarkLassoPathDefaultGrid is FitPath over the paper's default
// 10⁰..10⁹ grid — compare with BenchmarkLassoFitPerLambda, its
// from-scratch counterpart on the same grid.
func BenchmarkLassoPathDefaultGrid(b *testing.B) { benchFitPath(b, decadeGrid()) }

// BenchmarkLassoFitPerLambda is the from-scratch counterpart of
// BenchmarkLassoPathDefaultGrid: the warm-started per-λ Fit loop that
// rebuilds the covariance at every grid point (featsel's pre-FitPath
// behaviour).
func BenchmarkLassoFitPerLambda(b *testing.B) {
	X, y := benchPathProblem(benchPathN, 30)
	grid := decadeGrid()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := New(DefaultOptions(grid[0]))
		if err != nil {
			b.Fatal(err)
		}
		for _, lam := range grid {
			if err := m.SetLambda(lam); err != nil {
				b.Fatal(err)
			}
			if err := m.Fit(X, y); err != nil {
				b.Fatal(err)
			}
		}
	}
}
