// Package ml defines the shared contract implemented by the six F2PM
// learning methods (paper §III-D): Linear Regression, M5P, REP-Tree,
// Lasso as a Predictor, Support-Vector Machine regression, and
// Least-Squares SVM. Each lives in its own subpackage; this package holds
// the Regressor interface and common helpers.
package ml

import (
	"errors"
	"fmt"
	"math"
)

// Common training errors.
var (
	// ErrNotFitted is returned by Predict before a successful Fit.
	ErrNotFitted = errors.New("ml: model is not fitted")
	// ErrNoData is returned by Fit on an empty training set.
	ErrNoData = errors.New("ml: empty training set")
	// ErrDimension is returned on inconsistent feature dimensions.
	ErrDimension = errors.New("ml: inconsistent dimensions")
)

// Regressor is a trainable RTTF prediction model.
type Regressor interface {
	// Name returns a short identifier ("linear", "m5p", ...).
	Name() string
	// Fit trains on rows X with targets y. Implementations must not
	// retain references into X or y after returning.
	Fit(X [][]float64, y []float64) error
	// Predict returns the model output for one feature vector. Calling
	// Predict on an unfitted model returns NaN.
	Predict(x []float64) float64
}

// CheckTrainingSet validates the common Fit preconditions and returns the
// feature dimension.
func CheckTrainingSet(X [][]float64, y []float64) (dim int, err error) {
	if len(X) == 0 || len(y) == 0 {
		return 0, ErrNoData
	}
	if len(X) != len(y) {
		return 0, fmt.Errorf("%w: %d rows vs %d targets", ErrDimension, len(X), len(y))
	}
	dim = len(X[0])
	if dim == 0 {
		return 0, fmt.Errorf("%w: zero-width feature rows", ErrDimension)
	}
	for i, row := range X {
		if len(row) != dim {
			return 0, fmt.Errorf("%w: row %d has %d features, want %d", ErrDimension, i, len(row), dim)
		}
	}
	for i, v := range y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("ml: target %d is %v", i, v)
		}
	}
	return dim, nil
}

// IncrementalRegressor is implemented by regressors whose fit can be
// extended with appended training rows at a cost scaling with the new
// rows rather than the whole history (the incremental-retraining
// contract used by core.Pipeline.Update). Update must converge to the
// same solution a from-scratch Fit on the combined data would reach,
// modulo any preprocessing statistics the model documents as frozen at
// the initial Fit. Implementations must not retain references into
// Xnew or ynew after returning.
type IncrementalRegressor interface {
	Regressor
	Update(Xnew [][]float64, ynew []float64) error
}

// WindowedRegressor extends the incremental contract with bounded
// memory: the fit can also *evict* its oldest training rows, so a
// long-lived deployment retrains on a sliding window instead of an
// ever-growing history (core.Pipeline enforces this under a
// WindowPolicy). UpdateWindow must converge to the same solution a
// from-scratch Fit on the surviving window (old rows after the evicted
// prefix, then the new rows) would reach, modulo any preprocessing
// statistics the model documents as frozen.
//
// evictX/evictY are the evicted rows in history order. Learners that
// summarize the history instead of retaining it (lasso's covariance
// state) need them to subtract contributions; learners that retain
// their training set may use only the count. Implementations must not
// retain references into any argument after returning.
type WindowedRegressor interface {
	IncrementalRegressor
	UpdateWindow(Xnew [][]float64, ynew []float64, evictX [][]float64, evictY []float64) error
}

// UpdateInfo describes what the latest Update call actually did, for
// surfacing in pipeline reports: whether the model extended its fit
// incrementally or fell back to a full refit, and — for models that
// freeze preprocessing statistics at the initial Fit — how far the
// appended rows had drifted from those statistics.
type UpdateInfo struct {
	// Incremental is true when the fit was extended in place at a cost
	// scaling with the new rows.
	Incremental bool
	// DriftScore is the standardizer drift of the appended rows: the
	// largest per-feature deviation of their mean (in frozen-σ units)
	// or of their σ ratio from 1. Zero when the model does not track
	// drift.
	DriftScore float64
	// DriftRefit is true when DriftScore exceeded the configured
	// threshold and the model refit from scratch with fresh statistics.
	DriftRefit bool
	// Evicted counts the oldest training rows a sliding-window update
	// removed from the fit (0 for plain appends).
	Evicted int
}

// UpdateReporter is implemented by incremental regressors that report
// what their latest Update did (core.Pipeline.Update surfaces this in
// the per-model results).
type UpdateReporter interface {
	LastUpdate() UpdateInfo
}

// PreprocessPinner is implemented by regressors that freeze feature
// preprocessing statistics at the initial Fit and can transplant them:
// PinPreprocessing configures the (typically unfitted) receiver so its
// next Fit reuses src's frozen statistics, which is what lets a
// from-scratch fit on the combined window reproduce an incrementally
// updated model exactly — the cross-check behind the update parity
// tests. src must be a fitted model of the same concrete type.
type PreprocessPinner interface {
	PinPreprocessing(src Regressor) error
}

// DriftSigmaMinBatch is the smallest batch whose sample σ is compared
// against frozen standardizer statistics by DriftScore: below it the σ
// estimate is dominated by sampling noise (a single row always has σ 0,
// which would read as full drift), so only the mean-shift term is
// scored.
const DriftSigmaMinBatch = 8

// DriftScore measures how far a standardized batch sits from the frozen
// statistics it was standardized with: the largest per-feature |mean|
// (in σ units) and, for batches of at least DriftSigmaMinBatch rows,
// |σ − 1|. A batch drawn from the training distribution scores near 0.
// The incremental kernel machines use it to decide when appended rows
// have drifted far enough from the frozen standardizer to force a
// from-scratch refit (UpdateInfo.DriftRefit).
func DriftScore(Xs [][]float64) float64 {
	n := len(Xs)
	if n == 0 {
		return 0
	}
	d := len(Xs[0])
	score := 0.0
	for j := 0; j < d; j++ {
		var sum, ss float64
		for i := 0; i < n; i++ {
			sum += Xs[i][j]
		}
		mean := sum / float64(n)
		if v := math.Abs(mean); v > score {
			score = v
		}
		if n < DriftSigmaMinBatch {
			continue
		}
		for i := 0; i < n; i++ {
			dv := Xs[i][j] - mean
			ss += dv * dv
		}
		sd := math.Sqrt(ss / float64(n))
		if v := math.Abs(sd - 1); v > score {
			score = v
		}
	}
	return score
}

// BatchPredictor is implemented by regressors with an optimized
// batched prediction path (the kernel machines evaluate all support
// vectors through flat batched kernels and reuse scratch buffers
// across rows). Semantics must match calling Predict per row.
type BatchPredictor interface {
	PredictBatch(X [][]float64, out []float64)
}

// PredictAll applies the model to every row, taking the batched path
// when the model provides one.
func PredictAll(r Regressor, X [][]float64) []float64 {
	out := make([]float64, len(X))
	if bp, ok := r.(BatchPredictor); ok {
		bp.PredictBatch(X, out)
		return out
	}
	for i, row := range X {
		out[i] = r.Predict(row)
	}
	return out
}

// CloneMatrix deep-copies a row matrix, so models can retain training
// data safely.
func CloneMatrix(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

// CloneVector copies a vector.
func CloneVector(y []float64) []float64 { return append([]float64(nil), y...) }

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}
