package kernel

import (
	"math"

	"repro/internal/mat"
)

// Rows is a flat, stride-padded copy of feature rows with cached
// squared norms. It is the batched evaluation layout: Gram
// construction and batched prediction (EvalInto) run straight over the
// flat buffer instead of per-pair interface calls, so the built-in
// kernels hit mat's blocked dot/exp engine.
type Rows struct {
	n, d, stride int
	data         []float64 // n*stride, rows padded with zeros
	norms        []float64 // ||x_i||²
}

// NewRows copies X (rows of equal length) into the flat layout.
func NewRows(X [][]float64) *Rows {
	n := len(X)
	r := &Rows{n: n}
	if n == 0 {
		return r
	}
	r.d = len(X[0])
	// Pad the stride to a multiple of 4 so the vectorized dot kernel
	// never needs a scalar tail: the zero padding adds nothing.
	r.stride = (r.d + 3) &^ 3
	r.data = make([]float64, n*r.stride)
	r.norms = make([]float64, n)
	for i, row := range X {
		copy(r.data[i*r.stride:], row)
	}
	mat.Parfor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := r.padded(i)
			var s float64
			for _, v := range row {
				s += v * v
			}
			r.norms[i] = s
		}
	})
	return r
}

// Len returns the number of rows.
func (r *Rows) Len() int { return r.n }

// Dim returns the feature dimension.
func (r *Rows) Dim() int { return r.d }

// Row returns a view of row i (without padding).
func (r *Rows) Row(i int) []float64 { return r.data[i*r.stride : i*r.stride+r.d] }

// padded returns row i including its zero padding, the shape the
// batched dot kernel wants.
func (r *Rows) padded(i int) []float64 { return r.data[i*r.stride : (i+1)*r.stride] }

// Matrix computes the Gram matrix K[i][j] = k(X[i], X[j]) exploiting
// symmetry: the lower triangle is built row-parallel and mirrored. The
// built-in kernels take a flat fast path — one X·Xᵀ pass plus, for
// RBF, the squared-norm identity ‖a−b‖² = ‖a‖² + ‖b‖² − 2a·b fused
// with the exponential — while custom kernels fall back to per-pair
// Eval.
func Matrix(k Kernel, X [][]float64) *mat.Dense {
	return MatrixRows(k, NewRows(X))
}

// MatrixRows is Matrix for callers that already hold the flat layout.
func MatrixRows(k Kernel, r *Rows) *mat.Dense {
	n := r.n
	out := mat.NewDense(n, n)
	switch kk := k.(type) {
	case Linear:
		gramDots(r, out, nil)
	case RBF:
		if kk.Gamma > 0 {
			gramDots(r, out, func(row []float64, i int) {
				mat.RBFRow(row, r.norms, r.norms[i], kk.Gamma)
			})
			break
		}
		gramGeneric(k, r, out)
	case Poly:
		gramDots(r, out, func(row []float64, _ int) {
			powRow(row, kk.Scale, kk.Coef0, kk.Degree)
		})
	default:
		gramGeneric(k, r, out)
	}
	mat.MirrorLower(out)
	return out
}

// gramDots fills the lower triangle of out with pairwise dot products,
// applying transform (if any) to each row while it is still cache-hot.
func gramDots(r *Rows, out *mat.Dense, transform func(row []float64, i int)) {
	n := r.n
	mat.Parfor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := out.Row(i)[:i+1]
			mat.DotBatch(r.padded(i), r.data, r.stride, i+1, row)
			if transform != nil {
				transform(row, i)
			}
		}
	})
}

// gramGeneric fills the lower triangle with per-pair Eval calls (the
// pre-engine path, kept for custom kernels).
func gramGeneric(k Kernel, r *Rows, out *mat.Dense) {
	mat.Parfor(r.n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := out.Row(i)
			for j := 0; j <= i; j++ {
				row[j] = k.Eval(r.Row(i), r.Row(j))
			}
		}
	})
}

// powRow applies v -> (scale*v + coef0)^degree in place, using
// repeated multiplication for small integer degrees (math.Pow costs
// more than the dot product it follows).
func powRow(vals []float64, scale, coef0, degree float64) {
	if n := int(degree); degree == float64(n) && n >= 0 && n <= 8 {
		for j, v := range vals {
			base := scale*v + coef0
			p := 1.0
			for e := 0; e < n; e++ {
				p *= base
			}
			vals[j] = p
		}
		return
	}
	for j, v := range vals {
		vals[j] = math.Pow(scale*v+coef0, degree)
	}
}

// EvalInto computes out[i] = k(r.X[i], x) for every stored row without
// allocating: the batched prediction path behind svm.Predict,
// lssvm.Predict and ml.PredictAll. Built-in kernels go through the
// flat engine; custom kernels fall back to per-row Eval.
func EvalInto(k Kernel, r *Rows, x, out []float64) {
	switch kk := k.(type) {
	case Linear:
		mat.DotBatch(x, r.data, r.stride, r.n, out)
	case RBF:
		if kk.Gamma > 0 {
			mat.DotBatch(x, r.data, r.stride, r.n, out)
			var xn float64
			for _, v := range x {
				xn += v * v
			}
			mat.RBFRow(out, r.norms, xn, kk.Gamma)
			return
		}
		for i := 0; i < r.n; i++ {
			out[i] = k.Eval(r.Row(i), x)
		}
	case Poly:
		mat.DotBatch(x, r.data, r.stride, r.n, out)
		powRow(out[:r.n], kk.Scale, kk.Coef0, kk.Degree)
	default:
		for i := 0; i < r.n; i++ {
			out[i] = k.Eval(r.Row(i), x)
		}
	}
}
