package kernel

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// Rows is a flat, stride-padded copy of feature rows with cached
// squared norms. It is the batched evaluation layout: Gram
// construction and batched prediction (EvalInto) run straight over the
// flat buffer instead of per-pair interface calls, so the built-in
// kernels hit mat's blocked dot/exp engine.
//
// The store is ring-capable for sliding windows: EvictFront drops the
// oldest rows in O(1) by advancing a head offset, keeping the live
// region contiguous (the batched kernels need flat rows, so a true
// wrap-around ring is out); Append reclaims the evicted front by
// compacting in place before it would otherwise grow. Steady-state
// evict+append cycles therefore run at a flat capacity — the
// bounded-memory contract of the sliding-window retrainers.
type Rows struct {
	n, d, stride int
	head         int       // first live row of buf
	buf          []float64 // backing; live rows at [head*stride, (head+n)*stride)
	normsBuf     []float64 // backing for ||x_i||², aligned with buf rows
}

// NewRows copies X (rows of equal length) into the flat layout.
func NewRows(X [][]float64) *Rows {
	n := len(X)
	r := &Rows{n: n}
	if n == 0 {
		return r
	}
	r.d = len(X[0])
	// Pad the stride to a multiple of 4 so the vectorized dot kernel
	// never needs a scalar tail: the zero padding adds nothing.
	r.stride = (r.d + 3) &^ 3
	r.buf = make([]float64, n*r.stride)
	r.normsBuf = make([]float64, n)
	for i, row := range X {
		copy(r.buf[i*r.stride:], row)
	}
	mat.Parfor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := r.padded(i)
			var s float64
			for _, v := range row {
				s += v * v
			}
			r.normsBuf[i] = s
		}
	})
	return r
}

// flat returns the live stride-padded region (row 0 first), the layout
// the batched kernels consume.
func (r *Rows) flat() []float64 { return r.buf[r.head*r.stride:] }

// norms returns the live squared-norm slice aligned with flat.
func (r *Rows) norms() []float64 { return r.normsBuf[r.head:] }

// Append grows the flat row store with new feature rows, keeping the
// stride-padded layout and cached norms. The backing buffers grow with
// amortized headroom — and reuse the space EvictFront freed at the
// front before growing — so both the streaming-retrain pattern (many
// small appends) and the sliding-window pattern (evict+append cycles)
// run at bounded, eventually flat capacity. Appending to an empty Rows
// fixes the dimension from the first row.
func (r *Rows) Append(Xnew [][]float64) error {
	if len(Xnew) == 0 {
		return nil
	}
	if r.n == 0 && r.d == 0 {
		*r = *NewRows(Xnew)
		return nil
	}
	for i, row := range Xnew {
		if len(row) != r.d {
			return fmt.Errorf("kernel: appended row %d has %d features, want %d", i, len(row), r.d)
		}
	}
	m := len(Xnew)
	r.reserveTail(m)
	for i, row := range Xnew {
		gi := r.head + r.n + i
		dst := r.buf[gi*r.stride : (gi+1)*r.stride]
		copy(dst, row)
		clear(dst[r.d:]) // the padding must stay zero for the dot kernel
		var s float64
		for _, v := range dst {
			s += v * v
		}
		r.normsBuf[gi] = s
	}
	r.n += m
	return nil
}

// reserveTail makes room for m more rows after the live region:
// reslice within capacity when the tail has room, compact the live
// rows to the front when only the evicted head has it, and reallocate
// with 1.5× headroom otherwise.
func (r *Rows) reserveTail(m int) {
	need := (r.head + r.n + m) * r.stride
	if need <= cap(r.buf) && r.head+r.n+m <= cap(r.normsBuf) {
		r.buf = r.buf[:need]
		r.normsBuf = r.normsBuf[:r.head+r.n+m]
		return
	}
	if r.head > 0 && (r.n+m)*r.stride <= cap(r.buf) && r.n+m <= cap(r.normsBuf) {
		// Compact: the freed front plus the tail fits the append. copy
		// handles the overlapping forward move.
		copy(r.buf[:r.n*r.stride], r.buf[r.head*r.stride:(r.head+r.n)*r.stride])
		copy(r.normsBuf[:r.n], r.normsBuf[r.head:r.head+r.n])
		r.head = 0
		r.buf = r.buf[:(r.n+m)*r.stride]
		r.normsBuf = r.normsBuf[:r.n+m]
		return
	}
	newLen := (r.n + m) * r.stride
	nb := make([]float64, newLen, max(newLen, cap(r.buf)*3/2))
	copy(nb, r.buf[r.head*r.stride:])
	nn := make([]float64, r.n+m, max(r.n+m, cap(r.normsBuf)*3/2))
	copy(nn, r.normsBuf[r.head:])
	r.head = 0
	r.buf = nb
	r.normsBuf = nn
}

// Truncate drops rows from the tail, keeping the backing capacity, so
// a failed incremental update can roll the store back to its previous
// length.
func (r *Rows) Truncate(n int) {
	if n < 0 || n > r.n {
		panic(fmt.Sprintf("kernel: truncating %d rows to %d", r.n, n))
	}
	r.n = n
	r.buf = r.buf[:(r.head+n)*r.stride]
	r.normsBuf = r.normsBuf[:r.head+n]
}

// EvictFront drops the k oldest rows in O(1): the head offset advances
// and the freed space is reclaimed by a later Append's compaction. The
// complement of Truncate for sliding windows.
func (r *Rows) EvictFront(k int) {
	if k < 0 || k > r.n {
		panic(fmt.Sprintf("kernel: evicting %d of %d rows", k, r.n))
	}
	r.head += k
	r.n -= k
	if r.n == 0 {
		r.head = 0
		r.buf = r.buf[:0]
		r.normsBuf = r.normsBuf[:0]
	}
}

// Tail returns a zero-copy read-only view of the store without its
// first k rows: row i of the view is row k+i of r, sharing the backing
// buffers. Sliding retrainers evaluate kernel borders against the
// surviving window through it before committing the eviction. Any
// mutation of r (or of the view) invalidates the other.
func (r *Rows) Tail(k int) *Rows {
	if k < 0 || k > r.n {
		panic(fmt.Sprintf("kernel: tail view past %d of %d rows", k, r.n))
	}
	v := *r
	v.head += k
	v.n -= k
	return &v
}

// Cap returns the row capacity of the backing buffer. Sliding-window
// tests assert it stays flat across evict+append cycles.
func (r *Rows) Cap() int {
	if r.stride == 0 {
		return 0
	}
	return cap(r.buf) / r.stride
}

// Len returns the number of rows.
func (r *Rows) Len() int { return r.n }

// Stride returns the padded row stride of the flat layout (a multiple
// of 4, >= Dim). Batched callers that stage query rows for
// EvalBatchFlat lay them out at this stride with zeroed padding.
func (r *Rows) Stride() int { return r.stride }

// Dim returns the feature dimension.
func (r *Rows) Dim() int { return r.d }

// Row returns a view of row i (without padding).
func (r *Rows) Row(i int) []float64 {
	gi := r.head + i
	return r.buf[gi*r.stride : gi*r.stride+r.d]
}

// padded returns row i including its zero padding, the shape the
// batched dot kernel wants.
func (r *Rows) padded(i int) []float64 {
	gi := r.head + i
	return r.buf[gi*r.stride : (gi+1)*r.stride]
}

// Matrix computes the Gram matrix K[i][j] = k(X[i], X[j]) exploiting
// symmetry: the lower triangle is built row-parallel and mirrored. The
// built-in kernels take a flat fast path — one X·Xᵀ pass plus, for
// RBF, the squared-norm identity ‖a−b‖² = ‖a‖² + ‖b‖² − 2a·b fused
// with the exponential — while custom kernels fall back to per-pair
// Eval.
func Matrix(k Kernel, X [][]float64) *mat.Dense {
	return MatrixRows(k, NewRows(X))
}

// MatrixRows is Matrix for callers that already hold the flat layout.
func MatrixRows(k Kernel, r *Rows) *mat.Dense {
	return matrixRowsInto(k, r, mat.NewDense(r.n, r.n))
}

// MatrixRowsPooled is MatrixRows with the result drawn from pool, so
// callers that rebuild Gram matrices repeatedly (warm-start retrains,
// sliding windows) recycle the n² buffer instead of reallocating it.
// Pool buffers are class-sized, which is what makes the recycle stick:
// a plain NewDense matrix has exact capacity and PutDense silently
// drops it. The scratch is returned to pool if a custom kernel's Eval
// panics mid-build, matching ExtendMatrixRows.
func MatrixRowsPooled(k Kernel, r *Rows, pool *mat.Pool) *mat.Dense {
	out := pool.GetDense(r.n, r.n)
	done := false
	defer func() {
		if !done {
			pool.PutDense(out)
		}
	}()
	matrixRowsInto(k, r, out)
	done = true
	return out
}

// matrixRowsInto fills out (n×n, contents arbitrary — every element is
// written) with the Gram matrix of r.
func matrixRowsInto(k Kernel, r *Rows, out *mat.Dense) *mat.Dense {
	switch kk := k.(type) {
	case Linear:
		gramDots(r, out, nil)
	case RBF:
		if kk.Gamma > 0 {
			gramDots(r, out, func(row []float64, i int) {
				mat.RBFRow(row, r.norms(), r.norms()[i], kk.Gamma)
			})
			break
		}
		gramGeneric(k, r, out)
	case Poly:
		gramDots(r, out, func(row []float64, _ int) {
			powRow(row, kk.Scale, kk.Coef0, kk.Degree)
		})
	default:
		gramGeneric(k, r, out)
	}
	mat.MirrorLower(out)
	return out
}

// gramTile is the panel-row tile of the paired Gram walk: one tile of
// stored rows stays L1-resident while every row pair in a worker's
// range streams over it (matching mat's engine tiling).
const gramTile = 48

// gramDots fills the lower triangle of out with pairwise dot products,
// applying transform (if any) to each finished row. Rows are processed
// in globally-aligned pairs through the two-row register tile
// (mat.DotBatch2) with the stored-row walk tiled for L1 reuse; pairing
// is by absolute row index and the tile grid is fixed, so every
// element's reduction path — and therefore its bits — is independent
// of how Parfor splits the pair ranges.
func gramDots(r *Rows, out *mat.Dense, transform func(row []float64, i int)) {
	n := r.n
	flat, stride := r.flat(), r.stride
	pairs := (n + 1) / 2
	mat.Parfor(pairs, func(plo, phi int) {
		for t0 := 0; t0 < 2*phi; t0 += gramTile {
			// Pair p owns rows 2p and 2p+1; its dot columns run
			// [0, 2p+1), so tile t0 only feeds pairs with p >= t0/2.
			for p := max(plo, t0/2); p < phi; p++ {
				i := 2 * p
				hi := min(i+1, t0+gramTile)
				if hi <= t0 {
					continue
				}
				seg := hi - t0
				if i+1 < n {
					mat.DotBatch2(r.padded(i), r.padded(i+1), flat[t0*stride:], stride, seg,
						out.Row(i)[t0:], out.Row(i + 1)[t0:])
				} else {
					mat.DotBatch(r.padded(i), flat[t0*stride:], stride, seg, out.Row(i)[t0:])
				}
			}
		}
		for p := plo; p < phi; p++ {
			i := 2 * p
			if i+1 < n {
				// The paired pass covers columns [0, 2p+1) of both
				// rows; the odd row's diagonal is its self dot (the
				// zero padding contributes nothing).
				x1 := r.padded(i + 1)
				out.Row(i + 1)[i+1] = mat.Dot(x1, x1)
			}
			if transform != nil {
				transform(out.Row(i)[:i+1], i)
				if i+1 < n {
					transform(out.Row(i + 1)[:i+2], i+1)
				}
			}
		}
	})
}

// ExtendMatrixRows extends a Gram matrix previously computed over the
// first oldN rows of r to cover all of r (after Rows.Append), reusing
// every stored kernel value: only the border — new rows against the
// whole set — is evaluated, with the fused RBF/poly transforms applied
// to border rows only. old must be the oldN×oldN matrix MatrixRows
// produced. The result is a fresh n×n matrix (drawn from pool when
// given); old is not modified, so the caller decides when to recycle
// it.
//
// The scratch matrix is handed back to pool when a custom kernel's
// Eval panics during the border evaluation (the one error path of
// this function — shape misuse panics before anything is drawn), so a
// failed extension does not strand a Gram-sized buffer outside the
// pool. The guarantee covers the panic unwinding this goroutine: on
// multi-core runs large borders evaluate on Parfor workers, where an
// Eval panic is fatal to the process and pooling is moot anyway.
func ExtendMatrixRows(k Kernel, r *Rows, oldN int, old *mat.Dense, pool *mat.Pool) *mat.Dense {
	n := r.n
	if oldN > n || old.Rows() != oldN || old.Cols() != oldN {
		panic(fmt.Sprintf("kernel: extending %dx%d Gram to %d rows", old.Rows(), old.Cols(), n))
	}
	out := pool.GetDense(n, n)
	done := false
	defer func() {
		if !done {
			pool.PutDense(out)
		}
	}()
	mat.Parfor(oldN, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(out.Row(i)[:oldN], old.Row(i))
		}
	})
	transform := borderTransform(k, r)
	mat.Parfor(n-oldN, func(lo, hi int) {
		for i := oldN + lo; i < oldN+hi; i++ {
			row := out.Row(i)[:i+1]
			if transform == nil && !isFlatKernel(k) {
				for j := 0; j <= i; j++ {
					row[j] = k.Eval(r.Row(i), r.Row(j))
				}
				continue
			}
			mat.DotBatch(r.padded(i), r.flat(), r.stride, i+1, row)
			if transform != nil {
				transform(row, r.norms(), r.norms()[i])
			}
		}
	})
	// Mirror only the new columns; the old block is already symmetric.
	mat.Parfor(n, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			drow := out.Row(j)
			for i := max(j+1, oldN); i < n; i++ {
				drow[i] = out.At(i, j)
			}
		}
	})
	done = true
	return out
}

// GramEvictRows shrinks a Gram matrix after the leading k rows left
// the window: the surviving (n−k)×(n−k) block is copied into a fresh
// matrix (drawn from pool when given) without re-evaluating a single
// kernel — K[i][j] over the survivors is exactly the trailing block.
// g is not modified, so the caller decides when to recycle it.
func GramEvictRows(g *mat.Dense, k int, pool *mat.Pool) *mat.Dense {
	n := g.Rows()
	if g.Cols() != n || k < 0 || k > n {
		panic(fmt.Sprintf("kernel: evicting %d rows of a %dx%d Gram", k, g.Rows(), g.Cols()))
	}
	m := n - k
	out := pool.GetDense(m, m)
	mat.Parfor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(out.Row(i), g.Row(k + i)[k:k+m])
		}
	})
	return out
}

// GramBorder fills the bordered blocks of the Gram matrix for the rows
// appended after oldN: a21 (m×oldN) holds k(new_i, old_j) and a22
// (m×m, lower triangle only) holds k(new_i, new_j). This is the shape
// mat.Cholesky.Extend consumes, letting incremental retrainers grow
// their factor without materializing the full extended Gram.
func GramBorder(k Kernel, r *Rows, oldN int, a21, a22 *mat.Dense) {
	m := r.n - oldN
	if a21.Rows() != m || a21.Cols() != oldN || a22.Rows() != m || a22.Cols() != m {
		panic(fmt.Sprintf("kernel: GramBorder blocks %dx%d/%dx%d for %d+%d rows",
			a21.Rows(), a21.Cols(), a22.Rows(), a22.Cols(), oldN, m))
	}
	transform := borderTransform(k, r)
	flat := transform != nil || isFlatKernel(k)
	mat.Parfor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			gi := oldN + i
			r21 := a21.Row(i)
			r22 := a22.Row(i)[:i+1]
			if !flat {
				for j := 0; j < oldN; j++ {
					r21[j] = k.Eval(r.Row(gi), r.Row(j))
				}
				for j := 0; j <= i; j++ {
					r22[j] = k.Eval(r.Row(gi), r.Row(oldN+j))
				}
				continue
			}
			mat.DotBatch(r.padded(gi), r.flat(), r.stride, oldN, r21)
			mat.DotBatch(r.padded(gi), r.flat()[oldN*r.stride:], r.stride, i+1, r22)
			if transform != nil {
				transform(r21, r.norms(), r.norms()[gi])
				transform(r22, r.norms()[oldN:], r.norms()[gi])
			}
		}
	})
}

// borderTransform returns the in-place map from dot products to kernel
// values for the built-in non-linear kernels (norms is the slice of
// squared norms aligned with the row being transformed), or nil when
// the dot products are the kernel values (Linear) or the kernel needs
// the per-pair fallback.
func borderTransform(k Kernel, r *Rows) func(row, norms []float64, selfNorm float64) {
	switch kk := k.(type) {
	case RBF:
		if kk.Gamma > 0 {
			return func(row, norms []float64, selfNorm float64) {
				mat.RBFRow(row, norms, selfNorm, kk.Gamma)
			}
		}
	case Poly:
		return func(row, _ []float64, _ float64) {
			powRow(row, kk.Scale, kk.Coef0, kk.Degree)
		}
	}
	return nil
}

// isFlatKernel reports whether plain dot products are the kernel
// values (so the flat path applies with no transform).
func isFlatKernel(k Kernel) bool {
	switch kk := k.(type) {
	case Linear:
		return true
	case RBF:
		return kk.Gamma > 0 // only the transform-less case falls through
	}
	return false
}

// gramGeneric fills the lower triangle with per-pair Eval calls (the
// pre-engine path, kept for custom kernels).
func gramGeneric(k Kernel, r *Rows, out *mat.Dense) {
	mat.Parfor(r.n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := out.Row(i)
			for j := 0; j <= i; j++ {
				row[j] = k.Eval(r.Row(i), r.Row(j))
			}
		}
	})
}

// powRow applies v -> (scale*v + coef0)^degree in place, using
// repeated multiplication for small integer degrees (math.Pow costs
// more than the dot product it follows).
func powRow(vals []float64, scale, coef0, degree float64) {
	if n := int(degree); degree == float64(n) && n >= 0 && n <= 8 {
		for j, v := range vals {
			base := scale*v + coef0
			p := 1.0
			for e := 0; e < n; e++ {
				p *= base
			}
			vals[j] = p
		}
		return
	}
	for j, v := range vals {
		vals[j] = math.Pow(scale*v+coef0, degree)
	}
}

// EvalBatchFlat computes out[i*Len()+j] = k(r.X[j], q_i) for qn query
// rows against every stored row: the tiled multi-query evaluation path
// behind PredictBatch. q holds the queries stride-padded at r.Stride()
// with zeroed padding; qnorms holds their squared norms (only read for
// RBF; may be nil otherwise); out must have qn*Len() room.
//
// Built-in kernels run query pairs through the two-row register tile
// (mat.DotBatch2) with the stored-row walk tiled so one tile of stored
// rows, loaded into L1 once, serves every query pair in a worker's
// range — amortizing panel traffic across the batch instead of
// re-streaming the whole store per query, which is what a loop over
// EvalInto does. Pairing is by absolute query index and the tile grid
// is fixed, so results are bitwise independent of the Parfor split.
// Custom kernels fall back to per-row Eval.
func EvalBatchFlat(k Kernel, r *Rows, q, qnorms []float64, qn int, out []float64) {
	n := r.n
	if qn <= 0 || n == 0 {
		return
	}
	flat, stride := r.flat(), r.stride
	transform := borderTransform(k, r)
	if transform == nil && !isFlatKernel(k) {
		mat.Parfor(qn, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				x := q[i*stride : i*stride+r.d]
				row := out[i*n : (i+1)*n]
				for j := 0; j < n; j++ {
					row[j] = k.Eval(r.Row(j), x)
				}
			}
		})
		return
	}
	pairs := (qn + 1) / 2
	mat.Parfor(pairs, func(plo, phi int) {
		for t0 := 0; t0 < n; t0 += gramTile {
			seg := min(gramTile, n-t0)
			panel := flat[t0*stride:]
			for p := plo; p < phi; p++ {
				i := 2 * p
				x0 := q[i*stride : (i+1)*stride]
				if i+1 < qn {
					x1 := q[(i+1)*stride : (i+2)*stride]
					mat.DotBatch2(x0, x1, panel, stride, seg,
						out[i*n+t0:], out[(i+1)*n+t0:])
				} else {
					mat.DotBatch(x0, panel, stride, seg, out[i*n+t0:])
				}
			}
		}
		if transform != nil {
			for p := plo; p < phi; p++ {
				i := 2 * p
				var qn0 float64
				if qnorms != nil {
					qn0 = qnorms[i]
				}
				transform(out[i*n:(i+1)*n], r.norms(), qn0)
				if i+1 < qn {
					if qnorms != nil {
						qn0 = qnorms[i+1]
					}
					transform(out[(i+1)*n:(i+2)*n], r.norms(), qn0)
				}
			}
		}
	})
}

// EvalInto computes out[i] = k(r.X[i], x) for every stored row without
// allocating: the batched prediction path behind svm.Predict,
// lssvm.Predict and ml.PredictAll. Built-in kernels go through the
// flat engine; custom kernels fall back to per-row Eval.
func EvalInto(k Kernel, r *Rows, x, out []float64) {
	switch kk := k.(type) {
	case Linear:
		mat.DotBatch(x, r.flat(), r.stride, r.n, out)
	case RBF:
		if kk.Gamma > 0 {
			mat.DotBatch(x, r.flat(), r.stride, r.n, out)
			var xn float64
			for _, v := range x {
				xn += v * v
			}
			mat.RBFRow(out, r.norms(), xn, kk.Gamma)
			return
		}
		for i := 0; i < r.n; i++ {
			out[i] = k.Eval(r.Row(i), x)
		}
	case Poly:
		mat.DotBatch(x, r.flat(), r.stride, r.n, out)
		powRow(out[:r.n], kk.Scale, kk.Coef0, kk.Degree)
	default:
		for i := 0; i < r.n; i++ {
			out[i] = k.Eval(r.Row(i), x)
		}
	}
}
