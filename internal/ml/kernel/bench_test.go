package kernel

import (
	"testing"

	"repro/internal/randx"
)

// benchX generates an n×d feature matrix resembling standardized F2PM
// features.
func benchX(n, d int) [][]float64 {
	src := randx.New(42)
	X := make([][]float64, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			row[j] = src.Norm(0, 1)
		}
		X[i] = row
	}
	return X
}

func benchmarkMatrix(b *testing.B, k Kernel, n, d int) {
	X := benchX(n, d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := Matrix(k, X)
		if g.Rows() != n {
			b.Fatal("bad Gram")
		}
	}
}

func BenchmarkMatrixRBF1000(b *testing.B)    { benchmarkMatrix(b, RBF{Gamma: 1.0 / 24}, 1000, 24) }
func BenchmarkMatrixLinear1000(b *testing.B) { benchmarkMatrix(b, Linear{}, 1000, 24) }
func BenchmarkMatrixPoly1000(b *testing.B) {
	benchmarkMatrix(b, Poly{Degree: 2, Scale: 1, Coef0: 1}, 1000, 24)
}
func BenchmarkMatrixRBF300(b *testing.B) { benchmarkMatrix(b, RBF{Gamma: 1.0 / 24}, 300, 24) }
