// Package kernel provides the kernel functions used by the two SVM
// learners (paper §III-D): the linear kernel, the Gaussian RBF kernel
// ("the non-linear map to a high, possibly infinite dimensional space"),
// and a polynomial kernel, plus Gram-matrix construction.
//
// Gram matrices and batched prediction run on a flat engine (gram.go):
// rows are copied once into a stride-padded buffer (Rows), pairwise
// dot products come from one parallel X·Xᵀ pass through mat.DotBatch,
// and the RBF map uses the squared-norm identity
// ‖a−b‖² = ‖a‖² + ‖b‖² − 2a·b fused with a vectorized exponential
// (mat.RBFRow). Per-pair Eval remains the contract for custom kernels
// and the reference the fast paths are pinned against in tests.
package kernel

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// Kernel evaluates k(a, b) on feature vectors of equal length.
type Kernel interface {
	Eval(a, b []float64) float64
	Name() string
}

// Linear is the inner-product kernel k(a,b) = aᵀb.
type Linear struct{}

// Eval implements Kernel.
func (Linear) Eval(a, b []float64) float64 { return mat.Dot(a, b) }

// Name implements Kernel.
func (Linear) Name() string { return "linear" }

// RBF is the Gaussian kernel k(a,b) = exp(-γ‖a-b‖²).
type RBF struct {
	Gamma float64
}

// Eval implements Kernel.
func (k RBF) Eval(a, b []float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return math.Exp(-k.Gamma * d2)
}

// Name implements Kernel.
func (k RBF) Name() string { return fmt.Sprintf("rbf(gamma=%g)", k.Gamma) }

// Poly is the polynomial kernel k(a,b) = (scale·aᵀb + coef0)^degree.
type Poly struct {
	Degree float64
	Scale  float64
	Coef0  float64
}

// Eval implements Kernel.
func (k Poly) Eval(a, b []float64) float64 {
	return math.Pow(k.Scale*mat.Dot(a, b)+k.Coef0, k.Degree)
}

// Name implements Kernel.
func (k Poly) Name() string {
	return fmt.Sprintf("poly(degree=%g,scale=%g,coef0=%g)", k.Degree, k.Scale, k.Coef0)
}

// AutoGamma returns the common heuristic γ = 1/(d·Var) where Var is the
// mean per-feature variance of X — sensible only for standardized
// features, where it reduces to 1/d.
func AutoGamma(X [][]float64) float64 {
	if len(X) == 0 || len(X[0]) == 0 {
		return 1
	}
	d := len(X[0])
	var totalVar float64
	for j := 0; j < d; j++ {
		var sum, sumSq float64
		for i := range X {
			v := X[i][j]
			sum += v
			sumSq += v * v
		}
		n := float64(len(X))
		mean := sum / n
		v := sumSq/n - mean*mean
		if v > 0 {
			totalVar += v
		}
	}
	meanVar := totalVar / float64(d)
	if meanVar <= 0 {
		meanVar = 1
	}
	return 1 / (float64(d) * meanVar)
}

// Standardizer z-scores features using training statistics; both SVM
// learners need it because the raw F2PM features span 10⁰..10⁶ scales,
// which would make RBF distances meaningless (WEKA's SMOreg normalizes
// inputs by default, which the paper relied on).
type Standardizer struct {
	Mean []float64
	Std  []float64
}

// FitStandardizer learns per-column mean and standard deviation;
// zero-variance columns get Std 1 so they map to a constant 0.
func FitStandardizer(X [][]float64) *Standardizer {
	if len(X) == 0 {
		return &Standardizer{}
	}
	d := len(X[0])
	s := &Standardizer{Mean: make([]float64, d), Std: make([]float64, d)}
	n := float64(len(X))
	for j := 0; j < d; j++ {
		var sum float64
		for i := range X {
			sum += X[i][j]
		}
		s.Mean[j] = sum / n
	}
	for j := 0; j < d; j++ {
		var ss float64
		for i := range X {
			dv := X[i][j] - s.Mean[j]
			ss += dv * dv
		}
		sd := math.Sqrt(ss / n)
		if sd == 0 {
			sd = 1
		}
		s.Std[j] = sd
	}
	return s
}

// Apply transforms one row into z-scores (new slice).
func (s *Standardizer) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	s.ApplyInto(x, out)
	return out
}

// ApplyInto transforms one row into z-scores, writing into dst so
// batched prediction loops can reuse one buffer.
func (s *Standardizer) ApplyInto(x, dst []float64) {
	for j := range x {
		dst[j] = (x[j] - s.Mean[j]) / s.Std[j]
	}
}

// ApplyAll transforms every row.
func (s *Standardizer) ApplyAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = s.Apply(row)
	}
	return out
}
