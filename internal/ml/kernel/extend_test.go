package kernel

import (
	"math"
	"testing"

	"repro/internal/mat"
)

// borderKernels is the roster the incremental paths are pinned over:
// every built-in fast path plus a custom kernel forcing the per-pair
// fallback.
func borderKernels() []Kernel {
	return []Kernel{
		Linear{},
		RBF{Gamma: 0.3},
		Poly{Degree: 2, Scale: 0.5, Coef0: 1},
		funcKernel{},
	}
}

// funcKernel is a custom kernel with no flat fast path.
type funcKernel struct{}

func (funcKernel) Eval(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return 1 / (1 + s)
}
func (funcKernel) Name() string { return "abs-dist" }

func TestRowsAppendLayout(t *testing.T) {
	X := randX(7, 20, 5)
	all := NewRows(X)
	grown := NewRows(X[:8])
	if err := grown.Append(X[8:15]); err != nil {
		t.Fatal(err)
	}
	if err := grown.Append(X[15:]); err != nil {
		t.Fatal(err)
	}
	if grown.Len() != all.Len() || grown.Dim() != all.Dim() {
		t.Fatalf("grown %dx%d, want %dx%d", grown.Len(), grown.Dim(), all.Len(), all.Dim())
	}
	for i := 0; i < all.Len(); i++ {
		for j := 0; j < all.Dim(); j++ {
			if grown.Row(i)[j] != all.Row(i)[j] {
				t.Fatalf("row %d col %d: %g vs %g", i, j, grown.Row(i)[j], all.Row(i)[j])
			}
		}
		if grown.norms()[i] != all.norms()[i] {
			t.Fatalf("norm %d: %g vs %g", i, grown.norms()[i], all.norms()[i])
		}
	}
	// Appending to an empty Rows adopts the dimension.
	empty := NewRows(nil)
	if err := empty.Append(X[:3]); err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 3 || empty.Dim() != 5 {
		t.Fatalf("empty append: %dx%d", empty.Len(), empty.Dim())
	}
	// Dimension mismatches are rejected.
	if err := empty.Append([][]float64{{1, 2}}); err == nil {
		t.Fatal("expected dimension error")
	}
}

// TestExtendMatrixRowsParity pins the incremental Gram extension to
// the from-scratch build for every kernel, including repeated small
// appends.
func TestExtendMatrixRowsParity(t *testing.T) {
	const n, d = 60, 7
	X := randX(11, n, d)
	pool := &mat.Pool{}
	for _, k := range borderKernels() {
		full := Matrix(k, X)
		// One big append.
		r := NewRows(X[:25])
		g := MatrixRows(k, r)
		if err := r.Append(X[25:]); err != nil {
			t.Fatal(err)
		}
		got := ExtendMatrixRows(k, r, 25, g, pool)
		if diff := maxDiff(got, full); diff > 1e-12 {
			t.Fatalf("%s: one-shot extend diff %g", k.Name(), diff)
		}
		pool.PutDense(got)
		// Many small appends, recycling each intermediate Gram.
		r = NewRows(X[:10])
		g = MatrixRows(k, r)
		for at := 10; at < n; at += 13 {
			end := min(at+13, n)
			if err := r.Append(X[at:end]); err != nil {
				t.Fatal(err)
			}
			ng := ExtendMatrixRows(k, r, at, g, pool)
			pool.PutDense(g)
			g = ng
		}
		if diff := maxDiff(g, full); diff > 1e-12 {
			t.Fatalf("%s: chained extend diff %g", k.Name(), diff)
		}
	}
}

func TestGramBorderParity(t *testing.T) {
	const n, oldN, d = 48, 31, 6
	X := randX(13, n, d)
	m := n - oldN
	for _, k := range borderKernels() {
		full := Matrix(k, X)
		r := NewRows(X[:oldN])
		if err := r.Append(X[oldN:]); err != nil {
			t.Fatal(err)
		}
		a21 := mat.NewDense(m, oldN)
		a22 := mat.NewDense(m, m)
		GramBorder(k, r, oldN, a21, a22)
		for i := 0; i < m; i++ {
			for j := 0; j < oldN; j++ {
				if got, want := a21.At(i, j), full.At(oldN+i, j); math.Abs(got-want) > 1e-12 {
					t.Fatalf("%s: a21[%d][%d] = %g, want %g", k.Name(), i, j, got, want)
				}
			}
			for j := 0; j <= i; j++ {
				if got, want := a22.At(i, j), full.At(oldN+i, oldN+j); math.Abs(got-want) > 1e-12 {
					t.Fatalf("%s: a22[%d][%d] = %g, want %g", k.Name(), i, j, got, want)
				}
			}
		}
	}
}

func maxDiff(a, b *mat.Dense) float64 {
	var m float64
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if d := math.Abs(a.At(i, j) - b.At(i, j)); d > m {
				m = d
			}
		}
	}
	return m
}
