package kernel

import (
	"math"
	"testing"

	"repro/internal/mat"
)

// stageQueries lays query rows out stride-padded with squared norms,
// the shape EvalBatchFlat consumes (what svm/lssvm PredictBatch do
// internally).
func stageQueries(r *Rows, queries [][]float64) (q, qnorms []float64) {
	stride := r.Stride()
	q = make([]float64, len(queries)*stride)
	qnorms = make([]float64, len(queries))
	for i, row := range queries {
		copy(q[i*stride:], row)
		var s float64
		for _, v := range q[i*stride : (i+1)*stride] {
			s += v * v
		}
		qnorms[i] = s
	}
	return q, qnorms
}

func TestEvalBatchFlatMatchesEval(t *testing.T) {
	for _, k := range testKernels() {
		// qn odd/even exercises the remainder query; n around the tile
		// size exercises partial panels.
		for _, dims := range [][3]int{{1, 1, 3}, {5, 3, 1}, {37, 11, 5}, {50, 24, 8}, {97, 13, 7}} {
			n, d, qn := dims[0], dims[1], dims[2]
			X := randX(uint64(n*1000+qn), n, d)
			rows := NewRows(X)
			queries := randX(uint64(n*1000+qn+1), qn, d)
			q, qnorms := stageQueries(rows, queries)
			out := make([]float64, qn*n)
			EvalBatchFlat(k, rows, q, qnorms, qn, out)
			for i := 0; i < qn; i++ {
				for j := 0; j < n; j++ {
					want := k.Eval(X[j], queries[i])
					if !closeRel(out[i*n+j], want, 1e-12) {
						t.Fatalf("%s n=%d qn=%d (%d,%d): got %g want %g",
							k.Name(), n, qn, i, j, out[i*n+j], want)
					}
				}
			}
		}
	}
	// Degenerate shapes are no-ops.
	EvalBatchFlat(Linear{}, NewRows(nil), nil, nil, 0, nil)
	EvalBatchFlat(Linear{}, NewRows([][]float64{{1}}), nil, nil, 0, nil)
}

func TestMatrixRowsPooled(t *testing.T) {
	pool := &mat.Pool{}
	for _, k := range testKernels() {
		X := randX(77, 41, 9)
		rows := NewRows(X)
		want := MatrixRows(k, rows)
		got := MatrixRowsPooled(k, rows, pool)
		for i := 0; i < 41; i++ {
			for j := 0; j < 41; j++ {
				if math.Float64bits(got.At(i, j)) != math.Float64bits(want.At(i, j)) {
					t.Fatalf("%s (%d,%d): pooled %g direct %g", k.Name(), i, j, got.At(i, j), want.At(i, j))
				}
			}
		}
		pool.PutDense(got)
	}
	// The pooled buffer is class-sized, so put/get round-trips reuse it
	// — the property the warm-start allocation fix rests on.
	first := MatrixRowsPooled(Linear{}, NewRows(randX(78, 20, 4)), pool)
	data := &first.Row(0)[0]
	pool.PutDense(first)
	second := MatrixRowsPooled(Linear{}, NewRows(randX(79, 20, 4)), pool)
	if &second.Row(0)[0] != data {
		t.Fatal("pooled Gram buffer was not recycled")
	}
	// nil pool falls back to plain allocation.
	if g := MatrixRowsPooled(Linear{}, NewRows(randX(80, 3, 2)), nil); g.Rows() != 3 {
		t.Fatal("nil-pool build failed")
	}
}

func BenchmarkEvalBatchFlat(b *testing.B) {
	const n, d, qn = 1000, 24, 32
	rows := NewRows(benchX(n, d))
	queries := randX(43, qn, d)
	q, qnorms := stageQueries(rows, queries)
	out := make([]float64, qn*n)
	k := RBF{Gamma: 1.0 / 24}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvalBatchFlat(k, rows, q, qnorms, qn, out)
	}
}
