package kernel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/randx"
)

func TestLinearKernel(t *testing.T) {
	k := Linear{}
	if got := k.Eval([]float64{1, 2}, []float64{3, 4}); got != 11 {
		t.Fatalf("linear = %v, want 11", got)
	}
	if k.Name() != "linear" {
		t.Fatal("name wrong")
	}
}

func TestRBFKernel(t *testing.T) {
	k := RBF{Gamma: 0.5}
	if got := k.Eval([]float64{1, 1}, []float64{1, 1}); got != 1 {
		t.Fatalf("rbf self = %v, want 1", got)
	}
	// ||a-b||^2 = 2 → exp(-1).
	got := k.Eval([]float64{0, 0}, []float64{1, 1})
	if math.Abs(got-math.Exp(-1)) > 1e-12 {
		t.Fatalf("rbf = %v", got)
	}
}

func TestPolyKernel(t *testing.T) {
	k := Poly{Degree: 2, Scale: 1, Coef0: 1}
	// (1*2 + 1)^2 = 9.
	if got := k.Eval([]float64{1}, []float64{2}); got != 9 {
		t.Fatalf("poly = %v, want 9", got)
	}
}

// Property: RBF is bounded in (0, 1], symmetric, and 1 on the diagonal.
func TestRBFProperties(t *testing.T) {
	src := randx.New(1)
	f := func(gRaw uint8) bool {
		g := float64(gRaw%50)/10 + 0.01
		k := RBF{Gamma: g}
		a := []float64{src.Uniform(-5, 5), src.Uniform(-5, 5)}
		b := []float64{src.Uniform(-5, 5), src.Uniform(-5, 5)}
		v := k.Eval(a, b)
		return v > 0 && v <= 1 && k.Eval(b, a) == v && k.Eval(a, a) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: kernel Gram matrices are positive semidefinite — checked by
// Cholesky succeeding after a tiny ridge.
func TestGramPSD(t *testing.T) {
	src := randx.New(2)
	X := make([][]float64, 20)
	for i := range X {
		X[i] = []float64{src.Uniform(-1, 1), src.Uniform(-1, 1), src.Uniform(-1, 1)}
	}
	for _, k := range []Kernel{Linear{}, RBF{Gamma: 1}, Poly{Degree: 2, Scale: 1, Coef0: 1}} {
		g := Matrix(k, X)
		// Symmetry.
		for i := 0; i < g.Rows(); i++ {
			for j := 0; j < g.Cols(); j++ {
				if g.At(i, j) != g.At(j, i) {
					t.Fatalf("%s: Gram not symmetric", k.Name())
				}
			}
		}
		for i := 0; i < g.Rows(); i++ {
			g.Set(i, i, g.At(i, i)+1e-8)
		}
		if _, err := mat.NewCholesky(g); err != nil {
			t.Fatalf("%s: Gram not PSD: %v", k.Name(), err)
		}
	}
}

func TestAutoGamma(t *testing.T) {
	// Standardized features (unit variance): gamma = 1/d.
	src := randx.New(3)
	X := make([][]float64, 5000)
	for i := range X {
		X[i] = []float64{src.Norm(0, 1), src.Norm(0, 1)}
	}
	g := AutoGamma(X)
	if math.Abs(g-0.5) > 0.05 {
		t.Fatalf("AutoGamma = %v, want ~0.5 for 2 unit-variance dims", g)
	}
	if AutoGamma(nil) != 1 {
		t.Fatal("empty AutoGamma not 1")
	}
	// Constant features: fall back to 1/d.
	konst := [][]float64{{5, 5}, {5, 5}}
	if got := AutoGamma(konst); got != 0.5 {
		t.Fatalf("constant AutoGamma = %v", got)
	}
}

func TestStandardizer(t *testing.T) {
	X := [][]float64{{10, 100}, {20, 100}, {30, 100}}
	s := FitStandardizer(X)
	z := s.ApplyAll(X)
	// Column 0: mean 20, sd sqrt(200/3).
	if math.Abs(z[0][0]+z[2][0]) > 1e-12 || z[1][0] != 0 {
		t.Fatalf("standardized col0 = %v %v %v", z[0][0], z[1][0], z[2][0])
	}
	// Constant column maps to zero (Std forced to 1).
	for i := range z {
		if z[i][1] != 0 {
			t.Fatalf("constant column not zeroed: %v", z[i][1])
		}
	}
	// Mean ~0, sd ~1 for col 0.
	var mean, ss float64
	for i := range z {
		mean += z[i][0]
	}
	mean /= 3
	for i := range z {
		d := z[i][0] - mean
		ss += d * d
	}
	if math.Abs(mean) > 1e-12 || math.Abs(math.Sqrt(ss/3)-1) > 1e-12 {
		t.Fatalf("standardization moments wrong: mean=%v sd=%v", mean, math.Sqrt(ss/3))
	}
}

func TestStandardizerEmpty(t *testing.T) {
	s := FitStandardizer(nil)
	if len(s.Mean) != 0 {
		t.Fatal("empty standardizer has state")
	}
}

func TestKernelJSONRoundTrip(t *testing.T) {
	kernels := []Kernel{Linear{}, RBF{Gamma: 2.5}, Poly{Degree: 3, Scale: 0.5, Coef0: 1}}
	for _, k := range kernels {
		data, err := MarshalKernel(k)
		if err != nil {
			t.Fatalf("%s: %v", k.Name(), err)
		}
		restored, err := UnmarshalKernel(data)
		if err != nil {
			t.Fatalf("%s: %v", k.Name(), err)
		}
		a, b := []float64{1, 2}, []float64{3, 4}
		if restored.Eval(a, b) != k.Eval(a, b) {
			t.Fatalf("%s: evaluation drift after round trip", k.Name())
		}
	}
}

func TestKernelJSONErrors(t *testing.T) {
	if _, err := MarshalKernel(customKernel{}); err == nil {
		t.Fatal("custom kernel serialized")
	}
	if _, err := UnmarshalKernel([]byte("{bad")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if _, err := UnmarshalKernel([]byte(`{"kind":"mystery"}`)); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

type customKernel struct{}

func (customKernel) Eval(a, b []float64) float64 { return 0 }
func (customKernel) Name() string                { return "custom" }
