package kernel

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/randx"
)

// randRows builds n random d-dimensional rows.
func randRows(src *randx.Source, n, d int) [][]float64 {
	X := make([][]float64, n)
	for i := range X {
		X[i] = make([]float64, d)
		for j := range X[i] {
			X[i][j] = src.Uniform(-2, 2)
		}
	}
	return X
}

// TestEvictFrontMatchesFresh pins the evicted store — rows, norms, and
// every built-in kernel's Gram — against a fresh store built from the
// surviving rows only.
func TestEvictFrontMatchesFresh(t *testing.T) {
	src := randx.New(61)
	const n, d, k = 40, 5, 13
	X := randRows(src, n, d)
	r := NewRows(X)
	r.EvictFront(k)
	want := NewRows(X[k:])
	if r.Len() != want.Len() || r.Dim() != want.Dim() {
		t.Fatalf("evicted %dx%d, want %dx%d", r.Len(), r.Dim(), want.Len(), want.Dim())
	}
	for i := 0; i < want.Len(); i++ {
		for j := 0; j < d; j++ {
			if r.Row(i)[j] != want.Row(i)[j] {
				t.Fatalf("row %d col %d: %g vs %g", i, j, r.Row(i)[j], want.Row(i)[j])
			}
		}
		if r.norms()[i] != want.norms()[i] {
			t.Fatalf("norm %d: %g vs %g", i, r.norms()[i], want.norms()[i])
		}
	}
	for _, kk := range []Kernel{Linear{}, RBF{Gamma: 1.0 / d}, Poly{Degree: 2, Scale: 0.5, Coef0: 1}} {
		got := MatrixRows(kk, r)
		ref := MatrixRows(kk, want)
		for i := 0; i < got.Rows(); i++ {
			for j := 0; j < got.Cols(); j++ {
				if got.At(i, j) != ref.At(i, j) {
					t.Fatalf("%s: Gram(%d,%d) %g vs %g", kk.Name(), i, j, got.At(i, j), ref.At(i, j))
				}
			}
		}
	}
}

// TestEvictAppendCyclesFlatCapacity drives the sliding-window pattern
// — evict k, append k, repeatedly — and asserts both parity with a
// fresh store and that the backing capacity stops growing after the
// first reallocation (the bounded-memory contract).
func TestEvictAppendCyclesFlatCapacity(t *testing.T) {
	src := randx.New(62)
	const window, slide, cycles, d = 50, 7, 30, 4
	X := randRows(src, window+slide*cycles, d)
	r := NewRows(X[:window])
	maxCap := 0
	for c := 0; c < cycles; c++ {
		r.EvictFront(slide)
		lo := window + c*slide
		if err := r.Append(X[lo : lo+slide]); err != nil {
			t.Fatalf("cycle %d: %v", c, err)
		}
		if c == cycles/2 {
			maxCap = r.Cap()
		}
		if maxCap > 0 && r.Cap() > maxCap {
			t.Fatalf("cycle %d: capacity grew %d -> %d", c, maxCap, r.Cap())
		}
		want := NewRows(X[lo+slide-window : lo+slide])
		for i := 0; i < window; i++ {
			for j := 0; j < d; j++ {
				if r.Row(i)[j] != want.Row(i)[j] {
					t.Fatalf("cycle %d row %d: %g vs %g", c, i, r.Row(i)[j], want.Row(i)[j])
				}
			}
			if r.norms()[i] != want.norms()[i] {
				t.Fatalf("cycle %d norm %d diff", c, i)
			}
		}
	}
	if r.Cap() > 2*(window+slide) {
		t.Fatalf("steady-state capacity %d for a %d-row window", r.Cap(), window)
	}
}

// TestEvictFrontEdges covers the O(1) contract's edges: evicting zero,
// everything, and out-of-range counts.
func TestEvictFrontEdges(t *testing.T) {
	src := randx.New(63)
	X := randRows(src, 6, 3)
	r := NewRows(X)
	r.EvictFront(0)
	if r.Len() != 6 {
		t.Fatalf("evict 0: %d rows", r.Len())
	}
	r.EvictFront(6)
	if r.Len() != 0 {
		t.Fatalf("evict all: %d rows", r.Len())
	}
	// The emptied store still accepts appends (dimension retained).
	if err := r.Append(X[:2]); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 || r.Row(1)[2] != X[1][2] {
		t.Fatalf("append after full evict: %d rows", r.Len())
	}
	for _, bad := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("EvictFront(%d) did not panic", bad)
				}
			}()
			r.EvictFront(bad)
		}()
	}
}

// TestGramEvictRows pins the shrunk Gram against a fresh build over
// the surviving rows — zero kernel evaluations on the evict path.
func TestGramEvictRows(t *testing.T) {
	src := randx.New(64)
	const n, d, k = 30, 4, 11
	X := randRows(src, n, d)
	pool := &mat.Pool{}
	for _, kk := range []Kernel{Linear{}, RBF{Gamma: 1.0 / d}} {
		full := Matrix(kk, X)
		got := GramEvictRows(full, k, pool)
		want := Matrix(kk, X[k:])
		for i := 0; i < want.Rows(); i++ {
			for j := 0; j < want.Cols(); j++ {
				if math.Abs(got.At(i, j)-want.At(i, j)) > 1e-12 {
					t.Fatalf("%s: (%d,%d) %g vs %g", kk.Name(), i, j, got.At(i, j), want.At(i, j))
				}
			}
		}
		pool.PutDense(got)
	}
	// Evicting everything leaves an empty matrix; shape misuse panics.
	if g := GramEvictRows(Matrix(Linear{}, X), n, pool); g.Rows() != 0 {
		t.Fatalf("full evict left %d rows", g.Rows())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized evict did not panic")
		}
	}()
	GramEvictRows(Matrix(Linear{}, X), n+1, pool)
}
