package kernel

import (
	"encoding/json"
	"fmt"
)

// kernelJSON is the serialized form of a kernel: a kind tag plus the
// parameters of the parametric kinds.
type kernelJSON struct {
	Kind   string  `json:"kind"`
	Gamma  float64 `json:"gamma,omitempty"`
	Degree float64 `json:"degree,omitempty"`
	Scale  float64 `json:"scale,omitempty"`
	Coef0  float64 `json:"coef0,omitempty"`
}

// MarshalKernel serializes a kernel to JSON. Only the built-in kernel
// kinds are supported; user-defined kernels cannot round-trip.
func MarshalKernel(k Kernel) ([]byte, error) {
	var kj kernelJSON
	switch kk := k.(type) {
	case Linear:
		kj.Kind = "linear"
	case RBF:
		kj.Kind = "rbf"
		kj.Gamma = kk.Gamma
	case Poly:
		kj.Kind = "poly"
		kj.Degree = kk.Degree
		kj.Scale = kk.Scale
		kj.Coef0 = kk.Coef0
	default:
		return nil, fmt.Errorf("kernel: cannot serialize kernel type %T", k)
	}
	return json.Marshal(kj)
}

// UnmarshalKernel deserializes a kernel written by MarshalKernel.
func UnmarshalKernel(data []byte) (Kernel, error) {
	var kj kernelJSON
	if err := json.Unmarshal(data, &kj); err != nil {
		return nil, fmt.Errorf("kernel: decoding kernel: %w", err)
	}
	switch kj.Kind {
	case "linear":
		return Linear{}, nil
	case "rbf":
		return RBF{Gamma: kj.Gamma}, nil
	case "poly":
		return Poly{Degree: kj.Degree, Scale: kj.Scale, Coef0: kj.Coef0}, nil
	default:
		return nil, fmt.Errorf("kernel: unknown kernel kind %q", kj.Kind)
	}
}
