package kernel

import (
	"math"
	"testing"

	"repro/internal/randx"
)

// naiveMatrix is the per-pair reference the flat fast paths are pinned
// against.
func naiveMatrix(k Kernel, X [][]float64) [][]float64 {
	n := len(X)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := k.Eval(X[i], X[j])
			out[i][j] = v
			out[j][i] = v
		}
	}
	return out
}

func randX(seed uint64, n, d int) [][]float64 {
	src := randx.New(seed)
	X := make([][]float64, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			row[j] = src.Norm(0, 1)
		}
		X[i] = row
	}
	return X
}

// closeRel checks |got-want| <= tol*max(1, |want|): absolute for the
// O(1) RBF values, relative for large polynomial values.
func closeRel(got, want, tol float64) bool {
	if math.IsNaN(got) && math.IsNaN(want) {
		return true // e.g. fractional Poly degree on a negative base
	}
	scale := math.Abs(want)
	if scale < 1 {
		scale = 1
	}
	return math.Abs(got-want) <= tol*scale
}

func testKernels() []Kernel {
	return []Kernel{
		Linear{},
		RBF{Gamma: 1.0 / 7},
		RBF{Gamma: 2.5},
		Poly{Degree: 2, Scale: 1, Coef0: 1},
		Poly{Degree: 3, Scale: 0.5, Coef0: 2},
		Poly{Degree: 1.5, Scale: 1, Coef0: 3}, // non-integer: math.Pow path
		customKernel{},                        // generic fallback
	}
}

func TestMatrixMatchesNaive(t *testing.T) {
	for _, k := range testKernels() {
		for _, dims := range [][2]int{{1, 1}, {2, 3}, {9, 7}, {40, 24}, {65, 13}} {
			X := randX(uint64(dims[0]*100+dims[1]), dims[0], dims[1])
			got := Matrix(k, X)
			want := naiveMatrix(k, X)
			for i := 0; i < len(X); i++ {
				for j := 0; j < len(X); j++ {
					if !closeRel(got.At(i, j), want[i][j], 1e-12) {
						t.Fatalf("%s dims %v (%d,%d): got %g want %g",
							k.Name(), dims, i, j, got.At(i, j), want[i][j])
					}
				}
			}
			// Exact (bitwise) symmetry — the upper triangle is a
			// mirror, so even NaNs must match.
			for i := 0; i < got.Rows(); i++ {
				for j := 0; j < i; j++ {
					if math.Float64bits(got.At(i, j)) != math.Float64bits(got.At(j, i)) {
						t.Fatalf("%s: Gram not symmetric at (%d,%d)", k.Name(), i, j)
					}
				}
			}
		}
	}
}

func TestMatrixRBFDiagonal(t *testing.T) {
	X := randX(5, 30, 12)
	g := Matrix(RBF{Gamma: 0.3}, X)
	for i := 0; i < g.Rows(); i++ {
		if math.Abs(g.At(i, i)-1) > 1e-12 {
			t.Fatalf("diag[%d] = %v, want 1", i, g.At(i, i))
		}
	}
}

func TestEvalIntoMatchesEval(t *testing.T) {
	for _, k := range testKernels() {
		X := randX(9, 37, 11)
		rows := NewRows(X)
		queries := randX(10, 5, 11)
		out := make([]float64, len(X))
		for _, q := range queries {
			EvalInto(k, rows, q, out)
			for i := range X {
				want := k.Eval(X[i], q)
				if !closeRel(out[i], want, 1e-12) {
					t.Fatalf("%s row %d: got %g want %g", k.Name(), i, out[i], want)
				}
			}
		}
	}
}

func TestRowsLayout(t *testing.T) {
	X := [][]float64{{1, 2, 3}, {4, 5, 6}}
	r := NewRows(X)
	if r.Len() != 2 || r.Dim() != 3 {
		t.Fatalf("Len/Dim = %d/%d", r.Len(), r.Dim())
	}
	for i, row := range X {
		for j, v := range row {
			if r.Row(i)[j] != v {
				t.Fatalf("Row(%d)[%d] = %v, want %v", i, j, r.Row(i)[j], v)
			}
		}
	}
	// Norms match direct computation.
	if math.Abs(r.norms()[0]-14) > 1e-12 || math.Abs(r.norms()[1]-77) > 1e-12 {
		t.Fatalf("norms = %v", r.norms())
	}
	// Empty input.
	if NewRows(nil).Len() != 0 {
		t.Fatal("empty Rows has rows")
	}
}
