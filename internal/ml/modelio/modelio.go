// Package modelio persists trained F2PM models: a versioned JSON envelope
// tags the model kind so a predictor trained offline (cmd/f2pm, the
// pipeline) can be deployed next to a live monitor without retraining.
// All six paper methods round-trip; predictions after Load match the
// original model exactly.
//
// Since format version 2 the envelope also carries deployment metadata —
// the column names the model consumes (the Lasso-selected subset for
// reduced-family models) and the aggregation configuration the training
// used — so the serving side can rebuild the exact feature layout and
// projection without out-of-band knowledge. Version-1 envelopes (no
// metadata) still load.
package modelio

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/aggregate"
	"repro/internal/ml"
	"repro/internal/ml/lasso"
	"repro/internal/ml/linreg"
	"repro/internal/ml/lssvm"
	"repro/internal/ml/m5p"
	"repro/internal/ml/reptree"
	"repro/internal/ml/svm"
)

// FormatVersion is bumped when the envelope layout changes. Version 2
// added the optional deployment metadata block.
const FormatVersion = 2

// Meta is the deployment metadata saved alongside a model.
type Meta struct {
	// Features names the dataset columns the model consumes, in model
	// input order. Empty means the full aggregated layout.
	Features []string `json:"features,omitempty"`
	// Aggregation, when non-nil, is the windowing configuration the
	// training pipeline used; a live aggregator built from it emits
	// rows in the layout Features indexes into.
	Aggregation *aggregate.Config `json:"aggregation,omitempty"`
}

// envelope wraps a serialized model with its kind tag.
type envelope struct {
	Format  string          `json:"format"`
	Version int             `json:"version"`
	Kind    string          `json:"kind"`
	Meta    *Meta           `json:"meta,omitempty"`
	Payload json.RawMessage `json:"payload"`
}

const formatName = "f2pm-model"

// kindOf maps a model to its envelope tag.
func kindOf(m ml.Regressor) (string, error) {
	switch m.(type) {
	case *linreg.Model:
		return "linear", nil
	case *lasso.Model:
		return "lasso", nil
	case *m5p.Model:
		return "m5p", nil
	case *reptree.Model:
		return "reptree", nil
	case *svm.Model:
		return "svm", nil
	case *lssvm.Model:
		return "lssvm", nil
	default:
		return "", fmt.Errorf("modelio: unsupported model type %T", m)
	}
}

// Save writes a fitted model to w with no deployment metadata.
func Save(w io.Writer, m ml.Regressor) error { return SaveWithMeta(w, m, nil) }

// SaveWithMeta writes a fitted model plus its deployment metadata.
func SaveWithMeta(w io.Writer, m ml.Regressor, meta *Meta) error {
	kind, err := kindOf(m)
	if err != nil {
		return err
	}
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("modelio: serializing %s model: %w", kind, err)
	}
	env := envelope{Format: formatName, Version: FormatVersion, Kind: kind, Meta: meta, Payload: payload}
	enc := json.NewEncoder(w)
	return enc.Encode(&env)
}

// Load reads a model written by Save and returns a ready predictor.
func Load(r io.Reader) (ml.Regressor, error) {
	m, _, err := LoadWithMeta(r)
	return m, err
}

// LoadWithMeta reads a model and its deployment metadata. Envelopes
// from format version 1 load with nil metadata.
func LoadWithMeta(r io.Reader) (ml.Regressor, *Meta, error) {
	var env envelope
	dec := json.NewDecoder(r)
	if err := dec.Decode(&env); err != nil {
		return nil, nil, fmt.Errorf("modelio: decoding envelope: %w", err)
	}
	if env.Format != formatName {
		return nil, nil, fmt.Errorf("modelio: not an f2pm model file (format %q)", env.Format)
	}
	if env.Version < 1 || env.Version > FormatVersion {
		return nil, nil, fmt.Errorf("modelio: unsupported format version %d (want 1..%d)", env.Version, FormatVersion)
	}
	var m ml.Regressor
	switch env.Kind {
	case "linear":
		m = linreg.New()
	case "lasso":
		lm, err := lasso.New(lasso.DefaultOptions(0))
		if err != nil {
			return nil, nil, err
		}
		m = lm
	case "m5p":
		mm, err := m5p.New(m5p.DefaultOptions())
		if err != nil {
			return nil, nil, err
		}
		m = mm
	case "reptree":
		rm, err := reptree.New(reptree.DefaultOptions())
		if err != nil {
			return nil, nil, err
		}
		m = rm
	case "svm":
		sm, err := svm.New(svm.DefaultOptions())
		if err != nil {
			return nil, nil, err
		}
		m = sm
	case "lssvm":
		lm, err := lssvm.New(lssvm.DefaultOptions())
		if err != nil {
			return nil, nil, err
		}
		m = lm
	default:
		return nil, nil, fmt.Errorf("modelio: unknown model kind %q", env.Kind)
	}
	if err := json.Unmarshal(env.Payload, m); err != nil {
		return nil, nil, fmt.Errorf("modelio: deserializing %s model: %w", env.Kind, err)
	}
	return m, env.Meta, nil
}
