package modelio

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/aggregate"
	"repro/internal/ml"
	"repro/internal/ml/lasso"
	"repro/internal/ml/linreg"
	"repro/internal/ml/lssvm"
	"repro/internal/ml/m5p"
	"repro/internal/ml/reptree"
	"repro/internal/ml/svm"
	"repro/internal/randx"
)

// trainingData builds a nonlinear problem exercising every model family.
func trainingData(n int) (X [][]float64, y []float64) {
	src := randx.New(42)
	for i := 0; i < n; i++ {
		a := src.Uniform(0, 10)
		b := src.Uniform(0, 5)
		X = append(X, []float64{a, b})
		y = append(y, 3*a+math.Sin(a)*20-b*b+src.Norm(0, 0.2))
	}
	return X, y
}

// fittedModels returns one trained instance per method.
func fittedModels(t *testing.T) []ml.Regressor {
	t.Helper()
	X, y := trainingData(200)
	var out []ml.Regressor

	lin := linreg.New()
	if err := lin.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	out = append(out, lin)

	las, err := lasso.New(lasso.DefaultOptions(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if err := las.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	out = append(out, las)

	tree, err := m5p.New(m5p.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	out = append(out, tree)

	rep, err := reptree.New(reptree.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	out = append(out, rep)

	sv, err := svm.New(svm.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := sv.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	out = append(out, sv)

	ls, err := lssvm.New(lssvm.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	out = append(out, ls)

	return out
}

func TestRoundTripAllModels(t *testing.T) {
	models := fittedModels(t)
	probeSrc := randx.New(7)
	probes := make([][]float64, 50)
	for i := range probes {
		probes[i] = []float64{probeSrc.Uniform(0, 10), probeSrc.Uniform(0, 5)}
	}
	for _, m := range models {
		var buf bytes.Buffer
		if err := Save(&buf, m); err != nil {
			t.Fatalf("%s: save: %v", m.Name(), err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatalf("%s: load: %v", m.Name(), err)
		}
		if loaded.Name() != m.Name() {
			t.Fatalf("name changed: %q -> %q", m.Name(), loaded.Name())
		}
		for _, p := range probes {
			want, got := m.Predict(p), loaded.Predict(p)
			if math.IsNaN(want) || math.IsNaN(got) {
				t.Fatalf("%s: NaN prediction after round trip", m.Name())
			}
			if math.Abs(want-got) > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("%s: prediction changed: %v -> %v", m.Name(), want, got)
			}
		}
	}
}

func TestSaveUnfittedRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, linreg.New()); err == nil {
		t.Fatal("unfitted model saved")
	}
}

func TestSaveUnsupportedType(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, unsupported{}); err == nil {
		t.Fatal("unsupported model type saved")
	}
}

type unsupported struct{}

func (unsupported) Name() string                         { return "nope" }
func (unsupported) Fit(X [][]float64, y []float64) error { return nil }
func (unsupported) Predict(x []float64) float64          { return 0 }

func TestLoadErrors(t *testing.T) {
	cases := map[string]string{
		"not json":      "not json at all",
		"wrong format":  `{"format":"other","version":1,"kind":"linear","payload":{}}`,
		"wrong version": `{"format":"f2pm-model","version":99,"kind":"linear","payload":{}}`,
		"unknown kind":  `{"format":"f2pm-model","version":1,"kind":"mystery","payload":{}}`,
		"bad payload":   `{"format":"f2pm-model","version":1,"kind":"linear","payload":{"coef":[]}}`,
	}
	for name, in := range cases {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadTamperedTree(t *testing.T) {
	// A split node referencing an out-of-range feature must be rejected,
	// not crash at predict time.
	X, y := trainingData(100)
	tree, err := reptree.New(reptree.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, tree); err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(buf.String(), `"feature":1`, `"feature":99`, 1)
	if _, err := Load(strings.NewReader(tampered)); err == nil {
		// The tree might not split on feature 1; only fail if the
		// replacement actually happened.
		if tampered != buf.String() {
			t.Fatal("tampered tree accepted")
		}
	}
}

func TestPredictAfterLoadWithoutRefit(t *testing.T) {
	// The loaded model must be usable *without* calling Fit.
	X, y := trainingData(80)
	m, err := m5p.New(m5p.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(loaded.Predict([]float64{5, 2})) {
		t.Fatal("loaded model not ready")
	}
}

// TestMetaRoundTrip pins the version-2 envelope: the feature subset and
// aggregation config survive SaveWithMeta → LoadWithMeta.
func TestMetaRoundTrip(t *testing.T) {
	X, y := trainingData(60)
	lin := linreg.New()
	if err := lin.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	agg := aggregate.Config{WindowSec: 45, IncludeSlopes: true, IncludeIntergen: true}
	meta := &Meta{
		Features:    []string{"mem_used", "num_threads_slope"},
		Aggregation: &agg,
	}
	var buf bytes.Buffer
	if err := SaveWithMeta(&buf, lin, meta); err != nil {
		t.Fatal(err)
	}
	m, got, err := LoadWithMeta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "linear" {
		t.Fatalf("loaded kind %q", m.Name())
	}
	if got == nil || got.Aggregation == nil {
		t.Fatalf("metadata lost: %+v", got)
	}
	if *got.Aggregation != agg {
		t.Fatalf("aggregation %+v, want %+v", *got.Aggregation, agg)
	}
	if len(got.Features) != 2 || got.Features[0] != "mem_used" || got.Features[1] != "num_threads_slope" {
		t.Fatalf("features %v", got.Features)
	}
}

// TestSaveWithoutMetaLoadsNil pins that plain Save yields nil metadata.
func TestSaveWithoutMetaLoadsNil(t *testing.T) {
	X, y := trainingData(60)
	lin := linreg.New()
	if err := lin.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, lin); err != nil {
		t.Fatal(err)
	}
	_, meta, err := LoadWithMeta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta != nil {
		t.Fatalf("unexpected metadata %+v", meta)
	}
}

// TestLoadVersion1Envelope pins backward compatibility: a pre-metadata
// (version 1) envelope still loads, with nil metadata.
func TestLoadVersion1Envelope(t *testing.T) {
	X, y := trainingData(60)
	lin := linreg.New()
	if err := lin.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, lin); err != nil {
		t.Fatal(err)
	}
	// Rewrite the envelope as version 1 without meta, byte-compatible
	// with what the previous release wrote.
	v1 := strings.Replace(buf.String(), `"version":2`, `"version":1`, 1)
	m, meta, err := LoadWithMeta(strings.NewReader(v1))
	if err != nil {
		t.Fatalf("version-1 envelope rejected: %v", err)
	}
	if meta != nil {
		t.Fatalf("version-1 envelope produced metadata %+v", meta)
	}
	want := lin.Predict(X[0])
	if got := m.Predict(X[0]); got != want {
		t.Fatalf("prediction drifted across v1 load: %v vs %v", got, want)
	}
}
