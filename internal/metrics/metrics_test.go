package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/randx"
)

func TestMAE(t *testing.T) {
	got, err := MAE([]float64{1, 2, 3}, []float64{2, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 { // (1+0+2)/3
		t.Fatalf("MAE = %v, want 1", got)
	}
	if _, err := MAE(nil, nil); err != ErrLengthMismatch {
		t.Fatal("empty input accepted")
	}
	if _, err := MAE([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Fatal("mismatched input accepted")
	}
}

func TestRAEPerfectAndTrivial(t *testing.T) {
	obs := []float64{10, 20, 30, 40}
	// Perfect predictor: RAE = 0.
	r, err := RAE(obs, obs)
	if err != nil || r != 0 {
		t.Fatalf("perfect RAE = (%v, %v)", r, err)
	}
	// Mean predictor: RAE = 1 by construction.
	mean := []float64{25, 25, 25, 25}
	r, err = RAE(mean, obs)
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Fatalf("mean-predictor RAE = (%v, %v), want 1", r, err)
	}
}

func TestRAEDegenerate(t *testing.T) {
	obs := []float64{5, 5, 5}
	r, err := RAE([]float64{5, 5, 5}, obs)
	if err != nil || r != 0 {
		t.Fatalf("exact on constant = (%v, %v)", r, err)
	}
	r, err = RAE([]float64{6, 6, 6}, obs)
	if err != nil || !math.IsInf(r, 1) {
		t.Fatalf("wrong on constant = (%v, %v), want +Inf", r, err)
	}
}

func TestMaxAE(t *testing.T) {
	got, err := MaxAE([]float64{1, 2, 3}, []float64{2, 2, 9})
	if err != nil || got != 6 {
		t.Fatalf("MaxAE = (%v, %v), want 6", got, err)
	}
}

func TestSoftMAE(t *testing.T) {
	pred := []float64{1, 2, 3, 10}
	obs := []float64{2, 2, 5, 10} // errors 1, 0, 2, 0
	// Threshold 1.5: only the error 2 counts.
	got, err := SoftMAE(pred, obs, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("SoftMAE = %v, want 0.5", got)
	}
	// Threshold 0 degrades to MAE.
	sm, _ := SoftMAE(pred, obs, 0)
	mae, _ := MAE(pred, obs)
	if sm != mae {
		t.Fatalf("SoftMAE(0) = %v != MAE %v", sm, mae)
	}
	if _, err := SoftMAE(pred, obs, -1); err == nil {
		t.Fatal("negative threshold accepted")
	}
}

func TestRelativeThreshold(t *testing.T) {
	obs := []float64{100, 300}
	if got := RelativeThreshold(obs, 0.1); math.Abs(got-20) > 1e-12 {
		t.Fatalf("RelativeThreshold = %v, want 20", got)
	}
	if RelativeThreshold(nil, 0.1) != 0 || RelativeThreshold(obs, 0) != 0 {
		t.Fatal("degenerate thresholds not 0")
	}
}

func TestEvaluate(t *testing.T) {
	pred := []float64{1, 3}
	obs := []float64{2, 2}
	r, err := Evaluate(pred, obs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if r.MAE != 1 || r.MaxAE != 1 || r.N != 2 || r.SoftThreshold != 0.5 {
		t.Fatalf("report = %+v", r)
	}
	if _, err := Evaluate(nil, nil, 0); err == nil {
		t.Fatal("empty Evaluate accepted")
	}
}

// Property: SoftMAE <= MAE <= MaxAE for any data; SoftMAE is monotone
// non-increasing in the threshold.
func TestMetricOrderingProperty(t *testing.T) {
	src := randx.New(3)
	f := func(seed uint16, thrRaw uint8) bool {
		local := src.Fork(uint64(seed))
		n := 20
		pred := make([]float64, n)
		obs := make([]float64, n)
		for i := 0; i < n; i++ {
			obs[i] = local.Uniform(0, 1000)
			pred[i] = obs[i] + local.Uniform(-200, 200)
		}
		thr := float64(thrRaw)
		mae, err1 := MAE(pred, obs)
		smae, err2 := SoftMAE(pred, obs, thr)
		smae2, err3 := SoftMAE(pred, obs, thr+50)
		maxae, err4 := MaxAE(pred, obs)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		return smae <= mae+1e-12 && mae <= maxae+1e-12 && smae2 <= smae+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: RAE of any predictor against the trivial mean predictor
// baseline is scale-invariant.
func TestRAEScaleInvariance(t *testing.T) {
	src := randx.New(9)
	f := func(scaleRaw uint8) bool {
		scale := float64(scaleRaw%50) + 1
		n := 15
		pred := make([]float64, n)
		obs := make([]float64, n)
		sp := make([]float64, n)
		so := make([]float64, n)
		for i := 0; i < n; i++ {
			obs[i] = src.Uniform(1, 100)
			pred[i] = obs[i] + src.Uniform(-10, 10)
			sp[i] = pred[i] * scale
			so[i] = obs[i] * scale
		}
		r1, err1 := RAE(pred, obs)
		r2, err2 := RAE(sp, so)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(r1-r2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimer(t *testing.T) {
	timer := StartTimer()
	if timer.Elapsed() < 0 {
		t.Fatal("negative elapsed time")
	}
}
