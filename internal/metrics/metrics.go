// Package metrics implements F2PM's model evaluation metrics
// (paper §III-D): Mean Absolute Error, Relative Absolute Error, Maximum
// Absolute Error, and the Soft-Mean Absolute Error (S-MAE) that tolerates
// errors below a user threshold — the metric the paper uses to compare
// models in Table II — plus the training/validation timing harness of
// Tables III and IV.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// ErrLengthMismatch is returned when predictions and observations differ
// in length or are empty.
var ErrLengthMismatch = errors.New("metrics: predicted and observed lengths differ or are zero")

// MAE returns the mean absolute prediction error (paper eq. 5):
// (1/n) Σ |f_i - y_i|.
func MAE(predicted, observed []float64) (float64, error) {
	if len(predicted) == 0 || len(predicted) != len(observed) {
		return 0, ErrLengthMismatch
	}
	var s float64
	for i := range predicted {
		s += math.Abs(predicted[i] - observed[i])
	}
	return s / float64(len(predicted)), nil
}

// RAE returns the relative absolute error (paper eq. 6): the total
// absolute error normalized by the total absolute error of the simple
// mean predictor, Y = (1/n) Σ |y_i|. RAE < 1 means the model beats the
// trivial predictor. When the denominator is zero (constant observations
// equal to their mean) RAE is +Inf for nonzero numerator, 0 otherwise.
func RAE(predicted, observed []float64) (float64, error) {
	if len(predicted) == 0 || len(predicted) != len(observed) {
		return 0, ErrLengthMismatch
	}
	var yBar float64
	for _, y := range observed {
		yBar += math.Abs(y)
	}
	yBar /= float64(len(observed))
	var num, den float64
	for i := range predicted {
		num += math.Abs(predicted[i] - observed[i])
		den += math.Abs(yBar - observed[i])
	}
	if den == 0 {
		if num == 0 {
			return 0, nil
		}
		return math.Inf(1), nil
	}
	return num / den, nil
}

// MaxAE returns the maximum absolute prediction error (the paper's
// "Maximum Absolute Prediction Error").
func MaxAE(predicted, observed []float64) (float64, error) {
	if len(predicted) == 0 || len(predicted) != len(observed) {
		return 0, ErrLengthMismatch
	}
	var m float64
	for i := range predicted {
		if d := math.Abs(predicted[i] - observed[i]); d > m {
			m = d
		}
	}
	return m, nil
}

// SoftMAE returns the Soft-Mean Absolute Error: like MAE, except errors
// below threshold count as zero. The paper motivates this with proactive
// rejuvenation: if the correcting action is executed T seconds before the
// predicted failure, a prediction error below T is harmless.
func SoftMAE(predicted, observed []float64, threshold float64) (float64, error) {
	if len(predicted) == 0 || len(predicted) != len(observed) {
		return 0, ErrLengthMismatch
	}
	if threshold < 0 {
		return 0, fmt.Errorf("metrics: negative S-MAE threshold %v", threshold)
	}
	var s float64
	for i := range predicted {
		if d := math.Abs(predicted[i] - observed[i]); d >= threshold {
			s += d
		}
	}
	return s / float64(len(predicted)), nil
}

// RelativeThreshold computes the paper's "10% threshold" style S-MAE
// tolerance: frac times the mean observed value.
func RelativeThreshold(observed []float64, frac float64) float64 {
	if len(observed) == 0 || frac <= 0 {
		return 0
	}
	var s float64
	for _, y := range observed {
		s += math.Abs(y)
	}
	return frac * s / float64(len(observed))
}

// Report bundles every §III-D metric for one model on one validation set.
type Report struct {
	// MAE is the mean absolute error in seconds.
	MAE float64
	// RAE is the relative absolute error (unitless).
	RAE float64
	// MaxAE is the maximum absolute error in seconds.
	MaxAE float64
	// SoftMAE is the soft mean absolute error in seconds.
	SoftMAE float64
	// SoftThreshold is the tolerance used for SoftMAE, in seconds.
	SoftThreshold float64
	// N is the validation-set size.
	N int
	// TrainingTime is the wall-clock duration of model building
	// (Table III).
	TrainingTime time.Duration
	// ValidationTime is the wall-clock duration of prediction plus
	// metric computation (Table IV).
	ValidationTime time.Duration
}

// Evaluate computes all error metrics at once. threshold is the absolute
// S-MAE tolerance in seconds.
func Evaluate(predicted, observed []float64, threshold float64) (Report, error) {
	var r Report
	var err error
	if r.MAE, err = MAE(predicted, observed); err != nil {
		return r, err
	}
	if r.RAE, err = RAE(predicted, observed); err != nil {
		return r, err
	}
	if r.MaxAE, err = MaxAE(predicted, observed); err != nil {
		return r, err
	}
	if r.SoftMAE, err = SoftMAE(predicted, observed, threshold); err != nil {
		return r, err
	}
	r.SoftThreshold = threshold
	r.N = len(observed)
	return r, nil
}

// Timer measures wall-clock phases for Tables III/IV.
type Timer struct {
	start time.Time
}

// StartTimer begins timing.
func StartTimer() Timer { return Timer{start: time.Now()} }

// Elapsed returns the time since StartTimer.
func (t Timer) Elapsed() time.Duration { return time.Since(t.start) }
