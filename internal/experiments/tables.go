package experiments

import (
	"fmt"

	"repro/internal/core"
)

// TableRow is one model's entry in Tables II-IV, carrying both
// feature-set families side by side like the paper's two-column layout.
type TableRow struct {
	Model string
	// All and Lasso are the metric values for the "using all
	// parameters" and "using only parameters selected by Lasso"
	// families; NaN-like -1 marks a missing family.
	All, Lasso float64
}

// TablesResult bundles Tables II (S-MAE), III (training time) and IV
// (validation time) extracted from one pipeline report.
type TablesResult struct {
	SMAEThreshold float64
	SMAE          []TableRow // seconds
	TrainingTime  []TableRow // seconds
	ValidationOne []TableRow // seconds
}

// Tables extracts the three tables from a pipeline report.
func Tables(rep *core.Report) *TablesResult {
	res := &TablesResult{SMAEThreshold: rep.SMAEThreshold}
	seen := map[string]bool{}
	var order []string
	for _, r := range rep.Results {
		if !seen[r.Spec.Name] {
			seen[r.Spec.Name] = true
			order = append(order, r.Spec.Name)
		}
	}
	get := func(name string, fs core.FeatureSet, metric func(*core.ModelResult) float64) float64 {
		r := rep.ByName(name, fs)
		if r == nil || r.Err != nil {
			return -1
		}
		return metric(r)
	}
	for _, name := range order {
		display := name
		if r := rep.ByName(name, core.AllParams); r != nil {
			display = r.Spec.DisplayName
		}
		res.SMAE = append(res.SMAE, TableRow{
			Model: display,
			All:   get(name, core.AllParams, func(r *core.ModelResult) float64 { return r.Report.SoftMAE }),
			Lasso: get(name, core.LassoParams, func(r *core.ModelResult) float64 { return r.Report.SoftMAE }),
		})
		res.TrainingTime = append(res.TrainingTime, TableRow{
			Model: display,
			All:   get(name, core.AllParams, func(r *core.ModelResult) float64 { return r.Report.TrainingTime.Seconds() }),
			Lasso: get(name, core.LassoParams, func(r *core.ModelResult) float64 { return r.Report.TrainingTime.Seconds() }),
		})
		res.ValidationOne = append(res.ValidationOne, TableRow{
			Model: display,
			All:   get(name, core.AllParams, func(r *core.ModelResult) float64 { return r.Report.ValidationTime.Seconds() }),
			Lasso: get(name, core.LassoParams, func(r *core.ModelResult) float64 { return r.Report.ValidationTime.Seconds() }),
		})
	}
	return res
}

func formatRows(rows []TableRow, decimals int) [][]string {
	out := make([][]string, 0, len(rows))
	f := func(v float64) string {
		if v < 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.*f", decimals, v)
	}
	for _, r := range rows {
		out = append(out, []string{r.Model, f(r.All), f(r.Lasso)})
	}
	return out
}

// FormatSMAE renders Table II.
func (t *TablesResult) FormatSMAE() string {
	title := fmt.Sprintf("Table II: Soft Mean Absolute Error — threshold %.1f s (10%% of mean RTTF)", t.SMAEThreshold)
	return FormatTable(title,
		[]string{"Algorithm", "All params (s)", "Lasso-selected (s)"},
		formatRows(t.SMAE, 3))
}

// FormatTrainingTime renders Table III.
func (t *TablesResult) FormatTrainingTime() string {
	return FormatTable("Table III: Training Time",
		[]string{"Algorithm", "All params (s)", "Lasso-selected (s)"},
		formatRows(t.TrainingTime, 4))
}

// FormatValidationTime renders Table IV.
func (t *TablesResult) FormatValidationTime() string {
	return FormatTable("Table IV: Validation Time",
		[]string{"Algorithm", "All params (s)", "Lasso-selected (s)"},
		formatRows(t.ValidationOne, 4))
}

// Find returns the row whose model display name matches, or nil.
func Find(rows []TableRow, model string) *TableRow {
	for i := range rows {
		if rows[i].Model == model {
			return &rows[i]
		}
	}
	return nil
}
