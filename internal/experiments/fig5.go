package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/textplot"
)

// Fig5Series is one panel of Figure 5: predicted vs real RTTF for one
// model trained on all parameters.
type Fig5Series struct {
	Model     string
	Observed  []float64 // real RTTF (x axis)
	Predicted []float64 // predicted RTTF (y axis)
	// TailMAE is the mean absolute error restricted to points whose real
	// RTTF is below 600 s — the region the paper highlights ("the
	// prediction error becomes very low when the actual RTTF is around
	// 600 seconds").
	TailMAE float64
	// FullMAE is the mean absolute error over all points.
	FullMAE float64
}

// Fig5Result holds the six panels (or fewer if models were skipped).
type Fig5Result struct {
	Panels []Fig5Series
}

// fig5Models lists the panels in the paper's order 5(a)..5(f).
func fig5Models(selectionLambda float64) []string {
	return []string{
		fmt.Sprintf("lasso-lambda-%g", selectionLambda),
		"linear",
		"m5p",
		"reptree",
		"svm",
		"svm2",
	}
}

// Fig5 extracts predicted-vs-real series from the all-parameters family
// of a pipeline report.
func Fig5(rep *core.Report, selectionLambda float64) (*Fig5Result, error) {
	out := &Fig5Result{}
	for _, name := range fig5Models(selectionLambda) {
		r := rep.ByName(name, core.AllParams)
		if r == nil || r.Err != nil {
			continue
		}
		s := Fig5Series{Model: r.Spec.DisplayName}
		// Sort by observed RTTF so the series reads left-to-right.
		type pair struct{ o, p float64 }
		pairs := make([]pair, len(r.Observed))
		for i := range r.Observed {
			pairs[i] = pair{o: r.Observed[i], p: r.Predicted[i]}
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].o < pairs[j].o })
		var tailSum float64
		tailN := 0
		var fullSum float64
		for _, pr := range pairs {
			s.Observed = append(s.Observed, pr.o)
			s.Predicted = append(s.Predicted, pr.p)
			err := abs(pr.p - pr.o)
			fullSum += err
			if pr.o <= 600 {
				tailSum += err
				tailN++
			}
		}
		if n := len(pairs); n > 0 {
			s.FullMAE = fullSum / float64(n)
		}
		if tailN > 0 {
			s.TailMAE = tailSum / float64(tailN)
		}
		out.Panels = append(out.Panels, s)
	}
	if len(out.Panels) == 0 {
		return nil, fmt.Errorf("experiments: no successful all-parameter models for Figure 5")
	}
	return out, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Format renders each panel as a scatter plot with the ground-truth
// diagonal, like the paper's red curve vs green line.
func (r *Fig5Result) Format() string {
	var b strings.Builder
	for i, panel := range r.Panels {
		p := textplot.New(
			fmt.Sprintf("Figure 5(%c): %s — fitted model (all parameters)", 'a'+i, panel.Model),
			70, 16).
			Labels("RTTF (s)", "Predicted RTTF (s)")
		p.Add("predicted", panel.Observed, panel.Predicted, '*')
		p.Add("ground truth", panel.Observed, panel.Observed, '.')
		b.WriteString(p.Render())
		fmt.Fprintf(&b, "MAE: full=%.1f s, RTTF<=600s tail=%.1f s\n\n", panel.FullMAE, panel.TailMAE)
	}
	return b.String()
}
