package experiments

import (
	"strings"
	"testing"
)

// quickArtifacts builds (once, cached) the reduced suite used by tests.
func quickArtifacts(t testing.TB) *Artifacts {
	t.Helper()
	art, err := Build(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	return art
}

func TestBuildQuick(t *testing.T) {
	art := quickArtifacts(t)
	if len(art.Data.History.FailedRuns()) < 4 {
		t.Fatalf("only %d failed runs", len(art.Data.History.FailedRuns()))
	}
	if art.Dataset.NumRows() < 100 {
		t.Fatalf("only %d rows", art.Dataset.NumRows())
	}
	if art.Dataset.NumCols() != 30 {
		t.Fatalf("cols = %d", art.Dataset.NumCols())
	}
	if art.Report == nil || len(art.Report.Results) == 0 {
		t.Fatal("no report")
	}
}

func TestBuildCached(t *testing.T) {
	a := quickArtifacts(t)
	b := quickArtifacts(t)
	if a != b {
		t.Fatal("cache miss for identical config")
	}
}

func TestFig3Correlation(t *testing.T) {
	art := quickArtifacts(t)
	f3, err := Fig3(art.Data, 15)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's claim: inter-generation time correlates with client RT.
	if f3.Pearson < 0.5 {
		t.Fatalf("Pearson = %v, want strong positive correlation", f3.Pearson)
	}
	gen, rt := f3.GrowthRatio()
	if gen <= 1 || rt <= 1 {
		t.Fatalf("series did not grow toward the crash: gen=%v rt=%v", gen, rt)
	}
	if len(f3.CorrelatedRT) != len(f3.ResponseTime) {
		t.Fatal("correlated series length mismatch")
	}
	out := f3.Format()
	for _, want := range []string{"Figure 3", "Generation time", "Response Time", "Correlated RT"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q", want)
		}
	}
}

func TestFig3Errors(t *testing.T) {
	art := quickArtifacts(t)
	if _, err := Fig3(art.Data, 0); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestFig4Shape(t *testing.T) {
	art := quickArtifacts(t)
	f4, err := Fig4(art.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	counts := f4.Counts()
	if len(counts) != 10 {
		t.Fatalf("grid length = %d", len(counts))
	}
	// Paper shape: higher λ → (weakly) fewer features, with a clear drop
	// across the whole grid.
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1]+1 {
			t.Fatalf("selection count rose along path: %v", counts)
		}
	}
	if counts[0] < 8 {
		t.Fatalf("low λ selected only %d features", counts[0])
	}
	if counts[9] >= counts[0] {
		t.Fatalf("no shrinkage across grid: %v", counts)
	}
	if !strings.Contains(f4.Format(), "Figure 4") {
		t.Fatal("Format missing title")
	}
}

func TestTableIWeights(t *testing.T) {
	art := quickArtifacts(t)
	t1, err := TableI(art.Dataset, art.Config.SelectionLambda)
	if err != nil {
		t.Fatal(err)
	}
	n := t1.Point.NumSelected()
	if n < 2 || n > 12 {
		t.Fatalf("Table I selected %d features, want a small informative set", n)
	}
	// The paper: memory is the predominant factor. At least half the
	// surviving features must be memory/swap quantities or their slopes.
	memLike := 0
	for _, name := range t1.Point.Selected {
		if strings.HasPrefix(name, "mem_") || strings.HasPrefix(name, "swap_") {
			memLike++
		}
	}
	if memLike*2 < n {
		t.Fatalf("memory features are not predominant: %v", t1.Point.Selected)
	}
	out := t1.Format()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "Parameter") {
		t.Fatal("Format malformed")
	}
}

func TestTableIFallbackWhenEmpty(t *testing.T) {
	art := quickArtifacts(t)
	// λ huge enough to kill every feature: fall back to the largest
	// non-empty grid point.
	t1, err := TableI(art.Dataset, 1e15)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Point.NumSelected() == 0 {
		t.Fatal("fallback still empty")
	}
	if t1.Point.Lambda >= 1e15 {
		t.Fatal("fallback did not pick a grid λ")
	}
}

func TestTablesShapes(t *testing.T) {
	art := quickArtifacts(t)
	tabs := Tables(art.Report)
	if len(tabs.SMAE) == 0 {
		t.Fatal("no S-MAE rows")
	}
	lin := Find(tabs.SMAE, "Linear Regression")
	m5 := Find(tabs.SMAE, "M5P")
	rt := Find(tabs.SMAE, "REP Tree")
	lasso9 := Find(tabs.SMAE, "Lasso (λ = 1e+09)")
	if lin == nil || m5 == nil || rt == nil || lasso9 == nil {
		t.Fatal("missing table rows")
	}
	// Paper shape (Table II): tree models beat the linear family; the
	// high-λ Lasso predictor is the worst method by a wide margin.
	bestTree := m5.All
	if rt.All < bestTree {
		bestTree = rt.All
	}
	if bestTree >= lin.All {
		t.Fatalf("trees (%v) do not beat linear (%v)", bestTree, lin.All)
	}
	if lasso9.All <= lin.All {
		t.Fatalf("Lasso λ=1e9 (%v) should be far worse than linear (%v)", lasso9.All, lin.All)
	}
	// Feature selection costs accuracy (paper: every model's S-MAE grows
	// with the reduced set).
	if m5.Lasso >= 0 && m5.Lasso < m5.All*0.8 {
		t.Fatalf("M5P improved dramatically under selection: %v vs %v", m5.Lasso, m5.All)
	}

	// Table III shape: training with selected features is faster for the
	// closed-form/tree models.
	trLin := Find(tabs.TrainingTime, "Linear Regression")
	trM5 := Find(tabs.TrainingTime, "M5P")
	if trLin == nil || trM5 == nil {
		t.Fatal("missing training rows")
	}
	if trLin.Lasso >= 0 && trLin.Lasso > trLin.All {
		t.Fatalf("linear training slower with fewer features: %v vs %v", trLin.Lasso, trLin.All)
	}
	if trM5.Lasso >= 0 && trM5.Lasso > trM5.All {
		t.Fatalf("M5P training slower with fewer features: %v vs %v", trM5.Lasso, trM5.All)
	}

	for _, s := range []string{tabs.FormatSMAE(), tabs.FormatTrainingTime(), tabs.FormatValidationTime()} {
		if !strings.Contains(s, "Algorithm") {
			t.Fatal("table formatting broken")
		}
	}
}

func TestFig5Panels(t *testing.T) {
	art := quickArtifacts(t)
	f5, err := Fig5(art.Report, art.Config.SelectionLambda)
	if err != nil {
		t.Fatal(err)
	}
	// Quick config has no SVMs: expect 4 panels (lasso, linear, m5p, reptree).
	if len(f5.Panels) != 4 {
		t.Fatalf("panels = %d, want 4", len(f5.Panels))
	}
	for _, p := range f5.Panels {
		if len(p.Observed) == 0 || len(p.Observed) != len(p.Predicted) {
			t.Fatalf("panel %s malformed", p.Model)
		}
		if p.FullMAE <= 0 {
			t.Fatalf("panel %s has zero error", p.Model)
		}
	}
	// Paper's observation: prediction error is lower near the failure
	// point (RTTF <= 600 s) than overall, for the recommended trees.
	for _, p := range f5.Panels {
		if p.Model == "M5P" || p.Model == "REP Tree" {
			if p.TailMAE > p.FullMAE*1.25 {
				t.Fatalf("%s tail error %v much worse than overall %v", p.Model, p.TailMAE, p.FullMAE)
			}
		}
	}
	if !strings.Contains(f5.Format(), "Figure 5(a)") {
		t.Fatal("Format missing panel titles")
	}
}

func TestAblationWindow(t *testing.T) {
	art := quickArtifacts(t)
	pts, err := AblationWindow(art.Config, &art.Data.History, []float64{10, 30, 90})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Larger windows → fewer rows.
	if !(pts[0].Rows > pts[1].Rows && pts[1].Rows > pts[2].Rows) {
		t.Fatalf("row counts not decreasing: %+v", pts)
	}
	for _, p := range pts {
		if p.BestSMAE <= 0 || p.BestModel == "" {
			t.Fatalf("missing best model at window %v", p.WindowSec)
		}
	}
	if !strings.Contains(FormatWindowAblation(pts), "Ablation A1") {
		t.Fatal("format broken")
	}
}

func TestAblationSlopes(t *testing.T) {
	art := quickArtifacts(t)
	pts, err := AblationSlopes(art.Config, &art.Data.History)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.WithSlopes <= 0 || p.WithoutSlopes <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
	if !strings.Contains(FormatSlopesAblation(pts), "Ablation A2") {
		t.Fatal("format broken")
	}
}

func TestAblationThreshold(t *testing.T) {
	art := quickArtifacts(t)
	pts, err := AblationThreshold(art.Report, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// S-MAE is monotone non-increasing in the tolerance for every model.
	for m := range pts[0].SMAE {
		prev := pts[0].SMAE[m]
		for _, p := range pts[1:] {
			if p.SMAE[m] > prev+1e-9 {
				t.Fatalf("%s S-MAE rose with tolerance", m)
			}
			prev = p.SMAE[m]
		}
	}
	out := FormatThresholdAblation(pts, []string{"Linear Regression", "M5P", "REP Tree"})
	if !strings.Contains(out, "Ablation A3") {
		t.Fatal("format broken")
	}
}

func TestAblationRuns(t *testing.T) {
	art := quickArtifacts(t)
	pts, err := AblationRuns(art.Config, &art.Data.History, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// More runs → more rows; and the full-data error should not be much
	// worse than the smallest subset (accuracy improves with data).
	if pts[len(pts)-1].Rows <= pts[0].Rows {
		t.Fatal("rows did not grow with runs")
	}
	if pts[len(pts)-1].BestSMAE > pts[0].BestSMAE*1.5 {
		t.Fatalf("more data degraded accuracy: %v -> %v", pts[0].BestSMAE, pts[len(pts)-1].BestSMAE)
	}
	if !strings.Contains(FormatRunsAblation(pts), "Ablation A4") {
		t.Fatal("format broken")
	}
}

func TestGenerateDataTooShort(t *testing.T) {
	cfg := QuickConfig()
	cfg.TotalVirtualSec = 200 // not enough for 3 failures
	if _, err := GenerateData(cfg); err == nil {
		t.Fatal("short campaign accepted")
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable("T", []string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "333") {
		t.Fatalf("bad table:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
}

func TestAblationInterval(t *testing.T) {
	art := quickArtifacts(t)
	pts, err := AblationInterval(art.Config, []float64{1.5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// Finer sampling → more raw datapoints.
	if pts[0].RawDatapoints <= pts[1].RawDatapoints {
		t.Fatalf("finer interval did not increase datapoints: %+v", pts)
	}
	for _, p := range pts {
		if p.BestSMAE <= 0 || p.BestModel == "" {
			t.Fatalf("degenerate point %+v", p)
		}
	}
	if _, err := AblationInterval(art.Config, []float64{0}); err == nil {
		t.Fatal("zero interval accepted")
	}
	if !strings.Contains(FormatIntervalAblation(pts), "Ablation A5") {
		t.Fatal("format broken")
	}
}
