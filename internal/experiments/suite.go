// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV) on the simulated test-bed, plus the ablations listed
// in DESIGN.md. Each experiment has a Run function returning structured
// results and a Format function rendering the paper-style table/plot.
//
// Experiment index (see DESIGN.md §4):
//
//	Fig3   — response-time vs datapoint inter-generation time correlation
//	Fig4   — number of parameters selected by Lasso vs λ
//	TableI — feature weights at the selection λ
//	TableII/III/IV — S-MAE / training time / validation time per model
//	Fig5   — predicted vs real RTTF per model
//	AblationWindow / AblationSlopes / AblationThreshold / AblationRuns
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/aggregate"
	"repro/internal/core"
	"repro/internal/featsel"
	"repro/internal/tpcw"
)

// Config scales the whole experiment suite.
type Config struct {
	// Seed drives the test-bed campaign.
	Seed uint64
	// TotalVirtualSec is the campaign length in virtual seconds (the
	// paper ran one real week; the default here is a virtual ~28 h,
	// which yields a comparable number of failure runs in seconds of
	// wall time).
	TotalVirtualSec float64
	// WindowSec is the aggregation window (paper §III-B).
	WindowSec float64
	// SelectionLambda is the λ used for Table I and the reduced
	// training sets. The paper tabulates λ=10⁹, but its eq. (2) carries
	// a 1/n factor the published λ axis is evidently missing: with
	// n≈3×10³ aggregated datapoints, the normalized objective shifts
	// the whole path left by log10(n/2)≈3.2 decades, so our λ=10⁵
	// corresponds to the paper's λ=10⁹ (and indeed keeps the same ~6
	// memory-dominated features; see EXPERIMENTS.md).
	SelectionLambda float64
	// SMAEFraction is the S-MAE tolerance fraction (paper: 10%).
	SMAEFraction float64
	// ValidationFrac is the held-out fraction of runs.
	ValidationFrac float64
	// Parallelism bounds concurrent model training.
	Parallelism int
	// IncludeSVMs toggles the two (slow) SVM learners; tests disable
	// them to stay fast.
	IncludeSVMs bool
	// Testbed overrides the test-bed configuration; nil uses
	// tpcw.DefaultTestbedConfig(Seed).
	Testbed *tpcw.TestbedConfig
}

// DefaultConfig is the full-scale suite used by cmd/experiments and the
// benchmarks.
func DefaultConfig() Config {
	return Config{
		Seed:            2015, // IPDPS workshop year
		TotalVirtualSec: 100_000,
		WindowSec:       30,
		SelectionLambda: 1e5,
		SMAEFraction:    0.10,
		ValidationFrac:  0.3,
		// Serial training: Tables III/IV report wall-clock times, which
		// parallel workers would contend over. Set > 1 when only the
		// accuracy tables matter.
		Parallelism: 1,
		IncludeSVMs: true,
	}
}

// QuickConfig is a reduced suite for tests: smaller machine, shorter
// campaign, no SVMs, and a λ matched to the smaller feature scales.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.TotalVirtualSec = 15_000
	cfg.IncludeSVMs = false
	tb := tpcw.DefaultTestbedConfig(cfg.Seed)
	tb.Machine.TotalMemKB = 384 * 1024
	tb.Machine.TotalSwapKB = 192 * 1024
	tb.Machine.BaseUsedKB = 96 * 1024
	tb.Machine.BaseSharedKB = 12 * 1024
	tb.Machine.BaseBuffersKB = 12 * 1024
	tb.Machine.MinCacheKB = 12 * 1024
	tb.NumBrowsers = 12
	tb.Browser.ThinkMeanSec = 2
	tb.LeakProbRange = [2]float64{0.45, 0.95}
	tb.LeakSizeKBRange = [2]float64{512, 2048}
	tb.RebootDelaySec = 20
	cfg.Testbed = &tb
	cfg.SelectionLambda = 1e5
	cfg.WindowSec = 15
	return cfg
}

// Artifacts bundles everything the experiments derive from one campaign.
type Artifacts struct {
	Config Config
	// Data is the raw test-bed output (history + RT probes + run infos).
	Data *tpcw.Result
	// Dataset is the aggregated, labeled dataset (all failed runs).
	Dataset *aggregate.Dataset
	// Report is the full pipeline output (all models, both families).
	Report *core.Report
}

var cache struct {
	sync.Mutex
	m map[string]*Artifacts
}

func cacheKey(cfg Config) string {
	tb := "default"
	if cfg.Testbed != nil {
		tb = fmt.Sprintf("custom-%dbr-%.0fmem", cfg.Testbed.NumBrowsers, cfg.Testbed.Machine.TotalMemKB)
	}
	return fmt.Sprintf("%d|%.0f|%.0f|%g|%g|%g|%v|%s",
		cfg.Seed, cfg.TotalVirtualSec, cfg.WindowSec, cfg.SelectionLambda,
		cfg.SMAEFraction, cfg.ValidationFrac, cfg.IncludeSVMs, tb)
}

// Build generates (or returns cached) artifacts for a configuration. The
// cache lets the per-table benchmarks share one campaign instead of
// re-simulating it for every testing.B iteration.
func Build(cfg Config) (*Artifacts, error) {
	key := cacheKey(cfg)
	cache.Lock()
	defer cache.Unlock()
	if cache.m == nil {
		cache.m = make(map[string]*Artifacts)
	}
	if a, ok := cache.m[key]; ok {
		return a, nil
	}
	a, err := build(cfg)
	if err != nil {
		return nil, err
	}
	cache.m[key] = a
	return a, nil
}

// ClearCache drops all cached artifacts (tests use it to force rebuilds).
func ClearCache() {
	cache.Lock()
	defer cache.Unlock()
	cache.m = nil
}

func build(cfg Config) (*Artifacts, error) {
	data, err := GenerateData(cfg)
	if err != nil {
		return nil, err
	}
	ds, err := aggregate.Aggregate(&data.History, aggregate.Config{
		WindowSec:       cfg.WindowSec,
		IncludeSlopes:   true,
		IncludeIntergen: true,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: aggregation: %w", err)
	}
	ds = aggregate.DropUnlabeled(ds)

	pipeCfg := pipelineConfig(cfg)
	pipe, err := core.New(pipeCfg)
	if err != nil {
		return nil, err
	}
	report, err := pipe.Run(&data.History)
	if err != nil {
		return nil, fmt.Errorf("experiments: pipeline: %w", err)
	}
	return &Artifacts{Config: cfg, Data: data, Dataset: ds, Report: report}, nil
}

// GenerateData runs the test-bed campaign only (no ML).
func GenerateData(cfg Config) (*tpcw.Result, error) {
	tbCfg := tpcw.DefaultTestbedConfig(cfg.Seed)
	if cfg.Testbed != nil {
		tbCfg = *cfg.Testbed
		tbCfg.Seed = cfg.Seed
	}
	tb, err := tpcw.NewTestbed(tbCfg)
	if err != nil {
		return nil, err
	}
	res, err := tb.Run(cfg.TotalVirtualSec)
	if err != nil {
		return nil, fmt.Errorf("experiments: test-bed: %w", err)
	}
	if len(res.History.FailedRuns()) < 3 {
		return nil, fmt.Errorf("experiments: campaign produced only %d failed runs; increase TotalVirtualSec", len(res.History.FailedRuns()))
	}
	return res, nil
}

// pipelineConfig translates the suite configuration into a core.Config.
func pipelineConfig(cfg Config) core.Config {
	pc := core.DefaultConfig()
	pc.Aggregation.WindowSec = cfg.WindowSec
	pc.ValidationFrac = cfg.ValidationFrac
	pc.SMAEFraction = cfg.SMAEFraction
	pc.SelectionLambda = cfg.SelectionLambda
	pc.FeatureLambdas = featsel.LambdaGrid(0, 9)
	pc.Parallelism = cfg.Parallelism
	models := core.DefaultModels(pc.FeatureLambdas)
	if !cfg.IncludeSVMs {
		var kept []core.ModelSpec
		for _, m := range models {
			if m.Name == "svm" || m.Name == "svm2" {
				continue
			}
			kept = append(kept, m)
		}
		models = kept
	}
	pc.Models = models
	return pc
}
