package experiments

import (
	"fmt"
	"math"

	"repro/internal/aggregate"
	"repro/internal/featsel"
	"repro/internal/textplot"
)

// Fig4Result reproduces Figure 4: the number of parameters selected by
// Lasso regularization as λ sweeps 10⁰..10⁹.
type Fig4Result struct {
	Path []featsel.PathPoint
}

// Fig4 computes the regularization path on the full labeled dataset.
func Fig4(ds *aggregate.Dataset) (*Fig4Result, error) {
	path, err := featsel.Path(ds, featsel.LambdaGrid(0, 9))
	if err != nil {
		return nil, err
	}
	return &Fig4Result{Path: path}, nil
}

// Counts returns the per-λ selected-parameter counts.
func (r *Fig4Result) Counts() []int {
	out := make([]int, len(r.Path))
	for i, p := range r.Path {
		out[i] = p.NumSelected()
	}
	return out
}

// Format renders the λ-vs-count curve (log-x, like the paper's plot).
func (r *Fig4Result) Format() string {
	xs := make([]float64, len(r.Path))
	ys := make([]float64, len(r.Path))
	for i, p := range r.Path {
		xs[i] = math.Log10(p.Lambda)
		ys[i] = float64(p.NumSelected())
	}
	plot := textplot.New("Figure 4: Parameters selected by Lasso", 64, 14).
		Labels("log10(lambda)", "selected parameters")
	plot.Add("Number of Parameters Selected by Lasso", xs, ys, '*')
	out := plot.Render()
	rows := make([][]string, len(r.Path))
	for i, p := range r.Path {
		rows[i] = []string{fmt.Sprintf("1e%d", i), fmt.Sprintf("%d", p.NumSelected())}
	}
	return out + "\n" + FormatTable("", []string{"lambda", "selected"}, rows)
}

// TableIResult reproduces Table I: the non-zero feature weights at the
// selection λ.
type TableIResult struct {
	Point featsel.PathPoint
}

// TableI computes the surviving weights at lambda on the full dataset.
// When lambda kills every feature it falls back to the largest λ of the
// 10⁰..10⁹ grid that keeps at least one, so the table is informative on
// any machine scale (the paper's λ=10⁹ presumes its 2 GB feature scales).
func TableI(ds *aggregate.Dataset, lambda float64) (*TableIResult, error) {
	_, pp, err := featsel.Select(ds, lambda)
	if err == nil {
		return &TableIResult{Point: pp}, nil
	}
	if err != featsel.ErrEmptySelection {
		return nil, err
	}
	path, err := featsel.Path(ds, featsel.LambdaGrid(0, 9))
	if err != nil {
		return nil, err
	}
	for i := len(path) - 1; i >= 0; i-- {
		if path[i].NumSelected() > 0 {
			return &TableIResult{Point: path[i]}, nil
		}
	}
	return nil, fmt.Errorf("experiments: no λ in the grid keeps any feature")
}

// Format renders the weight table in the paper's layout.
func (r *TableIResult) Format() string {
	rows := make([][]string, 0, r.Point.NumSelected())
	for _, w := range r.Point.SortedWeights() {
		rows = append(rows, []string{w.Name, fmt.Sprintf("%.15f", w.Beta)})
	}
	title := fmt.Sprintf("Table I: weights assigned when lambda = %g", r.Point.Lambda)
	return FormatTable(title, []string{"Parameter", "Weight"}, rows)
}

// SlopeShare returns the fraction of selected features that are slopes —
// the paper's observation that "slopes play an important role".
func (r *TableIResult) SlopeShare() float64 {
	if r.Point.NumSelected() == 0 {
		return 0
	}
	slopes := 0
	for _, name := range r.Point.Selected {
		if len(name) > len(aggregate.SlopeSuffix) &&
			name[len(name)-len(aggregate.SlopeSuffix):] == aggregate.SlopeSuffix {
			slopes++
		}
	}
	return float64(slopes) / float64(r.Point.NumSelected())
}
