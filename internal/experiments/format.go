package experiments

import (
	"fmt"
	"strings"
)

// FormatTable renders an aligned plain-text table with a title row.
func FormatTable(title string, headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
	return b.String()
}

// seconds renders a duration-like float with 3 decimals.
func seconds(v float64) string { return fmt.Sprintf("%.3f", v) }
