package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/tpcw"
	"repro/internal/trace"
)

// ablationModels is the cheap roster used by the ablation sweeps:
// the linear baseline plus the two tree learners the paper recommends.
func ablationModels() []core.ModelSpec {
	return core.DefaultModels(nil) // linear, m5p, reptree, svm, svm2
}

// fastAblationConfig builds a pipeline config sharing the suite settings
// but restricted to fast models (no SVM family, no Lasso predictors).
func fastAblationConfig(cfg Config) core.Config {
	pc := pipelineConfig(cfg)
	pc.FeatureLambdas = nil // no path needed
	var kept []core.ModelSpec
	for _, m := range ablationModels() {
		if m.Name == "svm" || m.Name == "svm2" {
			continue
		}
		kept = append(kept, m)
	}
	pc.Models = kept
	return pc
}

// WindowPoint is one sweep entry of the window-size ablation.
type WindowPoint struct {
	WindowSec  float64
	Rows       int
	BestSMAE   float64 // best model's S-MAE at this window
	BestModel  string
	LinearSMAE float64
}

// AblationWindow sweeps the aggregation window size (§III-B motivates
// aggregation with precision and model-building cost; this quantifies the
// accuracy side).
func AblationWindow(cfg Config, history *trace.History, windows []float64) ([]WindowPoint, error) {
	if len(windows) == 0 {
		windows = []float64{5, 15, 30, 60, 120}
	}
	var out []WindowPoint
	for _, w := range windows {
		pc := fastAblationConfig(cfg)
		pc.Aggregation.WindowSec = w
		pipe, err := core.New(pc)
		if err != nil {
			return nil, err
		}
		rep, err := pipe.Run(history)
		if err != nil {
			return nil, fmt.Errorf("experiments: window %v: %w", w, err)
		}
		pt := WindowPoint{WindowSec: w, Rows: rep.TrainRows + rep.ValRows}
		if best := rep.Best(); best != nil {
			pt.BestSMAE = best.Report.SoftMAE
			pt.BestModel = best.Spec.DisplayName
		}
		if lin := rep.ByName("linear", core.AllParams); lin != nil && lin.Err == nil {
			pt.LinearSMAE = lin.Report.SoftMAE
		}
		out = append(out, pt)
	}
	return out, nil
}

// FormatWindowAblation renders the sweep.
func FormatWindowAblation(pts []WindowPoint) string {
	rows := make([][]string, 0, len(pts))
	for _, p := range pts {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", p.WindowSec),
			fmt.Sprintf("%d", p.Rows),
			seconds(p.BestSMAE),
			p.BestModel,
			seconds(p.LinearSMAE),
		})
	}
	return FormatTable("Ablation A1: aggregation window size",
		[]string{"Window (s)", "Rows", "Best S-MAE (s)", "Best model", "Linear S-MAE (s)"}, rows)
}

// SlopesPoint compares one model with and without slope columns.
type SlopesPoint struct {
	Model             string
	WithSlopes        float64
	WithoutSlopes     float64
	DegradationFactor float64
}

// AblationSlopes drops the derived slope metrics and measures the S-MAE
// impact, testing the paper's claim that "slopes play an important role".
func AblationSlopes(cfg Config, history *trace.History) ([]SlopesPoint, error) {
	run := func(includeSlopes bool) (*core.Report, error) {
		pc := fastAblationConfig(cfg)
		pc.Aggregation.IncludeSlopes = includeSlopes
		pc.SelectionLambda = 0 // compare on the full feature family only
		pipe, err := core.New(pc)
		if err != nil {
			return nil, err
		}
		return pipe.Run(history)
	}
	with, err := run(true)
	if err != nil {
		return nil, err
	}
	without, err := run(false)
	if err != nil {
		return nil, err
	}
	var out []SlopesPoint
	for _, r := range with.Results {
		if r.Err != nil {
			continue
		}
		other := without.ByName(r.Spec.Name, core.AllParams)
		if other == nil || other.Err != nil {
			continue
		}
		p := SlopesPoint{
			Model:         r.Spec.DisplayName,
			WithSlopes:    r.Report.SoftMAE,
			WithoutSlopes: other.Report.SoftMAE,
		}
		if p.WithSlopes > 0 {
			p.DegradationFactor = p.WithoutSlopes / p.WithSlopes
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: slope ablation produced no comparable models")
	}
	return out, nil
}

// FormatSlopesAblation renders the comparison.
func FormatSlopesAblation(pts []SlopesPoint) string {
	rows := make([][]string, 0, len(pts))
	for _, p := range pts {
		rows = append(rows, []string{
			p.Model, seconds(p.WithSlopes), seconds(p.WithoutSlopes),
			fmt.Sprintf("%.2fx", p.DegradationFactor),
		})
	}
	return FormatTable("Ablation A2: derived slope metrics on/off (S-MAE, all params)",
		[]string{"Model", "With slopes (s)", "Without (s)", "Degradation"}, rows)
}

// ThresholdPoint is one S-MAE tolerance setting.
type ThresholdPoint struct {
	Fraction  float64
	Threshold float64
	SMAE      map[string]float64 // display name → S-MAE
}

// AblationThreshold recomputes S-MAE at several tolerance fractions from
// the stored validation predictions — the threshold T is the proactive
// lead time of §I, so this shows how tolerant rejuvenation scheduling
// changes the model ranking. No retraining happens.
func AblationThreshold(rep *core.Report, fractions []float64) ([]ThresholdPoint, error) {
	if len(fractions) == 0 {
		fractions = []float64{0, 0.05, 0.10, 0.20}
	}
	var out []ThresholdPoint
	for _, frac := range fractions {
		pt := ThresholdPoint{Fraction: frac, SMAE: map[string]float64{}}
		for _, r := range rep.Results {
			if r.Err != nil || r.Features != core.AllParams {
				continue
			}
			thr := metrics.RelativeThreshold(r.Observed, frac)
			pt.Threshold = thr
			smae, err := metrics.SoftMAE(r.Predicted, r.Observed, thr)
			if err != nil {
				return nil, err
			}
			pt.SMAE[r.Spec.DisplayName] = smae
		}
		if len(pt.SMAE) == 0 {
			return nil, fmt.Errorf("experiments: no successful models for threshold ablation")
		}
		out = append(out, pt)
	}
	return out, nil
}

// FormatThresholdAblation renders the sweep for the given model names.
func FormatThresholdAblation(pts []ThresholdPoint, models []string) string {
	headers := append([]string{"Tolerance"}, models...)
	rows := make([][]string, 0, len(pts))
	for _, p := range pts {
		row := []string{fmt.Sprintf("%.0f%% (%.0fs)", p.Fraction*100, p.Threshold)}
		for _, m := range models {
			if v, ok := p.SMAE[m]; ok {
				row = append(row, seconds(v))
			} else {
				row = append(row, "n/a")
			}
		}
		rows = append(rows, row)
	}
	return FormatTable("Ablation A3: S-MAE tolerance sweep (all params)", headers, rows)
}

// RunsPoint is one training-set-size setting.
type RunsPoint struct {
	Runs     int
	Rows     int
	BestSMAE float64
	Model    string
}

// AblationRuns truncates the history to its first k failed runs and
// retrains, quantifying the paper's §III-A claim that accuracy improves
// incrementally as more runs are collected.
func AblationRuns(cfg Config, history *trace.History, fractions []float64) ([]RunsPoint, error) {
	if len(fractions) == 0 {
		fractions = []float64{0.25, 0.5, 0.75, 1.0}
	}
	failed := history.FailedRuns()
	if len(failed) < 4 {
		return nil, fmt.Errorf("experiments: need >= 4 failed runs, have %d", len(failed))
	}
	var out []RunsPoint
	for _, frac := range fractions {
		k := int(frac * float64(len(failed)))
		if k < 4 {
			k = 4
		}
		if k > len(failed) {
			k = len(failed)
		}
		sub := &trace.History{Runs: failed[:k]}
		pc := fastAblationConfig(cfg)
		pipe, err := core.New(pc)
		if err != nil {
			return nil, err
		}
		rep, err := pipe.Run(sub)
		if err != nil {
			return nil, fmt.Errorf("experiments: runs ablation k=%d: %w", k, err)
		}
		pt := RunsPoint{Runs: k, Rows: rep.TrainRows + rep.ValRows}
		if best := rep.Best(); best != nil {
			pt.BestSMAE = best.Report.SoftMAE
			pt.Model = best.Spec.DisplayName
		}
		out = append(out, pt)
	}
	return out, nil
}

// FormatRunsAblation renders the sweep.
func FormatRunsAblation(pts []RunsPoint) string {
	rows := make([][]string, 0, len(pts))
	for _, p := range pts {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Runs), fmt.Sprintf("%d", p.Rows), seconds(p.BestSMAE), p.Model,
		})
	}
	return FormatTable("Ablation A4: training-set size (failed runs)",
		[]string{"Runs", "Rows", "Best S-MAE (s)", "Best model"}, rows)
}

// IntervalPoint is one sampling-interval setting.
type IntervalPoint struct {
	IntervalSec   float64
	RawDatapoints int
	Rows          int
	BestSMAE      float64
	BestModel     string
}

// AblationInterval re-runs the whole campaign at different FMC sampling
// intervals (the paper's implementation waits ~1.5 s, §III-E, balancing
// feature-variability capture against monitoring overhead) and retrains.
// Unlike the other ablations this regenerates the data, not just the
// models, so each point is a fresh simulation with the same seed.
func AblationInterval(cfg Config, intervals []float64) ([]IntervalPoint, error) {
	if len(intervals) == 0 {
		intervals = []float64{0.5, 1.5, 5, 15}
	}
	var out []IntervalPoint
	for _, iv := range intervals {
		if iv <= 0 {
			return nil, fmt.Errorf("experiments: non-positive sampling interval %v", iv)
		}
		runCfg := cfg
		if runCfg.Testbed != nil {
			tb := *runCfg.Testbed
			tb.SampleIntervalSec = iv
			runCfg.Testbed = &tb
		} else {
			tb := tpcw.DefaultTestbedConfig(cfg.Seed)
			tb.SampleIntervalSec = iv
			runCfg.Testbed = &tb
		}
		data, err := GenerateData(runCfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: interval %v: %w", iv, err)
		}
		pc := fastAblationConfig(runCfg)
		pipe, err := core.New(pc)
		if err != nil {
			return nil, err
		}
		rep, err := pipe.Run(&data.History)
		if err != nil {
			return nil, fmt.Errorf("experiments: interval %v pipeline: %w", iv, err)
		}
		pt := IntervalPoint{
			IntervalSec:   iv,
			RawDatapoints: data.History.TotalDatapoints(),
			Rows:          rep.TrainRows + rep.ValRows,
		}
		if best := rep.Best(); best != nil {
			pt.BestSMAE = best.Report.SoftMAE
			pt.BestModel = best.Spec.DisplayName
		}
		out = append(out, pt)
	}
	return out, nil
}

// FormatIntervalAblation renders the sweep.
func FormatIntervalAblation(pts []IntervalPoint) string {
	rows := make([][]string, 0, len(pts))
	for _, p := range pts {
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", p.IntervalSec),
			fmt.Sprintf("%d", p.RawDatapoints),
			fmt.Sprintf("%d", p.Rows),
			seconds(p.BestSMAE),
			p.BestModel,
		})
	}
	return FormatTable("Ablation A5: FMC sampling interval (fresh campaign per point)",
		[]string{"Interval (s)", "Raw datapoints", "Rows", "Best S-MAE (s)", "Best model"}, rows)
}
