package experiments

import (
	"fmt"
	"math"

	"repro/internal/rtest"
	"repro/internal/textplot"
	"repro/internal/tpcw"
	"repro/internal/trace"
)

// Fig3Result reproduces Figure 3: within one run, the datapoint
// inter-generation time tracks the client-side response time; a linear
// model fitted on the inter-generation time predicts the RT ("Correlated
// RT") without any client instrumentation.
type Fig3Result struct {
	// Time is the window center (execution time within the run).
	Time []float64
	// GenTime is the mean datapoint inter-generation time per window.
	GenTime []float64
	// ResponseTime is the mean client-observed RT per window (ground
	// truth from the emulated-browser probes).
	ResponseTime []float64
	// CorrelatedRT is the linear-model estimate of RT from GenTime.
	CorrelatedRT []float64
	// Pearson is the GenTime↔RT correlation coefficient.
	Pearson float64
	// RunIndex is the history run used.
	RunIndex int
}

// Fig3 builds the correlation experiment from a campaign result. It uses
// the longest failed run (most dynamics) and windows both series.
func Fig3(data *tpcw.Result, windowSec float64) (*Fig3Result, error) {
	if windowSec <= 0 {
		return nil, fmt.Errorf("experiments: windowSec must be positive, got %v", windowSec)
	}
	runIdx := -1
	longest := 0.0
	for i, r := range data.History.Runs {
		if r.Failed && r.FailTime > longest {
			longest = r.FailTime
			runIdx = i
		}
	}
	if runIdx < 0 {
		return nil, trace.ErrNoFailedRuns
	}
	run := &data.History.Runs[runIdx]
	if runIdx >= len(data.Runs) {
		return nil, fmt.Errorf("experiments: run metadata missing for run %d", runIdx)
	}
	startAbs := data.Runs[runIdx].StartAbs
	endAbs := startAbs + run.FailTime

	nWin := int(run.FailTime/windowSec) + 1
	genSum := make([]float64, nWin)
	genCnt := make([]int, nWin)
	rtSum := make([]float64, nWin)
	rtCnt := make([]int, nWin)

	prev := 0.0
	for i, d := range run.Datapoints {
		gap := d.Tgen - prev
		prev = d.Tgen
		if i == 0 {
			// A run's first datapoint has no predecessor: its "gap" is
			// the boot transient (sampler stalled by the previous run's
			// dying machine), not a generation interval.
			continue
		}
		w := int(d.Tgen / windowSec)
		if w >= 0 && w < nWin {
			genSum[w] += gap
			genCnt[w]++
		}
	}
	for _, s := range data.RTs {
		if s.AbsTime < startAbs || s.AbsTime > endAbs {
			continue
		}
		w := int((s.AbsTime - startAbs) / windowSec)
		if w >= 0 && w < nWin {
			rtSum[w] += s.RT
			rtCnt[w]++
		}
	}

	res := &Fig3Result{RunIndex: runIdx}
	for w := 0; w < nWin; w++ {
		if genCnt[w] == 0 || rtCnt[w] == 0 {
			continue
		}
		res.Time = append(res.Time, (float64(w)+0.5)*windowSec)
		res.GenTime = append(res.GenTime, genSum[w]/float64(genCnt[w]))
		res.ResponseTime = append(res.ResponseTime, rtSum[w]/float64(rtCnt[w]))
	}
	if len(res.Time) < 4 {
		return nil, fmt.Errorf("experiments: run %d too short for Fig3 (%d windows)", runIdx, len(res.Time))
	}

	// The paper's correlation process: a fast linear regression of the
	// client RT on the inter-generation time (the same estimator package
	// rtest exposes for production use).
	est, err := rtest.Fit(res.GenTime, res.ResponseTime)
	if err != nil {
		return nil, fmt.Errorf("experiments: Fig3 correlation fit: %w", err)
	}
	res.CorrelatedRT = est.EstimateSeries(res.GenTime)
	res.Pearson = est.Pearson
	return res, nil
}

// Format renders the three curves the way Figure 3 presents them.
func (r *Fig3Result) Format() string {
	p := textplot.New(
		fmt.Sprintf("Figure 3: Response Time Correlation (run %d, Pearson r = %.3f)", r.RunIndex, r.Pearson),
		78, 18).
		Labels("execution time (s)", "seconds")
	// Draw order: the correlated estimate first so the measured series
	// stay visible where the curves coincide.
	p.Add("Correlated RT", r.Time, r.CorrelatedRT, 'c')
	p.Add("Generation time", r.Time, r.GenTime, 'g')
	p.Add("Response Time", r.Time, r.ResponseTime, 'r')
	return p.Render()
}

// GrowthRatio reports how much each series grew from the first quartile
// of the run to the last one — the paper's qualitative claim is that both
// generation time and RT rise together as the crash approaches.
func (r *Fig3Result) GrowthRatio() (gen, rt float64) {
	q := len(r.Time) / 4
	if q == 0 {
		return 1, 1
	}
	meanOf := func(xs []float64, lo, hi int) float64 {
		var s float64
		for _, v := range xs[lo:hi] {
			s += v
		}
		return s / float64(hi-lo)
	}
	genEarly := meanOf(r.GenTime, 0, q)
	genLate := meanOf(r.GenTime, len(r.GenTime)-q, len(r.GenTime))
	rtEarly := meanOf(r.ResponseTime, 0, q)
	rtLate := meanOf(r.ResponseTime, len(r.ResponseTime)-q, len(r.ResponseTime))
	if genEarly <= 0 || rtEarly <= 0 {
		return math.Inf(1), math.Inf(1)
	}
	return genLate / genEarly, rtLate / rtEarly
}
