package tpcw

import (
	"testing"

	"repro/internal/anomaly"
	"repro/internal/des"
	"repro/internal/randx"
	"repro/internal/sysmodel"
	"repro/internal/trace"
)

func newServerEnv(t testing.TB) (*des.Simulator, *sysmodel.Machine, *Server) {
	t.Helper()
	sim := &des.Simulator{}
	m, err := sysmodel.NewMachine(sysmodel.DefaultConfig(), randx.New(11))
	if err != nil {
		t.Fatal(err)
	}
	m.Restart(0)
	srv, err := NewServer(sim, m, DefaultServerConfig(), randx.New(12))
	if err != nil {
		t.Fatal(err)
	}
	return sim, m, srv
}

func TestInteractionString(t *testing.T) {
	if Home.String() != "home" || AdminConfirm.String() != "admin_confirm" {
		t.Fatal("interaction names wrong")
	}
	if Interaction(99).String() != "unknown" {
		t.Fatal("out-of-range interaction name")
	}
}

func TestServerConfigValidate(t *testing.T) {
	good := DefaultServerConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultServerConfig()
	bad.MaxWorkers = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("MaxWorkers=0 accepted")
	}
	bad = DefaultServerConfig()
	bad.DBCPUFrac = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("DBCPUFrac>1 accepted")
	}
	bad = DefaultServerConfig()
	bad.Costs[Home].CPUMs = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative cost accepted")
	}
}

func TestServerServesRequest(t *testing.T) {
	sim, m, srv := newServerEnv(t)
	var gotRT float64
	var gotOK bool
	srv.Submit(ProductDetail, func(rt float64, ok bool) { gotRT, gotOK = rt, ok })
	if err := sim.Run(10); err != nil {
		t.Fatal(err)
	}
	if !gotOK {
		t.Fatal("request failed")
	}
	if gotRT <= 0 || gotRT > 1 {
		t.Fatalf("unloaded RT = %v, want ~20ms", gotRT)
	}
	if srv.Stats().Completed != 1 {
		t.Fatalf("completed = %d", srv.Stats().Completed)
	}
	if m.ActiveRequests() != 0 {
		t.Fatal("request still active after completion")
	}
}

func TestServerQueuesBeyondWorkers(t *testing.T) {
	sim, _, srv := newServerEnv(t)
	cfg := DefaultServerConfig()
	total := cfg.MaxWorkers + 10
	completed := 0
	for i := 0; i < total; i++ {
		srv.Submit(Home, func(rt float64, ok bool) {
			if ok {
				completed++
			}
		})
	}
	if srv.Busy() != cfg.MaxWorkers {
		t.Fatalf("busy = %d, want %d", srv.Busy(), cfg.MaxWorkers)
	}
	if srv.QueueLen() != 10 {
		t.Fatalf("queue = %d, want 10", srv.QueueLen())
	}
	if err := sim.Run(60); err != nil {
		t.Fatal(err)
	}
	if completed != total {
		t.Fatalf("completed = %d, want %d", completed, total)
	}
}

func TestServerRejectsWhenQueueFull(t *testing.T) {
	sim := &des.Simulator{}
	m, _ := sysmodel.NewMachine(sysmodel.DefaultConfig(), randx.New(1))
	m.Restart(0)
	cfg := DefaultServerConfig()
	cfg.MaxWorkers = 1
	cfg.MaxQueue = 2
	srv, err := NewServer(sim, m, cfg, randx.New(2))
	if err != nil {
		t.Fatal(err)
	}
	rejected := 0
	for i := 0; i < 5; i++ {
		srv.Submit(Home, func(rt float64, ok bool) {
			if !ok {
				rejected++
			}
		})
	}
	if rejected != 2 {
		t.Fatalf("rejected = %d, want 2 (1 in service + 2 queued + 2 rejected)", rejected)
	}
	if srv.Stats().Rejected != 2 {
		t.Fatalf("stats.Rejected = %d", srv.Stats().Rejected)
	}
	if err := sim.Run(100); err != nil {
		t.Fatal(err)
	}
}

func TestServerInjectionOnHomeOnly(t *testing.T) {
	sim, m, srv := newServerEnv(t)
	if err := srv.SetInjection(anomaly.RequestInjection{LeakProb: 1, LeakMinKB: 100, LeakMaxKB: 100, ThreadProb: 1}); err != nil {
		t.Fatal(err)
	}
	srv.Submit(ProductDetail, func(float64, bool) {})
	if err := sim.Run(5); err != nil {
		t.Fatal(err)
	}
	if m.LeakedKB() != 0 || m.ExtraThreads() != 0 {
		t.Fatal("non-Home interaction triggered injection")
	}
	srv.Submit(Home, func(float64, bool) {})
	if err := sim.Run(10); err != nil {
		t.Fatal(err)
	}
	if m.LeakedKB() != 100 || m.ExtraThreads() != 1 {
		t.Fatalf("Home injection missing: leaked=%v threads=%d", m.LeakedKB(), m.ExtraThreads())
	}
	st := srv.Stats()
	if st.LeakedKB != 100 || st.Threads != 1 {
		t.Fatalf("server stats wrong: %+v", st)
	}
}

func TestServerInvalidInjectionRejected(t *testing.T) {
	_, _, srv := newServerEnv(t)
	if err := srv.SetInjection(anomaly.RequestInjection{LeakProb: 2}); err == nil {
		t.Fatal("invalid injection accepted")
	}
}

func TestServerResetAbortsAll(t *testing.T) {
	sim := &des.Simulator{}
	m, _ := sysmodel.NewMachine(sysmodel.DefaultConfig(), randx.New(1))
	m.Restart(0)
	cfg := DefaultServerConfig()
	cfg.MaxWorkers = 2
	srv, err := NewServer(sim, m, cfg, randx.New(2))
	if err != nil {
		t.Fatal(err)
	}
	results := map[bool]int{}
	for i := 0; i < 6; i++ {
		srv.Submit(Home, func(rt float64, ok bool) { results[ok]++ })
	}
	st := srv.Reset()
	if st.Aborted != 6 {
		t.Fatalf("aborted = %d, want 6", st.Aborted)
	}
	if results[false] != 6 {
		t.Fatalf("abort callbacks = %d, want 6", results[false])
	}
	m.Restart(sim.Now())
	// Old completion events must not fire after reset.
	if err := sim.Run(60); err != nil {
		t.Fatal(err)
	}
	if results[true] != 0 {
		t.Fatal("stale completion fired after reset")
	}
	if srv.Stats().Completed != 0 {
		t.Fatal("stats survived reset")
	}
	// Server still serves new requests after reset.
	ok2 := false
	srv.Submit(Home, func(rt float64, ok bool) { ok2 = ok })
	if err := sim.Run(sim.Now() + 30); err != nil {
		t.Fatal(err)
	}
	if !ok2 {
		t.Fatal("server dead after reset")
	}
}

func TestResponseTimeGrowsUnderPressure(t *testing.T) {
	sim, m, srv := newServerEnv(t)
	var healthy float64
	srv.Submit(BestSellers, func(rt float64, ok bool) { healthy = rt })
	if err := sim.Run(10); err != nil {
		t.Fatal(err)
	}
	// Exhaust most of swap: heavy paging.
	m.Leak(m.Config().TotalMemKB + 0.9*m.Config().TotalSwapKB)
	var loaded float64
	srv.Submit(BestSellers, func(rt float64, ok bool) { loaded = rt })
	if err := sim.Run(100); err != nil {
		t.Fatal(err)
	}
	if loaded <= healthy*1.5 {
		t.Fatalf("RT under pressure %v not clearly above healthy %v", loaded, healthy)
	}
}

func TestBrowserConfigValidate(t *testing.T) {
	good := DefaultBrowserConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*BrowserConfig){
		"zero think":    func(c *BrowserConfig) { c.ThinkMeanSec = 0 },
		"cap < mean":    func(c *BrowserConfig) { c.ThinkCapSec = 1 },
		"short session": func(c *BrowserConfig) { c.SessionMeanLength = 0.5 },
		"zero retry":    func(c *BrowserConfig) { c.ErrorRetrySec = 0 },
		"empty mix":     func(c *BrowserConfig) { c.Mix = [NumInteractions]float64{} },
	}
	for name, mutate := range cases {
		c := DefaultBrowserConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBrowserSessionsStartAtHome(t *testing.T) {
	sim, _, srv := newServerEnv(t)
	var samples []RTSample
	cfg := DefaultBrowserConfig()
	cfg.ThinkMeanSec = 0.5
	cfg.ThinkCapSec = 5
	b, err := NewBrowser(0, cfg, sim, srv, randx.New(20), func(s RTSample) { samples = append(samples, s) })
	if err != nil {
		t.Fatal(err)
	}
	b.Start(0)
	if err := sim.Run(300); err != nil {
		t.Fatal(err)
	}
	if len(samples) < 20 {
		t.Fatalf("only %d samples", len(samples))
	}
	if samples[0].Interaction != Home {
		t.Fatalf("first interaction = %v, want home", samples[0].Interaction)
	}
	if b.Requests() != len(samples) {
		t.Fatalf("requests %d != samples %d", b.Requests(), len(samples))
	}
	// Times are monotone.
	for i := 1; i < len(samples); i++ {
		if samples[i].AbsTime < samples[i-1].AbsTime {
			t.Fatal("sample times not monotone")
		}
	}
}

func TestBrowserStops(t *testing.T) {
	sim, _, srv := newServerEnv(t)
	cfg := DefaultBrowserConfig()
	cfg.ThinkMeanSec = 0.5
	b, err := NewBrowser(0, cfg, sim, srv, randx.New(21), nil)
	if err != nil {
		t.Fatal(err)
	}
	b.Start(0)
	if err := sim.Run(50); err != nil {
		t.Fatal(err)
	}
	n := b.Requests()
	b.Stop()
	if err := sim.Run(200); err != nil {
		t.Fatal(err)
	}
	if b.Requests() > n+1 {
		t.Fatalf("browser kept issuing after Stop: %d -> %d", n, b.Requests())
	}
}

func TestTestbedConfigValidate(t *testing.T) {
	good := DefaultTestbedConfig(1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*TestbedConfig){
		"no browsers": func(c *TestbedConfig) { c.NumBrowsers = 0 },
		"bad sample":  func(c *TestbedConfig) { c.SampleIntervalSec = 0 },
		"bad leak":    func(c *TestbedConfig) { c.LeakProbRange = [2]float64{0.9, 0.1} },
		"bad thread":  func(c *TestbedConfig) { c.ThreadProbRange = [2]float64{-1, 0.5} },
		"bad size":    func(c *TestbedConfig) { c.LeakSizeKBRange = [2]float64{0, 5} },
		"bad reboot":  func(c *TestbedConfig) { c.RebootDelaySec = -1 },
	}
	for name, mutate := range cases {
		c := DefaultTestbedConfig(1)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// fastTestbedConfig returns a configuration that crashes quickly: a small
// machine and aggressive leaks, for fast tests.
func fastTestbedConfig(seed uint64) TestbedConfig {
	cfg := DefaultTestbedConfig(seed)
	cfg.Machine.TotalMemKB = 256 * 1024
	cfg.Machine.TotalSwapKB = 128 * 1024
	cfg.Machine.BaseUsedKB = 64 * 1024
	cfg.Machine.BaseSharedKB = 8 * 1024
	cfg.Machine.BaseBuffersKB = 8 * 1024
	cfg.Machine.MinCacheKB = 8 * 1024
	cfg.NumBrowsers = 10
	cfg.Browser.ThinkMeanSec = 1
	cfg.Browser.ThinkCapSec = 10
	cfg.LeakProbRange = [2]float64{0.8, 1.0}
	cfg.LeakSizeKBRange = [2]float64{512, 2048}
	cfg.RebootDelaySec = 10
	return cfg
}

func TestTestbedProducesFailedRuns(t *testing.T) {
	tb, err := NewTestbed(fastTestbedConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.Run(4000)
	if err != nil {
		t.Fatal(err)
	}
	failed := res.History.FailedRuns()
	if len(failed) < 2 {
		t.Fatalf("only %d failed runs in 4000s", len(failed))
	}
	for i, r := range failed {
		if len(r.Datapoints) < 10 {
			t.Fatalf("run %d has only %d datapoints", i, len(r.Datapoints))
		}
		if r.FailTime <= 0 {
			t.Fatalf("run %d fail time %v", i, r.FailTime)
		}
	}
	if len(res.RTs) == 0 {
		t.Fatal("no response-time probes recorded")
	}
	if len(res.Runs) != len(res.History.Runs) {
		t.Fatalf("run info count %d != history runs %d", len(res.Runs), len(res.History.Runs))
	}
	// Injection rates vary across runs.
	if len(res.Runs) >= 2 && res.Runs[0].LeakProb == res.Runs[1].LeakProb {
		t.Fatal("injection rates identical across runs")
	}
}

func TestTestbedDeterminism(t *testing.T) {
	run := func() *Result {
		tb, err := NewTestbed(fastTestbedConfig(7))
		if err != nil {
			t.Fatal(err)
		}
		res, err := tb.Run(2500)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.History.Runs) != len(b.History.Runs) {
		t.Fatalf("run counts differ: %d vs %d", len(a.History.Runs), len(b.History.Runs))
	}
	if a.History.TotalDatapoints() != b.History.TotalDatapoints() {
		t.Fatal("datapoint counts differ")
	}
	if len(a.RTs) != len(b.RTs) {
		t.Fatalf("RT sample counts differ: %d vs %d", len(a.RTs), len(b.RTs))
	}
	for i := range a.RTs {
		if a.RTs[i] != b.RTs[i] {
			t.Fatalf("RT sample %d differs: %+v vs %+v", i, a.RTs[i], b.RTs[i])
		}
	}
	for ri := range a.History.Runs {
		ra, rb := a.History.Runs[ri], b.History.Runs[ri]
		if ra.Failed != rb.Failed || ra.FailTime != rb.FailTime {
			t.Fatalf("run %d fail info differs", ri)
		}
		for di := range ra.Datapoints {
			if ra.Datapoints[di] != rb.Datapoints[di] {
				t.Fatalf("run %d datapoint %d differs", ri, di)
			}
		}
	}
}

func TestTestbedRTGrowsTowardCrash(t *testing.T) {
	tb, err := NewTestbed(fastTestbedConfig(13))
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.Run(3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History.FailedRuns()) == 0 {
		t.Fatal("no failed runs")
	}
	// Within the first failed run, mean RT in the last quarter must
	// exceed mean RT in the first quarter.
	run := res.History.FailedRuns()[0]
	runEnd := run.FailTime
	var early, late []float64
	for _, s := range res.RTs {
		if s.AbsTime > runEnd {
			break
		}
		if s.AbsTime < runEnd/4 {
			early = append(early, s.RT)
		} else if s.AbsTime > 3*runEnd/4 {
			late = append(late, s.RT)
		}
	}
	if len(early) == 0 || len(late) == 0 {
		t.Fatalf("not enough RT samples: early=%d late=%d", len(early), len(late))
	}
	meanOf := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if meanOf(late) <= meanOf(early) {
		t.Fatalf("RT did not grow toward crash: early=%v late=%v", meanOf(early), meanOf(late))
	}
}

func TestTestbedMaxRunTruncates(t *testing.T) {
	cfg := fastTestbedConfig(5)
	cfg.LeakProbRange = [2]float64{0, 0} // no leaks: runs never fail
	cfg.ThreadProbRange = [2]float64{0, 0}
	cfg.MaxRunSec = 300
	tb, err := NewTestbed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History.FailedRuns()) != 0 {
		t.Fatal("anomaly-free run failed")
	}
	if len(res.History.Runs) < 2 {
		t.Fatalf("MaxRunSec did not truncate: %d runs", len(res.History.Runs))
	}
}

func TestTestbedRejectsBadRunArgs(t *testing.T) {
	tb, err := NewTestbed(fastTestbedConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Run(0); err == nil {
		t.Fatal("Run(0) accepted")
	}
}

func BenchmarkTestbed1000s(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := NewTestbed(fastTestbedConfig(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tb.Run(1000); err != nil {
			b.Fatal(err)
		}
	}
}

func TestTestbedRejuvenationPolicy(t *testing.T) {
	// A policy that restarts when free memory drops below 25% must
	// prevent every crash while still cycling runs.
	cfg := fastTestbedConfig(99)
	total := cfg.Machine.TotalMemKB
	cfg.RejuvenationPolicy = func(d *trace.Datapoint) bool {
		return d.Features[trace.MemFree]+d.Features[trace.MemCached] < 0.25*total
	}
	cfg.RejuvenationDelaySec = 2
	tb, err := NewTestbed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.Run(3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History.FailedRuns()) != 0 {
		t.Fatalf("%d crashes despite rejuvenation", len(res.History.FailedRuns()))
	}
	rejuv := 0
	for _, ri := range res.Runs {
		if ri.Rejuvenated {
			rejuv++
		}
	}
	if rejuv < 2 {
		t.Fatalf("only %d rejuvenations in 3000s", rejuv)
	}
}
