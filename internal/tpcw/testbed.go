package tpcw

import (
	"fmt"

	"repro/internal/anomaly"
	"repro/internal/des"
	"repro/internal/randx"
	"repro/internal/sysmodel"
	"repro/internal/trace"
)

// TestbedConfig assembles the full experimental environment of paper §IV:
// a VM hosting the TPC-W server with anomaly injection, a browser fleet,
// and the periodic feature sampling that produces the data history.
type TestbedConfig struct {
	Seed uint64

	Machine sysmodel.Config
	Server  ServerConfig
	Browser BrowserConfig

	// NumBrowsers is the emulated-browser fleet size.
	NumBrowsers int

	// SampleIntervalSec is the nominal FMC sampling interval (the paper's
	// implementation waits about 1.5 s between datapoints).
	SampleIntervalSec float64

	// Injection parameter ranges. At every run (servlet startup), the
	// leak and thread probabilities are drawn uniformly from these
	// ranges, reproducing the paper's "two different rates are generated"
	// per run so runs crash at different speeds.
	LeakProbRange   [2]float64
	ThreadProbRange [2]float64
	LeakSizeKBRange [2]float64

	// FailCondition produces a fresh failure predicate per run; nil uses
	// trace.MemoryExhaustion(0.02, 0.02).
	FailCondition func() trace.FailCondition

	// RebootDelaySec is the virtual downtime between a fail event and the
	// next run's start.
	RebootDelaySec float64

	// MaxRunSec truncates runs that never meet the failure condition
	// (recorded as unfailed runs). 0 means no cap.
	MaxRunSec float64

	// RejuvenationPolicy, when non-nil, is consulted on every sampled
	// datapoint *before* the failure check: returning true triggers a
	// proactive restart (software rejuvenation, paper §I). The run is
	// recorded as unfailed and marked Rejuvenated in its RunInfo.
	RejuvenationPolicy func(d *trace.Datapoint) bool
	// RejuvenationDelaySec is the downtime of a proactive restart
	// (typically much shorter than a crash reboot); 0 reuses
	// RebootDelaySec.
	RejuvenationDelaySec float64
}

// DefaultTestbedConfig returns the configuration used by the experiment
// harness: a 2 GB/1 GB VM, 40 browsers, and injection rates that crash
// the VM every ~15-50 virtual minutes, comparable to the paper's RTTF
// range (up to ~1800-3000 s in Figures 5a-5f).
func DefaultTestbedConfig(seed uint64) TestbedConfig {
	return TestbedConfig{
		Seed:              seed,
		Machine:           sysmodel.DefaultConfig(),
		Server:            DefaultServerConfig(),
		Browser:           DefaultBrowserConfig(),
		NumBrowsers:       40,
		SampleIntervalSec: 1.5,
		LeakProbRange:     [2]float64{0.45, 0.95},
		ThreadProbRange:   [2]float64{0.05, 0.25},
		LeakSizeKBRange:   [2]float64{256, 2304},
		RebootDelaySec:    60,
		MaxRunSec:         4 * 3600,
	}
}

// Validate reports configuration errors.
func (c *TestbedConfig) Validate() error {
	if err := c.Machine.Validate(); err != nil {
		return err
	}
	if err := c.Server.Validate(); err != nil {
		return err
	}
	if err := c.Browser.Validate(); err != nil {
		return err
	}
	if c.NumBrowsers <= 0 {
		return fmt.Errorf("tpcw: NumBrowsers must be positive, got %d", c.NumBrowsers)
	}
	if c.SampleIntervalSec <= 0 {
		return fmt.Errorf("tpcw: SampleIntervalSec must be positive, got %v", c.SampleIntervalSec)
	}
	if c.LeakProbRange[0] < 0 || c.LeakProbRange[1] > 1 || c.LeakProbRange[1] < c.LeakProbRange[0] {
		return fmt.Errorf("tpcw: LeakProbRange %v invalid", c.LeakProbRange)
	}
	if c.ThreadProbRange[0] < 0 || c.ThreadProbRange[1] > 1 || c.ThreadProbRange[1] < c.ThreadProbRange[0] {
		return fmt.Errorf("tpcw: ThreadProbRange %v invalid", c.ThreadProbRange)
	}
	if c.LeakSizeKBRange[0] <= 0 || c.LeakSizeKBRange[1] < c.LeakSizeKBRange[0] {
		return fmt.Errorf("tpcw: LeakSizeKBRange %v invalid", c.LeakSizeKBRange)
	}
	if c.RebootDelaySec < 0 {
		return fmt.Errorf("tpcw: RebootDelaySec must be non-negative, got %v", c.RebootDelaySec)
	}
	return nil
}

// RunInfo summarizes one run of the test-bed.
type RunInfo struct {
	LeakProb   float64
	ThreadProb float64
	// StartAbs is the absolute virtual time the run's VM booted; response
	// time probes can be mapped to runs through it.
	StartAbs float64
	Duration float64
	Failed   bool
	// Rejuvenated marks runs ended by the proactive rejuvenation policy
	// rather than by a crash or truncation.
	Rejuvenated bool
	Stats       ServerStats
}

// Result is the output of a test-bed campaign: the data history the F2PM
// pipeline consumes, plus the browser-side response-time probes and
// per-run metadata used by the experiments.
type Result struct {
	History trace.History
	RTs     []RTSample
	Runs    []RunInfo
}

// Testbed wires machine, server, browsers, injection, and sampling on one
// DES simulator.
type Testbed struct {
	cfg      TestbedConfig
	sim      *des.Simulator
	machine  *sysmodel.Machine
	server   *Server
	browsers []*Browser
	rng      *randx.Source

	result     *Result
	currentRun trace.Run
	runInfo    RunInfo
	cond       trace.FailCondition
	runStart   float64
	rebooting  bool
}

// NewTestbed builds the environment; call Run to execute it.
func NewTestbed(cfg TestbedConfig) (*Testbed, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := randx.New(cfg.Seed)
	sim := &des.Simulator{}
	machine, err := sysmodel.NewMachine(cfg.Machine, root.Fork(1))
	if err != nil {
		return nil, err
	}
	server, err := NewServer(sim, machine, cfg.Server, root.Fork(2))
	if err != nil {
		return nil, err
	}
	tb := &Testbed{
		cfg:     cfg,
		sim:     sim,
		machine: machine,
		server:  server,
		rng:     root.Fork(3),
		result:  &Result{},
	}
	for i := 0; i < cfg.NumBrowsers; i++ {
		b, err := NewBrowser(i, cfg.Browser, sim, server, root.Fork(100+uint64(i)), tb.recordRT)
		if err != nil {
			return nil, err
		}
		tb.browsers = append(tb.browsers, b)
	}
	return tb, nil
}

func (tb *Testbed) recordRT(s RTSample) {
	tb.result.RTs = append(tb.result.RTs, s)
}

func (tb *Testbed) newFailCondition() trace.FailCondition {
	if tb.cfg.FailCondition != nil {
		return tb.cfg.FailCondition()
	}
	return trace.MemoryExhaustion(0.02, 0.02)
}

// startRun boots the VM and server with fresh injection rates.
func (tb *Testbed) startRun() error {
	tb.machine.Restart(tb.sim.Now())
	tb.runStart = tb.sim.Now()
	tb.currentRun = trace.Run{}
	tb.cond = tb.newFailCondition()
	leakProb, threadProb := anomaly.DrawRates(tb.rng,
		tb.cfg.LeakProbRange[0], tb.cfg.LeakProbRange[1],
		tb.cfg.ThreadProbRange[0], tb.cfg.ThreadProbRange[1])
	inj := anomaly.RequestInjection{
		LeakProb:   leakProb,
		LeakMinKB:  tb.cfg.LeakSizeKBRange[0],
		LeakMaxKB:  tb.cfg.LeakSizeKBRange[1],
		ThreadProb: threadProb,
	}
	if err := tb.server.SetInjection(inj); err != nil {
		return err
	}
	tb.runInfo = RunInfo{LeakProb: leakProb, ThreadProb: threadProb, StartAbs: tb.runStart}
	tb.rebooting = false
	return nil
}

// endRun records the run and schedules the reboot.
func (tb *Testbed) endRun(failed, rejuvenated bool) {
	tb.rebooting = true
	now := tb.sim.Now()
	tb.currentRun.Failed = failed
	if failed {
		tb.currentRun.FailTime = tb.machine.Uptime(now)
	}
	tb.runInfo.Failed = failed
	tb.runInfo.Rejuvenated = rejuvenated
	tb.runInfo.Duration = tb.machine.Uptime(now)
	tb.runInfo.Stats = tb.server.Reset()
	tb.result.History.Runs = append(tb.result.History.Runs, tb.currentRun)
	tb.result.Runs = append(tb.result.Runs, tb.runInfo)
	delay := tb.cfg.RebootDelaySec
	if rejuvenated && tb.cfg.RejuvenationDelaySec > 0 {
		delay = tb.cfg.RejuvenationDelaySec
	}
	tb.sim.Schedule(delay, func() {
		// Errors here are impossible: the injection ranges were already
		// validated, so SetInjection cannot fail. Guard anyway.
		if err := tb.startRun(); err != nil {
			panic(fmt.Sprintf("tpcw: restart failed: %v", err))
		}
	})
}

// sample takes one FMC datapoint, consults the rejuvenation policy, and
// evaluates the failure condition.
func (tb *Testbed) sample() {
	if tb.rebooting {
		return
	}
	d := tb.machine.Snapshot(tb.sim.Now())
	tb.currentRun.Datapoints = append(tb.currentRun.Datapoints, d)
	switch {
	case tb.cfg.RejuvenationPolicy != nil && tb.cfg.RejuvenationPolicy(&d):
		tb.endRun(false, true)
	case tb.cond(&d) || tb.machine.OOM():
		tb.endRun(true, false)
	case tb.cfg.MaxRunSec > 0 && tb.machine.Uptime(tb.sim.Now()) >= tb.cfg.MaxRunSec:
		tb.endRun(false, false)
	}
}

// Run executes the campaign for totalSec of virtual time and returns the
// collected result. The browser fleet keeps issuing requests across
// restarts, as the paper's week-long experiment did.
func (tb *Testbed) Run(totalSec float64) (*Result, error) {
	if totalSec <= 0 {
		return nil, fmt.Errorf("tpcw: totalSec must be positive, got %v", totalSec)
	}
	if err := tb.startRun(); err != nil {
		return nil, err
	}
	for _, b := range tb.browsers {
		b.Start(tb.cfg.Browser.ThinkMeanSec)
	}
	// The sampling interval suffers load-dependent skew: the overloaded
	// scheduler delays the monitor, which is the signal Figure 3
	// correlates with client response time.
	stopSampler := tb.sim.Every(tb.cfg.SampleIntervalSec, func(i int) float64 {
		return tb.machine.MonitorSkew(tb.cfg.SampleIntervalSec)
	}, tb.sample)
	defer stopSampler()

	if err := tb.sim.Run(totalSec); err != nil {
		return nil, err
	}
	for _, b := range tb.browsers {
		b.Stop()
	}
	// Close out the in-progress run as truncated if it has datapoints.
	if !tb.rebooting && len(tb.currentRun.Datapoints) > 0 {
		tb.currentRun.Failed = false
		tb.result.History.Runs = append(tb.result.History.Runs, tb.currentRun)
		tb.runInfo.Failed = false
		tb.runInfo.Duration = tb.machine.Uptime(tb.sim.Now())
		tb.runInfo.Stats = tb.server.Stats()
		tb.result.Runs = append(tb.result.Runs, tb.runInfo)
	}
	if err := tb.result.History.Validate(); err != nil {
		return nil, fmt.Errorf("tpcw: generated history invalid: %w", err)
	}
	return tb.result, nil
}

// Machine exposes the underlying machine (used by the monitor package's
// simulated feature source and by tests).
func (tb *Testbed) Machine() *sysmodel.Machine { return tb.machine }

// Server exposes the underlying server model.
func (tb *Testbed) Server() *Server { return tb.server }

// Simulator exposes the DES engine driving the test-bed.
func (tb *Testbed) Simulator() *des.Simulator { return tb.sim }
