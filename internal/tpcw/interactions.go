// Package tpcw models the paper's test-bed application: the TPC-W
// e-commerce benchmark (an on-line book store) served by a
// servlet-container-like server with a database backend, exercised by a
// fleet of emulated browsers (paper §IV-A).
//
// The model is intentionally behavioural, not protocol-level: what the
// F2PM pipeline consumes is the *load* the benchmark puts on the hosting
// VM (CPU seconds, transient request memory, worker threads) plus the
// per-interaction response times measured by the emulated-browser probes.
// The paper's anomaly injection point is preserved exactly: the Home
// interaction (session start) leaks memory / spawns unterminated threads
// with per-run probabilities drawn at server startup, so anomaly
// accumulation follows server load.
package tpcw

// Interaction enumerates the 14 TPC-W web interactions.
type Interaction int

// The TPC-W web interactions. Home is the session entry point and the
// anomaly injection site (the paper modified the Home Web Interaction
// class).
const (
	Home Interaction = iota
	NewProducts
	BestSellers
	ProductDetail
	SearchRequest
	SearchResults
	ShoppingCart
	CustomerRegistration
	BuyRequest
	BuyConfirm
	OrderInquiry
	OrderDisplay
	AdminRequest
	AdminConfirm

	// NumInteractions is the number of distinct web interactions.
	NumInteractions = int(AdminConfirm) + 1
)

var interactionNames = [NumInteractions]string{
	"home",
	"new_products",
	"best_sellers",
	"product_detail",
	"search_request",
	"search_results",
	"shopping_cart",
	"customer_registration",
	"buy_request",
	"buy_confirm",
	"order_inquiry",
	"order_display",
	"admin_request",
	"admin_confirm",
}

// String returns the interaction's name.
func (i Interaction) String() string {
	if i < 0 || int(i) >= NumInteractions {
		return "unknown"
	}
	return interactionNames[i]
}

// Cost is the nominal resource demand of one interaction on an unloaded
// server: servlet CPU milliseconds and database milliseconds (query
// execution; partially CPU, partially lock/disk wait).
type Cost struct {
	CPUMs float64
	DBMs  float64
}

// DefaultCosts returns per-interaction costs shaped after published TPC-W
// characterizations: browsing interactions are cheap, BestSellers and
// search results are query-heavy, order placement touches several tables.
func DefaultCosts() [NumInteractions]Cost {
	return [NumInteractions]Cost{
		Home:                 {CPUMs: 8, DBMs: 14},
		NewProducts:          {CPUMs: 10, DBMs: 28},
		BestSellers:          {CPUMs: 12, DBMs: 65},
		ProductDetail:        {CPUMs: 7, DBMs: 12},
		SearchRequest:        {CPUMs: 5, DBMs: 3},
		SearchResults:        {CPUMs: 11, DBMs: 38},
		ShoppingCart:         {CPUMs: 9, DBMs: 16},
		CustomerRegistration: {CPUMs: 8, DBMs: 10},
		BuyRequest:           {CPUMs: 12, DBMs: 22},
		BuyConfirm:           {CPUMs: 16, DBMs: 36},
		OrderInquiry:         {CPUMs: 5, DBMs: 6},
		OrderDisplay:         {CPUMs: 9, DBMs: 20},
		AdminRequest:         {CPUMs: 6, DBMs: 8},
		AdminConfirm:         {CPUMs: 14, DBMs: 30},
	}
}

// DefaultMix returns the stationary interaction mix used by the emulated
// browsers after the first (Home) interaction of a session, shaped after
// the TPC-W shopping mix: browsing-dominated with a modest ordering tail.
// Weights need not sum to 1; they are used as categorical weights.
func DefaultMix() [NumInteractions]float64 {
	return [NumInteractions]float64{
		Home:                 16.0,
		NewProducts:          5.0,
		BestSellers:          5.0,
		ProductDetail:        17.0,
		SearchRequest:        20.0,
		SearchResults:        17.0,
		ShoppingCart:         11.6,
		CustomerRegistration: 3.0,
		BuyRequest:           2.6,
		BuyConfirm:           1.2,
		OrderInquiry:         0.75,
		OrderDisplay:         0.66,
		AdminRequest:         0.10,
		AdminConfirm:         0.09,
	}
}
