package tpcw

import (
	"fmt"

	"repro/internal/anomaly"
	"repro/internal/des"
	"repro/internal/randx"
	"repro/internal/sysmodel"
)

// ServerConfig describes the servlet container + database model.
type ServerConfig struct {
	// MaxWorkers bounds concurrent request processing (Tomcat worker
	// pool). Excess requests queue FIFO.
	MaxWorkers int
	// MaxQueue bounds the accept queue; submissions beyond it are
	// rejected (connection refused). 0 means unbounded.
	MaxQueue int
	// Costs holds per-interaction resource demands.
	Costs [NumInteractions]Cost
	// ServiceJitterSigma is the sigma of the log-normal service-time
	// jitter (0 disables jitter).
	ServiceJitterSigma float64
	// DBCPUFrac is the fraction of database milliseconds that consume
	// CPU (the rest is lock/disk wait).
	DBCPUFrac float64
	// SysCPUFrac is the fraction of consumed CPU charged to kernel mode
	// (syscalls, network, filesystem).
	SysCPUFrac float64
}

// DefaultServerConfig returns a Tomcat-like configuration.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		MaxWorkers:         48,
		MaxQueue:           512,
		Costs:              DefaultCosts(),
		ServiceJitterSigma: 0.25,
		DBCPUFrac:          0.45,
		SysCPUFrac:         0.22,
	}
}

// Validate reports configuration errors.
func (c *ServerConfig) Validate() error {
	if c.MaxWorkers <= 0 {
		return fmt.Errorf("tpcw: MaxWorkers must be positive, got %d", c.MaxWorkers)
	}
	if c.MaxQueue < 0 {
		return fmt.Errorf("tpcw: MaxQueue must be non-negative, got %d", c.MaxQueue)
	}
	if c.DBCPUFrac < 0 || c.DBCPUFrac > 1 || c.SysCPUFrac < 0 || c.SysCPUFrac > 1 {
		return fmt.Errorf("tpcw: CPU fractions must be in [0,1]")
	}
	for i, cost := range c.Costs {
		if cost.CPUMs < 0 || cost.DBMs < 0 {
			return fmt.Errorf("tpcw: negative cost for %s", Interaction(i))
		}
	}
	return nil
}

// ServerStats aggregates server-side counters for one run.
type ServerStats struct {
	Completed int
	Rejected  int
	Aborted   int // in-flight/queued requests dropped by a restart
	LeakedKB  float64
	Threads   int // unterminated threads spawned via injection
}

// request is one in-flight or queued request.
type request struct {
	interaction Interaction
	submitted   float64
	done        func(rt float64, ok bool)
}

// Server simulates the servlet container and database on a machine.
// Response time = queue wait + service time, where service time is the
// nominal interaction cost stretched by the machine's current Slowdown
// (paging, thread pressure). It is single-threaded DES code.
type Server struct {
	sim     *des.Simulator
	machine *sysmodel.Machine
	cfg     ServerConfig
	rng     *randx.Source

	injection anomaly.RequestInjection

	busy       int
	queue      []*request
	inflight   []*request // in service, FIFO by admission; slice keeps abort order deterministic
	generation int
	stats      ServerStats
}

// NewServer creates a server bound to a simulator and machine.
func NewServer(sim *des.Simulator, m *sysmodel.Machine, cfg ServerConfig, rng *randx.Source) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Server{sim: sim, machine: m, cfg: cfg, rng: rng}, nil
}

// SetInjection installs the per-request anomaly injection parameters
// (drawn per run, at "servlet startup").
func (s *Server) SetInjection(inj anomaly.RequestInjection) error {
	if err := inj.Validate(); err != nil {
		return err
	}
	s.injection = inj
	return nil
}

// Injection returns the current injection parameters.
func (s *Server) Injection() anomaly.RequestInjection { return s.injection }

// Stats returns the counters accumulated since the last Reset.
func (s *Server) Stats() ServerStats { return s.stats }

// QueueLen returns the number of waiting (not yet serviced) requests.
func (s *Server) QueueLen() int { return len(s.queue) }

// Busy returns the number of requests currently in service.
func (s *Server) Busy() int { return s.busy }

// Submit hands a request to the server. done is invoked exactly once:
// with (responseTime, true) on success or (0, false) if the request is
// rejected or aborted by a server restart.
func (s *Server) Submit(ia Interaction, done func(rt float64, ok bool)) {
	req := &request{interaction: ia, submitted: s.sim.Now(), done: done}
	if s.busy < s.cfg.MaxWorkers {
		s.startService(req)
		return
	}
	if s.cfg.MaxQueue > 0 && len(s.queue) >= s.cfg.MaxQueue {
		s.stats.Rejected++
		done(0, false)
		return
	}
	s.queue = append(s.queue, req)
}

func (s *Server) startService(req *request) {
	s.busy++
	s.inflight = append(s.inflight, req)
	s.machine.RequestStarted()

	// The Home interaction is the anomaly injection site (paper §IV-A).
	if req.interaction == Home {
		leaked, spawned := s.injection.Apply(s.rng, s.machine)
		s.stats.LeakedKB += leaked
		if spawned {
			s.stats.Threads++
		}
	}

	cost := s.cfg.Costs[req.interaction]
	nominalSec := (cost.CPUMs + cost.DBMs) / 1000
	jitter := 1.0
	if s.cfg.ServiceJitterSigma > 0 {
		jitter = s.rng.LogNorm(0, s.cfg.ServiceJitterSigma)
	}
	serviceSec := nominalSec * jitter * s.machine.Slowdown()

	gen := s.generation
	s.sim.Schedule(serviceSec, func() {
		if gen != s.generation {
			// The server restarted while this request was in flight;
			// the abort path already notified the client.
			return
		}
		// Charge consumed CPU: servlet CPU plus the CPU share of DB
		// work. The slowdown stretch is *waiting* (paging), not CPU,
		// so the charge uses nominal costs.
		cpuSec := (cost.CPUMs + s.cfg.DBCPUFrac*cost.DBMs) / 1000 * jitter
		s.machine.ConsumeCPU(cpuSec*(1-s.cfg.SysCPUFrac), cpuSec*s.cfg.SysCPUFrac)
		s.machine.RequestFinished()
		s.busy--
		for i, r := range s.inflight {
			if r == req {
				s.inflight = append(s.inflight[:i], s.inflight[i+1:]...)
				break
			}
		}
		s.stats.Completed++
		req.done(s.sim.Now()-req.submitted, true)
		s.dispatch()
	})
}

// dispatch admits queued requests while workers are free.
func (s *Server) dispatch() {
	for s.busy < s.cfg.MaxWorkers && len(s.queue) > 0 {
		req := s.queue[0]
		s.queue = s.queue[1:]
		s.startService(req)
	}
}

// Reset aborts all queued and in-flight requests (notifying their
// clients with ok=false), clears counters, and installs a new generation
// so stale completion events are dropped. Called on VM restart. It
// returns the final statistics of the run that just ended, with the
// aborted-request count folded in.
func (s *Server) Reset() ServerStats {
	s.generation++
	final := s.stats
	final.Aborted = len(s.queue) + len(s.inflight)
	for _, req := range s.queue {
		req.done(0, false)
	}
	s.queue = nil
	// In-flight requests: their completion events are invalidated by the
	// generation bump; notify clients now.
	for _, req := range s.inflight {
		req.done(0, false)
	}
	s.inflight = nil
	s.busy = 0
	s.stats = ServerStats{}
	return final
}
