package tpcw

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/randx"
)

// BrowserConfig describes the emulated browsers (TPC-W "EBs").
type BrowserConfig struct {
	// ThinkMeanSec is the mean of the negative-exponential think time
	// between interactions (TPC-W specifies ~7 s).
	ThinkMeanSec float64
	// ThinkCapSec truncates think times (TPC-W caps at 70 s).
	ThinkCapSec float64
	// SessionMeanLength is the mean number of interactions per session
	// (geometric); every session starts at Home.
	SessionMeanLength float64
	// ErrorRetrySec is how long a browser waits after a failed request
	// (server restarting) before opening a new session.
	ErrorRetrySec float64
	// Mix holds the categorical weights for the post-Home interactions.
	Mix [NumInteractions]float64
}

// DefaultBrowserConfig returns TPC-W-like browser behaviour.
func DefaultBrowserConfig() BrowserConfig {
	return BrowserConfig{
		ThinkMeanSec:      7,
		ThinkCapSec:       70,
		SessionMeanLength: 8,
		ErrorRetrySec:     15,
		Mix:               DefaultMix(),
	}
}

// Validate reports configuration errors.
func (c *BrowserConfig) Validate() error {
	if c.ThinkMeanSec <= 0 {
		return fmt.Errorf("tpcw: ThinkMeanSec must be positive, got %v", c.ThinkMeanSec)
	}
	if c.ThinkCapSec < c.ThinkMeanSec {
		return fmt.Errorf("tpcw: ThinkCapSec %v below ThinkMeanSec %v", c.ThinkCapSec, c.ThinkMeanSec)
	}
	if c.SessionMeanLength < 1 {
		return fmt.Errorf("tpcw: SessionMeanLength must be >= 1, got %v", c.SessionMeanLength)
	}
	if c.ErrorRetrySec <= 0 {
		return fmt.Errorf("tpcw: ErrorRetrySec must be positive, got %v", c.ErrorRetrySec)
	}
	var total float64
	for _, w := range c.Mix {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return fmt.Errorf("tpcw: interaction mix has no positive weight")
	}
	return nil
}

// RTSample is one response-time observation from a browser probe. The
// paper instrumented the emulated browsers to store the response time of
// every web interaction; these samples are Figure 3's ground truth.
type RTSample struct {
	// AbsTime is the virtual time the response arrived.
	AbsTime float64
	// RT is the observed response time in seconds.
	RT float64
	// Interaction is the interaction type.
	Interaction Interaction
	// Browser is the issuing browser's id.
	Browser int
}

// Browser is one emulated browser running closed-loop sessions against a
// server. It records an RTSample for every successful interaction via the
// probe callback.
type Browser struct {
	id     int
	cfg    BrowserConfig
	sim    *des.Simulator
	server *Server
	rng    *randx.Source
	probe  func(RTSample)

	sessionLeft int
	stopped     bool
	requests    int
	errors      int
}

// NewBrowser creates a browser; call Start to begin its first session.
// probe may be nil.
func NewBrowser(id int, cfg BrowserConfig, sim *des.Simulator, server *Server, rng *randx.Source, probe func(RTSample)) (*Browser, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Browser{id: id, cfg: cfg, sim: sim, server: server, rng: rng, probe: probe}, nil
}

// Requests returns the number of successful interactions completed.
func (b *Browser) Requests() int { return b.requests }

// Errors returns the number of failed interactions observed.
func (b *Browser) Errors() int { return b.errors }

// Start begins the browser's first session after a small uniform ramp-up
// delay (staggering the fleet, as TPC-W load generators do).
func (b *Browser) Start(rampUpSec float64) {
	b.stopped = false
	delay := 0.0
	if rampUpSec > 0 {
		delay = b.rng.Uniform(0, rampUpSec)
	}
	b.sim.Schedule(delay, b.newSession)
}

// Stop halts the browser after its current wait; no further requests are
// issued.
func (b *Browser) Stop() { b.stopped = true }

func (b *Browser) newSession() {
	if b.stopped {
		return
	}
	// Geometric session length with the configured mean.
	b.sessionLeft = 1
	p := 1 / b.cfg.SessionMeanLength
	for b.rng.Float64() > p {
		b.sessionLeft++
	}
	b.issue(Home)
}

func (b *Browser) issue(ia Interaction) {
	if b.stopped {
		return
	}
	b.server.Submit(ia, func(rt float64, ok bool) {
		if b.stopped {
			return
		}
		if !ok {
			b.errors++
			b.sim.Schedule(b.cfg.ErrorRetrySec, b.newSession)
			return
		}
		b.requests++
		if b.probe != nil {
			b.probe(RTSample{AbsTime: b.sim.Now(), RT: rt, Interaction: ia, Browser: b.id})
		}
		b.sessionLeft--
		think := b.rng.Exp(b.cfg.ThinkMeanSec)
		if think > b.cfg.ThinkCapSec {
			think = b.cfg.ThinkCapSec
		}
		if b.sessionLeft <= 0 {
			b.sim.Schedule(think, b.newSession)
			return
		}
		next := Interaction(b.rng.Categorical(b.cfg.Mix[:]))
		b.sim.Schedule(think, func() { b.issue(next) })
	})
}
