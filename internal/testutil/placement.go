// Package testutil holds small dependency-free helpers shared across
// the repository's test suites. It must not import any repro package:
// white-box tests inside internal/serve use these helpers too, and an
// import back into serve (or anything that imports serve) would cycle.
package testutil

import "fmt"

// PlaceFunc maps a session id onto a shard index in [0, shards) — the
// signature of serve.Placer.Place, accepted structurally so callers
// can pass any placer's Place method (or a bare hash) without this
// package importing serve.
type PlaceFunc func(id string, shards int) int

// IDsOnShard returns n distinct session ids that place onto shard idx
// under place — the deterministic way to stage a chosen per-shard
// load. Ids are generated as "c-<idx>-<i>" and filtered, so the same
// (place, shards, idx, n) always yields the same ids.
func IDsOnShard(place PlaceFunc, shards, idx, n int) []string {
	out := make([]string, 0, n)
	for i := 0; len(out) < n; i++ {
		id := fmt.Sprintf("c-%d-%d", idx, i)
		if place(id, shards) == idx {
			out = append(out, id)
		}
	}
	return out
}

// Spread counts how many of the ids place onto each shard under
// place, returning one count per shard — the balance histogram tests
// assert fairness over.
func Spread(place PlaceFunc, ids []string, shards int) []int {
	counts := make([]int, shards)
	for _, id := range ids {
		counts[place(id, shards)]++
	}
	return counts
}
