package anomaly

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/randx"
	"repro/internal/sysmodel"
)

func newMachine(t testing.TB) *sysmodel.Machine {
	t.Helper()
	m, err := sysmodel.NewMachine(sysmodel.DefaultConfig(), randx.New(2))
	if err != nil {
		t.Fatal(err)
	}
	m.Restart(0)
	return m
}

func TestLeakConfigValidate(t *testing.T) {
	bad := []LeakConfig{
		{MinSizeKB: 0, MaxSizeKB: 10, MinMeanSec: 1, MaxMeanSec: 2},
		{MinSizeKB: 10, MaxSizeKB: 5, MinMeanSec: 1, MaxMeanSec: 2},
		{MinSizeKB: 1, MaxSizeKB: 10, MinMeanSec: 0, MaxMeanSec: 2},
		{MinSizeKB: 1, MaxSizeKB: 10, MinMeanSec: 3, MaxMeanSec: 2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
		if _, err := NewLeakGenerator(c, randx.New(1)); err == nil {
			t.Errorf("case %d: NewLeakGenerator accepted invalid config", i)
		}
	}
	good := LeakConfig{MinSizeKB: 1, MaxSizeKB: 10, MinMeanSec: 1, MaxMeanSec: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestThreadConfigValidate(t *testing.T) {
	if err := (&ThreadConfig{MinMeanSec: 0, MaxMeanSec: 1}).Validate(); err == nil {
		t.Fatal("zero mean accepted")
	}
	if err := (&ThreadConfig{MinMeanSec: 2, MaxMeanSec: 1}).Validate(); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := NewThreadGenerator(ThreadConfig{MinMeanSec: 2, MaxMeanSec: 1}, randx.New(1)); err == nil {
		t.Fatal("NewThreadGenerator accepted invalid config")
	}
}

func TestLeakGeneratorRate(t *testing.T) {
	cfg := LeakConfig{MinSizeKB: 100, MaxSizeKB: 100, MinMeanSec: 2, MaxMeanSec: 2}
	g, err := NewLeakGenerator(cfg, randx.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if g.MeanSec() != 2 {
		t.Fatalf("mean = %v, want 2 (degenerate range)", g.MeanSec())
	}
	var sim des.Simulator
	m := newMachine(t)
	g.Start(&sim, m)
	const horizon = 10000.0
	if err := sim.Run(horizon); err != nil {
		t.Fatal(err)
	}
	// Expected activations: horizon/mean = 5000; allow 10%.
	if n := float64(g.Count()); math.Abs(n-5000) > 500 {
		t.Fatalf("activations = %v, want ~5000", n)
	}
	if g.TotalLeakedKB() != float64(g.Count())*100 {
		t.Fatalf("leak accounting mismatch: total=%v count=%d", g.TotalLeakedKB(), g.Count())
	}
	if m.LeakedKB() != g.TotalLeakedKB() {
		t.Fatalf("machine got %v leaked, generator says %v", m.LeakedKB(), g.TotalLeakedKB())
	}
}

func TestLeakGeneratorStop(t *testing.T) {
	cfg := LeakConfig{MinSizeKB: 1, MaxSizeKB: 2, MinMeanSec: 1, MaxMeanSec: 1}
	g, err := NewLeakGenerator(cfg, randx.New(4))
	if err != nil {
		t.Fatal(err)
	}
	var sim des.Simulator
	m := newMachine(t)
	g.Start(&sim, m)
	if err := sim.Run(10); err != nil {
		t.Fatal(err)
	}
	n := g.Count()
	if n == 0 {
		t.Fatal("no activations before stop")
	}
	g.Stop()
	if err := sim.Run(100); err != nil {
		t.Fatal(err)
	}
	if g.Count() != n {
		t.Fatalf("generator kept running after Stop: %d -> %d", n, g.Count())
	}
	g.Stop() // double-stop is a no-op
}

func TestLeakMeanDrawnFromRange(t *testing.T) {
	cfg := LeakConfig{MinSizeKB: 1, MaxSizeKB: 2, MinMeanSec: 5, MaxMeanSec: 15}
	seen := map[bool]int{}
	for seed := uint64(0); seed < 20; seed++ {
		g, err := NewLeakGenerator(cfg, randx.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if g.MeanSec() < 5 || g.MeanSec() > 15 {
			t.Fatalf("mean %v outside [5,15]", g.MeanSec())
		}
		seen[g.MeanSec() > 10]++
	}
	if seen[true] == 0 || seen[false] == 0 {
		t.Fatal("drawn means show no variation across seeds")
	}
}

func TestThreadGeneratorRate(t *testing.T) {
	cfg := ThreadConfig{MinMeanSec: 4, MaxMeanSec: 4}
	g, err := NewThreadGenerator(cfg, randx.New(5))
	if err != nil {
		t.Fatal(err)
	}
	var sim des.Simulator
	m := newMachine(t)
	g.Start(&sim, m)
	if err := sim.Run(8000); err != nil {
		t.Fatal(err)
	}
	if n := float64(g.Count()); math.Abs(n-2000) > 250 {
		t.Fatalf("spawns = %v, want ~2000", n)
	}
	if m.ExtraThreads() != g.Count() {
		t.Fatalf("machine threads %d != generator count %d", m.ExtraThreads(), g.Count())
	}
	g.Stop()
}

func TestRequestInjectionValidate(t *testing.T) {
	bad := []RequestInjection{
		{LeakProb: -0.1},
		{LeakProb: 1.1},
		{ThreadProb: 2},
		{LeakProb: 0.5, LeakMinKB: 0, LeakMaxKB: 10},
		{LeakProb: 0.5, LeakMinKB: 10, LeakMaxKB: 5},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	good := RequestInjection{LeakProb: 0.3, LeakMinKB: 10, LeakMaxKB: 100, ThreadProb: 0.1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	// Zero leak probability does not require a size range.
	zero := RequestInjection{ThreadProb: 0.2}
	if err := zero.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRequestInjectionApply(t *testing.T) {
	m := newMachine(t)
	rng := randx.New(6)
	inj := RequestInjection{LeakProb: 1, LeakMinKB: 50, LeakMaxKB: 50, ThreadProb: 1}
	leaked, spawned := inj.Apply(rng, m)
	if leaked != 50 || !spawned {
		t.Fatalf("Apply = (%v, %v), want (50, true)", leaked, spawned)
	}
	if m.LeakedKB() != 50 || m.ExtraThreads() != 1 {
		t.Fatal("machine state not updated")
	}
	none := RequestInjection{}
	leaked, spawned = none.Apply(rng, m)
	if leaked != 0 || spawned {
		t.Fatal("zero-probability injection fired")
	}
}

func TestRequestInjectionFrequency(t *testing.T) {
	m := newMachine(t)
	rng := randx.New(7)
	inj := RequestInjection{LeakProb: 0.25, LeakMinKB: 1, LeakMaxKB: 1, ThreadProb: 0.5}
	leaks, threads := 0, 0
	const n = 20000
	for i := 0; i < n; i++ {
		l, s := inj.Apply(rng, m)
		if l > 0 {
			leaks++
		}
		if s {
			threads++
		}
	}
	if p := float64(leaks) / n; math.Abs(p-0.25) > 0.02 {
		t.Fatalf("leak frequency = %v, want ~0.25", p)
	}
	if p := float64(threads) / n; math.Abs(p-0.5) > 0.02 {
		t.Fatalf("thread frequency = %v, want ~0.5", p)
	}
}

func TestDrawRates(t *testing.T) {
	rng := randx.New(8)
	for i := 0; i < 100; i++ {
		lp, tp := DrawRates(rng, 0.1, 0.2, 0.01, 0.05)
		if lp < 0.1 || lp >= 0.2 || tp < 0.01 || tp >= 0.05 {
			t.Fatalf("rates out of range: %v %v", lp, tp)
		}
	}
}

func TestGeneratorsDriveMachineToExhaustion(t *testing.T) {
	// Integration: aggressive generators must crash the default machine
	// within a bounded virtual time.
	m := newMachine(t)
	var sim des.Simulator
	lg, err := NewLeakGenerator(LeakConfig{MinSizeKB: 4096, MaxSizeKB: 16384, MinMeanSec: 0.5, MaxMeanSec: 1}, randx.New(9))
	if err != nil {
		t.Fatal(err)
	}
	tg, err := NewThreadGenerator(ThreadConfig{MinMeanSec: 2, MaxMeanSec: 4}, randx.New(10))
	if err != nil {
		t.Fatal(err)
	}
	lg.Start(&sim, m)
	tg.Start(&sim, m)
	crashed := false
	for step := 0; step < 5000 && !crashed; step++ {
		if err := sim.Run(float64(step+1) * 1.5); err != nil {
			t.Fatal(err)
		}
		if m.OOM() {
			crashed = true
		}
	}
	if !crashed {
		t.Fatalf("machine never crashed; leaked=%v KB threads=%d", m.LeakedKB(), m.ExtraThreads())
	}
	lg.Stop()
	tg.Stop()
}
