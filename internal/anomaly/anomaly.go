// Package anomaly implements the paper's anomaly-injection utilities
// (§III-E): a memory-leak generator and an unterminated-thread generator
// driven by the statistical distributions the paper specifies.
//
// Two injection styles are provided, matching the paper:
//
//   - Standalone generators (LeakGenerator, ThreadGenerator) that run as
//     DES processes with exponential inter-arrival times whose means are
//     drawn uniformly at startup — the paper's "additional utilities" for
//     synthetic stressing and for speeding up training-data collection.
//
//   - Per-request injection parameters (RequestInjection) used by the
//     TPC-W servlet model, where the Home interaction leaks memory or
//     spawns a thread with probabilities fixed at servlet startup, so the
//     anomaly rate follows the server load (paper §IV-A).
package anomaly

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/randx"
	"repro/internal/sysmodel"
)

// LeakConfig parameterizes the standalone memory-leak generator.
type LeakConfig struct {
	// Leak sizes are drawn uniformly from [MinSizeKB, MaxSizeKB]
	// ("applications require both small-size and large-size buffers").
	MinSizeKB, MaxSizeKB float64
	// The exponential inter-arrival mean is itself drawn uniformly from
	// [MinMeanSec, MaxMeanSec] at startup ("more or less often").
	MinMeanSec, MaxMeanSec float64
}

// Validate reports configuration errors.
func (c *LeakConfig) Validate() error {
	if c.MinSizeKB <= 0 || c.MaxSizeKB < c.MinSizeKB {
		return fmt.Errorf("anomaly: leak size range [%v, %v] invalid", c.MinSizeKB, c.MaxSizeKB)
	}
	if c.MinMeanSec <= 0 || c.MaxMeanSec < c.MinMeanSec {
		return fmt.Errorf("anomaly: leak mean range [%v, %v] invalid", c.MinMeanSec, c.MaxMeanSec)
	}
	return nil
}

// ThreadConfig parameterizes the standalone unterminated-thread generator.
type ThreadConfig struct {
	// The exponential inter-arrival mean is drawn uniformly from
	// [MinMeanSec, MaxMeanSec] at startup.
	MinMeanSec, MaxMeanSec float64
}

// Validate reports configuration errors.
func (c *ThreadConfig) Validate() error {
	if c.MinMeanSec <= 0 || c.MaxMeanSec < c.MinMeanSec {
		return fmt.Errorf("anomaly: thread mean range [%v, %v] invalid", c.MinMeanSec, c.MaxMeanSec)
	}
	return nil
}

// LeakGenerator periodically leaks memory into a machine.
type LeakGenerator struct {
	cfg     LeakConfig
	rng     *randx.Source
	meanSec float64 // drawn at startup
	total   float64
	count   int
	stop    func()
}

// NewLeakGenerator draws the inter-arrival mean and returns an inactive
// generator; call Start to attach it to a simulator.
func NewLeakGenerator(cfg LeakConfig, rng *randx.Source) (*LeakGenerator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &LeakGenerator{cfg: cfg, rng: rng}
	g.meanSec = rng.Uniform(cfg.MinMeanSec, cfg.MaxMeanSec)
	return g, nil
}

// MeanSec returns the inter-arrival mean drawn at startup.
func (g *LeakGenerator) MeanSec() float64 { return g.meanSec }

// TotalLeakedKB returns the cumulative leaked size.
func (g *LeakGenerator) TotalLeakedKB() float64 { return g.total }

// Count returns the number of leak activations so far.
func (g *LeakGenerator) Count() int { return g.count }

// Start schedules the generator on sim, leaking into m until Stop is
// called. Each activation draws the size uniformly and writes it to the
// machine ("writing data is essential": the model charges the leak to
// resident anonymous memory immediately, as the paper's dummy writes
// force physical allocation).
func (g *LeakGenerator) Start(sim *des.Simulator, m *sysmodel.Machine) {
	g.Stop()
	var schedule func()
	active := true
	var pending *des.Event
	schedule = func() {
		pending = sim.Schedule(g.rng.Exp(g.meanSec), func() {
			if !active {
				return
			}
			size := g.rng.Uniform(g.cfg.MinSizeKB, g.cfg.MaxSizeKB)
			m.Leak(size)
			g.total += size
			g.count++
			schedule()
		})
	}
	schedule()
	g.stop = func() {
		active = false
		sim.Cancel(pending)
	}
}

// Stop detaches the generator; it is safe to call when not started.
func (g *LeakGenerator) Stop() {
	if g.stop != nil {
		g.stop()
		g.stop = nil
	}
}

// ThreadGenerator periodically detaches unterminated threads.
type ThreadGenerator struct {
	cfg     ThreadConfig
	rng     *randx.Source
	meanSec float64
	count   int
	stop    func()
}

// NewThreadGenerator draws the inter-arrival mean and returns an inactive
// generator.
func NewThreadGenerator(cfg ThreadConfig, rng *randx.Source) (*ThreadGenerator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &ThreadGenerator{cfg: cfg, rng: rng}
	g.meanSec = rng.Uniform(cfg.MinMeanSec, cfg.MaxMeanSec)
	return g, nil
}

// MeanSec returns the inter-arrival mean drawn at startup.
func (g *ThreadGenerator) MeanSec() float64 { return g.meanSec }

// Count returns the number of threads spawned so far.
func (g *ThreadGenerator) Count() int { return g.count }

// Start schedules the generator on sim, spawning threads on m.
func (g *ThreadGenerator) Start(sim *des.Simulator, m *sysmodel.Machine) {
	g.Stop()
	active := true
	var pending *des.Event
	var schedule func()
	schedule = func() {
		pending = sim.Schedule(g.rng.Exp(g.meanSec), func() {
			if !active {
				return
			}
			m.SpawnThread()
			g.count++
			schedule()
		})
	}
	schedule()
	g.stop = func() {
		active = false
		sim.Cancel(pending)
	}
}

// Stop detaches the generator.
func (g *ThreadGenerator) Stop() {
	if g.stop != nil {
		g.stop()
		g.stop = nil
	}
}

// RequestInjection holds the per-request anomaly probabilities and sizes
// used by the modified TPC-W Home interaction (paper §IV-A): "whenever an
// emulated browser connects to the initial page, some memory is leaked or
// a new thread is spawned, according to the corresponding probability".
type RequestInjection struct {
	// LeakProb is the probability that a Home interaction leaks memory.
	LeakProb float64
	// LeakMinKB and LeakMaxKB bound the uniform leak size.
	LeakMinKB, LeakMaxKB float64
	// ThreadProb is the probability that a Home interaction detaches an
	// unterminated thread.
	ThreadProb float64
}

// Validate reports configuration errors.
func (r *RequestInjection) Validate() error {
	if r.LeakProb < 0 || r.LeakProb > 1 || r.ThreadProb < 0 || r.ThreadProb > 1 {
		return fmt.Errorf("anomaly: probabilities must be in [0,1]: leak=%v thread=%v", r.LeakProb, r.ThreadProb)
	}
	if r.LeakProb > 0 && (r.LeakMinKB <= 0 || r.LeakMaxKB < r.LeakMinKB) {
		return fmt.Errorf("anomaly: leak size range [%v, %v] invalid", r.LeakMinKB, r.LeakMaxKB)
	}
	return nil
}

// Apply performs the per-request injection against m, returning the
// leaked KB (0 if none) and whether a thread was spawned.
func (r *RequestInjection) Apply(rng *randx.Source, m *sysmodel.Machine) (leakedKB float64, spawned bool) {
	if r.LeakProb > 0 && rng.Bernoulli(r.LeakProb) {
		leakedKB = rng.Uniform(r.LeakMinKB, r.LeakMaxKB)
		m.Leak(leakedKB)
	}
	if r.ThreadProb > 0 && rng.Bernoulli(r.ThreadProb) {
		m.SpawnThread()
		spawned = true
	}
	return leakedKB, spawned
}

// DrawRates draws fresh injection probabilities at servlet startup, the
// way the paper's modified TPC-W generates "two different rates (for
// memory leaks and unterminated threads)" per run. The ranges bound the
// uniform draw.
func DrawRates(rng *randx.Source, leakProbLo, leakProbHi, threadProbLo, threadProbHi float64) (leakProb, threadProb float64) {
	return rng.Uniform(leakProbLo, leakProbHi), rng.Uniform(threadProbLo, threadProbHi)
}
