package monitor

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/randx"
	"repro/internal/trace"
)

// Source produces feature snapshots of the monitored system. Tgen must be
// the elapsed seconds since the monitored system (re)started.
type Source interface {
	Sample() (trace.Datapoint, error)
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func() (trace.Datapoint, error)

// Sample implements Source.
func (f SourceFunc) Sample() (trace.Datapoint, error) { return f() }

// Client is the Feature Monitor Client (FMC): it connects to an FMS and
// ships datapoints and fail events. It is safe for use by one goroutine.
type Client struct {
	conn net.Conn
	w    *bufio.Writer
	mu   sync.Mutex
}

// Dial connects to the FMS at addr and sends the hello handshake.
func Dial(addr, clientID string) (*Client, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return DialContext(ctx, addr, clientID)
}

// DialContext is Dial under a caller-supplied context: the connection
// attempt aborts when ctx is cancelled or times out.
func DialContext(ctx context.Context, addr, clientID string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("monitor: dialing FMS at %s: %w", addr, err)
	}
	c := &Client{conn: conn, w: bufio.NewWriter(conn)}
	if err := c.send(&Message{Type: TypeHello, ClientID: clientID}); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

func (c *Client) send(m *Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return writeMessage(c.w, m)
}

// SendDatapoint ships one sampled datapoint.
func (c *Client) SendDatapoint(d *trace.Datapoint) error {
	m := DatapointMessage(d)
	return c.send(&m)
}

// SendFail signals that the monitored system met the failure condition
// at elapsed time tgen; the FMS closes the current run.
func (c *Client) SendFail(tgen float64) error {
	return c.send(&Message{Type: TypeFail, Tgen: tgen})
}

// Close sends the goodbye message and closes the connection.
func (c *Client) Close() error {
	_ = c.send(&Message{Type: TypeBye}) // best effort
	return c.conn.Close()
}

// Collector drives an FMC loop in real time: it samples the source every
// interval (the paper's implementation waits ~1.5 s between datapoints),
// ships each datapoint, and, when the failure condition fires, ships the
// fail event and invokes onFail (e.g. to restart the application).
//
// With Redial set, a mid-stream send failure no longer ends the loop:
// the collector reconnects under the Retry backoff policy, re-sends the
// event whose delivery failed, and resumes the run — the FMS keeps the
// client's open run across connections (runs are keyed by client id and
// closed only by fail events), so the stream picks up where it left off
// with at most a sampling gap for the outage. Without Redial the loop
// ends on the first send failure, as before.
type Collector struct {
	Client   *Client
	Source   Source
	Interval time.Duration
	// Condition may be nil (never fails).
	Condition trace.FailCondition
	// OnFail is called after a fail event is shipped; may be nil.
	OnFail func(d *trace.Datapoint)

	// Redial, when non-nil, turns mid-stream send failures into
	// reconnect-and-resume: it must dial a fresh connection and send
	// the hello handshake (e.g. wrap DialContext with the collector's
	// address and client id). It is called once per attempt, between
	// Retry backoff delays.
	Redial func(ctx context.Context) (*Client, error)
	// Retry shapes the backoff between redial attempts (zero value =
	// defaults: 250 ms base, 15 s cap, factor 2, ±20 % jitter,
	// unlimited attempts).
	Retry Backoff
	// RetryRNG seeds the backoff jitter; nil disables jitter (use a
	// seeded randx.Source for reproducible reconnect timing).
	RetryRNG *randx.Source
	// OnReconnect observes the recovery path: called with the attempt
	// number and outcome of every redial try (err == nil for the one
	// that succeeded). Must not call back into Stop.
	OnReconnect func(attempt int, err error)

	stop chan struct{}
	done chan struct{}
}

// Start begins the sampling loop in a goroutine; the loop ends when ctx
// is cancelled or Stop is called. Each datapoint is shipped (and
// flushed to the socket) as soon as it is sampled, so stopping never
// drops collected data. Sampling errors are counted but do not stop
// the loop (a transient /proc read failure must not kill a week-long
// collection).
func (c *Collector) Start(ctx context.Context) error {
	if c.Client == nil || c.Source == nil {
		return fmt.Errorf("monitor: collector needs a client and a source")
	}
	if c.Interval <= 0 {
		return fmt.Errorf("monitor: collector interval must be positive, got %v", c.Interval)
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	go c.loop(ctx)
	return nil
}

func (c *Collector) loop(ctx context.Context) {
	defer close(c.done)
	ticker := time.NewTicker(c.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-c.stop:
			return
		case <-ticker.C:
			d, err := c.Source.Sample()
			if err != nil {
				continue
			}
			if !c.ship(ctx, func() error { return c.Client.SendDatapoint(&d) }) {
				return // connection gone and no (successful) redial
			}
			if c.Condition != nil && c.Condition(&d) {
				if !c.ship(ctx, func() error { return c.Client.SendFail(d.Tgen) }) {
					return
				}
				if c.OnFail != nil {
					c.OnFail(&d)
				}
			}
		}
	}
}

// ship sends one event, reconnecting on failure when Redial is set: the
// old connection is torn down, redial attempts run under the Retry
// backoff until one succeeds (re-sending the event that failed, so the
// seam loses nothing that was sampled) or the loop is stopped. Reports
// whether the event was handed to a connection.
func (c *Collector) ship(ctx context.Context, send func() error) bool {
	err := send()
	if err == nil {
		return true
	}
	if c.Redial == nil {
		return false
	}
	for attempt := 1; ; attempt++ {
		if c.Retry.MaxAttempts > 0 && attempt > c.Retry.MaxAttempts {
			return false
		}
		if ctx.Err() != nil || c.stopped() {
			return false
		}
		if !c.Retry.sleep(ctx, attempt, c.RetryRNG) {
			return false
		}
		if c.stopped() {
			return false
		}
		cli, err := c.Redial(ctx)
		if c.OnReconnect != nil {
			c.OnReconnect(attempt, err)
		}
		if err != nil {
			continue
		}
		c.Client.conn.Close() // tear down the dead connection
		c.Client = cli
		if err := send(); err == nil {
			return true
		}
		// The fresh connection died inside the resend window — keep
		// backing off and try again.
	}
}

// stopped reports whether Stop has been called.
func (c *Collector) stopped() bool {
	select {
	case <-c.stop:
		return true
	default:
		return false
	}
}

// Stop halts the loop and waits for it to finish.
func (c *Collector) Stop() {
	if c.stop == nil {
		return
	}
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	<-c.done
}
