// Package monitor implements the paper's feature-monitoring utilities
// (§III-E): the Feature Monitor Client (FMC), a thin client that
// periodically samples system features and generates datapoints, and the
// Feature Monitor Server (FMS), which receives datapoints over standard
// TCP/IP sockets and assembles the data history. FMC and FMS can run on
// the same machine or on different machines, exactly as the paper's
// deployment allows.
//
// Feature sources are pluggable: a /proc-based source samples a real
// Linux host, and a simulator-backed source samples a sysmodel.Machine.
package monitor

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/trace"
)

// Message is the FMC→FMS wire unit, one JSON object per line.
type Message struct {
	// Type is "hello", "datapoint", "fail", or "bye".
	Type string `json:"type"`
	// ClientID identifies the monitored system (hello only).
	ClientID string `json:"client_id,omitempty"`
	// Tgen is the elapsed time since the monitored system started
	// (datapoint and fail).
	Tgen float64 `json:"tgen,omitempty"`
	// Features holds the sampled values in trace feature order
	// (datapoint only).
	Features []float64 `json:"features,omitempty"`
}

// Message types.
const (
	TypeHello     = "hello"
	TypeDatapoint = "datapoint"
	TypeFail      = "fail"
	TypeBye       = "bye"
)

// Validate checks structural invariants.
func (m *Message) Validate() error {
	switch m.Type {
	case TypeHello:
		if m.ClientID == "" {
			return fmt.Errorf("monitor: hello without client id")
		}
	case TypeDatapoint:
		if len(m.Features) != trace.NumFeatures {
			return fmt.Errorf("monitor: datapoint with %d features, want %d", len(m.Features), trace.NumFeatures)
		}
		if m.Tgen < 0 {
			return fmt.Errorf("monitor: datapoint with negative tgen %v", m.Tgen)
		}
	case TypeFail:
		if m.Tgen < 0 {
			return fmt.Errorf("monitor: fail with negative tgen %v", m.Tgen)
		}
	case TypeBye:
	default:
		return fmt.Errorf("monitor: unknown message type %q", m.Type)
	}
	return nil
}

// Datapoint converts a datapoint message to a trace.Datapoint.
func (m *Message) Datapoint() (trace.Datapoint, error) {
	var d trace.Datapoint
	if m.Type != TypeDatapoint {
		return d, fmt.Errorf("monitor: message type %q is not a datapoint", m.Type)
	}
	if err := m.Validate(); err != nil {
		return d, err
	}
	d.Tgen = m.Tgen
	copy(d.Features[:], m.Features)
	return d, d.Validate()
}

// DatapointMessage builds the wire form of a datapoint.
func DatapointMessage(d *trace.Datapoint) Message {
	return Message{
		Type:     TypeDatapoint,
		Tgen:     d.Tgen,
		Features: append([]float64(nil), d.Features[:]...),
	}
}

// writeMessage encodes one message as a JSON line.
func writeMessage(w *bufio.Writer, m *Message) error {
	if err := m.Validate(); err != nil {
		return err
	}
	enc, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("monitor: encoding message: %w", err)
	}
	if _, err := w.Write(enc); err != nil {
		return err
	}
	if err := w.WriteByte('\n'); err != nil {
		return err
	}
	return w.Flush()
}

// readMessage decodes one JSON line; io.EOF signals a clean end.
func readMessage(r *bufio.Reader) (*Message, error) {
	line, err := r.ReadBytes('\n')
	if err != nil {
		if err == io.EOF && len(line) == 0 {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("monitor: reading message: %w", err)
	}
	var m Message
	if err := json.Unmarshal(line, &m); err != nil {
		return nil, fmt.Errorf("monitor: decoding message: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
