package monitor

import (
	"testing"
	"time"
)

func TestBackoffStateSchedule(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 1 * time.Second, Factor: 2, Jitter: -1}
	s := BackoffState{Backoff: b, HealthyReset: 10 * time.Second}
	now := time.Unix(1000, 0)

	// Consecutive failures walk the capped exponential.
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 1 * time.Second, 1 * time.Second,
	}
	for i, w := range want {
		if d := s.Failure(now, nil); d != w {
			t.Fatalf("failure %d: delay %v, want %v", i+1, d, w)
		}
		now = now.Add(time.Second)
	}
	if s.Attempt() != len(want) {
		t.Fatalf("attempt = %d, want %d", s.Attempt(), len(want))
	}
}

func TestBackoffStateBlipKeepsPosition(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 10 * time.Second, Factor: 2, Jitter: -1}
	s := BackoffState{Backoff: b, HealthyReset: 10 * time.Second}
	now := time.Unix(1000, 0)

	for i := 0; i < 5; i++ {
		s.Failure(now, nil)
		now = now.Add(time.Second)
	}
	// A brief recovery — shorter than HealthyReset — must not rewind:
	// the next outage continues the escalated schedule.
	s.Success(now)
	now = now.Add(2 * time.Second)
	s.Success(now)
	now = now.Add(2 * time.Second)
	if got := s.Failure(now, nil); got != 3200*time.Millisecond {
		t.Fatalf("delay after blip = %v, want the schedule to continue at 3.2s", got)
	}
}

func TestBackoffStateSustainedHealthRewinds(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 10 * time.Second, Factor: 2, Jitter: -1}
	s := BackoffState{Backoff: b, HealthyReset: 10 * time.Second}
	now := time.Unix(1000, 0)

	for i := 0; i < 6; i++ {
		s.Failure(now, nil)
		now = now.Add(time.Second)
	}
	// Health observed, then the streak lasts past HealthyReset: the
	// next outage must start back at the base delay instead of
	// inheriting the capped one.
	s.Success(now)
	now = now.Add(11 * time.Second)
	if got := s.Failure(now, nil); got != 100*time.Millisecond {
		t.Fatalf("delay after sustained health = %v, want base 100ms", got)
	}
	if s.Attempt() != 1 {
		t.Fatalf("attempt = %d, want 1 (fresh outage)", s.Attempt())
	}
}

func TestBackoffStateRewindNeedsElapsedStreak(t *testing.T) {
	// The rewind is judged by elapsed streak time, not by how many
	// Success observations arrived: a single success followed by a long
	// quiet healthy stretch forgives on the next interaction.
	b := Backoff{Base: 100 * time.Millisecond, Max: 10 * time.Second, Factor: 2, Jitter: -1}
	s := BackoffState{Backoff: b, HealthyReset: 10 * time.Second}
	now := time.Unix(1000, 0)
	s.Failure(now, nil)
	s.Failure(now, nil)
	s.Success(now)
	// Success again after the streak has lasted long enough: position
	// clears even without an intervening failure.
	now = now.Add(10 * time.Second)
	s.Success(now)
	if s.Attempt() != 0 {
		t.Fatalf("attempt = %d after sustained health, want 0", s.Attempt())
	}
}

func TestBackoffStateDefaults(t *testing.T) {
	// Zero value: monitor defaults (250 ms base) and the 1 min
	// HealthyReset.
	var s BackoffState
	now := time.Unix(1000, 0)
	if got := s.Failure(now, nil); got != 250*time.Millisecond {
		t.Fatalf("zero-value first delay = %v, want 250ms", got)
	}
	s.Success(now.Add(time.Second))
	if got := s.Failure(now.Add(30*time.Second), nil); got != 500*time.Millisecond {
		t.Fatalf("delay after 29s healthy = %v, want 500ms (not yet forgiven)", got)
	}
	s.Success(now.Add(31 * time.Second))
	if got := s.Failure(now.Add(92*time.Second), nil); got != 250*time.Millisecond {
		t.Fatalf("delay after 61s healthy = %v, want base 250ms", got)
	}
}
