package monitor

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/trace"
)

// Server is the Feature Monitor Server (FMS). It accepts any number of
// FMC connections; each client's stream of datapoint/fail messages is
// assembled into a per-client trace.History (a fail message closes the
// current run and opens the next one).
type Server struct {
	listener net.Listener

	mu        sync.Mutex
	histories map[string]*trace.History
	open      map[string]*trace.Run // current (unfinished) run per client
	clients   int
	closed    bool
	wg        sync.WaitGroup
}

// NewServer starts an FMS listening on addr (e.g. "127.0.0.1:0").
func NewServer(addr string) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("monitor: listening on %s: %w", addr, err)
	}
	s := &Server{
		listener:  l,
		histories: make(map[string]*trace.History),
		open:      make(map[string]*trace.Run),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address (useful with port 0).
func (s *Server) Addr() string { return s.listener.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.clients++
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// handle consumes one client connection until EOF or error.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)

	hello, err := readMessage(r)
	if err != nil || hello.Type != TypeHello {
		return // malformed client; drop silently
	}
	id := hello.ClientID

	for {
		m, err := readMessage(r)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				// Malformed mid-stream data: stop reading this client
				// but keep what was already collected.
				return
			}
			return
		}
		switch m.Type {
		case TypeDatapoint:
			d, err := m.Datapoint()
			if err != nil {
				return
			}
			s.mu.Lock()
			run := s.openRun(id)
			// Enforce monotone Tgen within the run; drop stragglers.
			if n := len(run.Datapoints); n == 0 || d.Tgen >= run.Datapoints[n-1].Tgen {
				run.Datapoints = append(run.Datapoints, d)
			}
			s.mu.Unlock()
		case TypeFail:
			s.mu.Lock()
			run := s.openRun(id)
			run.Failed = true
			run.FailTime = m.Tgen
			if n := len(run.Datapoints); n > 0 && run.FailTime < run.Datapoints[n-1].Tgen {
				run.FailTime = run.Datapoints[n-1].Tgen
			}
			s.histories[id].Runs = append(s.histories[id].Runs, *run)
			delete(s.open, id)
			s.mu.Unlock()
		case TypeBye:
			return
		}
	}
}

// openRun returns the client's current run, creating it (and the
// history) on first use. Caller holds s.mu.
func (s *Server) openRun(id string) *trace.Run {
	if _, ok := s.histories[id]; !ok {
		s.histories[id] = &trace.History{}
	}
	run, ok := s.open[id]
	if !ok {
		run = &trace.Run{}
		s.open[id] = run
	}
	return run
}

// History returns a deep copy of the named client's history. Any
// unfinished run is included as a truncated (unfailed) run.
func (s *Server) History(clientID string) (*trace.History, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.histories[clientID]
	if !ok {
		return nil, false
	}
	out := &trace.History{Runs: append([]trace.Run(nil), h.Runs...)}
	if run, ok := s.open[clientID]; ok && len(run.Datapoints) > 0 {
		cp := trace.Run{Datapoints: append([]trace.Datapoint(nil), run.Datapoints...)}
		out.Runs = append(out.Runs, cp)
	}
	return out, true
}

// Clients returns the ids of all clients seen so far.
func (s *Server) Clients() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.histories))
	for id := range s.histories {
		out = append(out, id)
	}
	return out
}

// Close stops accepting and waits for handler goroutines to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.listener.Close()
	s.wg.Wait()
	return err
}
