package monitor

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/trace"
)

// StreamHandler receives the live FMC event stream as the server
// assembles it: one call per accepted datapoint and per fail event.
// Calls for one client are made sequentially from that client's
// connection goroutine (per-client order is the wire order); calls for
// different clients are concurrent. Handlers must not call back into
// the server's Close. This is the hook that feeds a serving-side
// prediction service directly from the monitor — monitor → aggregate →
// predict → act in one process, no CSV round-trip.
type StreamHandler interface {
	// HandleDatapoint is called for every datapoint recorded into the
	// client's history.
	HandleDatapoint(clientID string, d trace.Datapoint)
	// HandleFail is called when the client reports the failure
	// condition at elapsed time tgen, closing its current run.
	HandleFail(clientID string, tgen float64)
}

// ServerOption configures an FMS.
type ServerOption func(*serverConfig)

type serverConfig struct {
	stream StreamHandler
	ctx    context.Context
}

// WithStream attaches a live event handler to the server.
func WithStream(h StreamHandler) ServerOption {
	return func(c *serverConfig) { c.stream = h }
}

// WithServerContext ties the server lifetime to ctx: when ctx is
// cancelled the server closes (stops accepting, drains handlers)
// exactly as an explicit Close would.
func WithServerContext(ctx context.Context) ServerOption {
	return func(c *serverConfig) { c.ctx = ctx }
}

// Server is the Feature Monitor Server (FMS). It accepts any number of
// FMC connections; each client's stream of datapoint/fail messages is
// assembled into a per-client trace.History (a fail message closes the
// current run and opens the next one).
type Server struct {
	listener net.Listener
	stream   StreamHandler
	stop     chan struct{} // closed by Close

	mu        sync.Mutex
	histories map[string]*trace.History
	open      map[string]*trace.Run // current (unfinished) run per client
	clients   int
	closed    bool
	wg        sync.WaitGroup
}

// NewServer starts an FMS listening on addr (e.g. "127.0.0.1:0").
func NewServer(addr string, opts ...ServerOption) (*Server, error) {
	var cfg serverConfig
	for _, o := range opts {
		o(&cfg)
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("monitor: listening on %s: %w", addr, err)
	}
	s := &Server{
		listener:  l,
		stream:    cfg.stream,
		stop:      make(chan struct{}),
		histories: make(map[string]*trace.History),
		open:      make(map[string]*trace.Run),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	if cfg.ctx != nil {
		ctx := cfg.ctx
		go func() {
			select {
			case <-ctx.Done():
				s.Close()
			case <-s.stop:
			}
		}()
	}
	return s, nil
}

// Addr returns the listening address (useful with port 0).
func (s *Server) Addr() string { return s.listener.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.clients++
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// handle consumes one client connection until EOF, error, or Close.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	// Unblock the blocking read when the server closes, so Close never
	// waits on an idle connection.
	stopDone := make(chan struct{})
	defer close(stopDone)
	go func() {
		select {
		case <-s.stop:
			conn.Close()
		case <-stopDone:
		}
	}()
	r := bufio.NewReader(conn)

	hello, err := readMessage(r)
	if err != nil || hello.Type != TypeHello {
		return // malformed client; drop silently
	}
	id := hello.ClientID

	for {
		m, err := readMessage(r)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				// Malformed mid-stream data: stop reading this client
				// but keep what was already collected.
				return
			}
			return
		}
		switch m.Type {
		case TypeDatapoint:
			d, err := m.Datapoint()
			if err != nil {
				return
			}
			accepted := false
			s.mu.Lock()
			run := s.openRun(id)
			// Enforce monotone Tgen within the run; drop stragglers.
			if n := len(run.Datapoints); n == 0 || d.Tgen >= run.Datapoints[n-1].Tgen {
				run.Datapoints = append(run.Datapoints, d)
				accepted = true
			}
			s.mu.Unlock()
			if accepted && s.stream != nil {
				s.stream.HandleDatapoint(id, d)
			}
		case TypeFail:
			s.mu.Lock()
			run := s.openRun(id)
			run.Failed = true
			run.FailTime = m.Tgen
			if n := len(run.Datapoints); n > 0 && run.FailTime < run.Datapoints[n-1].Tgen {
				run.FailTime = run.Datapoints[n-1].Tgen
			}
			failTime := run.FailTime
			s.histories[id].Runs = append(s.histories[id].Runs, *run)
			delete(s.open, id)
			s.mu.Unlock()
			if s.stream != nil {
				s.stream.HandleFail(id, failTime)
			}
		case TypeBye:
			return
		}
	}
}

// openRun returns the client's current run, creating it (and the
// history) on first use. Caller holds s.mu.
func (s *Server) openRun(id string) *trace.Run {
	if _, ok := s.histories[id]; !ok {
		s.histories[id] = &trace.History{}
	}
	run, ok := s.open[id]
	if !ok {
		run = &trace.Run{}
		s.open[id] = run
	}
	return run
}

// History returns a deep copy of the named client's history. Any
// unfinished run is included as a truncated (unfailed) run.
func (s *Server) History(clientID string) (*trace.History, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.histories[clientID]
	if !ok {
		return nil, false
	}
	out := &trace.History{Runs: append([]trace.Run(nil), h.Runs...)}
	if run, ok := s.open[clientID]; ok && len(run.Datapoints) > 0 {
		cp := trace.Run{Datapoints: append([]trace.Datapoint(nil), run.Datapoints...)}
		out.Runs = append(out.Runs, cp)
	}
	return out, true
}

// Clients returns the ids of all clients seen so far.
func (s *Server) Clients() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.histories))
	for id := range s.histories {
		out = append(out, id)
	}
	return out
}

// Close stops accepting and waits for handler goroutines to finish.
// Every caller waits for the drain, even when racing another Close
// (e.g. the WithServerContext watcher): a returned Close means no
// handler is still delivering datapoints.
func (s *Server) Close() error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	var err error
	if !already {
		close(s.stop)
		err = s.listener.Close()
	}
	s.wg.Wait()
	return err
}
