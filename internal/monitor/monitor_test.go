package monitor

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"math"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

func sampleDatapoint(tgen float64) trace.Datapoint {
	var d trace.Datapoint
	d.Tgen = tgen
	d.Features[trace.MemFree] = 1e6
	d.Features[trace.CPUIdle] = 90
	d.Features[trace.NumThreads] = 200
	return d
}

func TestMessageRoundTrip(t *testing.T) {
	d := sampleDatapoint(1.5)
	m := DatapointMessage(&d)
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := writeMessage(w, &m); err != nil {
		t.Fatal(err)
	}
	got, err := readMessage(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := got.Datapoint()
	if err != nil {
		t.Fatal(err)
	}
	if d2 != d {
		t.Fatalf("round trip mismatch: %+v vs %+v", d2, d)
	}
}

func TestMessageValidate(t *testing.T) {
	bad := []Message{
		{Type: "bogus"},
		{Type: TypeHello},
		{Type: TypeDatapoint, Features: []float64{1, 2}},
		{Type: TypeDatapoint, Tgen: -1, Features: make([]float64, trace.NumFeatures)},
		{Type: TypeFail, Tgen: -2},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := (&Message{Type: TypeBye}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDatapointFromWrongType(t *testing.T) {
	m := Message{Type: TypeFail, Tgen: 1}
	if _, err := m.Datapoint(); err == nil {
		t.Fatal("fail message converted to datapoint")
	}
}

func TestReadMessageMalformed(t *testing.T) {
	if _, err := readMessage(bufio.NewReader(strings.NewReader("{not json}\n"))); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := readMessage(bufio.NewReader(strings.NewReader(""))); err != io.EOF {
		t.Fatal("empty stream should be EOF")
	}
}

func TestClientServerEndToEnd(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial(srv.Addr(), "vm-1")
	if err != nil {
		t.Fatal(err)
	}

	// Run 1: three datapoints then a fail.
	for i := 0; i < 3; i++ {
		d := sampleDatapoint(float64(i) * 1.5)
		if err := cli.SendDatapoint(&d); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.SendFail(4.5); err != nil {
		t.Fatal(err)
	}
	// Run 2: two datapoints, left open.
	for i := 0; i < 2; i++ {
		d := sampleDatapoint(float64(i) * 1.5)
		if err := cli.SendDatapoint(&d); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}

	// Wait until the server has digested everything.
	deadline := time.Now().Add(5 * time.Second)
	var h *trace.History
	for time.Now().Before(deadline) {
		got, ok := srv.History("vm-1")
		if ok && len(got.Runs) == 2 {
			h = got
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if h == nil {
		t.Fatal("server never assembled 2 runs")
	}
	if !h.Runs[0].Failed || h.Runs[0].FailTime != 4.5 || len(h.Runs[0].Datapoints) != 3 {
		t.Fatalf("run 0 wrong: %+v", h.Runs[0])
	}
	if h.Runs[1].Failed || len(h.Runs[1].Datapoints) != 2 {
		t.Fatalf("run 1 wrong: failed=%v n=%d", h.Runs[1].Failed, len(h.Runs[1].Datapoints))
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	clients := srv.Clients()
	if len(clients) != 1 || clients[0] != "vm-1" {
		t.Fatalf("clients = %v", clients)
	}
	if _, ok := srv.History("ghost"); ok {
		t.Fatal("unknown client has a history")
	}
}

func TestServerMultipleClients(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for _, id := range []string{"a", "b"} {
		cli, err := Dial(srv.Addr(), id)
		if err != nil {
			t.Fatal(err)
		}
		d := sampleDatapoint(1)
		if err := cli.SendDatapoint(&d); err != nil {
			t.Fatal(err)
		}
		if err := cli.SendFail(2); err != nil {
			t.Fatal(err)
		}
		cli.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(srv.Clients()) == 2 {
			ha, _ := srv.History("a")
			hb, _ := srv.History("b")
			if ha != nil && hb != nil && len(ha.Runs) == 1 && len(hb.Runs) == 1 {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("server did not assemble both clients")
}

func TestCollectorLoop(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr(), "coll")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	samples := 0
	failAt := 5
	src := SourceFunc(func() (trace.Datapoint, error) {
		samples++
		d := sampleDatapoint(float64(samples))
		if samples >= failAt {
			d.Features[trace.MemFree] = 0 // trip the condition
		}
		return d, nil
	})
	failed := make(chan struct{}, 1)
	coll := &Collector{
		Client:    cli,
		Source:    src,
		Interval:  2 * time.Millisecond,
		Condition: trace.ThresholdCondition(trace.MemFree, 1, -1),
		OnFail: func(d *trace.Datapoint) {
			select {
			case failed <- struct{}{}:
			default:
			}
		},
	}
	if err := coll.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-failed:
	case <-time.After(5 * time.Second):
		t.Fatal("collector never hit the fail condition")
	}
	coll.Stop()
	coll.Stop() // idempotent

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		h, ok := srv.History("coll")
		if ok && len(h.FailedRuns()) >= 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("server did not record the failed run")
}

func TestCollectorStartValidation(t *testing.T) {
	c := &Collector{}
	if err := c.Start(context.Background()); err == nil {
		t.Fatal("empty collector started")
	}
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr(), "x")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	c = &Collector{Client: cli, Source: SourceFunc(func() (trace.Datapoint, error) { return sampleDatapoint(1), nil })}
	if err := c.Start(context.Background()); err == nil {
		t.Fatal("zero interval accepted")
	}
}

const meminfoFixture = `MemTotal:        2048000 kB
MemFree:          512000 kB
Buffers:           64000 kB
Cached:           384000 kB
Shmem:             48000 kB
SwapTotal:       1024000 kB
SwapFree:         896000 kB
`

const statFixtureA = `cpu  1000 50 300 8000 200 10 20 30
cpu0 500 25 150 4000 100 5 10 15
`

const statFixtureB = `cpu  1400 70 420 8600 360 20 40 50
cpu0 700 35 210 4300 180 10 20 25
`

const loadavgFixture = "0.52 0.58 0.59 3/1234 5678\n"

func writeProcFixture(t *testing.T, dir, stat string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, "meminfo"), []byte(meminfoFixture), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "stat"), []byte(stat), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "loadavg"), []byte(loadavgFixture), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestProcSourceFixtures(t *testing.T) {
	dir := t.TempDir()
	writeProcFixture(t, dir, statFixtureA)
	src := NewProcSource(dir)
	now := time.Now()
	src.start = now
	src.now = func() time.Time { return now.Add(3 * time.Second) }

	d1, err := src.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if d1.Features[trace.MemFree] != 512000 {
		t.Fatalf("MemFree = %v", d1.Features[trace.MemFree])
	}
	if got := d1.Features[trace.MemUsed]; got != 2048000-512000-64000-384000 {
		t.Fatalf("MemUsed = %v", got)
	}
	if d1.Features[trace.SwapUsed] != 128000 || d1.Features[trace.SwapFree] != 896000 {
		t.Fatal("swap fields wrong")
	}
	if d1.Features[trace.MemShared] != 48000 {
		t.Fatal("Shmem wrong")
	}
	if d1.Features[trace.NumThreads] != 1234 {
		t.Fatalf("threads = %v", d1.Features[trace.NumThreads])
	}
	// First sample has no CPU window: idle 100.
	if d1.Features[trace.CPUIdle] != 100 {
		t.Fatalf("first-sample idle = %v", d1.Features[trace.CPUIdle])
	}
	if d1.Tgen != 3 {
		t.Fatalf("Tgen = %v", d1.Tgen)
	}

	// Second sample: jiffy deltas → user 400, nice 20, sys 120+10+20=150,
	// idle 600, iowait 160, steal 20; total delta = 1380... compute:
	writeProcFixture(t, dir, statFixtureB)
	d2, err := src.Sample()
	if err != nil {
		t.Fatal(err)
	}
	totalDelta := (1400 - 1000) + (70 - 50) + (420 - 300) + (8600 - 8000) + (360 - 200) + (20 - 10) + (40 - 20) + (50 - 30)
	wantUser := 100 * 400 / float64(totalDelta)
	if math.Abs(d2.Features[trace.CPUUser]-wantUser) > 1e-9 {
		t.Fatalf("CPUUser = %v, want %v", d2.Features[trace.CPUUser], wantUser)
	}
	wantSys := 100 * float64(120+10+20) / float64(totalDelta)
	if math.Abs(d2.Features[trace.CPUSystem]-wantSys) > 1e-9 {
		t.Fatalf("CPUSystem = %v, want %v", d2.Features[trace.CPUSystem], wantSys)
	}
	wantSteal := 100 * 20 / float64(totalDelta)
	if math.Abs(d2.Features[trace.CPUSteal]-wantSteal) > 1e-9 {
		t.Fatalf("CPUSteal = %v", d2.Features[trace.CPUSteal])
	}
	// Shares sum to 100.
	var sum float64
	for _, f := range []trace.FeatureIndex{trace.CPUUser, trace.CPUNice, trace.CPUSystem, trace.CPUIOWait, trace.CPUSteal, trace.CPUIdle} {
		sum += d2.Features[f]
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Fatalf("CPU shares sum to %v", sum)
	}
}

func TestProcSourceErrors(t *testing.T) {
	// Missing directory.
	src := NewProcSource(filepath.Join(t.TempDir(), "nope"))
	if _, err := src.Sample(); err == nil {
		t.Fatal("missing procfs accepted")
	}
	// Malformed meminfo.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "meminfo"), []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "stat"), []byte(statFixtureA), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "loadavg"), []byte(loadavgFixture), 0o644); err != nil {
		t.Fatal(err)
	}
	src = NewProcSource(dir)
	if _, err := src.Sample(); err == nil {
		t.Fatal("malformed meminfo accepted")
	}
}

func TestParseStatCPUErrors(t *testing.T) {
	if _, err := parseStatCPU("intr 12345\n"); err == nil {
		t.Fatal("missing cpu line accepted")
	}
	if _, err := parseStatCPU("cpu  1 2\n"); err == nil {
		t.Fatal("short cpu line accepted")
	}
	if _, err := parseStatCPU("cpu  a b c d e f g h\n"); err == nil {
		t.Fatal("non-numeric cpu line accepted")
	}
}

func TestParseLoadavgErrors(t *testing.T) {
	if _, err := parseLoadavgThreads("0.1 0.2"); err == nil {
		t.Fatal("short loadavg accepted")
	}
	if _, err := parseLoadavgThreads("0.1 0.2 0.3 17 999"); err == nil {
		t.Fatal("missing slash accepted")
	}
	if _, err := parseLoadavgThreads("0.1 0.2 0.3 3/abc 999"); err == nil {
		t.Fatal("non-numeric total accepted")
	}
}

func TestProcSourceLive(t *testing.T) {
	// Best-effort smoke test on the real /proc when present.
	if _, err := os.Stat("/proc/meminfo"); err != nil {
		t.Skip("no /proc on this platform")
	}
	src := NewProcSource("")
	d, err := src.Sample()
	if err != nil {
		t.Fatalf("live /proc sample failed: %v", err)
	}
	if d.Features[trace.MemFree] <= 0 {
		t.Fatal("live MemFree not positive")
	}
}

func TestServerKeepsDataBeforeMalformedStream(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Speak the protocol by hand so we can inject garbage mid-stream.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	w := bufio.NewWriter(conn)
	hello := Message{Type: TypeHello, ClientID: "mal"}
	if err := writeMessage(w, &hello); err != nil {
		t.Fatal(err)
	}
	d := sampleDatapoint(1)
	dp := DatapointMessage(&d)
	if err := writeMessage(w, &dp); err != nil {
		t.Fatal(err)
	}
	fail := Message{Type: TypeFail, Tgen: 2}
	if err := writeMessage(w, &fail); err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteString("this is not json\n"); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// The server must keep the completed run despite the garbage.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		h, ok := srv.History("mal")
		if ok && len(h.FailedRuns()) == 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("completed run lost after malformed stream")
}

func TestServerIgnoresOutOfOrderDatapoints(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr(), "ooo")
	if err != nil {
		t.Fatal(err)
	}
	for _, tg := range []float64{1, 5, 3, 7} { // 3 is a straggler
		d := sampleDatapoint(tg)
		if err := cli.SendDatapoint(&d); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.SendFail(8); err != nil {
		t.Fatal(err)
	}
	cli.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		h, ok := srv.History("ooo")
		if ok && len(h.Runs) == 1 {
			if got := len(h.Runs[0].Datapoints); got != 3 {
				t.Fatalf("kept %d datapoints, want 3 (straggler dropped)", got)
			}
			if err := h.Validate(); err != nil {
				t.Fatal(err)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("run never assembled")
}

// recordingStream collects StreamHandler callbacks.
type recordingStream struct {
	mu    sync.Mutex
	dps   map[string][]trace.Datapoint
	fails map[string][]float64
}

func newRecordingStream() *recordingStream {
	return &recordingStream{dps: map[string][]trace.Datapoint{}, fails: map[string][]float64{}}
}

func (r *recordingStream) HandleDatapoint(id string, d trace.Datapoint) {
	r.mu.Lock()
	r.dps[id] = append(r.dps[id], d)
	r.mu.Unlock()
}

func (r *recordingStream) HandleFail(id string, tgen float64) {
	r.mu.Lock()
	r.fails[id] = append(r.fails[id], tgen)
	r.mu.Unlock()
}

// TestServerStreamHandler pins the live hook: every accepted datapoint
// and fail event reaches the handler in wire order, and dropped
// (out-of-order) datapoints do not.
func TestServerStreamHandler(t *testing.T) {
	rec := newRecordingStream()
	srv, err := NewServer("127.0.0.1:0", WithStream(rec))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial(srv.Addr(), "vm-s")
	if err != nil {
		t.Fatal(err)
	}
	for _, tg := range []float64{0, 1.5, 3, 1 /* out of order: dropped */, 4.5} {
		d := sampleDatapoint(tg)
		if err := cli.SendDatapoint(&d); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.SendFail(4.5); err != nil {
		t.Fatal(err)
	}
	cli.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		rec.mu.Lock()
		nd, nf := len(rec.dps["vm-s"]), len(rec.fails["vm-s"])
		rec.mu.Unlock()
		if nd == 4 && nf == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream saw %d datapoints / %d fails, want 4 / 1", nd, nf)
		}
		time.Sleep(2 * time.Millisecond)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	want := []float64{0, 1.5, 3, 4.5}
	for i, d := range rec.dps["vm-s"] {
		if d.Tgen != want[i] {
			t.Fatalf("datapoint %d has Tgen %v, want %v (wire order broken)", i, d.Tgen, want[i])
		}
	}
	if rec.fails["vm-s"][0] != 4.5 {
		t.Fatalf("fail tgen %v", rec.fails["vm-s"][0])
	}
}

// TestServerContextClose pins WithServerContext: cancelling the context
// closes the server — even with a client connection still open — and
// new dials are refused.
func TestServerContextClose(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	srv, err := NewServer("127.0.0.1:0", WithServerContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(srv.Addr(), "idle")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	d := sampleDatapoint(1)
	if err := cli.SendDatapoint(&d); err != nil {
		t.Fatal(err)
	}
	cancel()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := Dial(srv.Addr(), "late"); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server still accepting after context cancellation")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Close after context shutdown is a clean no-op.
	if err := srv.Close(); err != nil && !strings.Contains(err.Error(), "use of closed") {
		t.Fatalf("close after cancel: %v", err)
	}
}
