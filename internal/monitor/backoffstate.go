package monitor

import (
	"time"

	"repro/internal/randx"
)

// defaultHealthyReset is the sustained-healthy period after which a
// BackoffState forgives its schedule position.
const defaultHealthyReset = time.Minute

// BackoffState is the stateful companion of Backoff for long-lived
// components that alternate between outages and health: it tracks the
// schedule position across Failure/Success observations and rewinds to
// the base delay only after a *sustained* healthy period. The two
// stateless extremes both fail a real deployment: resetting on any
// success lets a flapping upstream be re-hammered at the base delay on
// every blip, while never resetting makes an outage that starts a day
// after the last one inherit the previous outage's capped delay. The
// middle ground here: a success starts a healthy streak, and only once
// the streak has lasted HealthyReset does the schedule rewind.
//
// The zero value is usable (Backoff and HealthyReset defaults apply).
// Not safe for concurrent use; callers hold their own lock.
type BackoffState struct {
	// Backoff is the delay policy the schedule walks.
	Backoff Backoff
	// HealthyReset is how long the upstream must stay healthy before
	// the schedule rewinds to the base delay (default 1 min). A blip
	// shorter than this keeps the schedule position, so a flapping
	// upstream cannot reset its own backoff by briefly succeeding.
	HealthyReset time.Duration

	attempt      int
	healthySince time.Time
}

// Failure records a failed attempt at now, advances the schedule, and
// returns the delay to wait before the next attempt (jittered from rng;
// nil means none). A healthy streak that already lasted HealthyReset is
// settled first, so the first failure of a genuinely new outage starts
// back at the base delay.
func (s *BackoffState) Failure(now time.Time, rng *randx.Source) time.Duration {
	s.settle(now)
	s.healthySince = time.Time{}
	s.attempt++
	return s.Backoff.Delay(s.attempt, rng)
}

// Success records a healthy observation at now, starting (or
// continuing) the healthy streak. The schedule position is kept until
// the streak has lasted HealthyReset.
func (s *BackoffState) Success(now time.Time) {
	if s.healthySince.IsZero() {
		s.healthySince = now
	}
	s.settle(now)
}

// Attempt returns the current schedule position: the consecutive
// failures not yet forgiven (0 after sustained health or before any
// failure).
func (s *BackoffState) Attempt() int { return s.attempt }

// settle rewinds the schedule when the current healthy streak has
// lasted HealthyReset.
func (s *BackoffState) settle(now time.Time) {
	if s.attempt == 0 || s.healthySince.IsZero() {
		return
	}
	hr := s.HealthyReset
	if hr <= 0 {
		hr = defaultHealthyReset
	}
	if now.Sub(s.healthySince) >= hr {
		s.attempt = 0
	}
}
