package monitor

import (
	"bufio"
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/randx"
	"repro/internal/trace"
)

// TestBackoffDelayShape pins the policy arithmetic: exponential growth
// from Base by Factor, capped at Max, deterministic without an rng, and
// jitter bounded by the configured fraction.
func TestBackoffDelayShape(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: -1}
	want := []time.Duration{100, 200, 400, 800, 1000, 1000}
	for i, w := range want {
		if got := b.Delay(i+1, nil); got != w*time.Millisecond {
			t.Fatalf("Delay(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	// Jitter stays within ±20 % and is reproducible under a seed.
	j := Backoff{Base: 100 * time.Millisecond, Max: time.Second}
	r1, r2 := randx.New(7), randx.New(7)
	for i := 1; i <= 6; i++ {
		d1, d2 := j.Delay(i, r1), j.Delay(i, r2)
		if d1 != d2 {
			t.Fatalf("jittered Delay(%d) not reproducible under the same seed: %v vs %v", i, d1, d2)
		}
		base := j.withDefaults().Delay(i, nil)
		lo := time.Duration(float64(base) * 0.79)
		hi := time.Duration(float64(base) * 1.21)
		if d1 < lo || d1 > hi {
			t.Fatalf("jittered Delay(%d) = %v outside [%v, %v]", i, d1, lo, hi)
		}
	}
}

// TestDialRetryGivesUp pins the bounded-attempts path: a dead address
// with MaxAttempts set fails fast instead of spinning forever.
func TestDialRetryGivesUp(t *testing.T) {
	// A listener we close immediately: the port is valid but refuses.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	start := time.Now()
	_, err = DialRetryContext(context.Background(), addr, "c1",
		Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond, MaxAttempts: 3, Jitter: -1}, nil)
	if err == nil {
		t.Fatal("DialRetryContext succeeded against a closed port")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("bounded retry took %v", elapsed)
	}
}

// TestDialRetryCancelled pins the cancellation path: a cancelled
// context aborts the retry loop with an error, promptly.
func TestDialRetryCancelled(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := DialRetryContext(ctx, addr, "c1", Backoff{Base: 10 * time.Millisecond, Jitter: -1}, nil); err == nil {
		t.Fatal("DialRetryContext succeeded after cancellation")
	}
}

// readConn consumes one accepted FMS connection: it checks the hello,
// then reads datapoints until limit messages arrived or the peer went
// away, returning the Tgens seen.
func readConn(t *testing.T, conn net.Conn, wantID string, limit int) []float64 {
	t.Helper()
	r := bufio.NewReader(conn)
	hello, err := readMessage(r)
	if err != nil || hello.Type != TypeHello {
		t.Fatalf("bad hello: %v %v", hello, err)
	}
	if hello.ClientID != wantID {
		t.Fatalf("hello from %q, want %q", hello.ClientID, wantID)
	}
	var tgens []float64
	for len(tgens) < limit {
		m, err := readMessage(r)
		if err != nil {
			break
		}
		if m.Type == TypeDatapoint {
			tgens = append(tgens, m.Tgen)
		}
	}
	return tgens
}

// TestCollectorReconnectResumes pins the satellite bugfix: a mid-stream
// disconnect no longer abandons the run. The harness accepts the
// collector's connection, reads a few datapoints, and hard-closes it;
// the collector must redial under its backoff policy, re-send the event
// whose delivery failed, and keep streaming on the new connection with
// monotone timestamps across the seam.
func TestCollectorReconnectResumes(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	addr := ln.Addr().String()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	var tick atomic.Int64
	src := SourceFunc(func() (trace.Datapoint, error) {
		var d trace.Datapoint
		d.Tgen = float64(tick.Add(1))
		return d, nil
	})

	cli, err := DialContext(ctx, addr, "resume-1")
	if err != nil {
		t.Fatal(err)
	}
	conn1, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}

	var reconnects atomic.Int64
	coll := &Collector{
		Client:   cli,
		Source:   src,
		Interval: 2 * time.Millisecond,
		Redial: func(ctx context.Context) (*Client, error) {
			return DialContext(ctx, addr, "resume-1")
		},
		Retry:    Backoff{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond, Jitter: -1},
		RetryRNG: randx.New(1),
		OnReconnect: func(attempt int, err error) {
			if err == nil {
				reconnects.Add(1)
			}
		},
	}
	if err := coll.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer coll.Stop()

	first := readConn(t, conn1, "resume-1", 5)
	conn1.Close() // hard mid-stream disconnect
	if len(first) == 0 {
		t.Fatal("no datapoints before the disconnect")
	}

	conn2, err := ln.Accept() // the redial
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	second := readConn(t, conn2, "resume-1", 5)
	if len(second) < 5 {
		t.Fatalf("only %d datapoints after reconnect, want 5 — the run did not resume", len(second))
	}
	if reconnects.Load() == 0 {
		t.Fatal("OnReconnect never reported a successful redial")
	}

	// Monotone across the seam: the stream resumes at (or after) the
	// event whose send failed; nothing sampled is re-sent out of order.
	for i := 1; i < len(first); i++ {
		if first[i] <= first[i-1] {
			t.Fatalf("first connection not monotone: %v", first)
		}
	}
	for i := 1; i < len(second); i++ {
		if second[i] <= second[i-1] {
			t.Fatalf("second connection not monotone: %v", second)
		}
	}
	if second[0] < first[len(first)-1] {
		t.Fatalf("stream rewound across the seam: first ended at %v, second starts at %v",
			first[len(first)-1], second[0])
	}
}
