package monitor

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/trace"
)

// ProcSource samples a live Linux host through /proc, covering the same
// features the paper's FMC gathers with standard OS tooling: meminfo for
// the memory and swap quantities, the aggregate cpu line of /proc/stat
// for the CPU split (percentages over the inter-sample window), and
// loadavg for the system-wide thread count.
type ProcSource struct {
	// Root is the procfs mount point; defaults to "/proc". Tests point
	// it at a fixture directory.
	Root string

	start    time.Time
	now      func() time.Time
	prevCPU  cpuTimes
	havePrev bool
}

// NewProcSource creates a source rooted at root ("" means /proc).
func NewProcSource(root string) *ProcSource {
	if root == "" {
		root = "/proc"
	}
	return &ProcSource{Root: root, start: time.Now(), now: time.Now}
}

// cpuTimes holds the aggregate jiffy counters from /proc/stat.
type cpuTimes struct {
	user, nice, system, idle, iowait, irq, softirq, steal float64
}

func (c cpuTimes) total() float64 {
	return c.user + c.nice + c.system + c.idle + c.iowait + c.irq + c.softirq + c.steal
}

// Sample implements Source.
func (p *ProcSource) Sample() (trace.Datapoint, error) {
	var d trace.Datapoint
	d.Tgen = p.now().Sub(p.start).Seconds()

	mem, err := os.ReadFile(filepath.Join(p.Root, "meminfo"))
	if err != nil {
		return d, fmt.Errorf("monitor: reading meminfo: %w", err)
	}
	if err := fillMeminfo(&d, string(mem)); err != nil {
		return d, err
	}

	stat, err := os.ReadFile(filepath.Join(p.Root, "stat"))
	if err != nil {
		return d, fmt.Errorf("monitor: reading stat: %w", err)
	}
	cpu, err := parseStatCPU(string(stat))
	if err != nil {
		return d, err
	}
	if p.havePrev {
		fillCPU(&d, p.prevCPU, cpu)
	} else {
		d.Features[trace.CPUIdle] = 100
	}
	p.prevCPU = cpu
	p.havePrev = true

	loadavg, err := os.ReadFile(filepath.Join(p.Root, "loadavg"))
	if err != nil {
		return d, fmt.Errorf("monitor: reading loadavg: %w", err)
	}
	threads, err := parseLoadavgThreads(string(loadavg))
	if err != nil {
		return d, err
	}
	d.Features[trace.NumThreads] = float64(threads)
	return d, d.Validate()
}

// fillMeminfo populates the memory and swap features from a meminfo dump.
func fillMeminfo(d *trace.Datapoint, content string) error {
	fields := map[string]float64{}
	for _, line := range strings.Split(content, "\n") {
		name, rest, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		parts := strings.Fields(rest)
		if len(parts) == 0 {
			continue
		}
		v, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			continue
		}
		fields[strings.TrimSpace(name)] = v // meminfo reports kB
	}
	required := []string{"MemTotal", "MemFree", "Buffers", "Cached", "SwapTotal", "SwapFree"}
	for _, r := range required {
		if _, ok := fields[r]; !ok {
			return fmt.Errorf("monitor: meminfo missing %s", r)
		}
	}
	shmem := fields["Shmem"] // absent on ancient kernels → 0
	d.Features[trace.MemFree] = fields["MemFree"]
	d.Features[trace.MemBuffers] = fields["Buffers"]
	d.Features[trace.MemCached] = fields["Cached"]
	d.Features[trace.MemShared] = shmem
	d.Features[trace.MemUsed] = fields["MemTotal"] - fields["MemFree"] - fields["Buffers"] - fields["Cached"]
	if d.Features[trace.MemUsed] < 0 {
		d.Features[trace.MemUsed] = 0
	}
	d.Features[trace.SwapUsed] = fields["SwapTotal"] - fields["SwapFree"]
	d.Features[trace.SwapFree] = fields["SwapFree"]
	return nil
}

// parseStatCPU extracts the aggregate "cpu " line.
func parseStatCPU(content string) (cpuTimes, error) {
	var c cpuTimes
	for _, line := range strings.Split(content, "\n") {
		if !strings.HasPrefix(line, "cpu ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 8 {
			return c, fmt.Errorf("monitor: short cpu line %q", line)
		}
		vals := make([]float64, 0, 8)
		for _, f := range fields[1:9] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return c, fmt.Errorf("monitor: bad cpu field %q", f)
			}
			vals = append(vals, v)
		}
		for len(vals) < 8 {
			vals = append(vals, 0) // steal absent pre-2.6.11
		}
		c = cpuTimes{user: vals[0], nice: vals[1], system: vals[2], idle: vals[3],
			iowait: vals[4], irq: vals[5], softirq: vals[6], steal: vals[7]}
		return c, nil
	}
	return c, fmt.Errorf("monitor: /proc/stat has no aggregate cpu line")
}

// fillCPU converts two jiffy snapshots into window percentages.
func fillCPU(d *trace.Datapoint, prev, cur cpuTimes) {
	dt := cur.total() - prev.total()
	if dt <= 0 {
		d.Features[trace.CPUIdle] = 100
		return
	}
	pct := func(a, b float64) float64 {
		v := 100 * (b - a) / dt
		if v < 0 {
			return 0
		}
		return v
	}
	d.Features[trace.CPUUser] = pct(prev.user, cur.user)
	d.Features[trace.CPUNice] = pct(prev.nice, cur.nice)
	// Fold irq/softirq into system time, as top(1) variants do.
	d.Features[trace.CPUSystem] = pct(prev.system+prev.irq+prev.softirq, cur.system+cur.irq+cur.softirq)
	d.Features[trace.CPUIOWait] = pct(prev.iowait, cur.iowait)
	d.Features[trace.CPUSteal] = pct(prev.steal, cur.steal)
	d.Features[trace.CPUIdle] = pct(prev.idle, cur.idle)
}

// parseLoadavgThreads extracts the total entity count from the
// "runnable/total" field of /proc/loadavg.
func parseLoadavgThreads(content string) (int, error) {
	fields := strings.Fields(content)
	if len(fields) < 4 {
		return 0, fmt.Errorf("monitor: short loadavg %q", content)
	}
	_, total, ok := strings.Cut(fields[3], "/")
	if !ok {
		return 0, fmt.Errorf("monitor: malformed loadavg entity field %q", fields[3])
	}
	n, err := strconv.Atoi(total)
	if err != nil {
		return 0, fmt.Errorf("monitor: bad loadavg total %q", total)
	}
	return n, nil
}
