package monitor

import (
	"context"
	"fmt"
	"time"

	"repro/internal/randx"
)

// Backoff is a capped exponential backoff policy with jitter, used by
// DialRetryContext and by the Collector's reconnect path. The zero
// value is usable and means "the defaults": 250 ms base, 15 s cap,
// factor 2, ±20 % jitter, retry until the context is cancelled.
type Backoff struct {
	// Base is the delay before the first retry (default 250 ms).
	Base time.Duration
	// Max caps the grown delay (default 15 s).
	Max time.Duration
	// Factor is the per-attempt growth multiplier (default 2).
	Factor float64
	// Jitter spreads each delay uniformly within ±Jitter fraction of
	// its value (default 0.2), so a fleet of clients that lost the same
	// server does not redial in lockstep. Set negative for no jitter.
	Jitter float64
	// MaxAttempts bounds consecutive failed attempts before giving up
	// (0 = retry until the context is cancelled).
	MaxAttempts int
}

// withDefaults fills zero fields with the documented defaults.
func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 250 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 15 * time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Jitter == 0 {
		b.Jitter = 0.2
	}
	return b
}

// Delay returns the backoff before retry attempt (1-based): the base
// delay grown by Factor^(attempt-1), capped at Max, jittered from rng
// (nil rng means no jitter — fully deterministic timing for tests and
// seeded simulations that want it).
func (b Backoff) Delay(attempt int, rng *randx.Source) time.Duration {
	b = b.withDefaults()
	d := float64(b.Base)
	for i := 1; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			break
		}
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if rng != nil && b.Jitter > 0 {
		d *= 1 + b.Jitter*(2*rng.Float64()-1)
	}
	return time.Duration(d)
}

// sleep waits for the attempt's backoff delay or until ctx is done,
// reporting false on cancellation.
func (b Backoff) sleep(ctx context.Context, attempt int, rng *randx.Source) bool {
	t := time.NewTimer(b.Delay(attempt, rng))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// DialRetryContext dials the FMS with capped exponential backoff: each
// failed attempt waits the policy's (jittered) delay and tries again,
// until the dial succeeds, ctx is cancelled, or MaxAttempts consecutive
// failures. rng seeds the jitter; nil means none. This is the
// cold-start counterpart of the Collector's mid-stream reconnect — an
// FMC that boots before its FMS (or during a server deploy) connects
// when the server appears instead of dying.
func DialRetryContext(ctx context.Context, addr, clientID string, b Backoff, rng *randx.Source) (*Client, error) {
	b = b.withDefaults()
	var lastErr error
	for attempt := 1; ; attempt++ {
		c, err := DialContext(ctx, addr, clientID)
		if err == nil {
			return c, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, fmt.Errorf("monitor: dial retry cancelled: %w", lastErr)
		}
		if b.MaxAttempts > 0 && attempt >= b.MaxAttempts {
			return nil, fmt.Errorf("monitor: giving up after %d dial attempts: %w", attempt, lastErr)
		}
		if !b.sleep(ctx, attempt, rng) {
			return nil, fmt.Errorf("monitor: dial retry cancelled: %w", lastErr)
		}
	}
}
