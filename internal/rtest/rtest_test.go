package rtest

import (
	"math"
	"testing"

	"repro/internal/randx"
)

func TestFitAndEstimate(t *testing.T) {
	// RT = 0.4·gen + 0.1 with small noise.
	src := randx.New(1)
	var gen, rts []float64
	for i := 0; i < 100; i++ {
		g := src.Uniform(1.5, 6)
		gen = append(gen, g)
		rts = append(rts, 0.4*g+0.1+src.Norm(0, 0.01))
	}
	e, err := Fit(gen, rts)
	if err != nil {
		t.Fatal(err)
	}
	if e.Pearson < 0.99 {
		t.Fatalf("Pearson = %v", e.Pearson)
	}
	slope, intercept := e.Coefficients()
	if math.Abs(slope-0.4) > 0.01 || math.Abs(intercept-0.1) > 0.05 {
		t.Fatalf("coefficients = (%v, %v)", slope, intercept)
	}
	if got := e.Estimate(3); math.Abs(got-1.3) > 0.05 {
		t.Fatalf("Estimate(3) = %v, want ~1.3", got)
	}
	series := e.EstimateSeries([]float64{2, 4})
	if len(series) != 2 || series[1] <= series[0] {
		t.Fatalf("EstimateSeries = %v", series)
	}
	if e.N != 100 {
		t.Fatalf("N = %d", e.N)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Fatal("too few pairs accepted")
	}
	if _, err := Fit([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestWindowPairs(t *testing.T) {
	// Samples every 1 s with gap 1.5; RTs at odd times.
	var st, gaps, rt, rts []float64
	for i := 0; i < 60; i++ {
		st = append(st, float64(i))
		gaps = append(gaps, 1.5)
	}
	for i := 1; i < 60; i += 2 {
		rt = append(rt, float64(i))
		rts = append(rts, 0.25)
	}
	g, r, err := WindowPairs(st, gaps, rt, rts, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != len(r) || len(g) < 5 {
		t.Fatalf("pairs = %d/%d", len(g), len(r))
	}
	for i := range g {
		if math.Abs(g[i]-1.5) > 1e-9 || math.Abs(r[i]-0.25) > 1e-9 {
			t.Fatalf("window %d = (%v, %v)", i, g[i], r[i])
		}
	}
}

func TestWindowPairsErrors(t *testing.T) {
	if _, _, err := WindowPairs(nil, nil, nil, nil, 0); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, _, err := WindowPairs([]float64{1}, []float64{1, 2}, nil, nil, 5); err == nil {
		t.Fatal("mismatched sample series accepted")
	}
	// Non-overlapping windows: samples early, RTs late.
	st := []float64{1, 2, 3}
	gaps := []float64{1, 1, 1}
	rt := []float64{100, 101, 102}
	rts := []float64{1, 1, 1}
	if _, _, err := WindowPairs(st, gaps, rt, rts, 5); err == nil {
		t.Fatal("non-overlapping series accepted")
	}
}

func TestEndToEndWithWindowPairs(t *testing.T) {
	// Degrading system: gaps and RTs both grow with time; estimator
	// recovers RT from gaps alone.
	src := randx.New(9)
	var st, gaps, rt, rts []float64
	for i := 0; i < 400; i++ {
		tm := float64(i) * 1.5
		load := 1 + tm/200
		st = append(st, tm)
		gaps = append(gaps, 1.5*load+src.Norm(0, 0.05))
		rt = append(rt, tm+0.3)
		rts = append(rts, 0.2*load+src.Norm(0, 0.01))
	}
	g, r, err := WindowPairs(st, gaps, rt, rts, 30)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Fit(g, r)
	if err != nil {
		t.Fatal(err)
	}
	if e.Pearson < 0.9 {
		t.Fatalf("Pearson = %v", e.Pearson)
	}
	// Late-run estimate must exceed early-run estimate.
	if e.Estimate(g[len(g)-1]) <= e.Estimate(g[0]) {
		t.Fatal("estimator not monotone in load")
	}
}
