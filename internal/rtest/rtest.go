// Package rtest implements the paper's response-time estimation
// technique (§III-B): the datapoint inter-generation time measured by the
// feature monitor correlates with the response time experienced by remote
// clients, so a linear model fitted once on instrumented data gives "a
// pragmatic estimation of the response time seen by end users, without
// any modification to the software at the end point".
//
// Train the estimator on a campaign where client RTs are available (the
// simulated test-bed's browser probes, or a one-off instrumented
// deployment), then deploy it on the monitor's inter-generation stream
// alone.
package rtest

import (
	"fmt"

	"repro/internal/ml/linreg"
	"repro/internal/stats"
)

// Estimator predicts client response time from the monitor's datapoint
// inter-generation time.
type Estimator struct {
	model *linreg.Model
	// Pearson is the training-set correlation between inter-generation
	// time and response time; low values mean the estimate is unreliable.
	Pearson float64
	// N is the number of (windowed) training pairs.
	N int
}

// Fit builds the estimator from paired series: genTimes[i] is the mean
// datapoint inter-generation time of window i, rts[i] the mean client
// response time of the same window.
func Fit(genTimes, rts []float64) (*Estimator, error) {
	if len(genTimes) != len(rts) || len(genTimes) < 3 {
		return nil, fmt.Errorf("rtest: need >= 3 paired windows, got %d/%d", len(genTimes), len(rts))
	}
	X := make([][]float64, len(genTimes))
	for i, g := range genTimes {
		X[i] = []float64{g}
	}
	lm := linreg.New()
	if err := lm.Fit(X, rts); err != nil {
		return nil, fmt.Errorf("rtest: fitting correlation model: %w", err)
	}
	r, err := stats.Pearson(genTimes, rts)
	if err != nil {
		return nil, err
	}
	return &Estimator{model: lm, Pearson: r, N: len(genTimes)}, nil
}

// Estimate returns the predicted response time for one inter-generation
// time observation.
func (e *Estimator) Estimate(genTime float64) float64 {
	return e.model.Predict([]float64{genTime})
}

// EstimateSeries maps a whole inter-generation series.
func (e *Estimator) EstimateSeries(genTimes []float64) []float64 {
	out := make([]float64, len(genTimes))
	for i, g := range genTimes {
		out[i] = e.Estimate(g)
	}
	return out
}

// Coefficients returns the fitted slope and intercept (RT ≈ slope·gen + b).
func (e *Estimator) Coefficients() (slope, intercept float64) {
	return e.model.Coef[0], e.model.Intercept
}

// WindowPairs builds the paired training series from raw observations:
// sampleTimes/gaps are the datapoint timestamps and their predecessor
// gaps; rtTimes/rts are client response-time observations. Both are
// bucketed into windowSec-wide windows; windows holding both kinds of
// data produce one pair.
func WindowPairs(sampleTimes, gaps, rtTimes, rts []float64, windowSec float64) (genSeries, rtSeries []float64, err error) {
	if windowSec <= 0 {
		return nil, nil, fmt.Errorf("rtest: windowSec must be positive, got %v", windowSec)
	}
	if len(sampleTimes) != len(gaps) || len(rtTimes) != len(rts) {
		return nil, nil, fmt.Errorf("rtest: mismatched series lengths")
	}
	maxT := 0.0
	for _, t := range sampleTimes {
		if t > maxT {
			maxT = t
		}
	}
	for _, t := range rtTimes {
		if t > maxT {
			maxT = t
		}
	}
	n := int(maxT/windowSec) + 1
	gSum := make([]float64, n)
	gCnt := make([]int, n)
	rSum := make([]float64, n)
	rCnt := make([]int, n)
	for i, t := range sampleTimes {
		w := int(t / windowSec)
		if w >= 0 && w < n {
			gSum[w] += gaps[i]
			gCnt[w]++
		}
	}
	for i, t := range rtTimes {
		w := int(t / windowSec)
		if w >= 0 && w < n {
			rSum[w] += rts[i]
			rCnt[w]++
		}
	}
	for w := 0; w < n; w++ {
		if gCnt[w] > 0 && rCnt[w] > 0 {
			genSeries = append(genSeries, gSum[w]/float64(gCnt[w]))
			rtSeries = append(rtSeries, rSum[w]/float64(rCnt[w]))
		}
	}
	if len(genSeries) < 3 {
		return nil, nil, fmt.Errorf("rtest: only %d overlapping windows", len(genSeries))
	}
	return genSeries, rtSeries, nil
}
