package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV layout: a header row, then one row per event. Columns:
//
//	run, event, tgen, <feature columns...>
//
// event is "sample" for datapoints and "fail" for fail events; fail rows
// repeat the feature values of the moment of failure (zeros if unknown).
// Runs must appear contiguously with non-decreasing run ids.

const (
	eventSample = "sample"
	eventFail   = "fail"
)

// WriteCSV serializes the history to w.
func WriteCSV(w io.Writer, h *History) error {
	cw := csv.NewWriter(w)
	header := append([]string{"run", "event", "tgen"}, FeatureNames()...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("trace: writing CSV header: %w", err)
	}
	row := make([]string, len(header))
	for ri := range h.Runs {
		r := &h.Runs[ri]
		for di := range r.Datapoints {
			d := &r.Datapoints[di]
			row[0] = strconv.Itoa(ri)
			row[1] = eventSample
			row[2] = formatFloat(d.Tgen)
			for fi, v := range d.Features {
				row[3+fi] = formatFloat(v)
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("trace: writing CSV row: %w", err)
			}
		}
		if r.Failed {
			row[0] = strconv.Itoa(ri)
			row[1] = eventFail
			row[2] = formatFloat(r.FailTime)
			var last *Datapoint
			if n := len(r.Datapoints); n > 0 {
				last = &r.Datapoints[n-1]
			}
			for fi := 0; fi < NumFeatures; fi++ {
				if last != nil {
					row[3+fi] = formatFloat(last.Features[fi])
				} else {
					row[3+fi] = "0"
				}
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("trace: writing CSV fail row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ReadCSV parses a history previously written by WriteCSV. It validates
// the header, run contiguity, and event ordering, returning descriptive
// errors for malformed input.
func ReadCSV(r io.Reader) (*History, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3 + NumFeatures

	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV header: %w", err)
	}
	want := append([]string{"run", "event", "tgen"}, FeatureNames()...)
	for i := range want {
		if header[i] != want[i] {
			return nil, fmt.Errorf("trace: CSV header column %d is %q, want %q", i, header[i], want[i])
		}
	}

	h := &History{}
	curRun := -1
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("trace: reading CSV line %d: %w", line, err)
		}
		runID, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad run id %q", line, rec[0])
		}
		switch {
		case runID == curRun:
			// continuing current run
		case runID == curRun+1:
			h.Runs = append(h.Runs, Run{})
			curRun = runID
		default:
			return nil, fmt.Errorf("trace: line %d: run id %d not contiguous after %d", line, runID, curRun)
		}
		run := &h.Runs[curRun]
		tgen, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad tgen %q", line, rec[2])
		}
		switch rec[1] {
		case eventSample:
			if run.Failed {
				return nil, fmt.Errorf("trace: line %d: sample after fail event in run %d", line, curRun)
			}
			var d Datapoint
			d.Tgen = tgen
			for fi := 0; fi < NumFeatures; fi++ {
				v, err := strconv.ParseFloat(rec[3+fi], 64)
				if err != nil {
					return nil, fmt.Errorf("trace: line %d: bad %s value %q", line, FeatureIndex(fi).Name(), rec[3+fi])
				}
				d.Features[fi] = v
			}
			run.Datapoints = append(run.Datapoints, d)
		case eventFail:
			if run.Failed {
				return nil, fmt.Errorf("trace: line %d: duplicate fail event in run %d", line, curRun)
			}
			run.Failed = true
			run.FailTime = tgen
		default:
			return nil, fmt.Errorf("trace: line %d: unknown event %q", line, rec[1])
		}
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return h, nil
}
