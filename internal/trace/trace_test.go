package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/randx"
)

func sampleDatapoint(t float64) Datapoint {
	var d Datapoint
	d.Tgen = t
	d.Features[NumThreads] = 100 + t
	d.Features[MemUsed] = 1e6 + 10*t
	d.Features[MemFree] = 2e6 - 10*t
	d.Features[SwapFree] = 1e6
	d.Features[CPUUser] = 25
	d.Features[CPUIdle] = 75
	return d
}

func sampleHistory(runs, pointsPerRun int) *History {
	h := &History{}
	for r := 0; r < runs; r++ {
		var run Run
		for i := 0; i < pointsPerRun; i++ {
			run.Datapoints = append(run.Datapoints, sampleDatapoint(float64(i)*1.5))
		}
		run.Failed = true
		run.FailTime = float64(pointsPerRun) * 1.5
		h.Runs = append(h.Runs, run)
	}
	return h
}

func TestFeatureNames(t *testing.T) {
	names := FeatureNames()
	if len(names) != NumFeatures {
		t.Fatalf("FeatureNames has %d entries, want %d", len(names), NumFeatures)
	}
	// Paper Table I names must be present.
	for _, want := range []string{"mem_used", "mem_free", "mem_buffers", "swap_used", "swap_free", "cpu_iowait", "cpu_steal", "n_threads"} {
		if _, err := FeatureByName(want); err != nil {
			t.Fatalf("feature %q missing: %v", want, err)
		}
	}
	if _, err := FeatureByName("bogus"); err == nil {
		t.Fatal("FeatureByName accepted unknown name")
	}
	// Round trip.
	for i := 0; i < NumFeatures; i++ {
		fi := FeatureIndex(i)
		got, err := FeatureByName(fi.Name())
		if err != nil || got != fi {
			t.Fatalf("round trip failed for %v: got %v err %v", fi, got, err)
		}
	}
	if FeatureIndex(-1).Name() != "feature_-1" {
		t.Fatal("out-of-range Name not handled")
	}
}

func TestDatapointValidate(t *testing.T) {
	d := sampleDatapoint(1)
	if err := d.Validate(); err != nil {
		t.Fatalf("valid datapoint rejected: %v", err)
	}
	d.Tgen = -1
	if err := d.Validate(); err == nil {
		t.Fatal("negative Tgen accepted")
	}
	d = sampleDatapoint(1)
	d.Features[MemUsed] = math.NaN()
	if err := d.Validate(); err == nil {
		t.Fatal("NaN feature accepted")
	}
	d = sampleDatapoint(1)
	d.Features[CPUIdle] = math.Inf(1)
	if err := d.Validate(); err == nil {
		t.Fatal("Inf feature accepted")
	}
}

func TestRunValidate(t *testing.T) {
	run := Run{Datapoints: []Datapoint{sampleDatapoint(0), sampleDatapoint(3)}}
	if err := run.Validate(); err != nil {
		t.Fatalf("valid run rejected: %v", err)
	}
	// Out of order.
	run = Run{Datapoints: []Datapoint{sampleDatapoint(5), sampleDatapoint(3)}}
	if err := run.Validate(); err == nil {
		t.Fatal("out-of-order datapoints accepted")
	}
	// Fail before last datapoint.
	run = Run{Datapoints: []Datapoint{sampleDatapoint(0), sampleDatapoint(9)}, Failed: true, FailTime: 5}
	if err := run.Validate(); err == nil {
		t.Fatal("fail time before last datapoint accepted")
	}
}

func TestRunDuration(t *testing.T) {
	run := Run{Datapoints: []Datapoint{sampleDatapoint(0), sampleDatapoint(10)}}
	if run.Duration() != 10 {
		t.Fatalf("unfailed Duration = %v, want 10", run.Duration())
	}
	run.Failed = true
	run.FailTime = 12
	if run.Duration() != 12 {
		t.Fatalf("failed Duration = %v, want 12", run.Duration())
	}
	var empty Run
	if empty.Duration() != 0 {
		t.Fatal("empty run duration not 0")
	}
}

func TestHistoryHelpers(t *testing.T) {
	h := sampleHistory(3, 4)
	h.Runs = append(h.Runs, Run{Datapoints: []Datapoint{sampleDatapoint(0)}}) // truncated run
	if got := len(h.FailedRuns()); got != 3 {
		t.Fatalf("FailedRuns = %d, want 3", got)
	}
	if got := h.TotalDatapoints(); got != 13 {
		t.Fatalf("TotalDatapoints = %d, want 13", got)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryExhaustionCondition(t *testing.T) {
	cond := MemoryExhaustion(0.01, 0.01)
	healthy := sampleDatapoint(0)
	if cond(&healthy) {
		t.Fatal("healthy system reported as failed")
	}
	var dying Datapoint
	dying.Features[MemUsed] = 3e6
	dying.Features[MemFree] = 1000 // far below 1% of ~3e6
	dying.Features[SwapUsed] = 1e6
	dying.Features[SwapFree] = 100
	if !cond(&dying) {
		t.Fatal("exhausted system not reported as failed")
	}
}

func TestMemoryExhaustionNoSwap(t *testing.T) {
	cond := MemoryExhaustion(0.01, 0.01)
	var d Datapoint
	d.Features[MemUsed] = 1e6
	d.Features[MemFree] = 1e6
	if cond(&d) {
		t.Fatal("half-free memory reported as failed")
	}
	d.Features[MemUsed] = 2e6 - 100
	d.Features[MemFree] = 100
	// No swap at all: swap leg must not block the condition.
	if !cond(&d) {
		t.Fatal("memory exhaustion with zero swap not detected")
	}
}

func TestThresholdCondition(t *testing.T) {
	up := ThresholdCondition(NumThreads, 500, +1)
	down := ThresholdCondition(MemFree, 1000, -1)
	var d Datapoint
	d.Features[NumThreads] = 499
	d.Features[MemFree] = 1001
	if up(&d) || down(&d) {
		t.Fatal("conditions fired early")
	}
	d.Features[NumThreads] = 500
	d.Features[MemFree] = 1000
	if !up(&d) || !down(&d) {
		t.Fatal("conditions did not fire at threshold")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	h := sampleHistory(3, 5)
	// Add a truncated (unfailed) run to exercise that path.
	h.Runs = append(h.Runs, Run{Datapoints: []Datapoint{sampleDatapoint(0), sampleDatapoint(1.5)}})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, h); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != len(h.Runs) {
		t.Fatalf("round trip run count %d, want %d", len(got.Runs), len(h.Runs))
	}
	for ri := range h.Runs {
		a, b := &h.Runs[ri], &got.Runs[ri]
		if a.Failed != b.Failed || (a.Failed && a.FailTime != b.FailTime) {
			t.Fatalf("run %d fail mismatch", ri)
		}
		if len(a.Datapoints) != len(b.Datapoints) {
			t.Fatalf("run %d datapoint count mismatch", ri)
		}
		for di := range a.Datapoints {
			if a.Datapoints[di] != b.Datapoints[di] {
				t.Fatalf("run %d datapoint %d mismatch: %+v vs %+v", ri, di, a.Datapoints[di], b.Datapoints[di])
			}
		}
	}
}

func TestCSVRoundTripProperty(t *testing.T) {
	src := randx.New(17)
	f := func(runsRaw, pointsRaw uint8) bool {
		runs := int(runsRaw%4) + 1
		points := int(pointsRaw%6) + 1
		h := &History{}
		for r := 0; r < runs; r++ {
			var run Run
			tg := 0.0
			for i := 0; i < points; i++ {
				d := sampleDatapoint(tg)
				for fi := range d.Features {
					d.Features[fi] = src.Uniform(0, 1e7)
				}
				run.Datapoints = append(run.Datapoints, d)
				tg += src.Uniform(1, 3)
			}
			run.Failed = src.Bernoulli(0.8)
			if run.Failed {
				run.FailTime = tg
			}
			h.Runs = append(h.Runs, run)
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, h); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		if got.TotalDatapoints() != h.TotalDatapoints() {
			return false
		}
		for ri := range h.Runs {
			for di := range h.Runs[ri].Datapoints {
				if h.Runs[ri].Datapoints[di] != got.Runs[ri].Datapoints[di] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestReadCSVErrors(t *testing.T) {
	valid := func() string {
		var buf bytes.Buffer
		_ = WriteCSV(&buf, sampleHistory(1, 2))
		return buf.String()
	}()

	cases := map[string]string{
		"bad header":       strings.Replace(valid, "run,event", "xxx,event", 1),
		"bad run id":       strings.Replace(valid, "\n0,sample", "\nzz,sample", 1),
		"bad event":        strings.Replace(valid, "sample", "bogus", 1),
		"non-contiguous":   strings.Replace(valid, "\n0,fail", "\n2,fail", 1),
		"truncated record": valid[:len(valid)-40],
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: malformed CSV accepted", name)
		}
	}
}

func TestReadCSVSampleAfterFail(t *testing.T) {
	h := sampleHistory(1, 1)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, h); err != nil {
		t.Fatal(err)
	}
	// Append a sample row for run 0 after its fail event.
	s := buf.String() + "0,sample,99,0,0,0,0,0,0,0,0,0,0,0,0,0,0\n"
	if _, err := ReadCSV(strings.NewReader(s)); err == nil {
		t.Fatal("sample after fail event accepted")
	}
}

func TestReadCSVDuplicateFail(t *testing.T) {
	h := sampleHistory(1, 1)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, h); err != nil {
		t.Fatal(err)
	}
	s := buf.String() + "0,fail,99,0,0,0,0,0,0,0,0,0,0,0,0,0,0\n"
	if _, err := ReadCSV(strings.NewReader(s)); err == nil {
		t.Fatal("duplicate fail event accepted")
	}
}
