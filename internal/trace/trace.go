// Package trace defines the data collected during F2PM's initial system
// monitoring phase (paper §III-A): timestamped datapoints of system-level
// features, fail events, runs, and the data history that the rest of the
// pipeline consumes. It also provides the CSV codec used by the cmd/
// tools to persist and reload histories.
package trace

import (
	"errors"
	"fmt"
	"math"
)

// FeatureIndex identifies one of the system-level features in a datapoint.
// The order matches the paper's §III-A tuple (minus Tgen, which is carried
// separately as the timestamp).
type FeatureIndex int

// The monitored system features. Memory and swap quantities are in KB;
// CPU quantities are percentages in [0, 100]; NumThreads is a count.
const (
	NumThreads FeatureIndex = iota // nth: active threads in the system
	MemUsed                        // Mused: memory used by applications
	MemFree                        // Mfree: memory freely available
	MemShared                      // Mshared: shared buffers
	MemBuffers                     // Mbuff: OS buffers
	MemCached                      // Mcached: disk cache
	SwapUsed                       // SWused: swap space in use
	SwapFree                       // SWfree: swap space free
	CPUUser                        // CPUus: %CPU in userspace
	CPUNice                        // CPUni: %CPU niced processes
	CPUSystem                      // CPUsys: %CPU in kernel mode
	CPUIOWait                      // CPUiow: %CPU waiting for I/O
	CPUSteal                       // CPUst: %CPU stolen by hypervisor
	CPUIdle                        // CPUid: %CPU idle

	// NumFeatures is the number of raw system features per datapoint.
	NumFeatures = int(CPUIdle) + 1
)

// featureNames holds the canonical snake_case names, chosen to match the
// paper's Table I (mem_used, mem_free, mem_buffers, swap_used, ...).
var featureNames = [NumFeatures]string{
	"n_threads",
	"mem_used",
	"mem_free",
	"mem_shared",
	"mem_buffers",
	"mem_cached",
	"swap_used",
	"swap_free",
	"cpu_user",
	"cpu_nice",
	"cpu_system",
	"cpu_iowait",
	"cpu_steal",
	"cpu_idle",
}

// Name returns the canonical name of the feature.
func (f FeatureIndex) Name() string {
	if f < 0 || int(f) >= NumFeatures {
		return fmt.Sprintf("feature_%d", int(f))
	}
	return featureNames[f]
}

// FeatureByName returns the index for a canonical feature name.
func FeatureByName(name string) (FeatureIndex, error) {
	for i, n := range featureNames {
		if n == name {
			return FeatureIndex(i), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown feature %q", name)
}

// FeatureNames returns the canonical names in feature order.
func FeatureNames() []string {
	out := make([]string, NumFeatures)
	copy(out, featureNames[:])
	return out
}

// Datapoint is one periodic measurement of all system features
// (paper §III-A). Tgen is the elapsed time in seconds since the monitored
// system started (i.e. since the beginning of the run).
type Datapoint struct {
	Tgen     float64
	Features [NumFeatures]float64
}

// Validate reports structural problems with a datapoint: NaN/Inf values or
// a negative timestamp.
func (d *Datapoint) Validate() error {
	if math.IsNaN(d.Tgen) || math.IsInf(d.Tgen, 0) || d.Tgen < 0 {
		return fmt.Errorf("trace: invalid Tgen %v", d.Tgen)
	}
	for i, v := range d.Features {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("trace: feature %s is %v", FeatureIndex(i).Name(), v)
		}
	}
	return nil
}

// Run holds the datapoints of one execution of the monitored system, from
// start to the fail event (or to truncation if the run never failed —
// e.g. the observation window closed first).
type Run struct {
	// Datapoints in increasing Tgen order.
	Datapoints []Datapoint
	// Failed reports whether a fail event was recorded for this run.
	Failed bool
	// FailTime is the elapsed time of the fail event, valid when Failed.
	FailTime float64
}

// Duration returns the time span covered by the run: the fail time when
// the run failed, otherwise the last datapoint's timestamp.
func (r *Run) Duration() float64 {
	if r.Failed {
		return r.FailTime
	}
	if n := len(r.Datapoints); n > 0 {
		return r.Datapoints[n-1].Tgen
	}
	return 0
}

// Validate checks datapoint ordering and the fail-event invariant
// (fail time not before the last datapoint).
func (r *Run) Validate() error {
	prev := math.Inf(-1)
	for i := range r.Datapoints {
		if err := r.Datapoints[i].Validate(); err != nil {
			return fmt.Errorf("datapoint %d: %w", i, err)
		}
		if r.Datapoints[i].Tgen < prev {
			return fmt.Errorf("trace: datapoint %d out of order (Tgen %v after %v)", i, r.Datapoints[i].Tgen, prev)
		}
		prev = r.Datapoints[i].Tgen
	}
	if r.Failed && len(r.Datapoints) > 0 && r.FailTime < prev {
		return fmt.Errorf("trace: fail time %v precedes last datapoint %v", r.FailTime, prev)
	}
	return nil
}

// History is the full data history produced by the initial monitoring
// phase: a sequence of runs, each ending in a fail event (system restart).
type History struct {
	Runs []Run
}

// ErrNoFailedRuns is returned by pipeline stages that need at least one
// run with a fail event to compute RTTF labels.
var ErrNoFailedRuns = errors.New("trace: history contains no failed runs")

// FailedRuns returns only the runs that recorded a fail event. RTTF labels
// can only be computed for those.
func (h *History) FailedRuns() []Run {
	out := make([]Run, 0, len(h.Runs))
	for _, r := range h.Runs {
		if r.Failed {
			out = append(out, r)
		}
	}
	return out
}

// TotalDatapoints returns the number of datapoints across all runs.
func (h *History) TotalDatapoints() int {
	var n int
	for _, r := range h.Runs {
		n += len(r.Datapoints)
	}
	return n
}

// Validate validates every run.
func (h *History) Validate() error {
	for i := range h.Runs {
		if err := h.Runs[i].Validate(); err != nil {
			return fmt.Errorf("run %d: %w", i, err)
		}
	}
	return nil
}

// FailCondition is the user-defined predicate that decides whether the
// system has failed, evaluated on each freshly collected datapoint
// (paper §I: "the condition can be defined by the user on the basis of the
// values of one or more selected system features").
type FailCondition func(d *Datapoint) bool

// MemoryExhaustion returns the paper's default failure condition: the
// system is considered failed when both free memory and free swap fall
// below the given fractions of their totals. The totals are captured from
// the first datapoint the condition observes (free+used).
func MemoryExhaustion(memFrac, swapFrac float64) FailCondition {
	var totalMem, totalSwap float64
	return func(d *Datapoint) bool {
		if totalMem == 0 {
			totalMem = d.Features[MemUsed] + d.Features[MemFree] +
				d.Features[MemBuffers] + d.Features[MemCached]
			totalSwap = d.Features[SwapUsed] + d.Features[SwapFree]
		}
		memLow := d.Features[MemFree] <= memFrac*totalMem
		swapLow := totalSwap == 0 || d.Features[SwapFree] <= swapFrac*totalSwap
		return memLow && swapLow
	}
}

// ThresholdCondition returns a condition that fires when the given feature
// crosses the threshold in the given direction (+1: >=, -1: <=).
func ThresholdCondition(f FeatureIndex, threshold float64, dir int) FailCondition {
	return func(d *Datapoint) bool {
		if dir >= 0 {
			return d.Features[f] >= threshold
		}
		return d.Features[f] <= threshold
	}
}
