package core

import (
	"testing"
)

func TestDatasetsAccessor(t *testing.T) {
	h := testHistory(t)
	cfg := fastConfig()
	cfg.Models = cfg.Models[:1] // linear only
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := p.Datasets(AllParams); ok {
		t.Fatal("Datasets returned data before Run")
	}
	if _, err := p.Run(h); err != nil {
		t.Fatal(err)
	}

	for _, fs := range []FeatureSet{AllParams, LassoParams} {
		train, val, ok := p.Datasets(fs)
		if !ok {
			t.Fatalf("Datasets(%v) not available after Run", fs)
		}
		if len(train.X) == 0 || len(val.X) == 0 {
			t.Fatalf("Datasets(%v): empty split (%d train, %d val rows)", fs, len(train.X), len(val.X))
		}
		if len(train.ColNames) != len(train.X[0]) {
			t.Fatalf("Datasets(%v): %d column names for %d columns", fs, len(train.ColNames), len(train.X[0]))
		}

		// The returned datasets are deep copies: mutating them must not
		// leak into the pipeline's retained state.
		train.X[0][0] += 1e9
		train.RTTF[0] += 1e9
		train.ColNames[0] = "mutated"
		again, _, ok := p.Datasets(fs)
		if !ok {
			t.Fatalf("Datasets(%v) vanished on second call", fs)
		}
		if again.X[0][0] == train.X[0][0] || again.RTTF[0] == train.RTTF[0] || again.ColNames[0] == "mutated" {
			t.Fatalf("Datasets(%v) returned aliased state, not a copy", fs)
		}
	}

	// LassoParams is the reduced set — never wider than the full one.
	full, _, _ := p.Datasets(AllParams)
	red, _, _ := p.Datasets(LassoParams)
	if len(red.ColNames) > len(full.ColNames) {
		t.Fatalf("reduced set has %d columns, full set %d", len(red.ColNames), len(full.ColNames))
	}
}
