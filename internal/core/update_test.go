package core

import (
	"math"
	"testing"

	"repro/internal/ml"
	"repro/internal/ml/lssvm"
	"repro/internal/trace"
)

// updateConfig is fastConfig plus the incremental learners (LS-SVM and
// a Lasso predictor), the models Update extends in place.
func updateConfig() Config {
	cfg := fastConfig()
	cfg.Models = append(DefaultModels(nil)[:3:3], // linear, m5p, reptree
		ModelSpec{Name: "svm2", DisplayName: "SVM2", New: func() (ml.Regressor, error) { return lssvm.New(lssvm.DefaultOptions()) }},
	)
	cfg.Models = append(cfg.Models, DefaultModels([]float64{1e5})[5:]...)
	return cfg
}

// TestPipelineUpdate runs the incremental retraining loop: Run on a
// prefix of the runs, Update with the full history, and checks the
// result against a fresh full Run structurally — every model present,
// metrics finite and sane, row accounting exact.
func TestPipelineUpdate(t *testing.T) {
	h := testHistory(t)
	failed := h.FailedRuns()
	if len(failed) < 6 {
		t.Skipf("only %d failed runs", len(failed))
	}
	cut := len(failed) - 2
	prefix := &trace.History{Runs: append([]trace.Run(nil), failed[:cut]...)}
	full := &trace.History{Runs: failed}

	p, err := New(updateConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep0, err := p.Run(prefix)
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := p.Update(full)
	if err != nil {
		t.Fatal(err)
	}

	if rep1.TrainRows+rep1.ValRows <= rep0.TrainRows+rep0.ValRows {
		t.Fatalf("rows did not grow: %d+%d -> %d+%d",
			rep0.TrainRows, rep0.ValRows, rep1.TrainRows, rep1.ValRows)
	}
	if len(rep1.Results) == 0 {
		t.Fatal("no results")
	}
	if len(rep1.Path) != len(p.cfg.FeatureLambdas) {
		t.Fatalf("path has %d points, want %d", len(rep1.Path), len(p.cfg.FeatureLambdas))
	}
	for i := range rep1.Results {
		res := &rep1.Results[i]
		if res.Err != nil {
			t.Fatalf("%s/%s failed: %v", res.Spec.Name, res.Features, res.Err)
		}
		if math.IsNaN(res.Report.SoftMAE) || res.Report.SoftMAE < 0 {
			t.Fatalf("%s/%s: S-MAE %v", res.Spec.Name, res.Features, res.Report.SoftMAE)
		}
		if len(res.Predicted) != rep1.ValRows && res.Features == AllParams {
			t.Fatalf("%s/%s: %d predictions for %d validation rows",
				res.Spec.Name, res.Features, len(res.Predicted), rep1.ValRows)
		}
	}
	// The incremental LS-SVM must be the same model object, extended.
	before := rep0.ByName("svm2", AllParams)
	after := rep1.ByName("svm2", AllParams)
	if before == nil || after == nil {
		t.Fatal("svm2 missing from a report")
	}
	if before.Model != after.Model {
		t.Fatal("svm2 was refit from scratch instead of updated in place")
	}
	// Total rows must match a fresh full run's accounting.
	pf, err := New(updateConfig())
	if err != nil {
		t.Fatal(err)
	}
	repFull, err := pf.Run(full)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rep1.TrainRows+rep1.ValRows, repFull.TrainRows+repFull.ValRows; got != want {
		t.Fatalf("total rows %d, want %d", got, want)
	}
}

// TestPipelineUpdateNoNewData checks the no-op contracts.
func TestPipelineUpdateNoNewData(t *testing.T) {
	h := testHistory(t)
	failed := h.FailedRuns()
	full := &trace.History{Runs: failed}

	p, err := New(updateConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Update(full); err != ErrNotRun {
		t.Fatalf("Update before Run: %v", err)
	}
	rep0, err := p.Run(full)
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := p.Update(full)
	if err != nil {
		t.Fatal(err)
	}
	if rep1 != rep0 {
		t.Fatal("no-op update should return the previous report")
	}
	if _, err := p.Update(&trace.History{Runs: failed[:1]}); err == nil {
		t.Fatal("shrunk history accepted")
	}
	// An appended run with no fail event contributes no labeled rows.
	unfailed := append(append([]trace.Run(nil), failed...), trace.Run{
		Datapoints: []trace.Datapoint{{Tgen: 1}, {Tgen: 2}},
	})
	rep2, err := p.Update(&trace.History{Runs: unfailed})
	if err != nil {
		t.Fatal(err)
	}
	if rep2 != rep0 {
		t.Fatal("unlabeled-only update should return the previous report")
	}
}

// TestPipelineUpdateStableAssignment checks that splitting the same
// new runs across one or two Update calls lands every run on the same
// side — the property that keeps incremental training sets consistent.
func TestPipelineUpdateStableAssignment(t *testing.T) {
	h := testHistory(t)
	failed := h.FailedRuns()
	if len(failed) < 6 {
		t.Skipf("only %d failed runs", len(failed))
	}
	cut := len(failed) - 3
	prefix := &trace.History{Runs: append([]trace.Run(nil), failed[:cut]...)}
	mid := &trace.History{Runs: append([]trace.Run(nil), failed[:cut+1]...)}
	full := &trace.History{Runs: failed}

	one, err := New(updateConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := one.Run(prefix); err != nil {
		t.Fatal(err)
	}
	repOne, err := one.Update(full)
	if err != nil {
		t.Fatal(err)
	}

	two, err := New(updateConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := two.Run(prefix); err != nil {
		t.Fatal(err)
	}
	if _, err := two.Update(mid); err != nil {
		t.Fatal(err)
	}
	repTwo, err := two.Update(full)
	if err != nil {
		t.Fatal(err)
	}

	if repOne.TrainRows != repTwo.TrainRows || repOne.ValRows != repTwo.ValRows {
		t.Fatalf("one-shot %d/%d vs chunked %d/%d rows",
			repOne.TrainRows, repOne.ValRows, repTwo.TrainRows, repTwo.ValRows)
	}
}
