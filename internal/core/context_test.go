package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/aggregate"
	"repro/internal/ml"
	"repro/internal/trace"
)

// slowModel is a linear-mean stub whose Fit blocks long enough for a
// cancellation to land between models.
type slowModel struct {
	delay  time.Duration
	onFit  func() // invoked at the start of every Fit/Update
	mean   float64
	fitted bool
}

func (m *slowModel) Name() string { return "slow" }
func (m *slowModel) Fit(X [][]float64, y []float64) error {
	if m.onFit != nil {
		m.onFit()
	}
	time.Sleep(m.delay)
	m.mean = ml.Mean(y)
	m.fitted = true
	return nil
}
func (m *slowModel) Predict([]float64) float64 { return m.mean }
func (m *slowModel) Update(X [][]float64, y []float64) error {
	return m.Fit(X, y)
}

// slowRoster builds n slow-model specs sharing one onFit hook.
func slowRoster(n int, delay time.Duration, onFit func()) []ModelSpec {
	specs := make([]ModelSpec, n)
	for i := range specs {
		name := "slow"
		if i > 0 {
			name = "slow" + string(rune('a'+i))
		}
		specs[i] = ModelSpec{
			Name:        name,
			DisplayName: name,
			New:         func() (ml.Regressor, error) { return &slowModel{delay: delay, onFit: onFit}, nil },
		}
	}
	return specs
}

func contextConfig(models []ModelSpec) Config {
	cfg := DefaultConfig()
	cfg.Aggregation.WindowSec = 15
	cfg.FeatureLambdas = nil
	cfg.SelectionLambda = 0
	cfg.Models = models
	cfg.Parallelism = 1
	return cfg
}

func TestRunContextAlreadyCancelled(t *testing.T) {
	p, err := New(contextConfig(slowRoster(1, 0, nil)))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.RunContext(ctx, testHistory(t)); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext on cancelled ctx: %v", err)
	}
	// Nothing was committed: Update must still refuse.
	if _, err := p.Update(testHistory(t)); !errors.Is(err, ErrNotRun) {
		t.Fatalf("Update after cancelled Run: %v", err)
	}
}

func TestRunContextCancelMidTraining(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	// The first Fit cancels the context; the remaining models must be
	// skipped and the run must report the cancellation.
	roster := slowRoster(8, 10*time.Millisecond, func() { cancel() })
	p, err := New(contextConfig(roster))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := p.RunContext(ctx, testHistory(t)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunContext returned %v", err)
	}
	// 8 × 10ms serial fits would take ≥80ms; cancellation after the
	// first must come back well before that.
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("cancelled run took %v", took)
	}
	if _, err := p.Update(testHistory(t)); !errors.Is(err, ErrNotRun) {
		t.Fatalf("pipeline committed state from a cancelled run: %v", err)
	}
}

func TestUpdateContextCancelMidTraining(t *testing.T) {
	h := testHistory(t)
	failed := h.FailedRuns()
	if len(failed) < 3 {
		t.Skipf("only %d failed runs", len(failed))
	}
	prefix := &trace.History{Runs: append([]trace.Run(nil), failed[:len(failed)-1]...)}
	full := &trace.History{Runs: failed}

	ctx, cancel := context.WithCancel(context.Background())
	var fits int
	roster := slowRoster(4, 0, func() {
		fits++
		if fits > 4 { // first 4 fits belong to Run; cancel during Update
			cancel()
		}
	})
	cfg := contextConfig(roster)
	// Per-row splitting guarantees the appended runs contribute training
	// rows, so Update actually reaches the per-model phase.
	cfg.SplitMode = aggregate.SplitByRow
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(prefix); err != nil {
		t.Fatal(err)
	}
	if _, err := p.UpdateContext(ctx, full); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled UpdateContext returned %v", err)
	}
	// The pipeline stays self-consistent: a retry on a fresh context
	// succeeds and reports every model trained.
	rep, err := p.Update(full)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Results {
		if rep.Results[i].Err != nil {
			t.Fatalf("%s: %v after retry", rep.Results[i].Spec.Name, rep.Results[i].Err)
		}
	}
}

func TestUpdateSurfacesUpdateInfo(t *testing.T) {
	h := testHistory(t)
	failed := h.FailedRuns()
	if len(failed) < 3 {
		t.Skipf("only %d failed runs", len(failed))
	}
	prefix := &trace.History{Runs: append([]trace.Run(nil), failed[:len(failed)-1]...)}
	full := &trace.History{Runs: failed}

	p, err := New(updateConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep0, err := p.Run(prefix)
	if err != nil {
		t.Fatal(err)
	}
	if rep0.Aggregation != p.cfg.Aggregation {
		t.Fatalf("Run report aggregation %+v, want %+v", rep0.Aggregation, p.cfg.Aggregation)
	}
	rep, err := p.Update(full)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Aggregation != p.cfg.Aggregation {
		t.Fatalf("Update report aggregation %+v", rep.Aggregation)
	}
	res := rep.ByName("svm2", AllParams)
	if res == nil || res.Err != nil {
		t.Fatalf("svm2 missing or failed: %+v", res)
	}
	if !res.Update.Incremental || res.Update.DriftRefit {
		t.Fatalf("svm2 update info %+v, want incremental without drift refit", res.Update)
	}
	if rep.TrainRows > rep0.TrainRows && res.Update.DriftScore <= 0 {
		t.Fatalf("svm2 drift score %v, want > 0 (drift is measured on every appended batch)", res.Update.DriftScore)
	}
}

// TestUpdateNoNewDataSkipsGenuineFailures pins the repair semantics: a
// no-new-data Update re-trains models skipped by a cancelled context,
// but never re-runs a model that genuinely failed on this data.
func TestUpdateNoNewDataSkipsGenuineFailures(t *testing.T) {
	var fitCalls atomic.Int64
	failSpec := ModelSpec{
		Name:        "alwaysfails",
		DisplayName: "alwaysfails",
		New: func() (ml.Regressor, error) {
			return &slowModel{onFit: func() { fitCalls.Add(1) }}, nil
		},
	}
	roster := append(slowRoster(1, 0, nil), failSpec)
	roster[1].New = func() (ml.Regressor, error) {
		fitCalls.Add(1)
		return nil, errors.New("constructor always fails")
	}
	p, err := New(contextConfig(roster))
	if err != nil {
		t.Fatal(err)
	}
	h := testHistory(t)
	rep, err := p.Run(h)
	if err != nil {
		t.Fatal(err)
	}
	if res := rep.ByName("alwaysfails", AllParams); res == nil || res.Err == nil {
		t.Fatalf("failing model did not record its error: %+v", res)
	}
	calls := fitCalls.Load()
	for i := 0; i < 3; i++ {
		if _, err := p.Update(h); err != nil {
			t.Fatal(err)
		}
	}
	if got := fitCalls.Load(); got != calls {
		t.Fatalf("no-new-data Update re-ran a genuinely failing model: %d -> %d construction attempts", calls, got)
	}
}
