package core

import (
	"repro/internal/aggregate"
)

// Datasets returns deep copies of the train and validation datasets the
// pipeline currently retains for a feature-set family (the sliding
// window after any Update-driven evictions and redraws). ok is false
// before the first successful Run, or for LassoParams when the reduced
// family is absent (SelectionLambda 0, or a selection that kept no
// features).
//
// The copies are independent of pipeline state, so callers can refit
// models on them — the hook external harnesses use to verify that an
// update's incremental result matches a from-scratch fit on the same
// window (e.g. the SplitRedrawn parity assertion in the fleet
// simulator).
func (p *Pipeline) Datasets(fs FeatureSet) (train, val *aggregate.Dataset, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.st == nil {
		return nil, nil, false
	}
	switch fs {
	case AllParams:
		train, val = p.st.train, p.st.val
	case LassoParams:
		train, val = p.st.redTrain, p.st.redVal
	}
	if train == nil || val == nil {
		return nil, nil, false
	}
	return cloneDataset(train), cloneDataset(val), true
}

// cloneDataset deep-copies a dataset.
func cloneDataset(d *aggregate.Dataset) *aggregate.Dataset {
	out := &aggregate.Dataset{
		ColNames: append([]string(nil), d.ColNames...),
		RTTF:     append([]float64(nil), d.RTTF...),
		Run:      append([]int(nil), d.Run...),
		AggTgen:  append([]float64(nil), d.AggTgen...),
		X:        make([][]float64, len(d.X)),
	}
	for i, row := range d.X {
		out.X[i] = append([]float64(nil), row...)
	}
	return out
}
