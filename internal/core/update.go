package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/aggregate"
	"repro/internal/featsel"
	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/randx"
	"repro/internal/trace"
)

// ErrNotRun is returned by Update on a pipeline that has not executed
// Run yet.
var ErrNotRun = errors.New("core: Update before Run")

// Update retrains the pipeline incrementally on a history that extends
// the one Run consumed: runs beyond the ones already seen are
// aggregated, labeled, split, and folded into the retained state, and
// every model is brought up to date — models implementing
// ml.IncrementalRegressor (LS-SVM, Lasso) extend their fit at a cost
// scaling with the new rows, the rest refit on the combined training
// set — then everything re-validates on the grown validation set. The
// regularization path and the λ-selection recompute from the
// incrementally maintained covariance, so feature selection never
// revisits the row history either; when the surviving feature set
// changes, the reduced-family models refit from scratch on the new
// projection.
//
// The runs already consumed must be unchanged (completed runs are
// immutable in the paper's collection loop; feed new failure runs as
// they finish, e.g. from the FMS side of the live monitor). New runs
// are assigned to the train/validation side by a deterministic
// per-run (or per-row, for SplitByRow) draw from SplitSeed, so the
// assignment of existing data never changes as more arrives. A call
// with no new labeled data returns the previous report unchanged.
func (p *Pipeline) Update(h *trace.History) (*Report, error) {
	return p.UpdateContext(context.Background(), h)
}

// UpdateContext is Update with cancellation. Before the new rows are
// committed into the retained state, cancellation aborts cleanly with
// nothing changed. Once committed, the per-model training phase checks
// ctx between models: models not reached record ctx's error as their
// per-model Err (the next Update refits them from the combined set),
// the partial report is committed so the pipeline state stays
// self-consistent, and ctx's error is returned.
func (p *Pipeline) UpdateContext(ctx context.Context, h *trace.History) (*Report, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.st
	if st == nil {
		return nil, ErrNotRun
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(h.Runs) < st.seenRuns {
		return nil, fmt.Errorf("core: history has %d runs, fewer than the %d already consumed", len(h.Runs), st.seenRuns)
	}
	if len(h.Runs) == st.seenRuns {
		return p.repair(ctx, st)
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}

	// Aggregate only the new runs (§III-B on the delta).
	sub := &trace.History{Runs: h.Runs[st.seenRuns:]}
	newDs, err := aggregate.Aggregate(sub, p.cfg.Aggregation)
	switch {
	case errors.Is(err, aggregate.ErrNoData):
		st.seenRuns = len(h.Runs)
		return p.repair(ctx, st)
	case err != nil:
		return nil, fmt.Errorf("core: aggregation: %w", err)
	}
	newDs = aggregate.DropUnlabeled(newDs)
	for i := range newDs.Run {
		newDs.Run[i] += st.seenRuns // back to history-global run indices
	}
	if newDs.NumRows() == 0 {
		st.seenRuns = len(h.Runs)
		return p.repair(ctx, st)
	}

	newTrain, newVal, err := p.assignNew(newDs, st)
	if err != nil {
		return nil, err
	}

	// Sliding window (Config.Window): decide which leading runs leave
	// the retained state this round. New rows already outside the
	// window never enter it. A slide that would leave either the
	// training or the validation side empty is resolved by a stable,
	// seeded re-draw of the surviving runs' split assignment under
	// SplitByRun (redrawSplit — the starvation valve), and deferred
	// until more data arrives only when a re-draw is impossible (a
	// single surviving run, or a per-row split).
	winStart := st.windowStart
	evictTrain, evictVal := 0, 0
	var redraw *redrawPlan
	if p.cfg.Window.Bounded() {
		if s := p.cfg.Window.start(h.Runs); s > winStart {
			nt, nv := dropRunsBefore(newTrain, s), dropRunsBefore(newVal, s)
			et, ev := rowsBefore(st.train, s), rowsBefore(st.val, s)
			trainLeft := st.train.NumRows() - et + nt.NumRows()
			valLeft := st.val.NumRows() - ev + nv.NumRows()
			switch {
			case trainLeft > 0 && valLeft > 0:
				winStart, evictTrain, evictVal = s, et, ev
				newTrain, newVal = nt, nv
			case p.cfg.SplitMode == aggregate.SplitByRun && trainLeft+valLeft > 0:
				// Every surviving run drew the same split side: re-draw
				// their assignment instead of deferring the eviction
				// indefinitely (a small MaxRuns window can stay starved
				// for arbitrarily many rounds otherwise).
				if plan, ok := p.redrawSplit(st, s, et, ev, nt, nv); ok {
					redraw = plan
					winStart, evictTrain, evictVal = s, et, ev
					newTrain, newVal = plan.newTrain, plan.newVal
				}
			}
		}
	}
	// The departing training rows are captured (cheap header copies)
	// before the retained slices are compacted: the covariance
	// downdates and the lasso-family sliding models need the rows
	// themselves, not just the count.
	evTrainX := append([][]float64(nil), st.train.X[:evictTrain]...)
	evTrainY := append([]float64(nil), st.train.RTTF[:evictTrain]...)

	// Fallible feature-selection phase first, so an error here leaves
	// the retained state untouched and a retry sees the same history
	// (Cov.Append and Cov.Evict validate before mutating, and by
	// construction the evicted rows always match the state). This is
	// also the last clean cancellation point.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if st.cov != nil && newTrain.NumRows() > 0 {
		if err := st.cov.Append(newTrain.X, newTrain.RTTF); err != nil {
			return nil, fmt.Errorf("core: extending feature covariance: %w", err)
		}
	}
	if st.cov != nil && evictTrain > 0 {
		if err := st.cov.Evict(evTrainX, evTrainY); err != nil {
			return nil, fmt.Errorf("core: downdating feature covariance: %w", err)
		}
	}
	// A split re-draw moves whole retained runs between the sides; the
	// covariance follows with the same rank-1 machinery (arbitrary
	// rows, not just the window prefix), so feature selection still
	// never rescans the row history.
	if st.cov != nil && redraw != nil {
		if redraw.moveOut.NumRows() > 0 {
			if err := st.cov.Evict(redraw.moveOut.X, redraw.moveOut.RTTF); err != nil {
				return nil, fmt.Errorf("core: re-draw covariance downdate: %w", err)
			}
		}
		if redraw.moveIn.NumRows() > 0 {
			if err := st.cov.Append(redraw.moveIn.X, redraw.moveIn.RTTF); err != nil {
				return nil, fmt.Errorf("core: re-draw covariance update: %w", err)
			}
		}
	}
	rep := &Report{Aggregation: p.cfg.Aggregation}
	if len(p.cfg.FeatureLambdas) > 0 {
		rep.Path, err = featsel.PathFromCov(st.cov, st.train.ColNames, p.cfg.FeatureLambdas)
		if err != nil {
			return nil, fmt.Errorf("core: feature selection path: %w", err)
		}
	}
	var sel featsel.PathPoint
	if p.cfg.SelectionLambda > 0 {
		if sel, err = selectionAt(st.cov, st.train.ColNames, p.cfg.SelectionLambda); err != nil {
			return nil, err
		}
	}

	// Commit the new rows into the retained state and slide the window
	// forward. Everything below projects by column names taken from the
	// same datasets, so it cannot fail on consistent state. A re-draw
	// round swaps in the rebuilt datasets instead: the surviving rows
	// changed sides, not just grew/shrank at the edges.
	st.seenRuns = len(h.Runs)
	st.rowsSeen += newDs.NumRows()
	if redraw == nil {
		appendRows(st.train, newTrain)
		appendRows(st.val, newVal)
		evictRows(st.train, evictTrain)
		evictRows(st.val, evictVal)
	} else {
		st.train, st.val = redraw.train, redraw.val
		rep.SplitRedrawn = true
	}
	st.windowStart = winStart
	rep.TrainRows = st.train.NumRows()
	rep.ValRows = st.val.NumRows()
	rep.Columns = st.train.NumCols()
	rep.WindowStart = winStart
	rep.SMAEThreshold = metrics.RelativeThreshold(st.val.RTTF, p.cfg.SMAEFraction)

	families := []family{{fs: AllParams, train: st.train, val: st.val}}
	deltas := map[FeatureSet]famDelta{AllParams: {newRows: newTrain, evictX: evTrainX, evictY: evTrainY}}
	rebuilt := map[FeatureSet]bool{}
	if p.cfg.SelectionLambda > 0 {
		prev := st.rep.Selection
		rep.Selection = sel
		switch {
		case sel.NumSelected() == 0:
			// Selection collapsed to nothing: reduced family disappears.
			st.redTrain, st.redVal = nil, nil
		case st.redTrain != nil && sameSelection(prev.Selected, sel.Selected) && redraw == nil:
			// Same surviving features: extend the retained projections
			// with the projected new rows only — incremental models
			// keep their history and nothing rescans it. The reduced
			// datasets mirror the full ones row for row, so the same
			// prefix leaves them.
			evRedX := append([][]float64(nil), st.redTrain.X[:evictTrain]...)
			evRedY := append([]float64(nil), st.redTrain.RTTF[:evictTrain]...)
			newRed, err := newTrain.Project(sel.Selected)
			if err != nil {
				return nil, fmt.Errorf("core: projecting new rows: %w", err)
			}
			newRedVal, err := newVal.Project(sel.Selected)
			if err != nil {
				return nil, fmt.Errorf("core: projecting new rows: %w", err)
			}
			appendRows(st.redTrain, newRed)
			appendRows(st.redVal, newRedVal)
			evictRows(st.redTrain, evictTrain)
			evictRows(st.redVal, evictVal)
			families = append(families, family{fs: LassoParams, train: st.redTrain, val: st.redVal})
			deltas[LassoParams] = famDelta{newRows: newRed, evictX: evRedX, evictY: evRedY}
		default:
			// Selection changed (or the family is new): the projected
			// history changes shape, so the whole history reprojects
			// and the reduced models refit from scratch.
			redTrain, err := st.train.Project(sel.Selected)
			if err != nil {
				return nil, fmt.Errorf("core: projecting training set: %w", err)
			}
			redVal, err := st.val.Project(sel.Selected)
			if err != nil {
				return nil, fmt.Errorf("core: projecting validation set: %w", err)
			}
			st.redTrain, st.redVal = redTrain, redVal
			families = append(families, family{fs: LassoParams, train: redTrain, val: redVal})
			rebuilt[LassoParams] = true
		}
	} else {
		st.redTrain, st.redVal = nil, nil
	}
	if redraw != nil {
		// The training sets changed by run moves, not by an
		// append/evict-prefix delta, so the in-place model paths do not
		// apply: every model refits from scratch on the re-drawn window
		// (bounded by the window, and rare — one refit per starvation
		// event, instead of a starved window forever).
		rebuilt[AllParams] = true
	}

	// Bring every (model × family) pair up to date on a bounded pool.
	type job struct {
		order int
		spec  ModelSpec
		fam   family
	}
	var jobs []job
	for _, fam := range families {
		for _, spec := range p.cfg.Models {
			jobs = append(jobs, job{order: len(jobs), spec: spec, fam: fam})
		}
	}
	results := make([]ModelResult, len(jobs))
	workers := p.cfg.Parallelism
	if workers <= 0 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var wg sync.WaitGroup
	ch := make(chan job)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				if err := ctx.Err(); err != nil {
					// Cancelled mid-update: record the skip so the next
					// Update refits this model from the combined set.
					results[j.order] = ModelResult{Spec: j.spec, Features: j.fam.fs, Err: err}
					continue
				}
				prior := st.rep.ByName(j.spec.Name, j.fam.fs)
				if rebuilt[j.fam.fs] {
					prior = nil
				}
				results[j.order] = p.updateOne(j.spec, j.fam, prior, deltas[j.fam.fs], rep.SMAEThreshold)
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()

	sort.SliceStable(results, func(i, j int) bool {
		if results[i].Features != results[j].Features {
			return results[i].Features == AllParams
		}
		return false
	})
	rep.Results = results
	st.rep = rep
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// repair is the no-new-data tail of Update: normally it just hands back
// the retained report, but models skipped by a cancelled UpdateContext
// (their Err is the context error) are refit from scratch on the
// retained datasets, so a retry after cancellation converges to a fully
// trained report. Genuine training failures are NOT retried — they
// failed on this exact data and would only burn the training cost
// again. Caller holds p.mu.
func (p *Pipeline) repair(ctx context.Context, st *pipeState) (*Report, error) {
	broken := false
	for i := range st.rep.Results {
		if cancelledResult(&st.rep.Results[i]) {
			broken = true
			break
		}
	}
	if !broken {
		return st.rep, nil
	}
	famOf := map[FeatureSet]family{AllParams: {fs: AllParams, train: st.train, val: st.val}}
	if st.redTrain != nil {
		famOf[LassoParams] = family{fs: LassoParams, train: st.redTrain, val: st.redVal}
	}
	for i := range st.rep.Results {
		res := &st.rep.Results[i]
		if !cancelledResult(res) {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		fam, ok := famOf[res.Features]
		if !ok {
			continue // family no longer exists (selection collapsed)
		}
		*res = p.updateOne(res.Spec, fam, nil, famDelta{}, st.rep.SMAEThreshold)
	}
	return st.rep, nil
}

// cancelledResult reports whether a result's error came from a
// cancelled context rather than the model itself.
func cancelledResult(res *ModelResult) bool {
	return res.Err != nil &&
		(errors.Is(res.Err, context.Canceled) || errors.Is(res.Err, context.DeadlineExceeded))
}

// famDelta is what changed for one training-set family this round:
// the appended rows and the evicted leading rows (with their targets,
// for learners that summarize the history).
type famDelta struct {
	newRows *aggregate.Dataset
	evictX  [][]float64
	evictY  []float64
}

// updateOne brings one model up to date: a sliding-window update
// (ml.WindowedRegressor) when the window evicted rows, an incremental
// append (ml.IncrementalRegressor) when it only grew, a from-scratch
// refit on the retained window otherwise (or when the in-place path
// fails), then a full re-validation. Training time records what this
// round actually cost — the headline number incremental retraining
// shrinks.
func (p *Pipeline) updateOne(spec ModelSpec, fam family, prior *ModelResult, d famDelta, threshold float64) ModelResult {
	res := ModelResult{Spec: spec, Features: fam.fs}
	evict := len(d.evictX)
	newCount := 0
	if d.newRows != nil {
		newCount = d.newRows.NumRows()
	}
	var model ml.Regressor
	tTrain := metrics.StartTimer()
	if prior != nil && prior.Err == nil {
		switch {
		case newCount == 0 && evict == 0:
			model = prior.Model // nothing changed on the training side
			res.Update = ml.UpdateInfo{Incremental: true}
		case evict > 0:
			if wr, ok := prior.Model.(ml.WindowedRegressor); ok {
				var nx [][]float64
				var ny []float64
				if d.newRows != nil {
					nx, ny = d.newRows.X, d.newRows.RTTF
				}
				if err := wr.UpdateWindow(nx, ny, d.evictX, d.evictY); err == nil {
					model = wr
					res.Update = ml.UpdateInfo{Incremental: true, Evicted: evict}
					if ur, ok := wr.(ml.UpdateReporter); ok {
						res.Update = ur.LastUpdate()
					}
				}
			}
			// Models that cannot slide (or whose slide failed) refit
			// from scratch below — on the surviving window only, so
			// their cost is bounded too.
		default:
			if inc, ok := prior.Model.(ml.IncrementalRegressor); ok {
				if err := inc.Update(d.newRows.X, d.newRows.RTTF); err == nil {
					model = inc
					res.Update = ml.UpdateInfo{Incremental: true}
					if ur, ok := inc.(ml.UpdateReporter); ok {
						res.Update = ur.LastUpdate()
					}
				}
			}
			// A failed incremental update (e.g. a border that breaks
			// positive definiteness) leaves the model unchanged; fall
			// through to the from-scratch refit.
		}
	}
	if model == nil {
		m, err := spec.New()
		if err != nil {
			res.Err = fmt.Errorf("core: constructing %s: %w", spec.Name, err)
			return res
		}
		if err := m.Fit(fam.train.X, fam.train.RTTF); err != nil {
			res.Err = fmt.Errorf("core: training %s/%s: %w", spec.Name, fam.fs, err)
			return res
		}
		model = m
	}
	trainDur := tTrain.Elapsed()

	tVal := metrics.StartTimer()
	predicted := ml.PredictAll(model, fam.val.X)
	report, err := metrics.Evaluate(predicted, fam.val.RTTF, threshold)
	if err != nil {
		res.Err = fmt.Errorf("core: validating %s/%s: %w", spec.Name, fam.fs, err)
		return res
	}
	report.ValidationTime = tVal.Elapsed()
	report.TrainingTime = trainDur

	res.Model = model
	res.Report = report
	res.Predicted = predicted
	res.Observed = ml.CloneVector(fam.val.RTTF)
	return res
}

// assignNew splits newly aggregated rows into train/validation parts
// with a stable per-run (SplitByRun) or per-row (SplitByRow) draw:
// each unit's side depends only on SplitSeed and its identity, never
// on how much data arrived before or after it.
func (p *Pipeline) assignNew(ds *aggregate.Dataset, st *pipeState) (train, val *aggregate.Dataset, err error) {
	src := randx.New(p.cfg.SplitSeed)
	inVal := make([]bool, ds.NumRows())
	switch p.cfg.SplitMode {
	case aggregate.SplitByRun:
		byRun := map[int]bool{}
		for i, r := range ds.Run {
			side, ok := byRun[r]
			if !ok {
				side = src.Fork(uint64(r)).Float64() < p.cfg.ValidationFrac
				byRun[r] = side
			}
			inVal[i] = side
		}
	case aggregate.SplitByRow:
		for i := range inVal {
			inVal[i] = src.Fork(uint64(st.rowsSeen+i)).Float64() < p.cfg.ValidationFrac
		}
	default:
		return nil, nil, fmt.Errorf("core: unknown split mode %d", p.cfg.SplitMode)
	}
	return subsetRows(ds, inVal, false), subsetRows(ds, inVal, true), nil
}

// redrawPlan is the outcome of a split re-draw (the SplitByRun
// starvation valve): the rebuilt retained datasets, the new rows
// re-assigned under the fresh draw, and the retained rows that changed
// sides (for the covariance rank-1 moves).
type redrawPlan struct {
	train, val       *aggregate.Dataset // final retained datasets, run-ordered
	newTrain, newVal *aggregate.Dataset // this round's new rows per re-drawn side
	moveOut, moveIn  *aggregate.Dataset // retained rows moving train→val / val→train
}

// redrawSplit resolves validation-side starvation under SplitByRun:
// when every run surviving the slide to cutoff s drew the same split
// side, it re-draws the surviving runs' assignment with a stable,
// seeded draw — side(run, round) is a pure function of SplitSeed, the
// run's history-global index, and the first re-draw round on which
// both sides come out non-empty — and rebuilds the retained datasets
// accordingly. Runs move whole (the SplitByRun contract), rows stay in
// run order on both sides, and the same history through the same
// config re-draws identically. It reports false when no re-draw can
// help: fewer than two surviving runs (one run cannot populate two
// sides; the slide stays deferred as before).
//
// st.train/st.val are read, not mutated: the caller commits the
// plan's datasets only after the fallible phases have passed.
func (p *Pipeline) redrawSplit(st *pipeState, s, et, ev int, nt, nv *aggregate.Dataset) (*redrawPlan, bool) {
	survTrain := viewFromRow(st.train, et)
	survVal := viewFromRow(st.val, ev)
	parts := []*aggregate.Dataset{survTrain, survVal, nt, nv}
	runSet := map[int]bool{}
	for _, d := range parts {
		for _, r := range d.Run {
			runSet[r] = true
		}
	}
	if len(runSet) < 2 {
		return nil, false
	}
	runs := make([]int, 0, len(runSet))
	for r := range runSet {
		runs = append(runs, r)
	}
	sort.Ints(runs)
	inVal := make(map[int]bool, len(runs))
	balanced := false
	for round := uint64(1); round <= 64 && !balanced; round++ {
		nTrain, nVal := 0, 0
		for _, r := range runs {
			v := randx.New(p.cfg.SplitSeed).Fork(uint64(r)).Fork(round).Float64() < p.cfg.ValidationFrac
			inVal[r] = v
			if v {
				nVal++
			} else {
				nTrain++
			}
		}
		balanced = nTrain > 0 && nVal > 0
	}
	if !balanced {
		// Degenerate ValidationFrac pushed every seeded round to one
		// side (p^64-level unlikely otherwise): fall back to the
		// deterministic minimal move — the newest run validates, the
		// rest train. Still a pure function of the surviving run set.
		for i, r := range runs {
			inVal[r] = i == len(runs)-1
		}
	}
	plan := &redrawPlan{
		newTrain: mergeByRun(filterRunSide(nt, inVal, false), filterRunSide(nv, inVal, false)),
		newVal:   mergeByRun(filterRunSide(nt, inVal, true), filterRunSide(nv, inVal, true)),
		moveOut:  filterRunSide(survTrain, inVal, true),
		moveIn:   filterRunSide(survVal, inVal, false),
	}
	// Final retained sides: the survivors that kept their side merged
	// (by run index) with the ones moving in, then the re-assigned new
	// rows — new runs always index past the retained ones.
	plan.train = mergeByRun(filterRunSide(survTrain, inVal, false), plan.moveIn)
	appendRows(plan.train, plan.newTrain)
	plan.val = mergeByRun(filterRunSide(survVal, inVal, true), plan.moveOut)
	appendRows(plan.val, plan.newVal)
	return plan, true
}

// viewFromRow returns ds without its leading k rows as a re-sliced
// view (no copy; callers treat it as read-only).
func viewFromRow(ds *aggregate.Dataset, k int) *aggregate.Dataset {
	return &aggregate.Dataset{
		ColNames: ds.ColNames,
		X:        ds.X[k:],
		RTTF:     ds.RTTF[k:],
		Run:      ds.Run[k:],
		AggTgen:  ds.AggTgen[k:],
	}
}

// filterRunSide returns the rows of ds whose run drew the given side
// (fresh slice headers, run order preserved).
func filterRunSide(ds *aggregate.Dataset, inVal map[int]bool, val bool) *aggregate.Dataset {
	mask := make([]bool, len(ds.Run))
	for i, r := range ds.Run {
		mask[i] = inVal[r] == val
	}
	return subsetRows(ds, mask, true)
}

// mergeByRun merges two run-ordered datasets with disjoint run sets
// into one run-ordered dataset (two-pointer merge; a run's rows stay
// contiguous and in order because each run lives wholly in a or b).
func mergeByRun(a, b *aggregate.Dataset) *aggregate.Dataset {
	out := &aggregate.Dataset{ColNames: a.ColNames}
	if out.ColNames == nil {
		out.ColNames = b.ColNames
	}
	i, j := 0, 0
	for i < len(a.X) || j < len(b.X) {
		if j >= len(b.X) || (i < len(a.X) && a.Run[i] <= b.Run[j]) {
			out.X = append(out.X, a.X[i])
			out.RTTF = append(out.RTTF, a.RTTF[i])
			out.Run = append(out.Run, a.Run[i])
			out.AggTgen = append(out.AggTgen, a.AggTgen[i])
			i++
		} else {
			out.X = append(out.X, b.X[j])
			out.RTTF = append(out.RTTF, b.RTTF[j])
			out.Run = append(out.Run, b.Run[j])
			out.AggTgen = append(out.AggTgen, b.AggTgen[j])
			j++
		}
	}
	return out
}

// sameSelection reports whether two selections name the same columns
// in the same order (projections are order-sensitive).
func sameSelection(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// rowsBefore counts the leading rows whose run index precedes start.
// Rows are appended in run order, so they always form a prefix.
func rowsBefore(d *aggregate.Dataset, start int) int {
	n := 0
	for _, r := range d.Run {
		if r >= start {
			break
		}
		n++
	}
	return n
}

// dropRunsBefore returns ds without the leading rows of runs before
// start (a re-sliced view; ds is a freshly aggregated delta, never the
// retained state).
func dropRunsBefore(ds *aggregate.Dataset, start int) *aggregate.Dataset {
	k := rowsBefore(ds, start)
	if k == 0 {
		return ds
	}
	return &aggregate.Dataset{
		ColNames: ds.ColNames,
		X:        ds.X[k:],
		RTTF:     ds.RTTF[k:],
		Run:      ds.Run[k:],
		AggTgen:  ds.AggTgen[k:],
	}
}

// evictRows removes the leading k rows of a retained dataset by
// copying the survivors into fresh backing. Fresh, not in place, for
// two reasons: a plain re-slice would pin the evicted rows in the old
// backing array (the opposite of the bounded-memory contract), and an
// in-place shift would corrupt the sibling dataset — Project shares
// the label/bookkeeping slices between the full and reduced datasets.
// The allocation is bounded by the surviving window.
func evictRows(d *aggregate.Dataset, k int) {
	if k <= 0 {
		return
	}
	d.X = append([][]float64(nil), d.X[k:]...)
	d.RTTF = append([]float64(nil), d.RTTF[k:]...)
	d.Run = append([]int(nil), d.Run[k:]...)
	d.AggTgen = append([]float64(nil), d.AggTgen[k:]...)
}

// appendRows extends dst with src's rows (same column layout).
func appendRows(dst, src *aggregate.Dataset) {
	dst.X = append(dst.X, src.X...)
	dst.RTTF = append(dst.RTTF, src.RTTF...)
	dst.Run = append(dst.Run, src.Run...)
	dst.AggTgen = append(dst.AggTgen, src.AggTgen...)
}

// subsetRows filters a dataset by mask value.
func subsetRows(d *aggregate.Dataset, mask []bool, keep bool) *aggregate.Dataset {
	out := &aggregate.Dataset{ColNames: d.ColNames}
	for i := range d.X {
		if mask[i] == keep {
			out.X = append(out.X, d.X[i])
			out.RTTF = append(out.RTTF, d.RTTF[i])
			out.Run = append(out.Run, d.Run[i])
			out.AggTgen = append(out.AggTgen, d.AggTgen[i])
		}
	}
	return out
}
