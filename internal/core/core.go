// Package core implements the F2PM pipeline itself (paper §III, Figure 1):
// starting from a monitored data history, it aggregates datapoints and
// adds the derived metrics (§III-B), optionally performs Lasso-based
// feature selection (§III-C), trains the configured set of machine-learning
// methods on both the full and the reduced training sets, and validates
// every generated model with the §III-D metrics (MAE, RAE, MaxAE, S-MAE,
// training and validation time) so the user can pick the best-suited
// model.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/aggregate"
	"repro/internal/featsel"
	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/ml/lasso"
	"repro/internal/ml/linreg"
	"repro/internal/ml/lssvm"
	"repro/internal/ml/m5p"
	"repro/internal/ml/reptree"
	"repro/internal/ml/svm"
	"repro/internal/trace"
)

// FeatureSet distinguishes the two training-set families of the paper's
// Tables II-IV.
type FeatureSet string

// The two feature sets every model is trained on.
const (
	AllParams   FeatureSet = "all"   // "using all parameters"
	LassoParams FeatureSet = "lasso" // "using only parameters selected by Lasso"
)

// ModelSpec names a learning method and knows how to construct a fresh
// untrained instance of it.
type ModelSpec struct {
	// Name is the identifier used in reports ("linear", "m5p", ...).
	Name string
	// DisplayName is the paper's table label ("Linear Regression", ...).
	DisplayName string
	// New constructs an untrained model.
	New func() (ml.Regressor, error)
}

// DefaultModels returns the paper's six methods: Linear Regression, M5P,
// REP-Tree, SVM (ε-SVR), LS-SVM ("SVM2"), and Lasso-as-a-predictor at
// every λ in lassoLambdas (Table II lists λ = 10⁰..10⁹).
func DefaultModels(lassoLambdas []float64) []ModelSpec {
	specs := []ModelSpec{
		{Name: "linear", DisplayName: "Linear Regression", New: func() (ml.Regressor, error) { return linreg.New(), nil }},
		{Name: "m5p", DisplayName: "M5P", New: func() (ml.Regressor, error) { return m5p.New(m5p.DefaultOptions()) }},
		{Name: "reptree", DisplayName: "REP Tree", New: func() (ml.Regressor, error) { return reptree.New(reptree.DefaultOptions()) }},
		{Name: "svm", DisplayName: "SVM", New: func() (ml.Regressor, error) { return svm.New(svm.DefaultOptions()) }},
		{Name: "svm2", DisplayName: "SVM2", New: func() (ml.Regressor, error) { return lssvm.New(lssvm.DefaultOptions()) }},
	}
	for _, lam := range lassoLambdas {
		lam := lam
		specs = append(specs, ModelSpec{
			Name:        fmt.Sprintf("lasso-lambda-%g", lam),
			DisplayName: fmt.Sprintf("Lasso (λ = %g)", lam),
			New:         func() (ml.Regressor, error) { return lasso.New(lasso.DefaultOptions(lam)) },
		})
	}
	return specs
}

// WindowPolicy bounds the history a long-lived pipeline retains:
// Update evicts the oldest runs' rows from the retained datasets, the
// feature-selection covariance, and every sliding-capable model
// (ml.WindowedRegressor — LS-SVM via its Cholesky downdating, Lasso
// via covariance rank-1 downdates), so weeks of continuous retraining
// run at flat memory instead of unbounded growth. Models that cannot
// slide refit from scratch on the surviving window. Eviction is by
// whole runs (the train/validation split assigns whole runs, so the
// window stays split-consistent), and the newest run is always
// retained; a slide that would leave the training or validation set
// empty is deferred until more data arrives.
type WindowPolicy struct {
	// MaxRuns keeps at most the most recent MaxRuns runs
	// (0 = unbounded).
	MaxRuns int
	// MaxAgeSec bounds the monitored time the window spans: the oldest
	// runs are evicted until the summed durations (Run.Duration) of the
	// surviving runs fit within MaxAgeSec (0 = unbounded).
	MaxAgeSec float64
}

// Bounded reports whether the policy evicts anything at all.
func (w WindowPolicy) Bounded() bool { return w.MaxRuns > 0 || w.MaxAgeSec > 0 }

// Validate reports policy errors.
func (w WindowPolicy) Validate() error {
	if w.MaxRuns < 0 {
		return fmt.Errorf("core: WindowPolicy.MaxRuns must be non-negative, got %d", w.MaxRuns)
	}
	if w.MaxAgeSec < 0 {
		return fmt.Errorf("core: WindowPolicy.MaxAgeSec must be non-negative, got %v", w.MaxAgeSec)
	}
	return nil
}

// start returns the first run index the window retains.
func (w WindowPolicy) start(runs []trace.Run) int {
	n := len(runs)
	if n == 0 {
		return 0
	}
	start := 0
	if w.MaxRuns > 0 && n > w.MaxRuns {
		start = n - w.MaxRuns
	}
	if w.MaxAgeSec > 0 {
		var sum float64
		cut := n - 1 // the newest run always survives
		for i := n - 1; i >= start; i-- {
			sum += runs[i].Duration()
			if sum > w.MaxAgeSec {
				break
			}
			cut = i
		}
		if cut > start {
			start = cut
		}
	}
	return start
}

// Config assembles a pipeline.
type Config struct {
	// Aggregation is the §III-B configuration.
	Aggregation aggregate.Config
	// SplitMode and ValidationFrac control the train/validation split.
	SplitMode      aggregate.SplitMode
	ValidationFrac float64
	// SplitSeed makes the split reproducible.
	SplitSeed uint64
	// SMAEFraction is the S-MAE tolerance as a fraction of the mean
	// observed RTTF (the paper's Table II uses a 10% threshold).
	SMAEFraction float64
	// FeatureLambdas is the λ̄ grid for the regularization path
	// (Figure 4); empty disables the path computation.
	FeatureLambdas []float64
	// SelectionLambda is the λ whose surviving features form the
	// Lasso-reduced training set (the paper tabulates λ = 10⁹).
	// 0 disables the reduced-feature family entirely.
	SelectionLambda float64
	// Window bounds the retained history for long-lived incremental
	// pipelines (the zero value retains everything): Update evicts the
	// oldest runs past the policy from the datasets, the feature
	// covariance, and every model — sliding-capable models downdate in
	// place, the rest refit on the surviving window.
	Window WindowPolicy
	// Models is the method roster; nil uses DefaultModels(FeatureLambdas).
	Models []ModelSpec
	// Parallelism bounds concurrent model training (0 = serial).
	// DefaultConfig sets it to runtime.GOMAXPROCS(0) so the ~26
	// (model × family) pairs saturate the machine. Training is
	// deterministic either way — results are written into
	// roster-ordered slots — so only wall-clock timings vary with
	// scheduling.
	Parallelism int
}

// DefaultConfig mirrors the paper's experimental setup, with model
// training parallelized across all available CPUs.
func DefaultConfig() Config {
	return Config{
		Aggregation:     aggregate.DefaultConfig(),
		SplitMode:       aggregate.SplitByRun,
		ValidationFrac:  0.3,
		SplitSeed:       1,
		SMAEFraction:    0.10,
		FeatureLambdas:  featsel.LambdaGrid(0, 9),
		SelectionLambda: 1e9,
		Parallelism:     runtime.GOMAXPROCS(0),
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if err := c.Aggregation.Validate(); err != nil {
		return err
	}
	if c.ValidationFrac <= 0 || c.ValidationFrac >= 1 {
		return fmt.Errorf("core: ValidationFrac must be in (0,1), got %v", c.ValidationFrac)
	}
	if c.SMAEFraction < 0 {
		return fmt.Errorf("core: SMAEFraction must be non-negative, got %v", c.SMAEFraction)
	}
	if c.SelectionLambda < 0 {
		return fmt.Errorf("core: SelectionLambda must be non-negative, got %v", c.SelectionLambda)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("core: Parallelism must be non-negative, got %d", c.Parallelism)
	}
	return c.Window.Validate()
}

// ModelResult is one trained-and-validated model.
type ModelResult struct {
	// Spec identifies the method.
	Spec ModelSpec
	// Features says which training-set family was used.
	Features FeatureSet
	// Report carries the §III-D metrics.
	Report metrics.Report
	// Model is the trained model, usable for live prediction.
	Model ml.Regressor
	// Predicted and Observed are the validation-set outputs backing the
	// paper's Figure 5 scatter plots.
	Predicted []float64
	Observed  []float64
	// Err records a per-model training failure; the pipeline continues
	// with the remaining models.
	Err error
	// Update describes what the last Pipeline.Update did to this model
	// (incremental extension vs refit, standardizer drift); zero after
	// Run.
	Update ml.UpdateInfo
}

// Report is the pipeline output.
type Report struct {
	// TrainRows, ValRows, Columns describe the aggregated dataset.
	TrainRows, ValRows, Columns int
	// Aggregation is the windowing configuration the dataset was built
	// with — the config a deployment-side aggregator must reuse so live
	// rows match the training layout (serve.FromReport reads it).
	Aggregation aggregate.Config
	// Path is the Lasso regularization path over FeatureLambdas
	// computed on the training set (Figure 4).
	Path []featsel.PathPoint
	// Selection is the path point at SelectionLambda whose features
	// form the reduced training set (Table I).
	Selection featsel.PathPoint
	// SMAEThreshold is the absolute S-MAE tolerance applied, in seconds.
	SMAEThreshold float64
	// WindowStart is the history-global index of the first run the
	// retained sliding window covers (0 when the pipeline retains
	// everything; see Config.Window).
	WindowStart int
	// SplitRedrawn reports that this Update resolved a starved window
	// slide by re-drawing the surviving runs' train/validation
	// assignment (the SplitByRun starvation valve): every model was
	// refit from scratch on the re-drawn window this round.
	SplitRedrawn bool
	// Results holds one entry per (model × feature set), ordered by
	// model roster then feature set.
	Results []ModelResult
}

// Best returns the successful result with the lowest S-MAE, or nil.
func (r *Report) Best() *ModelResult {
	var best *ModelResult
	for i := range r.Results {
		res := &r.Results[i]
		if res.Err != nil {
			continue
		}
		if best == nil || res.Report.SoftMAE < best.Report.SoftMAE {
			best = res
		}
	}
	return best
}

// ByName returns the result for a model name and feature set, or nil.
func (r *Report) ByName(name string, fs FeatureSet) *ModelResult {
	for i := range r.Results {
		res := &r.Results[i]
		if res.Spec.Name == name && res.Features == fs {
			return res
		}
	}
	return nil
}

// Pipeline is a configured F2PM instance. Run executes the full
// model-generation phase and retains its working state (datasets,
// lasso covariance, trained models), so Update can later extend the
// models with newly collected runs at a cost scaling with the new
// data — the paper's "regenerate models as new failure runs
// accumulate" loop made cheap. Run and Update are safe for concurrent
// use with each other but hand out reports sharing live model state.
type Pipeline struct {
	cfg Config

	mu sync.Mutex
	st *pipeState
}

// pipeState is what Run retains for incremental retraining.
type pipeState struct {
	seenRuns int // runs of the history consumed so far
	rowsSeen int // labeled rows consumed (stable SplitByRow assignment)
	// windowStart is the first run index the retained window covers
	// (rows of earlier runs have been evicted under Config.Window).
	windowStart int
	train       *aggregate.Dataset
	val         *aggregate.Dataset
	// redTrain/redVal are the Lasso-reduced family's datasets (nil when
	// the reduced family is absent).
	redTrain *aggregate.Dataset
	redVal   *aggregate.Dataset
	// cov is the training-set covariance behind the regularization
	// path and the selection, maintained incrementally.
	cov *lasso.Cov
	rep *Report
}

// New validates the configuration and returns a pipeline.
func New(cfg Config) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Models == nil {
		cfg.Models = DefaultModels(cfg.FeatureLambdas)
	}
	return &Pipeline{cfg: cfg}, nil
}

// ErrNoModels is returned when the roster is empty.
var ErrNoModels = errors.New("core: no models configured")

// SetWindow replaces the pipeline's retention policy at runtime — the
// Slide actuator of the autonomic loop: a supervisor that decides old
// runs no longer describe the fleet tightens the window and the next
// Update evicts past the new bound (loosening never resurrects evicted
// rows; they are gone). Safe for concurrent use with Run/Update.
func (p *Pipeline) SetWindow(w WindowPolicy) error {
	if err := w.Validate(); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cfg.Window = w
	return nil
}

// Window returns the currently configured retention policy.
func (p *Pipeline) Window() WindowPolicy {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cfg.Window
}

// Run executes the full pipeline on a data history.
func (p *Pipeline) Run(h *trace.History) (*Report, error) {
	return p.RunContext(context.Background(), h)
}

// RunContext is Run with cancellation: the training phase checks ctx
// between models (an individual Fit is never interrupted mid-solve),
// and a cancelled run returns ctx's error without committing any
// pipeline state.
func (p *Pipeline) RunContext(ctx context.Context, h *trace.History) (*Report, error) {
	if len(p.cfg.Models) == 0 {
		return nil, ErrNoModels
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(h.FailedRuns()) == 0 {
		return nil, trace.ErrNoFailedRuns
	}

	ds, err := aggregate.Aggregate(h, p.cfg.Aggregation)
	if err != nil {
		return nil, fmt.Errorf("core: aggregation: %w", err)
	}
	ds = aggregate.DropUnlabeled(ds)

	train, val, err := aggregate.Split(ds, p.cfg.SplitMode, p.cfg.ValidationFrac, p.cfg.SplitSeed)
	if err != nil {
		return nil, fmt.Errorf("core: split: %w", err)
	}

	rep := &Report{
		TrainRows:   train.NumRows(),
		ValRows:     val.NumRows(),
		Columns:     ds.NumCols(),
		Aggregation: p.cfg.Aggregation,
	}
	rep.SMAEThreshold = metrics.RelativeThreshold(val.RTTF, p.cfg.SMAEFraction)

	// Feature selection phase (§III-C) on the training set only. One
	// covariance build serves the whole path and the selection λ, and
	// is retained for incremental recomputation in Update.
	var cov *lasso.Cov
	if len(p.cfg.FeatureLambdas) > 0 || p.cfg.SelectionLambda > 0 {
		if cov, err = lasso.NewCov(train.X, train.RTTF); err != nil {
			return nil, fmt.Errorf("core: feature covariance: %w", err)
		}
	}
	if len(p.cfg.FeatureLambdas) > 0 {
		rep.Path, err = featsel.PathFromCov(cov, train.ColNames, p.cfg.FeatureLambdas)
		if err != nil {
			return nil, fmt.Errorf("core: feature selection path: %w", err)
		}
	}

	// Build the two training-set families.
	st := &pipeState{seenRuns: len(h.Runs), rowsSeen: ds.NumRows(), train: train, val: val, cov: cov}
	families := []family{{fs: AllParams, train: train, val: val}}
	if p.cfg.SelectionLambda > 0 {
		sel, redTrain, redVal, err := selectFamily(cov, train, val, p.cfg.SelectionLambda)
		if err != nil {
			return nil, err
		}
		rep.Selection = sel
		if redTrain != nil {
			st.redTrain, st.redVal = redTrain, redVal
			families = append(families, family{fs: LassoParams, train: redTrain, val: redVal})
		}
	}

	// Train every (model × family) pair on a bounded worker pool.
	type job struct {
		order int
		spec  ModelSpec
		fam   family
	}
	var jobs []job
	for _, fam := range families {
		for _, spec := range p.cfg.Models {
			jobs = append(jobs, job{order: len(jobs), spec: spec, fam: fam})
		}
	}
	results := make([]ModelResult, len(jobs))
	workers := p.cfg.Parallelism
	if workers <= 0 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var wg sync.WaitGroup
	ch := make(chan job)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				if ctx.Err() != nil {
					continue // cancelled: skip the remaining queue
				}
				results[j.order] = p.runOne(j.spec, j.fam.fs, j.fam.train, j.fam.val, rep.SMAEThreshold)
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Order: feature set (all first), then roster order — the paper's
	// table layout.
	sort.SliceStable(results, func(i, j int) bool {
		if results[i].Features != results[j].Features {
			return results[i].Features == AllParams
		}
		return false
	})
	rep.Results = results
	st.rep = rep
	p.mu.Lock()
	p.st = st
	p.mu.Unlock()
	return rep, nil
}

// family pairs a feature set with its train/validation datasets.
type family struct {
	fs         FeatureSet
	train, val *aggregate.Dataset
}

// selectionAt computes the selection path point at lambda (the
// features surviving the paper's λ-selection).
func selectionAt(cov *lasso.Cov, colNames []string, lambda float64) (featsel.PathPoint, error) {
	pts, err := featsel.PathFromCov(cov, colNames, []float64{lambda})
	if err != nil {
		return featsel.PathPoint{}, fmt.Errorf("core: feature selection: %w", err)
	}
	return pts[0], nil
}

// selectFamily computes the selection path point at lambda and, when
// the selection is non-empty, the projected train/validation datasets
// of the reduced family (nil datasets otherwise).
func selectFamily(cov *lasso.Cov, train, val *aggregate.Dataset, lambda float64) (featsel.PathPoint, *aggregate.Dataset, *aggregate.Dataset, error) {
	sel, err := selectionAt(cov, train.ColNames, lambda)
	if err != nil {
		return sel, nil, nil, err
	}
	if sel.NumSelected() == 0 {
		// λ killed everything: no reduced family, but the (empty)
		// selection still goes into the report.
		return sel, nil, nil, nil
	}
	redTrain, err := train.Project(sel.Selected)
	if err != nil {
		return sel, nil, nil, fmt.Errorf("core: projecting training set: %w", err)
	}
	redVal, err := val.Project(sel.Selected)
	if err != nil {
		return sel, nil, nil, fmt.Errorf("core: projecting validation set: %w", err)
	}
	return sel, redTrain, redVal, nil
}

// runOne trains and validates a single model.
func (p *Pipeline) runOne(spec ModelSpec, fs FeatureSet, train, val *aggregate.Dataset, threshold float64) ModelResult {
	res := ModelResult{Spec: spec, Features: fs}
	model, err := spec.New()
	if err != nil {
		res.Err = fmt.Errorf("core: constructing %s: %w", spec.Name, err)
		return res
	}
	tTrain := metrics.StartTimer()
	if err := model.Fit(train.X, train.RTTF); err != nil {
		res.Err = fmt.Errorf("core: training %s/%s: %w", spec.Name, fs, err)
		return res
	}
	trainDur := tTrain.Elapsed()

	tVal := metrics.StartTimer()
	predicted := ml.PredictAll(model, val.X)
	report, err := metrics.Evaluate(predicted, val.RTTF, threshold)
	if err != nil {
		res.Err = fmt.Errorf("core: validating %s/%s: %w", spec.Name, fs, err)
		return res
	}
	report.ValidationTime = tVal.Elapsed()
	report.TrainingTime = trainDur

	res.Model = model
	res.Report = report
	res.Predicted = predicted
	res.Observed = ml.CloneVector(val.RTTF)
	return res
}
