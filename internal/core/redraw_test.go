package core

import (
	"math"
	"testing"

	"repro/internal/aggregate"
	"repro/internal/featsel"
	"repro/internal/ml"
	"repro/internal/ml/lasso"
	"repro/internal/ml/lssvm"
	"repro/internal/trace"
)

// redrawConfig is a SplitByRun windowed configuration whose roster
// (linear, svm2, lasso — all deterministic fitters) keeps the
// from-scratch parity comparison exact.
func redrawConfig(maxRuns int) Config {
	cfg := fastConfig()
	cfg.Models = append(DefaultModels(nil)[:1:1],
		ModelSpec{Name: "svm2", DisplayName: "SVM2", New: func() (ml.Regressor, error) { return lssvm.New(lssvm.DefaultOptions()) }},
	)
	cfg.Models = append(cfg.Models, DefaultModels([]float64{1e5})[5:]...)
	cfg.Window = WindowPolicy{MaxRuns: maxRuns}
	return cfg
}

// driveToRedraw replays the failed runs one at a time through a fresh
// pipeline until an Update reports SplitRedrawn, returning the
// pipeline and that round's report.
func driveToRedraw(t *testing.T, failed []trace.Run) (*Pipeline, *Report) {
	t.Helper()
	p, err := New(redrawConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(&trace.History{Runs: append([]trace.Run(nil), failed[:3]...)}); err != nil {
		t.Fatal(err)
	}
	for cut := 4; cut <= len(failed); cut++ {
		rep, err := p.Update(&trace.History{Runs: append([]trace.Run(nil), failed[:cut]...)})
		if err != nil {
			t.Fatal(err)
		}
		if rep.SplitRedrawn {
			return p, rep
		}
	}
	t.Fatal("no Update round ever hit the starvation valve — the history no longer exercises the re-draw")
	return nil, nil
}

// TestSplitRedrawParity pins the SplitByRun starvation valve: when a
// window slide strands every surviving run on one split side, the
// round re-draws the assignment instead of deferring — and the
// resulting state must be indistinguishable from building it from
// scratch. Assertions: both sides non-empty with whole runs on one
// side each, window fully slid, the incrementally maintained feature
// covariance matches a from-scratch build over the re-drawn training
// rows at 1e-8 (via the regularization path), and every model matches
// a from-scratch fit on the re-drawn window at 1e-8.
func TestSplitRedrawParity(t *testing.T) {
	h := testHistory(t)
	failed := h.FailedRuns()
	if len(failed) < 6 {
		t.Skipf("only %d failed runs", len(failed))
	}
	p, rep := driveToRedraw(t, failed)

	if rep.TrainRows == 0 || rep.ValRows == 0 {
		t.Fatalf("re-draw left an empty side: %d/%d", rep.TrainRows, rep.ValRows)
	}
	// Whole runs per side, nothing from evicted runs, run order intact.
	sides := map[int]int{} // run -> side (1 train, 2 val)
	for _, ds := range []struct {
		d    *aggregate.Dataset
		side int
	}{{p.st.train, 1}, {p.st.val, 2}} {
		prev := -1
		for _, r := range ds.d.Run {
			if r < rep.WindowStart {
				t.Fatalf("row from evicted run %d (window starts at %d)", r, rep.WindowStart)
			}
			if r < prev {
				t.Fatalf("run order broken: %d after %d", r, prev)
			}
			prev = r
			if s, ok := sides[r]; ok && s != ds.side {
				t.Fatalf("run %d appears on both split sides", r)
			}
			sides[r] = ds.side
		}
	}

	// Stability: the same history through an identical pipeline re-draws
	// identically — the draw is a pure function of seed, run identity,
	// and the surviving run set.
	p2, rep2 := driveToRedraw(t, failed)
	if rep2.WindowStart != rep.WindowStart || rep2.TrainRows != rep.TrainRows || rep2.ValRows != rep.ValRows {
		t.Fatalf("re-draw unstable: %d/%d/%d vs %d/%d/%d",
			rep.WindowStart, rep.TrainRows, rep.ValRows, rep2.WindowStart, rep2.TrainRows, rep2.ValRows)
	}
	for i, r := range p.st.train.Run {
		if p2.st.train.Run[i] != r {
			t.Fatalf("re-draw unstable at train row %d: run %d vs %d", i, r, p2.st.train.Run[i])
		}
	}

	// Covariance parity: the rank-1 moved covariance vs a from-scratch
	// build over the re-drawn training rows, compared through the
	// regularization path.
	cov2, err := lasso.NewCov(p.st.train.X, p.st.train.RTTF)
	if err != nil {
		t.Fatal(err)
	}
	path2, err := featsel.PathFromCov(cov2, p.st.train.ColNames, p.cfg.FeatureLambdas)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Path) != len(path2) {
		t.Fatalf("path lengths %d vs %d", len(rep.Path), len(path2))
	}
	for i := range rep.Path {
		a, b := rep.Path[i], path2[i]
		if !sameSelection(a.Selected, b.Selected) {
			t.Fatalf("path[%d] (λ=%g): selection %v vs fresh %v", i, a.Lambda, a.Selected, b.Selected)
		}
		for name, w := range a.Weights {
			if d := math.Abs(w - b.Weights[name]); d > 1e-8*(1+math.Abs(w)) {
				t.Fatalf("path[%d] (λ=%g): weight %s diff %g", i, a.Lambda, name, d)
			}
		}
	}

	// Model parity: every result of the re-draw round must match a
	// from-scratch fit on the re-drawn window's datasets at 1e-8.
	famTrain := map[FeatureSet]*aggregate.Dataset{AllParams: p.st.train}
	famVal := map[FeatureSet]*aggregate.Dataset{AllParams: p.st.val}
	if p.st.redTrain != nil {
		famTrain[LassoParams], famVal[LassoParams] = p.st.redTrain, p.st.redVal
	}
	for i := range rep.Results {
		res := &rep.Results[i]
		if res.Err != nil {
			t.Fatalf("%s/%s: %v", res.Spec.Name, res.Features, res.Err)
		}
		train, ok := famTrain[res.Features]
		if !ok {
			continue
		}
		fresh, err := res.Spec.New()
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.Fit(train.X, train.RTTF); err != nil {
			t.Fatalf("fresh fit %s/%s: %v", res.Spec.Name, res.Features, err)
		}
		val := famVal[res.Features]
		for j, x := range val.X {
			want := fresh.Predict(x)
			got := res.Predicted[j]
			if d := math.Abs(got - want); d > 1e-8*(1+math.Abs(want)) {
				t.Fatalf("%s/%s: prediction %d diff %g (incremental %g vs from-scratch %g)",
					res.Spec.Name, res.Features, j, d, got, want)
			}
		}
	}

	// The re-draw unsticks the window: the next rounds keep sliding and
	// the pipeline keeps updating models incrementally where possible.
	_ = p2
}

// TestSplitRedrawSingleRunStillDefers pins the valve's limit: a
// one-run window cannot populate both sides, so the slide stays
// deferred exactly as before the re-draw existed.
func TestSplitRedrawSingleRunStillDefers(t *testing.T) {
	h := testHistory(t)
	failed := h.FailedRuns()
	if len(failed) < 4 {
		t.Skipf("only %d failed runs", len(failed))
	}
	p, err := New(redrawConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(&trace.History{Runs: append([]trace.Run(nil), failed[:3]...)}); err != nil {
		t.Fatal(err)
	}
	rep, err := p.Update(&trace.History{Runs: append([]trace.Run(nil), failed[:4]...)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrainRows == 0 || rep.ValRows == 0 {
		t.Fatalf("deferred eviction emptied a side: %d/%d", rep.TrainRows, rep.ValRows)
	}
	if rep.SplitRedrawn && rep.WindowStart == 3 {
		// A redraw with one surviving run would necessarily empty a
		// side; reaching here means the valve misfired.
		t.Fatal("single-run window re-drew the split")
	}
}
