package core

import (
	"math"
	"runtime"
	"sync"
	"testing"

	"repro/internal/aggregate"
	"repro/internal/featsel"
	"repro/internal/ml"
	"repro/internal/tpcw"
	"repro/internal/trace"
)

// testHistory generates a small but realistic data history once, shared
// across tests (the simulator is deterministic).
var historyOnce struct {
	sync.Once
	h *trace.History
}

func testHistory(t testing.TB) *trace.History {
	t.Helper()
	historyOnce.Do(func() {
		cfg := tpcw.DefaultTestbedConfig(42)
		cfg.Machine.TotalMemKB = 384 * 1024
		cfg.Machine.TotalSwapKB = 192 * 1024
		cfg.Machine.BaseUsedKB = 96 * 1024
		cfg.Machine.BaseSharedKB = 12 * 1024
		cfg.Machine.BaseBuffersKB = 12 * 1024
		cfg.Machine.MinCacheKB = 12 * 1024
		cfg.NumBrowsers = 12
		cfg.Browser.ThinkMeanSec = 2
		cfg.LeakProbRange = [2]float64{0.5, 0.9}
		cfg.LeakSizeKBRange = [2]float64{512, 2048}
		cfg.RebootDelaySec = 20
		tb, err := tpcw.NewTestbed(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tb.Run(12000)
		if err != nil {
			t.Fatal(err)
		}
		historyOnce.h = &res.History
	})
	if len(historyOnce.h.FailedRuns()) < 4 {
		t.Fatalf("test history has only %d failed runs", len(historyOnce.h.FailedRuns()))
	}
	return historyOnce.h
}

// fastConfig trains a cheap subset of models for unit tests.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Aggregation.WindowSec = 15
	cfg.FeatureLambdas = featsel.LambdaGrid(0, 9)
	// The unit-test machine is ~5x smaller than the paper's, so its
	// feature scales support a smaller selection λ than the paper's 10⁹.
	cfg.SelectionLambda = 1e6
	cfg.Models = DefaultModels([]float64{1e5})[:3] // linear, m5p, reptree
	return cfg
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*Config){
		"bad window":      func(c *Config) { c.Aggregation.WindowSec = 0 },
		"bad frac":        func(c *Config) { c.ValidationFrac = 1 },
		"bad smae":        func(c *Config) { c.SMAEFraction = -1 },
		"bad lambda":      func(c *Config) { c.SelectionLambda = -1 },
		"bad parallelism": func(c *Config) { c.Parallelism = -1 },
	}
	for name, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
		if _, err := New(c); err == nil {
			t.Errorf("%s: New accepted", name)
		}
	}
}

func TestDefaultModelsRoster(t *testing.T) {
	specs := DefaultModels(featsel.LambdaGrid(0, 9))
	if len(specs) != 15 { // 5 named + 10 lasso
		t.Fatalf("roster size = %d, want 15", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		names[s.Name] = true
		m, err := s.New()
		if err != nil {
			t.Fatalf("constructing %s: %v", s.Name, err)
		}
		if m == nil {
			t.Fatalf("%s constructed nil", s.Name)
		}
	}
	for _, want := range []string{"linear", "m5p", "reptree", "svm", "svm2", "lasso-lambda-1e+09"} {
		if !names[want] {
			t.Fatalf("roster missing %s", want)
		}
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	h := testHistory(t)
	p, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Run(h)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrainRows == 0 || rep.ValRows == 0 {
		t.Fatalf("empty split: %d/%d", rep.TrainRows, rep.ValRows)
	}
	if rep.Columns != 30 {
		t.Fatalf("columns = %d, want 30", rep.Columns)
	}
	// Path covers the grid, monotone non-increasing.
	if len(rep.Path) != 10 {
		t.Fatalf("path length = %d", len(rep.Path))
	}
	prev := 1 << 30
	for _, pp := range rep.Path {
		// Exact Lasso paths need not be strictly monotone when features
		// are correlated; allow a one-feature wiggle.
		if pp.NumSelected() > prev+1 {
			t.Fatalf("selection path rose sharply: %d after %d", pp.NumSelected(), prev)
		}
		prev = pp.NumSelected()
	}
	if rep.Selection.NumSelected() == 0 {
		t.Fatal("selection empty at the configured λ")
	}
	// Both families trained for every model.
	if len(rep.Results) != 2*3 {
		t.Fatalf("results = %d, want 6", len(rep.Results))
	}
	for _, res := range rep.Results {
		if res.Err != nil {
			t.Fatalf("model %s/%s failed: %v", res.Spec.Name, res.Features, res.Err)
		}
		if res.Report.N != rep.ValRows {
			t.Fatalf("validation size mismatch for %s", res.Spec.Name)
		}
		if res.Report.MAE <= 0 || math.IsNaN(res.Report.MAE) {
			t.Fatalf("%s/%s MAE = %v", res.Spec.Name, res.Features, res.Report.MAE)
		}
		if res.Report.SoftMAE > res.Report.MAE {
			t.Fatalf("%s S-MAE above MAE", res.Spec.Name)
		}
		if len(res.Predicted) != len(res.Observed) {
			t.Fatal("prediction length mismatch")
		}
	}
	// Models must beat the trivial mean predictor (RAE < 1) on at least
	// the tree models — the signal is strong in this testbed.
	rt := rep.ByName("reptree", AllParams)
	if rt == nil || rt.Report.RAE >= 1 {
		t.Fatalf("reptree RAE = %v, want < 1", rt.Report.RAE)
	}
	if best := rep.Best(); best == nil {
		t.Fatal("no best model")
	}
}

func TestPipelineOrderingAndLookup(t *testing.T) {
	h := testHistory(t)
	p, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Run(h)
	if err != nil {
		t.Fatal(err)
	}
	// All-params family first.
	half := len(rep.Results) / 2
	for i, res := range rep.Results {
		want := AllParams
		if i >= half {
			want = LassoParams
		}
		if res.Features != want {
			t.Fatalf("result %d family = %s, want %s", i, res.Features, want)
		}
	}
	if rep.ByName("m5p", LassoParams) == nil {
		t.Fatal("ByName failed")
	}
	if rep.ByName("nope", AllParams) != nil {
		t.Fatal("ByName invented a model")
	}
}

func TestPipelineParallelMatchesSerial(t *testing.T) {
	h := testHistory(t)
	cfgSerial := fastConfig()
	cfgSerial.Parallelism = 0
	cfgPar := fastConfig()
	cfgPar.Parallelism = 4
	pSerial, err := New(cfgSerial)
	if err != nil {
		t.Fatal(err)
	}
	pPar, err := New(cfgPar)
	if err != nil {
		t.Fatal(err)
	}
	a, err := pSerial.Run(h)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pPar.Run(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Results) != len(b.Results) {
		t.Fatal("result counts differ")
	}
	for i := range a.Results {
		ra, rb := a.Results[i], b.Results[i]
		if ra.Spec.Name != rb.Spec.Name || ra.Features != rb.Features {
			t.Fatalf("result %d identity differs", i)
		}
		if ra.Report.MAE != rb.Report.MAE || ra.Report.SoftMAE != rb.Report.SoftMAE {
			t.Fatalf("parallel training changed metrics for %s", ra.Spec.Name)
		}
	}
}

func TestPipelineNoFailedRuns(t *testing.T) {
	h := &trace.History{Runs: []trace.Run{{Datapoints: []trace.Datapoint{{Tgen: 1}}}}}
	p, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(h); err != trace.ErrNoFailedRuns {
		t.Fatalf("err = %v, want ErrNoFailedRuns", err)
	}
}

func TestPipelineNoModels(t *testing.T) {
	cfg := fastConfig()
	cfg.Models = []ModelSpec{}
	p := &Pipeline{cfg: cfg}
	if _, err := p.Run(testHistory(t)); err != ErrNoModels {
		t.Fatalf("err = %v, want ErrNoModels", err)
	}
}

func TestPipelineModelFailureIsIsolated(t *testing.T) {
	h := testHistory(t)
	cfg := fastConfig()
	cfg.Models = []ModelSpec{
		{Name: "boom", DisplayName: "Boom", New: func() (ml.Regressor, error) {
			return nil, errTest
		}},
		{Name: "linear", DisplayName: "Linear Regression", New: func() (ml.Regressor, error) {
			return DefaultModels(nil)[0].New()
		}},
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Run(h)
	if err != nil {
		t.Fatal(err)
	}
	boom := rep.ByName("boom", AllParams)
	if boom == nil || boom.Err == nil {
		t.Fatal("failed model not reported")
	}
	lin := rep.ByName("linear", AllParams)
	if lin == nil || lin.Err != nil {
		t.Fatal("healthy model was dragged down")
	}
	if best := rep.Best(); best == nil || best.Spec.Name != "linear" {
		t.Fatal("Best includes failed models")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "synthetic construction failure" }

func TestPipelineWithoutSelection(t *testing.T) {
	h := testHistory(t)
	cfg := fastConfig()
	cfg.SelectionLambda = 0
	cfg.FeatureLambdas = nil
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Run(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Path) != 0 {
		t.Fatal("path computed despite empty grid")
	}
	if len(rep.Results) != 3 {
		t.Fatalf("results = %d, want 3 (all-params only)", len(rep.Results))
	}
}

func TestPipelineRowSplit(t *testing.T) {
	h := testHistory(t)
	cfg := fastConfig()
	cfg.SplitMode = aggregate.SplitByRow
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Run(h)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ValRows == 0 {
		t.Fatal("row split produced empty validation set")
	}
}

func TestTreesCompetitiveOnSmallWorkload(t *testing.T) {
	// On this deliberately small test machine the feature→RTTF relation
	// is nearly linear, so we only require the tree models to clearly
	// beat the trivial mean predictor and stay within 2x of linear
	// regression. The paper's strict ranking (REP-Tree < M5P < linear,
	// Table II) is asserted on the full-scale dataset in
	// internal/experiments.
	h := testHistory(t)
	p, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Run(h)
	if err != nil {
		t.Fatal(err)
	}
	lin := rep.ByName("linear", AllParams)
	rt := rep.ByName("reptree", AllParams)
	m5 := rep.ByName("m5p", AllParams)
	if lin == nil || rt == nil || m5 == nil {
		t.Fatal("missing models")
	}
	for _, res := range []*ModelResult{rt, m5} {
		if res.Report.RAE >= 1 {
			t.Fatalf("%s RAE = %v, not better than mean predictor", res.Spec.Name, res.Report.RAE)
		}
		if res.Report.SoftMAE > 2*lin.Report.SoftMAE {
			t.Fatalf("%s S-MAE %v far above linear %v", res.Spec.Name, res.Report.SoftMAE, lin.Report.SoftMAE)
		}
	}
}

func BenchmarkPipelineFastModels(b *testing.B) {
	h := testHistory(b)
	p, err := New(fastConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(h); err != nil {
			b.Fatal(err)
		}
	}
}

func TestLearningCurve(t *testing.T) {
	h := testHistory(t)
	cfg := fastConfig()
	cfg.FeatureLambdas = nil
	cfg.SelectionLambda = 0
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := p.LearningCurve(h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Runs < pts[i-1].Runs {
			t.Fatal("run counts not increasing")
		}
	}
	// Full-data accuracy should not be far worse than quarter-data.
	if pts[3].BestSoftMAE > pts[0].BestSoftMAE*1.5 {
		t.Fatalf("more data degraded accuracy: %v -> %v", pts[0].BestSoftMAE, pts[3].BestSoftMAE)
	}
	for _, pt := range pts {
		if pt.BestModel == "" || pt.BestSoftMAE <= 0 {
			t.Fatalf("degenerate point %+v", pt)
		}
	}
}

func TestLearningCurveErrors(t *testing.T) {
	p, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	small := &trace.History{Runs: testHistory(t).FailedRuns()[:2]}
	if _, err := p.LearningCurve(small, nil); err == nil {
		t.Fatal("tiny history accepted")
	}
	if _, err := p.LearningCurve(testHistory(t), []float64{-1}); err == nil {
		t.Fatal("negative fraction accepted")
	}
	if _, err := p.LearningCurve(testHistory(t), []float64{2}); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
}

// TestDefaultConfigParallel checks the default saturates the machine
// and exercises Pipeline.Run at that parallelism (the -race CI run
// covers the concurrent training paths with > 1 worker even on small
// machines, since workers are capped by job count, not CPU count).
func TestDefaultConfigParallel(t *testing.T) {
	if got := DefaultConfig().Parallelism; got < 1 || got != runtime.GOMAXPROCS(0) {
		t.Fatalf("DefaultConfig Parallelism = %d, want GOMAXPROCS", got)
	}
	cfg := fastConfig()
	cfg.Parallelism = 8 // more workers than CPUs: still deterministic
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Run(testHistory(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Results {
		if err := rep.Results[i].Err; err != nil {
			t.Fatalf("result %d: %v", i, err)
		}
	}
}
