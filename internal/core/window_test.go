package core

import (
	"math"
	"testing"

	"repro/internal/featsel"
	"repro/internal/ml"
	"repro/internal/ml/lasso"
	"repro/internal/trace"
)

// windowConfig is updateConfig with a MaxRuns sliding window.
func windowConfig(maxRuns int) Config {
	cfg := updateConfig()
	cfg.Window = WindowPolicy{MaxRuns: maxRuns}
	return cfg
}

// TestWindowPolicyStart covers the cutoff arithmetic of both bounds.
func TestWindowPolicyStart(t *testing.T) {
	runs := make([]trace.Run, 6)
	for i := range runs {
		runs[i].Failed = true
		runs[i].FailTime = 100 // each run spans 100 monitored seconds
	}
	cases := []struct {
		w    WindowPolicy
		want int
	}{
		{WindowPolicy{}, 0},
		{WindowPolicy{MaxRuns: 10}, 0},
		{WindowPolicy{MaxRuns: 6}, 0},
		{WindowPolicy{MaxRuns: 2}, 4},
		{WindowPolicy{MaxAgeSec: 1000}, 0},
		{WindowPolicy{MaxAgeSec: 250}, 4},             // two full runs fit
		{WindowPolicy{MaxAgeSec: 50}, 5},              // newest always survives
		{WindowPolicy{MaxRuns: 4, MaxAgeSec: 150}, 5}, // tighter bound wins
	}
	for i, tc := range cases {
		if got := tc.w.start(runs); got != tc.want {
			t.Fatalf("case %d (%+v): start %d, want %d", i, tc.w, got, tc.want)
		}
	}
	if (WindowPolicy{}).Bounded() || !(WindowPolicy{MaxRuns: 1}).Bounded() {
		t.Fatal("Bounded misreports")
	}
	if err := (WindowPolicy{MaxRuns: -1}).Validate(); err == nil {
		t.Fatal("negative MaxRuns accepted")
	}
	if err := (WindowPolicy{MaxAgeSec: -1}).Validate(); err == nil {
		t.Fatal("negative MaxAgeSec accepted")
	}
}

// TestPipelineWindowEviction drives Run + repeated Updates under a
// MaxRuns window and checks the retained state against a fresh
// pipeline that only ever saw the surviving window: identical row
// accounting, identical feature covariance (to fp tolerance via the
// regularization path), models trained on windowed data only, and the
// sliding LS-SVM updated in place rather than refit.
func TestPipelineWindowEviction(t *testing.T) {
	h := testHistory(t)
	failed := h.FailedRuns()
	if len(failed) < 6 {
		t.Skipf("only %d failed runs", len(failed))
	}
	const maxRuns = 3

	p, err := New(windowConfig(maxRuns))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(&trace.History{Runs: append([]trace.Run(nil), failed[:3]...)}); err != nil {
		t.Fatal(err)
	}
	before := p.st.rep.ByName("svm2", AllParams)
	// Feed the remaining runs one at a time. Each round slides up to
	// the policy cutoff; when evicting that far would strand every
	// surviving run on one split side, the round re-draws the
	// survivors' assignment (Report.SplitRedrawn — the starvation
	// valve) and refits from scratch on the re-drawn window, so the
	// in-place-slide assertions below only apply to redraw-free tails.
	var rep *Report
	prevStart, sawEvict, sawRedraw := 0, false, false
	for cut := 4; cut <= len(failed); cut++ {
		rep, err = p.Update(&trace.History{Runs: append([]trace.Run(nil), failed[:cut]...)})
		if err != nil {
			t.Fatal(err)
		}
		if rep.SplitRedrawn {
			sawRedraw = true
		}
		if rep.WindowStart > cut-maxRuns || rep.WindowStart < prevStart {
			t.Fatalf("cut %d: WindowStart %d (prev %d, policy cutoff %d)",
				cut, rep.WindowStart, prevStart, cut-maxRuns)
		}
		if rep.WindowStart > prevStart {
			sawEvict = true
		}
		prevStart = rep.WindowStart
		if rep.TrainRows == 0 || rep.ValRows == 0 {
			t.Fatalf("cut %d: empty side %d/%d", cut, rep.TrainRows, rep.ValRows)
		}
		for _, r := range p.st.train.Run {
			if r < rep.WindowStart {
				t.Fatalf("cut %d: train row from evicted run %d (window starts at %d)", cut, r, rep.WindowStart)
			}
		}
		for _, r := range p.st.val.Run {
			if r < rep.WindowStart {
				t.Fatalf("cut %d: val row from evicted run %d", cut, r)
			}
		}
	}
	if !sawEvict {
		t.Fatal("no round ever slid the window")
	}

	// A fresh pipeline over only the surviving runs must agree on the
	// total row accounting (the split draw differs — run indices are
	// renumbered — so sides are compared in aggregate).
	pw, err := New(windowConfig(maxRuns))
	if err != nil {
		t.Fatal(err)
	}
	repW, err := pw.Run(&trace.History{Runs: append([]trace.Run(nil), failed[rep.WindowStart:]...)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrainRows+rep.ValRows != repW.TrainRows+repW.ValRows {
		t.Fatalf("windowed rows %d+%d, fresh window %d+%d",
			rep.TrainRows, rep.ValRows, repW.TrainRows, repW.ValRows)
	}
	// Parity of the incrementally slid covariance: the regularization
	// path from the retained Cov must match one rebuilt from scratch
	// over the surviving training rows (same split, same data).
	cov2, err := lasso.NewCov(p.st.train.X, p.st.train.RTTF)
	if err != nil {
		t.Fatal(err)
	}
	path2, err := featsel.PathFromCov(cov2, p.st.train.ColNames, p.cfg.FeatureLambdas)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Path) != len(path2) {
		t.Fatalf("path lengths %d vs %d", len(rep.Path), len(path2))
	}
	for i := range rep.Path {
		a, b := rep.Path[i], path2[i]
		if !sameSelection(a.Selected, b.Selected) {
			t.Fatalf("path[%d] (λ=%g): selection %v vs fresh %v", i, a.Lambda, a.Selected, b.Selected)
		}
		for name, w := range a.Weights {
			if d := math.Abs(w - b.Weights[name]); d > 1e-8*(1+math.Abs(w)) {
				t.Fatalf("path[%d] (λ=%g): weight %s diff %g", i, a.Lambda, name, d)
			}
		}
	}

	// The LS-SVM slid in place — same object, windowed history, update
	// info reporting the eviction — unless a starved round re-drew the
	// split (the re-draw moves runs between sides, so every model
	// refits once; redraw_test.go pins that path's parity).
	after := rep.ByName("svm2", AllParams)
	if before == nil || after == nil {
		t.Fatal("svm2 missing")
	}
	if after.Err != nil {
		t.Fatalf("svm2: %v", after.Err)
	}
	if !sawRedraw {
		if before.Model != after.Model {
			t.Fatal("svm2 was refit instead of slid in place")
		}
		if !after.Update.Incremental {
			t.Fatalf("svm2 update info %+v", after.Update)
		}
	}
	// Lasso slides through its covariance downdates (on redraw-free
	// rounds; the final round's flag says which case the tail hit).
	for i := range rep.Results {
		res := &rep.Results[i]
		if res.Err != nil {
			t.Fatalf("%s/%s: %v", res.Spec.Name, res.Features, res.Err)
		}
		if _, ok := res.Model.(*lasso.Model); ok && res.Features == AllParams {
			if !rep.SplitRedrawn && !res.Update.Incremental {
				t.Fatalf("lasso did not slide: %+v", res.Update)
			}
		}
	}
}

// TestPipelineSetWindow pins the runtime retention actuator: a window
// tightened mid-stream evicts on the next Update exactly like one
// configured at New, and invalid policies are rejected without
// touching the live one.
func TestPipelineSetWindow(t *testing.T) {
	h := testHistory(t)
	failed := h.FailedRuns()
	if len(failed) < 6 {
		t.Skipf("only %d failed runs", len(failed))
	}
	p, err := New(updateConfig()) // unbounded retention
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(&trace.History{Runs: append([]trace.Run(nil), failed[:5]...)}); err != nil {
		t.Fatal(err)
	}
	if w := p.Window(); w.Bounded() {
		t.Fatalf("unbounded pipeline reports window %+v", w)
	}
	if err := p.SetWindow(WindowPolicy{MaxRuns: -1}); err == nil {
		t.Fatal("negative MaxRuns accepted")
	}
	if err := p.SetWindow(WindowPolicy{MaxRuns: 3}); err != nil {
		t.Fatal(err)
	}
	if w := p.Window(); w.MaxRuns != 3 {
		t.Fatalf("live window = %+v, want MaxRuns 3", w)
	}
	rep, err := p.Update(&trace.History{Runs: append([]trace.Run(nil), failed[:6]...)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WindowStart == 0 {
		t.Fatal("tightened window evicted nothing on the next Update")
	}
	for _, r := range p.st.train.Run {
		if r < rep.WindowStart {
			t.Fatalf("train row from evicted run %d (window starts at %d)", r, rep.WindowStart)
		}
	}
}

// TestPipelineWindowDeferredEviction pins the safety valve: a window
// that would evict everything (all surviving runs landed on one side
// of the split) is deferred rather than leaving a family empty.
func TestPipelineWindowDeferredEviction(t *testing.T) {
	h := testHistory(t)
	failed := h.FailedRuns()
	if len(failed) < 4 {
		t.Skipf("only %d failed runs", len(failed))
	}
	cfg := windowConfig(1) // one-run window: the lone run is on one split side
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(&trace.History{Runs: append([]trace.Run(nil), failed[:3]...)}); err != nil {
		t.Fatal(err)
	}
	rep, err := p.Update(&trace.History{Runs: append([]trace.Run(nil), failed[:4]...)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrainRows == 0 || rep.ValRows == 0 {
		t.Fatalf("deferred eviction still emptied a side: %d/%d", rep.TrainRows, rep.ValRows)
	}
	// The window start never exceeds what keeps both sides non-empty.
	if rep.WindowStart > 3 {
		t.Fatalf("WindowStart %d past the last run", rep.WindowStart)
	}
}

var _ = ml.UpdateInfo{}
