package core

import (
	"fmt"

	"repro/internal/trace"
)

// LearningCurvePoint reports model quality when training on a prefix of
// the collected runs.
type LearningCurvePoint struct {
	// Runs is the number of failed runs used.
	Runs int
	// TrainRows and ValRows describe the split at this size.
	TrainRows, ValRows int
	// BestSoftMAE is the best model's S-MAE (seconds).
	BestSoftMAE float64
	// BestModel is its display name.
	BestModel string
}

// LearningCurve supports the paper's incremental collection workflow
// (§III-A): "if the estimated accuracy is not sufficient, further system
// runs can be executed to collect new data into the training set, and to
// produce new models". It retrains the pipeline on growing prefixes of
// the history's failed runs and reports the best S-MAE at each size, so
// the user can decide when to stop collecting.
//
// fractions lists the prefix sizes as fractions of the available failed
// runs; nil uses {0.25, 0.5, 0.75, 1}.
func (p *Pipeline) LearningCurve(h *trace.History, fractions []float64) ([]LearningCurvePoint, error) {
	if len(fractions) == 0 {
		fractions = []float64{0.25, 0.5, 0.75, 1.0}
	}
	failed := h.FailedRuns()
	const minRuns = 4 // below this a by-run split is meaningless
	if len(failed) < minRuns {
		return nil, fmt.Errorf("core: learning curve needs >= %d failed runs, have %d", minRuns, len(failed))
	}
	var out []LearningCurvePoint
	for _, frac := range fractions {
		if frac <= 0 || frac > 1 {
			return nil, fmt.Errorf("core: learning-curve fraction %v outside (0,1]", frac)
		}
		k := int(frac * float64(len(failed)))
		if k < minRuns {
			k = minRuns
		}
		if k > len(failed) {
			k = len(failed)
		}
		sub := &trace.History{Runs: failed[:k]}
		rep, err := p.Run(sub)
		if err != nil {
			return nil, fmt.Errorf("core: learning curve at %d runs: %w", k, err)
		}
		pt := LearningCurvePoint{Runs: k, TrainRows: rep.TrainRows, ValRows: rep.ValRows}
		if best := rep.Best(); best != nil {
			pt.BestSoftMAE = best.Report.SoftMAE
			pt.BestModel = best.Spec.DisplayName
		}
		out = append(out, pt)
	}
	return out, nil
}
