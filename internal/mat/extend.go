package mat

// Bordered Cholesky extension: when a factored SPD system grows by m
// rows (new training data arriving in an incremental retrain), the new
// factor is
//
//	[ A   A21ᵀ ]      [ L    0   ]
//	[ A21 A22  ]  =>  [ L21  L22 ]
//
// with L21 solving L21·Lᵀ = A21 (a triangular panel solve against the
// existing factor) and L22 the factor of the Schur complement
// A22 − L21·L21ᵀ. Cost is O(n²·m + m³) against O((n+m)³/3) for a
// from-scratch factorization — retraining cost scales with the new
// rows, not the history. Both heavy stages run through the same
// batched dot kernel and Parfor scheme as NewCholesky, so results stay
// bitwise deterministic regardless of GOMAXPROCS.

// extendGrowth is the headroom factor applied when the factor buffer
// must be reallocated: repeated small Extends then run fully in place.
const extendGrowth = 3 // numerator of 3/2

// Extend grows the factorization in place from the current n×n system
// to the bordered (n+m)×(n+m) system, given the border blocks
// a21 (m×n: new rows against the old ones) and a22 (m×m: new against
// new; only its lower triangle is read). On success the receiver
// factors the extended matrix; on ErrNotPositiveDefinite the receiver
// is unchanged and still factors the original system.
//
// pool (optional, nil ok) supplies the larger buffer when the factor
// outgrows its headroom and receives the old one back.
func (c *Cholesky) Extend(a21, a22 *Dense, pool *Pool) error {
	m := a21.rows
	if a21.cols != c.n || a22.rows != m || a22.cols != m {
		return ErrShape
	}
	if m == 0 {
		return nil
	}
	n := c.n
	nn := n + m
	c.reserve(nn, pool)
	ld := c.stride
	d := c.base()

	// Stage the border inside the factor storage: row n+i holds
	// [A21_i | lower(A22)_i].
	for i := 0; i < m; i++ {
		copy(d[(n+i)*ld:(n+i)*ld+n], a21.Row(i))
		copy(d[(n+i)*ld+n:(n+i)*ld+n+i+1], a22.Row(i)[:i+1])
	}

	// Panel solve L21·Lᵀ = A21, one independent row per new point,
	// blocked column-outer/rows-inner: the cholBlock-wide L panel a
	// block touches stays cache-hot across all m new rows instead of
	// being re-streamed per row (with many new rows the solve is
	// otherwise memory-bound on the factor). The subtraction of
	// already-solved column blocks runs through DotBatch; only the
	// in-block diagonal solve is scalar.
	for j0 := 0; j0 < n; j0 += cholBlock {
		j1 := min(j0+cholBlock, n)
		Parfor(m, func(lo, hi int) {
			var buf [cholBlock]float64
			for i := n + lo; i < n+hi; i++ {
				irow := d[i*ld : i*ld+n]
				if j0 > 0 {
					dots := buf[:j1-j0]
					DotBatch(irow[:j0], d[j0*ld:], ld, j1-j0, dots)
					for t, v := range dots {
						irow[j0+t] -= v
					}
				}
				for cc := j0; cc < j1; cc++ {
					crow := d[cc*ld : cc*ld+cc]
					s := irow[cc]
					for k := j0; k < cc; k++ {
						s -= irow[k] * crow[k]
					}
					irow[cc] = s / d[cc*ld+cc]
				}
			}
		})
	}

	// Schur complement: A22 − L21·L21ᵀ, lower triangle only.
	Parfor(m, func(lo, hi int) {
		buf := make([]float64, hi)
		for i := n + lo; i < n+hi; i++ {
			cnt := i - n + 1
			dots := buf[:cnt]
			DotBatch(d[i*ld:i*ld+n], d[n*ld:], ld, cnt, dots)
			irow := d[i*ld+n : i*ld+i+1]
			for t, v := range dots {
				irow[t] -= v
			}
		}
	})

	// Factor the m×m Schur block in place; its rows start at offset
	// n*ld+n with the same stride, exactly the sub-view cholFactor
	// handles. On failure the new rows are simply abandoned: nothing
	// above row n was written, so the original factor is intact.
	if err := cholFactor(d[n*ld+n:], m, ld); err != nil {
		return err
	}
	c.n = nn
	return nil
}

// Truncate drops the trailing rows of the factorization, the inverse
// of Extend: the leading n×n block of L is exactly the factor of the
// leading n×n block of A, so shrinking is just forgetting the border.
// Callers use it to roll back an Extend whose follow-up work failed.
func (c *Cholesky) Truncate(n int) {
	if n < 0 || n > c.n {
		panic(ErrShape)
	}
	c.n = n
}

// reserve guarantees the factor buffer holds nn rows past the current
// origin. The cheap outs come first: enough headroom already (the
// common case — repeated small appends never copy), then reclaiming
// the rows earlier Downdates abandoned in front of the origin
// (compact: one triangle copy per capacity-ful of evictions). Only
// when the buffer is genuinely too small does it reallocate with
// growth headroom.
func (c *Cholesky) reserve(nn int, pool *Pool) {
	if c.origin+nn <= c.stride {
		return
	}
	if nn <= c.stride {
		c.compact()
		return
	}
	newCap := c.stride * extendGrowth / 2
	if newCap < nn {
		newCap = nn
	}
	nd := pool.GetVec(newCap * newCap)
	d := c.base()
	for i := 0; i < c.n; i++ {
		copy(nd[i*newCap:i*newCap+i+1], d[i*c.stride:i*c.stride+i+1])
	}
	pool.PutVec(c.data)
	c.data = nd
	c.stride = newCap
	c.origin = 0
}
