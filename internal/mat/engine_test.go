package mat

import (
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/randx"
)

// naiveMul is the reference O(n³) triple loop the fast paths are
// pinned against.
func naiveMul(a, b *Dense) *Dense {
	out := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < b.cols; j++ {
			var s float64
			for k := 0; k < a.cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// naiveCholesky is the unblocked serial factorization previously used
// in production, kept as the parity reference.
func naiveCholesky(a *Dense) (*Dense, error) {
	n := a.rows
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := l.At(j, k)
			d -= ljk * ljk
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return l, nil
}

func randDense(src *randx.Source, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.data {
		m.data[i] = src.Uniform(-1, 1)
	}
	return m
}

// forEachKernelPath runs fn under both the assembly and pure-Go
// dispatch (the former only where the CPU supports it).
func forEachKernelPath(t *testing.T, fn func(t *testing.T)) {
	t.Helper()
	prev := setUseAsm(false)
	defer setUseAsm(prev)
	t.Run("go", fn)
	if setUseAsm(true) || useAsm {
		t.Run("asm", fn)
	}
	setUseAsm(prev)
}

func TestMulMatchesNaive(t *testing.T) {
	forEachKernelPath(t, func(t *testing.T) {
		src := randx.New(11)
		for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 7}, {17, 9, 31}, {64, 64, 64}, {130, 33, 67}} {
			a := randDense(src, dims[0], dims[1])
			b := randDense(src, dims[1], dims[2])
			fast, err := Mul(a, b)
			if err != nil {
				t.Fatal(err)
			}
			want := naiveMul(a, b)
			if d := maxAbsDiff(fast, want); d > 1e-12 {
				t.Fatalf("dims %v: max diff %g", dims, d)
			}
		}
	})
}

func TestSymRankKMatchesNaive(t *testing.T) {
	forEachKernelPath(t, func(t *testing.T) {
		src := randx.New(12)
		for _, dims := range [][2]int{{1, 1}, {2, 3}, {9, 4}, {33, 24}, {77, 13}, {130, 26}} {
			x := randDense(src, dims[0], dims[1])
			fast := SymRankK(x)
			want := naiveMul(x, x.T())
			if d := maxAbsDiff(fast, want); d > 1e-12 {
				t.Fatalf("dims %v: max diff %g", dims, d)
			}
			// Exact symmetry (mirrored, not recomputed).
			for i := 0; i < fast.Rows(); i++ {
				for j := 0; j < i; j++ {
					if fast.At(i, j) != fast.At(j, i) {
						t.Fatalf("dims %v: not symmetric at (%d,%d)", dims, i, j)
					}
				}
			}
		}
	})
}

func TestCholeskyMatchesNaive(t *testing.T) {
	forEachKernelPath(t, func(t *testing.T) {
		src := randx.New(13)
		for _, n := range []int{1, 2, 5, 63, 64, 65, 130, 200} {
			a := randSPD(src, n)
			fast, err := NewCholesky(a)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			want, err := naiveCholesky(a)
			if err != nil {
				t.Fatalf("n=%d: naive: %v", n, err)
			}
			if d := maxAbsDiff(fast.L(), want); d > 1e-12 {
				t.Fatalf("n=%d: max diff %g", n, d)
			}
		}
	})
}

func TestDotBatchParity(t *testing.T) {
	forEachKernelPath(t, func(t *testing.T) {
		src := randx.New(14)
		for _, tc := range [][3]int{{1, 1, 1}, {3, 5, 2}, {24, 24, 17}, {26, 31, 9}, {7, 7, 40}} {
			d, ld, count := tc[0], tc[1], tc[2]
			x := make([]float64, d)
			for i := range x {
				x[i] = src.Uniform(-2, 2)
			}
			y := make([]float64, (count-1)*ld+d)
			for i := range y {
				y[i] = src.Uniform(-2, 2)
			}
			out := make([]float64, count)
			DotBatch(x, y, ld, count, out)
			for tt := 0; tt < count; tt++ {
				var want float64
				for k := 0; k < d; k++ {
					want += x[k] * y[tt*ld+k]
				}
				if math.Abs(out[tt]-want) > 1e-12 {
					t.Fatalf("d=%d ld=%d t=%d: got %v want %v", d, ld, tt, out[tt], want)
				}
			}
		}
	})
}

func TestExpNegInPlaceParity(t *testing.T) {
	forEachKernelPath(t, func(t *testing.T) {
		src := randx.New(15)
		for _, n := range []int{1, 3, 4, 7, 100} {
			p := make([]float64, n)
			want := make([]float64, n)
			for i := range p {
				switch i % 5 {
				case 0:
					p[i] = 0
				case 1:
					p[i] = -750 // underflow region
				default:
					p[i] = -src.Uniform(0, 50)
				}
				want[i] = math.Exp(p[i])
			}
			expNegInPlace(p)
			for i := range p {
				diff := math.Abs(p[i] - want[i])
				if diff > 1e-12 {
					t.Fatalf("n=%d i=%d: |%g - %g| = %g", n, i, p[i], want[i], diff)
				}
			}
			if p[0] != 1 {
				t.Fatalf("exp(0) = %v, want exactly 1", p[0])
			}
		}
	})
}

func TestRBFRowParity(t *testing.T) {
	forEachKernelPath(t, func(t *testing.T) {
		src := randx.New(16)
		for _, n := range []int{1, 4, 5, 31, 64} {
			gamma := src.Uniform(0.01, 2)
			norms := make([]float64, n)
			dots := make([]float64, n)
			for i := range norms {
				norms[i] = src.Uniform(0, 30)
				dots[i] = src.Uniform(-10, 10)
			}
			selfNorm := src.Uniform(0, 30)
			got := append([]float64(nil), dots...)
			RBFRow(got, norms, selfNorm, gamma)
			for i := range got {
				d2 := selfNorm + norms[i] - 2*dots[i]
				if d2 < 0 {
					d2 = 0
				}
				want := math.Exp(-gamma * d2)
				if math.Abs(got[i]-want) > 1e-12 {
					t.Fatalf("n=%d i=%d: got %g want %g", n, i, got[i], want)
				}
			}
		}
	})
}

func TestAddScaledParity(t *testing.T) {
	forEachKernelPath(t, func(t *testing.T) {
		src := randx.New(17)
		for _, n := range []int{0, 1, 3, 4, 9, 100} {
			dst := make([]float64, n)
			srcv := make([]float64, n)
			want := make([]float64, n)
			for i := 0; i < n; i++ {
				dst[i] = src.Uniform(-1, 1)
				srcv[i] = src.Uniform(-1, 1)
				want[i] = dst[i] + 0.37*srcv[i]
			}
			AddScaled(dst, 0.37, srcv)
			for i := range dst {
				if math.Abs(dst[i]-want[i]) > 1e-12 {
					t.Fatalf("n=%d i=%d: got %g want %g", n, i, dst[i], want[i])
				}
			}
		}
	})
}

func TestMirrorLower(t *testing.T) {
	forEachKernelPath(t, func(t *testing.T) {
		src := randx.New(18)
		for _, n := range []int{1, 2, 5, 127, 128, 129, 200, 333} {
			m := randDense(src, n, n)
			want := NewDense(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if j <= i {
						want.Set(i, j, m.At(i, j))
					} else {
						want.Set(i, j, m.At(j, i))
					}
				}
			}
			MirrorLower(m)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if m.At(i, j) != want.At(i, j) {
						t.Fatalf("n=%d (%d,%d): got %v want %v", n, i, j, m.At(i, j), want.At(i, j))
					}
				}
			}
		}
	})
}

func TestParforCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 100, 1000} {
		seen := make([]int32, n)
		Parfor(n, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad range [%d,%d) for n=%d", lo, hi, n)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func BenchmarkSymRankK1000x24(b *testing.B) {
	src := randx.New(20)
	x := randDense(src, 1000, 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SymRankK(x)
	}
}

func BenchmarkCholesky500(b *testing.B) {
	src := randx.New(21)
	a := randSPD(src, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMul300(b *testing.B) {
	src := randx.New(22)
	x := randDense(src, 300, 300)
	y := randDense(src, 300, 300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mul(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
