package mat

import (
	"math/bits"
	"sync"
)

// Pool recycles float64 buffers and Dense matrices across repeated
// retrains, so incremental pipelines stop paying allocation and
// page-zeroing for every Gram build, factor growth, or prediction
// scratch. Buffers are kept in power-of-two size classes; Get returns
// a slice whose contents are arbitrary (callers that need zeros use
// the Zero variants, whose explicit clear over warm pages is still far
// cheaper than faulting fresh ones).
//
// A nil *Pool is valid and falls back to plain allocation, so APIs can
// take an optional pool. The zero value is ready to use, and all
// methods are safe for concurrent callers.
type Pool struct {
	mu   sync.Mutex
	vecs [poolClasses][][]float64
}

// poolClasses covers buffers up to 2^35 elements, far beyond anything
// the learners build.
const poolClasses = 36

// poolBucketCap bounds the retained free list per size class so one
// burst of large builds cannot pin memory forever.
const poolBucketCap = 64

// class returns the size-class index for a request of n elements: the
// smallest c with 1<<c >= n.
func poolClass(n int) int { return bits.Len(uint(n - 1)) }

// GetVec returns a slice of length n with arbitrary contents. The
// backing array comes from the pool when a buffer of the right class
// is free, and is freshly allocated (rounded up to the class size)
// otherwise.
func (p *Pool) GetVec(n int) []float64 {
	if n <= 0 {
		return nil
	}
	if p == nil {
		return make([]float64, n)
	}
	c := poolClass(n)
	p.mu.Lock()
	if l := len(p.vecs[c]); l > 0 {
		v := p.vecs[c][l-1]
		p.vecs[c][l-1] = nil
		p.vecs[c] = p.vecs[c][:l-1]
		p.mu.Unlock()
		return v[:n]
	}
	p.mu.Unlock()
	return make([]float64, n, 1<<c)
}

// GetVecZero returns a zeroed slice of length n from the pool.
func (p *Pool) GetVecZero(n int) []float64 {
	v := p.GetVec(n)
	clear(v)
	return v
}

// PutVec returns a buffer to the pool. Only buffers whose capacity is
// an exact class size are retained (everything GetVec hands out
// qualifies); others are dropped for the GC. The caller must not use
// v afterwards.
func (p *Pool) PutVec(v []float64) {
	if p == nil || cap(v) == 0 {
		return
	}
	c := poolClass(cap(v))
	if 1<<c != cap(v) {
		return
	}
	p.mu.Lock()
	if len(p.vecs[c]) < poolBucketCap {
		p.vecs[c] = append(p.vecs[c], v[:0])
	}
	p.mu.Unlock()
}

// GetDense returns an r×c matrix with arbitrary contents, backed by a
// pooled buffer.
func (p *Pool) GetDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(errNegativeDimension)
	}
	return &Dense{rows: r, cols: c, data: p.GetVec(r * c)}
}

// GetDenseZero returns a zeroed r×c matrix backed by a pooled buffer.
func (p *Pool) GetDenseZero(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(errNegativeDimension)
	}
	return &Dense{rows: r, cols: c, data: p.GetVecZero(r * c)}
}

// PutDense returns a matrix's backing buffer to the pool. The caller
// must not use m (or views into it) afterwards.
func (p *Pool) PutDense(m *Dense) {
	if p == nil || m == nil {
		return
	}
	p.PutVec(m.data)
	m.data = nil
	m.rows, m.cols = 0, 0
}
