package mat

// setUseAsm forces the kernel dispatch for tests and returns the
// previous value. On non-amd64 builds useAsm is a constant false and
// the force is a no-op.
func setUseAsm(on bool) (prev bool) { return swapUseAsm(on) }
