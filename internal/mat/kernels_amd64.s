//go:build amd64 && !purego

#include "textflag.h"

// AVX2/FMA compute kernels for the flat linear-algebra engine. Every
// function here has a pure-Go twin in kernels_go.go; dispatch happens
// once at package init via the CPUID probe below.

// func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func dotsRowAVX2(x, y *float64, ld, dq, groups uintptr, out *float64)
// out[g*8+t] = x · y[(g*8+t)*ld : ...] for g < groups, t < 8: the
// batched dot-product kernel: 8 rows per group, amortized across a
// Gram row. Columns beyond 4*dq are the caller's scalar tail.
TEXT ·dotsRowAVX2(SB), NOSPLIT, $8-48
	MOVQ y+8(FP), AX     // group base
	MOVQ ld+16(FP), R8
	MOVQ out+40(FP), DX
	SHLQ $3, R8          // stride in bytes
	MOVQ groups+32(FP), CX
	MOVQ CX, groups-8(SP)

group:
	MOVQ x+0(FP), SI
	MOVQ AX, DI          // y0
	MOVQ DI, R9
	ADDQ R8, R9          // y1
	MOVQ R9, R10
	ADDQ R8, R10         // y2
	MOVQ R10, R11
	ADDQ R8, R11         // y3
	MOVQ R11, R12
	ADDQ R8, R12         // y4
	MOVQ R12, R13
	ADDQ R8, R13         // y5
	MOVQ R13, R14
	ADDQ R8, R14         // y6
	MOVQ R14, BX
	ADDQ R8, BX          // y7

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	MOVQ dq+24(FP), CX
	MOVQ CX, R15
	SHRQ $1, CX
	TESTQ CX, CX
	JE    ktail

kloop:
	VMOVUPD (SI), Y8
	VMOVUPD (DI), Y9
	VFMADD231PD Y8, Y9, Y0
	VMOVUPD (R9), Y10
	VFMADD231PD Y8, Y10, Y1
	VMOVUPD (R10), Y11
	VFMADD231PD Y8, Y11, Y2
	VMOVUPD (R11), Y12
	VFMADD231PD Y8, Y12, Y3
	VMOVUPD (R12), Y9
	VFMADD231PD Y8, Y9, Y4
	VMOVUPD (R13), Y10
	VFMADD231PD Y8, Y10, Y5
	VMOVUPD (R14), Y11
	VFMADD231PD Y8, Y11, Y6
	VMOVUPD (BX), Y12
	VFMADD231PD Y8, Y12, Y7

	VMOVUPD 32(SI), Y8
	VMOVUPD 32(DI), Y9
	VFMADD231PD Y8, Y9, Y0
	VMOVUPD 32(R9), Y10
	VFMADD231PD Y8, Y10, Y1
	VMOVUPD 32(R10), Y11
	VFMADD231PD Y8, Y11, Y2
	VMOVUPD 32(R11), Y12
	VFMADD231PD Y8, Y12, Y3
	VMOVUPD 32(R12), Y9
	VFMADD231PD Y8, Y9, Y4
	VMOVUPD 32(R13), Y10
	VFMADD231PD Y8, Y10, Y5
	VMOVUPD 32(R14), Y11
	VFMADD231PD Y8, Y11, Y6
	VMOVUPD 32(BX), Y12
	VFMADD231PD Y8, Y12, Y7

	ADDQ $64, SI
	ADDQ $64, DI
	ADDQ $64, R9
	ADDQ $64, R10
	ADDQ $64, R11
	ADDQ $64, R12
	ADDQ $64, R13
	ADDQ $64, R14
	ADDQ $64, BX
	DECQ CX
	JNE  kloop

ktail:
	ANDQ $1, R15
	JE   reduce
	VMOVUPD (SI), Y8
	VMOVUPD (DI), Y9
	VFMADD231PD Y8, Y9, Y0
	VMOVUPD (R9), Y10
	VFMADD231PD Y8, Y10, Y1
	VMOVUPD (R10), Y11
	VFMADD231PD Y8, Y11, Y2
	VMOVUPD (R11), Y12
	VFMADD231PD Y8, Y12, Y3
	VMOVUPD (R12), Y9
	VFMADD231PD Y8, Y9, Y4
	VMOVUPD (R13), Y10
	VFMADD231PD Y8, Y10, Y5
	VMOVUPD (R14), Y11
	VFMADD231PD Y8, Y11, Y6
	VMOVUPD (BX), Y12
	VFMADD231PD Y8, Y12, Y7

reduce:
	VHADDPD Y1, Y0, Y0
	VHADDPD Y3, Y2, Y2
	VPERM2F128 $0x21, Y2, Y0, Y8
	VPERM2F128 $0x30, Y2, Y0, Y9
	VADDPD Y8, Y9, Y8
	VMOVUPD Y8, (DX)

	VHADDPD Y5, Y4, Y4
	VHADDPD Y7, Y6, Y6
	VPERM2F128 $0x21, Y6, Y4, Y8
	VPERM2F128 $0x30, Y6, Y4, Y9
	VADDPD Y8, Y9, Y8
	VMOVUPD Y8, 32(DX)

	ADDQ $64, DX
	LEAQ (AX)(R8*8), AX  // base += 8*ld
	MOVQ groups-8(SP), CX
	DECQ CX
	MOVQ CX, groups-8(SP)
	JNE  group

	VZEROUPPER
	RET

// func dots2RowAVX2(x0, x1, y *float64, ld, dq, groups uintptr, out0, out1 *float64)
// The register-tiled two-row variant of dotsRowAVX2:
// out0[g*4+t] = x0 · y[(g*4+t)*ld : ...] and
// out1[g*4+t] = x1 · y[(g*4+t)*ld : ...] for g < groups, t < 4.
// Eight accumulators (Y0-Y3 for x0, Y4-Y7 for x1) stay pinned across
// the k loop, so every B-panel row loaded from y feeds two FMA tiles —
// a 2-row × 8-column update per unrolled iteration — halving the panel
// load traffic of two one-row passes. Per-accumulator accumulation
// order matches dotsRowAVX2 exactly (chunk 0 then chunk 32 per
// iteration, same reduction), so a row dotted through either kernel
// yields the identical float64. Columns beyond 4*dq are the caller's
// scalar tail.
TEXT ·dots2RowAVX2(SB), NOSPLIT, $0-64
	MOVQ y+16(FP), AX    // group base
	MOVQ ld+24(FP), R8
	SHLQ $3, R8          // stride in bytes
	MOVQ dq+32(FP), R15
	MOVQ groups+40(FP), BX
	MOVQ out0+48(FP), R13
	MOVQ out1+56(FP), R14

group2:
	MOVQ x0+0(FP), SI
	MOVQ x1+8(FP), DI
	MOVQ AX, R9          // y0
	LEAQ (R9)(R8*1), R10 // y1
	LEAQ (R9)(R8*2), R11 // y2
	LEAQ (R10)(R8*2), R12 // y3

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	MOVQ R15, CX
	SHRQ $1, CX
	TESTQ CX, CX
	JE    ktail2

kloop2:
	VMOVUPD (SI), Y8     // x0 chunk 0
	VMOVUPD (DI), Y9     // x1 chunk 0
	VMOVUPD 32(SI), Y12  // x0 chunk 1
	VMOVUPD 32(DI), Y13  // x1 chunk 1

	VMOVUPD (R9), Y10
	VFMADD231PD Y8, Y10, Y0
	VFMADD231PD Y9, Y10, Y4
	VMOVUPD 32(R9), Y11
	VFMADD231PD Y12, Y11, Y0
	VFMADD231PD Y13, Y11, Y4

	VMOVUPD (R10), Y10
	VFMADD231PD Y8, Y10, Y1
	VFMADD231PD Y9, Y10, Y5
	VMOVUPD 32(R10), Y11
	VFMADD231PD Y12, Y11, Y1
	VFMADD231PD Y13, Y11, Y5

	VMOVUPD (R11), Y10
	VFMADD231PD Y8, Y10, Y2
	VFMADD231PD Y9, Y10, Y6
	VMOVUPD 32(R11), Y11
	VFMADD231PD Y12, Y11, Y2
	VFMADD231PD Y13, Y11, Y6

	VMOVUPD (R12), Y10
	VFMADD231PD Y8, Y10, Y3
	VFMADD231PD Y9, Y10, Y7
	VMOVUPD 32(R12), Y11
	VFMADD231PD Y12, Y11, Y3
	VFMADD231PD Y13, Y11, Y7

	ADDQ $64, SI
	ADDQ $64, DI
	ADDQ $64, R9
	ADDQ $64, R10
	ADDQ $64, R11
	ADDQ $64, R12
	DECQ CX
	JNE  kloop2

ktail2:
	MOVQ R15, CX
	ANDQ $1, CX
	JE   reduce2
	VMOVUPD (SI), Y8
	VMOVUPD (DI), Y9
	VMOVUPD (R9), Y10
	VFMADD231PD Y8, Y10, Y0
	VFMADD231PD Y9, Y10, Y4
	VMOVUPD (R10), Y11
	VFMADD231PD Y8, Y11, Y1
	VFMADD231PD Y9, Y11, Y5
	VMOVUPD (R11), Y10
	VFMADD231PD Y8, Y10, Y2
	VFMADD231PD Y9, Y10, Y6
	VMOVUPD (R12), Y11
	VFMADD231PD Y8, Y11, Y3
	VFMADD231PD Y9, Y11, Y7

reduce2:
	VHADDPD Y1, Y0, Y0
	VHADDPD Y3, Y2, Y2
	VPERM2F128 $0x21, Y2, Y0, Y8
	VPERM2F128 $0x30, Y2, Y0, Y9
	VADDPD Y8, Y9, Y8
	VMOVUPD Y8, (R13)

	VHADDPD Y5, Y4, Y4
	VHADDPD Y7, Y6, Y6
	VPERM2F128 $0x21, Y6, Y4, Y8
	VPERM2F128 $0x30, Y6, Y4, Y9
	VADDPD Y8, Y9, Y8
	VMOVUPD Y8, (R14)

	ADDQ $32, R13
	ADDQ $32, R14
	LEAQ (AX)(R8*4), AX  // base += 4*ld
	DECQ BX
	JNE  group2

	VZEROUPPER
	RET

// func trsvLowerAVX2(l *float64, ld uintptr, z *float64, m uintptr)
// Solves L·z = z in place for the m×m lower-triangular block stored at
// l with row stride ld (diagonal included): for each row i the dot of
// L[i, 0:i] against the already-solved prefix of z runs 4-wide with a
// scalar remainder, then one scalar subtract-and-divide finishes the
// row. This is the in-block forward-substitution micro-kernel shared
// by the blocked Cholesky panel solve and the triangular solves.
TEXT ·trsvLowerAVX2(SB), NOSPLIT, $0-32
	MOVQ l+0(FP), SI     // current row base
	MOVQ ld+8(FP), R8
	SHLQ $3, R8          // stride in bytes
	MOVQ z+16(FP), DI
	MOVQ m+24(FP), R9    // rows remaining
	XORQ R10, R10        // i

trow:
	VXORPD Y0, Y0, Y0
	MOVQ SI, AX          // &l[i*ld]
	MOVQ DI, BX          // &z[0]
	MOVQ R10, CX
	SHRQ $2, CX          // i/4 quads
	TESTQ CX, CX
	JE   tquaddone

tquad:
	VMOVUPD (AX), Y1
	VMOVUPD (BX), Y2
	VFMADD231PD Y1, Y2, Y0
	ADDQ $32, AX
	ADDQ $32, BX
	DECQ CX
	JNE  tquad

tquaddone:
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VHADDPD X0, X0, X0   // X0 lane 0 = 4-wide partial dot
	MOVQ R10, CX
	ANDQ $3, CX
	TESTQ CX, CX
	JE   tscalardone

tscalar:
	VMOVSD (AX), X1
	VFMADD231SD (BX), X1, X0
	ADDQ $8, AX
	ADDQ $8, BX
	DECQ CX
	JNE  tscalar

tscalardone:
	// AX = &l[i*ld+i], BX = &z[i].
	VMOVSD (BX), X1
	VSUBSD X0, X1, X1
	VDIVSD (AX), X1, X1
	VMOVSD X1, (BX)
	ADDQ R8, SI
	INCQ R10
	DECQ R9
	JNE  trow

	VZEROUPPER
	RET

// func dotAVX2(x, y *float64, nq uintptr) float64
// Inner product over 4*nq elements with two independent accumulator
// chains (the caller handles the tail).
TEXT ·dotAVX2(SB), NOSPLIT, $0-32
	MOVQ x+0(FP), SI
	MOVQ y+8(FP), DI
	MOVQ nq+16(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1

	MOVQ CX, DX
	SHRQ $1, DX
	TESTQ DX, DX
	JE   dtail1

dloop2:
	VMOVUPD (SI), Y2
	VMOVUPD (DI), Y3
	VFMADD231PD Y2, Y3, Y0
	VMOVUPD 32(SI), Y4
	VMOVUPD 32(DI), Y5
	VFMADD231PD Y4, Y5, Y1
	ADDQ $64, SI
	ADDQ $64, DI
	DECQ DX
	JNE  dloop2

dtail1:
	ANDQ $1, CX
	JE   dreduce
	VMOVUPD (SI), Y2
	VMOVUPD (DI), Y3
	VFMADD231PD Y2, Y3, Y0

dreduce:
	VADDPD Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VHADDPD X0, X0, X0
	VMOVSD X0, ret+24(FP)
	VZEROUPPER
	RET

// func transposeBlockAVX2(src, dst *float64, stride, ni, nj uintptr)
// dst[j*stride+i] = src[i*stride+j] for i < ni, j < nj, both multiples
// of 4, via 4x4 register transposes. Used by MirrorLower for tiles
// strictly below the diagonal.
TEXT ·transposeBlockAVX2(SB), NOSPLIT, $0-40
	MOVQ src+0(FP), AX   // src row-block base
	MOVQ dst+8(FP), BX   // dst col-block base
	MOVQ stride+16(FP), R8
	MOVQ ni+24(FP), R13
	SHLQ $3, R8          // stride in bytes
	SHRQ $2, R13         // ni/4 blocks
	LEAQ (R8)(R8*2), R9  // 3*stride (to locate row 3 from base)
	MOVQ R8, R12
	SHLQ $2, R12         // 4*stride
	TESTQ R13, R13
	JE   done

iblock:
	MOVQ nj+32(FP), CX
	SHRQ $2, CX          // nj/4 blocks
	MOVQ AX, DX          // srcp
	MOVQ BX, R11         // dstp
	TESTQ CX, CX
	JE   inext

jblock:
	// Load a 4x4 from src rows.
	VMOVUPD (DX), Y0
	VMOVUPD (DX)(R8*1), Y1
	VMOVUPD (DX)(R8*2), Y2
	VMOVUPD (DX)(R9*1), Y3
	// Transpose in registers.
	VUNPCKLPD Y1, Y0, Y4 // [r0c0 r1c0 | r0c2 r1c2]
	VUNPCKHPD Y1, Y0, Y5 // [r0c1 r1c1 | r0c3 r1c3]
	VUNPCKLPD Y3, Y2, Y6
	VUNPCKHPD Y3, Y2, Y7
	VPERM2F128 $0x20, Y6, Y4, Y0 // column 0
	VPERM2F128 $0x20, Y7, Y5, Y1 // column 1
	VPERM2F128 $0x31, Y6, Y4, Y2 // column 2
	VPERM2F128 $0x31, Y7, Y5, Y3 // column 3
	// Store as 4 rows of dst.
	VMOVUPD Y0, (R11)
	VMOVUPD Y1, (R11)(R8*1)
	VMOVUPD Y2, (R11)(R8*2)
	VMOVUPD Y3, (R11)(R9*1)

	ADDQ $32, DX         // srcp += 4 columns
	ADDQ R12, R11        // dstp += 4 rows
	DECQ CX
	JNE  jblock

inext:
	ADDQ R12, AX         // src base += 4 rows
	ADDQ $32, BX         // dst base += 4 columns
	DECQ R13
	JNE  iblock

done:
	VZEROUPPER
	RET

// EXPNEGY0: Y0 (non-positive arguments) -> Y0 = exp(Y0).
// Clobbers Y1, Y2, Y11; expects the constant registers loaded by
// EXPCONSTS. Arguments below -708 flush to +0. Degree-11 Taylor on the
// reduced argument |r| <= ln2/2 keeps the relative error ~1e-14.
#define EXPCONSTS \
	VMOVUPD exp_log2e<>(SB), Y15 \
	VMOVUPD exp_ln2hi<>(SB), Y14 \
	VMOVUPD exp_ln2lo<>(SB), Y13 \
	VMOVUPD exp_min<>(SB), Y12

// Steps: mask = x > -708 (GT_OQ); k = round(x*log2e); two-step
// reduction r = x - k*ln2hi - k*ln2lo; degree-11 Horner for exp(r);
// scale by 2^k by adding k to the exponent bits; mask flushes
// underflow to +0.
#define EXPNEGY0 \
	VCMPPD $0x1E, Y12, Y0, Y11 \
	VMULPD Y15, Y0, Y1 \
	VROUNDPD $0, Y1, Y1 \
	VFNMADD231PD Y14, Y1, Y0 \
	VFNMADD231PD Y13, Y1, Y0 \
	VMOVUPD exp_c11<>(SB), Y2 \
	VFMADD213PD exp_c10<>(SB), Y0, Y2 \
	VFMADD213PD exp_c9<>(SB), Y0, Y2 \
	VFMADD213PD exp_c8<>(SB), Y0, Y2 \
	VFMADD213PD exp_c7<>(SB), Y0, Y2 \
	VFMADD213PD exp_c6<>(SB), Y0, Y2 \
	VFMADD213PD exp_c5<>(SB), Y0, Y2 \
	VFMADD213PD exp_c4<>(SB), Y0, Y2 \
	VFMADD213PD exp_c3<>(SB), Y0, Y2 \
	VFMADD213PD exp_c2<>(SB), Y0, Y2 \
	VFMADD213PD exp_c1<>(SB), Y0, Y2 \
	VFMADD213PD exp_c0<>(SB), Y0, Y2 \
	VCVTPD2DQY Y1, X1 \
	VPMOVSXDQ X1, Y1 \
	VPSLLQ $52, Y1, Y1 \
	VPADDQ Y1, Y2, Y2 \
	VANDPD Y11, Y2, Y0

// EXPNEG2: like EXPNEGY0 but transforms Y0 and Y3 together, using
// temps Y1/Y2/Y11 and Y4/Y5/Y6. The two interleaved Horner chains
// hide the FMA latency a single chain would serialize on.
#define EXPNEG2 \
	VCMPPD $0x1E, Y12, Y0, Y11 \
	VCMPPD $0x1E, Y12, Y3, Y6 \
	VMULPD Y15, Y0, Y1 \
	VMULPD Y15, Y3, Y4 \
	VROUNDPD $0, Y1, Y1 \
	VROUNDPD $0, Y4, Y4 \
	VFNMADD231PD Y14, Y1, Y0 \
	VFNMADD231PD Y14, Y4, Y3 \
	VFNMADD231PD Y13, Y1, Y0 \
	VFNMADD231PD Y13, Y4, Y3 \
	VMOVUPD exp_c11<>(SB), Y2 \
	VMOVUPD exp_c11<>(SB), Y5 \
	VFMADD213PD exp_c10<>(SB), Y0, Y2 \
	VFMADD213PD exp_c10<>(SB), Y3, Y5 \
	VFMADD213PD exp_c9<>(SB), Y0, Y2 \
	VFMADD213PD exp_c9<>(SB), Y3, Y5 \
	VFMADD213PD exp_c8<>(SB), Y0, Y2 \
	VFMADD213PD exp_c8<>(SB), Y3, Y5 \
	VFMADD213PD exp_c7<>(SB), Y0, Y2 \
	VFMADD213PD exp_c7<>(SB), Y3, Y5 \
	VFMADD213PD exp_c6<>(SB), Y0, Y2 \
	VFMADD213PD exp_c6<>(SB), Y3, Y5 \
	VFMADD213PD exp_c5<>(SB), Y0, Y2 \
	VFMADD213PD exp_c5<>(SB), Y3, Y5 \
	VFMADD213PD exp_c4<>(SB), Y0, Y2 \
	VFMADD213PD exp_c4<>(SB), Y3, Y5 \
	VFMADD213PD exp_c3<>(SB), Y0, Y2 \
	VFMADD213PD exp_c3<>(SB), Y3, Y5 \
	VFMADD213PD exp_c2<>(SB), Y0, Y2 \
	VFMADD213PD exp_c2<>(SB), Y3, Y5 \
	VFMADD213PD exp_c1<>(SB), Y0, Y2 \
	VFMADD213PD exp_c1<>(SB), Y3, Y5 \
	VFMADD213PD exp_c0<>(SB), Y0, Y2 \
	VFMADD213PD exp_c0<>(SB), Y3, Y5 \
	VCVTPD2DQY Y1, X1 \
	VCVTPD2DQY Y4, X4 \
	VPMOVSXDQ X1, Y1 \
	VPMOVSXDQ X4, Y4 \
	VPSLLQ $52, Y1, Y1 \
	VPSLLQ $52, Y4, Y4 \
	VPADDQ Y1, Y2, Y2 \
	VPADDQ Y4, Y5, Y5 \
	VANDPD Y11, Y2, Y0 \
	VANDPD Y6, Y5, Y3

// func expNegAVX2(p *float64, n uintptr)
// In-place exp() over n non-positive float64s; n must be a multiple
// of 4 (the caller handles the tail).
TEXT ·expNegAVX2(SB), NOSPLIT, $0-16
	MOVQ p+0(FP), SI
	MOVQ n+8(FP), CX
	SHRQ $2, CX
	TESTQ CX, CX
	JE   done
	EXPCONSTS

	MOVQ CX, DX
	SHRQ $1, DX
	TESTQ DX, DX
	JE   tail1

loop2:
	VMOVUPD (SI), Y0
	VMOVUPD 32(SI), Y3
	EXPNEG2
	VMOVUPD Y0, (SI)
	VMOVUPD Y3, 32(SI)
	ADDQ $64, SI
	DECQ DX
	JNE  loop2

tail1:
	ANDQ $1, CX
	JE   done
	VMOVUPD (SI), Y0
	EXPNEGY0
	VMOVUPD Y0, (SI)

done:
	VZEROUPPER
	RET

// func rbfRowAVX2(p, norms *float64, selfNorm, gamma float64, n uintptr)
// p[j] = exp(-gamma * max(0, selfNorm + norms[j] - 2*p[j])) for j < n,
// n a multiple of 4 (the caller handles the tail). This fuses the
// squared-norm trick ||a-b||^2 = ||a||^2 + ||b||^2 - 2 a.b with the
// Gaussian map so a Gram row never leaves registers between the two.
TEXT ·rbfRowAVX2(SB), NOSPLIT, $0-40
	MOVQ p+0(FP), SI
	MOVQ norms+8(FP), DI
	MOVQ n+32(FP), CX
	SHRQ $2, CX
	TESTQ CX, CX
	JE   done
	EXPCONSTS
	VBROADCASTSD selfNorm+16(FP), Y10
	VBROADCASTSD gamma+24(FP), Y9
	VXORPD exp_signmask<>(SB), Y9, Y9 // -gamma
	VMOVUPD exp_negtwo<>(SB), Y8
	VXORPD Y7, Y7, Y7            // zeros

	MOVQ CX, DX
	SHRQ $1, DX
	TESTQ DX, DX
	JE   tail1

loop2:
	VMOVUPD (DI), Y0             // norms[j]
	VMOVUPD 32(DI), Y3
	VADDPD Y10, Y0, Y0           // + selfNorm
	VADDPD Y10, Y3, Y3
	VFMADD231PD (SI), Y8, Y0     // - 2*p[j]
	VFMADD231PD 32(SI), Y8, Y3
	VMAXPD Y7, Y0, Y0            // clamp tiny negative distances to 0
	VMAXPD Y7, Y3, Y3
	VMULPD Y9, Y0, Y0            // -gamma*d2
	VMULPD Y9, Y3, Y3
	EXPNEG2
	VMOVUPD Y0, (SI)
	VMOVUPD Y3, 32(SI)
	ADDQ $64, SI
	ADDQ $64, DI
	DECQ DX
	JNE  loop2

tail1:
	ANDQ $1, CX
	JE   done
	VMOVUPD (DI), Y0
	VADDPD Y10, Y0, Y0
	VFMADD231PD (SI), Y8, Y0
	VMAXPD Y7, Y0, Y0
	VMULPD Y9, Y0, Y0
	EXPNEGY0
	VMOVUPD Y0, (SI)

done:
	VZEROUPPER
	RET

// func axpyAVX2(dst, src *float64, alpha float64, nq uintptr)
// dst[i] += alpha*src[i] for i < 4*nq (the caller handles the tail).
TEXT ·axpyAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	VBROADCASTSD alpha+16(FP), Y3
	MOVQ nq+24(FP), CX

	// 2x unroll: 8 elements per iteration.
	MOVQ CX, DX
	SHRQ $1, DX
	TESTQ DX, DX
	JE   tail1

loop2:
	VMOVUPD (SI), Y0
	VMOVUPD 32(SI), Y1
	VFMADD213PD (DI), Y3, Y0
	VFMADD213PD 32(DI), Y3, Y1
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	ADDQ $64, SI
	ADDQ $64, DI
	DECQ DX
	JNE  loop2

tail1:
	ANDQ $1, CX
	JE   done
	VMOVUPD (SI), Y0
	VFMADD213PD (DI), Y3, Y0
	VMOVUPD Y0, (DI)

done:
	VZEROUPPER
	RET

#define DUP4(name, val) \
	DATA name<>+0(SB)/8, val \
	DATA name<>+8(SB)/8, val \
	DATA name<>+16(SB)/8, val \
	DATA name<>+24(SB)/8, val \
	GLOBL name<>(SB), RODATA, $32

DUP4(exp_log2e, $1.4426950408889634074)
DUP4(exp_ln2hi, $0.693145751953125)
DUP4(exp_ln2lo, $1.42860682030941723212e-6)
DUP4(exp_min, $-708.0)
DUP4(exp_c0, $1.0)
DUP4(exp_c1, $1.0)
DUP4(exp_c2, $0.5)
DUP4(exp_c3, $0.16666666666666666667)
DUP4(exp_c4, $0.041666666666666666667)
DUP4(exp_c5, $0.0083333333333333333333)
DUP4(exp_c6, $0.0013888888888888888889)
DUP4(exp_c7, $1.9841269841269841270e-4)
DUP4(exp_c8, $2.4801587301587301587e-5)
DUP4(exp_c9, $2.7557319223985890653e-6)
DUP4(exp_c10, $2.7557319223985890653e-7)
DUP4(exp_c11, $2.5052108385441718775e-8)
DUP4(exp_negtwo, $-2.0)
DATA exp_signmask<>+0(SB)/8, $0x8000000000000000
DATA exp_signmask<>+8(SB)/8, $0x8000000000000000
DATA exp_signmask<>+16(SB)/8, $0x8000000000000000
DATA exp_signmask<>+24(SB)/8, $0x8000000000000000
GLOBL exp_signmask<>(SB), RODATA, $32

// func combo8AVX2(dst, src, coefs *float64, stride, nq uintptr)
// dst[0:4nq] += sum_{j<8} coefs[j] * src[j*stride : j*stride+4nq].
// The 8 coefficient broadcasts stay resident in Y8-Y15; the chunk loop
// is 2x unrolled (8 elements) with independent accumulators so the
// FMA chains overlap. The reflector-block application of Cholesky
// downdating is the caller: one call replaces 8 separate axpys.
TEXT ·combo8AVX2(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ coefs+16(FP), BX
	MOVQ stride+24(FP), R9
	SHLQ $3, R9           // stride in bytes
	MOVQ nq+32(FP), CX

	VBROADCASTSD (BX), Y8
	VBROADCASTSD 8(BX), Y9
	VBROADCASTSD 16(BX), Y10
	VBROADCASTSD 24(BX), Y11
	VBROADCASTSD 32(BX), Y12
	VBROADCASTSD 40(BX), Y13
	VBROADCASTSD 48(BX), Y14
	VBROADCASTSD 56(BX), Y15

	// Row base pointers: SI,R10..R14,AX,DX hold rows 0..7.
	LEAQ (SI)(R9*1), R10
	LEAQ (SI)(R9*2), R11
	LEAQ (R10)(R9*2), R12
	LEAQ (R11)(R9*2), R13
	LEAQ (R12)(R9*2), R14
	LEAQ (R13)(R9*2), AX
	LEAQ (R14)(R9*2), DX

	// 2x unroll: 8 elements per iteration, two accumulators.
	MOVQ CX, BX
	SHRQ $1, BX
	TESTQ BX, BX
	JE   tail1

loop2:
	VMOVUPD (DI), Y0
	VMOVUPD 32(DI), Y1
	VMOVUPD (SI), Y2
	VFMADD231PD Y8, Y2, Y0
	VMOVUPD 32(SI), Y3
	VFMADD231PD Y8, Y3, Y1
	VMOVUPD (R10), Y4
	VFMADD231PD Y9, Y4, Y0
	VMOVUPD 32(R10), Y5
	VFMADD231PD Y9, Y5, Y1
	VMOVUPD (R11), Y2
	VFMADD231PD Y10, Y2, Y0
	VMOVUPD 32(R11), Y3
	VFMADD231PD Y10, Y3, Y1
	VMOVUPD (R12), Y4
	VFMADD231PD Y11, Y4, Y0
	VMOVUPD 32(R12), Y5
	VFMADD231PD Y11, Y5, Y1
	VMOVUPD (R13), Y2
	VFMADD231PD Y12, Y2, Y0
	VMOVUPD 32(R13), Y3
	VFMADD231PD Y12, Y3, Y1
	VMOVUPD (R14), Y4
	VFMADD231PD Y13, Y4, Y0
	VMOVUPD 32(R14), Y5
	VFMADD231PD Y13, Y5, Y1
	VMOVUPD (AX), Y2
	VFMADD231PD Y14, Y2, Y0
	VMOVUPD 32(AX), Y3
	VFMADD231PD Y14, Y3, Y1
	VMOVUPD (DX), Y4
	VFMADD231PD Y15, Y4, Y0
	VMOVUPD 32(DX), Y5
	VFMADD231PD Y15, Y5, Y1
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	ADDQ $64, DI
	ADDQ $64, SI
	ADDQ $64, R10
	ADDQ $64, R11
	ADDQ $64, R12
	ADDQ $64, R13
	ADDQ $64, R14
	ADDQ $64, AX
	ADDQ $64, DX
	DECQ BX
	JNE  loop2

tail1:
	ANDQ $1, CX
	JE   done
	VMOVUPD (DI), Y0
	VMOVUPD (SI), Y2
	VFMADD231PD Y8, Y2, Y0
	VMOVUPD (R10), Y3
	VFMADD231PD Y9, Y3, Y0
	VMOVUPD (R11), Y4
	VFMADD231PD Y10, Y4, Y0
	VMOVUPD (R12), Y5
	VFMADD231PD Y11, Y5, Y0
	VMOVUPD (R13), Y2
	VFMADD231PD Y12, Y2, Y0
	VMOVUPD (R14), Y3
	VFMADD231PD Y13, Y3, Y0
	VMOVUPD (AX), Y4
	VFMADD231PD Y14, Y4, Y0
	VMOVUPD (DX), Y5
	VFMADD231PD Y15, Y5, Y0
	VMOVUPD Y0, (DI)

done:
	VZEROUPPER
	RET
