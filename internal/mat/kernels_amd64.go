//go:build amd64 && !purego

package mat

// Assembly bindings (kernels_amd64.s) plus the one-time CPUID probe
// that decides whether the AVX2/FMA fast paths are safe to use.

//go:noescape
func dotsRowAVX2(x, y *float64, ld, dq, groups uintptr, out *float64)

//go:noescape
func dots2RowAVX2(x0, x1, y *float64, ld, dq, groups uintptr, out0, out1 *float64)

//go:noescape
func trsvLowerAVX2(l *float64, ld uintptr, z *float64, m uintptr)

//go:noescape
func dotAVX2(x, y *float64, nq uintptr) float64

//go:noescape
func transposeBlockAVX2(src, dst *float64, stride, ni, nj uintptr)

//go:noescape
func expNegAVX2(p *float64, n uintptr)

//go:noescape
func rbfRowAVX2(p, norms *float64, selfNorm, gamma float64, n uintptr)

//go:noescape
func axpyAVX2(dst, src *float64, alpha float64, nq uintptr)

//go:noescape
func combo8AVX2(dst, src, coefs *float64, stride, nq uintptr)

func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

func xgetbvAsm() (eax, edx uint32)

// useAsm reports whether the CPU and OS support AVX2+FMA with
// OS-managed YMM state.
var useAsm = func() bool {
	maxLeaf, _, _, _ := cpuidAsm(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidAsm(1, 0)
	const fmaBit, osxsaveBit, avxBit = 1 << 12, 1 << 27, 1 << 28
	if ecx1&fmaBit == 0 || ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	// OS must save/restore XMM (bit 1) and YMM (bit 2) state.
	xcr0, _ := xgetbvAsm()
	if xcr0&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuidAsm(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}()

// swapUseAsm flips the dispatch flag (test hook).
func swapUseAsm(on bool) (prev bool) {
	prev, useAsm = useAsm, on && useAsmDetected
	return prev
}

// useAsmDetected remembers the CPUID probe so tests cannot enable the
// assembly paths on hardware that lacks them.
var useAsmDetected = useAsm
