//go:build !amd64 || purego

package mat

// Non-amd64 (or purego) build: the exported primitives always take
// the pure-Go paths in kernels_go.go. The stubs below are never
// reached; they exist so the dispatch code compiles everywhere.

const useAsm = false

func dotsRowAVX2(x, y *float64, ld, dq, groups uintptr, out *float64) { panic("mat: no asm") }

func dots2RowAVX2(x0, x1, y *float64, ld, dq, groups uintptr, out0, out1 *float64) {
	panic("mat: no asm")
}

func trsvLowerAVX2(l *float64, ld uintptr, z *float64, m uintptr) { panic("mat: no asm") }

func dotAVX2(x, y *float64, nq uintptr) float64 { panic("mat: no asm") }

func transposeBlockAVX2(src, dst *float64, stride, ni, nj uintptr) { panic("mat: no asm") }

func expNegAVX2(p *float64, n uintptr) { panic("mat: no asm") }

func rbfRowAVX2(p, norms *float64, selfNorm, gamma float64, n uintptr) { panic("mat: no asm") }

func axpyAVX2(dst, src *float64, alpha float64, nq uintptr) { panic("mat: no asm") }

func combo8AVX2(dst, src, coefs *float64, stride, nq uintptr) { panic("mat: no asm") }

// swapUseAsm is a no-op without assembly kernels (test hook).
func swapUseAsm(bool) (prev bool) { return false }
