package mat

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parforMinChunk is the smallest row range worth handing to a worker;
// below it the goroutine hand-off costs more than the work.
const parforMinChunk = 8

// parforActive guards against nested or concurrent parallel regions:
// when the training pipeline already runs one model fit per CPU, the
// per-fit Gram/Cholesky loops would otherwise spawn another GOMAXPROCS
// goroutines each, oversubscribing CPU-bound work ~P×. The first
// region to claim the token parallelizes; any region starting while it
// runs executes inline (same results — ranges are disjoint either
// way).
var parforActive atomic.Bool

// Parfor runs fn over disjoint sub-ranges covering [0, n), using up to
// GOMAXPROCS goroutines. Chunks are claimed from an atomic counter so
// uneven per-row costs (e.g. triangular loops) still balance. fn must
// only write state disjoint across ranges; results are then independent
// of scheduling, keeping callers bitwise deterministic. With one
// available CPU, a small n, or another Parfor region already running,
// fn runs inline on the caller's goroutine.
func Parfor(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n/parforMinChunk {
		workers = n / parforMinChunk
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	if !parforActive.CompareAndSwap(false, true) {
		fn(0, n)
		return
	}
	defer parforActive.Store(false)
	// ~4 chunks per worker keeps the tail short without excessive
	// cross-goroutine traffic.
	chunk := n / (workers * 4)
	if chunk < parforMinChunk {
		chunk = parforMinChunk
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}
