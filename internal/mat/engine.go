package mat

import (
	"fmt"
	"math"
)

// This file is the flat, cache-blocked, goroutine-parallel compute
// engine behind the learners' hot paths: SymRankK (X·Xᵀ) for Gram
// matrices, a row-parallel Mul, and a blocked right-looking Cholesky
// whose cubic trailing update runs through the same batched
// dot-product kernel. All loops parallelize over disjoint row ranges
// via Parfor, so results are bitwise deterministic regardless of
// GOMAXPROCS.

// symTile is the panel-row tile of the paired triangular products
// (SymRankK, the Cholesky trailing update): with the row loop tiled,
// one tile of panel rows stays L1-resident while every row pair in a
// worker's range streams over it, so the two-row register kernel reads
// the B panel from cache instead of re-streaming it per output row.
const symTile = 48

// SymRankK returns the symmetric rank-k product x·xᵀ (n×n for an n×d
// input). Only the lower triangle is computed; the upper triangle is
// mirrored from it. Rows are processed in globally-aligned pairs
// through the two-row register tile (DotBatch2) with the panel walk
// tiled for L1 reuse; pairing is by absolute row index and the tile
// grid is fixed, so every element's reduction path — and therefore its
// bits — is independent of how Parfor splits the pair ranges.
func SymRankK(x *Dense) *Dense {
	n, d := x.rows, x.cols
	out := NewDense(n, n)
	pairs := (n + 1) / 2
	Parfor(pairs, func(plo, phi int) {
		for t0 := 0; t0 < 2*phi; t0 += symTile {
			for p := max(plo, t0/2); p < phi; p++ {
				i := 2 * p
				hi := min(i+1, t0+symTile)
				if hi <= t0 {
					continue
				}
				seg := hi - t0
				xi := x.data[i*d : i*d+d]
				if i+1 < n {
					xj := x.data[(i+1)*d : (i+1)*d+d]
					DotBatch2(xi, xj, x.data[t0*d:], d, seg,
						out.data[i*n+t0:], out.data[(i+1)*n+t0:])
				} else {
					DotBatch(xi, x.data[t0*d:], d, seg, out.data[i*n+t0:])
				}
			}
		}
		// The paired pass covers columns [0, 2p+1) of both rows; the
		// odd row's diagonal is its self dot.
		for p := plo; p < phi; p++ {
			i := 2 * p
			if i+1 < n {
				xj := x.data[(i+1)*d : (i+1)*d+d]
				out.data[(i+1)*n+i+1] = Dot(xj, xj)
			}
		}
	})
	MirrorLower(out)
	return out
}

// MirrorLower copies the strictly-lower triangle of a square matrix to
// the upper one, walking tiles to keep both sides of the copy
// cache-resident. Builders of symmetric matrices (SymRankK, the kernel
// package's Gram fast paths) fill the lower triangle and mirror once.
func MirrorLower(m *Dense) {
	n := m.rows
	const tile = 128
	nt := (n + tile - 1) / tile
	// Tile (bi, bj) with bj <= bi reads rows bi-range, writes rows
	// bj-range. Parallelize over bj strips: writes stay disjoint.
	Parfor(nt, func(lo, hi int) {
		for bj := lo; bj < hi; bj++ {
			j0, j1 := bj*tile, min(bj*tile+tile, n)
			for i0 := j0; i0 < n; i0 += tile {
				i1 := min(i0+tile, n)
				if useAsm && i0 >= j1 {
					// Off-diagonal tile: bulk 4x4 register
					// transposes, scalar edges.
					ni4, nj4 := (i1-i0)&^3, (j1-j0)&^3
					if ni4 > 0 && nj4 > 0 {
						transposeBlockAVX2(&m.data[i0*n+j0], &m.data[j0*n+i0],
							uintptr(n), uintptr(ni4), uintptr(nj4))
					}
					for j := j0; j < j1; j++ {
						drow := m.data[j*n:]
						iStart := i0 + ni4
						if j >= j0+nj4 {
							iStart = i0
						}
						for i := iStart; i < i1; i++ {
							drow[i] = m.data[i*n+j]
						}
					}
					continue
				}
				// Diagonal or fallback tile: j outer / i inner writes
				// each destination row contiguously; the strided
				// reads stay inside the cached tile.
				for j := j0; j < j1; j++ {
					iStart := max(j+1, i0)
					drow := m.data[j*n:]
					for i := iStart; i < i1; i++ {
						drow[i] = m.data[i*n+j]
					}
				}
			}
		}
	})
}

// mulBlock is the k-panel height for Mul: 128 rows of b (one panel)
// stay resident in cache while a row strip streams over them.
const mulBlock = 128

// Mul returns the matrix product a·b, parallelized over rows of a with
// the inner update running through the AddScaled kernel.
func Mul(a, b *Dense) (*Dense, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("%w: %dx%d times %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := NewDense(a.rows, b.cols)
	bc := b.cols
	Parfor(a.rows, func(lo, hi int) {
		for k0 := 0; k0 < a.cols; k0 += mulBlock {
			k1 := min(k0+mulBlock, a.cols)
			for i := lo; i < hi; i++ {
				arow := a.data[i*a.cols : (i+1)*a.cols]
				orow := out.data[i*bc : (i+1)*bc]
				for k := k0; k < k1; k++ {
					if av := arow[k]; av != 0 {
						AddScaled(orow, av, b.data[k*bc:(k+1)*bc])
					}
				}
			}
		}
	})
	return out, nil
}

// cholBlock is the panel width of the blocked Cholesky. The diagonal
// block factors serially; the panel solve and the (cubic) trailing
// update parallelize over rows.
const cholBlock = 64

// NewCholesky factorizes the symmetric positive-definite matrix a as
// L·Lᵀ using a blocked right-looking algorithm. Only the lower
// triangle of a is read. It returns ErrNotPositiveDefinite when a
// pivot is non-positive or NaN.
func NewCholesky(a *Dense) (*Cholesky, error) {
	if a.rows != a.cols {
		return nil, ErrNonSquare
	}
	n := a.rows
	c := &Cholesky{n: n, stride: n, data: make([]float64, n*n)}
	// Copy the lower triangle; the upper is never read.
	for i := 0; i < n; i++ {
		copy(c.data[i*n:i*n+i+1], a.data[i*n:i*n+i+1])
	}
	if err := cholFactor(c.data, n, n); err != nil {
		return nil, err
	}
	return c, nil
}

// NewCholeskyGrow is NewCholesky with spare capacity: the factor
// buffer is sized for capRows rows (drawn from pool when given), so
// later Extend calls up to that size run fully in place with no
// reallocation or triangle copy. Incremental retrainers use it to
// pre-pay for the appends they expect.
func NewCholeskyGrow(a *Dense, capRows int, pool *Pool) (*Cholesky, error) {
	if a.rows != a.cols {
		return nil, ErrNonSquare
	}
	n := a.rows
	if capRows < n {
		capRows = n
	}
	c := &Cholesky{n: n, stride: capRows, data: pool.GetVec(capRows * capRows)}
	for i := 0; i < n; i++ {
		copy(c.data[i*capRows:i*capRows+i+1], a.data[i*n:i*n+i+1])
	}
	if err := cholFactor(c.data, n, capRows); err != nil {
		pool.PutVec(c.data)
		return nil, err
	}
	return c, nil
}

// cholFactor runs the blocked right-looking factorization in place
// over an n×n lower triangle stored with row stride ld (ld >= n; the
// columns beyond n are untouched, which lets Extend factor a trailing
// block inside a larger strided buffer). Input is the lower triangle
// of A; output is L.
func cholFactor(d []float64, n, ld int) error {
	for j0 := 0; j0 < n; j0 += cholBlock {
		j1 := min(j0+cholBlock, n)
		// Factor the diagonal block in place (serial: it is at most
		// cholBlock wide and sits on the critical path).
		for c := j0; c < j1; c++ {
			crow := d[c*ld : c*ld+j1]
			pv := crow[c]
			for k := j0; k < c; k++ {
				pv -= crow[k] * crow[k]
			}
			if pv <= 0 || math.IsNaN(pv) {
				return ErrNotPositiveDefinite
			}
			cc := math.Sqrt(pv)
			crow[c] = cc
			for i := c + 1; i < j1; i++ {
				irow := d[i*ld : i*ld+j1]
				s := irow[c]
				for k := j0; k < c; k++ {
					s -= irow[k] * crow[k]
				}
				irow[c] = s / cc
			}
		}
		if j1 == n {
			break
		}
		// Panel solve: L[i, j0:j1] · L[j0:j1, j0:j1]ᵀ = A[i, j0:j1]
		// row by row (rows are independent). Each row is a forward
		// substitution against the diagonal block — the TrsvLower
		// micro-kernel.
		diag := d[j0*ld+j0:]
		Parfor(n-j1, func(lo, hi int) {
			for i := j1 + lo; i < j1+hi; i++ {
				TrsvLower(diag, ld, j1-j0, d[i*ld+j0:i*ld+j1])
			}
		})
		// Trailing update: A[i, j2] -= L[i, j0:j1] · L[j2, j0:j1] for
		// j1 <= j2 <= i — a SYRK through the two-row register tile,
		// rows paired by absolute index and the j2 panel walk tiled so
		// a tile of panel rows loaded into L1 serves every pair in the
		// worker's range. Pairing and the tile grid are global, so the
		// update stays bitwise deterministic under any Parfor split.
		pairs := (n - j1 + 1) / 2
		Parfor(pairs, func(plo, phi int) {
			var s0, s1 [symTile]float64
			for t0 := 0; t0 < 2*phi; t0 += symTile {
				for p := max(plo, t0/2); p < phi; p++ {
					i := j1 + 2*p
					hi := min(2*p+1, t0+symTile)
					if hi <= t0 {
						continue
					}
					seg := hi - t0
					panel := d[(j1+t0)*ld+j0:]
					x0 := d[i*ld+j0 : i*ld+j1]
					irow0 := d[i*ld+j1+t0:]
					if i+1 < n {
						x1 := d[(i+1)*ld+j0 : (i+1)*ld+j1]
						DotBatch2(x0, x1, panel, ld, seg, s0[:seg], s1[:seg])
						irow1 := d[(i+1)*ld+j1+t0:]
						for t := 0; t < seg; t++ {
							irow0[t] -= s0[t]
							irow1[t] -= s1[t]
						}
					} else {
						DotBatch(x0, panel, ld, seg, s0[:seg])
						for t := 0; t < seg; t++ {
							irow0[t] -= s0[t]
						}
					}
				}
			}
			// The paired pass stops at column i of row i+1; the odd
			// row's diagonal update is its panel self dot.
			for p := plo; p < phi; p++ {
				i := j1 + 2*p
				if i+1 < n {
					x1 := d[(i+1)*ld+j0 : (i+1)*ld+j1]
					d[(i+1)*ld+i+1] -= Dot(x1, x1)
				}
			}
		})
	}
	return nil
}
