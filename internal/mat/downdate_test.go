package mat

import (
	"math"
	"testing"

	"repro/internal/randx"
)

// trailSPD returns the trailing m×m block of a.
func trailSPD(a *Dense, k int) *Dense {
	m := a.Rows() - k
	out := NewDense(m, m)
	for i := 0; i < m; i++ {
		copy(out.Row(i), a.Row(k + i)[k:])
	}
	return out
}

// TestCholDowndateMatchesTrailingFactor pins Downdate against a
// from-scratch factorization of the surviving block, across sizes that
// exercise both the Householder sweep and the re-factorization
// fallback (3k > 2m).
func TestCholDowndateMatchesTrailingFactor(t *testing.T) {
	forEachKernelPath(t, func(t *testing.T) {
		src := randx.New(51)
		pool := &Pool{}
		for _, tc := range []struct{ n, k int }{
			{2, 1}, {8, 3}, {40, 1}, {65, 13}, {100, 37}, {100, 80}, {130, 50}, {64, 60},
		} {
			a := randSPD(src, tc.n)
			ch, err := NewCholeskyGrow(a, tc.n, pool)
			if err != nil {
				t.Fatalf("n=%d: %v", tc.n, err)
			}
			shift, err := ch.Downdate(tc.k, pool)
			if err != nil {
				t.Fatalf("downdate n=%d k=%d: %v", tc.n, tc.k, err)
			}
			if shift != 0 {
				t.Fatalf("downdate n=%d k=%d: well-conditioned block needed jitter %g", tc.n, tc.k, shift)
			}
			m := tc.n - tc.k
			if ch.Size() != m {
				t.Fatalf("downdate n=%d k=%d: size %d", tc.n, tc.k, ch.Size())
			}
			want, err := NewCholesky(trailSPD(a, tc.k))
			if err != nil {
				t.Fatal(err)
			}
			if d := maxAbsDiff(ch.L(), want.L()); d > 1e-8 {
				t.Fatalf("downdate n=%d k=%d: factor diff %g", tc.n, tc.k, d)
			}
		}
	})
}

// TestCholDowndateEdges covers the degenerate arguments: k=0 is a
// no-op, k=n empties the factor (and a later Extend regrows it from
// nothing), negative or oversized k is rejected.
func TestCholDowndateEdges(t *testing.T) {
	src := randx.New(52)
	pool := &Pool{}
	a := randSPD(src, 20)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Downdate(0, pool); err != nil || ch.Size() != 20 {
		t.Fatalf("k=0: %v size %d", err, ch.Size())
	}
	if _, err := ch.Downdate(-1, pool); err != ErrShape {
		t.Fatalf("k=-1: %v", err)
	}
	if _, err := ch.Downdate(21, pool); err != ErrShape {
		t.Fatalf("k=21: %v", err)
	}
	if _, err := ch.Downdate(20, pool); err != nil || ch.Size() != 0 {
		t.Fatalf("k=n: %v size %d", err, ch.Size())
	}
	// Regrow from empty: Extend with the full matrix as the border.
	a21 := NewDense(5, 0)
	if err := ch.Extend(a21, subSPD(a, 5), pool); err != nil {
		t.Fatalf("extend from empty: %v", err)
	}
	want, _ := NewCholesky(subSPD(a, 5))
	if d := maxAbsDiff(ch.L(), want.L()); d > 1e-10 {
		t.Fatalf("regrow from empty: factor diff %g", d)
	}
}

// slideState drives a factored sliding window over a stream of feature
// rows: A = X·Xᵀ + ridge·I over the rows currently in the window.
type slideState struct {
	rows  [][]float64
	ridge float64
}

func (s *slideState) gram(lo, hi int) *Dense {
	m := hi - lo
	a := NewDense(m, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			a.Set(i, j, Dot(s.rows[lo+i], s.rows[lo+j]))
		}
		a.Set(i, i, a.At(i, i)+s.ridge)
	}
	return a
}

func (s *slideState) border(lo, mid, hi int) (a21, a22 *Dense) {
	a21 = NewDense(hi-mid, mid-lo)
	a22 = NewDense(hi-mid, hi-mid)
	for i := mid; i < hi; i++ {
		for j := lo; j < mid; j++ {
			a21.Set(i-mid, j-lo, Dot(s.rows[i], s.rows[j]))
		}
		for j := mid; j <= i; j++ {
			a22.Set(i-mid, j-mid, Dot(s.rows[i], s.rows[j]))
		}
		a22.Set(i-mid, i-mid, a22.At(i-mid, i-mid)+s.ridge)
	}
	return a21, a22
}

// TestCholSlideCycles runs 25 evict+append cycles inside the reserved
// headroom and pins every cycle's factor to a from-scratch
// factorization of the current window — and the buffer capacity to its
// initial value (bounded memory is the whole point).
func TestCholSlideCycles(t *testing.T) {
	forEachKernelPath(t, func(t *testing.T) {
		src := randx.New(53)
		const d, window, slide, cycles = 6, 60, 9, 25
		st := &slideState{ridge: float64(window)}
		newRow := func() []float64 {
			r := make([]float64, d)
			for j := range r {
				r[j] = src.Uniform(-1, 1)
			}
			return r
		}
		for i := 0; i < window; i++ {
			st.rows = append(st.rows, newRow())
		}
		pool := &Pool{}
		ch, err := NewCholeskyGrow(st.gram(0, window), window+slide, pool)
		if err != nil {
			t.Fatal(err)
		}
		capDim := ch.Cap()
		lo := 0
		for cyc := 0; cyc < cycles; cyc++ {
			hi := len(st.rows)
			for i := 0; i < slide; i++ {
				st.rows = append(st.rows, newRow())
			}
			a21, a22 := st.border(lo, hi, hi+slide)
			if err := ch.Extend(a21, a22, pool); err != nil {
				t.Fatalf("cycle %d: extend: %v", cyc, err)
			}
			if shift, err := ch.Downdate(slide, pool); err != nil || shift != 0 {
				t.Fatalf("cycle %d: downdate: shift %g err %v", cyc, shift, err)
			}
			lo += slide
			want, err := NewCholesky(st.gram(lo, lo+window))
			if err != nil {
				t.Fatalf("cycle %d: reference: %v", cyc, err)
			}
			if diff := maxAbsDiff(ch.L(), want.L()); diff > 1e-8 {
				t.Fatalf("cycle %d: factor diff %g", cyc, diff)
			}
			if ch.Cap() != capDim {
				t.Fatalf("cycle %d: capacity grew %d -> %d", cyc, capDim, ch.Cap())
			}
		}
	})
}

// TestCholDowndateIllConditioned drives the conditioning fallback: a
// window whose surviving block is numerically singular (duplicated
// generator rows, no ridge) must come back factored — via the jittered
// re-factorization if the sweep's pivots collapse — and still solve to
// a bounded residual.
func TestCholDowndateIllConditioned(t *testing.T) {
	src := randx.New(54)
	const n, k = 30, 4
	base := make([][]float64, 0, n)
	proto := make([]float64, 3)
	for j := range proto {
		proto[j] = src.Uniform(-1, 1)
	}
	for i := 0; i < n; i++ {
		// Nearly collinear rows: rank ~3 with 1e-13 perturbations.
		r := make([]float64, 3)
		for j := range r {
			r[j] = proto[j]*float64(1+i%3) + src.Uniform(-1, 1)*1e-13
		}
		base = append(base, r)
	}
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, Dot(base[i], base[j]))
		}
	}
	pool := &Pool{}
	ch, jit, err := NewCholeskyJittered(a, n, pool)
	if err != nil {
		t.Fatalf("jittered factor: %v", err)
	}
	if jit == 0 {
		t.Fatalf("test matrix unexpectedly positive definite")
	}
	if _, err := ch.Downdate(k, pool); err != nil {
		t.Fatalf("downdate: %v", err)
	}
	m := n - k
	if ch.Size() != m {
		t.Fatalf("size %d", ch.Size())
	}
	// The factor must be finite and usable: reconstruct L·Lᵀ and check
	// it stays close to the (jittered) trailing block, modulo any
	// additional fallback shift on the diagonal.
	l := ch.L()
	for i := 0; i < m; i++ {
		for j := 0; j <= i; j++ {
			if math.IsNaN(l.At(i, j)) || math.IsInf(l.At(i, j), 0) {
				t.Fatalf("factor has non-finite entry at (%d,%d)", i, j)
			}
		}
		if l.At(i, i) <= 0 {
			t.Fatalf("non-positive pivot %g at %d", l.At(i, i), i)
		}
	}
	lt := l.T()
	lltDense, _ := Mul(l, lt)
	var maxOff float64
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i == j {
				continue
			}
			want := a.At(k+i, k+j)
			if dd := math.Abs(lltDense.At(i, j) - want); dd > maxOff {
				maxOff = dd
			}
		}
	}
	scale := 0.0
	for i := 0; i < m; i++ {
		scale = math.Max(scale, math.Abs(a.At(k+i, k+i)))
	}
	if maxOff > 1e-6*(scale+1) {
		t.Fatalf("off-diagonal reconstruction error %g (scale %g)", maxOff, scale)
	}
}

// TestSolve2MatchesSolve pins the combined two-RHS solve against two
// independent Solve calls (identical blocked arithmetic per RHS).
func TestSolve2MatchesSolve(t *testing.T) {
	forEachKernelPath(t, func(t *testing.T) {
		src := randx.New(56)
		for _, n := range []int{1, 5, 64, 130, 257} {
			a := randSPD(src, n)
			ch, err := NewCholesky(a)
			if err != nil {
				t.Fatal(err)
			}
			b := make([]float64, n)
			b2 := make([]float64, n)
			for i := range b {
				b[i] = src.Uniform(-1, 1)
				b2[i] = src.Uniform(-1, 1)
			}
			x, x2, err := ch.Solve2(b, b2)
			if err != nil {
				t.Fatal(err)
			}
			w1, err := ch.Solve(b)
			if err != nil {
				t.Fatal(err)
			}
			w2, err := ch.Solve(b2)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if x[i] != w1[i] || x2[i] != w2[i] {
					t.Fatalf("n=%d: Solve2 diverges at %d: (%g,%g) vs (%g,%g)",
						n, i, x[i], x2[i], w1[i], w2[i])
				}
			}
		}
		if _, _, err := (&Cholesky{n: 3, stride: 3, data: make([]float64, 9)}).Solve2(make([]float64, 2), make([]float64, 3)); err != ErrShape {
			t.Fatalf("shape mismatch: %v", err)
		}
	})
}

// TestCholDowndateSolve checks solves against the trailing system
// after a downdate (the path lssvm's SlideWindow actually exercises).
func TestCholDowndateSolve(t *testing.T) {
	src := randx.New(55)
	const n, k = 90, 17
	a := randSPD(src, n)
	pool := &Pool{}
	ch, err := NewCholeskyGrow(a, n, pool)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Downdate(k, pool); err != nil {
		t.Fatal(err)
	}
	m := n - k
	b := make([]float64, m)
	for i := range b {
		b[i] = src.Uniform(-1, 1)
	}
	x, err := ch.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := SolveSPD(trailSPD(a, k), b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if d := math.Abs(x[i] - want[i]); d > 1e-8 {
			t.Fatalf("solution diff %g at %d", d, i)
		}
	}
}

// BenchmarkDowndate50of1050 measures the raw factor downdate the
// n=1000 LS-SVM slide pays: evicting 50 leading rows from a factored
// 1050-dim system (the from-scratch comparison lives in lssvm's
// SlideWindow benchmarks).
func BenchmarkDowndate50of1050(b *testing.B) {
	src := randx.New(91)
	a := randSPD(src, 1050)
	pool := &Pool{}
	base, err := NewCholeskyGrow(a, 1100, pool)
	if err != nil {
		b.Fatal(err)
	}
	saved := make([]float64, len(base.data))
	copy(saved, base.data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		copy(base.data, saved)
		base.n, base.origin = 1050, 0
		b.StartTimer()
		if _, err := base.Downdate(50, pool); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCholDowndateMidSweepFallback pins the conditioning fallback when
// it trips mid-sweep, after reflectors have completed: the completed
// reflectors' panel rows hold Householder v-vectors (true panels are
// zero) and the block's pending reflectors have not reached every row
// yet, so the fallback must restore the row-Gram invariant before
// reconstructing — or it silently factors the wrong matrix.
func TestCholDowndateMidSweepFallback(t *testing.T) {
	forEachKernelPath(t, func(t *testing.T) {
		src := randx.New(57)
		const n, k = 8, 1
		// A valid factor whose LAST row is (0,...,0,1e-20): its pivot
		// collapses against maxDiag ~O(1) only after the six preceding
		// reflectors completed, which is exactly the corruption window.
		l := NewDense(n, n)
		for i := 0; i < n-1; i++ {
			for j := 0; j < i; j++ {
				l.Set(i, j, src.Uniform(-1, 1))
			}
			l.Set(i, i, src.Uniform(1, 2))
		}
		l.Set(n-1, n-1, 1e-20)
		lt := l.T()
		a, _ := Mul(l, lt)
		pool := &Pool{}
		ch, err := NewCholeskyGrow(a, n, pool)
		if err != nil {
			t.Fatal(err)
		}
		shift, err := ch.Downdate(k, pool)
		if err != nil {
			t.Fatalf("downdate: %v", err)
		}
		m := n - k
		if ch.Size() != m {
			t.Fatalf("size %d", ch.Size())
		}
		// The factored system must reproduce the true surviving block:
		// off-diagonals exactly (to tolerance), diagonals modulo the
		// fallback's uniform jitter.
		lf := ch.L()
		lft := lf.T()
		recon, _ := Mul(lf, lft)
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				want := a.At(k+i, k+j)
				if i == j {
					want += shift
				}
				if d := math.Abs(recon.At(i, j) - want); d > 1e-8 {
					t.Fatalf("reconstruction (%d,%d): %g vs %g (diff %g, shift %g)",
						i, j, recon.At(i, j), want, d, shift)
				}
			}
		}
	})
}

// TestCholOffsetOrigin pins the deferred-compaction contract of the
// factor's origin offset: Downdate advances the origin instead of
// copying the surviving triangle up-left, solves and extends run
// correctly on the shifted view, and the compaction back to origin 0
// happens exactly when an Extend needs the reclaimed headroom — never
// reallocating while the logical system still fits the buffer.
func TestCholOffsetOrigin(t *testing.T) {
	forEachKernelPath(t, func(t *testing.T) {
		src := randx.New(57)
		const d = 5
		st := &slideState{ridge: 40}
		newRow := func() []float64 {
			r := make([]float64, d)
			for j := range r {
				r[j] = src.Uniform(-1, 1)
			}
			return r
		}
		for i := 0; i < 70; i++ {
			st.rows = append(st.rows, newRow())
		}
		pool := &Pool{}
		ch, err := NewCholeskyGrow(st.gram(0, 40), 60, pool)
		if err != nil {
			t.Fatal(err)
		}
		capDim := ch.Cap()
		check := func(step string, lo, hi, wantOrigin int) {
			t.Helper()
			if ch.origin != wantOrigin {
				t.Fatalf("%s: origin %d, want %d", step, ch.origin, wantOrigin)
			}
			if ch.Cap() != capDim {
				t.Fatalf("%s: capacity moved %d -> %d", step, capDim, ch.Cap())
			}
			want, err := NewCholesky(st.gram(lo, hi))
			if err != nil {
				t.Fatalf("%s: reference: %v", step, err)
			}
			if diff := maxAbsDiff(ch.L(), want.L()); diff > 1e-8 {
				t.Fatalf("%s: factor diff %g", step, diff)
			}
			b := make([]float64, hi-lo)
			for i := range b {
				b[i] = src.Uniform(-1, 1)
			}
			x1, err := ch.Solve(b)
			if err != nil {
				t.Fatalf("%s: solve: %v", step, err)
			}
			x2, _ := want.Solve(b)
			for i := range x1 {
				if diff := math.Abs(x1[i] - x2[i]); diff > 1e-8 {
					t.Fatalf("%s: solve diff %g at %d", step, diff, i)
				}
			}
		}

		// Two evictions in a row: the origin accumulates, nothing is
		// copied, the factor still matches the trailing window.
		if _, err := ch.Downdate(6, pool); err != nil {
			t.Fatal(err)
		}
		check("downdate 6", 6, 40, 6)
		if _, err := ch.Downdate(4, pool); err != nil {
			t.Fatal(err)
		}
		check("downdate 4 more", 10, 40, 10)

		// An Extend that still fits past the origin leaves it alone.
		a21, a22 := st.border(10, 40, 60)
		if err := ch.Extend(a21, a22, pool); err != nil {
			t.Fatal(err)
		}
		check("extend within headroom", 10, 60, 10)

		// An Extend past the shifted headroom compacts (origin back to
		// 0) instead of reallocating: the logical 60-row system exactly
		// fills the original buffer.
		a21, a22 = st.border(10, 60, 70)
		if err := ch.Extend(a21, a22, pool); err != nil {
			t.Fatal(err)
		}
		check("extend with compaction", 10, 70, 0)
	})
}
