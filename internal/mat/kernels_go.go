package mat

import "math"

// Pure-Go twins of the AVX2 kernels in kernels_amd64.s. They are the
// only implementations on non-amd64 targets (or with the purego build
// tag) and the reference the assembly is tested against. The exported
// batched primitives (DotBatch, RBFRow, AddScaled)
// dispatch on useAsm, set once at init.

// DotBatch computes out[t] = x · y[t*ld : t*ld+len(x)] for t < count:
// one vector against count equally-strided rows of a flat buffer. It
// is the workhorse behind SymRankK, the Cholesky trailing update, and
// the kernel package's Gram and batched-prediction paths.
// Requires len(x) <= ld and (count-1)*ld+len(x) <= len(y).
func DotBatch(x, y []float64, ld, count int, out []float64) {
	if count <= 0 {
		return
	}
	_ = out[count-1]
	t := 0
	if useAsm && len(x) >= 4 && count >= 8 {
		dq := uintptr(len(x) / 4)
		groups := count / 8
		t = groups * 8
		_ = y[(t-1)*ld+len(x)-1]
		_ = out[t-1]
		dotsRowAVX2(&x[0], &y[0], uintptr(ld), dq, uintptr(groups), &out[0])
		if tail := x[len(x)&^3:]; len(tail) > 0 {
			for u := 0; u < t; u++ {
				row := y[u*ld+len(x)-len(tail):]
				s := out[u]
				for k, v := range tail {
					s += v * row[k]
				}
				out[u] = s
			}
		}
	}
	for ; t < count; t++ {
		row := y[t*ld : t*ld+len(x)]
		var s float64
		for k, v := range x {
			s += v * row[k]
		}
		out[t] = s
	}
}

// DotBatch2 is the register-tiled two-row variant of DotBatch:
// out0[t] = x0 · y[t*ld : t*ld+len(x0)] and out1[t] = x1 · y[...] for
// t < count, in one pass over the strided panel. x0 and x1 must have
// equal length <= ld. The assembly kernel keeps a 2-row × 4-column
// accumulator tile pinned in Y registers (a 2×8 update per unrolled
// iteration), so each panel row load feeds both output rows — half
// the B-panel traffic of two one-row passes. Per-row results are
// bit-identical to dotsRowAVX2 for rows both kernels reach through
// their vector path. Callers that also tile the panel rows (Gram
// construction, the Cholesky trailing update, batched prediction) keep
// the panel L1-resident across many row pairs.
func DotBatch2(x0, x1, y []float64, ld, count int, out0, out1 []float64) {
	if count <= 0 {
		return
	}
	_ = out0[count-1]
	_ = out1[count-1]
	t := 0
	if useAsm && len(x0) >= 4 && count >= 4 {
		dq := uintptr(len(x0) / 4)
		groups := count / 4
		t = groups * 4
		_ = y[(t-1)*ld+len(x0)-1]
		_ = out0[t-1]
		_ = out1[t-1]
		dots2RowAVX2(&x0[0], &x1[0], &y[0], uintptr(ld), dq, uintptr(groups), &out0[0], &out1[0])
		if tail0 := x0[len(x0)&^3:]; len(tail0) > 0 {
			tail1 := x1[len(x1)&^3:]
			for u := 0; u < t; u++ {
				row := y[u*ld+len(x0)-len(tail0):]
				s0, s1 := out0[u], out1[u]
				for k := range tail0 {
					s0 += tail0[k] * row[k]
					s1 += tail1[k] * row[k]
				}
				out0[u], out1[u] = s0, s1
			}
		}
	}
	for ; t < count; t++ {
		row := y[t*ld : t*ld+len(x0)]
		var s0, s1 float64
		for k, v := range x0 {
			s0 += v * row[k]
			s1 += x1[k] * row[k]
		}
		out0[t], out1[t] = s0, s1
	}
}

// TrsvLower solves L·z = z in place, where L is the m×m
// lower-triangular block stored at l with row stride ld (diagonal
// included). It is the in-block forward-substitution micro-kernel
// shared by the blocked Cholesky panel solve and the triangular
// solves: each row's dot against the solved prefix runs 4-wide in the
// assembly path, replacing the scalar tail the blocked solves
// previously kept.
func TrsvLower(l []float64, ld, m int, z []float64) {
	if m <= 0 {
		return
	}
	_ = z[m-1]
	_ = l[(m-1)*ld+m-1]
	if useAsm && m >= 8 {
		trsvLowerAVX2(&l[0], uintptr(ld), &z[0], uintptr(m))
		return
	}
	for i := 0; i < m; i++ {
		s := z[i]
		row := l[i*ld : i*ld+i]
		for k, v := range row {
			s -= v * z[k]
		}
		z[i] = s / l[i*ld+i]
	}
}

// expNegGo is the scalar fallback for expNegAVX2.
func expNegGo(p []float64) {
	for i, v := range p {
		p[i] = math.Exp(v)
	}
}

// expNegInPlace replaces each p[i] with exp(p[i]). Arguments must be
// non-positive (RBF exponents); values below -708 flush to +0. The
// production exp path is the one fused into RBFRow; this standalone
// wrapper exists to pin the vectorized exponential against math.Exp
// directly in tests (including the underflow flush).
func expNegInPlace(p []float64) {
	if !useAsm {
		expNegGo(p)
		return
	}
	m := len(p) &^ 3
	if m > 0 {
		expNegAVX2(&p[0], uintptr(m))
	}
	if m < len(p) {
		expNegGo(p[m:])
	}
}

// rbfRowGo is the scalar fallback for rbfRowAVX2.
func rbfRowGo(p, norms []float64, selfNorm, gamma float64) {
	for j, dot := range p {
		d2 := selfNorm + norms[j] - 2*dot
		if d2 < 0 {
			d2 = 0
		}
		p[j] = math.Exp(-gamma * d2)
	}
}

// RBFRow maps a row of dot products to Gaussian kernel values in
// place: p[j] = exp(-gamma * max(0, selfNorm + norms[j] - 2 p[j])),
// the squared-norm form of exp(-gamma ||a-b||^2). norms must have at
// least len(p) entries and gamma must be positive.
func RBFRow(p, norms []float64, selfNorm, gamma float64) {
	if !useAsm {
		rbfRowGo(p, norms, selfNorm, gamma)
		return
	}
	m := len(p) &^ 3
	if m > 0 {
		_ = norms[m-1]
		rbfRowAVX2(&p[0], &norms[0], selfNorm, gamma, uintptr(m))
	}
	if m < len(p) {
		rbfRowGo(p[m:], norms[m:], selfNorm, gamma)
	}
}

// addScaledGo is the scalar fallback for axpyAVX2.
func addScaledGo(dst []float64, alpha float64, src []float64) {
	for i := range dst {
		dst[i] += alpha * src[i]
	}
}

// combo8Go is the pure-Go twin of combo8AVX2: dst += Σ_{j<8}
// coefs[j]·src[j*stride : j*stride+len(dst)], the fused "apply eight
// Householder reflectors to one panel row" primitive of Cholesky
// downdating. The caller (applyBlock) dispatches on useAsm and
// guarantees a 4-multiple row width, so no wrapper or scalar tail is
// needed.
func combo8Go(dst, src []float64, stride int, coefs *[8]float64) {
	for j, a := range coefs {
		if a == 0 {
			continue
		}
		addScaledGo(dst, a, src[j*stride:j*stride+len(dst)])
	}
}

// AddScaled computes dst += alpha*src in place.
func AddScaled(dst []float64, alpha float64, src []float64) {
	if !useAsm || len(dst) < 4 {
		addScaledGo(dst, alpha, src)
		return
	}
	m := len(dst) &^ 3
	_ = src[m-1]
	axpyAVX2(&dst[0], &src[0], alpha, uintptr(m/4))
	if m < len(dst) {
		addScaledGo(dst[m:], alpha, src[m:])
	}
}
