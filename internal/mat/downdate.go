package mat

import "math"

// Cholesky downdating: the sliding-window inverse of Extend. When the
// oldest k training rows leave the window, the factored system loses
// its leading k rows/columns:
//
//	[ A11  A21ᵀ ]        [ L11  0   ]
//	[ A21  A22  ]   L  =  [ L21  L22 ]   =>   A22 = L21·L21ᵀ + L22·L22ᵀ
//
// so the factor of the surviving block is NOT L22 — it must absorb the
// deleted columns' outer product L21·L21ᵀ. Because that term is
// positive semidefinite, leading-row removal is a *positive* rank-k
// update of a triangular factor (the benign direction: no hyperbolic
// rotations, unconditional stability): find orthogonal Q with
// [L22 | L21]·Q = [L' | 0], i.e. an LQ re-triangularization of the
// factor rows with the evicted columns appended. Each Householder
// reflector here aggregates the k Givens rotations that would zero one
// row of the L21 panel, which turns the classic scalar rotation sweep
// into panel-wide DotBatch/AddScaled calls on the SIMD engine. Cost is
// O(k·m²) for a surviving window of m rows — proportional to the rows
// evicted, not the history — against O(m³/3) for refactoring.
//
// Past the cost crossover (k a large fraction of m), or if the sweep
// detects a conditioning breakdown (non-finite or collapsed pivot),
// the blocked re-factorization fallback reconstructs the surviving
// Gram from the (orthogonally invariant) factor rows and refactors it
// with the same jitter escalation as NewCholeskyJittered.

// downdateCondTol is the conditioning threshold of the rotation sweep:
// a reflector pivot below maxDiag·downdateCondTol means the surviving
// block is numerically singular and the sweep's O(k·m²) arithmetic can
// no longer be trusted, so the blocked re-factorization (which can
// jitter the diagonal) takes over.
const downdateCondTol = 1e-14

// Downdate removes the leading k rows/columns from the factorization
// in place: after a successful call the receiver factors the trailing
// (n−k)×(n−k) block of the original matrix (composing with Extend,
// repeated evict+append cycles run inside the headroom NewCholeskyGrow
// reserved — no growth, no copy of the history). It returns the
// diagonal shift the fallback re-factorization added (0 on the
// rotation path and whenever the surviving block is numerically
// positive definite).
//
// The surviving triangle is NOT moved: the factor's origin offset
// advances past the evicted rows, so the O(m²/2) up-left copy the
// slide used to pay on every call is deferred to a single compaction
// when a later Extend actually runs out of headroom (reserve). A
// steady evict+append cycle therefore compacts once per
// capacity-ful of evictions instead of once per slide.
//
// On error the factor state is lost (the sweep mutates in place);
// callers that need rollback must rebuild from their retained data.
// pool (nil ok) supplies the panel and reconstruction scratch.
func (c *Cholesky) Downdate(k int, pool *Pool) (shift float64, err error) {
	if k < 0 || k > c.n {
		return 0, ErrShape
	}
	if k == 0 {
		return 0, nil
	}
	n, ld := c.n, c.stride
	m := n - k
	c.n = m
	if m == 0 {
		// Nothing survives; reset the origin so a later Extend sees the
		// whole buffer.
		c.origin = 0
		return 0, nil
	}
	d := c.base()
	// Save the evicted columns L21 as a contiguous m×kp panel, kp
	// padded to a multiple of 4 with zero columns so the batched
	// reflector kernels never need a scalar tail.
	kp := (k + 3) &^ 3
	panel := pool.GetVec(m * kp)
	for i := 0; i < m; i++ {
		row := panel[i*kp : (i+1)*kp]
		copy(row, d[(k+i)*ld:(k+i)*ld+k])
		clear(row[k:])
	}
	// Advance the origin past the evicted rows: the surviving L22 block
	// stays put and the absorb sweep runs on the origin-shifted view.
	c.origin += k
	shift, err = c.absorbPanel(panel, m, kp, pool)
	pool.PutVec(panel)
	return shift, err
}

// ddBlock is the number of reflectors aggregated per compact-WY block:
// a block touches an 8-wide (one cache line) column panel of the
// factor per trailing row instead of 8 scattered single elements, and
// its small cross-coupling system stays in registers.
const ddBlock = 8

// ddTile is the trailing-row tile the block is applied over: the
// per-tile dot buffer (ddBlock×ddTile×8B ≈ 12 KB) stays L1-resident.
const ddTile = 192

// absorbPanel re-triangularizes [L | panel] by Householder reflectors,
// folding the m×k panel's outer product into the m×m factor (stride
// c.stride). Reflectors are processed in compact-WY blocks of ddBlock
// and applied to the trailing rows tile-wise, so the heavy arithmetic
// is batched panel dots (SIMD) plus one contiguous AddScaled per
// (row, reflector) — no strided single-element column walks. It falls
// back to refactorPanel past the flop crossover (sweep 2km² vs
// refactor ~2m³/3+km²) or on a conditioning breakdown.
func (c *Cholesky) absorbPanel(panel []float64, m, k int, pool *Pool) (float64, error) {
	if 3*k > 2*m {
		return c.refactorPanel(panel, m, k, pool)
	}
	ld, d := c.stride, c.base()
	scratch := pool.GetVec(ddBlock*ddTile + ddBlock*ddBlock + 2*ddBlock + ddBlock*k)
	z := scratch[:ddBlock*ddTile]
	svv := scratch[ddBlock*ddTile : ddBlock*ddTile+ddBlock*ddBlock]
	v1s := scratch[ddBlock*ddTile+ddBlock*ddBlock:][:ddBlock]
	taus := scratch[ddBlock*ddTile+ddBlock*ddBlock+ddBlock:][:ddBlock]
	// vp is the zero-padded 8×k copy of the block's Householder panels
	// the fused Combo8 kernel streams (it always reads 8 rows).
	vp := scratch[ddBlock*ddTile+ddBlock*ddBlock+2*ddBlock:][: ddBlock*k : ddBlock*k]
	defer pool.PutVec(scratch)
	maxDiag := 0.0
	for i0 := 0; i0 < m; i0 += ddBlock {
		i1 := min(i0+ddBlock, m)
		b := i1 - i0
		// Pivot rows: construct the block's reflectors sequentially,
		// applying its earlier reflectors row by row as we go.
		for i := i0; i < i1; i++ {
			prow := panel[i*k : i*k+k]
			for j := i0; j < i; j++ {
				jj := j - i0
				if taus[jj] == 0 {
					continue
				}
				pj := panel[j*k : j*k+k]
				var dot float64
				for t, v := range pj {
					dot += v * prow[t]
				}
				a := d[i*ld+j]
				w := taus[jj] * (dot + v1s[jj]*a)
				d[i*ld+j] = a - w*v1s[jj]
				AddScaled(prow, -w, pj)
			}
			jj := i - i0
			lii := d[i*ld+i]
			var pn float64
			for _, v := range prow {
				pn += v * v
			}
			r := math.Sqrt(lii*lii + pn)
			if math.IsNaN(r) || !(r > maxDiag*downdateCondTol) {
				// Collapsed or corrupt pivot: the remaining sweep would
				// divide by ~0. Restore the invariant the fallback's
				// reconstruction needs — every row transformed by the
				// same orthogonal product — before handing over: the
				// block's completed reflectors are flushed onto the
				// rows they have not reached yet (the pivot loop
				// applied them only up to row i), and the processed
				// pivot rows' panels are zeroed (their true
				// post-transform panels are zero; the buffer holds the
				// Householder v-panels only the flush still needed).
				c.applyBlock(panel, m, k, i0, jj, i+1, z, svv, v1s, taus, vp)
				clear(panel[:i*k])
				return c.refactorPanel(panel, m, k, pool)
			}
			if r > maxDiag {
				maxDiag = r
			}
			if pn == 0 {
				// Row already triangular; keep the pivot positive and
				// record an identity reflector.
				d[i*ld+i] = math.Abs(lii)
				v1s[jj], taus[jj] = 0, 0
				continue
			}
			// Householder vector v = (lii, prow) − r·e1 maps the row to
			// (r, 0): v1 computed cancellation-free (lii > 0 on a valid
			// factor), τ = 2/vᵀv. prow is left holding v's panel part.
			v1 := -pn / (lii + r)
			if lii < 0 {
				v1 = lii - r
			}
			v1s[jj] = v1
			taus[jj] = 2 / (v1*v1 + pn)
			d[i*ld+i] = r
		}
		c.applyBlock(panel, m, k, i0, b, i1, z, svv, v1s, taus, vp)
		// The block's pivot rows are final; zero their buffered
		// v-panels so a later block's conditioning fallback can
		// reconstruct the row Gram of [L | panel] directly.
		clear(panel[i0*k : i1*k])
	}
	return 0, nil
}

// applyBlock applies the b reflectors of the block starting at column
// i0 (Householder panels in panel rows i0..i0+b−1, column parts v1s,
// scales taus) to every trailing row ≥ start. The sequential product
// H_b···H_1 is evaluated in WY form: per row, the reflector
// projections z_j = v_jᵀx use the row's ORIGINAL values (batched,
// tile-wise), and the cross-coupling c_j = τ_j(z_j − Σ_{u<j} v_jᵀv_u·c_u)
// forward-substitutes through the small precomputed v_jᵀv_u system.
func (c *Cholesky) applyBlock(panel []float64, m, k, i0, b, start int, z, svv, v1s, taus, vp []float64) {
	if b == 0 || start >= m {
		return
	}
	ld, d := c.stride, c.base()
	// Cross terms v_jᵀv_u (u < j): the column parts live on distinct
	// columns, so only the panel parts couple.
	for j := 1; j < b; j++ {
		pj := panel[(i0+j)*k : (i0+j)*k+k]
		DotBatch(pj, panel[i0*k:], k, j, svv[j*ddBlock:j*ddBlock+j])
	}
	// Stage the block's Householder panels into the fixed 8×k buffer
	// the fused kernel streams; unused rows are zeroed (a zero
	// coefficient must not pull in NaNs from recycled pool memory).
	copy(vp, panel[i0*k:(i0+b)*k])
	clear(vp[b*k:])
	v1a := (*[ddBlock]float64)(v1s)
	taua := (*[ddBlock]float64)(taus)
	sva := (*[ddBlock * ddBlock]float64)(svv)
	// The panel stride is pre-padded to a multiple of 4, so the fused
	// kernel can be invoked without wrapper dispatch or scalar tails.
	asm := useAsm && k >= 4
	for t0 := start; t0 < m; t0 += ddTile {
		t1 := min(t0+ddTile, m)
		tn := t1 - t0
		// Batched projections over the tile's original panel rows.
		for j := 0; j < b; j++ {
			pj := panel[(i0+j)*k : (i0+j)*k+k]
			DotBatch(pj, panel[t0*k:], k, tn, z[j*ddTile:j*ddTile+tn])
		}
		for t := t0; t < t1; t++ {
			tt := t - t0
			prow := panel[t*k : t*k+k]
			aseg := d[t*ld+i0 : t*ld+i0+b]
			// cs accumulates −c_j (the Combo8 "+=" coefficients), so
			// the forward recurrence c_j = τ_j(z_j − Σ_{u<j} v_jᵀv_u·c_u)
			// reads them with a sign flip.
			var cs [ddBlock]float64
			for j := 0; j < b; j++ {
				s := z[j*ddTile+tt] + v1a[j]*aseg[j]
				for u := 0; u < j; u++ {
					s += sva[j*ddBlock+u] * cs[u]
				}
				cj := taua[j] * s
				cs[j] = -cj
				aseg[j] -= cj * v1a[j]
			}
			if asm {
				combo8AVX2(&prow[0], &vp[0], &cs[0], uintptr(k), uintptr(k>>2))
			} else {
				combo8Go(prow, vp, k, &cs)
			}
		}
	}
}

// refactorPanel is the blocked re-factorization fallback: the
// surviving Gram A' = L·Lᵀ + panel·panelᵀ is reconstructed from the
// (possibly mid-sweep) factor rows — right-multiplying [L | panel] by
// an orthogonal Q never changes that product, so the reconstruction is
// valid at any point of the sweep — and refactored in place with the
// same escalating diagonal jitter as NewCholeskyJittered. Returns the
// jitter that was needed.
func (c *Cholesky) refactorPanel(panel []float64, m, k int, pool *Pool) (float64, error) {
	ld, d := c.stride, c.base()
	// Zero the junk above each row's diagonal so equal-length batched
	// dots see the true (zero-padded) factor rows.
	for i := 0; i < m; i++ {
		clear(d[i*ld+i+1 : i*ld+m])
	}
	ga := pool.GetDense(m, m)
	scratch := pool.GetVec(m)
	Parfor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := ga.Row(i)[:i+1]
			DotBatch(d[i*ld:i*ld+m], d, ld, i+1, row)
		}
	})
	// panel·panelᵀ folds in as a second batched pass (serial rows so
	// the shared scratch is safe; the panel is only m×k).
	for i := 0; i < m; i++ {
		dots := scratch[:i+1]
		DotBatch(panel[i*k:i*k+k], panel, k, i+1, dots)
		row := ga.Row(i)
		for j, v := range dots {
			row[j] += v
		}
	}
	var trace float64
	for i := 0; i < m; i++ {
		trace += math.Abs(ga.At(i, i))
	}
	jitter := 0.0
	var err error
	for attempt := 0; attempt < 9; attempt++ {
		for i := 0; i < m; i++ {
			copy(d[i*ld:i*ld+i+1], ga.Row(i)[:i+1])
			d[i*ld+i] += jitter
		}
		if err = cholFactor(d, m, ld); err == nil {
			break
		}
		if jitter == 0 {
			jitter = 1e-10 * (trace/float64(m) + 1)
		} else {
			jitter *= 100
		}
	}
	pool.PutVec(scratch)
	pool.PutDense(ga)
	if err != nil {
		return 0, err
	}
	return jitter, nil
}
