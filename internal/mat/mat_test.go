package mat

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/randx"
)

func maxAbsDiff(a, b *Dense) float64 {
	var m float64
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if d := math.Abs(a.At(i, j) - b.At(i, j)); d > m {
				m = d
			}
		}
	}
	return m
}

func randSPD(src *randx.Source, n int) *Dense {
	// A = B·Bᵀ + n·I is SPD for any B.
	b := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, src.Uniform(-1, 1))
		}
	}
	bt := b.T()
	a, _ := Mul(b, bt)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 3 || m.Cols() != 2 || m.At(2, 1) != 6 {
		t.Fatalf("bad matrix: %v", m)
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrShape) {
		t.Fatalf("ragged rows: err = %v, want ErrShape", err)
	}
	empty, err := FromRows(nil)
	if err != nil || empty.Rows() != 0 {
		t.Fatalf("empty FromRows = (%v, %v)", empty, err)
	}
}

func TestFromRowsCopies(t *testing.T) {
	row := []float64{1, 2}
	m, _ := FromRows([][]float64{row})
	row[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("FromRows did not copy data")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows() != 3 || mt.Cols() != 2 || mt.At(2, 0) != 3 || mt.At(0, 1) != 4 {
		t.Fatalf("bad transpose")
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromRows([][]float64{{19, 22}, {43, 50}})
	if maxAbsDiff(c, want) > 1e-12 {
		t.Fatalf("Mul wrong: %+v", c)
	}
	if _, err := Mul(a, NewDense(3, 2)); !errors.Is(err, ErrShape) {
		t.Fatalf("Mul shape error = %v", err)
	}
}

func TestMulIdentityProperty(t *testing.T) {
	src := randx.New(31)
	f := func(nRaw uint8) bool {
		n := int(nRaw%6) + 1
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, src.Uniform(-5, 5))
			}
		}
		ai, err := Mul(a, Identity(n))
		if err != nil {
			return false
		}
		return maxAbsDiff(a, ai) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	y, err := a.MulVec([]float64{1, 1})
	if err != nil || y[0] != 3 || y[1] != 7 {
		t.Fatalf("MulVec = (%v, %v)", y, err)
	}
	if _, err := a.MulVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Fatal("MulVec shape mismatch not reported")
	}
}

func TestDotNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Fatal("Norm2 wrong")
	}
}

func TestAddScaled(t *testing.T) {
	dst := []float64{1, 2}
	AddScaled(dst, 2, []float64{10, 20})
	if dst[0] != 21 || dst[1] != 42 {
		t.Fatalf("AddScaled = %v", dst)
	}
}

func TestCholeskySolve(t *testing.T) {
	a, _ := FromRows([][]float64{{4, 2}, {2, 3}})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := ch.Solve([]float64{10, 8})
	if err != nil {
		t.Fatal(err)
	}
	// Verify A·x = b.
	b, _ := a.MulVec(x)
	if math.Abs(b[0]-10) > 1e-10 || math.Abs(b[1]-8) > 1e-10 {
		t.Fatalf("Cholesky solve residual: %v", b)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := NewCholesky(a); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
	if _, err := NewCholesky(NewDense(2, 3)); !errors.Is(err, ErrNonSquare) {
		t.Fatalf("non-square err = %v", err)
	}
}

// Property: for random SPD matrices, Cholesky solve inverts MulVec.
func TestCholeskyRoundTrip(t *testing.T) {
	src := randx.New(55)
	f := func(nRaw uint8) bool {
		n := int(nRaw%8) + 2
		a := randSPD(src, n)
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = src.Uniform(-3, 3)
		}
		b, _ := a.MulVec(xTrue)
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		x, err := ch.Solve(b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveSPDJitterFallback(t *testing.T) {
	// Singular PSD matrix: rank 1. SolveSPD should still produce a
	// solution via jitter for a consistent right-hand side.
	a, _ := FromRows([][]float64{{1, 1}, {1, 1}})
	x, err := SolveSPD(a, []float64{2, 2})
	if err != nil {
		t.Fatalf("SolveSPD on singular PSD failed: %v", err)
	}
	if math.Abs(x[0]+x[1]-2) > 1e-3 {
		t.Fatalf("jittered solution x = %v violates x0+x1=2", x)
	}
}

func TestQRSolveExact(t *testing.T) {
	a, _ := FromRows([][]float64{{2, 0}, {0, 3}, {0, 0}})
	qr, err := NewQR(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := qr.Solve([]float64{4, 9, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("QR solve = %v", x)
	}
}

func TestQRLeastSquaresResidualOrthogonality(t *testing.T) {
	// For the LS solution, the residual must be orthogonal to the column
	// space: Aᵀ(Ax - b) = 0.
	src := randx.New(77)
	f := func(seed uint16) bool {
		local := src.Fork(uint64(seed))
		m, n := 20, 4
		a := NewDense(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, local.Uniform(-10, 10))
			}
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = local.Uniform(-10, 10)
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			return false
		}
		ax, _ := a.MulVec(x)
		resid := make([]float64, m)
		for i := range resid {
			resid[i] = ax[i] - b[i]
		}
		at := a.T()
		g, _ := at.MulVec(resid)
		for _, v := range g {
			if math.Abs(v) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQRUnderdetermined(t *testing.T) {
	if _, err := NewQR(NewDense(2, 5)); !errors.Is(err, ErrUnderdetermined) {
		t.Fatalf("err = %v, want ErrUnderdetermined", err)
	}
}

func TestQRSingularReported(t *testing.T) {
	// Two identical columns: rank deficient.
	a, _ := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	qr, err := NewQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if qr.FullRank() {
		t.Fatal("rank-deficient matrix reported as full rank")
	}
	if _, err := qr.Solve([]float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestLeastSquaresRankDeficientFallback(t *testing.T) {
	// Identical columns; the ridge fallback must return a finite answer
	// whose fit matches the best possible (residual 0 here).
	a, _ := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	b := []float64{2, 4, 6}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatalf("LeastSquares fallback failed: %v", err)
	}
	ax, _ := a.MulVec(x)
	for i := range ax {
		if math.Abs(ax[i]-b[i]) > 1e-3 {
			t.Fatalf("fallback fit poor: ax=%v b=%v", ax, b)
		}
	}
}

func TestLeastSquaresShapeError(t *testing.T) {
	a := NewDense(3, 2)
	if _, err := LeastSquares(a, []float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestRidgeNormalShrinks(t *testing.T) {
	// With a huge lambda the solution should shrink toward zero.
	a, _ := FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	b := []float64{1, 1, 2}
	x0, err := RidgeNormal(a, b, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	xBig, err := RidgeNormal(a, b, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if Norm2(xBig) >= Norm2(x0) {
		t.Fatalf("ridge did not shrink: %v vs %v", Norm2(xBig), Norm2(x0))
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := NewDense(2, 2)
	b := a.Clone()
	b.Set(0, 0, 7)
	if a.At(0, 0) != 0 {
		t.Fatal("Clone shares backing data")
	}
}

func TestNewDensePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDense(-1, 2) did not panic")
		}
	}()
	NewDense(-1, 2)
}

func BenchmarkCholeskySolve100(b *testing.B) {
	src := randx.New(1)
	a := randSPD(src, 100)
	rhs := make([]float64, 100)
	for i := range rhs {
		rhs[i] = src.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch, err := NewCholesky(a)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ch.Solve(rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLeastSquares200x20(b *testing.B) {
	src := randx.New(2)
	a := NewDense(200, 20)
	for i := 0; i < 200; i++ {
		for j := 0; j < 20; j++ {
			a.Set(i, j, src.Uniform(-1, 1))
		}
	}
	rhs := make([]float64, 200)
	for i := range rhs {
		rhs[i] = src.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LeastSquares(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}
