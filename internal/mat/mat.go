// Package mat implements the dense linear algebra needed by the F2PM
// learners: flat row-major dense matrices, Cholesky factorization for
// symmetric positive-definite systems (LS-SVM, ridge fallback), and
// Householder QR for least-squares (linear regression).
//
// The hot paths run on a flat, cache-blocked, parallel engine
// (engine.go): SymRankK builds X·Xᵀ Gram matrices, Mul streams
// k-panels through AddScaled, and NewCholesky is a blocked
// right-looking factorization whose cubic trailing update reuses the
// batched dot kernel. Inner loops dispatch to AVX2/FMA assembly
// (kernels_amd64.s) when the CPU supports it, with pure-Go fallbacks
// (kernels_go.go) everywhere else; all parallelism goes through
// Parfor, which only ever splits disjoint row ranges, so results are
// bitwise deterministic regardless of GOMAXPROCS.
//
// The package implements exactly the operations the learners need,
// with clear failure modes (ErrSingular, ErrNotPositiveDefinite)
// instead of NaN propagation.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// Errors reported by the solvers.
var (
	ErrShape               = errors.New("mat: dimension mismatch")
	ErrSingular            = errors.New("mat: matrix is singular to working precision")
	ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")
	ErrNonSquare           = errors.New("mat: matrix is not square")
	ErrUnderdetermined     = errors.New("mat: fewer rows than columns in least squares")
	errNegativeDimension   = errors.New("mat: negative dimension")
)

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64 // len rows*cols
}

// NewDense creates an r×c zero matrix. It panics on negative dimensions.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(errNegativeDimension)
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices. All rows must have equal
// length. The data is copied.
func FromRows(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 {
		return NewDense(0, 0), nil
	}
	c := len(rows[0])
	m := NewDense(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrShape, i, len(row), c)
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a view of row i (shared backing array).
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*m.rows+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·x.
func (m *Dense) MulVec(x []float64) ([]float64, error) {
	if m.cols != len(x) {
		return nil, fmt.Errorf("%w: %dx%d times vector of %d", ErrShape, m.rows, m.cols, len(x))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Dot returns the inner product of two equal-length vectors. Long
// vectors take the AVX2 kernel (two independent accumulator chains —
// the scalar loop's single add chain is latency-bound at ~4 cycles per
// element); short ones stay scalar.
func Dot(a, b []float64) float64 {
	if useAsm && len(a) >= 16 {
		_ = b[len(a)-1]
		nq := len(a) / 4
		s := dotAVX2(&a[0], &b[0], uintptr(nq))
		for i := nq * 4; i < len(a); i++ {
			s += a[i] * b[i]
		}
		return s
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// Cholesky holds the lower-triangular factor L with A = L·Lᵀ.
// NewCholesky (engine.go) builds it with a blocked parallel
// factorization. The factor lives in a strided buffer whose stride may
// exceed the factored dimension: the spare columns/rows are headroom
// that lets Extend (extend.go) grow the factorization in place when
// new training rows arrive, without copying the existing triangle.
// Only the lower triangle of the buffer is ever written or read.
//
// The factor's logical (0,0) sits at buffer position (origin, origin):
// Downdate (downdate.go) evicts leading rows by just advancing the
// origin — the surviving triangle stays where it is instead of being
// copied up-left on every slide — and the deferred compaction back to
// origin 0 runs only when Extend actually needs the headroom (see
// compact), so steady-state evict+append cycles amortize the copy away.
type Cholesky struct {
	n      int       // factored dimension
	stride int       // row stride of data (capacity dimension, >= n)
	origin int       // row/col offset of the factor inside data (origin+n <= stride)
	data   []float64 // stride*stride buffer, lower triangle valid
}

// base returns the origin-shifted view of the factor buffer: element
// (i, j) of the logical factor lives at base()[i*stride+j]. All factor
// algorithms index through it, so an origin advance is free for them.
func (c *Cholesky) base() []float64 { return c.data[c.origin*(c.stride+1):] }

// compact shifts the factor triangle back to origin 0, reclaiming the
// rows/columns earlier Downdates abandoned in front of it. Rows move
// to strictly smaller offsets, so ascending order never overwrites an
// unread source. Called by reserve when an Extend needs the headroom —
// the "periodic" in periodic compaction: one triangle copy per
// capacity-ful of evictions instead of one per Downdate.
func (c *Cholesky) compact() {
	if c.origin == 0 {
		return
	}
	ld, o := c.stride, c.origin
	for i := 0; i < c.n; i++ {
		copy(c.data[i*ld:i*ld+i+1], c.data[(o+i)*ld+o:(o+i)*ld+o+i+1])
	}
	c.origin = 0
}

// Size returns the dimension of the factored matrix.
func (c *Cholesky) Size() int { return c.n }

// Cap returns the capacity dimension of the factor buffer — the
// largest system the factorization can grow to without reallocating.
// Sliding-window tests assert it stays flat across evict+append
// cycles.
func (c *Cholesky) Cap() int { return c.stride }

// L returns a copy of the lower-triangular factor (upper triangle
// zero), mainly for tests and diagnostics.
func (c *Cholesky) L() *Dense {
	out := NewDense(c.n, c.n)
	d := c.base()
	for i := 0; i < c.n; i++ {
		copy(out.data[i*c.n:i*c.n+i+1], d[i*c.stride:i*c.stride+i+1])
	}
	return out
}

// Solve solves A·x = b given the factorization.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	n := c.n
	if len(b) != n {
		return nil, ErrShape
	}
	x := make([]float64, n)
	y := make([]float64, n)
	c.solveInto(x, b, y)
	return x, nil
}

// solveInto is Solve with caller-provided destination and scratch
// (each of length Size), so repeated retrains can run allocation-free
// through a Pool. dst and b may alias. The forward substitution is
// blocked: the in-block triangular solve runs through the TrsvLower
// micro-kernel and the cross-block bulk through DotBatch. The back
// substitution uses (Lᵀ)[k,i] = L[i,k] to run column-oriented: each
// finalized dst[i] subtracts its contribution from all earlier rows as
// one AddScaled over the row-contiguous L[i, :i] — no strided column
// walk and no scalar tail anywhere in the solve.
func (c *Cholesky) solveInto(dst, b, y []float64) {
	n, ld := c.n, c.stride
	d := c.base()
	const blk = 64
	// Forward substitution: L·y = b. After a block of y is final, its
	// contribution is pushed onto all remaining rows in one batched
	// pass (dst doubles as the dot buffer; it is rewritten below).
	copy(y, b)
	for j0 := 0; j0 < n; j0 += blk {
		j1 := min(j0+blk, n)
		TrsvLower(d[j0*ld+j0:], ld, j1-j0, y[j0:j1])
		if j1 < n {
			dots := dst[:n-j1]
			DotBatch(y[j0:j1], d[j1*ld+j0:], ld, n-j1, dots)
			for t, v := range dots {
				y[j1+t] -= v
			}
		}
	}
	// Back substitution: Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		xv := y[i] / d[i*ld+i]
		dst[i] = xv
		if xv != 0 && i > 0 {
			AddScaled(y[:i], -xv, d[i*ld:i*ld+i])
		}
	}
}

// Solve2 solves A·x = b and A·x2 = b2 in one pass over the factor:
// both substitutions interleave the two right-hand sides, so the
// factor's memory traffic — what bounds large triangular solves — is
// paid once instead of twice. The LS-SVM block elimination (η and ν
// solved against the same factor) is the caller.
func (c *Cholesky) Solve2(b, b2 []float64) (x, x2 []float64, err error) {
	n := c.n
	if len(b) != n || len(b2) != n {
		return nil, nil, ErrShape
	}
	x = make([]float64, n)
	x2 = make([]float64, n)
	y := make([]float64, 2*n)
	c.solve2Into(x, x2, b, b2, y)
	return x, x2, nil
}

// solve2Into is Solve2 with caller-provided destinations and scratch
// (scratch of length 2n). It is solveInto's blocked structure with the
// two right-hand sides pushed back-to-back per block: the second push
// finds the factor block still cache-resident, so the combined solve
// costs far less than two independent ones.
func (c *Cholesky) solve2Into(dst, dst2, b, b2, y []float64) {
	n, ld := c.n, c.stride
	d := c.base()
	const blk = 64
	ya, yb := y[:n], y[n:2*n]
	copy(ya, b)
	copy(yb, b2)
	for j0 := 0; j0 < n; j0 += blk {
		j1 := min(j0+blk, n)
		TrsvLower(d[j0*ld+j0:], ld, j1-j0, ya[j0:j1])
		TrsvLower(d[j0*ld+j0:], ld, j1-j0, yb[j0:j1])
		if j1 < n {
			dots := dst[:n-j1]
			DotBatch2(ya[j0:j1], yb[j0:j1], d[j1*ld+j0:], ld, n-j1, dots, dst2[:n-j1])
			for t, v := range dots {
				ya[j1+t] -= v
			}
			for t, v := range dst2[:n-j1] {
				yb[j1+t] -= v
			}
		}
	}
	// Back substitution in the same column-oriented form as solveInto,
	// with the second right-hand side riding the cache-hot factor row.
	for i := n - 1; i >= 0; i-- {
		pv := d[i*ld+i]
		xv := ya[i] / pv
		xv2 := yb[i] / pv
		dst[i] = xv
		dst2[i] = xv2
		if i == 0 {
			break
		}
		row := d[i*ld : i*ld+i]
		if xv != 0 {
			AddScaled(ya[:i], -xv, row)
		}
		if xv2 != 0 {
			AddScaled(yb[:i], -xv2, row)
		}
	}
}

// SolveSPD solves the symmetric positive-definite system a·x = b via
// Cholesky. If a is not positive definite it retries with a small
// diagonal ridge (jitter) proportional to the mean diagonal, which is the
// standard remedy for nearly singular kernel matrices in LS-SVM.
func SolveSPD(a *Dense, b []float64) ([]float64, error) {
	ch, _, err := NewCholeskyJittered(a, 0, nil)
	if err != nil {
		return nil, err
	}
	return ch.Solve(b)
}

// NewCholeskyJittered is the jitter-escalation policy behind SolveSPD
// as a reusable factorization: when a is not positive definite to
// working precision, a diagonal shift proportional to the mean
// diagonal is escalated ×100 up to 8 times. It returns the factor
// (with capRows growth headroom, as NewCholeskyGrow) and the shift
// that was added to a's diagonal; a itself is never modified.
func NewCholeskyJittered(a *Dense, capRows int, pool *Pool) (*Cholesky, float64, error) {
	ch, err := NewCholeskyGrow(a, capRows, pool)
	if err == nil {
		return ch, 0, nil
	}
	if !errors.Is(err, ErrNotPositiveDefinite) {
		return nil, 0, err
	}
	n := a.rows
	var trace float64
	for i := 0; i < n; i++ {
		trace += math.Abs(a.At(i, i))
	}
	jitter := 1e-10 * (trace/float64(max(n, 1)) + 1)
	for attempt := 0; attempt < 8; attempt++ {
		aj := a.Clone()
		for i := 0; i < n; i++ {
			aj.Set(i, i, aj.At(i, i)+jitter)
		}
		if ch, err = NewCholeskyGrow(aj, capRows, pool); err == nil {
			return ch, jitter, nil
		}
		jitter *= 100
	}
	return nil, 0, ErrNotPositiveDefinite
}

// QR holds a Householder QR factorization of an m×n matrix with m >= n.
// qr stores the Householder vectors below the diagonal and R on and above
// it; rdiag stores the diagonal of R.
type QR struct {
	qr    *Dense
	rdiag []float64
}

// NewQR factorizes a (m >= n required). a is not modified.
func NewQR(a *Dense) (*QR, error) {
	m, n := a.rows, a.cols
	if m < n {
		return nil, ErrUnderdetermined
	}
	qr := a.Clone()
	rdiag := make([]float64, n)
	for k := 0; k < n; k++ {
		// Compute the norm of column k below row k.
		var nrm float64
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		if nrm == 0 {
			rdiag[k] = 0
			continue
		}
		if qr.At(k, k) < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/nrm)
		}
		qr.Set(k, k, qr.At(k, k)+1)
		// Apply the transformation to remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
			}
		}
		rdiag[k] = -nrm
	}
	return &QR{qr: qr, rdiag: rdiag}, nil
}

// FullRank reports whether R has no (near-)zero diagonal entries.
func (q *QR) FullRank() bool {
	for _, d := range q.rdiag {
		if math.Abs(d) < 1e-12 {
			return false
		}
	}
	return true
}

// Solve computes the least-squares solution x minimizing ||a·x - b||₂.
// It returns ErrSingular when a is rank deficient.
func (q *QR) Solve(b []float64) ([]float64, error) {
	m, n := q.qr.rows, q.qr.cols
	if len(b) != m {
		return nil, ErrShape
	}
	if !q.FullRank() {
		return nil, ErrSingular
	}
	y := make([]float64, m)
	copy(y, b)
	// Apply Householder transformations: y = Qᵀ·b.
	for k := 0; k < n; k++ {
		if q.qr.At(k, k) == 0 {
			continue
		}
		var s float64
		for i := k; i < m; i++ {
			s += q.qr.At(i, k) * y[i]
		}
		s = -s / q.qr.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * q.qr.At(i, k)
		}
	}
	// Back-substitute R·x = y[:n].
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= q.qr.At(i, j) * x[j]
		}
		x[i] = s / q.rdiag[i]
	}
	return x, nil
}

// LeastSquares solves min ||a·x - b||₂ by QR; when a is rank deficient it
// falls back to a ridge-regularized normal-equation solve
// (aᵀa + λI)x = aᵀb with a tiny λ, which always succeeds. This mirrors
// WEKA's LinearRegression behaviour of adding a small ridge when the
// design matrix is collinear.
func LeastSquares(a *Dense, b []float64) ([]float64, error) {
	if a.rows != len(b) {
		return nil, ErrShape
	}
	if a.rows >= a.cols {
		qr, err := NewQR(a)
		if err == nil && qr.FullRank() {
			return qr.Solve(b)
		}
	}
	return RidgeNormal(a, b, 1e-8)
}

// RidgeNormal solves (aᵀa + λI)x = aᵀb via Cholesky. λ must be positive
// for rank-deficient systems; it is scaled by the mean diagonal of aᵀa so
// callers can pass dimensionless values.
func RidgeNormal(a *Dense, b []float64, lambda float64) ([]float64, error) {
	if a.rows != len(b) {
		return nil, ErrShape
	}
	n := a.cols
	// AᵀA is the row Gram matrix of Aᵀ; one transpose buys the fast
	// SymRankK path for the (a.rows × n²) accumulation.
	ata := SymRankK(a.T())
	var trace float64
	for i := 0; i < n; i++ {
		trace += ata.data[i*n+i]
	}
	scale := trace/float64(max(n, 1)) + 1
	ridge := lambda * scale
	for i := 0; i < n; i++ {
		ata.data[i*n+i] += ridge
	}
	atb := make([]float64, n)
	for i := 0; i < a.rows; i++ {
		row := a.Row(i)
		for j := 0; j < n; j++ {
			atb[j] += row[j] * b[i]
		}
	}
	return SolveSPD(ata, atb)
}
