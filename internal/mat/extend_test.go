package mat

import (
	"math"
	"testing"

	"repro/internal/randx"
)

// subSPD returns the leading k×k block of a.
func subSPD(a *Dense, k int) *Dense {
	out := NewDense(k, k)
	for i := 0; i < k; i++ {
		copy(out.Row(i), a.Row(i)[:k])
	}
	return out
}

// borderBlocks slices the bordered blocks A21 (rows n0..n against
// columns 0..n0) and A22 out of the full matrix a.
func borderBlocks(a *Dense, n0, n int) (a21, a22 *Dense) {
	m := n - n0
	a21 = NewDense(m, n0)
	a22 = NewDense(m, m)
	for i := 0; i < m; i++ {
		copy(a21.Row(i), a.Row(n0 + i)[:n0])
		copy(a22.Row(i), a.Row(n0 + i)[n0:n])
	}
	return a21, a22
}

func TestCholExtendMatchesFromScratch(t *testing.T) {
	forEachKernelPath(t, func(t *testing.T) {
		src := randx.New(41)
		for _, tc := range []struct{ n0, m int }{
			{1, 1}, {5, 3}, {40, 1}, {63, 2}, {64, 64}, {100, 37}, {130, 70},
		} {
			n := tc.n0 + tc.m
			a := randSPD(src, n)
			ch, err := NewCholesky(subSPD(a, tc.n0))
			if err != nil {
				t.Fatalf("n0=%d: %v", tc.n0, err)
			}
			a21, a22 := borderBlocks(a, tc.n0, n)
			if err := ch.Extend(a21, a22, nil); err != nil {
				t.Fatalf("extend %d+%d: %v", tc.n0, tc.m, err)
			}
			if ch.Size() != n {
				t.Fatalf("extend %d+%d: size %d", tc.n0, tc.m, ch.Size())
			}
			want, err := NewCholesky(a)
			if err != nil {
				t.Fatalf("full n=%d: %v", n, err)
			}
			if d := maxAbsDiff(ch.L(), want.L()); d > 1e-8 {
				t.Fatalf("extend %d+%d: factor diff %g", tc.n0, tc.m, d)
			}
		}
	})
}

// TestCholExtendRepeatedAppends grows a factor in many small steps —
// the live-retraining pattern — and checks solves stay pinned to the
// from-scratch result.
func TestCholExtendRepeatedAppends(t *testing.T) {
	forEachKernelPath(t, func(t *testing.T) {
		src := randx.New(43)
		const n0, step, steps = 30, 7, 9
		n := n0 + step*steps
		a := randSPD(src, n)
		pool := &Pool{}
		ch, err := NewCholesky(subSPD(a, n0))
		if err != nil {
			t.Fatal(err)
		}
		for k := n0; k < n; k += step {
			a21, a22 := borderBlocks(a, k, k+step)
			if err := ch.Extend(a21, a22, pool); err != nil {
				t.Fatalf("extend at %d: %v", k, err)
			}
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = src.Uniform(-1, 1)
		}
		got, err := ch.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		full, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		want, err := full.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if d := math.Abs(got[i] - want[i]); d > 1e-8 {
				t.Fatalf("solve[%d]: diff %g", i, d)
			}
		}
	})
}

// TestCholExtendNotPDLeavesFactorIntact checks the documented failure
// mode: a border that breaks positive definiteness must leave the
// original factorization usable.
func TestCholExtendNotPDLeavesFactorIntact(t *testing.T) {
	src := randx.New(47)
	const n0, m = 20, 3
	a0 := randSPD(src, n0)
	ch, err := NewCholesky(a0)
	if err != nil {
		t.Fatal(err)
	}
	before := ch.L()
	// A22 = 0 makes the Schur complement negative definite.
	a21 := NewDense(m, n0)
	for i := 0; i < m; i++ {
		for j := 0; j < n0; j++ {
			a21.Set(i, j, src.Uniform(-1, 1))
		}
	}
	a22 := NewDense(m, m)
	if err := ch.Extend(a21, a22, nil); err != ErrNotPositiveDefinite {
		t.Fatalf("want ErrNotPositiveDefinite, got %v", err)
	}
	if ch.Size() != n0 {
		t.Fatalf("size changed to %d", ch.Size())
	}
	if d := maxAbsDiff(ch.L(), before); d != 0 {
		t.Fatalf("factor changed by %g", d)
	}
}

func TestCholExtendShapeErrors(t *testing.T) {
	src := randx.New(48)
	ch, err := NewCholesky(randSPD(src, 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Extend(NewDense(2, 7), NewDense(2, 2), nil); err != ErrShape {
		t.Fatalf("bad a21 width: got %v", err)
	}
	if err := ch.Extend(NewDense(2, 8), NewDense(3, 3), nil); err != ErrShape {
		t.Fatalf("bad a22 shape: got %v", err)
	}
	if err := ch.Extend(NewDense(0, 8), NewDense(0, 0), nil); err != nil {
		t.Fatalf("empty extend: %v", err)
	}
	if ch.Size() != 8 {
		t.Fatalf("size %d after no-op extend", ch.Size())
	}
}

func TestPoolRecycles(t *testing.T) {
	p := &Pool{}
	v := p.GetVec(100)
	if len(v) != 100 {
		t.Fatalf("len %d", len(v))
	}
	v[0] = 42
	p.PutVec(v)
	w := p.GetVec(90)
	if cap(w) != 128 {
		t.Fatalf("want recycled cap-128 buffer, got cap %d", cap(w))
	}
	z := p.GetVecZero(90)
	for i, x := range z {
		if x != 0 {
			t.Fatalf("GetVecZero[%d] = %g", i, x)
		}
	}
	// Dense round-trip.
	d := p.GetDenseZero(10, 10)
	d.Set(3, 4, 1)
	p.PutDense(d)
	e := p.GetDenseZero(10, 10)
	if e.At(3, 4) != 0 {
		t.Fatal("GetDenseZero returned dirty matrix")
	}
	// A nil pool degrades to plain allocation.
	var np *Pool
	if got := np.GetVec(5); len(got) != 5 {
		t.Fatalf("nil pool GetVec len %d", len(got))
	}
	np.PutVec(v)
	np.PutDense(e)
}
