package mat

import (
	"math"
	"testing"

	"repro/internal/randx"
)

// Parity suites for the register-tiled micro-kernels added for the
// raw-speed push: the two-row dot tile (DotBatch2), the blocked
// forward-substitution kernel (TrsvLower), and the vectorized Dot.
// Each runs under both dispatch paths via forEachKernelPath and pins
// the fast path against a naive scalar reference at 1e-12, covering
// remainder rows/columns (non-multiple-of-4 widths and counts) and
// the empty/degenerate edges.

func TestDotBatch2Parity(t *testing.T) {
	forEachKernelPath(t, func(t *testing.T) {
		src := randx.New(31)
		// {d, ld, count}: d=1..3 exercises the all-scalar column path,
		// d=26/31 the vector path with column remainders, count values
		// around the group size of 4 exercise row remainders.
		for _, tc := range [][3]int{
			{1, 1, 1}, {3, 5, 2}, {4, 4, 4}, {5, 7, 3},
			{24, 24, 17}, {26, 31, 9}, {7, 7, 40}, {48, 50, 5},
		} {
			d, ld, count := tc[0], tc[1], tc[2]
			x0 := make([]float64, d)
			x1 := make([]float64, d)
			for i := range x0 {
				x0[i] = src.Uniform(-2, 2)
				x1[i] = src.Uniform(-2, 2)
			}
			y := make([]float64, (count-1)*ld+d)
			for i := range y {
				y[i] = src.Uniform(-2, 2)
			}
			out0 := make([]float64, count)
			out1 := make([]float64, count)
			DotBatch2(x0, x1, y, ld, count, out0, out1)
			for tt := 0; tt < count; tt++ {
				var w0, w1 float64
				for k := 0; k < d; k++ {
					w0 += x0[k] * y[tt*ld+k]
					w1 += x1[k] * y[tt*ld+k]
				}
				if math.Abs(out0[tt]-w0) > 1e-12 || math.Abs(out1[tt]-w1) > 1e-12 {
					t.Fatalf("d=%d ld=%d t=%d: got (%v,%v) want (%v,%v)",
						d, ld, tt, out0[tt], out1[tt], w0, w1)
				}
			}
		}
		// Empty panel: count=0 must not touch the outputs.
		sentinel0, sentinel1 := []float64{99}, []float64{-99}
		DotBatch2([]float64{1, 2}, []float64{3, 4}, nil, 2, 0, sentinel0, sentinel1)
		if sentinel0[0] != 99 || sentinel1[0] != -99 {
			t.Fatal("count=0 wrote to outputs")
		}
	})
}

// TestDotBatch2MatchesDotBatch pins the bit-level agreement the
// engine's deterministic pairing relies on: a row computed through the
// two-row tile must be bit-identical to the same row through the
// one-row DotBatch path (both kernels accumulate chunks in the same
// order), so pairing rows never changes results.
func TestDotBatch2MatchesDotBatch(t *testing.T) {
	forEachKernelPath(t, func(t *testing.T) {
		src := randx.New(32)
		for _, tc := range [][3]int{{8, 8, 8}, {24, 24, 16}, {26, 31, 24}, {43, 43, 9}} {
			d, ld, count := tc[0], tc[1], tc[2]
			x0 := make([]float64, d)
			x1 := make([]float64, d)
			for i := range x0 {
				x0[i] = src.Uniform(-2, 2)
				x1[i] = src.Uniform(-2, 2)
			}
			y := make([]float64, (count-1)*ld+d)
			for i := range y {
				y[i] = src.Uniform(-2, 2)
			}
			p0 := make([]float64, count)
			p1 := make([]float64, count)
			DotBatch2(x0, x1, y, ld, count, p0, p1)
			s0 := make([]float64, count)
			s1 := make([]float64, count)
			DotBatch(x0, y, ld, count, s0)
			DotBatch(x1, y, ld, count, s1)
			for tt := 0; tt < count; tt++ {
				if p0[tt] != s0[tt] || p1[tt] != s1[tt] {
					t.Fatalf("d=%d count=%d t=%d: paired (%v,%v) != single (%v,%v)",
						d, count, tt, p0[tt], p1[tt], s0[tt], s1[tt])
				}
			}
		}
	})
}

func TestTrsvLowerParity(t *testing.T) {
	forEachKernelPath(t, func(t *testing.T) {
		src := randx.New(33)
		// m=1..7 stays scalar; m=8+ reaches the assembly path, with
		// non-multiple-of-4 prefixes exercising the scalar dot tail.
		for _, tc := range [][2]int{
			{1, 1}, {2, 3}, {7, 9}, {8, 8}, {9, 12}, {31, 40}, {64, 64}, {65, 70},
		} {
			m, ld := tc[0], tc[1]
			l := make([]float64, (m-1)*ld+m)
			for i := 0; i < m; i++ {
				for k := 0; k < i; k++ {
					l[i*ld+k] = src.Uniform(-1, 1)
				}
				l[i*ld+i] = src.Uniform(1, 2) // well-conditioned diagonal
			}
			z := make([]float64, m)
			for i := range z {
				z[i] = src.Uniform(-2, 2)
			}
			want := make([]float64, m)
			for i := 0; i < m; i++ {
				s := z[i]
				for k := 0; k < i; k++ {
					s -= l[i*ld+k] * want[k]
				}
				want[i] = s / l[i*ld+i]
			}
			TrsvLower(l, ld, m, z)
			for i := range z {
				if math.Abs(z[i]-want[i]) > 1e-12 {
					t.Fatalf("m=%d ld=%d i=%d: got %v want %v", m, ld, i, z[i], want[i])
				}
			}
		}
		// m=0 is a no-op.
		TrsvLower(nil, 1, 0, nil)
	})
}

func TestDotParity(t *testing.T) {
	forEachKernelPath(t, func(t *testing.T) {
		src := randx.New(34)
		// Below 16 stays scalar; 16+ hits the vector path, with 17/39
		// covering the remainder lanes.
		for _, n := range []int{0, 1, 4, 15, 16, 17, 24, 39, 128} {
			a := make([]float64, n)
			b := make([]float64, n)
			var want float64
			for i := 0; i < n; i++ {
				a[i] = src.Uniform(-2, 2)
				b[i] = src.Uniform(-2, 2)
				want += a[i] * b[i]
			}
			if got := Dot(a, b); math.Abs(got-want) > 1e-12 {
				t.Fatalf("n=%d: got %v want %v", n, got, want)
			}
		}
	})
}

func BenchmarkTrsvLower64(b *testing.B) {
	const m, ld = 64, 64
	src := randx.New(35)
	l := make([]float64, m*ld)
	for i := 0; i < m; i++ {
		for k := 0; k < i; k++ {
			l[i*ld+k] = src.Uniform(-1, 1)
		}
		l[i*ld+i] = src.Uniform(1, 2)
	}
	z := make([]float64, m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range z {
			z[j] = 1
		}
		TrsvLower(l, ld, m, z)
	}
}

func BenchmarkDotBatch2(b *testing.B) {
	const d, ld, count = 24, 24, 512
	src := randx.New(36)
	x0 := make([]float64, d)
	x1 := make([]float64, d)
	for i := range x0 {
		x0[i] = src.Uniform(-1, 1)
		x1[i] = src.Uniform(-1, 1)
	}
	y := make([]float64, count*ld)
	for i := range y {
		y[i] = src.Uniform(-1, 1)
	}
	out0 := make([]float64, count)
	out1 := make([]float64, count)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DotBatch2(x0, x1, y, ld, count, out0, out1)
	}
}
