package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/randx"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{1.5, -0.5, 2}); got != 3 {
		t.Fatalf("Sum = %v, want 3", got)
	}
}

func TestVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Fatalf("Variance single = %v, want 0", got)
	}
}

func TestSampleVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	want := 32.0 / 7.0
	if got := SampleVariance(xs); !almostEqual(got, want, 1e-12) {
		t.Fatalf("SampleVariance = %v, want %v", got, want)
	}
	if got := SampleVariance([]float64{1}); got != 0 {
		t.Fatalf("SampleVariance single = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil || min != -1 || max != 7 {
		t.Fatalf("MinMax = (%v,%v,%v)", min, max, err)
	}
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Fatalf("MinMax(nil) err = %v, want ErrEmpty", err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, c := range []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	} {
		got, err := Quantile(xs, c.q)
		if err != nil || !almostEqual(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%v) = (%v,%v), want %v", c.q, got, err, c.want)
		}
	}
	// Interpolation between order statistics.
	got, _ := Quantile([]float64{0, 10}, 0.35)
	if !almostEqual(got, 3.5, 1e-12) {
		t.Fatalf("interpolated quantile = %v, want 3.5", got)
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Fatal("Quantile(nil) should return ErrEmpty")
	}
	// Clamping.
	got, _ = Quantile(xs, -1)
	if got != 1 {
		t.Fatalf("Quantile(q<0) = %v, want 1", got)
	}
	got, _ = Quantile(xs, 2)
	if got != 5 {
		t.Fatalf("Quantile(q>1) = %v, want 5", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	_, _ = Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Quantile mutated input: %v", xs)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	r, err := Pearson(xs, ys)
	if err != nil || !almostEqual(r, 1, 1e-12) {
		t.Fatalf("Pearson perfect = (%v,%v)", r, err)
	}
	neg := []float64{8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !almostEqual(r, -1, 1e-12) {
		t.Fatalf("Pearson anti = %v", r)
	}
	r, err = Pearson(xs, []float64{5, 5, 5, 5})
	if err != nil || r != 0 {
		t.Fatalf("Pearson constant = (%v,%v), want 0", r, err)
	}
	if _, err := Pearson(xs, []float64{1}); err != ErrEmpty {
		t.Fatal("Pearson length mismatch should return ErrEmpty")
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	src := randx.New(21)
	xs := make([]float64, 500)
	var o Online
	for i := range xs {
		xs[i] = src.Norm(5, 3)
		o.Add(xs[i])
	}
	if o.N() != len(xs) {
		t.Fatalf("N = %d", o.N())
	}
	if !almostEqual(o.Mean(), Mean(xs), 1e-9) {
		t.Fatalf("online mean %v vs batch %v", o.Mean(), Mean(xs))
	}
	if !almostEqual(o.Variance(), Variance(xs), 1e-9) {
		t.Fatalf("online var %v vs batch %v", o.Variance(), Variance(xs))
	}
	min, max, _ := MinMax(xs)
	if o.Min() != min || o.Max() != max {
		t.Fatalf("online min/max (%v,%v) vs (%v,%v)", o.Min(), o.Max(), min, max)
	}
}

func TestOnlineMergeEquivalence(t *testing.T) {
	f := func(seed uint16, split uint8) bool {
		src := randx.New(uint64(seed) + 1)
		n := 100
		k := int(split) % n
		var whole, left, right Online
		for i := 0; i < n; i++ {
			x := src.Uniform(-10, 10)
			whole.Add(x)
			if i < k {
				left.Add(x)
			} else {
				right.Add(x)
			}
		}
		left.Merge(&right)
		return left.N() == whole.N() &&
			almostEqual(left.Mean(), whole.Mean(), 1e-9) &&
			almostEqual(left.Variance(), whole.Variance(), 1e-9) &&
			left.Min() == whole.Min() && left.Max() == whole.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineMergeEmpty(t *testing.T) {
	var a, b Online
	a.Add(1)
	a.Add(3)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 2 || a.Mean() != 2 {
		t.Fatalf("merge empty changed accumulator: n=%d mean=%v", a.N(), a.Mean())
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 2 || b.Mean() != 2 {
		t.Fatalf("merge into empty: n=%d mean=%v", b.N(), b.Mean())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.9, -3, 42} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d", h.Total())
	}
	// -3 clamps into bin 0, 42 clamps into bin 4.
	if h.Counts[0] != 3 {
		t.Fatalf("bin 0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[4] != 2 {
		t.Fatalf("bin 4 = %d, want 2", h.Counts[4])
	}
	if got := h.BinCenter(0); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("BinCenter(0) = %v", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero bins": func() { NewHistogram(0, 1, 0) },
		"hi<=lo":    func() { NewHistogram(1, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: variance is non-negative and translation-invariant.
func TestVarianceProperties(t *testing.T) {
	src := randx.New(99)
	f := func(shiftRaw int8) bool {
		shift := float64(shiftRaw)
		xs := make([]float64, 50)
		ys := make([]float64, 50)
		for i := range xs {
			xs[i] = src.Uniform(-100, 100)
			ys[i] = xs[i] + shift
		}
		v1, v2 := Variance(xs), Variance(ys)
		return v1 >= 0 && almostEqual(v1, v2, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Pearson is scale-invariant (positive scale).
func TestPearsonScaleInvariance(t *testing.T) {
	src := randx.New(123)
	f := func(scaleRaw uint8) bool {
		scale := float64(scaleRaw%100) + 1
		xs := make([]float64, 40)
		ys := make([]float64, 40)
		for i := range xs {
			xs[i] = src.Uniform(0, 1)
			ys[i] = 2*xs[i] + src.Uniform(-0.1, 0.1)
		}
		scaled := make([]float64, len(ys))
		for i := range ys {
			scaled[i] = ys[i] * scale
		}
		r1, _ := Pearson(xs, ys)
		r2, _ := Pearson(xs, scaled)
		return almostEqual(r1, r2, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
