// Package stats provides the descriptive statistics used by the F2PM
// pipeline: means, variances, quantiles, Pearson correlation, and online
// (streaming) accumulators for the simulator's probes.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Variance returns the population variance of xs (denominator n), or 0 if
// fewer than one sample. The pipeline uses population variance because the
// tree learners (M5P, REP-Tree) split on within-node variance of the full
// node population, following the cited algorithms.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n)
}

// SampleVariance returns the unbiased sample variance (denominator n-1),
// or 0 if fewer than two samples.
func SampleVariance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the smallest and largest element of xs.
// It returns ErrEmpty for an empty slice.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Quantile returns the q-th quantile (q in [0,1]) of xs using linear
// interpolation between order statistics. It returns ErrEmpty for an empty
// slice and clamps q into [0,1].
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}

// quantileSorted computes the interpolated quantile of an already sorted
// slice.
func quantileSorted(sorted []float64, q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns 0 when either input is constant (zero variance) and ErrEmpty
// when the slices are empty or of different lengths.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Online accumulates count, mean and variance in a single pass using
// Welford's algorithm, plus min and max. The zero value is ready to use.
type Online struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds x into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
}

// N returns the number of samples added.
func (o *Online) N() int { return o.n }

// Mean returns the running mean (0 if no samples).
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the running population variance (0 if no samples).
func (o *Online) Variance() float64 {
	if o.n == 0 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// StdDev returns the running population standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the smallest sample added (0 if none).
func (o *Online) Min() float64 { return o.min }

// Max returns the largest sample added (0 if none).
func (o *Online) Max() float64 { return o.max }

// Merge folds another accumulator into o (parallel-combine), using the
// Chan et al. pairwise update so merged results match sequential addition.
func (o *Online) Merge(other *Online) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = *other
		return
	}
	delta := other.mean - o.mean
	total := o.n + other.n
	o.m2 += other.m2 + delta*delta*float64(o.n)*float64(other.n)/float64(total)
	o.mean += delta * float64(other.n) / float64(total)
	if other.min < o.min {
		o.min = other.min
	}
	if other.max > o.max {
		o.max = other.max
	}
	o.n = total
}

// Histogram is a fixed-bin histogram over [Lo, Hi); samples outside the
// range are clamped into the first/last bin. Used by the experiment
// harness to summarize RTTF distributions.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with n bins over [lo, hi).
// It panics if n <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic("stats: histogram with non-positive bin count")
	}
	if hi <= lo {
		panic("stats: histogram with hi <= lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	n := len(h.Counts)
	idx := int(float64(n) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}
