// Package textplot renders simple ASCII scatter/line plots, used by the
// experiment harness to display the paper's figures in a terminal.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// series is one named point set.
type series struct {
	name   string
	xs, ys []float64
	marker byte
}

// Plot accumulates series and renders them on a character grid.
type Plot struct {
	title          string
	xlabel, ylabel string
	width, height  int
	series         []series
}

// New creates a plot with the given grid size (sensible minimums are
// enforced).
func New(title string, width, height int) *Plot {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	return &Plot{title: title, width: width, height: height}
}

// Labels sets the axis labels.
func (p *Plot) Labels(x, y string) *Plot {
	p.xlabel, p.ylabel = x, y
	return p
}

// Add appends a series using the given marker. Non-finite points are
// dropped at render time. Mismatched xs/ys lengths are truncated to the
// shorter.
func (p *Plot) Add(name string, xs, ys []float64, marker byte) *Plot {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	p.series = append(p.series, series{name: name, xs: xs[:n], ys: ys[:n], marker: marker})
	return p
}

// Render draws the plot.
func (p *Plot) Render() string {
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	total := 0
	for _, s := range p.series {
		for i := range s.xs {
			x, y := s.xs[i], s.ys[i]
			if !finite(x) || !finite(y) {
				continue
			}
			total++
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	var b strings.Builder
	if p.title != "" {
		fmt.Fprintf(&b, "%s\n", p.title)
	}
	if total == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, p.height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", p.width))
	}
	for _, s := range p.series {
		for i := range s.xs {
			x, y := s.xs[i], s.ys[i]
			if !finite(x) || !finite(y) {
				continue
			}
			c := int(float64(p.width-1) * (x - xmin) / (xmax - xmin))
			r := p.height - 1 - int(float64(p.height-1)*(y-ymin)/(ymax-ymin))
			grid[r][c] = s.marker
		}
	}

	yLo, yHi := formatTick(ymin), formatTick(ymax)
	labelW := len(yLo)
	if len(yHi) > labelW {
		labelW = len(yHi)
	}
	for r, row := range grid {
		label := strings.Repeat(" ", labelW)
		if r == 0 {
			label = pad(yHi, labelW)
		} else if r == p.height-1 {
			label = pad(yLo, labelW)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", labelW), strings.Repeat("-", p.width))
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", labelW), formatTick(xmin),
		strings.Repeat(" ", max(1, p.width-len(formatTick(xmin))-len(formatTick(xmax)))), formatTick(xmax))
	if p.xlabel != "" || p.ylabel != "" {
		fmt.Fprintf(&b, "%s  x: %s, y: %s\n", strings.Repeat(" ", labelW), p.xlabel, p.ylabel)
	}
	if len(p.series) > 1 || (len(p.series) == 1 && p.series[0].name != "") {
		legend := make([]string, 0, len(p.series))
		for _, s := range p.series {
			legend = append(legend, fmt.Sprintf("%c=%s", s.marker, s.name))
		}
		fmt.Fprintf(&b, "%s  legend: %s\n", strings.Repeat(" ", labelW), strings.Join(legend, "  "))
	}
	return b.String()
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6 || (av < 1e-3 && av != 0):
		return fmt.Sprintf("%.2e", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
