package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	p := New("Test Plot", 40, 10).Labels("time", "value")
	p.Add("a", []float64{0, 1, 2, 3}, []float64{0, 1, 4, 9}, '*')
	out := p.Render()
	if !strings.Contains(out, "Test Plot") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("missing markers")
	}
	if !strings.Contains(out, "x: time, y: value") {
		t.Fatal("missing labels")
	}
	if !strings.Contains(out, "*=a") {
		t.Fatal("missing legend")
	}
}

func TestRenderEmpty(t *testing.T) {
	out := New("Empty", 30, 8).Render()
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty plot rendered: %q", out)
	}
}

func TestRenderNaNDropped(t *testing.T) {
	p := New("", 30, 8)
	p.Add("", []float64{0, math.NaN(), 2}, []float64{1, 1, math.Inf(1)}, 'x')
	out := p.Render()
	if strings.Count(out, "x") < 1 {
		t.Fatal("finite point not drawn")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	p := New("", 30, 8)
	p.Add("", []float64{1, 1, 1}, []float64{5, 5, 5}, 'o')
	out := p.Render()
	if !strings.Contains(out, "o") {
		t.Fatal("constant series not drawn")
	}
}

func TestMultipleSeries(t *testing.T) {
	p := New("", 40, 10)
	p.Add("up", []float64{0, 1, 2}, []float64{0, 1, 2}, 'u')
	p.Add("down", []float64{0, 1, 2}, []float64{2, 1, 0}, 'd')
	out := p.Render()
	if !strings.Contains(out, "u") || !strings.Contains(out, "d") {
		t.Fatal("series markers missing")
	}
	if !strings.Contains(out, "u=up") || !strings.Contains(out, "d=down") {
		t.Fatal("legend incomplete")
	}
}

func TestCornerPlacement(t *testing.T) {
	// Extremes must land on the grid, not out of bounds (no panic).
	p := New("", 25, 6)
	p.Add("", []float64{-1e9, 1e9}, []float64{-1e9, 1e9}, '#')
	out := p.Render()
	if strings.Count(out, "#") != 2 {
		t.Fatalf("corners not drawn:\n%s", out)
	}
}

func TestMinimumsEnforced(t *testing.T) {
	p := New("", 1, 1)
	p.Add("", []float64{0, 1}, []float64{0, 1}, '*')
	_ = p.Render() // must not panic
}

func TestMismatchedLengthsTruncated(t *testing.T) {
	p := New("", 30, 6)
	p.Add("", []float64{0, 1, 2, 3}, []float64{1, 2}, '*')
	out := p.Render()
	if strings.Count(out, "*") != 2 {
		t.Fatalf("expected 2 markers:\n%s", out)
	}
}
