// Package randx provides deterministic random number generation and the
// statistical distributions used throughout the F2PM simulator and the
// anomaly injectors.
//
// Every stochastic component of the reproduction takes an explicit *Source
// so that experiments are reproducible bit-for-bit: the same seed always
// yields the same data history, the same training sets, and therefore the
// same tables and figures.
//
// The generator is a SplitMix64-seeded xoshiro256** implementation. We do
// not use math/rand's global state anywhere; math/rand/v2 has no way to
// snapshot its state, and the simulator needs forkable, independently
// seeded streams (one per browser, one per injector) so that adding a
// component does not perturb the draws seen by the others.
package randx

import "math"

// Source is a deterministic pseudo-random source (xoshiro256**).
// The zero value is not valid; use New.
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source seeded from seed via SplitMix64, which guarantees
// the four words of state are well mixed even for small seeds.
func New(seed uint64) *Source {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	return &Source{s0: next(), s1: next(), s2: next(), s3: next()}
}

// Fork derives an independent stream from s. The child is seeded from the
// parent's next output mixed with a stream label, so distinct labels give
// distinct streams even when forked at the same point.
func (s *Source) Fork(label uint64) *Source {
	return New(s.Uint64() ^ (label * 0x9e3779b97f4a7c15) ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("randx: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	x := s.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = s.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// Uniform returns a uniform float64 in [lo, hi). It panics if hi < lo.
func (s *Source) Uniform(lo, hi float64) float64 {
	if hi < lo {
		panic("randx: Uniform with hi < lo")
	}
	return lo + (hi-lo)*s.Float64()
}

// Exp returns an exponentially distributed float64 with the given mean
// (i.e. rate 1/mean). It panics if mean <= 0.
//
// The paper's anomaly injectors (§III-E) draw leak and thread
// inter-arrival times from exponential distributions whose means are in
// turn drawn uniformly at startup; see package anomaly.
func (s *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("randx: Exp with non-positive mean")
	}
	u := s.Float64()
	// Guard against log(0); Float64 can return exactly 0.
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// Norm returns a normally distributed float64 with the given mean and
// standard deviation, using the Marsaglia polar method.
func (s *Source) Norm(mean, stddev float64) float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// LogNorm returns a log-normally distributed float64 whose underlying
// normal has parameters mu and sigma. Used for service-time jitter in the
// TPC-W cost model.
func (s *Source) LogNorm(mu, sigma float64) float64 {
	return math.Exp(s.Norm(mu, sigma))
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Categorical draws an index in [0, len(weights)) with probability
// proportional to weights[i]. Negative weights are treated as zero. It
// panics if all weights are zero or the slice is empty.
func (s *Source) Categorical(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("randx: Categorical with no positive weight")
	}
	x := s.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	// Floating-point slack: return last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	panic("randx: unreachable")
}
