package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seed diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds agreed %d/100 times", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Fork(1)
	parent2 := New(7)
	c2 := parent2.Fork(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked streams with different labels agreed %d/100 times", same)
	}
}

func TestForkDeterminism(t *testing.T) {
	a := New(9).Fork(5)
	b := New(9).Fork(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("fork with same label diverged at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUniformRange(t *testing.T) {
	s := New(6)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(-3, 9)
		if v < -3 || v >= 9 {
			t.Fatalf("Uniform(-3,9) out of range: %v", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	s := New(8)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := s.Exp(2.5)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-2.5) > 0.05 {
		t.Fatalf("Exp(2.5) mean = %v", mean)
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestNormMoments(t *testing.T) {
	s := New(10)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := s.Norm(3, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Fatalf("Norm mean = %v, want ~3", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("Norm stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestLogNormPositive(t *testing.T) {
	s := New(11)
	for i := 0; i < 1000; i++ {
		if v := s.LogNorm(0, 1); v <= 0 {
			t.Fatalf("LogNorm returned non-positive %v", v)
		}
	}
}

func TestBernoulli(t *testing.T) {
	s := New(12)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency = %v", p)
	}
	if s.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !s.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(13)
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := s.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	s := New(14)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 21 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	s := New(15)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.Categorical(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight category drawn %d times", counts[1])
	}
	p0 := float64(counts[0]) / n
	if math.Abs(p0-0.25) > 0.01 {
		t.Fatalf("category 0 frequency = %v, want ~0.25", p0)
	}
}

func TestCategoricalPanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Categorical with all-zero weights did not panic")
		}
	}()
	New(1).Categorical([]float64{0, 0})
}

func TestCategoricalNegativeTreatedAsZero(t *testing.T) {
	s := New(16)
	for i := 0; i < 1000; i++ {
		if got := s.Categorical([]float64{-5, 2}); got != 1 {
			t.Fatalf("negative-weight category drawn (got %d)", got)
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = s.Uint64()
	}
	_ = sink
}

func BenchmarkExp(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = s.Exp(1.5)
	}
	_ = sink
}
