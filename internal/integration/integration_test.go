// Package integration ties the full F2PM stack together end to end:
// the simulated test-bed generates a data history; the history is
// replayed through the real TCP FMC/FMS monitor; the server-assembled
// copy feeds the pipeline; the best model round-trips through the
// persistence layer; and the restored model predicts on a live
// aggregated stream. This is the deployment story a downstream user
// follows, exercised in one test.
package integration

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/aggregate"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/ml/modelio"
	"repro/internal/monitor"
	"repro/internal/rtest"
	"repro/internal/tpcw"
	"repro/internal/trace"
)

func simulate(t *testing.T, seed uint64, totalSec float64) *tpcw.Result {
	t.Helper()
	cfg := tpcw.DefaultTestbedConfig(seed)
	cfg.Machine.TotalMemKB = 384 * 1024
	cfg.Machine.TotalSwapKB = 192 * 1024
	cfg.Machine.BaseUsedKB = 96 * 1024
	cfg.Machine.BaseSharedKB = 12 * 1024
	cfg.Machine.BaseBuffersKB = 12 * 1024
	cfg.Machine.MinCacheKB = 12 * 1024
	cfg.NumBrowsers = 12
	cfg.Browser.ThinkMeanSec = 2
	cfg.LeakProbRange = [2]float64{0.5, 0.9}
	cfg.LeakSizeKBRange = [2]float64{512, 2048}
	cfg.RebootDelaySec = 20
	tb, err := tpcw.NewTestbed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.Run(totalSec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// replayThroughMonitor ships a history over real TCP and returns the
// server-side assembly.
func replayThroughMonitor(t *testing.T, h *trace.History) *trace.History {
	t.Helper()
	srv, err := monitor.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := monitor.Dial(srv.Addr(), "integration")
	if err != nil {
		t.Fatal(err)
	}
	wantRuns := 0
	for _, run := range h.Runs {
		if !run.Failed {
			continue // replay only completed runs
		}
		wantRuns++
		for i := range run.Datapoints {
			if err := cli.SendDatapoint(&run.Datapoints[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := cli.SendFail(run.FailTime); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		got, ok := srv.History("integration")
		if ok && len(got.FailedRuns()) == wantRuns {
			return got
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("monitor did not assemble the replayed history")
	return nil
}

func TestFullStack(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// 1. Simulate the test-bed campaign.
	res := simulate(t, 2024, 10_000)
	failed := res.History.FailedRuns()
	if len(failed) < 4 {
		t.Fatalf("campaign produced only %d failed runs", len(failed))
	}

	// 2. Replay through the real TCP monitor and verify fidelity.
	assembled := replayThroughMonitor(t, &res.History)
	if assembled.TotalDatapoints() != (&trace.History{Runs: failed}).TotalDatapoints() {
		t.Fatal("monitor lost datapoints")
	}
	for i := range failed {
		if assembled.Runs[i].FailTime != failed[i].FailTime {
			t.Fatalf("run %d fail time drifted through the wire", i)
		}
		for j := range failed[i].Datapoints {
			if assembled.Runs[i].Datapoints[j] != failed[i].Datapoints[j] {
				t.Fatalf("run %d datapoint %d drifted through the wire", i, j)
			}
		}
	}

	// 3. Train on the server-assembled history.
	cfg := core.DefaultConfig()
	cfg.Aggregation.WindowSec = 15
	cfg.SelectionLambda = 0
	cfg.FeatureLambdas = nil
	cfg.Models = core.DefaultModels(nil)[:3]
	pipe, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pipe.Run(assembled)
	if err != nil {
		t.Fatal(err)
	}
	best := rep.Best()
	if best == nil || best.Report.RAE >= 1 {
		t.Fatalf("pipeline produced no useful model (best=%v)", best)
	}

	// 4. Persist and restore the model.
	var buf bytes.Buffer
	if err := modelio.Save(&buf, best.Model); err != nil {
		t.Fatal(err)
	}
	restored, err := modelio.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// 5. Live prediction with the restored model on a held-out-style
	// stream (first failed run).
	la, err := aggregate.NewLiveAggregator(cfg.Aggregation)
	if err != nil {
		t.Fatal(err)
	}
	run := failed[0]
	var predicted, observed []float64
	for _, d := range run.Datapoints {
		if row, tgen, ok := la.Push(d); ok {
			p := restored.Predict(row)
			if math.IsNaN(p) {
				t.Fatal("restored model predicts NaN")
			}
			predicted = append(predicted, p)
			observed = append(observed, run.FailTime-tgen)
		}
	}
	if len(predicted) < 5 {
		t.Fatalf("only %d live predictions", len(predicted))
	}
	rae, err := metrics.RAE(predicted, observed)
	if err != nil {
		t.Fatal(err)
	}
	if rae >= 1.2 {
		t.Fatalf("live RAE %v — restored model useless on live stream", rae)
	}

	// 6. Response-time estimation (§III-B) from the same campaign.
	var st, gaps, rtT, rts []float64
	prev := 0.0
	runStart := res.Runs[0].StartAbs
	for i, d := range run.Datapoints {
		if i > 0 {
			st = append(st, d.Tgen)
			gaps = append(gaps, d.Tgen-prev)
		}
		prev = d.Tgen
	}
	for _, s := range res.RTs {
		if s.AbsTime >= runStart && s.AbsTime <= runStart+run.FailTime {
			rtT = append(rtT, s.AbsTime-runStart)
			rts = append(rts, s.RT)
		}
	}
	g, r, err := rtest.WindowPairs(st, gaps, rtT, rts, 30)
	if err != nil {
		t.Fatal(err)
	}
	est, err := rtest.Fit(g, r)
	if err != nil {
		t.Fatal(err)
	}
	if est.Pearson < 0.3 {
		t.Fatalf("intergen↔RT correlation too weak end-to-end: %v", est.Pearson)
	}
}

func TestCSVThroughPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// Simulate → CSV → reload → pipeline: the cmd/tpcwsim + cmd/f2pm
	// path without the process boundary.
	res := simulate(t, 5, 8_000)
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, &res.History); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Aggregation.WindowSec = 15
	cfg.SelectionLambda = 1e5
	cfg.Models = core.DefaultModels(nil)[:3]
	pipe, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pipe.Run(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Best() == nil {
		t.Fatal("no model from CSV round trip")
	}
}
