package integration

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one cmd/ binary into a temp dir.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/"+name)
	cmd.Dir = moduleRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above working directory")
		}
		dir = parent
	}
}

// TestCLIPipeline drives the real binaries: tpcwsim generates a CSV,
// f2pm trains on it and saves the best model.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real binaries")
	}
	dir := t.TempDir()
	tpcwsim := buildTool(t, dir, "tpcwsim")
	f2pmBin := buildTool(t, dir, "f2pm")

	csvPath := filepath.Join(dir, "history.csv")
	sim := exec.Command(tpcwsim,
		"-seed", "3", "-duration", "9000", "-out", csvPath,
		"-browsers", "12", "-mem-mb", "384", "-swap-mb", "192", "-q")
	if out, err := sim.CombinedOutput(); err != nil {
		t.Fatalf("tpcwsim: %v\n%s", err, out)
	}
	if fi, err := os.Stat(csvPath); err != nil || fi.Size() == 0 {
		t.Fatalf("tpcwsim wrote nothing: %v", err)
	}

	modelPath := filepath.Join(dir, "best.model")
	train := exec.Command(f2pmBin,
		"-in", csvPath, "-window", "15", "-lambda", "1e5",
		"-fast", "-parallel", "1", "-save-model", modelPath)
	var stdout bytes.Buffer
	train.Stdout = &stdout
	train.Stderr = &stdout
	if err := train.Run(); err != nil {
		t.Fatalf("f2pm: %v\n%s", err, stdout.String())
	}
	out := stdout.String()
	for _, want := range []string{"best model:", "S-MAE", "Lasso regularization path", "saved model to"} {
		if !strings.Contains(out, want) {
			t.Fatalf("f2pm output missing %q:\n%s", want, out)
		}
	}
	if fi, err := os.Stat(modelPath); err != nil || fi.Size() == 0 {
		t.Fatalf("model file not written: %v", err)
	}
}

// TestCLIExperimentsQuick smoke-tests the experiments binary at reduced
// scale.
func TestCLIExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real binaries")
	}
	dir := t.TempDir()
	bin := buildTool(t, dir, "experiments")
	cmd := exec.Command(bin, "-quick", "-run", "fig4,table1")
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stdout
	if err := cmd.Run(); err != nil {
		t.Fatalf("experiments: %v\n%s", err, stdout.String())
	}
	out := stdout.String()
	for _, want := range []string{"Figure 4", "Table I", "lambda"} {
		if !strings.Contains(out, want) {
			t.Fatalf("experiments output missing %q", want)
		}
	}
}

// TestCLIPredictReplay drives the full deployment path: tpcwsim → f2pm
// -save-model → predict -replay with a rejuvenation action threshold.
func TestCLIPredictReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real binaries")
	}
	dir := t.TempDir()
	tpcwsim := buildTool(t, dir, "tpcwsim")
	f2pmBin := buildTool(t, dir, "f2pm")
	predict := buildTool(t, dir, "predict")

	csvPath := filepath.Join(dir, "history.csv")
	if out, err := exec.Command(tpcwsim,
		"-seed", "9", "-duration", "9000", "-out", csvPath,
		"-browsers", "12", "-mem-mb", "384", "-swap-mb", "192", "-q").CombinedOutput(); err != nil {
		t.Fatalf("tpcwsim: %v\n%s", err, out)
	}
	modelPath := filepath.Join(dir, "best.model")
	// Train all-params only so the replayed live rows match the model.
	if out, err := exec.Command(f2pmBin,
		"-in", csvPath, "-window", "15", "-lambda", "0",
		"-fast", "-parallel", "1", "-save-model", modelPath).CombinedOutput(); err != nil {
		t.Fatalf("f2pm: %v\n%s", err, out)
	}

	marker := filepath.Join(dir, "acted")
	cmd := exec.Command(predict,
		"-model", modelPath, "-replay", csvPath, "-window", "15",
		"-act-below", "60", "-action", "touch "+marker,
		"-max-predictions", "200")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("predict: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "predicted_rttf=") {
		t.Fatalf("no predictions emitted:\n%s", out)
	}
	// The replay includes runs approaching failure, so the action must
	// have fired at least once.
	if _, err := os.Stat(marker); err != nil {
		t.Fatalf("rejuvenation action never fired:\n%s", out)
	}
}
