package registry_test

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/aggregate"
	"repro/internal/ml/linreg"
	"repro/internal/ml/modelio"
	"repro/internal/monitor"
	"repro/internal/registry"
	"repro/internal/serve"
	"repro/internal/trace"
)

// e2eEnvelope trains a one-feature linear model (RTTF ≈ slope ·
// n_threads + bias) and wraps it in a full v2 envelope: features and
// aggregation, everything a cold serving node needs.
func e2eEnvelope(t *testing.T, slope float64) []byte {
	t.Helper()
	m := linreg.New()
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := make([]float64, len(X))
	for i, x := range X {
		y[i] = slope * x[0]
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	agg := aggregate.Config{WindowSec: 10}
	var buf bytes.Buffer
	err := modelio.SaveWithMeta(&buf, m, &modelio.Meta{
		Features:    []string{"n_threads"},
		Aggregation: &agg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRegistryFailoverEndToEnd is the acceptance-criteria e2e: a
// serving node under live traffic, pulling its model from a real
// registry over HTTP, survives the registry dying mid-refresh — zero
// ErrNoModel, staleness surfaced in Stats — and after the registry
// returns (with a new model published during the outage) the node
// converges to the new version within one poll interval. Run with
// -race in CI.
func TestRegistryFailoverEndToEnd(t *testing.T) {
	reg := registry.New()
	envA := e2eEnvelope(t, 2)
	pubA, err := reg.SetModel(envA)
	if err != nil {
		t.Fatal(err)
	}

	// The registry sits behind a kill switch: down() makes every
	// request fail with a 503, the "registry died" chaos.
	var down atomic.Bool
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "registry is down", http.StatusServiceUnavailable)
			return
		}
		reg.ServeHTTP(w, r)
	}))
	defer proxy.Close()

	cache := filepath.Join(t.TempDir(), "last-good.model")
	src := serve.NewHTTPModelSource(proxy.URL, serve.HTTPSourceConfig{
		CacheFile: cache,
		// Keep breaker cooldowns far below the refresh interval so a
		// healed registry reconverges on the very next poll.
		Backoff:          monitor.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond, Jitter: -1},
		BreakerThreshold: 3,
	})

	const refreshEvery = 20 * time.Millisecond
	var noModelErrs atomic.Int64
	var predictions atomic.Int64
	svc, err := serve.New(context.Background(),
		serve.WithModelSource(src),
		serve.WithRefreshInterval(refreshEvery),
		serve.WithEstimateFunc(func(serve.Estimate) { predictions.Add(1) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if got := src.ETag(); got != pubA.ETag {
		t.Fatalf("initial pull etag %q, want %q", got, pubA.ETag)
	}

	// Live monitor traffic: a goroutine keeps completing windows for
	// the whole test; any ErrNoModel is a dropped prediction.
	trafficCtx, stopTraffic := context.WithCancel(context.Background())
	defer stopTraffic()
	trafficDone := make(chan struct{})
	go func() {
		defer close(trafficDone)
		ss, err := svc.StartSession("node-client")
		if err != nil {
			t.Error(err)
			return
		}
		tgen := 0.0
		for trafficCtx.Err() == nil {
			var d trace.Datapoint
			d.Tgen = tgen
			d.Features[trace.NumThreads] = 3
			tgen += 10 // one datapoint per window boundary
			if err := ss.Push(d); err != nil {
				if errors.Is(err, serve.ErrNoModel) {
					noModelErrs.Add(1)
				} else if !errors.Is(err, serve.ErrServiceClosed) && !errors.Is(err, serve.ErrSessionClosed) {
					t.Errorf("push: %v", err)
				}
				return
			}
			svc.Flush()
			time.Sleep(time.Millisecond)
		}
	}()

	waitFor(t, 5*time.Second, "first predictions", func() bool { return predictions.Load() > 5 })
	base := predictions.Load()

	// Kill the registry mid-refresh; publish a new model it will serve
	// once it comes back.
	down.Store(true)
	envB := e2eEnvelope(t, 5)
	pubB, err := reg.SetModel(envB)
	if err != nil {
		t.Fatal(err)
	}
	if pubB.ETag == pubA.ETag {
		t.Fatal("test envelopes are identical")
	}

	// Note Refresh itself keeps succeeding as a no-op — the failover
	// source absorbs the origin failure and serves the last-good model
	// — so the outage surfaces through the staleness fields, not
	// RefreshFailures.
	waitFor(t, 5*time.Second, "staleness to surface", func() bool {
		st := svc.Stats()
		return st.RegistryStale && st.RegistryLastError != ""
	})
	// Outage persists across several refresh intervals; predictions
	// must keep flowing from the last-good model the whole time.
	time.Sleep(5 * refreshEvery)
	st := svc.Stats()
	if !st.RegistryStale {
		t.Fatalf("staleness cleared while the registry was still down: %+v", st)
	}
	if st.ModelVersion != 1 {
		t.Fatalf("model version %d during outage, want 1 (never dropped)", st.ModelVersion)
	}
	if got := predictions.Load(); got <= base {
		t.Fatalf("predictions stalled during the outage: %d -> %d", base, got)
	}

	// Recovery: within one poll interval (generous CI slop) the node
	// must converge to the envelope published during the outage.
	healed := time.Now()
	down.Store(false)
	waitFor(t, 5*time.Second, "reconvergence to the new model", func() bool {
		return src.ETag() == pubB.ETag && svc.Stats().ModelVersion == 2
	})
	converged := time.Since(healed)
	if converged > 50*refreshEvery {
		t.Errorf("reconvergence took %v — far beyond one %v poll interval", converged, refreshEvery)
	}
	waitFor(t, 5*time.Second, "staleness to clear", func() bool {
		return !svc.Stats().RegistryStale
	})

	stopTraffic()
	<-trafficDone
	if n := noModelErrs.Load(); n != 0 {
		t.Fatalf("%d ErrNoModel during the outage, want 0 — stale-while-revalidate failed", n)
	}
	// The node heartbeats its converged state; the registry health view
	// must reflect it.
	client := registry.NewClient(proxy.URL, nil)
	finalStats := svc.Stats()
	if _, err := client.SendHeartbeat(context.Background(), registry.Heartbeat{
		Node:        "node-1",
		ETag:        src.ETag(),
		Sessions:    finalStats.Sessions,
		Predictions: finalStats.Predictions,
	}); err != nil {
		t.Fatal(err)
	}
	h, err := client.FetchHealth(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Nodes) != 1 || !h.Nodes[0].Current || !h.Nodes[0].Alive {
		t.Fatalf("health after reconvergence = %+v, want one alive current node", h)
	}
}

// TestColdBootFromCacheDuringOutage proves a rebooted node serves
// through an outage: its first life persists the last-good envelope,
// its second life starts with the registry dead and still predicts.
func TestColdBootFromCacheDuringOutage(t *testing.T) {
	reg := registry.New()
	if _, err := reg.SetModel(e2eEnvelope(t, 2)); err != nil {
		t.Fatal(err)
	}
	var down atomic.Bool
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "registry is down", http.StatusServiceUnavailable)
			return
		}
		reg.ServeHTTP(w, r)
	}))
	defer proxy.Close()
	cache := filepath.Join(t.TempDir(), "last-good.model")

	// First life: healthy pull, cache written.
	src1 := serve.NewHTTPModelSource(proxy.URL, serve.HTTPSourceConfig{CacheFile: cache})
	if _, err := src1.Deployment(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Second life: registry dead before the node boots.
	down.Store(true)
	src2 := serve.NewHTTPModelSource(proxy.URL, serve.HTTPSourceConfig{CacheFile: cache})
	svc, err := serve.New(context.Background(), serve.WithModelSource(src2))
	if err != nil {
		t.Fatalf("cold boot from cache: %v", err)
	}
	defer svc.Close()
	st := svc.Stats()
	if st.ModelVersion != 1 || !st.RegistryStale {
		t.Fatalf("cache-booted stats = %+v, want v1 serving stale", st)
	}

	ss, err := svc.StartSession("c")
	if err != nil {
		t.Fatal(err)
	}
	var d trace.Datapoint
	d.Features[trace.NumThreads] = 2
	for i := 0; i < 3; i++ {
		d.Tgen = float64(i * 10)
		if err := ss.Push(d); err != nil {
			t.Fatalf("push on cache-booted node: %v", err)
		}
	}
	svc.Flush()
	if svc.Stats().Predictions == 0 {
		t.Fatal("cache-booted node delivered no predictions")
	}
}
