package registry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/ml/linreg"
	"repro/internal/ml/modelio"
)

// trainedEnvelope builds a real (tiny) fitted linear model and returns
// its v2 envelope bytes. Varying bias shifts the payload so tests can
// produce distinct envelopes.
func trainedEnvelope(t *testing.T, bias float64) []byte {
	t.Helper()
	m := linreg.New()
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{2 + bias, 4 + bias, 6 + bias, 8 + bias}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := modelio.SaveWithMeta(&buf, m, &modelio.Meta{Features: []string{"used_swap"}}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// legacyV1Envelope hand-crafts a version-1 envelope (no meta field) —
// the format the first modelio shipped — wrapping a fitted model's
// payload. The registry must serve it byte-identically.
func legacyV1Envelope(t *testing.T) []byte {
	t.Helper()
	m := linreg.New()
	if err := m.Fit([][]float64{{1}, {2}, {3}}, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	payload, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return []byte(fmt.Sprintf(`{"format":"f2pm-model","version":1,"kind":"linear","payload":%s}`+"\n", payload))
}

func TestPublishFetchRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		env  []byte
	}{
		{"v2", trainedEnvelope(t, 0)},
		{"legacy-v1", legacyV1Envelope(t)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv := httptest.NewServer(New())
			defer srv.Close()
			c := NewClient(srv.URL, nil)

			res, err := c.Publish(context.Background(), tc.env)
			if err != nil {
				t.Fatal(err)
			}
			if res.Version != 1 || !res.Changed {
				t.Fatalf("publish = %+v, want version 1, changed", res)
			}

			got, etag, err := c.FetchModel(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, tc.env) {
				t.Fatalf("served envelope differs from published bytes:\n got %q\nwant %q", got, tc.env)
			}
			if etag != res.ETag {
				t.Fatalf("GET etag %q != publish etag %q", etag, res.ETag)
			}
			// The round-tripped bytes must load into a working model.
			m, _, err := modelio.LoadWithMeta(bytes.NewReader(got))
			if err != nil {
				t.Fatal(err)
			}
			if m.Name() != "linear" {
				t.Fatalf("loaded kind %q, want linear", m.Name())
			}
		})
	}
}

func TestETagChangesIffBytesChange(t *testing.T) {
	reg := New()
	envA := trainedEnvelope(t, 0)
	envB := trainedEnvelope(t, 10)

	resA, err := reg.SetModel(envA)
	if err != nil {
		t.Fatal(err)
	}
	// Identical bytes: same ETag, same version, not a change.
	resA2, err := reg.SetModel(append([]byte(nil), envA...))
	if err != nil {
		t.Fatal(err)
	}
	if resA2.ETag != resA.ETag || resA2.Version != resA.Version || resA2.Changed {
		t.Fatalf("idempotent republish bumped state: %+v then %+v", resA, resA2)
	}
	// Different bytes: new ETag, new version.
	resB, err := reg.SetModel(envB)
	if err != nil {
		t.Fatal(err)
	}
	if resB.ETag == resA.ETag {
		t.Fatal("different envelope bytes produced the same ETag")
	}
	if resB.Version != resA.Version+1 || !resB.Changed {
		t.Fatalf("changed publish = %+v, want version %d", resB, resA.Version+1)
	}
}

func TestConditionalGet(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	env := trainedEnvelope(t, 0)
	c := NewClient(srv.URL, nil)
	res, err := c.Publish(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}

	get := func(inm string) *http.Response {
		req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/model", nil)
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := get(res.ETag); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("matching If-None-Match: status %d, want 304", resp.StatusCode)
	}
	if resp := get(`"deadbeef"`); resp.StatusCode != http.StatusOK {
		t.Fatalf("stale If-None-Match: status %d, want 200", resp.StatusCode)
	}
	// Multiple candidates, one matching.
	if resp := get(`"deadbeef", ` + res.ETag); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("multi-tag If-None-Match: status %d, want 304", resp.StatusCode)
	}
}

func TestRejectGarbageKeepsServing(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	c := NewClient(srv.URL, nil)
	env := trainedEnvelope(t, 0)
	if _, err := c.Publish(context.Background(), env); err != nil {
		t.Fatal(err)
	}

	for _, bad := range [][]byte{
		[]byte("not json"),
		[]byte(`{"format":"something-else","version":2,"kind":"linear","payload":{}}`),
		[]byte(`{"format":"f2pm-model","version":99,"kind":"linear","payload":{}}`),
		[]byte(`{"format":"f2pm-model","version":2,"kind":"nonsense","payload":{}}`),
	} {
		if _, err := c.Publish(context.Background(), bad); err == nil {
			t.Fatalf("garbage %q was accepted", bad)
		} else if !strings.Contains(err.Error(), "400") {
			t.Fatalf("garbage %q: error %v, want a 400", bad, err)
		}
	}
	// The original model is still served, byte-identical.
	got, _, err := c.FetchModel(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, env) {
		t.Fatal("garbage publish corrupted the served envelope")
	}
}

func TestNoModelIs404(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("empty registry GET: status %d, want 404", resp.StatusCode)
	}
}

func TestHeartbeatAndHealth(t *testing.T) {
	now := time.Unix(5_000_000, 0)
	reg := New(WithClock(func() time.Time { return now }), WithLivenessWindow(30*time.Second))
	srv := httptest.NewServer(reg)
	defer srv.Close()
	c := NewClient(srv.URL, nil)

	env := trainedEnvelope(t, 0)
	res, err := c.Publish(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}

	etag, err := c.SendHeartbeat(context.Background(), Heartbeat{
		Node: "node-a", ETag: res.ETag, Sessions: 3, Predictions: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if etag != res.ETag {
		t.Fatalf("heartbeat response etag %q, want %q", etag, res.ETag)
	}
	if _, err := c.SendHeartbeat(context.Background(), Heartbeat{
		Node: "node-b", ETag: `"old"`, Stale: true, StaleAgeSec: 12, LastError: "connection refused",
	}); err != nil {
		t.Fatal(err)
	}

	// Age node-b past the liveness window via the injected clock.
	h, err := c.FetchHealth(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Nodes) != 2 || h.ModelVersion != 1 || h.ModelETag != res.ETag {
		t.Fatalf("health = %+v", h)
	}
	if !h.Nodes[0].Alive || !h.Nodes[0].Current || h.Nodes[0].Node != "node-a" {
		t.Fatalf("node-a row = %+v, want alive and current", h.Nodes[0])
	}
	if h.Nodes[1].Current || !h.Nodes[1].Stale {
		t.Fatalf("node-b row = %+v, want stale and not current", h.Nodes[1])
	}
	if h.AliveNodes != 2 || h.StaleNodes != 1 {
		t.Fatalf("alive=%d stale=%d, want 2/1", h.AliveNodes, h.StaleNodes)
	}

	now = now.Add(31 * time.Second)
	h = reg.Health()
	if h.Nodes[0].Alive || h.AliveNodes != 0 {
		t.Fatalf("after 31s of silence: %+v, want no node alive", h)
	}

	// A heartbeat without a node id is rejected.
	if _, err := c.SendHeartbeat(context.Background(), Heartbeat{}); err == nil {
		t.Fatal("anonymous heartbeat accepted")
	}
}

func TestHealthz(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d, want 200", resp.StatusCode)
	}
}
