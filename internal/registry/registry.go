// Package registry is the remote model registry — the control plane
// that lets N serving nodes share one trainer (ROADMAP item 2, the
// paper's autonomic-fleet framing). One writer (the training pipeline,
// cmd/f2pm -publish) PUTs modelio deployment envelopes; any number of
// serving nodes (cmd/fms -registry, serve.HTTPModelSource) poll with
// conditional GETs, heartbeat their health, and keep serving their
// last-good model when the registry is down — the registry is a
// convergence point, never a single point of failure for predictions.
//
// The wire protocol (see docs/registry-protocol.md):
//
//	GET  /v1/model      the current envelope; strong ETag; 304 on
//	                    If-None-Match hit; 404 before the first publish
//	PUT  /v1/model      publish an envelope (validated by loading it);
//	                    idempotent — identical bytes keep the version
//	POST /v1/heartbeat  node liveness + convergence report
//	GET  /v1/health     fleet view: model version/ETag + per-node state
//	GET  /v1/healthz    registry liveness probe
//
// The ETag is the hex SHA-256 of the envelope bytes, quoted — a strong
// validator that changes iff the bytes change, so a republished
// identical model costs every node one 304 and nothing else.
package registry

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/ml/modelio"
)

// Published describes one accepted publish — the hook payload for
// persistence (cmd/fmr -persist) and logging.
type Published struct {
	// Version counts accepted publishes that changed the envelope
	// (starts at 1).
	Version uint64
	// ETag is the strong entity tag of the new envelope.
	ETag string
	// Kind is the model kind inside the envelope ("linear", "lssvm",
	// ...).
	Kind string
	// Data is the envelope bytes as received (callers must not mutate).
	Data []byte
}

// Heartbeat is one serving node's report: who it is, which envelope it
// serves, and whether it is serving stale (the node-side
// stale-while-revalidate flag).
type Heartbeat struct {
	// Node identifies the serving node (hostname, pod name, ...).
	Node string `json:"node"`
	// ETag is the envelope the node last fetched successfully.
	ETag string `json:"etag,omitempty"`
	// ModelVersion is the node's local registry version (its own
	// Deploy counter, not the control plane's publish version).
	ModelVersion uint64 `json:"model_version,omitempty"`
	// Sessions and Predictions are the node's serving counters.
	Sessions    int    `json:"sessions"`
	Predictions uint64 `json:"predictions"`
	// Stale reports the node is serving its last-good model because
	// its registry polls are failing; StaleAgeSec is for how long.
	Stale       bool    `json:"stale,omitempty"`
	StaleAgeSec float64 `json:"stale_age_sec,omitempty"`
	// LastError is the node's most recent poll failure, if any.
	LastError string `json:"last_error,omitempty"`
}

// NodeHealth is one node's row in the fleet health view.
type NodeHealth struct {
	Heartbeat
	// AgeSec is how long ago the node last heartbeat.
	AgeSec float64 `json:"age_sec"`
	// Alive is AgeSec within the liveness window.
	Alive bool `json:"alive"`
	// Current is ETag == the registry's current envelope — the node
	// has converged to the published model.
	Current bool `json:"current"`
}

// Health is the fleet view served at /v1/health.
type Health struct {
	// ModelVersion/ModelETag/ModelKind describe the current envelope
	// (version 0 and empty tags before the first publish).
	ModelVersion uint64 `json:"model_version"`
	ModelETag    string `json:"model_etag,omitempty"`
	ModelKind    string `json:"model_kind,omitempty"`
	// Nodes is the per-node state, sorted by node id.
	Nodes []NodeHealth `json:"nodes"`
	// AliveNodes/StaleNodes summarize the fleet.
	AliveNodes int `json:"alive_nodes"`
	StaleNodes int `json:"stale_nodes"`
}

// PublishResult is the PUT /v1/model response body.
type PublishResult struct {
	Version uint64 `json:"version"`
	ETag    string `json:"etag"`
	// Changed is false when the published bytes were identical to the
	// current envelope (idempotent republish).
	Changed bool `json:"changed"`
}

// Option configures a Server.
type Option func(*Server)

// WithClock sets the server's time source (default time.Now) — tests
// and simulations drive heartbeat aging deterministically.
func WithClock(now func() time.Time) Option {
	return func(s *Server) { s.now = now }
}

// WithLivenessWindow sets how stale a heartbeat may be before the node
// counts as dead in the health view (default 30 s).
func WithLivenessWindow(d time.Duration) Option {
	return func(s *Server) { s.liveFor = d }
}

// WithPublishHook registers a callback invoked after every accepted
// publish that changed the envelope — the persistence hook (cmd/fmr
// writes the envelope to disk so a restarted registry still serves it).
// Called with the server lock released.
func WithPublishHook(fn func(Published)) Option {
	return func(s *Server) { s.onPublish = fn }
}

// WithMaxEnvelopeBytes caps accepted PUT bodies (default 64 MiB).
func WithMaxEnvelopeBytes(n int64) Option {
	return func(s *Server) { s.maxBytes = n }
}

// nodeState is one node's last heartbeat plus its arrival time.
type nodeState struct {
	hb   Heartbeat
	seen time.Time
}

// Server is the registry control plane: the current deployment
// envelope with its strong ETag, and the node heartbeat table. It
// implements http.Handler; all methods are safe for concurrent use.
type Server struct {
	now       func() time.Time
	liveFor   time.Duration
	onPublish func(Published)
	maxBytes  int64

	mu      sync.Mutex
	data    []byte
	etag    string
	kind    string
	version uint64
	nodes   map[string]*nodeState
}

// New builds a registry server with no model published yet. Seed it
// with SetModel (cmd/fmr -model / -persist) or a client PUT.
func New(opts ...Option) *Server {
	s := &Server{
		now:      time.Now,
		liveFor:  30 * time.Second,
		maxBytes: 64 << 20,
		nodes:    map[string]*nodeState{},
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// etagOf derives the strong entity tag: quoted hex SHA-256 of the
// envelope bytes. Identical bytes always map to an identical tag;
// any byte change changes it.
func etagOf(data []byte) string {
	sum := sha256.Sum256(data)
	return `"` + hex.EncodeToString(sum[:]) + `"`
}

// SetModel validates and installs an envelope, returning the publish
// outcome. Garbage (anything modelio cannot load — wrong format,
// unknown kind, truncated JSON) is rejected with the load error and
// the current envelope keeps serving. Publishing bytes identical to
// the current envelope is a no-op: same ETag, same version.
func (s *Server) SetModel(data []byte) (PublishResult, error) {
	m, _, err := modelio.LoadWithMeta(bytes.NewReader(data))
	if err != nil {
		return PublishResult{}, fmt.Errorf("registry: rejected envelope: %w", err)
	}
	tag := etagOf(data)
	s.mu.Lock()
	if s.etag == tag {
		res := PublishResult{Version: s.version, ETag: tag}
		s.mu.Unlock()
		return res, nil
	}
	s.data = append([]byte(nil), data...)
	s.etag = tag
	s.kind = m.Name()
	s.version++
	res := PublishResult{Version: s.version, ETag: tag, Changed: true}
	pub := Published{Version: s.version, ETag: tag, Kind: s.kind, Data: s.data}
	hook := s.onPublish
	s.mu.Unlock()
	if hook != nil {
		hook(pub)
	}
	return res, nil
}

// Model returns the current envelope bytes (a copy) and ETag; ok is
// false before the first publish.
func (s *Server) Model() (data []byte, etag string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.data == nil {
		return nil, "", false
	}
	return append([]byte(nil), s.data...), s.etag, true
}

// Version returns the current publish version (0 before the first
// publish).
func (s *Server) Version() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// RecordHeartbeat installs one node report (the POST /v1/heartbeat
// core, exported for in-process use).
func (s *Server) RecordHeartbeat(hb Heartbeat) error {
	if hb.Node == "" {
		return fmt.Errorf("registry: heartbeat without a node id")
	}
	s.mu.Lock()
	s.nodes[hb.Node] = &nodeState{hb: hb, seen: s.now()}
	s.mu.Unlock()
	return nil
}

// Health assembles the fleet view: the current model plus every node's
// last heartbeat, aged against the liveness window.
func (s *Server) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	h := Health{ModelVersion: s.version, ModelETag: s.etag, ModelKind: s.kind}
	ids := make([]string, 0, len(s.nodes))
	for id := range s.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ns := s.nodes[id]
		age := now.Sub(ns.seen)
		if age < 0 {
			age = 0
		}
		nh := NodeHealth{
			Heartbeat: ns.hb,
			AgeSec:    age.Seconds(),
			Alive:     age <= s.liveFor,
			Current:   s.etag != "" && ns.hb.ETag == s.etag,
		}
		if nh.Alive {
			h.AliveNodes++
		}
		if nh.Stale {
			h.StaleNodes++
		}
		h.Nodes = append(h.Nodes, nh)
	}
	return h
}

// ServeHTTP implements http.Handler — the five-endpoint protocol.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/v1/model":
		switch r.Method {
		case http.MethodGet, http.MethodHead:
			s.handleGetModel(w, r)
		case http.MethodPut:
			s.handlePutModel(w, r)
		default:
			w.Header().Set("Allow", "GET, HEAD, PUT")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	case "/v1/heartbeat":
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", "POST")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		s.handleHeartbeat(w, r)
	case "/v1/health":
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", "GET")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, http.StatusOK, s.Health())
	case "/v1/healthz":
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	default:
		http.NotFound(w, r)
	}
}

// handleGetModel serves the envelope with its strong ETag, honoring
// If-None-Match (304 with no body on a hit — the steady-state poll
// cost of a converged fleet).
func (s *Server) handleGetModel(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	data, etag := s.data, s.etag
	s.mu.Unlock()
	if data == nil {
		http.Error(w, "no model published", http.StatusNotFound)
		return
	}
	// If-None-Match may carry several tags; strong comparison — exact
	// match on the quoted tag (a W/ prefix never matches a strong tag).
	for _, cand := range splitETags(r.Header.Get("If-None-Match")) {
		if cand == etag || cand == "*" {
			w.Header().Set("ETag", etag)
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	w.Header().Set("ETag", etag)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", fmt.Sprint(len(data)))
	if r.Method == http.MethodHead {
		return
	}
	w.Write(data)
}

// handlePutModel accepts a publish: the body must load as a modelio
// envelope (v1 or v2) or the request is rejected with 400 and the
// current model keeps serving.
func (s *Server) handlePutModel(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.maxBytes+1))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if int64(len(body)) > s.maxBytes {
		http.Error(w, "envelope too large", http.StatusRequestEntityTooLarge)
		return
	}
	res, err := s.SetModel(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("ETag", res.ETag)
	writeJSON(w, http.StatusOK, res)
}

// handleHeartbeat decodes and records one node report.
func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var hb Heartbeat
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&hb); err != nil {
		http.Error(w, "bad heartbeat: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.RecordHeartbeat(hb); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// The response carries the current ETag so a heartbeating node
	// learns it has fallen behind without waiting for its next poll.
	s.mu.Lock()
	etag := s.etag
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]string{"model_etag": etag})
}

// splitETags parses an If-None-Match header into candidate tags.
func splitETags(h string) []string {
	if h == "" {
		return nil
	}
	var out []string
	for _, part := range bytes.Split([]byte(h), []byte(",")) {
		if t := string(bytes.TrimSpace(part)); t != "" {
			out = append(out, t)
		}
	}
	return out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
