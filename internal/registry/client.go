package registry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client talks to a registry server: the trainer publishes through it
// (cmd/f2pm -publish), serving nodes heartbeat through it (cmd/fms
// -registry), and tooling reads the fleet health view. The model *pull*
// path on serving nodes is serve.HTTPModelSource, not this type — the
// failover semantics live there.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for the registry at base (e.g.
// "http://10.0.0.9:7071"). A nil hc uses http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// Publish PUTs envelope bytes to /v1/model and returns the registry's
// verdict. The registry validates by loading the envelope, so a bad
// publish fails here with the server's 400 body instead of poisoning
// the fleet.
func (c *Client) Publish(ctx context.Context, envelope []byte) (PublishResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.base+"/v1/model", bytes.NewReader(envelope))
	if err != nil {
		return PublishResult{}, fmt.Errorf("registry publish: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	var res PublishResult
	if err := c.do(req, &res); err != nil {
		return PublishResult{}, fmt.Errorf("registry publish: %w", err)
	}
	return res, nil
}

// SendHeartbeat POSTs one node report and returns the registry's
// current model ETag (empty before the first publish).
func (c *Client) SendHeartbeat(ctx context.Context, hb Heartbeat) (modelETag string, err error) {
	body, err := json.Marshal(hb)
	if err != nil {
		return "", fmt.Errorf("registry heartbeat: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/heartbeat", bytes.NewReader(body))
	if err != nil {
		return "", fmt.Errorf("registry heartbeat: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	var res struct {
		ModelETag string `json:"model_etag"`
	}
	if err := c.do(req, &res); err != nil {
		return "", fmt.Errorf("registry heartbeat: %w", err)
	}
	return res.ModelETag, nil
}

// FetchHealth reads the fleet health view.
func (c *Client) FetchHealth(ctx context.Context) (Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/health", nil)
	if err != nil {
		return Health{}, fmt.Errorf("registry health: %w", err)
	}
	var h Health
	if err := c.do(req, &h); err != nil {
		return Health{}, fmt.Errorf("registry health: %w", err)
	}
	return h, nil
}

// FetchModel GETs the current envelope bytes and ETag (no conditional
// logic — tooling use; serving nodes poll via serve.HTTPModelSource).
func (c *Client) FetchModel(ctx context.Context) (data []byte, etag string, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/model", nil)
	if err != nil {
		return nil, "", fmt.Errorf("registry fetch: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, "", fmt.Errorf("registry fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("registry fetch: %s", httpError(resp))
	}
	data, err = io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, "", fmt.Errorf("registry fetch: %w", err)
	}
	return data, resp.Header.Get("ETag"), nil
}

// do runs req, decoding a 2xx JSON body into out and turning anything
// else into an error carrying the server's message.
func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("%s", httpError(resp))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(out)
}

// httpError formats a non-2xx response as "status: first line of body".
func httpError(resp *http.Response) string {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	msg := strings.TrimSpace(string(body))
	if i := strings.IndexByte(msg, '\n'); i >= 0 {
		msg = msg[:i]
	}
	if msg == "" {
		return resp.Status
	}
	return resp.Status + ": " + msg
}
