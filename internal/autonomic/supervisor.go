package autonomic

import (
	"fmt"
	"time"
)

// Config shapes a Supervisor.
type Config struct {
	// Policies run in order on every Tick; earlier policies' actions
	// execute before later ones are evaluated against the same tick's
	// signals.
	Policies []Policy
	// Actuators are the execute arms; nil arms log OutcomeNoActuator.
	Actuators Actuators
	// Cooldown is the minimum spacing between executions per action
	// kind; kinds absent from the map use DefaultCooldown. Proposals
	// inside the cooldown are logged with OutcomeCooldown, not
	// executed.
	Cooldown map[ActionKind]time.Duration
	// DefaultCooldown applies to action kinds without an entry in
	// Cooldown (0 = no cooldown).
	DefaultCooldown time.Duration
	// RedeployAfter bounds how long a deferred publish waits for the
	// registry to heal: a publish parked longer than this while the
	// registry is still stale is executed as a local Redeploy instead,
	// so the node itself serves the retrained model even when the
	// fleet cannot converge on it yet. 0 disables the fallback.
	RedeployAfter time.Duration
	// BusCapacity bounds the signal bus (DefaultBusCapacity if <= 0).
	BusCapacity int
	// OnDecision observes every decision as it is made, in sequence
	// order — the hook a structured decision log hangs off. Called on
	// the Tick goroutine.
	OnDecision func(Decision)
}

// Supervisor is the closed loop: signals in (Signal/Bus), decisions
// out (Tick). It owns no goroutines and no clock — the caller ticks it
// with explicit timestamps, which is what makes a chaos scenario's
// decision stream replayable. Signal is safe to call concurrently with
// Tick; Tick itself must be called from one goroutine at a time.
type Supervisor struct {
	cfg Config
	bus *Bus

	seq      int
	lastExec map[ActionKind]time.Time
	stale    bool

	// pending is the deferred publish (at most one — publishes are
	// idempotent over "the latest trained model", so later deferrals
	// replace earlier ones).
	pending    *Proposal
	pendingAt  time.Time
	pendingPol string

	counts map[Outcome]int
	execs  map[ActionKind]int
}

// New validates the configuration and returns a supervisor.
func New(cfg Config) (*Supervisor, error) {
	if len(cfg.Policies) == 0 {
		return nil, fmt.Errorf("autonomic: at least one policy is required")
	}
	seen := map[string]bool{}
	for _, p := range cfg.Policies {
		if p == nil {
			return nil, fmt.Errorf("autonomic: nil policy")
		}
		if seen[p.Name()] {
			return nil, fmt.Errorf("autonomic: duplicate policy %q", p.Name())
		}
		seen[p.Name()] = true
	}
	for kind, d := range cfg.Cooldown {
		if d < 0 {
			return nil, fmt.Errorf("autonomic: negative cooldown for %q", kind)
		}
	}
	return &Supervisor{
		cfg:      cfg,
		bus:      NewBus(cfg.BusCapacity),
		lastExec: map[ActionKind]time.Time{},
		counts:   map[Outcome]int{},
		execs:    map[ActionKind]int{},
	}, nil
}

// Signal publishes one observation onto the supervisor's bus.
func (s *Supervisor) Signal(sig Signal) { s.bus.Publish(sig) }

// Bus returns the supervisor's signal bus, for producers that want to
// publish directly.
func (s *Supervisor) Bus() *Bus { return s.bus }

// Decisions returns how many decisions the supervisor has made.
func (s *Supervisor) Decisions() int { return s.seq }

// Outcomes returns a copy of the per-outcome decision counts.
func (s *Supervisor) Outcomes() map[Outcome]int {
	out := make(map[Outcome]int, len(s.counts))
	for k, v := range s.counts {
		out[k] = v
	}
	return out
}

// Executed returns how many actions of the kind have actually run.
func (s *Supervisor) Executed(kind ActionKind) int { return s.execs[kind] }

// RegistryStale reports the staleness state the supervisor last
// observed via SignalStaleness.
func (s *Supervisor) RegistryStale() bool { return s.stale }

// Tick runs one MAPE cycle at now: drain the bus, update the registry
// staleness view, retry (or fall back on) a deferred publish, then
// evaluate every policy and execute its proposals through the
// actuators. It returns the decisions made this cycle, in order.
func (s *Supervisor) Tick(now time.Time) []Decision {
	sigs := s.bus.Drain()
	for _, sig := range sigs {
		if sig.Kind == SignalStaleness {
			s.stale = sig.Value > 0
		}
	}

	var out []Decision
	if s.pending != nil {
		switch {
		case !s.stale:
			p := *s.pending
			s.pending = nil
			d := s.decide(now, s.pendingPol,
				Proposal{Action: p.Action, Reason: "registry fresh again; " + p.Reason})
			s.observe(s.pendingPol, d)
			out = append(out, d)
		case s.cfg.RedeployAfter > 0 && now.Sub(s.pendingAt) >= s.cfg.RedeployAfter:
			p := *s.pending
			s.pending = nil
			d := s.decide(now, s.pendingPol, Proposal{
				Action: Action{Kind: ActionRedeploy},
				Reason: fmt.Sprintf("registry stale past %s; deploying locally instead of publish (%s)",
					s.cfg.RedeployAfter, p.Reason),
			})
			s.observe(s.pendingPol, d)
			out = append(out, d)
		}
	}
	for _, pol := range s.cfg.Policies {
		for _, prop := range pol.Evaluate(now, sigs) {
			d := s.decide(now, pol.Name(), prop)
			if obs, ok := pol.(OutcomeObserver); ok {
				obs.Observe(d)
			}
			out = append(out, d)
		}
	}
	return out
}

// observe routes a decision back to the policy that proposed it, by
// name — the deferred-publish path loses the policy pointer when it
// parks the proposal, so the retry looks it up again.
func (s *Supervisor) observe(policy string, d Decision) {
	for _, pol := range s.cfg.Policies {
		if pol.Name() != policy {
			continue
		}
		if obs, ok := pol.(OutcomeObserver); ok {
			obs.Observe(d)
		}
		return
	}
}

// decide resolves one proposal into a decision: cooldown suppression,
// stale-registry publish deferral, or actuator execution.
func (s *Supervisor) decide(now time.Time, policy string, prop Proposal) Decision {
	s.seq++
	d := Decision{Seq: s.seq, At: now, Policy: policy, Action: prop.Action, Reason: prop.Reason}

	kind := prop.Action.Kind
	cd, ok := s.cfg.Cooldown[kind]
	if !ok {
		cd = s.cfg.DefaultCooldown
	}
	if last, fired := s.lastExec[kind]; fired && cd > 0 && now.Sub(last) < cd {
		d.Outcome = OutcomeCooldown
		d.Err = fmt.Sprintf("last %s at %s ago < cooldown %s", kind, now.Sub(last), cd)
		return s.record(d)
	}
	if kind == ActionPublish && s.stale {
		d.Outcome = OutcomeDeferred
		s.pending = &Proposal{Action: prop.Action, Reason: prop.Reason}
		s.pendingAt = now
		s.pendingPol = policy
		return s.record(d)
	}

	var err error
	a := s.cfg.Actuators
	switch kind {
	case ActionRetrain:
		err = run(a.Retrain, prop.Reason, &d)
	case ActionSlide:
		if a.Slide == nil {
			d.Outcome = OutcomeNoActuator
		} else {
			err = a.Slide(prop.Action.MaxRuns, prop.Reason)
		}
	case ActionPublish:
		err = run(a.Publish, prop.Reason, &d)
	case ActionRedeploy:
		err = run(a.Redeploy, prop.Reason, &d)
	case ActionReshard:
		if a.Reshard == nil {
			d.Outcome = OutcomeNoActuator
		} else {
			err = a.Reshard(prop.Action.MaxQueueDepth, prop.Action.MinPriority, prop.Reason)
		}
	case ActionRebalance:
		err = run(a.Rebalance, prop.Reason, &d)
	default:
		d.Outcome = OutcomeFailed
		d.Err = fmt.Sprintf("unknown action kind %q", kind)
		return s.record(d)
	}
	if d.Outcome == OutcomeNoActuator {
		return s.record(d)
	}
	if err != nil {
		d.Outcome = OutcomeFailed
		d.Err = err.Error()
		return s.record(d)
	}
	d.Outcome = OutcomeExecuted
	s.lastExec[kind] = now
	s.execs[kind]++
	return s.record(d)
}

// run invokes a parameterless actuator, marking the decision when the
// arm is not wired.
func run(fn func(string) error, reason string, d *Decision) error {
	if fn == nil {
		d.Outcome = OutcomeNoActuator
		return nil
	}
	return fn(reason)
}

// record finalizes one decision: counters and the OnDecision hook.
func (s *Supervisor) record(d Decision) Decision {
	s.counts[d.Outcome]++
	if s.cfg.OnDecision != nil {
		s.cfg.OnDecision(d)
	}
	return d
}
