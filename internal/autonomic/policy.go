package autonomic

import (
	"fmt"
	"time"
)

// DriftPolicy is the threshold policy family: when an incremental
// update reports feature drift at or past Threshold, the regime the
// model was fitted on no longer describes the fleet — propose a
// retrain, optionally preceded by a window slide that evicts the
// pre-drift runs so the refit trains on post-drift data.
type DriftPolicy struct {
	// Threshold is the drift score (frozen-σ units, see
	// ml.UpdateInfo.DriftScore) at which the policy fires.
	Threshold float64
	// SlideTo, when positive, proposes tightening the training window
	// to this many runs before the retrain.
	SlideTo int
	// PublishAfter also proposes publishing the retrained model.
	PublishAfter bool
}

// Name implements Policy.
func (p *DriftPolicy) Name() string { return "drift" }

// Evaluate implements Policy.
func (p *DriftPolicy) Evaluate(now time.Time, sigs []Signal) []Proposal {
	worst, seen := 0.0, false
	for _, s := range sigs {
		if s.Kind == SignalDrift && (!seen || s.Value > worst) {
			worst, seen = s.Value, true
		}
	}
	if !seen || worst < p.Threshold {
		return nil
	}
	reason := fmt.Sprintf("drift %.3g >= %.3g", worst, p.Threshold)
	var out []Proposal
	if p.SlideTo > 0 {
		out = append(out, Proposal{Action: Action{Kind: ActionSlide, MaxRuns: p.SlideTo}, Reason: reason})
	}
	out = append(out, Proposal{Action: Action{Kind: ActionRetrain}, Reason: reason})
	if p.PublishAfter {
		out = append(out, Proposal{Action: Action{Kind: ActionPublish}, Reason: reason})
	}
	return out
}

// PredictionErrorPolicy is the hysteresis policy family: it folds
// prediction-error feedback into an exponentially weighted moving
// average and fires a retrain (plus optional publish) when the average
// crosses Trigger — then stays quiet until the average has recovered
// below Clear, so a model that is merely slow to improve is not
// retrained on every tick. Combined with the supervisor's per-action
// cooldown this is the loop's main defense against thrash.
type PredictionErrorPolicy struct {
	// Trigger is the EWMA relative-error level that fires (required).
	Trigger float64
	// Clear re-arms the policy once the EWMA recovers below it
	// (default Trigger/2).
	Clear float64
	// Alpha is the EWMA weight of each new sample (default 0.3).
	Alpha float64
	// MinSamples is how many error observations must have been folded
	// in before the policy may fire (default 3) — one unlucky first
	// failure does not trigger a retrain.
	MinSamples int
	// PublishAfter also proposes publishing the retrained model.
	PublishAfter bool

	ewma  float64
	n     int
	fired bool
}

// Name implements Policy.
func (p *PredictionErrorPolicy) Name() string { return "prediction_error" }

// Mean returns the current error EWMA (diagnostics).
func (p *PredictionErrorPolicy) Mean() float64 { return p.ewma }

// Evaluate implements Policy.
func (p *PredictionErrorPolicy) Evaluate(now time.Time, sigs []Signal) []Proposal {
	alpha := p.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	minN := p.MinSamples
	if minN <= 0 {
		minN = 3
	}
	clear := p.Clear
	if clear <= 0 {
		clear = p.Trigger / 2
	}
	for _, s := range sigs {
		if s.Kind != SignalPredictionError {
			continue
		}
		if p.n == 0 {
			p.ewma = s.Value
		} else {
			p.ewma = alpha*s.Value + (1-alpha)*p.ewma
		}
		p.n++
	}
	if p.fired {
		if p.ewma <= clear {
			p.fired = false
		}
		return nil
	}
	if p.Trigger <= 0 || p.n < minN || p.ewma < p.Trigger {
		return nil
	}
	p.fired = true
	reason := fmt.Sprintf("prediction error ewma %.3g >= %.3g over %d observations", p.ewma, p.Trigger, p.n)
	out := []Proposal{{Action: Action{Kind: ActionRetrain}, Reason: reason}}
	if p.PublishAfter {
		out = append(out, Proposal{Action: Action{Kind: ActionPublish}, Reason: reason})
	}
	return out
}

// Observe implements OutcomeObserver: a retrain proposal that was
// suppressed or failed did not actually improve the model, so the
// fired latch is released and the policy proposes again on the next
// tick — the supervisor's cooldown, not the latch, is what rate-limits
// the retry. An executed retrain keeps the latch until the EWMA
// recovers below Clear.
func (p *PredictionErrorPolicy) Observe(d Decision) {
	if d.Action.Kind != ActionRetrain {
		return
	}
	if d.Outcome != OutcomeExecuted && d.Outcome != OutcomeDeferred {
		p.fired = false
	}
}

// OverloadPolicy is the rate-of-change policy family over the serving
// backpressure signal: sustained queue depth at or past HighDepth — or
// depth climbing by at least Rise per observation — tightens the shed
// policy (higher priority floor, bounded loss instead of unbounded
// latency); sustained depth at or below LowDepth relaxes it back. The
// tighten/relax pair has watermark hysteresis built in, so the floor
// does not flap around a noisy depth.
type OverloadPolicy struct {
	// HighDepth is the overload watermark (required).
	HighDepth float64
	// LowDepth is the drained watermark below which the policy relaxes
	// (default HighDepth/4).
	LowDepth float64
	// Rise, when positive, also counts an observation toward overload
	// when depth climbed by at least Rise since the previous
	// observation — catching a fast ramp before it reaches HighDepth.
	Rise float64
	// Sustain is how many consecutive qualifying observations arm
	// either transition (default 3).
	Sustain int
	// TightDepth/TightFloor are the shed policy installed on overload.
	TightDepth int
	TightFloor int
	// RelaxDepth/RelaxFloor are the shed policy restored after drain.
	RelaxDepth int
	RelaxFloor int

	over, under int
	tight       bool
	last        float64
	haveLast    bool
	// flips records the direction of each not-yet-observed reshard
	// proposal (true = tighten), in proposal order, so Observe can
	// revert exactly the transition whose action was suppressed.
	flips []bool
}

// Name implements Policy.
func (p *OverloadPolicy) Name() string { return "overload" }

// Tight reports whether the tightened shed policy is currently
// installed (diagnostics).
func (p *OverloadPolicy) Tight() bool { return p.tight }

// Evaluate implements Policy.
func (p *OverloadPolicy) Evaluate(now time.Time, sigs []Signal) []Proposal {
	sustain := p.Sustain
	if sustain <= 0 {
		sustain = 3
	}
	low := p.LowDepth
	if low <= 0 {
		low = p.HighDepth / 4
	}
	var out []Proposal
	for _, s := range sigs {
		if s.Kind != SignalQueueDepth {
			continue
		}
		depth := s.Value
		rising := p.Rise > 0 && p.haveLast && depth-p.last >= p.Rise
		p.last, p.haveLast = depth, true
		switch {
		case p.HighDepth > 0 && depth >= p.HighDepth, rising:
			p.over++
			p.under = 0
		case depth <= low:
			p.under++
			p.over = 0
		default:
			p.over, p.under = 0, 0
		}
		if !p.tight && p.over >= sustain {
			p.tight, p.over = true, 0
			p.flips = append(p.flips, true)
			out = append(out, Proposal{
				Action: Action{Kind: ActionReshard, MaxQueueDepth: p.TightDepth, MinPriority: p.TightFloor},
				Reason: fmt.Sprintf("queue depth %g sustained over %d observations", depth, sustain),
			})
		}
		if p.tight && p.under >= sustain {
			p.tight, p.under = false, 0
			p.flips = append(p.flips, false)
			out = append(out, Proposal{
				Action: Action{Kind: ActionReshard, MaxQueueDepth: p.RelaxDepth, MinPriority: p.RelaxFloor},
				Reason: fmt.Sprintf("queue drained to %g for %d observations", depth, sustain),
			})
		}
	}
	return out
}

// SkewPolicy is the placement policy family over the shard-imbalance
// signal: per-shard window rates concentrating on a few shards (one
// chatty client, an unlucky hash) waste the other dispatchers while
// the hot shard's queue grows. When the observed max/mean rate sits at
// or past High for Sustain consecutive observations, the policy
// proposes a rebalance — the execute arm is serve.Service.Rebalance,
// which plans migrations through the load-tracked placer and is itself
// a no-op below the placer's own watermark, so the pair is naturally
// hysteretic: the policy decides WHEN to look, the placer decides WHAT
// (if anything) to move. The supervisor's per-action cooldown
// rate-limits repeat proposals while a skew drains.
type SkewPolicy struct {
	// High is the max/mean shard window-rate watermark that fires
	// (required; 1 = perfectly balanced, so useful values are > 1).
	High float64
	// Sustain is how many consecutive observations at or past High arm
	// the proposal (default 3) — one bursty interval does not migrate
	// sessions.
	Sustain int

	over int
}

// Name implements Policy.
func (p *SkewPolicy) Name() string { return "skew" }

// Evaluate implements Policy.
func (p *SkewPolicy) Evaluate(now time.Time, sigs []Signal) []Proposal {
	sustain := p.Sustain
	if sustain <= 0 {
		sustain = 3
	}
	var out []Proposal
	for _, s := range sigs {
		if s.Kind != SignalShardSkew {
			continue
		}
		if p.High > 0 && s.Value >= p.High {
			p.over++
		} else {
			p.over = 0
		}
		if p.over >= sustain {
			p.over = 0
			out = append(out, Proposal{
				Action: Action{Kind: ActionRebalance},
				Reason: fmt.Sprintf("shard skew %.3g >= %.3g sustained over %d observations", s.Value, p.High, sustain),
			})
		}
	}
	return out
}

// Observe implements OutcomeObserver: a reshard that did not execute
// left the installed shed policy where it was, so the watermark state
// flipped at proposal time is reverted — the condition is still being
// observed and the policy will propose the same transition again once
// it re-sustains, with the supervisor's cooldown rate-limiting the
// retries.
func (p *OverloadPolicy) Observe(d Decision) {
	if d.Action.Kind != ActionReshard || len(p.flips) == 0 {
		return
	}
	tightened := p.flips[0]
	p.flips = p.flips[1:]
	if d.Outcome == OutcomeExecuted {
		return
	}
	p.tight = !tightened
}
