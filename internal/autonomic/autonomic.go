// Package autonomic closes the MAPE loop (monitor → analyze → plan →
// execute) over the serving and training stack: serving-side signals
// (drift reports, prediction-error feedback, queue depth and shed
// rates, registry staleness) flow into a bounded bus, pluggable
// policies evaluate them on a clock the supervisor does not own, and
// verdicts become typed actions — retrain incrementally, slide the
// training window, publish to the registry, redeploy locally, reshard
// the load-shedding floor — executed through caller-supplied actuators.
//
// Every verdict, executed or not, is a Decision: the inputs that drove
// it, the policy that proposed it, the action, and the outcome. The
// supervisor never spawns goroutines, never reads the wall clock, and
// draws no randomness, so a run driven from a virtual clock replays
// byte-identically — the property the fleetsim chaos harness asserts.
package autonomic

import (
	"fmt"
	"sync"
	"time"
)

// SignalKind names one class of serving-side observation.
type SignalKind string

const (
	// SignalDrift carries a standardizer drift score reported by an
	// incremental model update (ml.UpdateInfo.DriftScore): how far the
	// newly appended rows sit from the statistics the model froze.
	SignalDrift SignalKind = "drift"
	// SignalPredictionError carries observed prediction-error feedback:
	// when a monitored application actually fails, the estimates it
	// received become gradeable, and Value is the relative error
	// |predicted − actual| / max(actual, 1).
	SignalPredictionError SignalKind = "prediction_error"
	// SignalQueueDepth carries the service's pending-window depth — the
	// backpressure signal behind overload policies.
	SignalQueueDepth SignalKind = "queue_depth"
	// SignalShed carries windows dropped by the shed policy since the
	// previous observation.
	SignalShed SignalKind = "shed"
	// SignalStaleness carries registry staleness: Value is the stale
	// age in seconds, 0 when the model source is fresh. The supervisor
	// itself consumes this to defer publishes while the registry is
	// unreachable.
	SignalStaleness SignalKind = "staleness"
	// SignalNewRuns counts newly completed (failed) runs available to
	// the training pipeline since the previous observation.
	SignalNewRuns SignalKind = "new_runs"
	// SignalShardSkew carries the serving tier's placement imbalance:
	// Value is the max/mean per-shard window rate over the observation
	// interval (1 = perfectly balanced). Sustained skew drives the
	// rebalance actuator, which migrates hot sessions onto cold shards.
	SignalShardSkew SignalKind = "shard_skew"
)

// Signal is one observation: what was seen, when, and its magnitude.
type Signal struct {
	Kind SignalKind
	// At is when the observation was made, on the caller's clock.
	At time.Time
	// Value is the observation's magnitude; its unit depends on Kind.
	Value float64
	// Detail is optional context for the decision log.
	Detail string
}

// DefaultBusCapacity bounds a zero-configured signal bus.
const DefaultBusCapacity = 256

// Bus is the bounded signal queue between the monitored system and the
// supervisor. Producers Publish from wherever observations originate;
// the supervisor drains the backlog once per Tick. When full, the
// oldest signal is dropped and counted — a stalled supervisor degrades
// to fresher data, it never grows without bound. Safe for concurrent
// use.
type Bus struct {
	mu      sync.Mutex
	cap     int
	sigs    []Signal
	dropped uint64
}

// NewBus returns a bus holding at most capacity signals
// (DefaultBusCapacity when capacity <= 0).
func NewBus(capacity int) *Bus {
	if capacity <= 0 {
		capacity = DefaultBusCapacity
	}
	return &Bus{cap: capacity}
}

// Publish enqueues one signal, dropping the oldest when full.
func (b *Bus) Publish(sig Signal) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.sigs) >= b.cap {
		n := copy(b.sigs, b.sigs[1:])
		b.sigs = b.sigs[:n]
		b.dropped++
	}
	b.sigs = append(b.sigs, sig)
}

// Drain returns the queued signals in publish order and empties the
// bus.
func (b *Bus) Drain() []Signal {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := b.sigs
	b.sigs = nil
	return out
}

// Dropped reports how many signals were evicted by a full bus.
func (b *Bus) Dropped() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// ActionKind names one actuator the supervisor can drive.
type ActionKind string

const (
	// ActionRetrain runs an incremental pipeline update on the
	// accumulated runs (warm-started where models support it).
	ActionRetrain ActionKind = "retrain"
	// ActionSlide tightens the training pipeline's retention window.
	ActionSlide ActionKind = "slide"
	// ActionPublish pushes the latest trained deployment to the model
	// registry, where the fleet converges on it by polling.
	ActionPublish ActionKind = "publish"
	// ActionRedeploy hot-swaps the latest trained deployment into the
	// local service directly — the fallback when the registry is
	// unreachable for too long.
	ActionRedeploy ActionKind = "redeploy"
	// ActionReshard swaps the serving load-shedding policy (queue-depth
	// threshold and priority floor).
	ActionReshard ActionKind = "reshard"
	// ActionRebalance asks the serving tier's placement layer to plan
	// and execute session migrations (serve.Service.Rebalance): hot
	// sessions move to cold shards until the per-shard window rates sit
	// back under the placer's skew watermark.
	ActionRebalance ActionKind = "rebalance"
)

// Action is one typed, parameterized command.
type Action struct {
	Kind ActionKind
	// MaxRuns is the retention bound a slide tightens to.
	MaxRuns int
	// MaxQueueDepth/MinPriority are the shed policy a reshard installs.
	MaxQueueDepth int
	MinPriority   int
}

// String renders the action in the stable compact form the decision
// log uses.
func (a Action) String() string {
	switch a.Kind {
	case ActionSlide:
		return fmt.Sprintf("slide(max_runs=%d)", a.MaxRuns)
	case ActionReshard:
		return fmt.Sprintf("reshard(depth=%d,floor=%d)", a.MaxQueueDepth, a.MinPriority)
	default:
		return string(a.Kind)
	}
}

// Actuators are the execute arms of the loop, supplied by whoever owns
// the pipeline, the service, and the registry. A nil actuator makes
// proposals of that kind resolve to OutcomeNoActuator — logged, not
// fatal — so a deployment can wire only the arms it wants automated.
// Each func receives the proposing policy's reason for the audit trail.
type Actuators struct {
	Retrain   func(reason string) error
	Slide     func(maxRuns int, reason string) error
	Publish   func(reason string) error
	Redeploy  func(reason string) error
	Reshard   func(maxQueueDepth, minPriority int, reason string) error
	Rebalance func(reason string) error
}

// Outcome is what became of one proposal.
type Outcome string

const (
	// OutcomeExecuted: the actuator ran and returned nil.
	OutcomeExecuted Outcome = "executed"
	// OutcomeCooldown: suppressed — the action kind fired too recently.
	// Suppressed proposals still produce decisions; an operator reading
	// the log sees what the loop wanted, not only what it did.
	OutcomeCooldown Outcome = "cooldown"
	// OutcomeDeferred: a publish proposed while the registry is stale;
	// parked and retried when the registry is fresh again.
	OutcomeDeferred Outcome = "deferred"
	// OutcomeFailed: the actuator returned an error (in Decision.Err).
	OutcomeFailed Outcome = "failed"
	// OutcomeNoActuator: no actuator is wired for the action kind.
	OutcomeNoActuator Outcome = "no_actuator"
)

// Decision is one entry of the structured decision log: a proposal,
// where it came from, and what happened to it. The sequence number is
// per-supervisor and gap-free, so a replayed run produces an identical
// decision stream.
type Decision struct {
	Seq     int       `json:"seq"`
	At      time.Time `json:"at"`
	Policy  string    `json:"policy"`
	Action  Action    `json:"action"`
	Reason  string    `json:"reason"`
	Outcome Outcome   `json:"outcome"`
	Err     string    `json:"err,omitempty"`
}

// String renders the decision as one stable log line (no wall-clock
// content — the timestamp is the caller's virtual clock and is
// rendered as a Unix offset only by callers that want it).
func (d Decision) String() string {
	s := fmt.Sprintf("#%d %s %s -> %s (%s)", d.Seq, d.Policy, d.Action, d.Outcome, d.Reason)
	if d.Err != "" {
		s += ": " + d.Err
	}
	return s
}

// Proposal is one action a policy wants taken, with its reason.
type Proposal struct {
	Action Action
	Reason string
}

// Policy is one analyze/plan unit: it reads the tick's drained signals
// (plus whatever state it keeps across ticks) and proposes actions.
// Policies run on the supervisor's Tick goroutine only, in
// configuration order, so they need no locking; they must not read the
// wall clock — now is the only time they see.
type Policy interface {
	Name() string
	Evaluate(now time.Time, sigs []Signal) []Proposal
}

// OutcomeObserver is an optional Policy extension. The supervisor
// reports every decision that resulted from the policy's own proposals
// back to it, in decision order, on the Tick goroutine. A stateful
// policy that flips an internal latch when proposing (hysteresis,
// watermark state) uses this to roll the flip back when the proposal
// was suppressed or failed — otherwise a cooldown-suppressed relax
// would latch a tightened shed floor forever with nothing left to
// propose undoing it.
type OutcomeObserver interface {
	Observe(d Decision)
}
